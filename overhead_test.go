package paradigms

import (
	"context"
	"sort"
	"testing"
	"time"

	"paradigms/internal/compiled"
	"paradigms/internal/hybrid"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
)

const overheadQ6 = `select sum(l_extendedprice * l_discount) as revenue from lineitem
	where l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
	and l_discount between 0.05 and 0.07 and l_quantity < 24`

// TestTelemetryOverhead is the guard the obs package doc promises:
// instrumented executions (collector on the context) must stay within
// a small factor of uninstrumented ones on both the scan-bound (Q6)
// and join-bound (Q3) shapes, on every backend. The collector merges
// once per worker per pipeline — never inside the tuple/vector hot
// loop — so the medians should be near-identical; the factor is
// generous purely for CI timer noise.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	db := GenerateTPCH(0.05, 0)
	const rounds = 7
	const factor = 3.0

	median := func(run func()) time.Duration {
		run() // warm up
		times := make([]time.Duration, rounds)
		for i := range times {
			start := time.Now()
			run()
			times[i] = time.Since(start)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[rounds/2]
	}

	for _, tc := range []struct {
		name, text string
	}{
		{"Q6", overheadQ6},
		{"Q3", telemetryQ3},
	} {
		pl, err := logical.Prepare(db, tc.text)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []struct {
			name string
			run  func(ctx context.Context)
		}{
			{"typer", func(ctx context.Context) {
				if _, err := compiled.Execute(ctx, pl, 0); err != nil {
					t.Fatal(err)
				}
			}},
			{"tectorwise", func(ctx context.Context) {
				if _, err := pl.Execute(ctx, 0, 0); err != nil {
					t.Fatal(err)
				}
			}},
			{"hybrid", func(ctx context.Context) {
				if _, err := hybrid.Execute(ctx, pl, 0); err != nil {
					t.Fatal(err)
				}
			}},
		} {
			plain := median(func() { eng.run(context.Background()) })
			instr := median(func() {
				eng.run(obs.WithCollector(context.Background(), obs.NewCollector()))
			})
			t.Logf("%s/%s: uninstrumented %v, instrumented %v", tc.name, eng.name, plain, instr)
			if float64(instr) > float64(plain)*factor {
				t.Errorf("%s/%s: instrumented %v exceeds %gx uninstrumented %v",
					tc.name, eng.name, instr, factor, plain)
			}
		}
	}
}
