package paradigms

// One benchmark per table/figure of the paper (see DESIGN.md §4 for the
// experiment index). Benchmarks default to SF 0.1 so `go test -bench=.`
// finishes quickly; cmd/repro runs the full-scale versions.

import (
	"math/rand"
	"sync"
	"testing"

	"context"

	"paradigms/internal/bench"
	"paradigms/internal/compiled"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/hybrid"
	"paradigms/internal/iosim"
	"paradigms/internal/logical"
	"paradigms/internal/microsim"
	"paradigms/internal/plan"
	"paradigms/internal/queries"
	"paradigms/internal/simd"
	"paradigms/internal/tw"
	"paradigms/internal/typer"
	"paradigms/internal/volcano"
)

const benchSF = 0.1

var (
	benchOnce  sync.Once
	benchTPCH  *DB
	benchSSBDB *DB
	benchSimDB *DB
)

func benchDBs() (*DB, *DB, *DB) {
	benchOnce.Do(func() {
		benchTPCH = GenerateTPCH(benchSF, 0)
		benchSSBDB = GenerateSSB(benchSF, 0)
		benchSimDB = GenerateTPCH(0.05, 0)
	})
	return benchTPCH, benchSSBDB, benchSimDB
}

// BenchmarkFig3 — Figure 3: single-threaded TPC-H runtimes, both engines.
func BenchmarkFig3(b *testing.B) {
	db, _, _ := benchDBs()
	for _, q := range queries.TPCHQueries {
		for _, eng := range []string{"typer", "tectorwise"} {
			b.Run(eng+"/"+q, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.RunTPCH(db, eng, q, 1, 0)
				}
			})
		}
	}
}

// BenchmarkTable1Counters — Table 1: the traced-twin simulation cost.
func BenchmarkTable1Counters(b *testing.B) {
	_, _, sim := benchDBs()
	for _, eng := range []string{"typer", "tectorwise"} {
		b.Run(eng+"/Q1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				microsim.TracedTPCH(sim, microsim.Skylake, eng, "Q1")
			}
		})
	}
}

// BenchmarkFig4MemoryStalls — Figure 4: stall accounting across SFs is
// exercised on the join query most sensitive to hash-table growth.
func BenchmarkFig4MemoryStalls(b *testing.B) {
	_, _, sim := benchDBs()
	for i := 0; i < b.N; i++ {
		microsim.TracedTPCH(sim, microsim.Skylake, "tectorwise", "Q3")
	}
}

// BenchmarkFig5VectorSize — Figure 5: Tectorwise Q3 across vector sizes.
func BenchmarkFig5VectorSize(b *testing.B) {
	db, _, _ := benchDBs()
	for _, size := range []int{1, 64, 1024, 65536, 1 << 20} {
		b.Run(benchName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan.Q3(db, 1, size)
			}
		})
	}
}

func benchName(size int) string {
	switch {
	case size >= 1<<20:
		return "max"
	default:
		return itoa(size)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkSSB — §4.4: the four SSB queries on both engines.
func BenchmarkSSB(b *testing.B) {
	_, db, _ := benchDBs()
	for _, q := range queries.SSBQueries {
		for _, eng := range []string{"typer", "tectorwise"} {
			b.Run(eng+"/"+q, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.RunSSB(db, eng, q, 1, 0)
				}
			})
		}
	}
}

// BenchmarkTable2 — Table 2's measured side (same single-threaded runs
// as Fig. 3; the paper-reference comparison is printed by cmd/repro).
func BenchmarkTable2(b *testing.B) {
	db, _, _ := benchDBs()
	b.Run("typer/Q18", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			typer.Q18(db, 1)
		}
	})
	b.Run("tectorwise/Q18", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Q18(db, 1, 0)
		}
	})
}

// BenchmarkFig6Selection — Figure 6: selection kernel variants.
func BenchmarkFig6Selection(b *testing.B) {
	const n = 8192
	data := make([]int32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = int32(rng.Intn(1000))
	}
	out := make([]int32, n)
	bound := int32(400)
	b.Run("branching", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectBranching(data, bound, out)
		}
	})
	b.Run("predicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectPredicated(data, bound, out)
		}
	})
	b.Run("swar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectSWAR(data, bound, out)
		}
	})
}

// BenchmarkFig7SparseSelection — Figure 7: secondary selection kernels.
func BenchmarkFig7SparseSelection(b *testing.B) {
	const n = 1 << 20
	data := make([]int32, n)
	rng := rand.New(rand.NewSource(2))
	for i := range data {
		data[i] = int32(rng.Intn(1000))
	}
	sel := make([]int32, 0, n/2)
	for i := 0; i < n; i += 2 {
		sel = append(sel, int32(i))
	}
	out := make([]int32, n)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectSparsePredicated(data, 400, sel, out)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectSparseUnrolled(data, 400, sel, out)
		}
	})
}

// BenchmarkFig8Hashing / Gather / Probe — Figure 8 components.
func BenchmarkFig8Hashing(b *testing.B) {
	keys := make([]uint64, 8192)
	for i := range keys {
		keys[i] = uint64(i)
	}
	out := make([]uint64, len(keys))
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.HashScalar(keys, out)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.HashUnrolled(keys, out)
		}
	})
}

func fig8Table(entries int) *hashtable.Table {
	ht := hashtable.New(1, 1)
	sh := ht.Shard(0)
	for i := uint64(0); i < uint64(entries); i++ {
		ref, _ := sh.Alloc(ht, hashtable.Murmur2(i))
		ht.SetWord(ref, 0, i)
	}
	ht.Finalize()
	return ht
}

// BenchmarkFig8Probe — the Tectorwise probe primitive, scalar vs
// overlapped.
func BenchmarkFig8Probe(b *testing.B) {
	ht := fig8Table(1 << 14)
	keys := make([]uint64, 8192)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 15))
	}
	matches := make([]int32, len(keys))
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.ProbeScalar(ht, keys, matches)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.ProbeUnrolled(ht, keys, matches)
		}
	})
}

// BenchmarkFig9WorkingSet — Figure 9: probe cost vs hash-table size.
func BenchmarkFig9WorkingSet(b *testing.B) {
	keys := make([]uint64, 8192)
	matches := make([]int32, len(keys))
	for _, entries := range []int{1 << 12, 1 << 16, 1 << 20, 1 << 22} {
		ht := fig8Table(entries)
		rng := rand.New(rand.NewSource(4))
		for i := range keys {
			keys[i] = uint64(rng.Intn(entries))
		}
		b.Run(itoa(entries*24/1024)+"KB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simd.ProbeScalar(ht, keys, matches)
			}
		})
	}
}

// BenchmarkTable3Threads — Table 3: intra-query scaling.
func BenchmarkTable3Threads(b *testing.B) {
	db, _, _ := benchDBs()
	for _, threads := range []int{1, 2, 4} {
		b.Run("typer/Q9/"+itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				typer.Q9(db, threads)
			}
		})
		b.Run("tectorwise/Q9/"+itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tw.Q9(db, threads, 0)
			}
		})
	}
}

// BenchmarkTable5SSD — Table 5: throttled column streaming.
func BenchmarkTable5SSD(b *testing.B) {
	db, _, _ := benchDBs()
	dir := b.TempDir()
	if err := iosim.WriteDatabase(db, dir); err != nil {
		b.Fatal(err)
	}
	relations := queries.ScannedTables["Q6"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stream at 8 GB/s so the bench measures the streaming machinery
		// rather than sleeping at the paper's 1.4 GB/s.
		if _, _, err := iosim.StreamColumns(dir, db, relations, 8e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Fig12Model — the hardware-profile throughput model.
func BenchmarkFig11Fig12Model(b *testing.B) {
	_, _, sim := benchDBs()
	ctr := microsim.TracedTPCH(sim, microsim.Skylake, "typer", "Q6")
	cycles := ctr.Cycles * float64(sim.TotalTuples("lineitem"))
	bytes := float64(iosim.ColumnBytes(sim, []string{"lineitem"}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, hw := range microsim.Platforms {
			microsim.Throughput(hw, "typer", "Q6", cycles, bytes, hw.SIMDLanes32 == 16, 1.4)
		}
	}
}

// BenchmarkCompileTime — §8.2: per-query setup cost (tiny database).
func BenchmarkCompileTime(b *testing.B) {
	db := GenerateTPCH(0.001, 0)
	b.Run("typer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			typer.Q3(db, 1)
		}
	})
	b.Run("tectorwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Q3(db, 1, 0)
		}
	})
}

// BenchmarkAdaptiveAggregation — §8.4 ablation: hash vs ordered
// aggregation for Tectorwise Q1.
func BenchmarkAdaptiveAggregation(b *testing.B) {
	db, _, _ := benchDBs()
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tw.Q1(db, 1, 0)
		}
	})
	b.Run("ordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tw.Q1Adaptive(db, 1, 0)
		}
	})
}

// BenchmarkOLTP — §8.1: point lookups, fused vs vector-at-a-time.
func BenchmarkOLTP(b *testing.B) {
	const tableSize = 1 << 18
	buildWith := func(hf func(uint64) uint64) *hashtable.Table {
		ht := hashtable.New(2, 1)
		sh := ht.Shard(0)
		for i := uint64(0); i < tableSize; i++ {
			ref, _ := sh.Alloc(ht, hf(i))
			ht.SetWord(ref, 0, i)
			ht.SetWord(ref, 1, i*3)
		}
		ht.Finalize()
		return ht
	}
	htTyper := buildWith(hashtable.Mix64)
	htTW := buildWith(hashtable.Murmur2)
	b.Run("fused", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			key := uint64(i*2654435761) % tableSize
			h := hashtable.Mix64(key)
			for ref := htTyper.Lookup(h); ref != 0; ref = htTyper.Next(ref) {
				if htTyper.Hash(ref) == h && htTyper.Word(ref, 0) == key {
					sink += htTyper.Word(ref, 1)
					break
				}
			}
		}
		_ = sink
	})
	b.Run("vectorized-n1", func(b *testing.B) {
		keys := make([]uint64, 1)
		hashes := make([]uint64, 1)
		cand := make([]hashtable.Ref, 1)
		candP := make([]int32, 1)
		mRefs := make([]hashtable.Ref, 8)
		mPos := make([]int32, 8)
		var sink uint64
		for i := 0; i < b.N; i++ {
			keys[0] = uint64(i*2654435761) % tableSize
			tw.MapHashU64(keys, hashes)
			if tw.Probe(htTW, keys, hashes, 1, cand, candP, mRefs, mPos) > 0 {
				sink += htTW.Word(mRefs[0], 1)
			}
		}
		_ = sink
	})
}

// BenchmarkAblationTags — DESIGN.md ablation 1: Bloom tags on/off.
func BenchmarkAblationTags(b *testing.B) {
	ht := fig8Table(1 << 18)
	keys := make([]uint64, 8192)
	for i := range keys {
		keys[i] = uint64(i*7 + 1<<19) // mostly misses
	}
	matches := make([]int32, len(keys))
	for _, tags := range []bool{true, false} {
		name := "on"
		if !tags {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			ht.UseTags = tags
			for i := 0; i < b.N; i++ {
				simd.ProbeScalar(ht, keys, matches)
			}
		})
	}
	ht.UseTags = true
}

// BenchmarkAblationHash — DESIGN.md ablation 2: hash functions.
func BenchmarkAblationHash(b *testing.B) {
	fns := map[string]func(uint64) uint64{
		"mix64":   hashtable.Mix64,
		"murmur2": hashtable.Murmur2,
		"crc":     hashtable.CRC,
	}
	for _, name := range []string{"mix64", "murmur2", "crc"} {
		hf := fns[name]
		b.Run(name, func(b *testing.B) {
			var acc uint64
			for i := 0; i < b.N; i++ {
				acc ^= hf(uint64(i))
			}
			_ = acc
		})
	}
}

// BenchmarkAblationMorselSize — DESIGN.md ablation 6.
func BenchmarkAblationMorselSize(b *testing.B) {
	db, _, _ := benchDBs()
	ship := db.Rel("lineitem").Date("l_shipdate")
	for _, msz := range []int{1 << 10, exec.DefaultMorselSize, 1 << 21} {
		b.Run(itoa(msz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				disp := exec.NewDispatcher(len(ship), msz)
				exec.Parallel(4, func(int) {
					var sum int64
					for {
						m, ok := disp.Next()
						if !ok {
							break
						}
						for j := m.Begin; j < m.End; j++ {
							sum += int64(ship[j])
						}
					}
					_ = sum
				})
			}
		})
	}
}

// BenchmarkAblationPredication — DESIGN.md ablation 5: branching vs
// predicated selection at an adversarial (50%) selectivity.
func BenchmarkAblationPredication(b *testing.B) {
	data := make([]int32, 1<<16)
	rng := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = int32(rng.Intn(1000))
	}
	out := make([]int32, len(data))
	b.Run("branching", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectBranching(data, 500, out)
		}
	})
	b.Run("predicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simd.SelectPredicated(data, 500, out)
		}
	})
}

// BenchmarkFig13Hybrid — §9.1: the relaxed-operator-fusion design point
// between the two base paradigms, on the join-heavy Q3.
func BenchmarkFig13Hybrid(b *testing.B) {
	db, _, _ := benchDBs()
	b.Run("typer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			typer.Q3(db, 1)
		}
	})
	b.Run("rof", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hybrid.Q3(db, 1)
		}
	})
	b.Run("tectorwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Q3(db, 1, 0)
		}
	})
}

// BenchmarkHybridVsPure — the generic per-pipeline hybrid executor
// against both pure SQL backends on the same optimized plans: the
// cost heuristic sends build and filter-only pipelines to the fused
// backend (no materialization) and the probing final pipelines to the
// vectorized one (overlapped cache misses), so the hybrid should beat
// whichever pure engine loses each pipeline class. Single-threaded,
// like the paper's per-paradigm comparisons; headline numbers in
// EXPERIMENTS.md.
func BenchmarkHybridVsPure(b *testing.B) {
	db, _, _ := benchDBs()
	ctx := context.Background()
	for _, name := range []string{"Q3", "Q5"} {
		text, ok := logical.SQLText("tpch", name)
		if !ok {
			b.Fatalf("no canonical %s SQL text", name)
		}
		pl, err := logical.Prepare(db, text)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/typer", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiled.Execute(ctx, pl, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/tectorwise", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pl.Execute(ctx, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/hybrid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hybrid.Execute(ctx, pl, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpretationOverhead — the paper's §1 motivation quantified:
// classic Volcano tuple-at-a-time interpretation vs both modern
// paradigms on the same plans (Table 6 row 1 vs rows for
// HyPer/VectorWise).
func BenchmarkInterpretationOverhead(b *testing.B) {
	db, _, _ := benchDBs()
	b.Run("volcano/Q6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			volcano.Q6(db)
		}
	})
	b.Run("tectorwise/Q6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Q6(db, 1, 0)
		}
	})
	b.Run("typer/Q6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			typer.Q6(db, 1)
		}
	})
	b.Run("volcano/Q1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			volcano.Q1(db)
		}
	})
	b.Run("typer/Q1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			typer.Q1(db, 1)
		}
	})
}
