package paradigms

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"paradigms/internal/compiled"
	"paradigms/internal/logical"
	"paradigms/internal/sqlcheck"
)

// The prepared-statement differential harness — the proof that one
// cached parameterized plan serves every argument binding correctly:
// each generated statement is planned once, then executed with two
// independently sampled bindings on the compiled backend, the
// vectorized backend across vector sizes, and compared against both a
// fresh-planned run of the substituted literal text and the trusted
// oracle. Any drift between cached and fresh planning — stale constant
// folding, mis-scaled parameter coercion, shared-state mutation —
// shows up as a row-multiset mismatch.

// TestSQLPreparedDifferentialCorpus: 60 seeded parameterized queries
// (alternating TPC-H and SSB), two bindings each, cached + fresh on
// both engines versus the oracle — well over the 200-execution floor,
// with zero mismatches tolerated.
func TestSQLPreparedDifferentialCorpus(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	ctx := context.Background()
	execs, paramQueries := 0, 0

	for seed := int64(2000); seed < 2060; seed++ {
		db := tpchDB
		if seed%2 == 1 {
			db = ssbDB
		}
		text, bindings := sqlcheck.GenerateParameterized(rand.New(rand.NewSource(seed)), db)
		pl, err := logical.Prepare(db, text)
		if err != nil {
			t.Fatalf("prepare %q: %v", text, err)
		}
		if len(pl.Params) > 0 {
			paramQueries++
		} else {
			bindings = bindings[:1] // identical empty bindings: run once
		}
		for _, binding := range bindings {
			lit := sqlcheck.Substitute(text, binding)
			want, err := sqlcheck.Oracle(db, lit)
			if err != nil {
				t.Fatalf("oracle failed for %q: %v", lit, err)
			}
			wantC := sqlcheck.Canon(want)
			vals, err := pl.BindTexts(binding)
			if err != nil {
				t.Fatalf("bind %v for %q: %v", binding, text, err)
			}
			for _, workers := range []int{1, 4} {
				res, err := compiled.ExecuteArgs(ctx, pl, workers, vals)
				execs++
				if err != nil {
					t.Fatalf("cached compiled w=%d failed for %q %v: %v", workers, text, binding, err)
				}
				if !sqlcheck.SameRows(sqlcheck.Canon(res.Rows), wantC) {
					t.Errorf("cached compiled w=%d differs from oracle for %q %v\n got %v\nwant %v",
						workers, text, binding, clip(res.Rows), clip(want))
				}
				for _, vec := range []int{1, 1024} {
					lres, err := pl.ExecuteArgs(ctx, workers, vec, vals)
					execs++
					if err != nil {
						t.Fatalf("cached vectorized w=%d vec=%d failed for %q %v: %v", workers, vec, text, binding, err)
					}
					if !sqlcheck.SameRows(sqlcheck.Canon(lres.Rows), wantC) {
						t.Errorf("cached vectorized w=%d vec=%d differs from oracle for %q %v\n got %v\nwant %v",
							workers, vec, text, binding, clip(lres.Rows), clip(want))
					}
				}
			}
			// Fresh-planned runs of the substituted literal text: the
			// cached plan must agree with a from-scratch plan of the
			// same logical query.
			fres, err := compiled.Run(ctx, db, lit, 4)
			execs++
			if err != nil {
				t.Fatalf("fresh compiled failed for %q: %v", lit, err)
			}
			if !sqlcheck.SameRows(sqlcheck.Canon(fres.Rows), wantC) {
				t.Errorf("fresh compiled differs from oracle for %q\n got %v\nwant %v", lit, clip(fres.Rows), clip(want))
			}
			lres, err := logical.Run(ctx, db, lit, 4, 1000)
			execs++
			if err != nil {
				t.Fatalf("fresh vectorized failed for %q: %v", lit, err)
			}
			if !sqlcheck.SameRows(sqlcheck.Canon(lres.Rows), wantC) {
				t.Errorf("fresh vectorized differs from oracle for %q\n got %v\nwant %v", lit, clip(lres.Rows), clip(want))
			}
		}
	}

	// The acceptance bar: ≥ 200 executions across both engines, cached
	// and fresh, and a corpus that actually exercises placeholders.
	if execs < 200 {
		t.Fatalf("differential corpus ran only %d executions (want >= 200)", execs)
	}
	if paramQueries < 20 {
		t.Fatalf("generator produced only %d parameterized statements of 60 (placeholder rate broken?)", paramQueries)
	}
	t.Logf("%d executions over 60 statements (%d parameterized)", execs, paramQueries)
}

// preparedRaceStmt is one statement of the concurrency hammer with its
// fixed argument sets and oracle-precomputed expectations.
type preparedRaceStmt struct {
	text string
	args [][]string
	want [][][]int64 // canon rows per arg set
}

// TestPreparedConcurrentService hammers Prepare/Execute/evict from
// parallel clients through the full service stack — 8 statements
// against a 4-slot plan cache force steady evictions and re-prepares
// while executions of all three engine spellings (typer, tectorwise,
// auto) are in flight. Every cache-hit result must stay bit-identical
// to the oracle expectation, and the counters must reconcile exactly.
// CI runs this under -race.
func TestPreparedConcurrentService(t *testing.T) {
	tpch := sqlcheck.MiniTPCH(64, true)
	ssb := sqlcheck.MiniSSB(32, true)

	stmts := []preparedRaceStmt{
		{text: "select count(*) from lineitem where l_quantity < ?",
			args: [][]string{{"10"}, {"30"}}},
		{text: "select sum(l_extendedprice * l_discount) as rev from lineitem where l_discount between ? and ?",
			args: [][]string{{"0.01", "0.08"}, {"0.03", "0.05"}}},
		{text: "select o_custkey, count(*) from orders where o_custkey < ? group by o_custkey order by 1",
			args: [][]string{{"5"}, {"9"}}},
		{text: "select max(o_totalprice) from orders, customer where o_custkey = c_custkey and c_custkey <= ?",
			args: [][]string{{"6"}, {"3"}}},
		{text: "select count(*) from lineitem, orders where l_orderkey = o_orderkey and l_quantity < ?",
			args: [][]string{{"20"}, {"40"}}},
		{text: "select min(l_extendedprice) as m from lineitem where l_quantity between ? and ?",
			args: [][]string{{"1", "25"}, {"10", "50"}}},
		{text: "select sum(lo_revenue) from lineorder where lo_quantity < ?",
			args: [][]string{{"15"}, {"35"}}},
		{text: "select count(*) from lineorder, date where lo_orderdate = d_datekey and d_year >= ?",
			args: [][]string{{"1990"}, {"1995"}}},
	}
	for i := range stmts {
		db := tpch
		if i >= 6 {
			db = ssb
		}
		for _, a := range stmts[i].args {
			want, err := sqlcheck.Oracle(db, sqlcheck.Substitute(stmts[i].text, a))
			if err != nil {
				t.Fatalf("oracle for %q %v: %v", stmts[i].text, a, err)
			}
			stmts[i].want = append(stmts[i].want, sqlcheck.Canon(want))
		}
	}

	svc := NewService(tpch, ssb, ServiceOptions{WorkerBudget: 4, PlanCacheSize: 4})
	engines := []string{"typer", "tectorwise", "auto"}
	const clients, iters = 8, 40

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				k := (g + i) % len(stmts)
				p, err := svc.Prepare(stmts[k].text)
				if err != nil {
					errCh <- fmt.Errorf("client %d: prepare %q: %v", g, stmts[k].text, err)
					return
				}
				a := (g + i) % len(stmts[k].args)
				res, err := svc.DoPrepared(ctx, engines[(g*iters+i)%len(engines)], p, stmts[k].args[a]...)
				if err != nil {
					errCh <- fmt.Errorf("client %d: exec %q %v: %v", g, stmts[k].text, stmts[k].args[a], err)
					return
				}
				rows := res.(*logical.Result).Rows
				if !sqlcheck.SameRows(sqlcheck.Canon(rows), stmts[k].want[a]) {
					errCh <- fmt.Errorf("client %d: %q %v: got %v want %v",
						g, stmts[k].text, stmts[k].args[a], rows, stmts[k].want[a])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	svc.Close()

	st := svc.Stats()
	total := uint64(clients * iters)
	if st.PlanCacheHits+st.PlanCacheMisses != total {
		t.Errorf("cache lookups %d+%d != %d prepares", st.PlanCacheHits, st.PlanCacheMisses, total)
	}
	if st.PlanCacheEvictions == 0 {
		t.Error("no evictions despite 8 statements in a 4-slot cache")
	}
	if st.PlanCacheMisses < uint64(len(stmts)) {
		t.Errorf("misses %d < %d distinct statements", st.PlanCacheMisses, len(stmts))
	}
	if st.Served != total || st.PreparedServed != total || st.Failed != 0 {
		t.Errorf("served=%d prepared=%d failed=%d, want %d/%d/0", st.Served, st.PreparedServed, st.Failed, total, total)
	}
	var perEngine uint64
	for _, n := range st.PerEngine {
		perEngine += n
	}
	if perEngine != total {
		t.Errorf("per-engine counts sum to %d, want %d", perEngine, total)
	}
	if st.PerEngine["auto"] != 0 {
		t.Errorf("%d executions attributed to pseudo-engine auto (router must resolve)", st.PerEngine["auto"])
	}
}
