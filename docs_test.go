package paradigms

// Documentation lints: the repo's doc comments cite DESIGN.md sections,
// EXPERIMENTS.md, and paper sections (§); these tests keep those
// references resolvable so the docs cannot silently rot.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"paradigms/internal/bench"
)

// extensionPackages are internal packages that extend the repo beyond the
// paper; their package doc must state a role instead of a paper section.
var extensionPackages = map[string]string{
	"server":    "extension", // inter-query concurrency layer
	"iosim":     "substrate", // out-of-memory experiment substrate
	"registry":  "extension", // engine-agnostic query catalog
	"sql":       "extension", // ad-hoc SQL lexer/parser/binder
	"catalog":   "extension", // schema layer of the SQL front-end
	"logical":   "extension", // logical planner + vectorized lowering
	"compiled":  "extension", // compiled (Typer-style) SQL lowering
	"sqlcheck":  "extension", // differential-test generator/oracle/minis
	"prepcache": "extension", // prepared statements, plan cache, adaptive routing
	"proto":     "extension", // network protocol of the serving front-end
	"obs":       "extension", // execution telemetry: EXPLAIN ANALYZE, query log, metrics
	"feedback":  "extension", // cardinality feedback: drift-triggered re-planning, prewarm mining
	"exchange":  "extension", // sharded scatter/gather execution over catalog slices
}

// packageDoc returns the package doc comment of the Go package in dir.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	pkgs, err := parser.ParseDir(token.NewFileSet(), dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	doc := ""
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
				doc = f.Doc.Text()
			}
		}
	}
	return doc
}

// TestEveryInternalPackageIsDocumented: each internal/ package carries a
// package doc comment that states its paper section (§) — or, for
// extensions, its role.
func TestEveryInternalPackageIsDocumented(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no internal packages found (err=%v)", err)
	}
	for _, dir := range dirs {
		name := filepath.Base(dir)
		doc := packageDoc(t, dir)
		if doc == "" {
			t.Errorf("internal/%s has no package doc comment", name)
			continue
		}
		if role, isExt := extensionPackages[name]; isExt {
			if !strings.Contains(doc, role) {
				t.Errorf("internal/%s is an extension; its doc must state its role (%q)", name, role)
			}
			continue
		}
		if !strings.Contains(doc, "§") {
			t.Errorf("internal/%s package doc cites no paper section (§)", name)
		}
	}
}

// goSources lists every .go file in the repo.
func goSources(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != "." {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 50 {
		t.Fatalf("suspiciously few Go files found: %d", len(files))
	}
	return files
}

// TestDesignReferencesResolve: every "DESIGN.md §n", "DESIGN.md Sn", and
// "DESIGN.md ablation n" citation in a doc comment resolves to a real
// anchor in DESIGN.md.
func TestDesignReferencesResolve(t *testing.T) {
	designBytes, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatalf("DESIGN.md missing: %v", err)
	}
	design := string(designBytes)

	refRe := regexp.MustCompile(`DESIGN\.md[ \t]+(§\d+|S\d+(?:/S\d+)?|[Aa]blation \d+)`)
	sectionRe := regexp.MustCompile(`(?m)^## (§\d+) `)
	subRe := regexp.MustCompile(`(?m)^### (S\d+) `)
	ablRe := regexp.MustCompile(`(?i)\bablation (\d+)\b`)

	anchors := map[string]bool{}
	for _, m := range sectionRe.FindAllStringSubmatch(design, -1) {
		anchors[m[1]] = true
	}
	for _, m := range subRe.FindAllStringSubmatch(design, -1) {
		anchors[m[1]] = true
	}
	for _, m := range ablRe.FindAllStringSubmatch(design, -1) {
		anchors["ablation "+m[1]] = true
	}

	seen := 0
	for _, file := range goSources(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range refRe.FindAllStringSubmatch(string(src), -1) {
			ref := m[1]
			var keys []string
			switch {
			case strings.HasPrefix(ref, "§"):
				keys = []string{ref}
			case strings.HasPrefix(ref, "S"):
				keys = strings.Split(ref, "/") // "S1/S7" cites both
			default:
				keys = []string{"ablation " + strings.Fields(ref)[1]}
			}
			for _, key := range keys {
				seen++
				if !anchors[key] {
					t.Errorf("%s cites DESIGN.md %s, which has no anchor", file, key)
				}
			}
		}
	}
	if seen == 0 {
		t.Error("no DESIGN.md citations found; the reference regexp is broken")
	}
}

// TestExperimentsDocCoversAllExperiments: EXPERIMENTS.md exists and
// mentions every experiment id cmd/repro accepts.
func TestExperimentsDocCoversAllExperiments(t *testing.T) {
	expBytes, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("EXPERIMENTS.md missing: %v", err)
	}
	doc := string(expBytes)
	for _, id := range bench.SortedExperimentNames() {
		if !strings.Contains(doc, "`"+id+"`") {
			t.Errorf("EXPERIMENTS.md does not document experiment %q", id)
		}
	}
}

// TestReadmeMapsEveryPackage: the README repo map mentions every
// internal package and both commands' invocations.
func TestReadmeMapsEveryPackage(t *testing.T) {
	readmeBytes, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md missing: %v", err)
	}
	readme := string(readmeBytes)
	dirs, _ := filepath.Glob("internal/*")
	for _, dir := range dirs {
		if !strings.Contains(readme, "internal/"+filepath.Base(dir)) {
			t.Errorf("README.md repo map is missing %s", dir)
		}
	}
	for _, cmd := range []string{"go run ./cmd/repro", "go run ./cmd/serve", "go test ./..."} {
		if !strings.Contains(readme, cmd) {
			t.Errorf("README.md quickstart is missing %q", cmd)
		}
	}
}
