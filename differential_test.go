package paradigms

import (
	"context"
	"math/rand"
	"testing"

	"paradigms/internal/compiled"
	"paradigms/internal/hybrid"
	"paradigms/internal/logical"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

// The cross-engine differential harness — the proof that the two SQL
// lowering backends implement the same language: every generated query
// executes on the vectorized (Tectorwise) lowering across vector sizes,
// on the compiled (Typer) lowering, and on the naive oracle, and all
// row multisets must be identical. The generator (internal/sqlcheck)
// only emits LIMIT under a total-order ORDER BY, so canonicalized
// comparison is exact.

// diffConfig bounds one differential check's execution grid.
type diffConfig struct {
	vecSizes []int
	workers  []int
}

var fullGrid = diffConfig{vecSizes: []int{1, 1000, 4096}, workers: []int{1, 4}}

// checkDifferential runs one SQL text through oracle, vectorized, and
// compiled execution and fails on any mismatch.
func checkDifferential(t *testing.T, db *storage.Database, text string, cfg diffConfig) {
	t.Helper()
	ctx := context.Background()
	want, err := sqlcheck.Oracle(db, text)
	if err != nil {
		t.Fatalf("oracle failed for %q: %v", text, err)
	}
	wantC := sqlcheck.Canon(want)

	for _, workers := range cfg.workers {
		res, err := compiled.Run(ctx, db, text, workers)
		if err != nil {
			t.Fatalf("compiled w=%d failed for %q: %v", workers, text, err)
		}
		if !sqlcheck.SameRows(sqlcheck.Canon(res.Rows), wantC) {
			t.Errorf("compiled w=%d differs from oracle for %q\n got %v\nwant %v",
				workers, text, clip(res.Rows), clip(want))
		}
		hres, err := hybrid.Run(ctx, db, text, workers)
		if err != nil {
			t.Fatalf("hybrid w=%d failed for %q: %v", workers, text, err)
		}
		if !sqlcheck.SameRows(sqlcheck.Canon(hres.Rows), wantC) {
			t.Errorf("hybrid w=%d differs from oracle for %q\n got %v\nwant %v",
				workers, text, clip(hres.Rows), clip(want))
		}
		for _, vec := range cfg.vecSizes {
			lres, err := logical.Run(ctx, db, text, workers, vec)
			if err != nil {
				t.Fatalf("vectorized w=%d vec=%d failed for %q: %v", workers, vec, text, err)
			}
			if !sqlcheck.SameRows(sqlcheck.Canon(lres.Rows), wantC) {
				t.Errorf("vectorized w=%d vec=%d differs from oracle for %q\n got %v\nwant %v",
					workers, vec, text, clip(lres.Rows), clip(want))
			}
		}
	}
}

func clip(rows [][]int64) [][]int64 {
	if len(rows) > 6 {
		return rows[:6]
	}
	return rows
}

// TestSQLDifferentialCorpus is the bounded random corpus: 200 seeded
// queries (alternating TPC-H and SSB schemas), each executed on the
// compiled backend, the vectorized backend across vector sizes
// {1, 1000, 4096} × workers {1, 4}, and the trusted oracle, asserting
// bit-identical row multisets throughout.
func TestSQLDifferentialCorpus(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	for seed := int64(0); seed < 200; seed++ {
		db := tpchDB
		if seed%2 == 1 {
			db = ssbDB
		}
		text := sqlcheck.Generate(rand.New(rand.NewSource(seed)), db)
		checkDifferential(t, db, text, fullGrid)
	}
}

// TestSQLDifferentialRaceSmoke is the CI -race job's corpus: small
// (25 queries), one multi-worker configuration, both backends — enough
// to catch data races in the fused pipelines and the shared merge
// machinery without the full grid's runtime under the race detector.
func TestSQLDifferentialRaceSmoke(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	cfg := diffConfig{vecSizes: []int{1000}, workers: []int{4}}
	for seed := int64(1000); seed < 1025; seed++ {
		db := tpchDB
		if seed%2 == 1 {
			db = ssbDB
		}
		text := sqlcheck.Generate(rand.New(rand.NewSource(seed)), db)
		checkDifferential(t, db, text, cfg)
	}
}

// FuzzSQLDifferential turns the corpus into a fuzz target: any seed
// must generate a query on which compiled, vectorized, and oracle
// execution agree. Wired into the CI fuzz smoke next to FuzzParse.
func FuzzSQLDifferential(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	tpchDB, ssbDB := sqlDBs()
	cfg := diffConfig{vecSizes: []int{1, 1000}, workers: []int{1, 4}}
	f.Fuzz(func(t *testing.T, seed int64) {
		db := tpchDB
		if seed%2 != 0 {
			db = ssbDB
		}
		text := sqlcheck.Generate(rand.New(rand.NewSource(seed)), db)
		checkDifferential(t, db, text, cfg)
	})
}
