package paradigms

import (
	"context"
	"strings"
	"sync"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/queries"
	"paradigms/internal/registry"
)

var (
	sqlDBOnce sync.Once
	sqlTPCH   *DB
	sqlSSB    *DB
)

func sqlDBs() (*DB, *DB) {
	sqlDBOnce.Do(func() {
		sqlTPCH = GenerateTPCH(0.01, 0)
		sqlSSB = GenerateSSB(0.01, 0)
	})
	return sqlTPCH, sqlSSB
}

// TestRunContextSQL: the facade accepts raw SQL on the engine with an
// ad-hoc path and rejects it on the one without.
func TestRunContextSQL(t *testing.T) {
	db, _ := sqlDBs()
	const q6 = `select sum(l_extendedprice * l_discount) from lineitem
		where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
		and l_discount between 0.05 and 0.07 and l_quantity < 24`

	res, err := Run(db, Tectorwise, q6, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.(*logical.Result).Rows
	if want := int64(queries.RefQ6(db)); len(rows) != 1 || rows[0][0] != want {
		t.Errorf("SQL Q6 = %v, want [[%d]]", rows, want)
	}

	if _, err := Run(db, Typer, q6, Options{}); err == nil || !strings.Contains(err.Error(), "ad-hoc") {
		t.Errorf("typer SQL err = %v, want no-ad-hoc-path error", err)
	}

	if _, err := Run(db, Tectorwise, "select nope from lineitem", Options{}); err == nil {
		t.Error("bad SQL did not error")
	}

	if _, ok := registry.LookupAdHoc(registry.Tectorwise); !ok {
		t.Error("tectorwise has no registered ad-hoc runner")
	}
}

// TestServiceSQL: the query service accepts raw SQL in Submit/Do,
// routing by the statement's FROM tables (TPC-H vs SSB), with oracle
// validation skipped for ad-hoc texts and errors (not panics) for
// malformed ones.
func TestServiceSQL(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	svc := NewService(tpchDB, ssbDB, ServiceOptions{})
	defer svc.Close()
	ctx := context.Background()

	res, err := svc.Do(ctx, string(Tectorwise), `select count(*) from orders`)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.(*logical.Result).Rows; rows[0][0] != int64(tpchDB.Rel("orders").Rows()) {
		t.Errorf("count(orders) = %v", rows)
	}

	// lineorder exists only in SSB: table routing must pick the SSB db.
	res, err = svc.Do(ctx, string(Tectorwise), `select count(*) from lineorder`)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.(*logical.Result).Rows; rows[0][0] != int64(ssbDB.Rel("lineorder").Rows()) {
		t.Errorf("count(lineorder) = %v", rows)
	}

	if _, err := svc.Do(ctx, string(Tectorwise), `select zap from lineitem`); err == nil {
		t.Error("malformed SQL served without error")
	}
	if _, err := svc.Do(ctx, string(Tectorwise), `select 1 from nosuch`); err == nil {
		t.Error("unknown table served without error")
	}

	st := svc.Stats()
	if st.Served != 2 || st.Failed != 2 {
		t.Errorf("stats = served %d failed %d, want 2/2", st.Served, st.Failed)
	}
}

// TestServiceSQLConcurrent: ad-hoc SQL and registered queries share the
// admission control machinery; mixed load stays race-free and correct.
func TestServiceSQLConcurrent(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	svc := NewService(tpchDB, ssbDB, ServiceOptions{WorkerBudget: 4, MaxConcurrent: 3})
	defer svc.Close()
	queriesMix := []string{
		"Q6",
		"Q1.1",
		`select count(*) from orders`,
		`select sum(lo_revenue) from lineorder where lo_discount between 1 and 3`,
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				q := queriesMix[(c+i)%len(queriesMix)]
				if _, err := svc.Do(context.Background(), string(Tectorwise), q); err != nil {
					t.Errorf("client %d query %q: %v", c, q, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := svc.Stats(); st.Served != 40 {
		t.Errorf("served %d, want 40", st.Served)
	}
}
