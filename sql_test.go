package paradigms

import (
	"context"
	"strings"
	"sync"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/queries"
	"paradigms/internal/registry"
)

var (
	sqlDBOnce sync.Once
	sqlTPCH   *DB
	sqlSSB    *DB
)

func sqlDBs() (*DB, *DB) {
	sqlDBOnce.Do(func() {
		sqlTPCH = GenerateTPCH(0.01, 0)
		sqlSSB = GenerateSSB(0.01, 0)
	})
	return sqlTPCH, sqlSSB
}

// TestRunContextSQL: the facade accepts raw SQL on both engines — the
// vectorized lowering on Tectorwise and the compiled fused-pipeline
// lowering on Typer — with bit-identical results, and rejects engines
// without an ad-hoc path.
func TestRunContextSQL(t *testing.T) {
	db, _ := sqlDBs()
	const q6 = `select sum(l_extendedprice * l_discount) from lineitem
		where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
		and l_discount between 0.05 and 0.07 and l_quantity < 24`

	want := int64(queries.RefQ6(db))
	for _, engine := range []Engine{Tectorwise, Typer} {
		res, err := Run(db, engine, q6, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		rows := res.(*logical.Result).Rows
		if len(rows) != 1 || rows[0][0] != want {
			t.Errorf("%s SQL Q6 = %v, want [[%d]]", engine, rows, want)
		}
	}

	if _, err := Run(db, Engine("reference"), q6, Options{}); err == nil || !strings.Contains(err.Error(), "ad-hoc") {
		t.Errorf("reference SQL err = %v, want no-ad-hoc-path error", err)
	}

	for _, engine := range []Engine{Tectorwise, Typer} {
		if _, err := Run(db, engine, "select nope from lineitem", Options{}); err == nil {
			t.Errorf("%s: bad SQL did not error", engine)
		}
	}

	for _, engine := range []string{registry.Tectorwise, registry.Typer} {
		if _, ok := registry.LookupAdHoc(engine); !ok {
			t.Errorf("%s has no registered ad-hoc runner", engine)
		}
	}
}

// TestServiceSQL: the query service accepts raw SQL in Submit/Do,
// routing by the statement's FROM tables (TPC-H vs SSB), with oracle
// validation skipped for ad-hoc texts and errors (not panics) for
// malformed ones.
func TestServiceSQL(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	svc := NewService(tpchDB, ssbDB, ServiceOptions{})
	defer svc.Close()
	ctx := context.Background()

	res, err := svc.Do(ctx, string(Tectorwise), `select count(*) from orders`)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.(*logical.Result).Rows; rows[0][0] != int64(tpchDB.Rel("orders").Rows()) {
		t.Errorf("count(orders) = %v", rows)
	}

	// lineorder exists only in SSB: table routing must pick the SSB db.
	res, err = svc.Do(ctx, string(Tectorwise), `select count(*) from lineorder`)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.(*logical.Result).Rows; rows[0][0] != int64(ssbDB.Rel("lineorder").Rows()) {
		t.Errorf("count(lineorder) = %v", rows)
	}

	if _, err := svc.Do(ctx, string(Tectorwise), `select zap from lineitem`); err == nil {
		t.Error("malformed SQL served without error")
	}
	if _, err := svc.Do(ctx, string(Tectorwise), `select 1 from nosuch`); err == nil {
		t.Error("unknown table served without error")
	}

	st := svc.Stats()
	if st.Served != 2 || st.Failed != 2 {
		t.Errorf("stats = served %d failed %d, want 2/2", st.Served, st.Failed)
	}
}

// TestServiceSQLConcurrent: ad-hoc SQL and registered queries share the
// admission control machinery on both engines (the vectorized and the
// compiled SQL backends); mixed load stays race-free and correct.
func TestServiceSQLConcurrent(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	svc := NewService(tpchDB, ssbDB, ServiceOptions{WorkerBudget: 4, MaxConcurrent: 3})
	defer svc.Close()
	queriesMix := []string{
		"Q6",
		"Q1.1",
		`select count(*) from orders`,
		`select sum(lo_revenue) from lineorder where lo_discount between 1 and 3`,
	}
	engines := []Engine{Tectorwise, Typer}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				q := queriesMix[(c+i)%len(queriesMix)]
				eng := engines[(c+i)%len(engines)]
				if _, err := svc.Do(context.Background(), string(eng), q); err != nil {
					t.Errorf("client %d query %q on %s: %v", c, q, eng, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := svc.Stats(); st.Served != 40 {
		t.Errorf("served %d, want 40", st.Served)
	}
}
