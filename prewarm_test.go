package paradigms

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"paradigms/internal/obs"
)

// TestPrewarmFromQueryLog is the restart scenario behind cmd/serve
// -prewarm: a first service instance executes prepared SQL with the
// structured query log enabled; a second instance mines that log at
// startup and pre-prepares the templates it finds — so the restarted
// server's first Prepare of a mined statement is a plan-cache hit, and
// its result matches the first instance's.
func TestPrewarmFromQueryLog(t *testing.T) {
	db := GenerateTPCH(0.001, 0)
	qlog := filepath.Join(t.TempDir(), "queries.ndjson")
	const sqlText = `select count(*) as big from lineitem where l_quantity > 30`
	ctx := context.Background()

	ql, err := obs.OpenQueryLog(qlog, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := NewService(db, nil, ServiceOptions{SkipValidation: true, QueryLog: ql})
	p1, err := svc1.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	var want any
	for i := 0; i < 3; i++ {
		want, err = svc1.DoPrepared(ctx, "tectorwise", p1)
		if err != nil {
			t.Fatal(err)
		}
	}
	svc1.Close()
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := NewService(db, nil, ServiceOptions{SkipValidation: true, Prewarm: qlog})
	defer svc2.Close()
	st := svc2.Stats()
	if st.PlanCacheMisses == 0 {
		t.Fatal("prewarm prepared nothing (no plan-cache misses at startup)")
	}
	if st.PlanCacheHits != 0 {
		t.Fatalf("plan cache reports %d hits before any client Prepare", st.PlanCacheHits)
	}
	p2, err := svc2.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	if after := svc2.Stats(); after.PlanCacheHits == 0 {
		t.Fatal("first Prepare after prewarm missed the plan cache")
	}
	got, err := svc2.DoPrepared(ctx, "typer", p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("prewarmed statement result %v differs from pre-restart result %v", got, want)
	}
}
