package paradigms

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"time"

	"paradigms/internal/compiled"
	"paradigms/internal/exchange"
	"paradigms/internal/feedback"
	"paradigms/internal/hybrid"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/prepcache"
	"paradigms/internal/server"
	"paradigms/internal/sql"
)

// ServiceOptions configures NewService. The zero value picks the
// server package's defaults and enables result validation.
type ServiceOptions struct {
	// WorkerBudget, MaxConcurrent, MaxQueued configure admission control;
	// see server.Config.
	WorkerBudget  int
	MaxConcurrent int
	MaxQueued     int
	// VectorSize is Tectorwise's tuples-per-vector (0 = default).
	VectorSize int
	// SkipValidation disables checking every result against the
	// internal/queries reference oracles. Validation references are
	// computed once per query and cached, so steady-state cost is one
	// reflect.DeepEqual per query.
	SkipValidation bool
	// PlanCacheSize bounds the prepared-statement plan cache (0 =
	// prepcache.DefaultCapacity). Statements evicted under pressure
	// simply re-prepare on their next Prepare call.
	PlanCacheSize int
	// MaxQueuedPerTenant, MaxPerTenant, TenantCaps, TenantWeights, and
	// FIFO configure the per-tenant scheduler; see server.Config.
	MaxQueuedPerTenant int
	MaxPerTenant       int
	TenantCaps         map[string]int
	TenantWeights      map[string]int
	FIFO               bool
	// StreamChunk is the row-batch granularity of streaming submissions
	// (0 = logical.DefaultStreamChunk).
	StreamChunk int
	// YieldPause and MorselSize tune the morsel-level fairness throttle;
	// see server.Config.
	YieldPause time.Duration
	MorselSize int
	// Metrics, if non-nil, receives per-query and per-pipeline latency
	// observations from every execution (rendered by the proto server's
	// /metricsz). QueryLog, if non-nil, receives one structured NDJSON
	// record per finished query (cmd/serve -qlog). Setting either
	// instruments every execution with a telemetry collector; leaving
	// both nil keeps executions collector-free (EXPLAIN ANALYZE
	// submissions still instrument themselves via Req.Collector).
	Metrics  *obs.Metrics
	QueryLog *obs.QueryLog
	// Prewarm, if non-empty, names a query-log NDJSON file (the format
	// QueryLog writes) to mine at startup: the heavy-hitter SQL
	// templates found there are prepared into the plan cache before the
	// service takes traffic, planned with the cardinality hints learned
	// from the logged per-pipeline telemetry — so a restarted server's
	// first queries hit warm, feedback-informed plans (cmd/serve
	// -prewarm).
	Prewarm string
	// NoFeedback disables the cardinality-feedback loop on prepared
	// statements. By default every prepared statement records its
	// observed per-pipeline cardinalities and re-plans itself when they
	// drift a sustained 4x from the optimizer's estimates.
	NoFeedback bool
	// Shards, when > 1, hash-partitions each loaded database into that
	// many in-process shards (internal/exchange) and routes
	// distributable ad-hoc SQL on the typer and tectorwise engines
	// through scatter/gather exchanges — one SQL text fans out across
	// the shards and the partial aggregates merge on the coordinator.
	// Plans the distribute rewrite rejects, registered query names,
	// prepared statements, streaming submissions, and the hybrid
	// engine keep running single-process on the full data.
	Shards int
}

// NewService builds a concurrent query service over the given databases.
// Either database may be nil; queries routed to a missing database fail
// with an error rather than panicking. Query names containing a dot
// ("Q1.1") route to the SSB database, all others to TPC-H. Ad-hoc SQL
// texts route by their FROM tables: the first loaded database whose
// catalog has them all wins (TPC-H, then SSB).
func NewService(tpchDB, ssbDB *DB, opt ServiceOptions) *server.Service {
	route := func(query string) (*DB, error) {
		if sql.IsQuery(query) {
			return logical.RouteByTables(query, tpchDB, ssbDB)
		}
		db := tpchDB
		if strings.ContainsRune(query, '.') {
			db = ssbDB
		}
		if db == nil {
			return nil, fmt.Errorf("paradigms: no database loaded for query %q", query)
		}
		return db, nil
	}

	// Sharded execution: each loaded database gets its own cluster of
	// catalog slices; the Exec hook below fans distributable ad-hoc SQL
	// out through it.
	clusters := make(map[*DB]*exchange.Cluster)
	if opt.Shards > 1 {
		for _, db := range []*DB{tpchDB, ssbDB} {
			if db == nil {
				continue
			}
			if cl, err := exchange.New(db, opt.Shards); err == nil {
				clusters[db] = cl
			}
		}
	}

	cache := prepcache.New(opt.PlanCacheSize)

	// prepare is the one path onto the plan cache (Prep below and the
	// startup pre-warm): fetch or build the statement, then arm its
	// cardinality-feedback loop so sustained estimate drift re-plans it
	// with observed selectivities.
	fbStore := feedback.NewStore()
	prepare := func(query string, hints logical.CardHints) (*prepcache.Statement, error) {
		db, err := route(query)
		if err != nil {
			return nil, err
		}
		cat := logical.CatalogFor(db)
		st, _, err := cache.GetOrPrepare(cat, query, func() (*logical.Plan, error) {
			return logical.PrepareHints(db, query, hints)
		})
		if err != nil {
			return nil, err
		}
		if !opt.NoFeedback {
			st.EnableFeedback(fbStore, cat.Version, func(h logical.CardHints) (*logical.Plan, error) {
				return logical.PrepareHints(db, query, h)
			})
		}
		return st, nil
	}

	if opt.Prewarm != "" {
		// Best-effort: a missing or torn log must not stop the server.
		if tmpls, err := feedback.MineLog(opt.Prewarm, 0); err == nil {
			for _, t := range tmpls {
				if !sql.IsQuery(t.SQL) {
					continue // registered query names are planless
				}
				prepare(t.SQL, t.Hints())
			}
		}
	}

	cfg := server.Config{
		WorkerBudget:       opt.WorkerBudget,
		MaxConcurrent:      opt.MaxConcurrent,
		MaxQueued:          opt.MaxQueued,
		MaxQueuedPerTenant: opt.MaxQueuedPerTenant,
		MaxPerTenant:       opt.MaxPerTenant,
		TenantCaps:         opt.TenantCaps,
		TenantWeights:      opt.TenantWeights,
		FIFO:               opt.FIFO,
		YieldPause:         opt.YieldPause,
		MorselSize:         opt.MorselSize,
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			db, err := route(query)
			if err != nil {
				return nil, err
			}
			if cl := clusters[db]; cl != nil && sql.IsQuery(query) &&
				(engine == string(Typer) || engine == string(Tectorwise)) {
				return cl.Run(ctx, exchange.Request{
					SQL: query, Engine: engine,
					Workers: workers, VecSize: opt.VectorSize,
				})
			}
			return RunContext(ctx, db, Engine(engine), query,
				Options{Workers: workers, VectorSize: opt.VectorSize})
		},
		// Prepared statements: Prepare routes the SQL text to its
		// database and fetches (or builds) the optimized parameterized
		// plan from the LRU cache — a hit skips parse, bind, and plan
		// entirely. Execution binds one argument set into a
		// copy-on-write clone and runs it on the requested backend;
		// engine "auto" resolves through the statement's adaptive
		// router, which learns each backend's latency per statement and
		// exploits the paper's finding that neither paradigm dominates.
		Prep: func(query string) (any, error) {
			if !sql.IsQuery(query) {
				return nil, fmt.Errorf("paradigms: only ad-hoc SQL texts can be prepared (got query name %q)", query)
			}
			st, err := prepare(query, nil)
			if err != nil {
				return nil, err
			}
			return st, nil
		},
		ExecPrep: func(ctx context.Context, engine string, stmt any, args []string, workers int) (any, string, error) {
			st := stmt.(*prepcache.Statement)
			vals, err := st.BindTexts(args)
			if err != nil {
				return nil, engine, err
			}
			res, used, err := st.Execute(ctx, engine, vals, workers, opt.VectorSize)
			if err != nil {
				return nil, used, err
			}
			return res, used, nil
		},
		// Streaming execution: result batches flush to the submission's
		// sink as each morsel-merge completes instead of materializing
		// (logical.RowSink — see internal/logical/stream.go for when
		// streaming is truly incremental). The network front-end
		// (internal/proto) is the sink's main producer; validation is
		// skipped for streams, and the SQL cross-engine equivalence suite
		// covers streamed-vs-materialized instead.
		ExecStream: func(ctx context.Context, engine, query string, workers int, sink any) (string, error) {
			rs, ok := sink.(logical.RowSink)
			if !ok {
				return engine, fmt.Errorf("paradigms: stream sink must implement logical.RowSink (got %T)", sink)
			}
			if !sql.IsQuery(query) {
				return engine, fmt.Errorf("paradigms: only ad-hoc SQL texts can stream (got query name %q)", query)
			}
			db, err := route(query)
			if err != nil {
				return engine, err
			}
			pl, err := logical.Prepare(db, query)
			if err != nil {
				return engine, err
			}
			switch engine {
			case string(Typer):
				return engine, compiled.ExecuteStream(ctx, pl, workers, opt.StreamChunk, rs)
			case string(Tectorwise):
				return engine, pl.ExecuteStream(ctx, workers, opt.VectorSize, opt.StreamChunk, rs)
			case string(Hybrid):
				// Routed so the end frame reports the per-pipeline
				// assignment ("hybrid[t,v]"), exactly like the prepared
				// and materializing hybrid paths.
				rep, err := hybrid.ExecuteStreamRouted(ctx, pl, workers, opt.VectorSize, opt.StreamChunk, nil, rs)
				if err == nil && rep != nil {
					return engine + rep.Suffix(), nil
				}
				return engine, err
			default:
				return engine, fmt.Errorf("paradigms: engine %q cannot stream ad-hoc SQL (use %s, %s, or %s)", engine, Typer, Tectorwise, Hybrid)
			}
		},
		ExecPrepStream: func(ctx context.Context, engine string, stmt any, args []string, workers int, sink any) (string, error) {
			rs, ok := sink.(logical.RowSink)
			if !ok {
				return engine, fmt.Errorf("paradigms: stream sink must implement logical.RowSink (got %T)", sink)
			}
			st := stmt.(*prepcache.Statement)
			vals, err := st.BindTexts(args)
			if err != nil {
				return engine, err
			}
			return st.ExecuteStream(ctx, engine, vals, workers, opt.VectorSize, opt.StreamChunk, rs)
		},
		PlanCacheStats: func() (hits, misses, evictions uint64) {
			hits, misses, evictions, _ = cache.Stats()
			return hits, misses, evictions
		},
		// Per-engine stats attribution counts hybrid executions under one
		// "hybrid" key regardless of their per-pipeline assignment
		// decoration ("hybrid[t,v]" vs "hybrid[t,t]").
		EngineKey: prepcache.BaseEngine,
	}

	if opt.Metrics != nil || opt.QueryLog != nil {
		cfg.ObsBegin = obs.NewCollector
		cfg.ObsEnd = func(col *obs.Collector, info server.QueryInfo) {
			pipes := col.Pipes()
			if opt.Metrics != nil && info.Err == nil {
				opt.Metrics.ObserveQuery(prepcache.BaseEngine(info.Used), info.Latency.Seconds())
				opt.Metrics.ObservePipes(pipes)
			}
			if opt.QueryLog == nil {
				return
			}
			rec := obs.QueryRecord{
				Time:      time.Now().UTC().Format(time.RFC3339Nano),
				Tenant:    info.Tenant,
				Engine:    info.Engine,
				Used:      info.Used,
				SQL:       info.Query,
				Prepared:  info.Prepared,
				Streamed:  info.Streamed,
				PlanShape: obs.ShapeHash(pipes),
				LatencyMs: float64(info.Latency) / float64(time.Millisecond),
				Rows:      info.Rows,
				Pipes:     pipes,
			}
			if sql.IsQuery(info.Query) {
				rec.SQL = prepcache.Normalize(info.Query)
				if db, err := route(info.Query); err == nil {
					rec.CatalogVersion = logical.CatalogFor(db).Version
				}
			}
			if res, ok := info.Result.(*logical.Result); ok {
				rec.Rows = int64(len(res.Rows))
			}
			if info.Err != nil {
				rec.Err = info.Err.Error()
			}
			opt.QueryLog.Write(&rec)
		}
	}

	if !opt.SkipValidation {
		// One lazily computed reference per query, each behind its own
		// Once so cold-start validation of distinct queries does not
		// serialize across the service.
		type refEntry struct {
			once sync.Once
			want any
			err  error
		}
		var refs sync.Map // query name → *refEntry
		cfg.Validate = func(query string, result any) error {
			if sql.IsQuery(query) {
				// Ad-hoc SQL has no registered oracle; the SQL
				// cross-validation suite covers the lowering.
				return nil
			}
			db, err := route(query)
			if err != nil {
				return err
			}
			e, _ := refs.LoadOrStore(query, &refEntry{})
			entry := e.(*refEntry)
			entry.once.Do(func() {
				entry.want, entry.err = Reference(db, query)
			})
			if entry.err != nil {
				return entry.err
			}
			if !reflect.DeepEqual(result, entry.want) {
				return fmt.Errorf("paradigms: %s result differs from reference", query)
			}
			return nil
		}
	}

	return server.New(cfg)
}
