module paradigms

go 1.22
