package paradigms

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"paradigms/internal/compiled"
	"paradigms/internal/exchange"
	"paradigms/internal/logical"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
)

// The sharded differential harness: the same generated corpus the
// single-process engines are proven on, executed through the exchange
// path — hash-partitioned shards, per-shard partial execution on both
// backends, coordinator gather/merge — against the naive oracle.

type clusterKey struct {
	db *storage.Database
	n  int
}

var (
	clusterMu  sync.Mutex
	clusterMap = map[clusterKey]*exchange.Cluster{}
)

// clusterFor builds (once per database × shard count) the shared
// cluster the sharded tests run against — partitioning the corpus
// databases is the expensive step, the queries are cheap.
func clusterFor(t testing.TB, db *storage.Database, n int) *exchange.Cluster {
	t.Helper()
	clusterMu.Lock()
	defer clusterMu.Unlock()
	k := clusterKey{db, n}
	if cl, ok := clusterMap[k]; ok {
		return cl
	}
	cl, err := exchange.New(db, n)
	if err != nil {
		t.Fatalf("exchange.New(n=%d): %v", n, err)
	}
	clusterMap[k] = cl
	return cl
}

// checkSharded runs one SQL text through an n-shard cluster on both
// backends and fails on any mismatch with the oracle.
func checkSharded(t *testing.T, db *storage.Database, text string, n int) {
	t.Helper()
	ctx := context.Background()
	want, err := sqlcheck.Oracle(db, text)
	if err != nil {
		t.Fatalf("oracle failed for %q: %v", text, err)
	}
	wantC := sqlcheck.Canon(want)
	cl := clusterFor(t, db, n)
	for _, engine := range []string{exchange.EngineTyper, exchange.EngineTectorwise} {
		res, err := cl.Run(ctx, exchange.Request{SQL: text, Engine: engine, Workers: 4, VecSize: 1000})
		if err != nil {
			t.Fatalf("sharded %s n=%d failed for %q: %v", engine, n, text, err)
		}
		if !sqlcheck.SameRows(sqlcheck.Canon(res.Rows), wantC) {
			t.Errorf("sharded %s n=%d differs from oracle for %q\n got %v\nwant %v",
				engine, n, text, clip(res.Rows), clip(want))
		}
	}
}

// TestSQLShardedDifferentialCorpus is the acceptance bar of the
// sharded path: the full 200-query corpus (alternating TPC-H and SSB
// schemas), each query fanned out over 2 shards on both backends and
// compared with the oracle — zero mismatches.
func TestSQLShardedDifferentialCorpus(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	for seed := int64(0); seed < 200; seed++ {
		db := tpchDB
		if seed%2 == 1 {
			db = ssbDB
		}
		text := sqlcheck.Generate(rand.New(rand.NewSource(seed)), db)
		checkSharded(t, db, text, 2)
	}
}

// TestShardedGridSmoke is the CI shard-count grid: a corpus slice
// through N ∈ {1, 2, 8} shards, so degenerate (one shard) and sparse
// (more shards than some key ranges) fan-outs stay covered.
func TestShardedGridSmoke(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	for _, n := range []int{1, 2, 8} {
		for seed := int64(0); seed < 25; seed++ {
			db := tpchDB
			if seed%2 == 1 {
				db = ssbDB
			}
			text := sqlcheck.Generate(rand.New(rand.NewSource(seed)), db)
			checkSharded(t, db, text, n)
		}
	}
}

// TestServiceSharded: the service option wires the exchange in — a
// service built with Shards > 1 answers distributable ad-hoc SQL on
// both engines through the sharded path, transparently: same results
// as the oracle, and registered query names plus non-distributable
// texts keep working through the single-process path.
func TestServiceSharded(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	svc := NewService(tpchDB, ssbDB, ServiceOptions{Shards: 3})
	defer svc.Close()
	ctx := context.Background()

	cases := []struct {
		db   *storage.Database
		text string
	}{
		// Scatters: co-partitioned fact join with grouped aggregation.
		{tpchDB, "select o_orderkey, sum(l_extendedprice), count(*) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey order by o_orderkey limit 7"},
		// Routes to the SSB database; lo_custkey-partitioned scan.
		{ssbDB, "select sum(lo_revenue) from lineorder where lo_discount between 1 and 3"},
		// Replicated-only: pins to one shard.
		{tpchDB, "select count(*) from nation"},
	}
	for _, tc := range cases {
		db, text := tc.db, tc.text
		want, err := sqlcheck.Oracle(db, text)
		if err != nil {
			t.Fatalf("oracle for %q: %v", text, err)
		}
		for _, engine := range []Engine{Typer, Tectorwise} {
			res, err := svc.Do(ctx, string(engine), text)
			if err != nil {
				t.Fatalf("%s %q: %v", engine, text, err)
			}
			rows := res.(*logical.Result).Rows
			if !sqlcheck.SameRows(sqlcheck.Canon(rows), sqlcheck.Canon(want)) {
				t.Errorf("%s sharded service differs for %q\n got %v\nwant %v", engine, text, clip(rows), clip(want))
			}
		}
	}

	// Registered query names bypass the exchange and still serve.
	if _, err := svc.Do(ctx, string(Typer), "Q6"); err != nil {
		t.Fatalf("registered query through sharded service: %v", err)
	}
}

// TestShardedOneShardBitIdentical: an N=1 cluster shares the base
// database with its single shard and merges one partial, so its result
// must match single-process execution bit-identically — row order
// included — on both backends. Single-worker execution keeps the
// concatenation order deterministic on both sides.
func TestShardedOneShardBitIdentical(t *testing.T) {
	tpchDB, ssbDB := sqlDBs()
	ctx := context.Background()
	for seed := int64(0); seed < 40; seed++ {
		db := tpchDB
		if seed%2 == 1 {
			db = ssbDB
		}
		text := sqlcheck.Generate(rand.New(rand.NewSource(seed)), db)
		cl := clusterFor(t, db, 1)

		want, err := compiled.Run(ctx, db, text, 1)
		if err != nil {
			t.Fatalf("compiled failed for %q: %v", text, err)
		}
		got, err := cl.Run(ctx, exchange.Request{SQL: text, Engine: exchange.EngineTyper, Workers: 1})
		if err != nil {
			t.Fatalf("sharded typer failed for %q: %v", text, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("typer n=1 not bit-identical for %q\n got %v\nwant %v", text, clip(got.Rows), clip(want.Rows))
		}

		lwant, err := logical.Run(ctx, db, text, 1, 1000)
		if err != nil {
			t.Fatalf("vectorized failed for %q: %v", text, err)
		}
		lgot, err := cl.Run(ctx, exchange.Request{SQL: text, Engine: exchange.EngineTectorwise, Workers: 1, VecSize: 1000})
		if err != nil {
			t.Fatalf("sharded tectorwise failed for %q: %v", text, err)
		}
		if !reflect.DeepEqual(lgot.Rows, lwant.Rows) {
			t.Errorf("tectorwise n=1 not bit-identical for %q\n got %v\nwant %v", text, clip(lgot.Rows), clip(lwant.Rows))
		}
	}
}

// BenchmarkShardedVsSingle measures the exchange overhead and scaling
// of the sharded path against plain single-process execution on a
// grouped fact-table join — the shape the distribute rewrite scatters.
// In-process, sharding splits the same worker budget across shards, so
// this is an overhead/scaling probe, not a speedup claim.
func BenchmarkShardedVsSingle(b *testing.B) {
	tpchDB, _ := sqlDBs()
	const text = "select o_orderkey, sum(l_extendedprice), count(*) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey"
	ctx := context.Background()
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Run(ctx, tpchDB, text, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{2, 4} {
		cl, err := exchange.New(tpchDB, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sharded-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cl.Run(ctx, exchange.Request{SQL: text, Engine: exchange.EngineTyper}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
