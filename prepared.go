package paradigms

import (
	"context"

	"paradigms/internal/logical"
	"paradigms/internal/prepcache"
)

// Auto is the adaptive pseudo-engine of prepared statements: each
// execution routes to whichever backend the statement's router
// currently measures as faster (epsilon-greedy over observed
// latencies) — the serving-time exploitation of the paper's finding
// that neither paradigm dominates. Only prepared statements accept it;
// one-shot RunContext calls have no latency history to route on.
const Auto Engine = prepcache.Auto

// Stmt is a prepared statement outside the query service: the SQL text
// — with optional `?` placeholders — parsed, bound, and optimized once
// against one database, executable many times with per-call argument
// bindings on either engine (or Auto). Safe for concurrent use. Inside
// the service, use Service.Prepare/DoPrepared instead, which add the
// shared plan cache and admission control.
type Stmt struct {
	s *prepcache.Statement
}

// Prepare parses, binds, and optimizes a SQL text against db's catalog.
func Prepare(db *DB, text string) (*Stmt, error) {
	pl, err := logical.Prepare(db, text)
	if err != nil {
		return nil, err
	}
	return &Stmt{s: prepcache.NewStatement(prepcache.Normalize(text), pl)}, nil
}

// SQL is the normalized statement text.
func (s *Stmt) SQL() string { return s.s.Text }

// NumParams is the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.s.NumParams() }

// Exec runs the statement with one argument binding (one text per
// placeholder; dates as YYYY-MM-DD, numerics at the slot's scale). It
// returns the result and the engine that actually executed — equal to
// the requested engine unless Auto resolved it.
func (s *Stmt) Exec(ctx context.Context, engine Engine, args []string, opt Options) (*logical.Result, Engine, error) {
	vals, err := s.s.BindTexts(args)
	if err != nil {
		return nil, engine, err
	}
	res, used, err := s.s.Execute(ctx, string(engine), vals, opt.Workers, opt.VectorSize)
	return res, Engine(used), err
}
