// Package bench is the experiment harness: it runs every experiment of
// the paper's evaluation (§3–§8) and renders "paper vs. measured"
// tables. One function per table/figure; cmd/repro and the root
// benchmarks call in here (see DESIGN.md §4 for the experiment index).
package bench

// Paper-reported numbers, used for side-by-side output and shape checks.
// Sources: the tables and figures of Kersten et al., PVLDB 11(13), 2018.

// PaperFig3 is Figure 3: TPC-H SF 1, single-threaded runtimes (ms).
var PaperFig3 = map[string]struct{ Typer, TW float64 }{
	"Q1":  {44, 85},
	"Q6":  {15, 15},
	"Q3":  {47, 44},
	"Q9":  {126, 111},
	"Q18": {90, 154},
}

// PaperTable1 is Table 1: per-tuple counters at SF 1, one thread.
type PaperCounterRow struct {
	Cycles, IPC, Instr, L1Miss, LLCMiss, BranchMiss float64
}

// PaperTable1 rows keyed by "engine/query".
var PaperTable1 = map[string]PaperCounterRow{
	"typer/Q1":       {34, 2.0, 68, 0.6, 0.57, 0.01},
	"tectorwise/Q1":  {59, 2.8, 162, 2.0, 0.57, 0.03},
	"typer/Q6":       {11, 1.8, 20, 0.3, 0.35, 0.06},
	"tectorwise/Q6":  {11, 1.4, 15, 0.2, 0.29, 0.01},
	"typer/Q3":       {25, 0.8, 21, 0.5, 0.16, 0.27},
	"tectorwise/Q3":  {24, 1.8, 42, 0.9, 0.16, 0.08},
	"typer/Q9":       {74, 0.6, 42, 1.7, 0.46, 0.34},
	"tectorwise/Q9":  {56, 1.3, 76, 2.1, 0.47, 0.39},
	"typer/Q18":      {30, 1.6, 46, 0.8, 0.19, 0.16},
	"tectorwise/Q18": {48, 2.1, 102, 1.9, 0.18, 0.37},
}

// PaperSSB is the §4.4 SSB counter table (SF 30, one thread); the last
// field is memory-stall cycles per tuple.
type PaperSSBRow struct {
	Cycles, IPC, Instr, L1Miss, LLCMiss, BranchMiss, MemStall float64
}

// PaperSSBTable rows keyed by "engine/query".
var PaperSSBTable = map[string]PaperSSBRow{
	"typer/Q1.1":      {28, 0.7, 21, 0.3, 0.31, 0.69, 6.33},
	"tectorwise/Q1.1": {12, 2.0, 23, 0.4, 0.29, 0.05, 2.77},
	"typer/Q2.1":      {39, 0.8, 30, 1.3, 0.12, 0.17, 18.35},
	"tectorwise/Q2.1": {30, 1.5, 44, 1.6, 0.13, 0.23, 7.63},
	"typer/Q3.1":      {55, 0.7, 40, 1.1, 0.20, 0.24, 27.95},
	"tectorwise/Q3.1": {53, 1.3, 71, 1.7, 0.23, 0.41, 15.68},
	"typer/Q4.1":      {78, 0.5, 39, 1.8, 0.31, 0.38, 45.91},
	"tectorwise/Q4.1": {59, 1.0, 61, 2.5, 0.32, 0.63, 19.48},
}

// PaperTable2 is Table 2: production systems vs. the test system (ms,
// SF 1, one thread).
var PaperTable2 = map[string]struct{ HyPer, VectorWise, Typer, TW float64 }{
	"Q1":  {53, 71, 44, 85},
	"Q6":  {10, 21, 15, 15},
	"Q3":  {48, 50, 47, 44},
	"Q9":  {124, 154, 126, 111},
	"Q18": {224, 159, 90, 154},
}

// PaperTable3 is Table 3: multi-threaded TPC-H SF 100 on Skylake
// (runtime ms at 1/10/20 threads).
var PaperTable3 = map[string]struct {
	Typer1, Typer10, Typer20 float64
	TW1, TW10, TW20          float64
}{
	"Q1":  {4426, 496, 466, 7871, 867, 708},
	"Q6":  {1511, 243, 236, 1443, 213, 196},
	"Q3":  {9754, 1119, 842, 7627, 913, 743},
	"Q9":  {28086, 3047, 2525, 20371, 2394, 2083},
	"Q18": {13620, 2099, 1955, 18072, 2432, 2026},
}

// PaperTable5 is Table 5: SSD (1.4 GB/s), SF 100, 20 threads (ms).
var PaperTable5 = map[string]struct{ Typer, TW float64 }{
	"Q1":  {923, 1184},
	"Q6":  {808, 773},
	"Q3":  {1405, 1313},
	"Q9":  {3268, 2827},
	"Q18": {2747, 2795},
}

// PaperFig6 are the Figure 6 SIMD selection speedups.
var PaperFig6 = struct{ Dense, Sparse, Q6 float64 }{8.4, 2.7, 1.4}

// PaperFig8 are the Figure 8 SIMD join-probing speedups.
var PaperFig8 = struct{ Hash, Gather, Probe, Q3, Q9 float64 }{2.3, 1.1, 1.4, 1.1, 1.1}

// PaperFig5 records Figure 5's qualitative findings: vector sizes below
// 64 and above 64K are significantly slower than 1K.
var PaperFig5Note = "vector size sweet spot ≈1K; <64 and >64K degrade significantly"

// PaperSpeedups are §6.1's reported average speedups of the production
// systems at 20 hyper-threads (HyPer morsel-driven vs VectorWise
// exchange).
var PaperSpeedups = struct{ HyPer, VectorWise float64 }{11.7, 7.2}

// Table6 is the paper's taxonomy of query processing models (Table 6).
var Table6 = []struct {
	System, Pipelining, Execution string
	Year                          int
}{
	{"System R", "pull", "interpretation", 1974},
	{"PushPull", "push", "interpretation", 2001},
	{"MonetDB", "n/a", "vectorization", 1996},
	{"VectorWise", "pull", "vectorization", 2005},
	{"Virtuoso", "push", "vectorization", 2013},
	{"Hique", "n/a", "compilation", 2010},
	{"HyPer", "push", "compilation", 2011},
	{"Hekaton", "pull", "compilation", 2014},
	{"Typer (this repo)", "push", "compilation", 2018},
	{"Tectorwise (this repo)", "pull", "vectorization", 2018},
}

// EC2Note reproduces §6.2's cost observation as model constants:
// price-per-hour and measured geomean runtime for two instance sizes.
var EC2 = []struct {
	Instance  string
	VCPUs     int
	PricePerH float64
	GeomeanMS float64
}{
	{"m5.2xlarge", 8, 0.384, 2027},
	{"m5.12xlarge", 48, 2.304, 534},
}
