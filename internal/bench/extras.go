package bench

import (
	"fmt"
	"strings"
	"time"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
	"paradigms/internal/tw"
	"paradigms/internal/typer"
)

// The §8 "other factors" experiments and the DESIGN.md §6 ablations.

// CompileText quantifies §8.2: plan/setup cost per query for both
// engines. Go ships Typer's "generated" code pre-compiled (DESIGN.md S1),
// so the LLVM-compilation asymmetry of the paper cannot be measured
// directly; what can is the per-query setup work (Tectorwise allocates an
// operator tree plus vector buffers per worker; Typer's setup is a few
// dispatchers). The paper's qualitative claim is reported alongside.
func CompileText() string {
	db := tpch.Generate(0.001, 1)
	var b strings.Builder
	b.WriteString("§8.2 — query setup time (1-row-scale database, so execution ≈ 0)\n")
	for _, q := range queries.TPCHQueries {
		ty := timeQuery(5, func() { RunTPCH(db, "typer", q, 1, 0) })
		tww := timeQuery(5, func() { RunTPCH(db, "tectorwise", q, 1, 0) })
		fmt.Fprintf(&b, "%-5s  Typer setup+run %8.3fms   TW setup+run %8.3fms\n", q, ms(ty), ms(tww))
	}
	b.WriteString("(paper: compilation-based engines risk compile time > execution time;\n" +
		" vectorized engines pre-compile primitives. Here both are AOT-compiled;\n" +
		" TW's extra setup is its per-worker vector-buffer allocation.)\n")
	return b.String()
}

// ProfilingText demonstrates §8.3: Tectorwise can attribute runtime to
// primitives with marginal overhead, because one timer covers ~1000
// tuples. The demo times Q6's primitive classes.
func ProfilingText(db *storage.Database, cfg Config) string {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	vec := 1000

	var selTime, projTime, sumTime time.Duration
	run := func(profile bool) time.Duration {
		sel1 := make([]int32, vec)
		sel2 := make([]int32, vec)
		prod := make([]int64, vec)
		start := time.Now()
		var sum int64
		disp := exec.NewDispatcher(li.Rows(), 0)
		scan := tw.NewScan(disp, vec)
		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			var t0 time.Time
			if profile {
				t0 = time.Now()
			}
			k := tw.SelGE(ship[b:b+n], queries.Q6DateLo, sel1)
			k = tw.SelLTSel(ship[b:b+n], queries.Q6DateHi, sel1[:k], sel2)
			k = tw.SelGESel(disc[b:b+n], queries.Q6DiscLo, sel2[:k], sel1)
			k = tw.SelLESel(disc[b:b+n], queries.Q6DiscHi, sel1[:k], sel2)
			k = tw.SelLTSel(qty[b:b+n], queries.Q6Quantity, sel2[:k], sel1)
			if profile {
				selTime += time.Since(t0)
			}
			if k == 0 {
				continue
			}
			if profile {
				t0 = time.Now()
			}
			tw.MapMulColsSel(ext[b:b+n], disc[b:b+n], sel1[:k], prod)
			if profile {
				projTime += time.Since(t0)
				t0 = time.Now()
			}
			sum += tw.SumI64(prod, k)
			if profile {
				sumTime += time.Since(t0)
			}
		}
		_ = sum
		return time.Since(start)
	}
	plain := timeQuery(cfg.Reps, func() { run(false) })
	selTime, projTime, sumTime = 0, 0, 0
	profiled := run(true)

	var b strings.Builder
	b.WriteString("§8.3 — per-primitive profiling of Tectorwise Q6\n")
	fmt.Fprintf(&b, "unprofiled run: %8.1fms   profiled run: %8.1fms   overhead: %+.1f%%\n",
		ms(plain), ms(profiled), (float64(profiled)/float64(plain)-1)*100)
	total := selTime + projTime + sumTime
	if total > 0 {
		fmt.Fprintf(&b, "breakdown: selection %4.1f%%  projection %4.1f%%  sum %4.1f%%\n",
			100*float64(selTime)/float64(total),
			100*float64(projTime)/float64(total),
			100*float64(sumTime)/float64(total))
	}
	b.WriteString("(paper: primitive timers add marginal overhead since each call covers ~1000 tuples;\n" +
		" compiled engines cannot attribute time to operators inside a fused pipeline)\n")
	return b.String()
}

// AdaptivityText demonstrates §8.4: the micro-adaptive ordered
// aggregation lets the vectorized Q1 skip per-tuple hashing.
func AdaptivityText(db *storage.Database, cfg Config) string {
	std := timeQuery(cfg.Reps, func() { tw.Q1(db, 1, 0) })
	adaptive := timeQuery(cfg.Reps, func() { tw.Q1Adaptive(db, 1, 0) })
	var b strings.Builder
	b.WriteString("§8.4 — adaptive ordered aggregation (Tectorwise Q1, 1 thread)\n")
	fmt.Fprintf(&b, "hash aggregation:    %8.1fms\n", ms(std))
	fmt.Fprintf(&b, "ordered aggregation: %8.1fms   speedup %.2fx\n",
		ms(adaptive), float64(std)/float64(adaptive))
	b.WriteString("(paper: this optimization is why VectorWise beats Tectorwise on Q1;\n" +
		" it is possible because vectorized execution is interpreted and can swap\n" +
		" primitives mid-flight — compiled pipelines cannot)\n")
	return b.String()
}

// OLTPText demonstrates §8.1: point lookups (stored-procedure style)
// favor fused code; vector-at-a-time machinery degenerates at n=1.
func OLTPText(cfg Config) string {
	const tableSize = 1 << 20
	const lookups = 1 << 20
	// One table per engine style, each built with that engine's hash
	// function (as in §4.1).
	build := func(hf func(uint64) uint64) *hashtable.Table {
		t := hashtable.New(2, 1)
		sh := t.Shard(0)
		for i := uint64(0); i < tableSize; i++ {
			ref, _ := sh.Alloc(t, hf(i))
			t.SetWord(ref, 0, i)
			t.SetWord(ref, 1, i*3)
		}
		t.Finalize()
		return t
	}
	ht := build(hashtable.Mix64)
	htTW := build(hashtable.Murmur2)

	// Typer-style stored procedure: fused hash + probe per call.
	fused := timeQuery(cfg.Reps, func() {
		var sink uint64
		for i := uint64(0); i < lookups; i++ {
			key := (i * 2654435761) % tableSize
			h := hashtable.Mix64(key)
			for ref := ht.Lookup(h); ref != 0; ref = ht.Next(ref) {
				if ht.Hash(ref) == h && ht.Word(ref, 0) == key {
					sink += ht.Word(ref, 1)
					break
				}
			}
		}
		_ = sink
	})
	// Vectorized engine invoked with single-tuple "vectors": full
	// primitive round trip per lookup.
	keys := make([]uint64, 1)
	hashes := make([]uint64, 1)
	cand := make([]hashtable.Ref, 1)
	candP := make([]int32, 1)
	mRefs := make([]hashtable.Ref, 8)
	mPos := make([]int32, 8)
	vectorized := timeQuery(cfg.Reps, func() {
		var sink uint64
		for i := uint64(0); i < lookups; i++ {
			keys[0] = (i * 2654435761) % tableSize
			tw.MapHashU64(keys, hashes)
			nm := tw.Probe(htTW, keys, hashes, 1, cand, candP, mRefs, mPos)
			if nm > 0 {
				sink += htTW.Word(mRefs[0], 1)
			}
		}
		_ = sink
	})
	var b strings.Builder
	b.WriteString("§8.1 — OLTP-style point lookups (1M lookups, 1M-row table)\n")
	fmt.Fprintf(&b, "fused (compiled style):      %8.1fms  (%5.1f M lookups/s)\n",
		ms(fused), float64(lookups)/ms(fused)/1000)
	fmt.Fprintf(&b, "vector-at-a-time with n=1:   %8.1fms  (%5.1f M lookups/s)\n",
		ms(vectorized), float64(lookups)/ms(vectorized)/1000)
	fmt.Fprintf(&b, "compiled advantage: %.2fx\n", float64(vectorized)/float64(fused))
	b.WriteString("(paper: vectorization has little benefit over Volcano for single-tuple work;\n" +
		" compilation can fuse whole stored procedures)\n")
	return b.String()
}

// AblationText runs the DESIGN.md §6 ablations: Bloom tags, hash
// functions, morsel size.
func AblationText(db *storage.Database, cfg Config) string {
	var b strings.Builder
	b.WriteString("Ablations (DESIGN.md §6)\n\n")

	// (1) Hash-table Bloom tags on/off: selective-probe microbench.
	ht := hashtable.New(1, 1)
	sh := ht.Shard(0)
	const buildN = 1 << 18
	for i := uint64(0); i < buildN; i++ {
		ref, _ := sh.Alloc(ht, hashtable.Murmur2(i*16))
		ht.SetWord(ref, 0, i*16)
	}
	ht.Finalize()
	probe := func() {
		var sink uint64
		for i := uint64(0); i < 1<<20; i++ {
			k := i * 7 // ~94% misses
			h := hashtable.Murmur2(k)
			for ref := ht.Lookup(h); ref != 0; ref = ht.Next(ref) {
				if ht.Hash(ref) == h && ht.Word(ref, 0) == k {
					sink++
					break
				}
			}
		}
		_ = sink
	}
	ht.UseTags = true
	withTags := timeQuery(cfg.Reps, probe)
	ht.UseTags = false
	noTags := timeQuery(cfg.Reps, probe)
	ht.UseTags = true
	fmt.Fprintf(&b, "1. Bloom tags (1M selective probes): with %6.1fms  without %6.1fms  (%.2fx)\n",
		ms(withTags), ms(noTags), float64(noTags)/float64(withTags))

	// (2) Hash functions (§4.1): latency-bound fused chain vs
	// throughput-bound independent hashing.
	const hn = 1 << 22
	chain := func(hf func(uint64) uint64) time.Duration {
		return timeQuery(cfg.Reps, func() {
			v := uint64(1)
			for i := 0; i < hn; i++ {
				v = hf(v) // serial dependency: latency bound (fused loop)
			}
			_ = v
		})
	}
	indep := func(hf func(uint64) uint64) time.Duration {
		return timeQuery(cfg.Reps, func() {
			var acc uint64
			for i := uint64(0); i < hn; i++ {
				acc ^= hf(i) // independent: throughput bound (primitive)
			}
			_ = acc
		})
	}
	fmt.Fprintf(&b, "2. hash latency (serial chain):  Mix64 %6.1fms  Murmur2 %6.1fms  CRC %6.1fms\n",
		ms(chain(hashtable.Mix64)), ms(chain(hashtable.Murmur2)), ms(chain(hashtable.CRC)))
	fmt.Fprintf(&b, "   hash throughput (independent): Mix64 %6.1fms  Murmur2 %6.1fms  CRC %6.1fms\n",
		ms(indep(hashtable.Mix64)), ms(indep(hashtable.Murmur2)), ms(indep(hashtable.CRC)))

	// (3) Morsel size sweep on Q6 (8 threads or cfg.Threads).
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	for _, msz := range []int{1 << 10, 1 << 14, exec.DefaultMorselSize, 1 << 20} {
		d := timeQuery(cfg.Reps, func() {
			disp := exec.NewDispatcher(li.Rows(), msz)
			var parts [8]int64
			exec.Parallel(8, func(w int) {
				var sum int64
				for {
					m, ok := disp.Next()
					if !ok {
						break
					}
					for i := m.Begin; i < m.End; i++ {
						if ship[i] >= queries.Q6DateLo {
							sum++
						}
					}
				}
				parts[w] = sum
			})
		})
		fmt.Fprintf(&b, "3. morsel size %8d: scan %6.1fms\n", msz, ms(d))
	}

	// (4) Typer with Tectorwise's hash and vice versa (full-query view
	// of ablation 2): done by swapping the package-level Hash variables.
	origTyper, origTW := typer.Hash, tw.Hash
	q9Std := timeQuery(cfg.Reps, func() { RunTPCH(db, "typer", "Q9", 1, 0) })
	typer.Hash = hashtable.Murmur2
	q9Swapped := timeQuery(cfg.Reps, func() { RunTPCH(db, "typer", "Q9", 1, 0) })
	typer.Hash = origTyper
	twQ9Std := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", "Q9", 1, 0) })
	tw.Hash = hashtable.Mix64
	twQ9Swapped := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", "Q9", 1, 0) })
	tw.Hash = origTW
	fmt.Fprintf(&b, "4. Q9 hash swap: Typer Mix64 %6.1fms / Murmur2 %6.1fms;"+
		" TW Murmur2 %6.1fms / Mix64 %6.1fms\n",
		ms(q9Std), ms(q9Swapped), ms(twQ9Std), ms(twQ9Swapped))
	return b.String()
}
