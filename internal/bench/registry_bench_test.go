package bench

import (
	"sync"
	"testing"

	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

// The CI bench smoke (`go test -bench . -benchtime 1x -run ^$
// ./internal/bench`) drives every registered query on both engines
// through the harness entry points at a tiny scale factor, so the
// benchmark path — and every query registration it dispatches to —
// cannot bitrot unexercised.

var (
	smokeOnce sync.Once
	smokeTPCH *storage.Database
	smokeSSB  *storage.Database
)

func smokeDBs() (*storage.Database, *storage.Database) {
	smokeOnce.Do(func() {
		smokeTPCH = TPCHGen(0.01)
		smokeSSB = SSBGen(0.01)
	})
	return smokeTPCH, smokeSSB
}

func BenchmarkRegistryTPCH(b *testing.B) {
	db, _ := smokeDBs()
	for _, engine := range []string{registry.Typer, registry.Tectorwise} {
		for _, q := range registry.Queries(engine, "tpch") {
			b.Run(engine+"/"+q, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					RunTPCH(db, engine, q, 2, 0)
				}
			})
		}
	}
}

func BenchmarkRegistrySSB(b *testing.B) {
	_, db := smokeDBs()
	for _, engine := range []string{registry.Typer, registry.Tectorwise} {
		for _, q := range registry.Queries(engine, "ssb") {
			b.Run(engine+"/"+q, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					RunSSB(db, engine, q, 2, 0)
				}
			})
		}
	}
}
