package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"paradigms/internal/hashtable"
	"paradigms/internal/iosim"
	"paradigms/internal/microsim"
	"paradigms/internal/queries"
	"paradigms/internal/registry"
	"paradigms/internal/simd"
	"paradigms/internal/ssb"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"

	// The harness dispatches queries through the registry; both engines
	// (and the plan layer) must be linked so their inits register.
	_ "paradigms/internal/plan"
	_ "paradigms/internal/typer"
)

// Config controls experiment scale.
type Config struct {
	SF      float64 // TPC-H scale factor (Fig 3/5, Tables 1/2)
	SSBSF   float64 // SSB scale factor
	Threads int     // max threads for Table 3
	Reps    int     // timing repetitions (best-of)
}

// DefaultConfig scales the paper's setup to a laptop-class machine.
func DefaultConfig() Config {
	return Config{SF: 1, SSBSF: 1, Threads: 0, Reps: 3}
}

// timeQuery measures the best-of-reps wall clock of one query run.
func timeQuery(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	f() // warmup
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// runRegistered executes one registered query on one engine; the harness
// dispatches through the query registry, so every query either engine
// gains is immediately benchmarkable with no switch to extend here.
func runRegistered(db *storage.Database, engine, query string, threads, vec int) {
	run, ok := registry.Lookup(engine, db.Name, query)
	if !ok {
		panic("bench: unknown " + engine + "/" + query + " on " + db.Name)
	}
	run(context.Background(), db, registry.Options{Workers: threads, VectorSize: vec})
}

// RunTPCH executes one TPC-H query on one engine.
func RunTPCH(db *storage.Database, engine, query string, threads, vec int) {
	runRegistered(db, engine, query, threads, vec)
}

// RunSSB executes one SSB query on one engine.
func RunSSB(db *storage.Database, engine, query string, threads, vec int) {
	runRegistered(db, engine, query, threads, vec)
}

// Fig3 reproduces Figure 3: single-threaded TPC-H runtimes.
func Fig3(db *storage.Database, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — TPC-H SF=%g, 1 thread (runtimes in ms)\n", db.ScaleFactor)
	fmt.Fprintf(&b, "%-5s %12s %12s %10s | %-22s\n", "query", "Typer", "Tectorwise", "ratio", "paper (SF1): Typer / TW")
	for _, q := range queries.TPCHQueries {
		ty := timeQuery(cfg.Reps, func() { RunTPCH(db, "typer", q, 1, 0) })
		tww := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", q, 1, 0) })
		p := PaperFig3[q]
		fmt.Fprintf(&b, "%-5s %10.1fms %10.1fms %10.2f | %.0f / %.0f (ratio %.2f)\n",
			q, ms(ty), ms(tww), ms(ty)/ms(tww), p.Typer, p.TW, p.Typer/p.TW)
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Table1Text reproduces Table 1 via the micro-architectural simulator.
func Table1Text(db *storage.Database) string {
	rows := microsim.Table1(db, microsim.Skylake)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — modeled CPU counters per tuple (TPC-H SF=%g, 1 thread)\n", db.ScaleFactor)
	fmt.Fprintf(&b, "%-14s %7s %5s %7s %7s %8s %7s | paper: cyc IPC instr L1 LLC br\n",
		"engine/query", "cycles", "IPC", "instr", "L1miss", "LLCmiss", "brMiss")
	for _, r := range rows {
		key := r.Engine + "/" + r.Query
		p := PaperTable1[key]
		fmt.Fprintf(&b, "%-14s %7.1f %5.2f %7.1f %7.2f %8.3f %7.3f | %g %g %g %g %g %g\n",
			key, r.Cycles, r.IPC, r.Instr, r.L1Miss, r.LLCMiss, r.BranchMiss,
			p.Cycles, p.IPC, p.Instr, p.L1Miss, p.LLCMiss, p.BranchMiss)
	}
	return b.String()
}

// Fig4Text reproduces Figure 4: memory-stall share vs. scale factor.
func Fig4Text(sfs []float64) string {
	rows := microsim.Fig4(func(sf float64) *storage.Database {
		return tpch.Generate(sf, 0)
	}, microsim.Skylake, sfs)
	var b strings.Builder
	b.WriteString("Figure 4 — modeled memory-stall cycles/tuple vs. scale factor\n")
	fmt.Fprintf(&b, "%-5s %-11s %8s %12s %12s\n", "query", "engine", "SF", "cycles/t", "stall/t")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-11s %8.2f %12.1f %12.1f\n",
			r.Query, r.Engine, r.ScaleFactor, r.CyclesPerTuple, r.StallPerTuple)
	}
	b.WriteString("(paper: stalls grow with SF; Tectorwise hides more of them on the join queries)\n")
	return b.String()
}

// Fig5Text reproduces Figure 5: Tectorwise runtime vs. vector size.
func Fig5Text(db *storage.Database, cfg Config) string {
	sizes := []int{1, 16, 256, 1024, 4096, 65536, 1 << 20}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — Tectorwise vector-size sweep (SF=%g, 1 thread, time relative to 1K)\n", db.ScaleFactor)
	fmt.Fprintf(&b, "%-5s", "query")
	for _, s := range sizes {
		fmt.Fprintf(&b, "%9d", s)
	}
	b.WriteString("\n")
	for _, q := range queries.TPCHQueries {
		baseline := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", q, 1, 1024) })
		fmt.Fprintf(&b, "%-5s", q)
		for _, s := range sizes {
			d := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", q, 1, s) })
			fmt.Fprintf(&b, "%9.2f", float64(d)/float64(baseline))
		}
		b.WriteString("\n")
	}
	b.WriteString("(" + PaperFig5Note + ")\n")
	return b.String()
}

// SSBText reproduces the §4.4 SSB table: measured runtimes plus modeled
// counters.
func SSBText(db *storage.Database, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SSB (§4.4) — SF=%g: measured 1-thread runtime + modeled counters\n", db.ScaleFactor)
	fmt.Fprintf(&b, "%-14s %9s %7s %5s %7s %7s %8s %8s | paper: cyc instr memstall\n",
		"engine/query", "time", "cycles", "IPC", "instr", "L1miss", "brMiss", "memStall")
	for _, q := range queries.SSBQueries {
		for _, eng := range []string{"typer", "tectorwise"} {
			d := timeQuery(cfg.Reps, func() { RunSSB(db, eng, q, 1, 0) })
			ctr := microsim.TracedSSB(db, microsim.Skylake, eng, q)
			p := PaperSSBTable[eng+"/"+q]
			fmt.Fprintf(&b, "%-14s %7.0fms %7.1f %5.2f %7.1f %7.2f %8.3f %8.1f | %g %g %g\n",
				eng+"/"+q, ms(d), ctr.Cycles, ctr.IPC, ctr.Instr, ctr.L1Miss,
				ctr.BranchMiss, ctr.MemStall, p.Cycles, p.Instr, p.MemStall)
		}
	}
	return b.String()
}

// Table2Text reproduces Table 2: our engines next to the paper's
// production-system numbers.
func Table2Text(db *storage.Database, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — production systems (paper, SF1 ms) vs this repo (SF=%g)\n", db.ScaleFactor)
	fmt.Fprintf(&b, "%-5s %8s %8s %8s %8s | %10s %10s\n",
		"query", "HyPer", "VW", "Typer*", "TW*", "Typer(ms)", "TW(ms)")
	for _, q := range queries.TPCHQueries {
		p := PaperTable2[q]
		ty := timeQuery(cfg.Reps, func() { RunTPCH(db, "typer", q, 1, 0) })
		tww := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", q, 1, 0) })
		fmt.Fprintf(&b, "%-5s %8.0f %8.0f %8.0f %8.0f | %10.1f %10.1f\n",
			q, p.HyPer, p.VectorWise, p.Typer, p.TW, ms(ty), ms(tww))
	}
	b.WriteString("(* = paper's Typer/Tectorwise; shape check: Typer tracks HyPer, TW tracks VectorWise)\n")
	return b.String()
}

// Table3Text reproduces Table 3: multi-threaded execution and the
// engine-ratio convergence under hyper-threading.
func Table3Text(db *storage.Database, threadSteps []int, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — multi-threaded TPC-H SF=%g (paper: SF100 on 10c/20t Skylake)\n", db.ScaleFactor)
	fmt.Fprintf(&b, "%-5s %4s %12s %8s %12s %8s %7s\n",
		"query", "thr", "Typer", "speedup", "TW", "speedup", "ratio")
	for _, q := range queries.TPCHQueries {
		var ty1, tw1 time.Duration
		for _, thr := range threadSteps {
			ty := timeQuery(cfg.Reps, func() { RunTPCH(db, "typer", q, thr, 0) })
			tww := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", q, thr, 0) })
			if thr == threadSteps[0] {
				ty1, tw1 = ty, tww
			}
			fmt.Fprintf(&b, "%-5s %4d %10.1fms %8.1f %10.1fms %8.1f %7.2f\n",
				q, thr, ms(ty), float64(ty1)/float64(ty), ms(tww), float64(tw1)/float64(tww),
				float64(ty)/float64(tww))
		}
	}
	b.WriteString("(paper: ratio moves toward 1 at 20 hyper-threads for all but Q6)\n")
	return b.String()
}

// Fig6Text reproduces Figure 6: scalar vs. data-parallel selection —
// measured Go kernels plus the AVX-512 lane model.
func Fig6Text(cfg Config) string {
	const n = 8192
	data := make([]int32, n)
	rng := rand.New(rand.NewSource(42))
	for i := range data {
		data[i] = int32(rng.Intn(1000))
	}
	bound := int32(400) // 40% selectivity
	out := make([]int32, n)
	reps := 20000
	scalar := timeQuery(cfg.Reps, func() {
		for r := 0; r < reps; r++ {
			simd.SelectPredicated(data, bound, out)
		}
	})
	swar := timeQuery(cfg.Reps, func() {
		for r := 0; r < reps; r++ {
			simd.SelectSWAR(data, bound, out)
		}
	})
	sel := make([]int32, 0, n)
	for i := 0; i < n; i += 2 { // ~40% after compose with random data
		if rng.Intn(5) < 4 {
			sel = append(sel, int32(i))
		}
	}
	sparseScalar := timeQuery(cfg.Reps, func() {
		for r := 0; r < reps; r++ {
			simd.SelectSparsePredicated(data, bound, sel, out)
		}
	})
	sparseUnrolled := timeQuery(cfg.Reps, func() {
		for r := 0; r < reps; r++ {
			simd.SelectSparseUnrolled(data, bound, sel, out)
		}
	})
	dense := microsim.SelectionDense(microsim.Skylake, n, 0.4)
	sparse := microsim.SelectionSparse(microsim.Skylake, n, 0.4)

	var b strings.Builder
	b.WriteString("Figure 6 — scalar vs data-parallel selection\n")
	fmt.Fprintf(&b, "measured (Go SWAR/unroll):   dense %0.2fx   sparse %0.2fx\n",
		float64(scalar)/float64(swar), float64(sparseScalar)/float64(sparseUnrolled))
	fmt.Fprintf(&b, "modeled  (AVX-512 lanes):    dense %0.1fx   sparse %0.1fx\n",
		dense.Speedup, sparse.Speedup)
	fmt.Fprintf(&b, "paper    (AVX-512):          dense %0.1fx   sparse %0.1fx   full Q6 %0.1fx\n",
		PaperFig6.Dense, PaperFig6.Sparse, PaperFig6.Q6)
	return b.String()
}

// Fig7Text reproduces Figure 7: sparse selection vs. input selectivity.
func Fig7Text() string {
	rows := microsim.Fig7(microsim.Skylake, 256<<20,
		[]float64{1.0, 0.8, 0.6, 0.4, 0.2})
	var b strings.Builder
	b.WriteString("Figure 7 — modeled sparse selection on a 256 MB array\n")
	fmt.Fprintf(&b, "%12s %14s %14s %14s\n", "input sel", "scalar cyc", "SIMD cyc", "L1miss cyc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.0f%% %14.2f %14.2f %14.2f\n",
			r.InputSelectivity*100, r.ScalarCycles, r.SIMDCycles, r.L1MissCycles)
	}
	b.WriteString("(paper: below ~50% selectivity the memory system dominates and SIMD gains vanish)\n")
	return b.String()
}

// Fig8Text reproduces Figure 8: SIMD join probing components + full query.
func Fig8Text(db *storage.Database, cfg Config) string {
	const n = 8192
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	hout := make([]uint64, n)
	reps := 10000
	hs := timeQuery(cfg.Reps, func() {
		for r := 0; r < reps; r++ {
			simd.HashScalar(keys, hout)
		}
	})
	hu := timeQuery(cfg.Reps, func() {
		for r := 0; r < reps; r++ {
			simd.HashUnrolled(keys, hout)
		}
	})
	// Probe kernel against an L2-resident table.
	ht := hashtable.New(1, 1)
	sh := ht.Shard(0)
	for i := uint64(0); i < 1<<14; i++ {
		ref, _ := sh.Alloc(ht, hashtable.Murmur2(i))
		ht.SetWord(ref, 0, i)
	}
	ht.Finalize()
	probeKeys := make([]uint64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range probeKeys {
		probeKeys[i] = uint64(rng.Intn(1 << 15))
	}
	matches := make([]int32, n)
	ps := timeQuery(cfg.Reps, func() {
		for r := 0; r < 2000; r++ {
			simd.ProbeScalar(ht, probeKeys, matches)
		}
	})
	pu := timeQuery(cfg.Reps, func() {
		for r := 0; r < 2000; r++ {
			simd.ProbeUnrolled(ht, probeKeys, matches)
		}
	})
	hModel := microsim.Hashing(microsim.Skylake, n)
	gModel := microsim.GatherKernel(microsim.Skylake, 256<<20, 4096)

	var b strings.Builder
	b.WriteString("Figure 8 — scalar vs data-parallel join probing\n")
	fmt.Fprintf(&b, "measured (Go): hashing %0.2fx   probe %0.2fx\n",
		float64(hs)/float64(hu), float64(ps)/float64(pu))
	fmt.Fprintf(&b, "modeled (AVX-512): hashing %0.1fx   gather %0.2fx\n",
		hModel.Speedup, gModel.Speedup)
	fmt.Fprintf(&b, "paper: hashing %0.1fx  gather %0.1fx  probe %0.1fx  full Q3/Q9 ≈%0.1fx\n",
		PaperFig8.Hash, PaperFig8.Gather, PaperFig8.Probe, PaperFig8.Q3)
	return b.String()
}

// Fig9Text reproduces Figure 9: probe cost vs. working-set size.
func Fig9Text() string {
	sizes := []int{128 << 10, 512 << 10, 4 << 20, 32 << 20, 256 << 20}
	rows := microsim.Fig9(microsim.Skylake, sizes, 8192)
	var b strings.Builder
	b.WriteString("Figure 9 — modeled probe cost vs working-set size\n")
	fmt.Fprintf(&b, "%14s %14s %14s %10s\n", "working set", "scalar cyc", "SIMD cyc", "gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12dKB %14.1f %14.1f %9.2fx\n",
			r.WorkingSetBytes>>10, r.ScalarCycles, r.SIMDCycles,
			r.ScalarCycles/r.SIMDCycles)
	}
	b.WriteString("(paper: gains only while the table is cache resident)\n")
	return b.String()
}

// Fig10Text reproduces Figure 10: modeled auto-vectorization effect.
func Fig10Text(db *storage.Database) string {
	rows := microsim.Fig10(db, microsim.Skylake)
	var b strings.Builder
	b.WriteString("Figure 10 — modeled compiler auto-vectorization (ICC-like: hash/sel/proj only)\n")
	fmt.Fprintf(&b, "%-5s %18s %16s\n", "query", "instr reduction", "time reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %17.0f%% %15.1f%%\n",
			r.Query, r.InstrReduction*100, r.TimeReduction*100)
	}
	b.WriteString("(paper: 20-60% fewer instructions, no significant runtime gain)\n")
	return b.String()
}

// Table4Text prints the hardware profiles (Table 4).
func Table4Text() string {
	var b strings.Builder
	b.WriteString("Table 4 — modeled hardware platforms\n")
	fmt.Fprintf(&b, "%-14s %-10s %6s %6s %6s %8s %8s %8s %7s\n",
		"name", "model", "cores", "issue", "SIMD", "L1", "L2", "LLC", "$")
	for _, hw := range microsim.Platforms {
		fmt.Fprintf(&b, "%-14s %-10s %3d(x%d) %6d %4dx32 %7dK %7dK %7dM %7d\n",
			hw.Name, hw.Model, hw.Cores, hw.SMTWays, hw.IssueWidth, hw.SIMDLanes32,
			hw.L1Size>>10, hw.L2Size>>10, hw.LLCSize>>20, hw.PriceUSD)
	}
	return b.String()
}

// FigHWText reproduces Figures 11/12: modeled queries/second scaling
// curves per platform, optionally with the SIMD model enabled (Fig 12's
// "KNL with SIMD" series).
func FigHWText(db *storage.Database, platforms []microsim.HW, withSIMD bool) string {
	var b strings.Builder
	b.WriteString("Figures 11/12 — modeled queries/second vs cores\n")
	for _, hw := range platforms {
		for _, q := range queries.TPCHQueries {
			bytes := float64(iosim.ColumnBytes(db, queries.ScannedTables[q]))
			for _, eng := range []string{"typer", "tectorwise"} {
				ctr := microsim.TracedTPCH(db, hw, eng, q)
				cycles := ctr.Cycles * float64(db.TotalTuples(queries.ScannedTables[q]...))
				simdGain := 1.0
				if withSIMD && eng == "tectorwise" {
					simdGain = 1.1 + 0.3*float64(hw.SIMDLanes32)/16 // modest full-query gain (§5.4)
				}
				rows := microsim.Throughput(hw, eng, q, cycles, bytes, withSIMD, simdGain)
				// Print quartile points to keep the table readable.
				for _, idx := range []int{0, len(rows) / 2, len(rows) - 1} {
					r := rows[idx]
					fmt.Fprintf(&b, "%-13s %-11s %-4s cores=%3d (%3.0f%%) %10.2f q/s\n",
						hw.Name, r.Engine, r.Query, r.Cores, r.FracCores*100, r.QPS)
				}
			}
		}
	}
	return b.String()
}

// Table5Text reproduces Table 5: out-of-memory execution from throttled
// storage.
func Table5Text(db *storage.Database, dir string, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — SSD (%.1f GB/s) at SF=%g, %d threads (pipelined model)\n",
		iosim.PaperSSDBandwidth/1e9, db.ScaleFactor, cfg.Threads)
	fmt.Fprintf(&b, "%-5s %12s %12s %7s | paper: Typer TW ratio\n", "query", "Typer", "TW", "ratio")
	for _, q := range queries.TPCHQueries {
		scanBytes := iosim.ColumnBytes(db, queries.ScannedTables[q])
		ty := timeQuery(cfg.Reps, func() { RunTPCH(db, "typer", q, cfg.Threads, 0) })
		tww := timeQuery(cfg.Reps, func() { RunTPCH(db, "tectorwise", q, cfg.Threads, 0) })
		tySSD := iosim.Table5Time(ty, scanBytes, iosim.PaperSSDBandwidth)
		twSSD := iosim.Table5Time(tww, scanBytes, iosim.PaperSSDBandwidth)
		p := PaperTable5[q]
		fmt.Fprintf(&b, "%-5s %10.1fms %10.1fms %7.2f | %.0f %.0f %.2f\n",
			q, ms(tySSD), ms(twSSD), ms(tySSD)/ms(twSSD), p.Typer, p.TW, p.Typer/p.TW)
	}
	_ = dir
	return b.String()
}

// Table6Text prints the taxonomy.
func Table6Text() string {
	var b strings.Builder
	b.WriteString("Table 6 — query processing models\n")
	fmt.Fprintf(&b, "%-24s %-12s %-15s %s\n", "system", "pipelining", "execution", "year")
	for _, r := range Table6 {
		fmt.Fprintf(&b, "%-24s %-12s %-15s %d\n", r.System, r.Pipelining, r.Execution, r.Year)
	}
	return b.String()
}

// EC2Text reproduces the §6.2 price-per-query observation.
func EC2Text() string {
	var b strings.Builder
	b.WriteString("§6.2 — EC2 price per query (paper's measurements, cost model)\n")
	for _, e := range EC2 {
		perQuery := e.PricePerH / 3600 * e.GeomeanMS / 1000
		fmt.Fprintf(&b, "%-13s %2d vCPUs  $%.3f/h  geomean %4.0fms  → $%.6f/query\n",
			e.Instance, e.VCPUs, e.PricePerH, e.GeomeanMS, perQuery)
	}
	b.WriteString("(4x faster costs 1.7x more per query)\n")
	return b.String()
}

// SSBGen builds an SSB database (re-exported so cmd/repro needs only this
// package).
func SSBGen(sf float64) *storage.Database { return ssb.Generate(sf, 0) }

// TPCHGen builds a TPC-H database.
func TPCHGen(sf float64) *storage.Database { return tpch.Generate(sf, 0) }

// SortedExperimentNames lists everything cmd/repro can run.
func SortedExperimentNames() []string {
	names := []string{"fig3", "table1", "fig4", "fig5", "ssb", "table2",
		"fig6", "fig7", "fig8", "fig9", "fig10", "table3", "table4",
		"table5", "fig11", "fig12", "table6", "ec2", "compile",
		"profiling", "adaptivity", "oltp", "ablation"}
	sort.Strings(names)
	return names
}
