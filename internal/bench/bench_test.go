package bench

import (
	"strings"
	"testing"

	"paradigms/internal/tpch"
)

// The experiment text generators are exercised at tiny scale: they must
// run to completion and contain the expected structural markers.

func tinyCfg() Config { return Config{SF: 0.01, SSBSF: 0.01, Threads: 2, Reps: 1} }

func TestFig3Text(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	out := Fig3(db, tinyCfg())
	for _, want := range []string{"Figure 3", "Q1", "Q18", "Typer", "Tectorwise"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Text(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	out := Table1Text(db)
	if strings.Count(out, "typer/") != 5 || strings.Count(out, "tectorwise/") != 5 {
		t.Errorf("Table1 should have 5 rows per engine:\n%s", out)
	}
}

func TestSSBText(t *testing.T) {
	db := SSBGen(0.01)
	out := SSBText(db, tinyCfg())
	for _, q := range []string{"Q1.1", "Q2.1", "Q3.1", "Q4.1"} {
		if !strings.Contains(out, q) {
			t.Errorf("SSB output missing %s", q)
		}
	}
}

func TestTable2And5Text(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	if out := Table2Text(db, tinyCfg()); !strings.Contains(out, "HyPer") {
		t.Errorf("Table2 missing production systems:\n%s", out)
	}
	if out := Table5Text(db, "", tinyCfg()); !strings.Contains(out, "SSD") {
		t.Errorf("Table5 missing SSD header:\n%s", out)
	}
}

func TestFigTexts(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	cfg := tinyCfg()
	if out := Fig6Text(cfg); !strings.Contains(out, "dense") {
		t.Error("Fig6 output malformed")
	}
	if out := Fig7Text(); !strings.Contains(out, "input sel") {
		t.Error("Fig7 output malformed")
	}
	if out := Fig8Text(db, cfg); !strings.Contains(out, "hashing") {
		t.Error("Fig8 output malformed")
	}
	if out := Fig9Text(); !strings.Contains(out, "working set") {
		t.Error("Fig9 output malformed")
	}
	if out := Fig10Text(db); !strings.Contains(out, "instr reduction") {
		t.Error("Fig10 output malformed")
	}
	if out := Table4Text(); !strings.Contains(out, "Skylake") {
		t.Error("Table4 output malformed")
	}
	if out := Table6Text(); !strings.Contains(out, "HyPer") {
		t.Error("Table6 output malformed")
	}
	if out := EC2Text(); !strings.Contains(out, "m5.2xlarge") {
		t.Error("EC2 output malformed")
	}
}

func TestExtrasTexts(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	cfg := tinyCfg()
	if out := ProfilingText(db, cfg); !strings.Contains(out, "breakdown") {
		t.Errorf("Profiling output malformed:\n%s", out)
	}
	if out := AdaptivityText(db, cfg); !strings.Contains(out, "ordered aggregation") {
		t.Error("Adaptivity output malformed")
	}
	if out := Table3Text(db, []int{1, 2}, cfg); !strings.Contains(out, "ratio") {
		t.Error("Table3 output malformed")
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	for _, q := range []string{"Q1", "Q6", "Q3", "Q9", "Q18"} {
		if _, ok := PaperFig3[q]; !ok {
			t.Errorf("PaperFig3 missing %s", q)
		}
		if _, ok := PaperTable2[q]; !ok {
			t.Errorf("PaperTable2 missing %s", q)
		}
		if _, ok := PaperTable3[q]; !ok {
			t.Errorf("PaperTable3 missing %s", q)
		}
		if _, ok := PaperTable5[q]; !ok {
			t.Errorf("PaperTable5 missing %s", q)
		}
		for _, eng := range []string{"typer", "tectorwise"} {
			if _, ok := PaperTable1[eng+"/"+q]; !ok {
				t.Errorf("PaperTable1 missing %s/%s", eng, q)
			}
		}
	}
	for _, q := range []string{"Q1.1", "Q2.1", "Q3.1", "Q4.1"} {
		for _, eng := range []string{"typer", "tectorwise"} {
			if _, ok := PaperSSBTable[eng+"/"+q]; !ok {
				t.Errorf("PaperSSBTable missing %s/%s", eng, q)
			}
		}
	}
}

func TestExperimentNamesSorted(t *testing.T) {
	names := SortedExperimentNames()
	if len(names) < 20 {
		t.Errorf("only %d experiments registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("names not sorted at %d", i)
		}
	}
}
