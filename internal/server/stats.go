package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// latencyWindow is how many recent per-query latencies the service keeps
// for quantile estimation. A power-of-two ring large enough that p99 of
// any realistic reporting interval is exact, small enough to be free.
const latencyWindow = 1 << 13

// statsAcc accumulates counters under the service mutex.
type statsAcc struct {
	served, failed, canceled, rejected uint64
	preparedServed                     uint64
	perEngine                          map[string]uint64
	queuedHighWater                    int

	lat  [latencyWindow]time.Duration // ring of recent latencies
	nLat int                          // total recorded (ring wraps)
}

// record adds one served-query latency.
func (a *statsAcc) record(d time.Duration) {
	a.lat[a.nLat%latencyWindow] = d
	a.nLat++
}

// Stats is a point-in-time snapshot of service aggregates.
type Stats struct {
	// Served counts successfully completed (and validated) queries;
	// Failed counts execution/validation errors; Canceled counts queries
	// abandoned via context; Rejected counts ErrOverloaded fast-fails.
	Served, Failed, Canceled, Rejected uint64
	// PreparedServed counts the subset of Served that executed through
	// the prepared-statement path (no per-execution parse or plan).
	PreparedServed uint64
	// PerEngine breaks Served down by the engine that actually ran each
	// query ("auto" submissions count under the resolved backend).
	PerEngine map[string]uint64
	// PlanCacheHits/Misses/Evictions mirror the plan cache counters
	// (zero when the service has no prepared-statement support). A hit
	// is a Prepare call that skipped parse+bind+plan entirely.
	PlanCacheHits, PlanCacheMisses, PlanCacheEvictions uint64
	// InFlight and Queued are instantaneous occupancy; QueuedHighWater is
	// the deepest the FIFO queue has been.
	InFlight, Queued, QueuedHighWater int
	// P50/P95/P99/Max are submit-to-finish latency quantiles over the
	// most recent latencyWindow served queries.
	P50, P95, P99, Max time.Duration
	// MorselsDispatched counts morsel claims made by this service's
	// queries (attributed per service via exec.WithMorselCounter).
	MorselsDispatched int64
	// Uptime is the time since New.
	Uptime time.Duration
}

// snapshot computes quantiles from the ring. Caller holds the service
// mutex.
func (a *statsAcc) snapshot() Stats {
	st := Stats{
		Served:          a.served,
		Failed:          a.failed,
		Canceled:        a.canceled,
		Rejected:        a.rejected,
		PreparedServed:  a.preparedServed,
		QueuedHighWater: a.queuedHighWater,
		PerEngine:       make(map[string]uint64, len(a.perEngine)),
	}
	for k, v := range a.perEngine {
		st.PerEngine[k] = v
	}
	n := min(a.nLat, latencyWindow)
	if n > 0 {
		s := make([]time.Duration, n)
		copy(s, a.lat[:n])
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		st.P50 = s[n/2]
		st.P95 = s[n*95/100]
		st.P99 = s[n*99/100]
		st.Max = s[n-1]
	}
	return st
}

// MarshalJSON renders the snapshot machine-readable (cmd/serve
// -statsjson): durations as float milliseconds, throughput precomputed,
// counters verbatim.
func (st Stats) MarshalJSON() ([]byte, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return json.Marshal(struct {
		Served          uint64            `json:"served"`
		Failed          uint64            `json:"failed"`
		Canceled        uint64            `json:"canceled"`
		Rejected        uint64            `json:"rejected"`
		Prepared        uint64            `json:"prepared_served"`
		QPS             float64           `json:"qps"`
		PerEngine       map[string]uint64 `json:"per_engine"`
		InFlight        int               `json:"in_flight"`
		Queued          int               `json:"queued"`
		QueuedHighWater int               `json:"queued_high_water"`
		CacheHits       uint64            `json:"plan_cache_hits"`
		CacheMisses     uint64            `json:"plan_cache_misses"`
		CacheEvictions  uint64            `json:"plan_cache_evictions"`
		P50Ms           float64           `json:"p50_ms"`
		P95Ms           float64           `json:"p95_ms"`
		P99Ms           float64           `json:"p99_ms"`
		MaxMs           float64           `json:"max_ms"`
		Morsels         int64             `json:"morsels_dispatched"`
		UptimeMs        float64           `json:"uptime_ms"`
	}{
		Served: st.Served, Failed: st.Failed, Canceled: st.Canceled, Rejected: st.Rejected,
		Prepared: st.PreparedServed,
		QPS:      st.QPS(), PerEngine: st.PerEngine,
		InFlight: st.InFlight, Queued: st.Queued, QueuedHighWater: st.QueuedHighWater,
		CacheHits: st.PlanCacheHits, CacheMisses: st.PlanCacheMisses, CacheEvictions: st.PlanCacheEvictions,
		P50Ms: ms(st.P50), P95Ms: ms(st.P95), P99Ms: ms(st.P99), MaxMs: ms(st.Max),
		Morsels: st.MorselsDispatched, UptimeMs: ms(st.Uptime),
	})
}

// QPS is the served-query throughput over the service's uptime.
func (st Stats) QPS() float64 {
	if st.Uptime <= 0 {
		return 0
	}
	return float64(st.Served) / st.Uptime.Seconds()
}

// String renders the snapshot as a small human-readable report (used by
// cmd/serve).
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %d (%.1f q/s)  failed %d  canceled %d  rejected %d\n",
		st.Served, st.QPS(), st.Failed, st.Canceled, st.Rejected)
	engines := make([]string, 0, len(st.PerEngine))
	for e := range st.PerEngine {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		fmt.Fprintf(&b, "  %-12s %d\n", e, st.PerEngine[e])
	}
	if st.PreparedServed > 0 || st.PlanCacheHits+st.PlanCacheMisses > 0 {
		fmt.Fprintf(&b, "prepared %d  plan cache hits %d  misses %d  evictions %d\n",
			st.PreparedServed, st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEvictions)
	}
	fmt.Fprintf(&b, "latency p50 %v  p95 %v  p99 %v  max %v\n", st.P50, st.P95, st.P99, st.Max)
	fmt.Fprintf(&b, "in flight %d  queued %d (high water %d)  morsels %d  uptime %v\n",
		st.InFlight, st.Queued, st.QueuedHighWater, st.MorselsDispatched, st.Uptime.Round(time.Millisecond))
	return b.String()
}
