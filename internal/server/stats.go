package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// latencyWindow is how many recent per-query latencies the service keeps
// for quantile estimation. A power-of-two ring large enough that p99 of
// any realistic reporting interval is exact, small enough to be free.
const latencyWindow = 1 << 13

// statsAcc accumulates counters under the service mutex.
type statsAcc struct {
	served, failed, canceled, rejected uint64
	preparedServed                     uint64
	streamedServed                     uint64
	perEngine                          map[string]uint64
	queuedHighWater                    int

	lat  [latencyWindow]time.Duration // ring of recent latencies
	nLat int                          // total recorded (ring wraps)
}

// record adds one served-query latency.
func (a *statsAcc) record(d time.Duration) {
	a.lat[a.nLat%latencyWindow] = d
	a.nLat++
}

// TenantStats is one tenant's slice of the service aggregates: outcome
// counters, instantaneous occupancy, and submit-to-finish latency
// quantiles over the tenant's most recent tenantLatWindow queries —
// the per-tenant p50/p99 the fairness scheduler is judged by.
type TenantStats struct {
	Served, Failed, Canceled, Rejected uint64
	Streamed                           uint64
	Running, Queued                    int
	Weight                             int
	P50, P95, P99, Max                 time.Duration
}

// snapshot renders the tenant's counters. Caller holds the service
// mutex.
func (t *tenant) snapshot() TenantStats {
	ts := TenantStats{
		Served: t.served, Failed: t.failed, Canceled: t.canceled, Rejected: t.rejected,
		Streamed: t.streamed,
		Running:  t.running, Queued: len(t.queue), Weight: t.weight,
	}
	n := min(t.nLat, tenantLatWindow)
	if n > 0 {
		s := make([]time.Duration, n)
		copy(s, t.lat[:n])
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		ts.P50 = s[n/2]
		ts.P95 = s[n*95/100]
		ts.P99 = s[n*99/100]
		ts.Max = s[n-1]
	}
	return ts
}

// Stats is a point-in-time snapshot of service aggregates.
type Stats struct {
	// Submitted counts every submission that was assigned an id (and
	// therefore ends in exactly one of Served/Failed/Canceled);
	// rejections fail before an id is assigned and are counted only in
	// Rejected. The hammer tests reconcile these exactly.
	Submitted uint64
	// Served counts successfully completed (and validated) queries;
	// Failed counts execution/validation errors; Canceled counts queries
	// abandoned via context; Rejected counts ErrOverloaded fast-fails.
	Served, Failed, Canceled, Rejected uint64
	// PreparedServed counts the subset of Served that executed through
	// the prepared-statement path (no per-execution parse or plan).
	PreparedServed uint64
	// StreamedServed counts the subset of Served that streamed result
	// batches to a sink instead of materializing.
	StreamedServed uint64
	// Tenants breaks the counters down per tenant.
	Tenants map[string]TenantStats
	// PerEngine breaks Served down by the engine that actually ran each
	// query ("auto" submissions count under the resolved backend).
	PerEngine map[string]uint64
	// PlanCacheHits/Misses/Evictions mirror the plan cache counters
	// (zero when the service has no prepared-statement support). A hit
	// is a Prepare call that skipped parse+bind+plan entirely.
	PlanCacheHits, PlanCacheMisses, PlanCacheEvictions uint64
	// InFlight and Queued are instantaneous occupancy; QueuedHighWater is
	// the deepest the FIFO queue has been.
	InFlight, Queued, QueuedHighWater int
	// P50/P95/P99/Max are submit-to-finish latency quantiles over the
	// most recent latencyWindow served queries.
	P50, P95, P99, Max time.Duration
	// MorselsDispatched counts morsel claims made by this service's
	// queries (attributed per service via exec.WithMorselCounter).
	MorselsDispatched int64
	// Uptime is the time since New.
	Uptime time.Duration
}

// snapshot computes quantiles from the ring. Caller holds the service
// mutex.
func (a *statsAcc) snapshot() Stats {
	st := Stats{
		Served:          a.served,
		Failed:          a.failed,
		Canceled:        a.canceled,
		Rejected:        a.rejected,
		PreparedServed:  a.preparedServed,
		StreamedServed:  a.streamedServed,
		QueuedHighWater: a.queuedHighWater,
		PerEngine:       make(map[string]uint64, len(a.perEngine)),
	}
	for k, v := range a.perEngine {
		st.PerEngine[k] = v
	}
	n := min(a.nLat, latencyWindow)
	if n > 0 {
		s := make([]time.Duration, n)
		copy(s, a.lat[:n])
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		st.P50 = s[n/2]
		st.P95 = s[n*95/100]
		st.P99 = s[n*99/100]
		st.Max = s[n-1]
	}
	return st
}

// MarshalJSON renders the snapshot machine-readable (cmd/serve
// -statsjson): durations as float milliseconds, throughput precomputed,
// counters verbatim.
func (st Stats) MarshalJSON() ([]byte, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	type tenantJSON struct {
		Served   uint64  `json:"served"`
		Failed   uint64  `json:"failed"`
		Canceled uint64  `json:"canceled"`
		Rejected uint64  `json:"rejected"`
		Streamed uint64  `json:"streamed"`
		Running  int     `json:"running"`
		Queued   int     `json:"queued"`
		Weight   int     `json:"weight"`
		P50Ms    float64 `json:"p50_ms"`
		P95Ms    float64 `json:"p95_ms"`
		P99Ms    float64 `json:"p99_ms"`
		MaxMs    float64 `json:"max_ms"`
	}
	tenants := make(map[string]tenantJSON, len(st.Tenants))
	for name, t := range st.Tenants {
		tenants[name] = tenantJSON{
			Served: t.Served, Failed: t.Failed, Canceled: t.Canceled, Rejected: t.Rejected,
			Streamed: t.Streamed, Running: t.Running, Queued: t.Queued, Weight: t.Weight,
			P50Ms: ms(t.P50), P95Ms: ms(t.P95), P99Ms: ms(t.P99), MaxMs: ms(t.Max),
		}
	}
	return json.Marshal(struct {
		Submitted       uint64                `json:"submitted"`
		Served          uint64                `json:"served"`
		Failed          uint64                `json:"failed"`
		Canceled        uint64                `json:"canceled"`
		Rejected        uint64                `json:"rejected"`
		Prepared        uint64                `json:"prepared_served"`
		Streamed        uint64                `json:"streamed_served"`
		QPS             float64               `json:"qps"`
		PerEngine       map[string]uint64     `json:"per_engine"`
		Tenants         map[string]tenantJSON `json:"tenants"`
		InFlight        int                   `json:"in_flight"`
		Queued          int                   `json:"queued"`
		QueuedHighWater int                   `json:"queued_high_water"`
		CacheHits       uint64                `json:"plan_cache_hits"`
		CacheMisses     uint64                `json:"plan_cache_misses"`
		CacheEvictions  uint64                `json:"plan_cache_evictions"`
		P50Ms           float64               `json:"p50_ms"`
		P95Ms           float64               `json:"p95_ms"`
		P99Ms           float64               `json:"p99_ms"`
		MaxMs           float64               `json:"max_ms"`
		Morsels         int64                 `json:"morsels_dispatched"`
		UptimeMs        float64               `json:"uptime_ms"`
	}{
		Submitted: st.Submitted,
		Served:    st.Served, Failed: st.Failed, Canceled: st.Canceled, Rejected: st.Rejected,
		Prepared: st.PreparedServed, Streamed: st.StreamedServed,
		QPS:      st.QPS(), PerEngine: st.PerEngine, Tenants: tenants,
		InFlight: st.InFlight, Queued: st.Queued, QueuedHighWater: st.QueuedHighWater,
		CacheHits: st.PlanCacheHits, CacheMisses: st.PlanCacheMisses, CacheEvictions: st.PlanCacheEvictions,
		P50Ms: ms(st.P50), P95Ms: ms(st.P95), P99Ms: ms(st.P99), MaxMs: ms(st.Max),
		Morsels: st.MorselsDispatched, UptimeMs: ms(st.Uptime),
	})
}

// QPS is the served-query throughput over the service's uptime.
func (st Stats) QPS() float64 {
	if st.Uptime <= 0 {
		return 0
	}
	return float64(st.Served) / st.Uptime.Seconds()
}

// String renders the snapshot as a small human-readable report (used by
// cmd/serve).
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %d (%.1f q/s)  failed %d  canceled %d  rejected %d\n",
		st.Served, st.QPS(), st.Failed, st.Canceled, st.Rejected)
	engines := make([]string, 0, len(st.PerEngine))
	for e := range st.PerEngine {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		fmt.Fprintf(&b, "  %-12s %d\n", e, st.PerEngine[e])
	}
	if st.PreparedServed > 0 || st.PlanCacheHits+st.PlanCacheMisses > 0 {
		fmt.Fprintf(&b, "prepared %d  plan cache hits %d  misses %d  evictions %d\n",
			st.PreparedServed, st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEvictions)
	}
	if st.StreamedServed > 0 {
		fmt.Fprintf(&b, "streamed %d\n", st.StreamedServed)
	}
	if len(st.Tenants) > 1 || (len(st.Tenants) == 1 && st.Tenants[DefaultTenant].Served == 0) {
		names := make([]string, 0, len(st.Tenants))
		for n := range st.Tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			t := st.Tenants[n]
			fmt.Fprintf(&b, "tenant %-10s served %-6d rejected %-5d p50 %v  p99 %v  max %v\n",
				n, t.Served, t.Rejected, t.P50, t.P99, t.Max)
		}
	}
	fmt.Fprintf(&b, "latency p50 %v  p95 %v  p99 %v  max %v\n", st.P50, st.P95, st.P99, st.Max)
	fmt.Fprintf(&b, "in flight %d  queued %d (high water %d)  morsels %d  uptime %v\n",
		st.InFlight, st.Queued, st.QueuedHighWater, st.MorselsDispatched, st.Uptime.Round(time.Millisecond))
	return b.String()
}
