package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingExec returns an ExecFunc that parks every query until its
// release channel is closed (or ctx is done), recording concurrency.
type blockingExec struct {
	mu       sync.Mutex
	releases []chan struct{}
	startSeq []string // query names in execution-start order
	cur, max atomic.Int32
}

func (b *blockingExec) fn(ctx context.Context, engine, query string, workers int) (any, error) {
	c := b.cur.Add(1)
	for {
		m := b.max.Load()
		if c <= m || b.max.CompareAndSwap(m, c) {
			break
		}
	}
	defer b.cur.Add(-1)

	b.mu.Lock()
	release := make(chan struct{})
	b.releases = append(b.releases, release)
	b.startSeq = append(b.startSeq, query)
	b.mu.Unlock()

	select {
	case <-release:
		return fmt.Sprintf("%s/%s/%d", engine, query, workers), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaseOne unparks the i-th started query.
func (b *blockingExec) releaseOne(i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	close(b.releases[i])
}

// waitStarted polls until n queries have reached the engine.
func (b *blockingExec) waitStarted(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		started := len(b.startSeq)
		b.mu.Unlock()
		if started >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d queries started, want %d", started, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionBound(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 2, WorkerBudget: 4})

	var handles []*Handle
	for i := 0; i < 6; i++ {
		h, err := s.Submit(context.Background(), "typer", fmt.Sprintf("Q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	be.waitStarted(t, 2)
	if got := s.Stats(); got.InFlight != 2 || got.Queued != 4 {
		t.Errorf("in flight %d queued %d, want 2 and 4", got.InFlight, got.Queued)
	}
	for i := 0; i < 6; i++ {
		be.waitStarted(t, i+1)
		be.releaseOne(i)
	}
	for _, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if m := be.max.Load(); m > 2 {
		t.Errorf("observed %d concurrent queries, bound is 2", m)
	}
	st := s.Stats()
	if st.Served != 6 || st.Failed != 0 || st.Canceled != 0 {
		t.Errorf("stats %+v, want 6 served", st)
	}
	if st.QueuedHighWater != 4 {
		t.Errorf("queue high water %d, want 4", st.QueuedHighWater)
	}
}

// TestFIFO: admission order beyond the bound is exactly Submit order.
func TestFIFO(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1})

	names := []string{"A", "B", "C", "D", "E"}
	for _, q := range names {
		if _, err := s.Submit(context.Background(), "typer", q); err != nil {
			t.Fatal(err)
		}
	}
	for i := range names {
		be.waitStarted(t, i+1)
		be.releaseOne(i)
	}
	s.Close()
	be.mu.Lock()
	defer be.mu.Unlock()
	for i, q := range names {
		if be.startSeq[i] != q {
			t.Fatalf("execution order %v, want FIFO %v", be.startSeq, names)
		}
	}
}

// TestCancelQueued: canceling a queued query removes it without it ever
// reaching the engine, and later arrivals still get the slot.
func TestCancelQueued(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1})

	blocker, err := s.Submit(context.Background(), "typer", "A")
	if err != nil {
		t.Fatal(err)
	}
	be.waitStarted(t, 1)
	victim, err := s.Submit(context.Background(), "typer", "B")
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.Submit(context.Background(), "typer", "C")
	if err != nil {
		t.Fatal(err)
	}

	victim.Cancel()
	if _, err := victim.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim err = %v, want context.Canceled", err)
	}
	// The dead waiter must leave the queue immediately, not linger until
	// the running query releases its slot.
	if q := s.Stats().Queued; q != 1 {
		t.Errorf("queued = %d after canceling a queued query, want 1", q)
	}
	be.releaseOne(0)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	be.waitStarted(t, 2) // C, not B
	be.releaseOne(1)
	if _, err := after.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	be.mu.Lock()
	seq := append([]string(nil), be.startSeq...)
	be.mu.Unlock()
	if len(seq) != 2 || seq[1] != "C" {
		t.Errorf("execution sequence %v, want [A C]", seq)
	}
	st := s.Stats()
	if st.Served != 2 || st.Canceled != 1 {
		t.Errorf("stats %+v, want 2 served 1 canceled", st)
	}
}

// TestCancelRunning: canceling a running query propagates to the engine's
// context and the handle reports the cancellation.
func TestCancelRunning(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1})
	h, err := s.Submit(context.Background(), "typer", "A")
	if err != nil {
		t.Fatal(err)
	}
	be.waitStarted(t, 1)
	h.Cancel()
	if _, err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOverload: a bounded queue rejects fast once full.
func TestOverload(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 1, MaxQueued: 2, WorkerBudget: 1})
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		if _, err := s.Submit(context.Background(), "typer", "Q"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(context.Background(), "typer", "Q"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	be.waitStarted(t, 1)
	for i := 0; i < 3; i++ {
		be.waitStarted(t, i+1)
		be.releaseOne(i)
	}
	s.Close()
}

// TestClose: Close rejects new work and drains queued + running queries.
func TestClose(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1})
	h1, _ := s.Submit(context.Background(), "typer", "A")
	h2, _ := s.Submit(context.Background(), "typer", "B")
	be.waitStarted(t, 1)
	go func() {
		be.releaseOne(0)
		be.waitStarted(t, 2)
		be.releaseOne(1)
	}()
	s.Close()
	for _, h := range []*Handle{h1, h2} {
		select {
		case <-h.Done():
		default:
			t.Error("Close returned with a query still in flight")
		}
	}
	if _, err := s.Submit(context.Background(), "typer", "C"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestWorkerShare: a lone query gets the whole budget; under concurrency
// the budget is divided, never below one worker.
func TestWorkerShare(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 16, WorkerBudget: 8})
	var handles []*Handle
	for i := 0; i < 16; i++ {
		h, err := s.Submit(context.Background(), "typer", "Q")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	be.waitStarted(t, 16)
	for i := range handles {
		be.releaseOne(i)
	}
	s.Close()
	if w := handles[0].Workers(); w != 8 {
		t.Errorf("first (lone) query got %d workers, want the full budget 8", w)
	}
	for i, h := range handles {
		if w := h.Workers(); w < 1 {
			t.Errorf("query %d got %d workers, want >= 1", i, w)
		}
	}
	// With 16 running against a budget of 8, late admissions degrade to
	// one worker.
	if w := handles[15].Workers(); w != 1 {
		t.Errorf("16th concurrent query got %d workers, want 1", w)
	}
}

// TestValidationFailure: a Validate error marks the query failed.
func TestValidationFailure(t *testing.T) {
	s := New(Config{
		Exec:     func(ctx context.Context, e, q string, w int) (any, error) { return 42, nil },
		Validate: func(q string, res any) error { return errors.New("mismatch") },
	})
	if _, err := s.Do(context.Background(), "typer", "Q"); err == nil {
		t.Fatal("want validation error")
	}
	if st := s.Stats(); st.Failed != 1 || st.Served != 0 {
		t.Errorf("stats %+v, want 1 failed", st)
	}
}

// TestStatsQuantiles: latency quantiles are ordered and populated.
func TestStatsQuantiles(t *testing.T) {
	s := New(Config{Exec: func(ctx context.Context, e, q string, w int) (any, error) {
		return nil, nil
	}})
	for i := 0; i < 100; i++ {
		if _, err := s.Do(context.Background(), "typer", "Q"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Served != 100 {
		t.Fatalf("served %d, want 100", st.Served)
	}
	if st.P50 > st.P95 || st.P95 > st.P99 || st.P99 > st.Max {
		t.Errorf("quantiles out of order: %v %v %v %v", st.P50, st.P95, st.P99, st.Max)
	}
	if st.PerEngine["typer"] != 100 {
		t.Errorf("per-engine %v, want typer=100", st.PerEngine)
	}
}
