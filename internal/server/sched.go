package server

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultTenant is the tenant requests are attributed to when the
// submission does not name one (the single-tenant legacy API).
const DefaultTenant = "default"

// tenantLatWindow is the per-tenant latency ring size (smaller than the
// global window; per-tenant p99 over the last 1k queries is plenty for
// fairness accounting).
const tenantLatWindow = 1 << 10

// defaultYieldPause is the bounded per-morsel pause injected into
// queries of a tenant running over its fair worker share while other
// tenants have work. A morsel is ~100k tuples (hundreds of µs of scan
// work), so a pause of this order roughly halves an over-share scan's
// CPU take without parking workers long enough to matter at barriers.
const defaultYieldPause = 500 * time.Microsecond

// defaultExecEstimate seeds the retry-after estimator before any query
// of the tenant (or service) has completed.
const defaultExecEstimate = 50 * time.Millisecond

// OverloadError is the typed rejection of queue-depth backpressure: the
// tenant's (or the service's) admission queue is full. It carries the
// service's estimate of when retrying is worthwhile — queue depth times
// the tenant's recent execution time over the effective concurrency.
// errors.Is(err, ErrOverloaded) matches it, so existing callers keep
// working; clients that type-assert get the backoff hint.
type OverloadError struct {
	Tenant     string
	Queued     int           // tenant queue depth at rejection
	RetryAfter time.Duration // suggested backoff before retrying
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: tenant %q admission queue full (%d queued, retry after %v)",
		e.Tenant, e.Queued, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for typed rejections.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// tenant is the scheduler's per-tenant state: its FIFO queue, DRR
// deficit, occupancy, throttle, and stats. All fields except throttle
// are guarded by the service mutex; throttle is read lock-free by the
// per-morsel yield hook of every running query of the tenant.
type tenant struct {
	name   string
	weight int // DRR quantum: admissions per round relative to other tenants

	queue   []*waiter
	deficit int  // DRR deficit counter (admissions owed this round)
	inRing  bool // member of the active ring

	running int // queries of this tenant currently executing
	granted int // morsel workers granted to those queries

	// throttle is the per-morsel pause (ns) the fairness controller
	// currently imposes on this tenant's queries (0 = run free).
	throttle atomic.Int64

	// Stats.
	served, failed, canceled, rejected uint64
	streamed                           uint64
	lat                                [tenantLatWindow]time.Duration
	nLat                               int
	execEWMA                           time.Duration // smoothed execution time, for retry-after
}

// record adds one served-query latency to the tenant's ring.
func (t *tenant) record(d time.Duration) {
	t.lat[t.nLat%tenantLatWindow] = d
	t.nLat++
}

// observeExec feeds one execution duration into the tenant's EWMA.
func (t *tenant) observeExec(d time.Duration) {
	if t.execEWMA == 0 {
		t.execEWMA = d
		return
	}
	t.execEWMA = (t.execEWMA*7 + d) / 8
}

// pruneCanceled drops dead waiters from the head of the tenant queue.
// Caller holds the service mutex and owns the global queued counter.
func (s *Service) pruneCanceled(t *tenant) {
	for len(t.queue) > 0 && t.queue[0].canceled {
		t.queue = t.queue[1:]
		s.nQueued--
	}
}

// tenantOf returns (creating on first use) the tenant record of a name.
// Caller holds the service mutex.
func (s *Service) tenantOf(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	t, ok := s.tenants[name]
	if !ok {
		w := 1
		if s.cfg.TenantWeights != nil && s.cfg.TenantWeights[name] > 0 {
			w = s.cfg.TenantWeights[name]
		}
		t = &tenant{name: name, weight: w}
		s.tenants[name] = t
	}
	return t
}

// tenantCap is one tenant's running-query bound: its Config.TenantCaps
// entry, falling back to MaxPerTenant, falling back to MaxConcurrent
// (no extra bound).
func (s *Service) tenantCap(t *tenant) int {
	if c, ok := s.cfg.TenantCaps[t.name]; ok && c > 0 {
		return c
	}
	if s.cfg.MaxPerTenant > 0 {
		return s.cfg.MaxPerTenant
	}
	return s.cfg.MaxConcurrent
}

// enqueue appends a waiter to its queue — the tenant's under DRR, the
// global FIFO under Config.FIFO — and maintains the active ring.
// Caller holds the service mutex.
func (s *Service) enqueue(w *waiter) {
	s.nQueued++
	if s.nQueued > s.st.queuedHighWater {
		s.st.queuedHighWater = s.nQueued
	}
	if s.cfg.FIFO {
		s.fifo = append(s.fifo, w)
		return
	}
	t := w.t
	t.queue = append(t.queue, w)
	if !t.inRing {
		t.inRing = true
		s.ring = append(s.ring, t)
	}
}

// unqueue removes a canceled waiter from its queue immediately (so dead
// waiters stop counting against queue bounds and Stats.Queued). Caller
// holds the service mutex; the waiter's canceled flag is already set.
func (s *Service) unqueue(w *waiter) {
	q := &w.t.queue
	if s.cfg.FIFO {
		q = &s.fifo
	}
	for i, qw := range *q {
		if qw == w {
			*q = append((*q)[:i], (*q)[i+1:]...)
			s.nQueued--
			return
		}
	}
}

// nextWaiter picks the next admission under the configured discipline.
// It returns nil when nothing is eligible (empty queues, or every
// queued tenant is at its running cap). Caller holds the service mutex.
func (s *Service) nextWaiter() *waiter {
	if s.cfg.FIFO {
		return s.nextFIFO()
	}
	return s.nextDRR()
}

// nextFIFO is the legacy global queue: strict arrival order, including
// head-of-line blocking when the head's tenant is at its cap — exactly
// the unfairness the DRR scheduler exists to fix, kept as a mode so the
// fairness tests and benchmarks can demonstrate the difference.
func (s *Service) nextFIFO() *waiter {
	for len(s.fifo) > 0 {
		w := s.fifo[0]
		if w.canceled {
			s.fifo = s.fifo[1:]
			s.nQueued--
			continue
		}
		if w.t.running >= s.tenantCap(w.t) {
			return nil // strict FIFO: blocked head blocks everyone
		}
		s.fifo = s.fifo[1:]
		s.nQueued--
		return w
	}
	return nil
}

// nextDRR is deficit round robin over the per-tenant queues: each
// eligible visit refills a tenant's deficit to its weight, each
// admission spends one unit, and the round pointer advances when the
// deficit is spent — so a tenant with weight k is admitted k times per
// round regardless of how deep any other tenant's backlog is, and no
// non-empty queue is ever skipped for more than one round (no
// starvation). Tenants at their running cap are stepped over without
// losing their place.
func (s *Service) nextDRR() *waiter {
	scanned := 0
	for scanned < len(s.ring) {
		if s.ringIdx >= len(s.ring) {
			s.ringIdx = 0
		}
		t := s.ring[s.ringIdx]
		s.pruneCanceled(t)
		if len(t.queue) == 0 {
			s.dropFromRing(s.ringIdx)
			continue // ring shrank; ringIdx already points at the next tenant
		}
		if t.running >= s.tenantCap(t) {
			s.ringIdx++
			scanned++
			continue
		}
		if t.deficit <= 0 {
			t.deficit = t.weight
		}
		w := t.queue[0]
		t.queue = t.queue[1:]
		s.nQueued--
		t.deficit--
		if len(t.queue) == 0 {
			s.dropFromRing(s.ringIdx)
		} else if t.deficit <= 0 {
			s.ringIdx++
		}
		return w
	}
	return nil
}

// dropFromRing removes the tenant at ring position i and resets its
// round state. Caller holds the service mutex.
func (s *Service) dropFromRing(i int) {
	t := s.ring[i]
	t.inRing = false
	t.deficit = 0
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	if s.ringIdx > i {
		s.ringIdx--
	}
}

// dispatch admits waiters while global capacity remains, then refreshes
// the fairness throttles. Called after every enqueue and every release.
// Caller holds the service mutex.
func (s *Service) dispatch() {
	for s.running < s.cfg.MaxConcurrent {
		w := s.nextWaiter()
		if w == nil {
			break
		}
		s.running++
		w.t.running++
		share := s.shareFor(w.t)
		w.share = share
		w.t.granted += share
		w.grant <- share
	}
	s.recomputeThrottles()
}

// totalActiveWeight sums the weights of tenants with work (running or
// queued). Caller holds the service mutex.
func (s *Service) totalActiveWeight() int {
	tw := 0
	for _, t := range s.tenants {
		if t.running > 0 || len(t.queue) > 0 {
			tw += t.weight
		}
	}
	return tw
}

// shareFor computes a newly admitted query's worker share for its
// tenant: the global equal split (Service.share), additionally capped
// by the tenant's weight-proportional slice of the budget divided
// across its own running queries. With one active tenant the cap is the
// whole budget and the policy degenerates to the legacy split; with
// several, a flooding tenant's queries cannot grab the workers a
// later-arriving tenant's solo query would have gotten — worker-share
// fairness to complement DRR's admission fairness. Caller holds s.mu;
// t.running already counts the query being admitted.
func (s *Service) shareFor(t *tenant) int {
	fair := s.cfg.WorkerBudget
	if tw := s.totalActiveWeight(); tw > t.weight && !s.cfg.FIFO {
		fair = max(1, s.cfg.WorkerBudget*t.weight/tw)
	}
	per := max(1, fair/max(1, t.running))
	w := max(1, min(s.cfg.WorkerBudget-s.granted, min(per, s.cfg.WorkerBudget/max(1, s.running))))
	s.granted += w
	return w
}

// throttleRatio is how much longer (weight-normalized, smoothed) a
// tenant's queries must run than the lightest active tenant's before the
// fairness controller starts pausing its morsel loops. Well above noise
// (EWMA jitter under CPU contention is ~2x), well below the
// short-vs-long gap the controller exists for (OLAP scans vs point-ish
// aggregates differ by 50x+).
const throttleRatio = 8

// recomputeThrottles is the morsel-level fairness controller: when more
// than one tenant is active (running or queued), tenants whose
// weight-normalized smoothed execution time is far above the lightest
// active tenant's get a bounded per-morsel pause injected into their
// queries' dispatch loops (exec.WithYield). Each pause cedes the CPU to
// the short queries at the engines' natural preemption points without
// parking workers mid-pipeline, so a long scan admitted when the service
// was idle stops starving short queries the moment another tenant shows
// up — and resumes at full speed the moment it is alone again. Exec
// time, not worker grants, is the signal: on a small machine every
// query holds the same one-worker share, yet a 400ms scan and a 2ms
// aggregate are nothing alike as CPU hogs. Caller holds the service
// mutex.
func (s *Service) recomputeThrottles() {
	active := 0
	for _, t := range s.tenants {
		if t.running > 0 || len(t.queue) > 0 {
			active++
		}
	}
	if active <= 1 || s.cfg.FIFO {
		// Solo (or legacy FIFO, which had no yielding): run free.
		for _, t := range s.tenants {
			t.throttle.Store(0)
		}
		return
	}
	// Weight-normalized cost of the lightest active tenant with history;
	// tenants without history (EWMA 0) are unknown and never throttled.
	var lightest time.Duration
	for _, t := range s.tenants {
		if (t.running > 0 || len(t.queue) > 0) && t.execEWMA > 0 {
			if norm := t.execEWMA / time.Duration(t.weight); lightest == 0 || norm < lightest {
				lightest = norm
			}
		}
	}
	for _, t := range s.tenants {
		over := lightest > 0 && t.execEWMA/time.Duration(t.weight) > throttleRatio*lightest
		if t.running > 0 && over {
			t.throttle.Store(int64(s.yieldPause))
		} else {
			t.throttle.Store(0)
		}
	}
}

// retryAfter estimates how long a rejected submission should back off:
// the queue-plus-running backlog divided by the effective concurrency,
// times the tenant's (falling back to the service's) smoothed execution
// time. Deterministic given scheduler state, clamped to [1ms, 10s].
// Caller holds the service mutex.
func (s *Service) retryAfter(t *tenant) time.Duration {
	avg := t.execEWMA
	if avg == 0 {
		avg = s.execEWMA
	}
	if avg == 0 {
		avg = defaultExecEstimate
	}
	slots := s.cfg.MaxConcurrent
	if c := s.tenantCap(t); c < slots {
		slots = c
	}
	if slots < 1 {
		slots = 1
	}
	backlog := s.nQueued + s.running
	est := avg * time.Duration(backlog/slots+1)
	if est < time.Millisecond {
		est = time.Millisecond
	}
	if est > 10*time.Second {
		est = 10 * time.Second
	}
	return est
}
