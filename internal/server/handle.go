package server

import (
	"context"
	"sync/atomic"
	"time"

	"paradigms/internal/obs"
)

// Handle is a submitted query's ticket: identity, engine choice, timing,
// cancellation, and (once done) the result. Fields written by the service
// are published by the close of the done channel, so every accessor that
// documents "after Done" is race-free.
type Handle struct {
	id     uint64
	tenant string
	engine string
	query  string

	// Prepared-execution inputs (nil/empty for ordinary submissions).
	prep *Prepared
	args []string

	// sink receives streamed result batches (nil for materializing
	// submissions); see Req.Sink.
	sink any

	// col collects per-pipeline execution telemetry (nil for
	// uninstrumented submissions); see Req.Collector and Config.ObsBegin.
	col *obs.Collector

	cancel context.CancelFunc
	done   chan struct{}

	// Written by the service goroutine before close(done).
	submitted time.Time
	started   time.Time // zero if the query died in the queue
	finished  time.Time
	workers   int
	result    any
	err       error
	ran       string // engine that actually executed ("" if never ran)

	// latency mirrors finished.Sub(submitted) for lock-free reads
	// before Done (see Latency); 0 means still in flight.
	latency atomic.Int64
}

// ID is the service-assigned query id (1-based, in submission order).
func (h *Handle) ID() uint64 { return h.id }

// Tenant is the tenant the query was billed to (DefaultTenant when the
// submission did not name one).
func (h *Handle) Tenant() string { return h.tenant }

// Streaming reports whether the handle streams result batches to a
// sink (Req.Sink); such handles have a nil Result.
func (h *Handle) Streaming() bool { return h.sink != nil }

// Engine is the engine name the query was submitted with (possibly
// "auto" for prepared executions).
func (h *Handle) Engine() string { return h.engine }

// EngineUsed is the engine the query actually executed on — for an
// "auto" prepared submission, the backend the statement's adaptive
// router resolved to. It falls back to the submitted engine for
// queries that never ran (died in the admission queue). Valid after
// Done.
func (h *Handle) EngineUsed() string {
	if h.ran != "" {
		return h.ran
	}
	return h.engine
}

// Collector is the telemetry collector the query executed under (nil
// for uninstrumented submissions). Valid after Done.
func (h *Handle) Collector() *obs.Collector { return h.col }

// Prepared reports whether the handle is a prepared-statement
// execution, and Args returns its argument binding.
func (h *Handle) Prepared() bool { return h.prep != nil }

// Args is the argument binding of a prepared execution (nil for
// ordinary submissions).
func (h *Handle) Args() []string { return h.args }

// Query is the query name the handle was submitted with.
func (h *Handle) Query() string { return h.query }

// Done is closed when the query has finished (served, failed, or
// canceled).
func (h *Handle) Done() <-chan struct{} { return h.done }

// Cancel abandons the query: dequeues it if still waiting for admission,
// or drains its morsel workers if running. Safe to call at any time, from
// any goroutine, repeatedly.
func (h *Handle) Cancel() { h.cancel() }

// Wait blocks until the query finishes or ctx is done; in the latter case
// it cancels the query and still waits for the (prompt) teardown so the
// returned error is the query's final state.
func (h *Handle) Wait(ctx context.Context) (any, error) {
	select {
	case <-h.done:
	case <-ctx.Done():
		h.cancel()
		<-h.done
	}
	return h.result, h.err
}

// Result returns the outcome. It must only be called after Done is
// closed (Wait does this for you).
func (h *Handle) Result() (any, error) { return h.result, h.err }

// Workers is the worker share the query executed with (0 if it never
// started). Valid after Done.
func (h *Handle) Workers() int { return h.workers }

// QueueWait is the time spent waiting for admission. Valid after Done.
func (h *Handle) QueueWait() time.Duration {
	if h.started.IsZero() {
		return h.finished.Sub(h.submitted)
	}
	return h.started.Sub(h.submitted)
}

// Latency is the total submit-to-finish latency. Callable at any time:
// before the query finishes it reports the elapsed time so far (rather
// than a nonsense difference against the zero finish time); after Done
// it is the final submit-to-finish latency.
func (h *Handle) Latency() time.Duration {
	if d := h.latency.Load(); d != 0 {
		return time.Duration(d)
	}
	return time.Since(h.submitted)
}

// Prepared is a statement readied by Service.Prepare: the SQL text was
// parsed, bound, and optimized once (or fetched from the plan cache),
// and each SubmitPrepared/DoPrepared call executes it with a fresh
// argument binding — no per-execution parse or plan. Safe for
// concurrent use from many clients.
type Prepared struct {
	stmt  any // the PrepareFunc's opaque statement (facade: *prepcache.Statement)
	query string
}

// Query is the SQL text the statement was prepared from.
func (p *Prepared) Query() string { return p.query }

// Stmt exposes the underlying prepared statement (the facade's plan
// cache entry) for callers that need engine-router introspection.
func (p *Prepared) Stmt() any { return p.stmt }
