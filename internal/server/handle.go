package server

import (
	"context"
	"sync/atomic"
	"time"
)

// Handle is a submitted query's ticket: identity, engine choice, timing,
// cancellation, and (once done) the result. Fields written by the service
// are published by the close of the done channel, so every accessor that
// documents "after Done" is race-free.
type Handle struct {
	id     uint64
	engine string
	query  string

	cancel context.CancelFunc
	done   chan struct{}

	// Written by the service goroutine before close(done).
	submitted time.Time
	started   time.Time // zero if the query died in the queue
	finished  time.Time
	workers   int
	result    any
	err       error

	// latency mirrors finished.Sub(submitted) for lock-free reads
	// before Done (see Latency); 0 means still in flight.
	latency atomic.Int64
}

// ID is the service-assigned query id (1-based, in submission order).
func (h *Handle) ID() uint64 { return h.id }

// Engine is the engine name the query was submitted with.
func (h *Handle) Engine() string { return h.engine }

// Query is the query name the handle was submitted with.
func (h *Handle) Query() string { return h.query }

// Done is closed when the query has finished (served, failed, or
// canceled).
func (h *Handle) Done() <-chan struct{} { return h.done }

// Cancel abandons the query: dequeues it if still waiting for admission,
// or drains its morsel workers if running. Safe to call at any time, from
// any goroutine, repeatedly.
func (h *Handle) Cancel() { h.cancel() }

// Wait blocks until the query finishes or ctx is done; in the latter case
// it cancels the query and still waits for the (prompt) teardown so the
// returned error is the query's final state.
func (h *Handle) Wait(ctx context.Context) (any, error) {
	select {
	case <-h.done:
	case <-ctx.Done():
		h.cancel()
		<-h.done
	}
	return h.result, h.err
}

// Result returns the outcome. It must only be called after Done is
// closed (Wait does this for you).
func (h *Handle) Result() (any, error) { return h.result, h.err }

// Workers is the worker share the query executed with (0 if it never
// started). Valid after Done.
func (h *Handle) Workers() int { return h.workers }

// QueueWait is the time spent waiting for admission. Valid after Done.
func (h *Handle) QueueWait() time.Duration {
	if h.started.IsZero() {
		return h.finished.Sub(h.submitted)
	}
	return h.started.Sub(h.submitted)
}

// Latency is the total submit-to-finish latency. Callable at any time:
// before the query finishes it reports the elapsed time so far (rather
// than a nonsense difference against the zero finish time); after Done
// it is the final submit-to-finish latency.
func (h *Handle) Latency() time.Duration {
	if d := h.latency.Load(); d != 0 {
		return time.Duration(d)
	}
	return time.Since(h.submitted)
}
