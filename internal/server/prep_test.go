package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// prepHooks is a fake prepared-statement backend: Prep wraps the text,
// ExecPrep echoes statement/args/engine and resolves "auto" to a fixed
// backend, like the facade's router would.
type prepHooks struct {
	prepCalls int
	execCalls int
}

func (p *prepHooks) prep(query string) (any, error) {
	p.prepCalls++
	if strings.Contains(query, "bogus") {
		return nil, errors.New("prep: bad statement")
	}
	return "stmt:" + query, nil
}

func (p *prepHooks) exec(ctx context.Context, engine string, stmt any, args []string, workers int) (any, string, error) {
	p.execCalls++
	used := engine
	if engine == "auto" {
		used = "typer"
	}
	return fmt.Sprintf("%v|%s|%s|%d", stmt, strings.Join(args, ","), used, workers), used, nil
}

func newPrepService(h *prepHooks) *Service {
	return New(Config{
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			return "adhoc", nil
		},
		Prep:     h.prep,
		ExecPrep: h.exec,
		PlanCacheStats: func() (uint64, uint64, uint64) {
			return 7, 3, 1
		},
		WorkerBudget: 2,
	})
}

// TestPreparedLifecycle: Prepare → DoPrepared executes through
// ExecPrep with the bound arguments; "auto" resolves and the handle
// and stats report the engine that actually ran.
func TestPreparedLifecycle(t *testing.T) {
	h := &prepHooks{}
	s := newPrepService(h)
	defer s.Close()

	p, err := s.Prepare("select x from t where y < ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.Query() != "select x from t where y < ?" {
		t.Fatalf("Query() = %q", p.Query())
	}

	hd, err := s.SubmitPrepared(context.Background(), "auto", p, "42")
	if err != nil {
		t.Fatal(err)
	}
	res, err := hd.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := "stmt:select x from t where y < ?|42|typer|2"
	if res != want {
		t.Fatalf("result = %q, want %q", res, want)
	}
	if !hd.Prepared() || hd.Engine() != "auto" || hd.EngineUsed() != "typer" {
		t.Fatalf("handle: prepared=%v engine=%q used=%q", hd.Prepared(), hd.Engine(), hd.EngineUsed())
	}
	if got := hd.Args(); len(got) != 1 || got[0] != "42" {
		t.Fatalf("Args() = %v", got)
	}

	if _, err := s.DoPrepared(context.Background(), "tectorwise", p, "7"); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Served != 2 || st.PreparedServed != 2 {
		t.Fatalf("served=%d prepared=%d, want 2/2", st.Served, st.PreparedServed)
	}
	if st.PerEngine["typer"] != 1 || st.PerEngine["tectorwise"] != 1 {
		t.Fatalf("per-engine attribution wrong: %v", st.PerEngine)
	}
	if st.PlanCacheHits != 7 || st.PlanCacheMisses != 3 || st.PlanCacheEvictions != 1 {
		t.Fatalf("plan cache counters not surfaced: %+v", st)
	}
	if h.prepCalls != 1 || h.execCalls != 2 {
		t.Fatalf("hook calls: prep=%d exec=%d", h.prepCalls, h.execCalls)
	}
}

// TestPreparedErrors: prepare failures surface, and a service without
// hooks reports ErrNoPrepare.
func TestPreparedErrors(t *testing.T) {
	h := &prepHooks{}
	s := newPrepService(h)
	if _, err := s.Prepare("select bogus"); err == nil {
		t.Fatal("prepare error swallowed")
	}
	s.Close()
	if _, err := s.Prepare("select x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}

	bare := New(Config{Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
		return nil, nil
	}})
	defer bare.Close()
	if _, err := bare.Prepare("select x"); !errors.Is(err, ErrNoPrepare) {
		t.Fatalf("err = %v, want ErrNoPrepare", err)
	}
	st := bare.Stats()
	if st.PlanCacheHits != 0 || st.PreparedServed != 0 {
		t.Fatalf("bare service leaked prepared counters: %+v", st)
	}
}

// TestPreparedAdmissionShared: prepared executions respect the same
// MaxConcurrent bound and FIFO queue as ordinary submissions.
func TestPreparedAdmissionShared(t *testing.T) {
	block := make(chan struct{})
	started := make(chan string, 8)
	s := New(Config{
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			started <- query
			<-block
			return "adhoc", nil
		},
		Prep: func(query string) (any, error) { return query, nil },
		ExecPrep: func(ctx context.Context, engine string, stmt any, args []string, workers int) (any, string, error) {
			started <- stmt.(string)
			<-block
			return "prepared", engine, nil
		},
		WorkerBudget:  2,
		MaxConcurrent: 1,
	})

	h1, err := s.Submit(context.Background(), "typer", "Q1")
	if err != nil {
		t.Fatal(err)
	}
	<-started // Q1 holds the only slot

	p, _ := s.Prepare("select 1 from t where a = ?")
	h2, err := s.SubmitPrepared(context.Background(), "typer", p, "1")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case q := <-started:
		t.Fatalf("prepared execution %q bypassed admission control", q)
	default:
	}

	close(block)
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Wait(context.Background()); err != nil || res != "prepared" {
		t.Fatalf("prepared after release: res=%v err=%v", res, err)
	}
	s.Close()
	if st := s.Stats(); st.Served != 2 || st.PreparedServed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
