package server_test

// End-to-end tests of the concurrent query service against the real
// engines: correctness under concurrency (every result validated against
// the internal/queries oracles) and closed-loop throughput scaling with
// client count. This file is the repo's inter-query counterpart of the
// root integration test.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"paradigms"
)

var (
	dbOnce sync.Once
	tpchDB *paradigms.DB
	ssbDB  *paradigms.DB
)

func testDBs() (*paradigms.DB, *paradigms.DB) {
	dbOnce.Do(func() {
		tpchDB = paradigms.GenerateTPCH(0.01, 0)
		ssbDB = paradigms.GenerateSSB(0.01, 0)
	})
	return tpchDB, ssbDB
}

// workloadQueries is a mixed TPC-H + SSB subset cheap enough to run many
// hundreds of times under -race. Q5 (join-heavy, plan-based Tectorwise
// vs fused Typer) rides along so the service exercises the operator
// layer under concurrency.
var workloadQueries = []string{"Q1", "Q6", "Q5", "Q1.1", "Q2.1"}

// runClosedLoop drives total queries through svc with the given number of
// closed-loop clients (each waits for its result before submitting the
// next) and returns the wall-clock duration. Engines rotate per query when
// more than one is given.
func runClosedLoop(t *testing.T, svc interface {
	Do(ctx context.Context, engine, query string) (any, error)
}, engines []paradigms.Engine, clients, total int) time.Duration {
	t.Helper()
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(total) {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				eng := engines[i%len(engines)]
				q := workloadQueries[i%len(workloadQueries)]
				if _, err := svc.Do(context.Background(), string(eng), q); err != nil {
					errs <- fmt.Errorf("%s/%s: %w", eng, q, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestConcurrentQueriesValidated floods the service from 16 clients with
// both engines interleaved; every one of the results is validated against
// the reference oracles by the service itself (stats prove it).
func TestConcurrentQueriesValidated(t *testing.T) {
	tpch, ssb := testDBs()
	svc := paradigms.NewService(tpch, ssb, paradigms.ServiceOptions{
		WorkerBudget:  4,
		MaxConcurrent: 8,
	})
	const total = 128
	runClosedLoop(t, svc,
		[]paradigms.Engine{paradigms.Typer, paradigms.Tectorwise}, 16, total)
	svc.Close()
	st := svc.Stats()
	if st.Served != total || st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("stats: %+v, want %d served and no failures", st, total)
	}
	if st.PerEngine["typer"] == 0 || st.PerEngine["tectorwise"] == 0 {
		t.Fatalf("both engines should have served queries: %v", st.PerEngine)
	}
	if st.MorselsDispatched == 0 {
		t.Error("morsel counter did not advance")
	}
}

// TestCancelMidQueryDrains submits real queries and cancels them
// mid-flight; the service must come back promptly with ctx errors and no
// validated-result corruption afterwards.
func TestCancelMidQueryDrains(t *testing.T) {
	tpch, ssb := testDBs()
	svc := paradigms.NewService(tpch, ssb, paradigms.ServiceOptions{WorkerBudget: 2})
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		h, err := svc.Submit(ctx, string(paradigms.Typer), "Q1")
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		if _, err := h.Wait(context.Background()); err == nil {
			// A fast query may legitimately finish before the cancel
			// lands; only a hang would be a bug.
			continue
		}
	}
	// The service must still produce correct (validated) results.
	if _, err := svc.Do(context.Background(), string(paradigms.Tectorwise), "Q2.1"); err != nil {
		t.Fatalf("service broken after cancellations: %v", err)
	}
	svc.Close()
}

// TestThroughputScalesWithClients is the paper-extension experiment this
// package exists for: with a fixed worker budget, 16 closed-loop clients
// must outperform 1 client on both engines. A lone client burns the whole
// budget on intra-query parallelism (fork/join + barrier overhead per
// query); 16 concurrent queries each run morsel loops with their share
// and the budget is spent on inter-query parallelism instead.
func TestThroughputScalesWithClients(t *testing.T) {
	tpch, ssb := testDBs()
	const total = 96
	for _, engine := range []paradigms.Engine{paradigms.Typer, paradigms.Tectorwise} {
		qps := func(clients int) float64 {
			svc := paradigms.NewService(tpch, ssb, paradigms.ServiceOptions{
				WorkerBudget:  8,
				MaxConcurrent: 16,
			})
			defer svc.Close()
			d := runClosedLoop(t, svc, []paradigms.Engine{engine}, clients, total)
			return float64(total) / d.Seconds()
		}
		// One warmup pass populates the validation reference cache so
		// neither measured config pays it.
		qps(4)

		// A single measurement on a loaded CI box can be noisy; the
		// scaling claim must hold on the best of a few attempts.
		ok := false
		var q1, q16 float64
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			q1, q16 = qps(1), qps(16)
			ok = q16 > q1
		}
		t.Logf("%s: %.1f q/s at 1 client, %.1f q/s at 16 clients", engine, q1, q16)
		if !ok {
			t.Errorf("%s: 16 clients (%.1f q/s) not faster than 1 client (%.1f q/s)",
				engine, q16, q1)
		}
	}
}
