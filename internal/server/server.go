// Package server layers inter-query scheduling on top of the morsel-driven
// intra-query framework of internal/exec. It is an extension beyond the
// paper (whose experiments are single-query, §6): the service runs many
// simultaneous queries against one global worker budget, which is the
// regime production engines actually live in. Admission control bounds
// how many queries execute at once; arrivals beyond the bound wait in
// per-tenant queues scheduled by deficit round robin, so one tenant
// flooding the service cannot starve another (Config.FIFO restores the
// legacy single-queue discipline for comparison). Queue-depth bounds
// reject excess arrivals with a typed retry-after error, and a
// morsel-level fairness controller throttles tenants running over their
// fair worker share. Cancellation is first class: each query runs under
// its own context.Context, threaded down to every morsel dispatcher, so
// an abandoned query drains out of its scan loops within one morsel.
// See DESIGN.md §5 and §11 for the policy discussion.
//
// The package is engine agnostic by construction: queries are executed
// through injected hooks (wired to the facade by cmd/serve and the root
// package tests), so Typer and Tectorwise are scheduled identically —
// the same property the paper engineered for the intra-query layer.
package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paradigms/internal/exec"
	"paradigms/internal/obs"
)

// ExecFunc executes one query on behalf of the service. It must honor ctx
// (return promptly once ctx is done, reporting ctx.Err()) and run with at
// most the given number of workers. The facade's RunContext has exactly
// this shape once engine routing is closed over.
type ExecFunc func(ctx context.Context, engine, query string, workers int) (any, error)

// ValidateFunc checks a completed query result; a non-nil error marks the
// query failed. The facade wires this to the internal/queries reference
// oracles so every concurrently produced result is provably correct.
type ValidateFunc func(query string, result any) error

// PrepareFunc turns one SQL text into an opaque prepared statement the
// service hands back to ExecPreparedFunc. The facade wires this to the
// plan cache (internal/prepcache), so repeated Prepare calls for one
// normalized text parse and plan at most once.
type PrepareFunc func(query string) (any, error)

// ExecPreparedFunc executes a prepared statement with one argument
// binding. It returns the engine the execution actually ran on: when
// the submitted engine is "auto" the facade's adaptive router picks a
// backend per call, and the service attributes the query to that
// engine in its stats. The same ctx/worker contract as ExecFunc
// applies.
type ExecPreparedFunc func(ctx context.Context, engine string, stmt any, args []string, workers int) (result any, engineUsed string, err error)

// ExecStreamFunc executes one ad-hoc query, flushing result batches to
// sink as they are produced instead of materializing them (the facade
// asserts sink to logical.RowSink and runs the backend's streaming
// path). It returns the engine that actually ran.
type ExecStreamFunc func(ctx context.Context, engine, query string, workers int, sink any) (engineUsed string, err error)

// ExecPreparedStreamFunc is ExecStreamFunc for prepared executions.
type ExecPreparedStreamFunc func(ctx context.Context, engine string, stmt any, args []string, workers int, sink any) (engineUsed string, err error)

// Service errors.
var (
	// ErrOverloaded is the sentinel of queue-depth backpressure; actual
	// rejections are *OverloadError values carrying the tenant and a
	// retry-after estimate, and match this via errors.Is.
	ErrOverloaded = errors.New("server: admission queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("server: service closed")
	// ErrNoPrepare is returned by Prepare/SubmitPrepared when the
	// service was built without prepared-statement hooks.
	ErrNoPrepare = errors.New("server: service has no prepared-statement support")
	// ErrNoStream is returned by streaming submissions when the service
	// was built without streaming hooks.
	ErrNoStream = errors.New("server: service has no streaming support")
)

// Config configures a Service. The zero value of every optional field
// selects a sensible default.
type Config struct {
	// Exec runs one query. Required.
	Exec ExecFunc
	// Validate, if non-nil, is applied to every successful
	// non-streaming result.
	Validate ValidateFunc
	// WorkerBudget is the total number of morsel workers shared by all
	// running queries (0 = GOMAXPROCS). An admitted query gets an equal
	// split of the budget, capped by what is not already granted (see
	// Service.share): a lone query uses the whole machine, a saturated
	// service degrades to one worker per query and relies on inter-query
	// parallelism instead.
	WorkerBudget int
	// MaxConcurrent bounds the number of queries executing at once
	// (0 = max(4, WorkerBudget)). Arrivals beyond it queue per tenant.
	MaxConcurrent int
	// MaxQueued bounds the total queued count across all tenants (0 =
	// unbounded). When full, submissions fail fast with *OverloadError.
	MaxQueued int
	// MaxQueuedPerTenant bounds each tenant's queue (0 = unbounded).
	MaxQueuedPerTenant int
	// MaxPerTenant bounds how many queries of one tenant execute at
	// once (0 = no bound beyond MaxConcurrent). Under DRR a capped
	// tenant is stepped over; under FIFO it blocks the head of line.
	MaxPerTenant int
	// TenantCaps overrides MaxPerTenant per tenant name — the quota
	// knob that keeps one flooding tenant from occupying every slot
	// with long queries while leaving other tenants uncapped.
	TenantCaps map[string]int
	// TenantWeights sets DRR weights (admissions per round) per tenant
	// name; unlisted tenants weigh 1.
	TenantWeights map[string]int
	// FIFO selects the legacy global single-queue admission (arrival
	// order across all tenants, no morsel-level yielding) instead of
	// deficit round robin — kept for comparison benchmarks and the
	// fairness regression tests.
	FIFO bool
	// YieldPause is the bounded per-morsel pause imposed on queries of
	// an over-share tenant while other tenants have work (0 = 500µs).
	YieldPause time.Duration
	// MorselSize overrides the engines' default scan morsel size for
	// queries run by this service (0 = exec.DefaultMorselSize). Morsel
	// claims are where yield pauses and cancellation take effect, so a
	// smaller quantum makes the fairness throttle proportionally more
	// responsive — at ~1 atomic add per morsel of overhead.
	MorselSize int
	// Sleep, if non-nil, replaces time.Sleep for the yield pause —
	// injectable for deterministic fairness tests.
	Sleep func(time.Duration)
	// Prep and ExecPrep enable the prepared-statement API (Prepare,
	// SubmitPrepared, DoPrepared); both must be set together. Optional.
	Prep     PrepareFunc
	ExecPrep ExecPreparedFunc
	// ExecStream and ExecPrepStream enable streaming submissions
	// (Req.Sink non-nil). Optional.
	ExecStream     ExecStreamFunc
	ExecPrepStream ExecPreparedStreamFunc
	// PlanCacheStats, if set, is polled by Stats to surface the plan
	// cache's hit/miss/eviction counters.
	PlanCacheStats func() (hits, misses, evictions uint64)
	// ObsBegin, if set, creates the telemetry collector attached to each
	// execution's context (nil return = uninstrumented). A collector
	// already carried by the request (Req.Collector — e.g. an EXPLAIN
	// ANALYZE submission) takes precedence.
	ObsBegin func() *obs.Collector
	// ObsEnd, if set, receives every finished query together with its
	// collector (nil when uninstrumented) — the facade wires the
	// structured query log and metrics here. Called outside the
	// service's lock, after stats are recorded.
	ObsEnd func(col *obs.Collector, info QueryInfo)
	// EngineKey, if set, normalizes an engine name before per-engine
	// stats attribution — the facade strips hybrid assignment
	// decorations so "hybrid[t,v]" and "hybrid[t,t]" count under one
	// "hybrid" key instead of fragmenting the map per assignment.
	EngineKey func(engine string) string
}

// QueryInfo describes one finished query for the ObsEnd hook.
type QueryInfo struct {
	// Tenant the query billed to; Engine as submitted (possibly
	// "auto"); Used as executed (hybrid-decorated; equals Engine when
	// the query never ran).
	Tenant string
	Engine string
	Used   string
	// Query is the submitted text (a prepared submission's statement
	// text).
	Query    string
	Prepared bool
	Streamed bool
	// Latency is submit-to-finish; Rows the result cardinality (from a
	// streaming sink's RowCount method when available, else -1 — the
	// facade refines it from the materialized result).
	Latency time.Duration
	Rows    int64
	// Result is the materialized result (nil for streams and
	// failures); Err the failure (nil when served).
	Result any
	Err    error
}

// waiter is one queued admission request.
type waiter struct {
	grant    chan int // receives the worker share when admitted
	canceled bool     // set if the waiter gave up; skip on grant
	t        *tenant  // owning tenant (for queue removal and caps)
	share    int      // worker share granted (set by dispatch)
}

// Req describes one submission: which tenant it bills to, which engine
// runs it, what to run (ad-hoc text or prepared statement + args), and
// optionally where to stream result batches.
type Req struct {
	// Tenant attributes the query for scheduling and stats
	// ("" = DefaultTenant).
	Tenant string
	// Engine is the execution backend ("typer", "tectorwise", or
	// "auto" for prepared executions).
	Engine string
	// Query is the query name or ad-hoc SQL text (ignored for prepared
	// submissions, which carry their text).
	Query string
	// Prep, if non-nil, makes this a prepared execution with Args.
	Prep *Prepared
	Args []string
	// Sink, if non-nil, streams result batches to it instead of
	// materializing the result (the facade's hooks define the concrete
	// sink type; validation is skipped for streams).
	Sink any
	// Collector, if non-nil, instruments the execution with per-pipeline
	// telemetry readable by the caller after Done (EXPLAIN ANALYZE).
	// It overrides Config.ObsBegin for this submission.
	Collector *obs.Collector
}

// Service is a concurrent query execution service: bounded concurrency,
// per-tenant deficit-round-robin admission, queue-depth backpressure,
// per-query cancellation, streaming execution, aggregate and per-tenant
// stats. All methods are safe for concurrent use.
type Service struct {
	cfg        Config
	yieldPause time.Duration
	sleep      func(time.Duration)

	mu      sync.Mutex
	running int // queries currently executing
	granted int // morsel workers granted to running queries
	nQueued int // waiters across all queues
	tenants map[string]*tenant
	ring    []*tenant // DRR active ring (tenants with queued work)
	ringIdx int
	fifo    []*waiter // legacy global queue (Config.FIFO)
	closed  bool
	nextID  uint64
	st      statsAcc

	execEWMA time.Duration // service-wide smoothed execution time

	wg      sync.WaitGroup // in-flight queries, for Close
	started time.Time
	morsels atomic.Int64 // morsels claimed by this service's queries
}

// New creates a Service from cfg; it panics if cfg.Exec is nil.
func New(cfg Config) *Service {
	if cfg.Exec == nil {
		panic("server: Config.Exec is required")
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = max(4, cfg.WorkerBudget)
	}
	s := &Service{
		cfg:        cfg,
		yieldPause: cfg.YieldPause,
		sleep:      cfg.Sleep,
		tenants:    make(map[string]*tenant),
		started:    time.Now(),
	}
	if s.yieldPause <= 0 {
		s.yieldPause = defaultYieldPause
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	return s
}

// Submit enqueues a query for execution under the default tenant and
// returns immediately with its handle. Admission is decided by the
// scheduler (FIFO within a tenant, deficit round robin across tenants).
// ctx governs the whole lifetime of the query: canceling it while
// queued abandons the admission slot, canceling it while running drains
// the morsel workers. Submit itself only fails fast: ErrClosed after
// Close, *OverloadError when a queue bound is hit.
func (s *Service) Submit(ctx context.Context, engine, query string) (*Handle, error) {
	return s.SubmitReq(ctx, Req{Engine: engine, Query: query})
}

// Prepare turns a SQL text into a prepared statement via the injected
// PrepareFunc (the facade's plan cache): parse, bind, and optimization
// happen at most once per distinct normalized text, and the returned
// handle executes with per-call argument bindings through
// SubmitPrepared/DoPrepared. It fails with ErrNoPrepare on a service
// built without prepared-statement hooks.
func (s *Service) Prepare(query string) (*Prepared, error) {
	if s.cfg.Prep == nil || s.cfg.ExecPrep == nil {
		return nil, ErrNoPrepare
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	stmt, err := s.cfg.Prep(query)
	if err != nil {
		return nil, err
	}
	return &Prepared{stmt: stmt, query: query}, nil
}

// SubmitPrepared enqueues one execution of a prepared statement with
// the given argument texts (one per `?` placeholder) under the default
// tenant. Admission, cancellation, and the worker-share grant are
// exactly Submit's; only the execution path differs — no parse or
// plan, and an "auto" engine resolves per execution through the
// statement's adaptive router (Handle.EngineUsed reports the resolved
// engine after Done).
func (s *Service) SubmitPrepared(ctx context.Context, engine string, p *Prepared, args ...string) (*Handle, error) {
	return s.SubmitReq(ctx, Req{Engine: engine, Prep: p, Args: args})
}

// DoPrepared submits a prepared execution and waits for its result.
func (s *Service) DoPrepared(ctx context.Context, engine string, p *Prepared, args ...string) (any, error) {
	h, err := s.SubmitPrepared(ctx, engine, p, args...)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// SubmitReq is the general submission entry point: tenant attribution,
// prepared executions, and streaming all go through it. It validates
// the request against the configured hooks, then runs the shared
// admission path.
func (s *Service) SubmitReq(ctx context.Context, req Req) (*Handle, error) {
	query := req.Query
	if req.Prep != nil {
		if s.cfg.ExecPrep == nil {
			return nil, ErrNoPrepare
		}
		if req.Sink != nil && s.cfg.ExecPrepStream == nil {
			return nil, ErrNoStream
		}
		query = req.Prep.query
	} else if req.Sink != nil && s.cfg.ExecStream == nil {
		return nil, ErrNoStream
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenantOf(req.Tenant)
	free := s.running < s.cfg.MaxConcurrent && t.running < s.tenantCap(t) &&
		len(t.queue) == 0 && (!s.cfg.FIFO || len(s.fifo) == 0)
	if !free {
		full := (s.cfg.MaxQueued > 0 && s.nQueued >= s.cfg.MaxQueued) ||
			(s.cfg.MaxQueuedPerTenant > 0 && len(t.queue) >= s.cfg.MaxQueuedPerTenant)
		if full {
			s.st.rejected++
			t.rejected++
			err := &OverloadError{Tenant: t.name, Queued: len(t.queue), RetryAfter: s.retryAfter(t)}
			s.mu.Unlock()
			return nil, err
		}
	}
	s.nextID++
	h := &Handle{
		id:        s.nextID,
		tenant:    t.name,
		engine:    req.Engine,
		query:     query,
		prep:      req.Prep,
		args:      req.Args,
		sink:      req.Sink,
		col:       req.Collector,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if h.col == nil && s.cfg.ObsBegin != nil {
		h.col = s.cfg.ObsBegin()
	}
	qctx, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	var w *waiter
	var share int
	if free {
		s.running++
		t.running++
		share = s.shareFor(t)
		t.granted += share
		s.recomputeThrottles()
	} else {
		w = &waiter{grant: make(chan int, 1), t: t}
		s.enqueue(w)
	}
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(h, qctx, t, w, share)
	return h, nil
}

// Do submits the query and waits for its result (sugar over Submit+Wait).
func (s *Service) Do(ctx context.Context, engine, query string) (any, error) {
	h, err := s.Submit(ctx, engine, query)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// DoReq submits a request and waits for its result.
func (s *Service) DoReq(ctx context.Context, req Req) (any, error) {
	h, err := s.SubmitReq(ctx, req)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// run is the per-query goroutine: admission wait (if queued) → execution
// → validation → stats → release. w is nil when SubmitReq admitted the
// query immediately, in which case share is its worker grant.
func (s *Service) run(h *Handle, ctx context.Context, t *tenant, w *waiter, share int) {
	defer s.wg.Done()
	defer h.cancel()

	if w != nil {
		var err error
		share, err = s.await(ctx, w)
		if err != nil {
			s.finish(h, t, nil, err)
			return
		}
	}
	h.started = time.Now()
	h.workers = share

	var res any
	var err error
	mctx := exec.WithMorselCounter(ctx, &s.morsels)
	if s.cfg.MorselSize > 0 {
		mctx = exec.WithMorselSize(mctx, s.cfg.MorselSize)
	}
	if h.col != nil {
		mctx = obs.WithCollector(mctx, h.col)
	}
	// Morsel-level yielding: every dispatcher of this query calls back
	// between morsels; the pause is whatever the fairness controller
	// currently imposes on this query's tenant (usually zero).
	mctx = exec.WithYield(mctx, func() {
		if p := t.throttle.Load(); p > 0 {
			s.sleep(time.Duration(p))
		}
	})
	switch {
	case h.sink != nil && h.prep != nil:
		h.ran, err = s.cfg.ExecPrepStream(mctx, h.engine, h.prep.stmt, h.args, share, h.sink)
	case h.sink != nil:
		h.ran, err = s.cfg.ExecStream(mctx, h.engine, h.query, share, h.sink)
	case h.prep != nil:
		res, h.ran, err = s.cfg.ExecPrep(mctx, h.engine, h.prep.stmt, h.args, share)
	default:
		res, err = s.cfg.Exec(mctx, h.engine, h.query, share)
		h.ran = h.engine
	}
	execTime := time.Since(h.started)
	// Release before validating: validation uses no morsel workers, so
	// holding the slot (and the worker grant) through it would stall
	// admission for pure bookkeeping.
	s.release(t, share, execTime, err == nil)
	if err == nil && h.sink == nil && s.cfg.Validate != nil {
		err = s.cfg.Validate(h.query, res)
	}
	s.finish(h, t, res, err)
}

// await blocks until the queued waiter is granted a slot or ctx is
// done. On success it returns this query's worker share.
func (s *Service) await(ctx context.Context, w *waiter) (int, error) {
	select {
	case share := <-w.grant:
		return share, nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case share := <-w.grant:
			// Lost the race: the slot was granted just as ctx fired.
			// Keep it — the executor will observe ctx and drain.
			s.mu.Unlock()
			return share, nil
		default:
			w.canceled = true
			// Dequeue now so the dead waiter stops counting against
			// the queue bounds and Stats.Queued.
			s.unqueue(w)
			s.mu.Unlock()
			return 0, ctx.Err()
		}
	}
}

// release returns a slot (and its workers), feeds the retry-after
// estimator, and admits whatever the scheduler picks next. Caller must
// not hold s.mu.
func (s *Service) release(t *tenant, workers int, execTime time.Duration, ok bool) {
	s.mu.Lock()
	s.running--
	s.granted -= workers
	t.running--
	t.granted -= workers
	if ok {
		t.observeExec(execTime)
		if s.execEWMA == 0 {
			s.execEWMA = execTime
		} else {
			s.execEWMA = (s.execEWMA*7 + execTime) / 8
		}
	}
	s.dispatch()
	s.mu.Unlock()
}

// finish records the query's outcome and releases its waiters.
func (s *Service) finish(h *Handle, t *tenant, res any, err error) {
	h.finished = time.Now()
	h.latency.Store(int64(h.finished.Sub(h.submitted)) | 1) // non-zero even for a 0ns query
	if err != nil {
		h.err = err
	} else {
		h.result = res
	}
	lat := h.finished.Sub(h.submitted)
	// Attribute to the engine that actually ran ("auto" resolves per
	// execution); a query that died in the queue never ran and keeps its
	// submitted engine.
	eng := h.ran
	if eng == "" {
		eng = h.engine
	}
	s.mu.Lock()
	switch {
	case err == nil:
		s.st.served++
		t.served++
		if h.prep != nil {
			s.st.preparedServed++
		}
		if h.sink != nil {
			s.st.streamedServed++
			t.streamed++
		}
		if s.st.perEngine == nil {
			s.st.perEngine = make(map[string]uint64)
		}
		key := eng
		if s.cfg.EngineKey != nil {
			key = s.cfg.EngineKey(eng)
		}
		s.st.perEngine[key]++
		s.st.record(lat)
		t.record(lat)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.st.canceled++
		t.canceled++
	default:
		s.st.failed++
		t.failed++
	}
	s.mu.Unlock()
	if s.cfg.ObsEnd != nil && h.col != nil {
		info := QueryInfo{
			Tenant:   h.tenant,
			Engine:   h.engine,
			Used:     eng,
			Query:    h.query,
			Prepared: h.prep != nil,
			Streamed: h.sink != nil,
			Latency:  lat,
			Rows:     -1,
			Err:      err,
		}
		if err == nil {
			info.Result = res
			if rc, ok := h.sink.(interface{ RowCount() int64 }); ok {
				info.Rows = rc.RowCount()
			}
		}
		s.cfg.ObsEnd(h.col, info)
	}
	close(h.done)
}

// Close rejects new submissions and waits for every in-flight query
// (running or queued) to finish.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the service's aggregate counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st.snapshot()
	st.Submitted = s.nextID
	st.InFlight = s.running
	st.Queued = s.nQueued
	st.MorselsDispatched = s.morsels.Load()
	st.Uptime = time.Since(s.started)
	st.Tenants = make(map[string]TenantStats, len(s.tenants))
	for name, t := range s.tenants {
		st.Tenants[name] = t.snapshot()
	}
	if s.cfg.PlanCacheStats != nil {
		st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEvictions = s.cfg.PlanCacheStats()
	}
	return st
}
