// Package server layers inter-query scheduling on top of the morsel-driven
// intra-query framework of internal/exec. It is an extension beyond the
// paper (whose experiments are single-query, §6): the service runs many
// simultaneous queries against one global worker budget, which is the
// regime production engines actually live in — admission control bounds
// how many queries execute at once, arrivals beyond the bound wait in a
// FIFO queue, and every admitted query receives an equal share of the
// worker budget for its morsel workers. Cancellation is first class: each
// query runs under its own context.Context, threaded down to every morsel
// dispatcher, so an abandoned query drains out of its scan loops within
// one morsel. See DESIGN.md §5 for the policy discussion.
//
// The package is engine agnostic by construction: queries are executed
// through an injected ExecFunc (wired to the facade's RunContext by
// cmd/serve and the root package tests), so Typer and Tectorwise are
// scheduled identically — the same property the paper engineered for the
// intra-query layer.
package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paradigms/internal/exec"
)

// ExecFunc executes one query on behalf of the service. It must honor ctx
// (return promptly once ctx is done, reporting ctx.Err()) and run with at
// most the given number of workers. The facade's RunContext has exactly
// this shape once engine routing is closed over.
type ExecFunc func(ctx context.Context, engine, query string, workers int) (any, error)

// ValidateFunc checks a completed query result; a non-nil error marks the
// query failed. The facade wires this to the internal/queries reference
// oracles so every concurrently produced result is provably correct.
type ValidateFunc func(query string, result any) error

// PrepareFunc turns one SQL text into an opaque prepared statement the
// service hands back to ExecPreparedFunc. The facade wires this to the
// plan cache (internal/prepcache), so repeated Prepare calls for one
// normalized text parse and plan at most once.
type PrepareFunc func(query string) (any, error)

// ExecPreparedFunc executes a prepared statement with one argument
// binding. It returns the engine the execution actually ran on: when
// the submitted engine is "auto" the facade's adaptive router picks a
// backend per call, and the service attributes the query to that
// engine in its stats. The same ctx/worker contract as ExecFunc
// applies.
type ExecPreparedFunc func(ctx context.Context, engine string, stmt any, args []string, workers int) (result any, engineUsed string, err error)

// Service errors.
var (
	// ErrOverloaded is returned by Submit when the FIFO admission queue
	// is at MaxQueued.
	ErrOverloaded = errors.New("server: admission queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("server: service closed")
	// ErrNoPrepare is returned by Prepare/SubmitPrepared when the
	// service was built without prepared-statement hooks.
	ErrNoPrepare = errors.New("server: service has no prepared-statement support")
)

// Config configures a Service. The zero value of every optional field
// selects a sensible default.
type Config struct {
	// Exec runs one query. Required.
	Exec ExecFunc
	// Validate, if non-nil, is applied to every successful result.
	Validate ValidateFunc
	// WorkerBudget is the total number of morsel workers shared by all
	// running queries (0 = GOMAXPROCS). An admitted query gets an equal
	// split of the budget, capped by what is not already granted (see
	// Service.share): a lone query uses the whole machine, a saturated
	// service degrades to one worker per query and relies on inter-query
	// parallelism instead.
	WorkerBudget int
	// MaxConcurrent bounds the number of queries executing at once
	// (0 = max(4, WorkerBudget)). Arrivals beyond it queue FIFO.
	MaxConcurrent int
	// MaxQueued bounds the FIFO queue (0 = unbounded). When the queue is
	// full, Submit fails fast with ErrOverloaded.
	MaxQueued int
	// Prep and ExecPrep enable the prepared-statement API (Prepare,
	// SubmitPrepared, DoPrepared); both must be set together. Optional.
	Prep     PrepareFunc
	ExecPrep ExecPreparedFunc
	// PlanCacheStats, if set, is polled by Stats to surface the plan
	// cache's hit/miss/eviction counters.
	PlanCacheStats func() (hits, misses, evictions uint64)
}

// waiter is one queued admission request.
type waiter struct {
	grant    chan int // receives the worker share when admitted
	canceled bool     // set if the waiter gave up; skip on grant
}

// Service is a concurrent query execution service: bounded concurrency,
// FIFO admission, per-query cancellation, aggregate stats. All methods are
// safe for concurrent use.
type Service struct {
	cfg Config

	mu      sync.Mutex
	running int       // queries currently executing
	granted int       // morsel workers granted to running queries
	queue   []*waiter // FIFO admission queue
	closed  bool
	nextID  uint64
	st      statsAcc

	wg      sync.WaitGroup // in-flight queries, for Close
	started time.Time
	morsels atomic.Int64 // morsels claimed by this service's queries
}

// New creates a Service from cfg; it panics if cfg.Exec is nil.
func New(cfg Config) *Service {
	if cfg.Exec == nil {
		panic("server: Config.Exec is required")
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = max(4, cfg.WorkerBudget)
	}
	return &Service{cfg: cfg, started: time.Now()}
}

// Submit enqueues a query for execution and returns immediately with its
// handle. Admission is decided inside Submit, so FIFO order is exactly
// Submit-call order. ctx governs the whole lifetime of the query:
// canceling it while queued abandons the admission slot, canceling it
// while running drains the morsel workers. Submit itself only fails fast:
// ErrClosed after Close, ErrOverloaded when the bounded queue is full.
func (s *Service) Submit(ctx context.Context, engine, query string) (*Handle, error) {
	return s.submit(ctx, engine, query, nil, nil)
}

// Prepare turns a SQL text into a prepared statement via the injected
// PrepareFunc (the facade's plan cache): parse, bind, and optimization
// happen at most once per distinct normalized text, and the returned
// handle executes with per-call argument bindings through
// SubmitPrepared/DoPrepared. It fails with ErrNoPrepare on a service
// built without prepared-statement hooks.
func (s *Service) Prepare(query string) (*Prepared, error) {
	if s.cfg.Prep == nil || s.cfg.ExecPrep == nil {
		return nil, ErrNoPrepare
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	stmt, err := s.cfg.Prep(query)
	if err != nil {
		return nil, err
	}
	return &Prepared{stmt: stmt, query: query}, nil
}

// SubmitPrepared enqueues one execution of a prepared statement with
// the given argument texts (one per `?` placeholder). Admission, FIFO
// order, cancellation, and the worker-share grant are exactly Submit's;
// only the execution path differs — no parse or plan, and an "auto"
// engine resolves per execution through the statement's adaptive
// router (Handle.EngineUsed reports the resolved engine after Done).
func (s *Service) SubmitPrepared(ctx context.Context, engine string, p *Prepared, args ...string) (*Handle, error) {
	if s.cfg.ExecPrep == nil {
		return nil, ErrNoPrepare
	}
	return s.submit(ctx, engine, p.query, p, args)
}

// DoPrepared submits a prepared execution and waits for its result.
func (s *Service) DoPrepared(ctx context.Context, engine string, p *Prepared, args ...string) (any, error) {
	h, err := s.SubmitPrepared(ctx, engine, p, args...)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// submit is the shared admission path of Submit and SubmitPrepared.
func (s *Service) submit(ctx context.Context, engine, query string, prep *Prepared, args []string) (*Handle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	free := s.running < s.cfg.MaxConcurrent && len(s.queue) == 0
	if !free && s.cfg.MaxQueued > 0 && len(s.queue) >= s.cfg.MaxQueued {
		s.st.rejected++
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	s.nextID++
	h := &Handle{
		id:        s.nextID,
		engine:    engine,
		query:     query,
		prep:      prep,
		args:      args,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	qctx, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	var w *waiter
	var share int
	if free {
		s.running++
		share = s.share()
	} else {
		w = &waiter{grant: make(chan int, 1)}
		s.queue = append(s.queue, w)
		s.st.queuedHighWater = max(s.st.queuedHighWater, len(s.queue))
	}
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(h, qctx, w, share)
	return h, nil
}

// Do submits the query and waits for its result (sugar over Submit+Wait).
func (s *Service) Do(ctx context.Context, engine, query string) (any, error) {
	h, err := s.Submit(ctx, engine, query)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// run is the per-query goroutine: admission wait (if queued) → execution
// → validation → stats → release. w is nil when Submit admitted the query
// immediately, in which case share is its worker grant.
func (s *Service) run(h *Handle, ctx context.Context, w *waiter, share int) {
	defer s.wg.Done()
	defer h.cancel()

	if w != nil {
		var err error
		share, err = s.await(ctx, w)
		if err != nil {
			s.finish(h, nil, err)
			return
		}
	}
	h.started = time.Now()
	h.workers = share

	var res any
	var err error
	mctx := exec.WithMorselCounter(ctx, &s.morsels)
	if h.prep != nil {
		res, h.ran, err = s.cfg.ExecPrep(mctx, h.engine, h.prep.stmt, h.args, share)
	} else {
		res, err = s.cfg.Exec(mctx, h.engine, h.query, share)
		h.ran = h.engine
	}
	// Release before validating: validation uses no morsel workers, so
	// holding the slot (and the worker grant) through it would stall
	// admission for pure bookkeeping.
	s.release(share)
	if err == nil && s.cfg.Validate != nil {
		err = s.cfg.Validate(h.query, res)
	}
	s.finish(h, res, err)
}

// await blocks until the queued waiter is granted a slot (FIFO) or ctx is
// done. On success it returns this query's worker share.
func (s *Service) await(ctx context.Context, w *waiter) (int, error) {
	select {
	case share := <-w.grant:
		return share, nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case share := <-w.grant:
			// Lost the race: the slot was granted just as ctx fired.
			// Keep it — the executor will observe ctx and drain.
			s.mu.Unlock()
			return share, nil
		default:
			w.canceled = true
			// Dequeue now so the dead waiter stops counting against
			// MaxQueued and Stats.Queued.
			for i, qw := range s.queue {
				if qw == w {
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			return 0, ctx.Err()
		}
	}
}

// release returns a slot (and its workers) and hands the slot to the
// first live queued waiter. Caller must not hold s.mu.
func (s *Service) release(workers int) {
	s.mu.Lock()
	s.running--
	s.granted -= workers
	for len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		if w.canceled {
			continue
		}
		s.running++
		w.grant <- s.share()
		break
	}
	s.mu.Unlock()
}

// share computes the worker share of a newly admitted query: an equal
// split of the budget by running-query count, additionally capped by the
// budget not yet granted to still-running queries so that admissions
// during a concurrency ramp-up cannot oversubscribe the budget (a lone
// query holding the full budget forces arrivals down to one worker until
// it finishes). The one-worker floor means the budget is soft once
// MaxConcurrent exceeds it. Caller holds s.mu; the returned share is
// recorded as granted.
func (s *Service) share() int {
	w := max(1, min(s.cfg.WorkerBudget-s.granted, s.cfg.WorkerBudget/max(1, s.running)))
	s.granted += w
	return w
}

// finish records the query's outcome and releases its waiters.
func (s *Service) finish(h *Handle, res any, err error) {
	h.finished = time.Now()
	h.latency.Store(int64(h.finished.Sub(h.submitted)) | 1) // non-zero even for a 0ns query
	if err != nil {
		h.err = err
	} else {
		h.result = res
	}
	s.mu.Lock()
	switch {
	case err == nil:
		s.st.served++
		if h.prep != nil {
			s.st.preparedServed++
		}
		if s.st.perEngine == nil {
			s.st.perEngine = make(map[string]uint64)
		}
		// Attribute to the engine that actually ran ("auto" resolves
		// per execution); a query that died in the queue never ran and
		// keeps its submitted engine.
		eng := h.ran
		if eng == "" {
			eng = h.engine
		}
		s.st.perEngine[eng]++
		s.st.record(h.finished.Sub(h.submitted))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.st.canceled++
	default:
		s.st.failed++
	}
	s.mu.Unlock()
	close(h.done)
}

// Close rejects new submissions and waits for every in-flight query
// (running or queued) to finish.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the service's aggregate counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st.snapshot()
	st.InFlight = s.running
	st.Queued = len(s.queue)
	st.MorselsDispatched = s.morsels.Load()
	st.Uptime = time.Since(s.started)
	if s.cfg.PlanCacheStats != nil {
		st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEvictions = s.cfg.PlanCacheStats()
	}
	return st
}
