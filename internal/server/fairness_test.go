package server

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"
)

// submitT submits a query for a tenant and fails the test on error.
func submitT(t *testing.T, s *Service, tenant, query string) *Handle {
	t.Helper()
	h, err := s.SubmitReq(context.Background(), Req{Tenant: tenant, Engine: "typer", Query: query})
	if err != nil {
		t.Fatalf("submit %s/%s: %v", tenant, query, err)
	}
	return h
}

// drain releases every started query in start order until all handles
// finish, then returns the exec-start order of query names.
func drain(t *testing.T, be *blockingExec, handles []*Handle) []string {
	t.Helper()
	for i := 0; i < len(handles); i++ {
		be.waitStarted(t, i+1)
		be.releaseOne(i)
	}
	for _, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	return append([]string(nil), be.startSeq...)
}

// TestDRRInterleavesTenants pins the admission order itself: with one
// execution slot and a heavy tenant's backlog already queued, a light
// tenant that shows up later is admitted every round — not after the
// backlog. The same arrival order under legacy FIFO admits strictly by
// arrival. This is the deterministic core of the fairness story; the
// latency-level consequence is TestLightTenantLatencyBound.
func TestDRRInterleavesTenants(t *testing.T) {
	arrive := func(t *testing.T, s *Service) []*Handle {
		t.Helper()
		handles := []*Handle{submitT(t, s, "heavy", "h0")} // occupies the slot
		for _, q := range []string{"h1", "h2", "h3", "h4"} {
			handles = append(handles, submitT(t, s, "heavy", q))
		}
		for _, q := range []string{"l1", "l2"} {
			handles = append(handles, submitT(t, s, "light", q))
		}
		return handles
	}

	t.Run("drr", func(t *testing.T) {
		be := &blockingExec{}
		s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1})
		defer s.Close()
		be2 := arrive(t, s)
		got := drain(t, be, be2)
		want := []string{"h0", "h1", "l1", "h2", "l2", "h3", "h4"}
		assertSeq(t, got, want)
	})

	t.Run("fifo", func(t *testing.T) {
		be := &blockingExec{}
		s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1, FIFO: true})
		defer s.Close()
		be2 := arrive(t, s)
		got := drain(t, be, be2)
		want := []string{"h0", "h1", "h2", "h3", "h4", "l1", "l2"}
		assertSeq(t, got, want)
	})
}

// TestDRRWeights pins the deficit mechanics: a tenant with weight 2 is
// admitted twice per round.
func TestDRRWeights(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{
		Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1,
		TenantWeights: map[string]int{"a": 2},
	})
	defer s.Close()
	handles := []*Handle{submitT(t, s, "a", "a0")}
	for _, q := range []string{"a1", "a2", "a3", "a4"} {
		handles = append(handles, submitT(t, s, "a", q))
	}
	for _, q := range []string{"b1", "b2"} {
		handles = append(handles, submitT(t, s, "b", q))
	}
	got := drain(t, be, handles)
	want := []string{"a0", "a1", "a2", "b1", "a3", "a4", "b2"}
	assertSeq(t, got, want)
}

// TestCapStepOver pins the scheduling difference per-tenant caps create:
// under DRR a tenant at its running cap is stepped over, so a later
// arrival of another tenant admits into the spare slot immediately;
// under legacy FIFO the capped queue head blocks everyone behind it.
// This head-of-line blocking is exactly what the fairness benchmark
// measures at the latency level.
func TestCapStepOver(t *testing.T) {
	cfg := func(fifo bool, be *blockingExec) Config {
		return Config{
			Exec: be.fn, MaxConcurrent: 2, WorkerBudget: 2,
			TenantCaps: map[string]int{"heavy": 1},
			FIFO:       fifo,
		}
	}

	t.Run("drr-steps-over-capped-tenant", func(t *testing.T) {
		be := &blockingExec{}
		s := New(cfg(false, be))
		defer s.Close()
		h0 := submitT(t, s, "heavy", "h0") // heavy now at its cap
		be.waitStarted(t, 1)
		h1 := submitT(t, s, "heavy", "h1") // queues: cap reached
		l1 := submitT(t, s, "light", "l1") // must NOT wait behind h1
		be.waitStarted(t, 2)
		be.mu.Lock()
		second := be.startSeq[1]
		be.mu.Unlock()
		if second != "l1" {
			t.Fatalf("second started query is %q, want l1 (stepped over capped heavy)", second)
		}
		for i := 0; i < 3; i++ {
			be.waitStarted(t, i+1)
			be.releaseOne(i)
		}
		for _, h := range []*Handle{h0, h1, l1} {
			if _, err := h.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("fifo-blocks-head-of-line", func(t *testing.T) {
		be := &blockingExec{}
		s := New(cfg(true, be))
		defer s.Close()
		h0 := submitT(t, s, "heavy", "h0")
		be.waitStarted(t, 1)
		h1 := submitT(t, s, "heavy", "h1")
		l1 := submitT(t, s, "light", "l1")
		// The spare slot stays empty: h1 is capped and blocks the line.
		time.Sleep(50 * time.Millisecond)
		be.mu.Lock()
		started := len(be.startSeq)
		be.mu.Unlock()
		if started != 1 {
			t.Fatalf("%d queries started under FIFO, want 1 (capped head blocks the line)", started)
		}
		for i := 0; i < 3; i++ {
			be.waitStarted(t, i+1)
			be.releaseOne(i)
		}
		for _, h := range []*Handle{h0, h1, l1} {
			if _, err := h.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestNoStarvationUnderFlood: one tenant floods a deep backlog; two
// bystander tenants each submit a handful of queries. Round-robin
// admission guarantees every bystander query starts within a few rounds
// — no non-empty queue is skipped for more than one round — so none of
// them can land in the flooded tail.
func TestNoStarvationUnderFlood(t *testing.T) {
	be := &blockingExec{}
	s := New(Config{Exec: be.fn, MaxConcurrent: 1, WorkerBudget: 1})
	defer s.Close()
	handles := []*Handle{submitT(t, s, "flood", "f0")}
	for i := 1; i <= 20; i++ {
		handles = append(handles, submitT(t, s, "flood", "f"))
	}
	for i := 0; i < 3; i++ {
		handles = append(handles, submitT(t, s, "b", "b"))
		handles = append(handles, submitT(t, s, "c", "c"))
	}
	got := drain(t, be, handles)
	var positions []int
	for i, q := range got {
		if q == "b" || q == "c" {
			positions = append(positions, i)
		}
	}
	if len(positions) != 6 {
		t.Fatalf("bystanders started %d times, want 6", len(positions))
	}
	sort.Ints(positions)
	// 3 rounds of (flood, b, c) admit every bystander by position 9.
	if last := positions[len(positions)-1]; last > 9 {
		t.Errorf("last bystander start at position %d of %d, want ≤9 (starved behind flood)", last, len(got))
	}
}

// sleepExec is an ExecFunc that sleeps a per-query-class duration —
// a stand-in for Q3-class scans vs Q6-class aggregates with exactly
// controlled service times.
func sleepExec(ctx context.Context, engine, query string, workers int) (any, error) {
	d := time.Millisecond
	if query == "heavy" {
		d = 40 * time.Millisecond
	}
	select {
	case <-time.After(d):
		return query, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestLightTenantLatencyBound is the closed-loop fairness satellite: a
// heavy tenant floods 40ms queries from 4 clients while a light tenant
// runs 1ms queries from 2 clients. With a dedicated-by-cap slot under
// DRR the light tenant's p99 stays near its service time; under legacy
// FIFO it queues behind the flood and inflates by an order of
// magnitude. The bounds are service-time multiples (sleep-based exec),
// so the test is load-independent; it fails loudly if the scheduler is
// swapped back to the FIFO path.
func TestLightTenantLatencyBound(t *testing.T) {
	run := func(fifo bool) (light, heavy TenantStats) {
		s := New(Config{
			Exec: sleepExec, MaxConcurrent: 2, WorkerBudget: 2,
			TenantCaps: map[string]int{"heavy": 1},
			FIFO:       fifo,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 1200*time.Millisecond)
		defer cancel()
		var wg sync.WaitGroup
		loop := func(tenant string, n int) {
			for c := 0; c < n; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for ctx.Err() == nil {
						h, err := s.SubmitReq(ctx, Req{Tenant: tenant, Engine: "typer", Query: tenant})
						if err != nil {
							return
						}
						h.Wait(ctx)
					}
				}()
			}
		}
		loop("heavy", 4)
		loop("light", 2)
		wg.Wait()
		s.Close()
		st := s.Stats()
		return st.Tenants["light"], st.Tenants["heavy"]
	}

	light, heavy := run(false)
	if light.Served < 50 {
		t.Fatalf("light served only %d queries under DRR", light.Served)
	}
	if heavy.Served == 0 {
		t.Errorf("heavy tenant starved under DRR (0 served)")
	}
	// Light holds a dedicated slot: two 1ms clients share it, so p99
	// stays within a few service times even while heavy floods.
	if limit := 15 * time.Millisecond; light.P99 > limit {
		t.Errorf("light p99 %v under DRR, want ≤%v", light.P99, limit)
	}

	lightFIFO, _ := run(true)
	// Under FIFO the light tenant waits out heavy's 40ms queries ahead
	// of it in the global queue; anything near DRR's bound means the
	// legacy path stopped being unfair and the benchmark lost its
	// baseline.
	if floor := 30 * time.Millisecond; lightFIFO.P99 < floor {
		t.Errorf("light p99 %v under FIFO, want ≥%v (head-of-line blocking gone?)", lightFIFO.P99, floor)
	}
}

// assertSeq compares two string sequences elementwise.
func assertSeq(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("start order %v, want %v (diverges at %d)", got, want, i)
		}
	}
}
