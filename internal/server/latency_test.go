package server

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestLatencyBeforeCompletion: Handle.Latency is well-defined while the
// query is still queued or running — it reports elapsed-so-far, never a
// difference against the zero finish time (which would be a huge
// negative duration).
func TestLatencyBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	svc := New(Config{
		WorkerBudget: 1,
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			<-release
			return query, nil
		},
	})
	h, err := svc.Submit(context.Background(), "typer", "Q1")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if d := h.Latency(); d <= 0 || d > time.Minute {
		t.Errorf("in-flight Latency() = %v, want a small positive elapsed duration", d)
	}
	mid := h.Latency()
	close(release)
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	final := h.Latency()
	if final < mid {
		t.Errorf("final latency %v went backwards from in-flight %v", final, mid)
	}
	if again := h.Latency(); again != final {
		t.Errorf("post-completion latency not stable: %v then %v", final, again)
	}
	svc.Close()
}

// TestStatsJSON: the machine-readable snapshot carries the counters and
// millisecond quantiles cmd/serve -statsjson emits.
func TestStatsJSON(t *testing.T) {
	svc := New(Config{
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			return query, nil
		},
	})
	for i := 0; i < 3; i++ {
		if _, err := svc.Do(context.Background(), "typer", "Q1"); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
	raw, err := json.Marshal(svc.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v\n%s", err, raw)
	}
	if m["served"].(float64) != 3 {
		t.Errorf("served = %v, want 3", m["served"])
	}
	for _, key := range []string{"qps", "p50_ms", "p99_ms", "per_engine", "morsels_dispatched", "uptime_ms", "queued_high_water"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats JSON missing %q: %s", key, raw)
		}
	}
}
