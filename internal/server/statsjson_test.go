package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the statsz JSON golden file")

// TestStatsJSONGolden pins the /statsz wire shape: a fully populated
// snapshot with fixed values must marshal byte-for-byte to the golden
// file, so renaming or reordering a metric is a deliberate,
// diff-reviewed act. Map keys marshal sorted (encoding/json), so the
// rendering is deterministic without a fixed clock beyond the literal
// durations below.
func TestStatsJSONGolden(t *testing.T) {
	st := Stats{
		Submitted: 120,
		Served:    100, Failed: 5, Canceled: 10, Rejected: 5,
		PreparedServed: 40,
		StreamedServed: 25,
		Tenants: map[string]TenantStats{
			"default": {
				Served: 60, Failed: 2, Canceled: 6, Rejected: 1, Streamed: 15,
				Running: 1, Queued: 2, Weight: 1,
				P50: 2 * time.Millisecond, P95: 9 * time.Millisecond,
				P99: 12 * time.Millisecond, Max: 30 * time.Millisecond,
			},
			"heavy": {
				Served: 40, Failed: 3, Canceled: 4, Rejected: 4, Streamed: 10,
				Running: 2, Queued: 5, Weight: 4,
				P50: 8 * time.Millisecond, P95: 40 * time.Millisecond,
				P99: 55 * time.Millisecond, Max: 90 * time.Millisecond,
			},
		},
		PerEngine: map[string]uint64{
			"typer": 50, "tectorwise": 30, "hybrid": 20,
		},
		PlanCacheHits: 35, PlanCacheMisses: 5, PlanCacheEvictions: 1,
		InFlight: 3, Queued: 7, QueuedHighWater: 12,
		P50: 3 * time.Millisecond, P95: 20 * time.Millisecond,
		P99: 45 * time.Millisecond, Max: 90 * time.Millisecond,
		MorselsDispatched: 123456,
		Uptime:            10 * time.Second,
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')

	path := filepath.Join("testdata", "statsz.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("statsz JSON drifted from golden (run with -update if deliberate)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestStatsJSONDeterministic marshals the same snapshot repeatedly —
// map iteration randomness must not leak into the wire bytes.
func TestStatsJSONDeterministic(t *testing.T) {
	st := Stats{
		Served: 2,
		PerEngine: map[string]uint64{
			"typer": 1, "tectorwise": 1, "hybrid": 0, "auto": 0,
		},
		Tenants: map[string]TenantStats{"a": {}, "b": {}, "c": {}, "d": {}},
	}
	first, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, got) {
			t.Fatalf("marshal %d differs:\n%s\n%s", i, first, got)
		}
	}
}
