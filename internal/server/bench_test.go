package server_test

// Closed-loop throughput benchmarks of the concurrent query service:
// queries/sec for 1, 4 and 16 clients on both engines, every result
// validated against the reference oracles. Run with:
//
//	go test -bench Service -benchtime 10x ./internal/server
//
// b.N counts whole queries, so ns/op is the service's per-query latency
// at that client count and qps is reported as an extra metric.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"paradigms"
)

func benchService(b *testing.B, engine paradigms.Engine, clients int) {
	tpch, ssb := testDBs()
	svc := paradigms.NewService(tpch, ssb, paradigms.ServiceOptions{
		WorkerBudget:  8,
		MaxConcurrent: 16,
	})
	defer svc.Close()

	// Warmup: populate the validation reference cache.
	for _, q := range workloadQueries {
		if _, err := svc.Do(context.Background(), string(engine), q); err != nil {
			b.Fatal(err)
		}
	}

	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(b.N) {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				q := workloadQueries[i%len(workloadQueries)]
				if _, err := svc.Do(context.Background(), string(engine), q); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/sec")
}

func BenchmarkService(b *testing.B) {
	for _, engine := range []paradigms.Engine{paradigms.Typer, paradigms.Tectorwise} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", engine, clients), func(b *testing.B) {
				benchService(b, engine, clients)
			})
		}
	}
}
