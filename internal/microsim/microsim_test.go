package microsim

import (
	"testing"
	"unsafe"

	"paradigms/internal/tpch"
)

func TestCacheDirectMappedBehavior(t *testing.T) {
	// 4 KB, 1-way: 64 sets. Lines n and n+64 collide.
	c := NewCache(4096, 1)
	if !c.Access(5) == true && c.Misses != 1 {
		t.Fatal("first access should miss")
	}
	if c.Access(5) != true {
		t.Fatal("second access should hit")
	}
	c.Access(5 + 64) // evicts line 5
	if c.Access(5) {
		t.Fatal("line 5 should have been evicted")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets (256 B): lines 0, 2, 4 map to set 0.
	c := NewCache(256, 2)
	c.Access(0)
	c.Access(2)
	c.Access(0) // refresh 0 → LRU is 2
	c.Access(4) // evicts 2
	if !c.Access(0) {
		t.Error("0 should still be cached")
	}
	if c.Access(2) {
		t.Error("2 should have been evicted (LRU)")
	}
}

func TestCacheMonotoneWithSize(t *testing.T) {
	// Same access stream: a bigger cache never misses more.
	stream := make([]uint64, 0, 10000)
	state := uint64(7)
	for i := 0; i < 10000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		stream = append(stream, state%2048)
	}
	small := NewCache(16<<10, 8)
	big := NewCache(256<<10, 8)
	for _, line := range stream {
		small.Access(line)
		big.Access(line)
	}
	if big.Misses > small.Misses {
		t.Errorf("bigger cache misses more: %d > %d", big.Misses, small.Misses)
	}
}

func TestCacheGeometryRounding(t *testing.T) {
	// 1000 B, 3-way → 5 sets, rounded down to 4.
	c := NewCache(1000, 3)
	if got := len(c.tags) / 3; got != 4 {
		t.Errorf("sets = %d, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for sub-set-size cache")
		}
	}()
	NewCache(64, 2)
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(12)
	// Always-taken branch: after warmup, no misses.
	for i := 0; i < 1000; i++ {
		bp.Branch(1, true)
	}
	missesAfterWarmup := bp.Misses
	for i := 0; i < 1000; i++ {
		bp.Branch(1, true)
	}
	if bp.Misses != missesAfterWarmup {
		t.Errorf("predictor keeps missing an always-taken branch")
	}
}

func TestBranchPredictorRandomIsBad(t *testing.T) {
	bp := NewBranchPredictor(12)
	state := uint64(3)
	misses0 := bp.Misses
	const n = 20000
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		bp.Branch(2, state>>40&1 != 0) // high LCG bits ≈ random
	}
	rate := float64(bp.Misses-misses0) / n
	if rate < 0.2 {
		t.Errorf("random branch miss rate = %.2f, want ≈0.5", rate)
	}
}

func TestOverlapModelSimpleVsComplexLoops(t *testing.T) {
	// The §4.1 mechanism: a tight loop of consecutive misses overlaps
	// them (stall ≈ lat/LFB each after the leader); a loop with many
	// instructions between misses starts a new group every time.
	data := make([]byte, 64<<20)
	touch := func(c *CPU, opsBetween int) {
		for i := 0; i < 10000; i++ {
			c.Ops(opsBetween)
			c.Load(unsafe.Pointer(&data[(i*997)%len(data)&^63]), 8)
		}
	}
	simple := NewCPU(Skylake)
	touch(simple, 2)
	complexCPU := NewCPU(Skylake)
	touch(complexCPU, 300) // exceeds the ROB window per miss
	if simple.MemStallCycles*2 > complexCPU.MemStallCycles {
		t.Errorf("overlap model broken: simple-loop stalls %d vs complex %d",
			simple.MemStallCycles, complexCPU.MemStallCycles)
	}
}

func TestBranchMissBreaksOverlapGroup(t *testing.T) {
	data := make([]byte, 64<<20)
	state := uint64(9)
	run := func(withRandomBranch bool) uint64 {
		c := NewCPU(Skylake)
		s := state
		for i := 0; i < 20000; i++ {
			c.Ops(2)
			if withRandomBranch {
				s = s*6364136223846793005 + 1
				c.Branch(3, s&64 != 0)
			}
			c.Load(unsafe.Pointer(&data[(i*1021)%len(data)&^63]), 8)
		}
		return c.MemStallCycles
	}
	noBranch := run(false)
	withBranch := run(true)
	if withBranch <= noBranch {
		t.Errorf("mispredicts should reduce miss overlap: %d <= %d", withBranch, noBranch)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	db := tpch.Generate(0.05, 0)
	rows := Table1(db, Skylake)
	byKey := map[string]Counters{}
	for _, r := range rows {
		byKey[r.Engine+"/"+r.Query] = r
	}
	// Paper Table 1 shape assertions:
	// (1) TW executes significantly more instructions on Q1 (162 vs 68).
	if tw, ty := byKey["tectorwise/Q1"], byKey["typer/Q1"]; tw.Instr < 1.5*ty.Instr {
		t.Errorf("Q1 instructions: TW %.0f vs Typer %.0f, want TW ≥ 1.5×", tw.Instr, ty.Instr)
	}
	// (2) Both engines see nearly identical LLC misses on the join
	// queries (same hash tables).
	for _, q := range []string{"Q3", "Q9"} {
		tw, ty := byKey["tectorwise/"+q], byKey["typer/"+q]
		if ty.LLCMiss == 0 && tw.LLCMiss == 0 {
			continue // tiny SF: tables cache-resident
		}
		ratio := tw.LLCMiss / ty.LLCMiss
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s LLC misses diverge: TW %.3f vs Typer %.3f", q, tw.LLCMiss, ty.LLCMiss)
		}
	}
	// (3) TW has more L1 misses (materialized intermediates).
	if tw, ty := byKey["tectorwise/Q1"], byKey["typer/Q1"]; tw.L1Miss < ty.L1Miss {
		t.Errorf("Q1 L1 misses: TW %.2f < Typer %.2f", tw.L1Miss, ty.L1Miss)
	}
	// (4) Typer Q6 suffers more branch misses than TW Q6 (predication).
	if tw, ty := byKey["tectorwise/Q6"], byKey["typer/Q6"]; tw.BranchMiss > ty.BranchMiss {
		t.Errorf("Q6 branch misses: TW %.3f > Typer %.3f", tw.BranchMiss, ty.BranchMiss)
	}
	// (5) Typer is faster on Q1 (cycles/tuple).
	if tw, ty := byKey["tectorwise/Q1"], byKey["typer/Q1"]; ty.Cycles > tw.Cycles {
		t.Errorf("Q1 cycles: Typer %.1f > TW %.1f", ty.Cycles, tw.Cycles)
	}
}

func TestSSBTableRuns(t *testing.T) {
	db := tpchLikeSSB(t)
	rows := SSBTable(db, Skylake)
	if len(rows) != 8 {
		t.Fatalf("SSB table rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Instr <= 0 || r.Cycles <= 0 {
			t.Errorf("%s/%s has empty counters", r.Engine, r.Query)
		}
	}
}

func TestSIMDModelShapes(t *testing.T) {
	// Fig 6a: dense in-cache selection gains close to an order of
	// magnitude with 16 lanes.
	dense := SelectionDense(Skylake, 8192, 0.4)
	if dense.Speedup < 3 {
		t.Errorf("dense selection speedup = %.1fx, want ≫1", dense.Speedup)
	}
	// Fig 6b: sparse selection gains much less.
	sparse := SelectionSparse(Skylake, 8192, 0.4)
	if sparse.Speedup >= dense.Speedup {
		t.Errorf("sparse (%.1fx) should gain less than dense (%.1fx)",
			sparse.Speedup, dense.Speedup)
	}
	// Fig 8a/8b: hashing gains well; gathers barely gain.
	h := Hashing(Skylake, 8192)
	g := GatherKernel(Skylake, 256<<20, 4096)
	if h.Speedup < 1.5 {
		t.Errorf("hashing speedup = %.1fx", h.Speedup)
	}
	if g.Speedup > 1.6 {
		t.Errorf("big-working-set gather speedup = %.1fx, want ≈1.1x", g.Speedup)
	}
	// Fig 9: gains collapse as the working set leaves the cache.
	rows := Fig9(Skylake, []int{128 << 10, 4 << 20, 256 << 20}, 4096)
	small := rows[0].ScalarCycles / rows[0].SIMDCycles
	large := rows[len(rows)-1].ScalarCycles / rows[len(rows)-1].SIMDCycles
	if large >= small {
		t.Errorf("SIMD gain should shrink with working set: %.2f -> %.2f", small, large)
	}
	// Cost per lookup must grow with working set (cache cliff).
	if rows[len(rows)-1].ScalarCycles <= rows[0].ScalarCycles {
		t.Errorf("no cache cliff: %.1f <= %.1f",
			rows[len(rows)-1].ScalarCycles, rows[0].ScalarCycles)
	}
}

func TestFig7MemoryBound(t *testing.T) {
	rows := Fig7(Skylake, 64<<20, []float64{1.0, 0.5, 0.2})
	// At full density the SIMD variant wins clearly; at low selectivity
	// (large strides, all misses) the gap closes.
	first := rows[0].ScalarCycles / rows[0].SIMDCycles
	last := rows[len(rows)-1].ScalarCycles / rows[len(rows)-1].SIMDCycles
	if last >= first {
		t.Errorf("SIMD gain should shrink with sparsity: %.2f -> %.2f", first, last)
	}
}

func TestThroughputModel(t *testing.T) {
	rows := Throughput(Skylake, "typer", "Q6", 5e8, 3e8, false, 1)
	if len(rows) != Skylake.Cores*Skylake.SMTWays {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone non-decreasing QPS in cores.
	for i := 1; i < len(rows); i++ {
		if rows[i].QPS < rows[i-1].QPS-1e-9 {
			t.Errorf("QPS decreased at %d cores", rows[i].Cores)
		}
	}
	// Q6 is bandwidth bound: the ceiling must bind before 20 threads.
	if rows[len(rows)-1].QPS > Skylake.MemBWGBs*1e9/3e8+1e-9 {
		t.Errorf("bandwidth ceiling not applied")
	}
}

func TestFig10AutoVecOnlyPartialGains(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	rows := Fig10(db, Skylake)
	for _, r := range rows {
		if r.InstrReduction <= 0 || r.InstrReduction >= 0.7 {
			t.Errorf("%s instruction reduction %.2f out of plausible range", r.Query, r.InstrReduction)
		}
		if r.TimeReduction >= r.InstrReduction {
			t.Errorf("%s time reduction (%.2f) should trail instruction reduction (%.2f)",
				r.Query, r.TimeReduction, r.InstrReduction)
		}
	}
}

// tpchLikeSSB builds a small SSB database without importing internal/ssb
// in this package's non-test code.
func tpchLikeSSB(t *testing.T) *dbType {
	t.Helper()
	return ssbGen(0.02)
}
