package microsim

import "unsafe"

// HW describes one hardware platform (Table 4 of the paper, augmented
// with the micro-architectural parameters the cost model needs).
type HW struct {
	Name       string
	Model      string
	Cores      int
	SMTWays    int
	IssueWidth int
	ClockGHz   float64

	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int

	L2Lat, LLCLat, MemLat int // access latencies in cycles

	ROB               int // reorder-buffer window (instructions)
	LineFillBuffers   int // maximum overlapping cache-line misses
	BranchMissPenalty int

	SIMDLanes32 int     // 32-bit lanes per SIMD operation
	SIMDPorts   int     // SIMD operations issued per cycle
	MemBWGBs    float64 // sustained memory bandwidth
	SMTBoost    float64 // throughput gain from using 2nd hyper-thread
	PriceUSD    int
	Launch      string
}

// The three platforms of Table 4.
var (
	// Skylake is the Intel i9-7900X (Skylake X) primary platform.
	Skylake = HW{
		Name: "Skylake", Model: "i9-7900X", Cores: 10, SMTWays: 2,
		IssueWidth: 4, ClockGHz: 4.0,
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 1 << 20, L2Ways: 16,
		LLCSize: 14 << 20, LLCWays: 11,
		L2Lat: 14, LLCLat: 44, MemLat: 200,
		ROB: 224, LineFillBuffers: 10, BranchMissPenalty: 16,
		SIMDLanes32: 16, SIMDPorts: 2, MemBWGBs: 58, SMTBoost: 1.25,
		PriceUSD: 989, Launch: "Q2'17",
	}
	// Threadripper is the AMD 1950X (Zen).
	Threadripper = HW{
		Name: "Threadripper", Model: "1950X", Cores: 16, SMTWays: 2,
		IssueWidth: 4, ClockGHz: 3.8,
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 512 << 10, L2Ways: 8,
		LLCSize: 32 << 20, LLCWays: 16,
		L2Lat: 17, LLCLat: 40, MemLat: 220,
		ROB: 192, LineFillBuffers: 8, BranchMissPenalty: 18,
		SIMDLanes32: 4, SIMDPorts: 2, MemBWGBs: 56, SMTBoost: 1.05,
		PriceUSD: 1000, Launch: "Q3'17",
	}
	// KNL is the Intel Xeon Phi 7210 (Knights Landing).
	KNL = HW{
		Name: "KNL", Model: "Phi 7210", Cores: 64, SMTWays: 4,
		IssueWidth: 2, ClockGHz: 1.4,
		L1Size: 64 << 10, L1Ways: 8,
		L2Size: 1 << 20, L2Ways: 16,
		LLCSize: 16 << 30, LLCWays: 16, // 16 GB MCDRAM as L3 cache
		L2Lat: 17, LLCLat: 160, MemLat: 400,
		ROB: 72, LineFillBuffers: 12, BranchMissPenalty: 12,
		SIMDLanes32: 16, SIMDPorts: 2, MemBWGBs: 68, SMTBoost: 1.6,
		PriceUSD: 1881, Launch: "Q4'16",
	}
)

// Platforms lists the modeled hardware in paper order.
var Platforms = []HW{Skylake, Threadripper, KNL}

// CPU is the modeled core that traced query twins feed with events.
type CPU struct {
	HW  HW
	L1  *Cache
	L2  *Cache
	LLC *Cache
	BP  *BranchPredictor

	// Instruction counters.
	Instructions uint64
	Loads        uint64
	Stores       uint64

	// Cycle accounting.
	MemStallCycles    uint64
	BranchStallCycles uint64

	// Overlap-group state (§4.1 latency-hiding model).
	groupStartInstr uint64
	groupSize       int
	groupBroken     bool
}

// NewCPU builds a modeled CPU for a hardware profile. The LLC of KNL is
// its 16 GB MCDRAM; it is modeled with 512 MB to bound simulator memory,
// which is indistinguishable for working sets below that.
func NewCPU(hw HW) *CPU {
	llc := hw.LLCSize
	if llc > 512<<20 {
		llc = 512 << 20
	}
	return &CPU{
		HW:  hw,
		L1:  NewCache(hw.L1Size, hw.L1Ways),
		L2:  NewCache(hw.L2Size, hw.L2Ways),
		LLC: NewCache(llc, hw.LLCWays),
		BP:  NewBranchPredictor(14),
	}
}

// Reset clears all counters and cache/predictor state.
func (c *CPU) Reset() {
	c.L1.Reset()
	c.L2.Reset()
	c.LLC.Reset()
	c.BP.Reset()
	c.Instructions = 0
	c.Loads = 0
	c.Stores = 0
	c.MemStallCycles = 0
	c.BranchStallCycles = 0
	c.groupStartInstr = 0
	c.groupSize = 0
	c.groupBroken = false
}

// Ops records n ALU/control instructions.
func (c *CPU) Ops(n int) { c.Instructions += uint64(n) }

// Load records one load instruction touching size bytes at p.
func (c *CPU) Load(p unsafe.Pointer, size int) {
	c.Instructions++
	c.Loads++
	c.access(lineOf(p))
	// A load crossing a line boundary touches the next line too.
	if size > 1 {
		if last := (uint64(uintptr(p)) + uint64(size) - 1) >> lineBits; last != lineOf(p) {
			c.access(last)
		}
	}
}

// Store records one store instruction (write-allocate).
func (c *CPU) Store(p unsafe.Pointer, size int) {
	c.Instructions++
	c.Stores++
	c.access(lineOf(p))
	if size > 1 {
		if last := (uint64(uintptr(p)) + uint64(size) - 1) >> lineBits; last != lineOf(p) {
			c.access(last)
		}
	}
}

// Branch records a conditional branch at static site id.
func (c *CPU) Branch(site uint32, taken bool) {
	c.Instructions++
	if c.BP.Branch(site, taken) {
		c.BranchStallCycles += uint64(c.HW.BranchMissPenalty)
		// A mispredict squashes speculation: misses issued after it
		// cannot overlap with those before (§4.1: "every branch miss is
		// more expensive ... work performed under speculative execution
		// is discarded").
		c.groupBroken = true
	}
}

// access walks the hierarchy and charges stall cycles with bounded
// overlap.
func (c *CPU) access(line uint64) {
	if c.L1.Access(line) {
		return // L1 hits are covered by the issue-width cost
	}
	var lat int
	if c.L2.Access(line) {
		lat = c.HW.L2Lat
	} else if c.LLC.Access(line) {
		lat = c.HW.LLCLat
	} else {
		lat = c.HW.MemLat
	}
	// Overlap model: misses within one ROB window of the group leader,
	// with no intervening mispredict, overlap up to the line-fill-buffer
	// count. The group leader pays full latency; followers pay the
	// pipelined fill cost.
	window := c.Instructions - c.groupStartInstr
	if !c.groupBroken && c.groupSize > 0 && c.groupSize < c.HW.LineFillBuffers &&
		window < uint64(c.HW.ROB) {
		c.groupSize++
		c.MemStallCycles += uint64(lat / c.HW.LineFillBuffers)
		return
	}
	c.groupStartInstr = c.Instructions
	c.groupSize = 1
	c.groupBroken = false
	c.MemStallCycles += uint64(lat)
}

// Cycles returns total modeled cycles: issue cost + memory stalls +
// branch-mispredict penalties.
func (c *CPU) Cycles() uint64 {
	return c.Instructions/uint64(c.HW.IssueWidth) + c.MemStallCycles + c.BranchStallCycles
}

// IPC returns modeled instructions per cycle.
func (c *CPU) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(cy)
}

// Counters is one row of Table 1 / the SSB counter table, normalized per
// tuple.
type Counters struct {
	Query      string
	Engine     string
	Cycles     float64
	IPC        float64
	Instr      float64
	L1Miss     float64
	LLCMiss    float64
	BranchMiss float64
	MemStall   float64
}

// PerTuple normalizes the CPU's counters by the number of scanned tuples
// (§3.4).
func (c *CPU) PerTuple(query, engine string, tuples int64) Counters {
	n := float64(tuples)
	return Counters{
		Query:      query,
		Engine:     engine,
		Cycles:     float64(c.Cycles()) / n,
		IPC:        c.IPC(),
		Instr:      float64(c.Instructions) / n,
		L1Miss:     float64(c.L1.Misses) / n,
		LLCMiss:    float64(c.LLC.Misses) / n,
		BranchMiss: float64(c.BP.Misses) / n,
		MemStall:   float64(c.MemStallCycles) / n,
	}
}
