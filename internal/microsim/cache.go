// Package microsim is a trace-driven micro-architectural simulator. It
// substitutes for the hardware performance counters the paper reads via
// Linux perf (DESIGN.md S2): traced twins of every query execute the real
// algorithms against the real in-memory data and hash tables, emitting
// loads, stores, ALU operations, and branches into a modeled CPU. The
// model produces the per-tuple counters of Table 1, the memory-stall
// breakdown of Figure 4, the selectivity and working-set sweeps of
// Figures 7 and 9, and — through its SIMD lane model — the data-parallel
// results of Figures 6, 8, and 10.
//
// The model is deliberately simple and fully deterministic:
//
//   - a set-associative, LRU, inclusive three-level cache hierarchy with
//     64-byte lines, sized per hardware profile (Table 4);
//   - a gshare-style branch predictor (2-bit counters, global history);
//   - a cost model that issues instructions at the profile's width and
//     charges miss latency with bounded overlap: consecutive misses that
//     fall inside one reorder-buffer window with no intervening branch
//     mispredict overlap up to the line-fill-buffer limit. Complex fused
//     loops (more instructions and mispredicts between misses) therefore
//     overlap fewer misses than simple primitive loops — precisely the
//     mechanism the paper identifies (§4.1) for vectorization's latency-
//     hiding advantage.
package microsim

import "unsafe"

const lineBits = 6 // 64-byte cache lines

// Cache is one set-associative LRU cache level.
type Cache struct {
	ways     int
	setMask  uint64
	tags     []uint64 // sets × ways; 0 = empty
	stamps   []uint64 // LRU timestamps
	clock    uint64
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of approximately the given total size in bytes
// and associativity. The set count is rounded down to a power of two
// (real LLCs with non-power-of-two slice counts hash addresses; the
// rounding keeps the model's indexing simple at <15% size error).
func NewCache(size, ways int) *Cache {
	sets := size / (ways * 64)
	if sets <= 0 {
		panic("microsim: cache smaller than one set")
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1 // clear lowest bit until power of two
	}
	return &Cache{
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*ways),
		stamps:  make([]uint64, sets*ways),
	}
}

// Access touches the line containing addr; reports whether it hit.
func (c *Cache) Access(line uint64) bool {
	c.Accesses++
	set := int(line & c.setMask)
	base := set * c.ways
	c.clock++
	tag := line | 1<<63 // bit 63 marks occupancy (real addrs never set it)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.stamps[base+w] = c.clock
			return true
		}
	}
	c.Misses++
	// Evict LRU.
	victim := base
	for w := 1; w < c.ways; w++ {
		if c.stamps[base+w] < c.stamps[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.stamps[victim] = c.clock
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// lineOf maps an address to its cache line number.
func lineOf(p unsafe.Pointer) uint64 { return uint64(uintptr(p)) >> lineBits }

// BranchPredictor is a gshare predictor: 2-bit saturating counters
// indexed by (site ^ global history).
type BranchPredictor struct {
	table    []uint8
	history  uint64
	Branches uint64
	Misses   uint64
}

// NewBranchPredictor builds a predictor with 2^bits counters.
func NewBranchPredictor(bits int) *BranchPredictor {
	return &BranchPredictor{table: make([]uint8, 1<<bits)}
}

// Branch records a dynamic branch at static site id with the given
// outcome and reports whether the predictor mispredicted.
func (b *BranchPredictor) Branch(site uint32, taken bool) bool {
	b.Branches++
	idx := (uint64(site)*0x9e3779b9 ^ b.history) & uint64(len(b.table)-1)
	ctr := b.table[idx]
	predictTaken := ctr >= 2
	miss := predictTaken != taken
	if miss {
		b.Misses++
	}
	if taken {
		if ctr < 3 {
			b.table[idx] = ctr + 1
		}
		b.history = b.history<<1 | 1
	} else {
		if ctr > 0 {
			b.table[idx] = ctr - 1
		}
		b.history = b.history << 1
	}
	return miss
}

// Reset clears state and counters.
func (b *BranchPredictor) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
	b.history = 0
	b.Branches = 0
	b.Misses = 0
}
