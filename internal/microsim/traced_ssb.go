package microsim

import (
	"unsafe"

	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// Traced twins for the SSB queries (§4.4). All four queries share one
// shape — lineorder probing a chain of filtered dimension hash tables,
// then a small aggregation — so the twins are parameterized by a
// dimension list. The engine difference is expressed exactly as in the
// TPC-H twins: Typer fuses everything into one loop with branching
// filters and the low-latency hash; Tectorwise runs per-vector primitive
// passes with predicated selections, materialized intermediates, and
// Murmur2.

// ssbDim describes one dimension join of an SSB query.
type ssbDim struct {
	rows      int
	filter    func(i int) bool   // dimension row qualifies
	key       func(i int) uint64 // dimension join key
	payload   func(i int) uint64 // carried attribute (0 if none)
	factKey   func(i int) uint64 // fact-side join key
	factCol   unsafe.Pointer     // fact column base address (for tracing)
	factWidth int
}

// ssbPlan returns the dimension chain and fact cardinality of one SSB
// query against db.
func ssbPlan(db *storage.Database, query string) (dims []ssbDim, factRows int, preFilter func(c *CPU, engineTW bool, i int) bool) {
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	lo := db.Rel("lineorder")
	od := lo.Date("lo_orderdate")
	factRows = lo.Rows()

	dateDim := func(filter func(i int) bool) ssbDim {
		return ssbDim{
			rows:    date.Rows(),
			filter:  filter,
			key:     func(i int) uint64 { return uint64(uint32(dk[i])) },
			payload: func(i int) uint64 { return uint64(uint32(dy[i])) },
			factKey: func(i int) uint64 { return uint64(uint32(od[i])) },
			factCol: unsafe.Pointer(&od[0]), factWidth: 4,
		}
	}
	keyedDim := func(rel *storage.Relation, keyName string, filter func(i int) bool,
		payload func(i int) uint64, factKeys []int32) ssbDim {
		keys := rel.Int32(keyName)
		return ssbDim{
			rows:    rel.Rows(),
			filter:  filter,
			key:     func(i int) uint64 { return uint64(uint32(keys[i])) },
			payload: payload,
			factKey: func(i int) uint64 { return uint64(uint32(factKeys[i])) },
			factCol: unsafe.Pointer(&factKeys[0]), factWidth: 4,
		}
	}

	switch query {
	case "Q1.1":
		disc := lo.Numeric("lo_discount")
		qty := lo.Numeric("lo_quantity")
		dims = []ssbDim{dateDim(func(i int) bool { return dy[i] == queries.SSBQ11Year })}
		preFilter = func(c *CPU, engineTW bool, i int) bool {
			// Three predicates on the fact table before the join.
			c.Load(unsafe.Pointer(&disc[i]), 8)
			c.Load(unsafe.Pointer(&qty[i]), 8)
			pass := disc[i] >= queries.SSBQ11DiscLo && disc[i] <= queries.SSBQ11DiscHi &&
				qty[i] < queries.SSBQ11Qty
			if engineTW {
				c.Ops(6) // predicated selection primitives
			} else {
				c.Ops(3)
				c.Branch(siteFilter, pass)
			}
			return pass
		}
	case "Q2.1":
		part := db.Rel("part")
		cat := part.Int32("p_category")
		brand := part.Int32("p_brand1")
		supp := db.Rel("supplier")
		sregion := supp.Int32("s_region")
		dims = []ssbDim{
			keyedDim(part, "p_partkey",
				func(i int) bool { return cat[i] == queries.SSBQ21Categ },
				func(i int) uint64 { return uint64(uint32(brand[i])) },
				lo.Int32("lo_partkey")),
			keyedDim(supp, "s_suppkey",
				func(i int) bool { return sregion[i] == queries.SSBQ21Region },
				nil, lo.Int32("lo_suppkey")),
			dateDim(func(i int) bool { return true }),
		}
	case "Q3.1":
		cust := db.Rel("customer")
		cregion := cust.Int32("c_region")
		cnation := cust.Int32("c_nation")
		supp := db.Rel("supplier")
		sregion := supp.Int32("s_region")
		snation := supp.Int32("s_nation")
		dims = []ssbDim{
			keyedDim(cust, "c_custkey",
				func(i int) bool { return cregion[i] == queries.SSBQ31Region },
				func(i int) uint64 { return uint64(uint32(cnation[i])) },
				lo.Int32("lo_custkey")),
			keyedDim(supp, "s_suppkey",
				func(i int) bool { return sregion[i] == queries.SSBQ31Region },
				func(i int) uint64 { return uint64(uint32(snation[i])) },
				lo.Int32("lo_suppkey")),
			dateDim(func(i int) bool { return dy[i] >= queries.SSBQ31YearLo && dy[i] <= queries.SSBQ31YearHi }),
		}
	case "Q4.1":
		cust := db.Rel("customer")
		cregion := cust.Int32("c_region")
		cnation := cust.Int32("c_nation")
		supp := db.Rel("supplier")
		sregion := supp.Int32("s_region")
		part := db.Rel("part")
		mfgr := part.Int32("p_mfgr")
		dims = []ssbDim{
			keyedDim(cust, "c_custkey",
				func(i int) bool { return cregion[i] == queries.SSBQ41Region },
				func(i int) uint64 { return uint64(uint32(cnation[i])) },
				lo.Int32("lo_custkey")),
			keyedDim(supp, "s_suppkey",
				func(i int) bool { return sregion[i] == queries.SSBQ41Region },
				nil, lo.Int32("lo_suppkey")),
			keyedDim(part, "p_partkey",
				func(i int) bool { return mfgr[i] >= queries.SSBQ41MfgrLo && mfgr[i] <= queries.SSBQ41MfgrHi },
				nil, lo.Int32("lo_partkey")),
			dateDim(func(i int) bool { return true }),
		}
	default:
		panic("microsim: unknown SSB query " + query)
	}
	return dims, factRows, preFilter
}

// buildSSBDims materializes the dimension hash tables, charging build
// cost with the given engine's hash weight.
func buildSSBDims(c *CPU, dims []ssbDim, hashOps int, hash func(uint64) uint64) []*hashtable.Table {
	hts := make([]*hashtable.Table, len(dims))
	for d, dim := range dims {
		n := 0
		for i := 0; i < dim.rows; i++ {
			if dim.filter(i) {
				n++
			}
		}
		ht := hashtable.New(2, 1)
		ht.Prepare(n)
		for i := 0; i < dim.rows; i++ {
			c.Ops(loopOps + 2)
			pass := dim.filter(i)
			c.Branch(siteFilter, pass)
			if !pass {
				continue
			}
			key := dim.key(i)
			var payload uint64
			if dim.payload != nil {
				payload = dim.payload(i)
			}
			c.Ops(hashOps)
			tracedInsert(c, ht, hash(key), key, payload)
		}
		hts[d] = ht
	}
	return hts
}

// TyperSSBTraced traces one SSB query under the compiled model.
func TyperSSBTraced(db *storage.Database, c *CPU, query string) {
	dims, factRows, preFilter := ssbPlan(db, query)
	hts := buildSSBDims(c, dims, HashOpsTyper, hashtable.Mix64)
	htAgg := hashtable.New(2, 1)
	htAgg.Prepare(1024)
	for i := 0; i < factRows; i++ {
		c.Ops(loopOps)
		if preFilter != nil && !preFilter(c, false, i) {
			continue
		}
		gkey := uint64(0)
		matched := true
		for d := range dims {
			// Load fact key column, hash, probe.
			c.Load(unsafe.Add(dims[d].factCol, i*dims[d].factWidth), dims[d].factWidth)
			key := dims[d].factKey(i)
			h := typerHash(c, key)
			ref := tracedProbe(c, hts[d], h, key, nil)
			if ref == 0 {
				matched = false
				break
			}
			c.Load(unsafe.Add(hts[d].PayloadAddr(ref), 8), 8)
			gkey = gkey<<8 ^ hts[d].Word(ref, 1)
			c.Ops(2)
		}
		if !matched {
			continue
		}
		// Load measure columns + aggregate.
		c.Ops(3)
		gh := typerHash(c, gkey)
		gref := tracedProbe(c, htAgg, gh, gkey, nil)
		c.Branch(siteAggHit, gref != 0)
		if gref == 0 {
			tracedInsert(c, htAgg, gh, gkey, 0)
			continue
		}
		c.Load(unsafe.Add(htAgg.PayloadAddr(gref), 8), 8)
		c.Ops(1)
		c.Store(unsafe.Add(htAgg.PayloadAddr(gref), 8), 8)
	}
}

// TWSSBTraced traces one SSB query under the vectorized model.
func TWSSBTraced(db *storage.Database, c *CPU, query string) {
	dims, factRows, preFilter := ssbPlan(db, query)
	hts := buildSSBDims(c, dims, HashOpsTW, hashtable.Murmur2)
	b := newTWBufs(twVec)
	agg := newTWAgg(1024, 1)
	lo := db.Rel("lineorder")
	_ = lo
	pos := make([]int32, twVec)
	for base := 0; base < factRows; base += twVec {
		n := min(twVec, factRows-base)
		// Pre-filter (predicated selection primitives).
		k := 0
		if preFilter != nil {
			for i := 0; i < n; i++ {
				c.Ops(loopOps)
				pos[k] = int32(i)
				storeVec(c, pos, k)
				if preFilter(c, true, base+i) {
					k++
				}
			}
		} else {
			for i := 0; i < n; i++ {
				pos[i] = int32(i)
			}
			k = n
		}
		if k == 0 {
			continue
		}
		// Probe each dimension in turn, densifying positions between.
		for d := range dims {
			for i := 0; i < k; i++ {
				c.Ops(loopOps)
				p := base + int(pos[i])
				c.Load(unsafe.Add(dims[d].factCol, p*dims[d].factWidth), dims[d].factWidth)
				b.keys[i] = dims[d].factKey(p)
				storeVec(c, b.keys, i)
			}
			twHash(c, b.keys, b.hashes, k)
			nm := twProbe(c, hts[d], b, k)
			if nm == 0 {
				k = 0
				break
			}
			twGather(c, hts[d], b, 1, nm) // payload attribute
			for i := 0; i < nm; i++ {
				c.Ops(loopOps + 1)
				c.Load(unsafe.Pointer(&b.mPos[i]), 4)
				pos[i] = pos[b.mPos[i]]
				storeVec(c, pos, i)
			}
			k = nm
		}
		if k == 0 {
			continue
		}
		// Group keys from gathered payloads (modeled as the last gather
		// result) + measure fetch + aggregate.
		for i := 0; i < k; i++ {
			c.Ops(loopOps + 2)
			b.keys[i] = uint64(b.v1[i])
			storeVec(c, b.keys, i)
		}
		twHash(c, b.keys, b.hashes, k)
		for i := 0; i < k; i++ {
			c.Ops(loopOps)
			c.Load(unsafe.Pointer(&pos[i]), 4)
			storeVec(c, b.v1, i)
		}
		agg.consume(c, b, k)
	}
}

var _ = types.Date(0)
