package microsim

import (
	"unsafe"

	"paradigms/internal/storage"
)

// SIMD lane model (DESIGN.md S3): Go cannot emit AVX-512, so the
// data-parallel experiments of Figures 6–10 are reproduced by executing
// the kernels' memory behavior through the cache model while charging
// instruction cost at SIMD granularity: one vector operation per
// ceil(n/lanes) elements, with gathers bounded by the two-loads-per-cycle
// limit of the memory pipeline — the constraint the paper identifies as
// the reason SIMD gathers gain only ~1.1× (§5.2).

// SIMDKernelResult reports modeled cycles per element for a kernel in
// scalar and SIMD variants.
type SIMDKernelResult struct {
	Name         string
	ScalarCycles float64
	SIMDCycles   float64
	Speedup      float64
}

// kernelCPU runs f on a fresh CPU and returns cycles per element.
func kernelCPU(hw HW, elems int, warm func(c *CPU), f func(c *CPU)) float64 {
	c := NewCPU(hw)
	if warm != nil {
		warm(c)
	}
	c.Reset2()
	f(c)
	return float64(c.Cycles()) / float64(elems)
}

// Reset2 clears counters but keeps cache contents (for warmed kernels).
func (c *CPU) Reset2() {
	c.Instructions = 0
	c.Loads = 0
	c.Stores = 0
	c.MemStallCycles = 0
	c.BranchStallCycles = 0
	c.BP.Branches = 0
	c.BP.Misses = 0
	c.L1.Accesses = 0
	c.L1.Misses = 0
	c.L2.Accesses = 0
	c.L2.Misses = 0
	c.LLC.Accesses = 0
	c.LLC.Misses = 0
	c.groupSize = 0
	c.groupBroken = false
}

// SelectionDense models Figure 6a: select elements < bound from a dense
// int32 array resident in L1 (8192 elements). Scalar: branch-free
// predicated store per element. SIMD: one compare + compress-store per
// lanes elements.
func SelectionDense(hw HW, n int, selectivity float64) SIMDKernelResult {
	data := make([]int32, n)
	out := make([]int32, n)
	warm := func(c *CPU) {
		for i := range data {
			c.Load(unsafe.Pointer(&data[i]), 4)
			c.Load(unsafe.Pointer(&out[i]), 4)
		}
	}
	scalar := kernelCPU(hw, n, warm, func(c *CPU) {
		k := 0
		sel := int(selectivity * float64(n))
		for i := 0; i < n; i++ {
			c.Ops(loopOps + 2) // compare + predicated advance
			c.Load(unsafe.Pointer(&data[i]), 4)
			c.Store(unsafe.Pointer(&out[k]), 4)
			if i%n < sel {
				k++
			}
		}
	})
	lanes := hw.SIMDLanes32
	simd := kernelCPU(hw, n, warm, func(c *CPU) {
		k := 0
		sel := int(selectivity * float64(n))
		for i := 0; i < n; i += lanes {
			// One vector load, one compare, one compress-store per block.
			c.Ops(3)
			c.Load(unsafe.Pointer(&data[i]), 4*lanes)
			c.Store(unsafe.Pointer(&out[k]), 4*lanes)
			if i%n < sel {
				k += lanes
			}
		}
	})
	return SIMDKernelResult{Name: "selection-dense", ScalarCycles: scalar,
		SIMDCycles: simd, Speedup: scalar / simd}
}

// SelectionSparse models Figure 6b: a secondary selection that consumes a
// selection vector (gathered access), 40% input selectivity.
func SelectionSparse(hw HW, n int, inputSel float64) SIMDKernelResult {
	data := make([]int32, n)
	selVec := make([]int32, n)
	out := make([]int32, n)
	k := 0
	step := int(1 / inputSel)
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		selVec[k] = int32(i)
		k++
	}
	warm := func(c *CPU) {
		for i := range data {
			c.Load(unsafe.Pointer(&data[i]), 4)
		}
	}
	scalar := kernelCPU(hw, k, warm, func(c *CPU) {
		for i := 0; i < k; i++ {
			c.Ops(loopOps + 2)
			c.Load(unsafe.Pointer(&selVec[i]), 4)
			c.Load(unsafe.Pointer(&data[selVec[i]]), 4)
			c.Store(unsafe.Pointer(&out[i]), 4)
		}
	})
	lanes := hw.SIMDLanes32
	simd := kernelCPU(hw, k, warm, func(c *CPU) {
		for i := 0; i < k; i += lanes {
			c.Ops(3)
			c.Load(unsafe.Pointer(&selVec[i]), 4*lanes)
			// Gather: the memory pipeline sustains 2 loads/cycle, so a
			// 16-lane gather costs at least lanes/2 cycles of port
			// pressure (charged as ops at issue width = extra cycles).
			c.Ops(lanes / 2 * hw.IssueWidth / 2)
			end := i + lanes
			if end > k {
				end = k
			}
			for j := i; j < end; j++ {
				c.Load(unsafe.Pointer(&data[selVec[j]]), 4)
			}
			c.Store(unsafe.Pointer(&out[i]), 4*lanes)
		}
	})
	return SIMDKernelResult{Name: "selection-sparse", ScalarCycles: scalar,
		SIMDCycles: simd, Speedup: scalar / simd}
}

// Hashing models Figure 8a: Murmur2 over a dense key vector.
func Hashing(hw HW, n int) SIMDKernelResult {
	keys := make([]uint64, n)
	out := make([]uint64, n)
	warm := func(c *CPU) {
		for i := range keys {
			c.Load(unsafe.Pointer(&keys[i]), 8)
			c.Load(unsafe.Pointer(&out[i]), 8)
		}
	}
	scalar := kernelCPU(hw, n, warm, func(c *CPU) {
		for i := 0; i < n; i++ {
			c.Ops(loopOps + HashOpsTW)
			c.Load(unsafe.Pointer(&keys[i]), 8)
			c.Store(unsafe.Pointer(&out[i]), 8)
		}
	})
	lanes := hw.SIMDLanes32 / 2 // 64-bit lanes
	simd := kernelCPU(hw, n, warm, func(c *CPU) {
		for i := 0; i < n; i += lanes {
			c.Ops(HashOpsTW) // one vector op per scalar op
			c.Load(unsafe.Pointer(&keys[i]), 8*lanes)
			c.Store(unsafe.Pointer(&out[i]), 8*lanes)
		}
	})
	return SIMDKernelResult{Name: "hashing", ScalarCycles: scalar,
		SIMDCycles: simd, Speedup: scalar / simd}
}

// GatherKernel models Figure 8b: random gathers from a working set of
// the given size. SIMD gathers cannot exceed the 2-loads-per-cycle
// memory pipeline, so the gain shrinks to ~1.1×.
func GatherKernel(hw HW, workingSet, n int) SIMDKernelResult {
	words := workingSet / 8
	table := make([]uint64, words)
	idx := make([]int32, n)
	state := uint64(1)
	for i := range idx {
		state = state*6364136223846793005 + 1442695040888963407
		idx[i] = int32(state % uint64(words))
	}
	out := make([]uint64, n)
	scalar := kernelCPU(hw, n, nil, func(c *CPU) {
		for i := 0; i < n; i++ {
			c.Ops(loopOps + 1)
			c.Load(unsafe.Pointer(&idx[i]), 4)
			c.Load(unsafe.Pointer(&table[idx[i]]), 8)
			c.Store(unsafe.Pointer(&out[i]), 8)
		}
	})
	lanes := hw.SIMDLanes32 / 2
	simd := kernelCPU(hw, n, nil, func(c *CPU) {
		for i := 0; i < n; i += lanes {
			c.Ops(2)
			c.Load(unsafe.Pointer(&idx[i]), 4*lanes)
			c.Ops(lanes / 2) // gather port pressure: 2 loads/cycle
			end := i + lanes
			if end > n {
				end = n
			}
			for j := i; j < end; j++ {
				c.Load(unsafe.Pointer(&table[idx[j]]), 8)
			}
			c.Store(unsafe.Pointer(&out[i]), 8*lanes)
		}
	})
	return SIMDKernelResult{Name: "gather", ScalarCycles: scalar,
		SIMDCycles: simd, Speedup: scalar / simd}
}

// Fig9Row is one point of the Figure 9 working-set sweep.
type Fig9Row struct {
	WorkingSetBytes int
	ScalarCycles    float64
	SIMDCycles      float64
}

// Fig9 sweeps hash-table working-set sizes for the probe kernel.
func Fig9(hw HW, sizes []int, probes int) []Fig9Row {
	rows := make([]Fig9Row, 0, len(sizes))
	for _, s := range sizes {
		r := GatherKernel(hw, s, probes)
		rows = append(rows, Fig9Row{WorkingSetBytes: s,
			ScalarCycles: r.ScalarCycles, SIMDCycles: r.SIMDCycles})
	}
	return rows
}

// Fig7Row is one point of the Figure 7 sparse-selection sweep.
type Fig7Row struct {
	InputSelectivity float64
	ScalarCycles     float64
	SIMDCycles       float64
	L1MissCycles     float64
}

// Fig7 sweeps input selectivity for a selection with a selection vector
// over a large (out-of-cache) array; as selectivity drops, strides grow
// and the memory system dominates, erasing the SIMD gain.
func Fig7(hw HW, arrayBytes int, sels []float64) []Fig7Row {
	n := arrayBytes / 4
	data := make([]int32, n)
	rows := make([]Fig7Row, 0, len(sels))
	for _, sel := range sels {
		step := int(1 / sel)
		if step < 1 {
			step = 1
		}
		count := n / step
		// Scalar pass.
		c := NewCPU(hw)
		for i := 0; i < count; i++ {
			c.Ops(loopOps + 2)
			c.Load(unsafe.Pointer(&data[i*step]), 4)
		}
		scalar := float64(c.Cycles()) / float64(count)
		stall := float64(c.MemStallCycles) / float64(count)
		// SIMD pass: same memory behavior, vector-width ALU.
		c2 := NewCPU(hw)
		lanes := hw.SIMDLanes32
		for i := 0; i < count; i += lanes {
			c2.Ops(3 + lanes/2)
			end := i + lanes
			if end > count {
				end = count
			}
			for j := i; j < end; j++ {
				c2.Load(unsafe.Pointer(&data[j*step]), 4)
			}
		}
		simd := float64(c2.Cycles()) / float64(count)
		rows = append(rows, Fig7Row{InputSelectivity: sel,
			ScalarCycles: scalar, SIMDCycles: simd, L1MissCycles: stall})
	}
	return rows
}

// AutoVecRow is one bar pair of Figure 10: the instruction and time
// reduction achieved by compiler auto-vectorization, which vectorized
// hashing, selection, and projection primitives but not probing or
// aggregation.
type AutoVecRow struct {
	Query          string
	InstrReduction float64 // fraction of instructions removed
	TimeReduction  float64 // fraction of cycles removed
}

// Fig10 estimates auto-vectorization gains per query from the traced
// instruction mix: vectorizable primitive classes (hash, selection,
// projection) shrink by the lane factor; memory stalls are untouched.
func Fig10(db *storage.Database, hw HW) []AutoVecRow {
	// Fractions of TW instructions in vectorizable primitives, derived
	// from the primitive mix of each query's plan (hash+sel+proj heavy
	// for Q1/Q6, probe-dominated for the join queries).
	vecFraction := map[string]float64{
		"Q1": 0.45, "Q6": 0.60, "Q3": 0.30, "Q9": 0.25, "Q18": 0.35,
	}
	lanes := float64(hw.SIMDLanes32)
	var rows []AutoVecRow
	for _, q := range []string{"Q1", "Q6", "Q3", "Q9", "Q18"} {
		ctr := TracedTPCH(db, hw, "tectorwise", q)
		f := vecFraction[q]
		instrBefore := ctr.Instr
		instrAfter := instrBefore * (1 - f + f/lanes)
		cyclesBefore := ctr.Cycles
		// Only the issue-bound portion shrinks; stalls stay.
		issue := (instrBefore - 0) / float64(hw.IssueWidth)
		issueAfter := instrAfter / float64(hw.IssueWidth)
		cyclesAfter := cyclesBefore - (issue - issueAfter)
		if cyclesAfter < 0 {
			cyclesAfter = 0
		}
		rows = append(rows, AutoVecRow{
			Query:          q,
			InstrReduction: 1 - instrAfter/instrBefore,
			TimeReduction:  1 - cyclesAfter/cyclesBefore,
		})
	}
	return rows
}

// ThroughputRow is one point of the Figure 11/12 queries-per-second
// curves.
type ThroughputRow struct {
	HW        string
	Engine    string
	Query     string
	Cores     int
	FracCores float64
	QPS       float64
}

// Throughput models queries/second as a function of active cores for one
// hardware profile (Figures 11 and 12): per-core throughput comes from
// the modeled single-core cycle count at the profile's clock; scaling is
// linear in cores up to the memory-bandwidth ceiling; SMT adds the
// profile's boost beyond physical cores. bytesPerQuery is the scanned
// column volume (bandwidth ceiling); cyclesPerQuery the modeled
// single-core cost.
func Throughput(hw HW, engine, query string, cyclesPerQuery, bytesPerQuery float64, withSIMD bool, simdGain float64) []ThroughputRow {
	var rows []ThroughputRow
	cycles := cyclesPerQuery
	if withSIMD {
		cycles /= simdGain
	}
	corePerf := hw.ClockGHz * 1e9 / cycles // queries/s on one core
	bwCap := hw.MemBWGBs * 1e9 / bytesPerQuery
	steps := hw.Cores * hw.SMTWays
	for active := 1; active <= steps; active++ {
		phys := float64(active)
		if active > hw.Cores {
			phys = float64(hw.Cores) + float64(active-hw.Cores)*(hw.SMTBoost-1)
		}
		qps := corePerf * phys
		if qps > bwCap {
			qps = bwCap
		}
		rows = append(rows, ThroughputRow{
			HW: hw.Name, Engine: engine, Query: query,
			Cores: active, FracCores: float64(active) / float64(steps), QPS: qps,
		})
	}
	return rows
}
