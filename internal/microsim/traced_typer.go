package microsim

import (
	"bytes"
	"unsafe"

	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// Traced twins of the Typer queries: the same fused tuple-at-a-time
// pipelines as internal/typer, single-threaded, emitting every load,
// store, ALU group, and data-dependent branch into the modeled CPU.
// Results are not returned — the engines' own tests prove correctness;
// the twins exist to expose the memory-access and branch structure of the
// algorithms to the cache and pipeline models.

func typerHash(c *CPU, k uint64) uint64 {
	c.Ops(HashOpsTyper)
	return hashtable.Mix64(k)
}

// TyperQ1Traced traces TPC-H Q1 under the compiled model.
func TyperQ1Traced(db *storage.Database, c *CPU) {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	cutoff := queries.Q1Cutoff

	ht := hashtable.New(7, 1)
	ht.Prepare(8)
	for i := range ship {
		c.Ops(loopOps)
		loadCol(c, ship, i)
		pass := ship[i] <= cutoff
		c.Branch(siteFilter, pass)
		if !pass {
			continue
		}
		loadCol(c, rf, i)
		loadCol(c, ls, i)
		key := uint64(rf[i])<<8 | uint64(ls[i])
		c.Ops(2)
		h := typerHash(c, key)
		ref := tracedProbe(c, ht, h, key, nil)
		if ref == 0 {
			ref = tracedInsert(c, ht, h, key, 0, 0, 0, 0, 0, 0)
		}
		// Load inputs, update the six aggregates in place.
		loadCol(c, qty, i)
		loadCol(c, ext, i)
		loadCol(c, disc, i)
		loadCol(c, tax, i)
		c.Ops(8) // fixed-point arithmetic for disc price and charge
		c.Load(unsafe.Add(ht.PayloadAddr(ref), 8), 48)
		c.Ops(6)
		c.Store(unsafe.Add(ht.PayloadAddr(ref), 8), 48)
	}
}

// TyperQ6Traced traces TPC-H Q6.
func TyperQ6Traced(db *storage.Database, c *CPU) {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	for i := range ship {
		c.Ops(loopOps)
		loadCol(c, ship, i)
		ok := ship[i] >= queries.Q6DateLo
		c.Branch(siteFilter, ok)
		if !ok {
			continue
		}
		ok = ship[i] < queries.Q6DateHi
		c.Ops(1)
		c.Branch(siteFilter+1, ok)
		if !ok {
			continue
		}
		loadCol(c, disc, i)
		ok = disc[i] >= queries.Q6DiscLo && disc[i] <= queries.Q6DiscHi
		c.Ops(2)
		c.Branch(siteFilter+2, ok)
		if !ok {
			continue
		}
		loadCol(c, qty, i)
		ok = qty[i] < queries.Q6Quantity
		c.Ops(1)
		c.Branch(siteFilter+3, ok)
		if !ok {
			continue
		}
		loadCol(c, ext, i)
		c.Ops(2) // multiply + accumulate in register
	}
}

// TyperQ3Traced traces TPC-H Q3.
func TyperQ3Traced(db *storage.Database, c *CPU) {
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	cutoff := queries.Q3Date

	// Pipeline 1: σ(customer) → HT_cust.
	htCust := hashtable.New(1, 1)
	nBuild := 0
	for i := 0; i < cust.Rows(); i++ {
		if string(seg.Get(i)) == queries.Q3Segment {
			nBuild++
		}
	}
	htCust.Prepare(nBuild)
	for i := 0; i < cust.Rows(); i++ {
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&seg.Bytes[seg.Offsets[i]]), 8)
		c.Ops(3) // length check + word compare
		pass := string(seg.Get(i)) == queries.Q3Segment
		c.Branch(siteFilter, pass)
		if !pass {
			continue
		}
		loadCol(c, ckeys, i)
		key := uint64(uint32(ckeys[i]))
		h := typerHash(c, key)
		tracedInsert(c, htCust, h, key)
	}

	// Pipeline 2: σ(orders) ⋉ HT_cust → HT_ord.
	htOrd := hashtable.New(2, 1)
	htOrd.Prepare(nBuild * ord.Rows() / cust.Rows()) // ≈ qualifying orders
	for i := 0; i < ord.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, odate, i)
		pass := odate[i] < cutoff
		c.Branch(siteFilter+1, pass)
		if !pass {
			continue
		}
		loadCol(c, ocust, i)
		ck := uint64(uint32(ocust[i]))
		h := typerHash(c, ck)
		if tracedProbe(c, htCust, h, ck, nil) != 0 {
			loadCol(c, okeys, i)
			key := uint64(uint32(okeys[i]))
			h2 := typerHash(c, key)
			tracedInsert(c, htOrd, h2, key, 0)
		}
	}

	// Pipeline 3: σ(lineitem) ⋈ HT_ord → Γ(orderkey).
	htAgg := hashtable.New(3, 1)
	htAgg.Prepare(htOrd.Rows())
	for i := 0; i < li.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, lship, i)
		pass := lship[i] > cutoff
		c.Branch(siteFilter+2, pass)
		if !pass {
			continue
		}
		loadCol(c, lkeys, i)
		key := uint64(uint32(lkeys[i]))
		h := typerHash(c, key)
		if tracedProbe(c, htOrd, h, key, nil) == 0 {
			continue
		}
		loadCol(c, lext, i)
		loadCol(c, ldisc, i)
		c.Ops(3) // revenue arithmetic
		gref := tracedProbe(c, htAgg, h, key, nil)
		c.Branch(siteAggHit, gref != 0)
		if gref == 0 {
			tracedInsert(c, htAgg, h, key, 0, 0)
		} else {
			c.Load(unsafe.Add(htAgg.PayloadAddr(gref), 8), 8)
			c.Ops(1)
			c.Store(unsafe.Add(htAgg.PayloadAddr(gref), 8), 8)
		}
	}
}

// TyperQ9Traced traces TPC-H Q9.
func TyperQ9Traced(db *storage.Database, c *CPU) {
	part := db.Rel("part")
	pnames := part.String("p_name")
	pkeys := part.Int32("p_partkey")
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snation := supp.Int32("s_nationkey")
	ps := db.Rel("partsupp")
	pspk := ps.Int32("ps_partkey")
	pssk := ps.Int32("ps_suppkey")
	pscost := ps.Numeric("ps_supplycost")
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	odate := ord.Date("o_orderdate")
	needle := []byte(queries.Q9Color)

	// HT_part over green parts.
	htPart := hashtable.New(1, 1)
	nGreen := 0
	for i := 0; i < part.Rows(); i++ {
		if bytes.Contains(pnames.Get(i), needle) {
			nGreen++
		}
	}
	htPart.Prepare(nGreen)
	for i := 0; i < part.Rows(); i++ {
		c.Ops(loopOps)
		name := pnames.Get(i)
		c.Load(unsafe.Pointer(&pnames.Offsets[i]), 8)
		c.Load(unsafe.Pointer(&name[0]), len(name))
		c.Ops(len(name) / 2) // substring scan
		pass := bytes.Contains(name, needle)
		c.Branch(siteFilter, pass)
		if !pass {
			continue
		}
		loadCol(c, pkeys, i)
		key := uint64(uint32(pkeys[i]))
		tracedInsert(c, htPart, typerHash(c, key), key)
	}
	// HT_supp.
	htSupp := hashtable.New(2, 1)
	htSupp.Prepare(supp.Rows())
	for i := 0; i < supp.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, skeys, i)
		loadCol(c, snation, i)
		key := uint64(uint32(skeys[i]))
		tracedInsert(c, htSupp, typerHash(c, key), key, uint64(uint32(snation[i])))
	}
	// HT_ps over green partsupps.
	htPS := hashtable.New(2, 1)
	htPS.Prepare(nGreen * 4)
	for i := 0; i < ps.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, pspk, i)
		pk := uint64(uint32(pspk[i]))
		h := typerHash(c, pk)
		if tracedProbe(c, htPart, h, pk, nil) == 0 {
			continue
		}
		loadCol(c, pssk, i)
		loadCol(c, pscost, i)
		key := pk | uint64(uint32(pssk[i]))<<32
		c.Ops(2)
		tracedInsert(c, htPS, typerHash(c, key), key, uint64(pscost[i]))
	}
	// Lineitem pipeline → HT_line.
	htLine := hashtable.New(3, 1)
	htLine.Prepare(li.Rows() * (nGreen + 1) / (part.Rows() + 1))
	for i := 0; i < li.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, lpk, i)
		pk := uint64(uint32(lpk[i]))
		h := typerHash(c, pk)
		if tracedProbe(c, htPart, h, pk, nil) == 0 {
			continue
		}
		loadCol(c, lsk, i)
		psKey := pk | uint64(uint32(lsk[i]))<<32
		c.Ops(2)
		pref := tracedProbe(c, htPS, typerHash(c, psKey), psKey, nil)
		if pref == 0 {
			continue
		}
		c.Load(unsafe.Add(htPS.PayloadAddr(pref), 8), 8) // cost
		sk := uint64(uint32(lsk[i]))
		sref := tracedProbe(c, htSupp, typerHash(c, sk), sk, nil)
		if sref == 0 {
			continue
		}
		c.Load(unsafe.Add(htSupp.PayloadAddr(sref), 8), 8) // nation
		loadCol(c, lok, i)
		loadCol(c, lqty, i)
		loadCol(c, lext, i)
		loadCol(c, ldisc, i)
		c.Ops(5) // amount arithmetic
		key := uint64(uint32(lok[i]))
		tracedInsert(c, htLine, typerHash(c, key), key,
			htSupp.Word(sref, 1), uint64(int64(lext[i])*(100-int64(ldisc[i]))))
	}
	// Orders probe (multi-match) → Γ(year, nation).
	htAgg := hashtable.New(2, 1)
	htAgg.Prepare(256)
	for i := 0; i < ord.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, okeys, i)
		key := uint64(uint32(okeys[i]))
		h := typerHash(c, key)
		first := true
		tracedProbe(c, htLine, h, key, func(ref hashtable.Ref) {
			if first {
				loadCol(c, odate, i)
				c.Ops(6) // year extraction
				first = false
			}
			c.Load(unsafe.Add(htLine.PayloadAddr(ref), 8), 16) // nation, amount
			gkey := uint64(uint32(odate[i].Year())) | htLine.Word(ref, 1)<<32
			c.Ops(2)
			gh := typerHash(c, gkey)
			gref := tracedProbe(c, htAgg, gh, gkey, nil)
			c.Branch(siteAggHit, gref != 0)
			if gref == 0 {
				tracedInsert(c, htAgg, gh, gkey, 0)
				return
			}
			c.Load(unsafe.Add(htAgg.PayloadAddr(gref), 8), 8)
			c.Ops(1)
			c.Store(unsafe.Add(htAgg.PayloadAddr(gref), 8), 8)
		})
	}
}

// TyperQ18Traced traces TPC-H Q18.
func TyperQ18Traced(db *storage.Database, c *CPU) {
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	minQty := int64(queries.Q18Quantity)

	// Γ(lineitem by orderkey): the 1.5M·SF-group aggregation.
	htAgg := hashtable.New(2, 1)
	htAgg.Prepare(ord.Rows())
	for i := 0; i < li.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, lok, i)
		loadCol(c, lqty, i)
		key := uint64(uint32(lok[i]))
		h := typerHash(c, key)
		ref := tracedProbe(c, htAgg, h, key, nil)
		c.Branch(siteAggHit, ref != 0)
		if ref == 0 {
			tracedInsert(c, htAgg, h, key, uint64(lqty[i]))
			continue
		}
		c.Load(unsafe.Add(htAgg.PayloadAddr(ref), 8), 8)
		c.Ops(1)
		htAgg.SetWord(ref, 1, htAgg.Word(ref, 1)+uint64(lqty[i]))
		c.Store(unsafe.Add(htAgg.PayloadAddr(ref), 8), 8)
	}
	// HAVING scan over the groups.
	htBig := hashtable.New(2, 1)
	htBig.Prepare(64)
	htAgg.ForEach(func(ref hashtable.Ref) {
		c.Ops(loopOps)
		c.Load(htAgg.PayloadAddr(ref), 16)
		pass := int64(htAgg.Word(ref, 1)) > minQty
		c.Branch(siteHaving, pass)
		if pass {
			key := htAgg.Word(ref, 0)
			tracedInsert(c, htBig, typerHash(c, key), key, htAgg.Word(ref, 1))
		}
	})
	// Orders ⋈ HT_big → HT_match.
	htMatch := hashtable.New(4, 1)
	htMatch.Prepare(htBig.Rows())
	for i := 0; i < ord.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, okeys, i)
		key := uint64(uint32(okeys[i]))
		h := typerHash(c, key)
		if ref := tracedProbe(c, htBig, h, key, nil); ref != 0 {
			loadCol(c, ocust, i)
			ck := uint64(uint32(ocust[i]))
			tracedInsert(c, htMatch, typerHash(c, ck), ck, 0, 0, htBig.Word(ref, 1))
		}
	}
	// Customer ⋈ HT_match → output.
	for i := 0; i < cust.Rows(); i++ {
		c.Ops(loopOps)
		loadCol(c, ckeys, i)
		ck := uint64(uint32(ckeys[i]))
		h := typerHash(c, ck)
		tracedProbe(c, htMatch, h, ck, func(ref hashtable.Ref) {
			c.Load(htMatch.PayloadAddr(ref), 32)
			c.Ops(4) // emit row
		})
	}
}
