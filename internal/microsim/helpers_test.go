package microsim

import (
	"paradigms/internal/ssb"
	"paradigms/internal/storage"
)

type dbType = storage.Database

func ssbGen(sf float64) *dbType { return ssb.Generate(sf, 0) }
