package microsim

import (
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/tpch"
)

// All traced twins must run to completion and produce internally
// consistent counters on every platform profile.
func TestAllTracedTwinsRun(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	ssbDB := ssbGen(0.01)
	for _, hw := range Platforms {
		for _, q := range queries.TPCHQueries {
			for _, eng := range []string{"typer", "tectorwise"} {
				ctr := TracedTPCH(db, hw, eng, q)
				checkCounters(t, hw.Name+"/"+eng+"/"+q, ctr)
			}
		}
		for _, q := range queries.SSBQueries {
			for _, eng := range []string{"typer", "tectorwise"} {
				ctr := TracedSSB(ssbDB, hw, eng, q)
				checkCounters(t, hw.Name+"/"+eng+"/"+q, ctr)
			}
		}
	}
}

func checkCounters(t *testing.T, name string, c Counters) {
	t.Helper()
	if c.Instr <= 0 || c.Cycles <= 0 {
		t.Errorf("%s: empty counters %+v", name, c)
	}
	if c.IPC <= 0 || c.IPC > 6 {
		t.Errorf("%s: implausible IPC %.2f", name, c.IPC)
	}
	if c.L1Miss < c.LLCMiss {
		t.Errorf("%s: LLC misses (%.3f) exceed L1 misses (%.3f)", name, c.LLCMiss, c.L1Miss)
	}
	if c.MemStall > c.Cycles {
		t.Errorf("%s: stalls (%.1f) exceed cycles (%.1f)", name, c.MemStall, c.Cycles)
	}
}

// The twins must be reproducible: same database, same instruction and
// branch counts exactly; cache misses may vary sub-percent because fresh
// hash-table allocations land at different heap addresses (and therefore
// different cache sets) on each run.
func TestTracedTwinsReproducible(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	a := TracedTPCH(db, Skylake, "typer", "Q3")
	b := TracedTPCH(db, Skylake, "typer", "Q3")
	if a.Instr != b.Instr || a.BranchMiss != b.BranchMiss {
		t.Errorf("instruction/branch counters differ:\n%+v\n%+v", a, b)
	}
	close := func(x, y float64) bool {
		if x == y {
			return true
		}
		d := x - y
		if d < 0 {
			d = -d
		}
		return d <= 0.01*(x+y)/2+1e-9
	}
	if !close(a.L1Miss, b.L1Miss) || !close(a.Cycles, b.Cycles) || !close(a.MemStall, b.MemStall) {
		t.Errorf("cache counters drift beyond 1%%:\n%+v\n%+v", a, b)
	}
}

// SSB twins: instruction relationship between the engines mirrors the
// paper (TW materializes more).
func TestSSBTwinShape(t *testing.T) {
	db := ssbGen(0.05)
	for _, q := range queries.SSBQueries {
		ty := TracedSSB(db, Skylake, "typer", q)
		tww := TracedSSB(db, Skylake, "tectorwise", q)
		if tww.Instr <= ty.Instr {
			t.Errorf("%s: TW instr (%.1f) should exceed Typer (%.1f)", q, tww.Instr, ty.Instr)
		}
		if tww.BranchMiss >= ty.BranchMiss {
			t.Errorf("%s: TW branch misses (%.3f) should be below Typer (%.3f)",
				q, tww.BranchMiss, ty.BranchMiss)
		}
		if tww.MemStall >= ty.MemStall*1.2 {
			t.Errorf("%s: TW stall (%.1f) should not exceed Typer (%.1f) by much",
				q, tww.MemStall, ty.MemStall)
		}
	}
}

// Bigger data ⇒ at least as many cache misses per tuple on join queries.
func TestFig4Monotonicity(t *testing.T) {
	small := tpch.Generate(0.02, 0)
	large := tpch.Generate(0.2, 0)
	for _, eng := range []string{"typer", "tectorwise"} {
		s := TracedTPCH(small, Skylake, eng, "Q3")
		l := TracedTPCH(large, Skylake, eng, "Q3")
		if l.MemStall < s.MemStall*0.9 {
			t.Errorf("%s Q3: stalls shrank with scale: %.2f -> %.2f", eng, s.MemStall, l.MemStall)
		}
	}
}
