package microsim

import (
	"unsafe"

	"paradigms/internal/hashtable"
)

// Shared tracing helpers used by the traced query twins. The twins run
// the engines' algorithms single-threaded (Table 1 and the SSB table are
// measured at one thread) against real data and real hash tables, so the
// cache simulator sees genuine addresses and chain lengths; only the
// instruction weights are model constants.

// Instruction weights of the two hash functions (§4.1): Mix64 (Typer's
// low-latency hash; stands in for CRC) and Murmur2 (Tectorwise).
const (
	HashOpsTyper = 8
	HashOpsTW    = 15
	// loopOps models loop control (induction increment + bound check).
	loopOps = 2
)

// Branch site identifiers (arbitrary but distinct static "PCs").
const (
	siteFilter uint32 = 100 + iota*8
	siteBucket
	siteHashEq
	siteKeyEq
	siteChain
	siteAggHit
	siteHaving
)

// tracedProbe walks one probe of ht for (hash, key): directory load, tag
// check, then chain walk comparing stored hash and the 64-bit key in
// payload word 0. Returns the first matching entry (0 if none) and
// charges all events to c. each() — when non-nil — is invoked for every
// match so multi-match joins can keep walking.
func tracedProbe(c *CPU, ht *hashtable.Table, h, key uint64, each func(ref hashtable.Ref)) hashtable.Ref {
	c.Ops(2) // mask + index arithmetic
	c.Load(ht.DirWordAddr(h), 8)
	w := ht.LookupDirWord(h)
	ref := hashtable.DecodeDirWord(w, h, true)
	c.Ops(2) // tag extraction + test
	c.Branch(siteBucket, ref != 0)
	var first hashtable.Ref
	for ref != 0 {
		c.Load(ht.EntryAddr(ref), 16) // header: next + hash
		hashEq := ht.Hash(ref) == h
		c.Ops(1)
		c.Branch(siteHashEq, hashEq)
		if hashEq {
			c.Load(ht.PayloadAddr(ref), 8)
			keyEq := ht.Word(ref, 0) == key
			c.Ops(1)
			c.Branch(siteKeyEq, keyEq)
			if keyEq {
				if first == 0 {
					first = ref
				}
				if each != nil {
					each(ref)
				} else {
					return ref
				}
			}
		}
		ref = ht.Next(ref)
		c.Ops(1)
		c.Branch(siteChain, ref != 0)
	}
	return first
}

// tracedInsert allocates and links one entry with the given payload
// words, charging stores.
func tracedInsert(c *CPU, ht *hashtable.Table, h uint64, payload ...uint64) hashtable.Ref {
	sh := ht.Shard(0)
	ref, _ := sh.Alloc(ht, h)
	c.Ops(4) // bump allocation + bookkeeping
	c.Store(ht.EntryAddr(ref), 16)
	for i, p := range payload {
		ht.SetWord(ref, i, p)
	}
	c.Store(ht.PayloadAddr(ref), 8*len(payload))
	c.Ops(2)
	c.Store(ht.DirWordAddr(h), 8) // link into directory
	ht.Insert(ref, h)
	return ref
}

// loadCol charges a load of one column element.
func loadCol[T any](c *CPU, col []T, i int) {
	c.Load(unsafe.Pointer(&col[i]), int(unsafe.Sizeof(col[0])))
}

// storeVec charges a store into a vector buffer element.
func storeVec[T any](c *CPU, buf []T, i int) {
	c.Store(unsafe.Pointer(&buf[i]), int(unsafe.Sizeof(buf[0])))
}
