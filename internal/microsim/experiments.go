package microsim

import (
	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// TracedTPCH runs the traced twin of one TPC-H query on a fresh CPU and
// returns per-tuple counters (one row of Table 1).
func TracedTPCH(db *storage.Database, hw HW, engine, query string) Counters {
	c := NewCPU(hw)
	switch engine + "/" + query {
	case "typer/Q1":
		TyperQ1Traced(db, c)
	case "typer/Q6":
		TyperQ6Traced(db, c)
	case "typer/Q3":
		TyperQ3Traced(db, c)
	case "typer/Q9":
		TyperQ9Traced(db, c)
	case "typer/Q18":
		TyperQ18Traced(db, c)
	case "tectorwise/Q1":
		TWQ1Traced(db, c)
	case "tectorwise/Q6":
		TWQ6Traced(db, c)
	case "tectorwise/Q3":
		TWQ3Traced(db, c)
	case "tectorwise/Q9":
		TWQ9Traced(db, c)
	case "tectorwise/Q18":
		TWQ18Traced(db, c)
	default:
		panic("microsim: unknown traced query " + engine + "/" + query)
	}
	tuples := db.TotalTuples(queries.ScannedTables[query]...)
	return c.PerTuple(query, engine, tuples)
}

// TracedSSB runs the traced twin of one SSB query.
func TracedSSB(db *storage.Database, hw HW, engine, query string) Counters {
	c := NewCPU(hw)
	switch engine {
	case "typer":
		TyperSSBTraced(db, c, query)
	case "tectorwise":
		TWSSBTraced(db, c, query)
	default:
		panic("microsim: unknown engine " + engine)
	}
	tuples := db.TotalTuples(queries.ScannedTables[query]...)
	return c.PerTuple(query, engine, tuples)
}

// Table1 produces the modeled counter rows of Table 1 (TPC-H, one
// thread) in paper order.
func Table1(db *storage.Database, hw HW) []Counters {
	var rows []Counters
	for _, q := range queries.TPCHQueries {
		rows = append(rows, TracedTPCH(db, hw, "typer", q))
		rows = append(rows, TracedTPCH(db, hw, "tectorwise", q))
	}
	return rows
}

// SSBTable produces the modeled counter rows of the §4.4 SSB table.
func SSBTable(db *storage.Database, hw HW) []Counters {
	var rows []Counters
	for _, q := range queries.SSBQueries {
		rows = append(rows, TracedSSB(db, hw, "typer", q))
		rows = append(rows, TracedSSB(db, hw, "tectorwise", q))
	}
	return rows
}

// Fig4Row is one point of the Figure 4 memory-stall plot.
type Fig4Row struct {
	Query          string
	Engine         string
	ScaleFactor    float64
	CyclesPerTuple float64
	StallPerTuple  float64
}

// Fig4 sweeps scale factors and reports cycles and memory-stall cycles
// per tuple for every query × engine, reproducing the stacked bars of
// Figure 4. gen generates a database at a scale factor (injected to keep
// microsim independent of the generators).
func Fig4(gen func(sf float64) *storage.Database, hw HW, sfs []float64) []Fig4Row {
	var rows []Fig4Row
	for _, sf := range sfs {
		db := gen(sf)
		for _, q := range queries.TPCHQueries {
			for _, eng := range []string{"typer", "tectorwise"} {
				ctr := TracedTPCH(db, hw, eng, q)
				rows = append(rows, Fig4Row{
					Query: q, Engine: eng, ScaleFactor: sf,
					CyclesPerTuple: ctr.Cycles, StallPerTuple: ctr.MemStall,
				})
			}
		}
	}
	return rows
}
