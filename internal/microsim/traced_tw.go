package microsim

import (
	"bytes"
	"unsafe"

	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// Traced twins of the Tectorwise queries: vector-at-a-time passes over
// real vector buffers. Selections are predicated (no data-dependent
// branches — §2.1), every primitive materializes its output vector
// (loads and stores the cache model sees), and probes run the
// find-candidates / check / advance loop of Figure 2b.

const twVec = 1000

// twBufs is one worker's vector-buffer arena for tracing.
type twBufs struct {
	sel    []int32
	pos    []int32
	keys   []uint64
	hashes []uint64
	cand   []hashtable.Ref
	candP  []int32
	mRefs  []hashtable.Ref
	mPos   []int32
	refs   []hashtable.Ref
	v1     []int64
	v2     []int64
}

func newTWBufs(capacity int) *twBufs {
	return &twBufs{
		sel:    make([]int32, capacity),
		pos:    make([]int32, capacity),
		keys:   make([]uint64, capacity),
		hashes: make([]uint64, capacity),
		cand:   make([]hashtable.Ref, capacity),
		candP:  make([]int32, capacity),
		mRefs:  make([]hashtable.Ref, capacity),
		mPos:   make([]int32, capacity),
		refs:   make([]hashtable.Ref, capacity),
		v1:     make([]int64, capacity),
		v2:     make([]int64, capacity),
	}
}

// twSel traces a predicated selection primitive over col[base:base+n].
func twSel[T any](c *CPU, col []T, base, n int, pred func(T) bool, res []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		c.Ops(loopOps)
		loadCol(c, col, base+i)
		res[k] = int32(i)
		storeVec(c, res, k)
		c.Ops(2) // compare + predicated cursor advance
		if pred(col[base+i]) {
			k++
		}
	}
	return k
}

// twSelSel traces a secondary (sparse) selection primitive.
func twSelSel[T any](c *CPU, col []T, base int, sel []int32, pred func(T) bool, res []int32) int {
	k := 0
	for _, s := range sel {
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&sel[0]), 4)
		loadCol(c, col, base+int(s))
		res[k] = s
		storeVec(c, res, k)
		c.Ops(2)
		if pred(col[base+int(s)]) {
			k++
		}
	}
	return k
}

// twWidenKeys traces key widening: keys[i] = widen(col[base+sel[i]]).
func twWidenKeys[T ~int32](c *CPU, col []T, base int, sel []int32, keys []uint64) {
	for i, s := range sel {
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&sel[i]), 4)
		loadCol(c, col, base+int(s))
		keys[i] = uint64(uint32(col[base+int(s)]))
		storeVec(c, keys, i)
	}
}

// twWidenDense traces dense key widening.
func twWidenDense[T ~int32](c *CPU, col []T, base, n int, keys []uint64) {
	for i := 0; i < n; i++ {
		c.Ops(loopOps)
		loadCol(c, col, base+i)
		keys[i] = uint64(uint32(col[base+i]))
		storeVec(c, keys, i)
	}
}

// twHash traces the Murmur2 hash primitive.
func twHash(c *CPU, keys, hashes []uint64, n int) {
	for i := 0; i < n; i++ {
		c.Ops(loopOps + HashOpsTW)
		c.Load(unsafe.Pointer(&keys[i]), 8)
		hashes[i] = hashtable.Murmur2(keys[i])
		storeVec(c, hashes, i)
	}
}

// twProbe traces the find-candidates / check-keys / advance loop and
// returns the number of matches.
func twProbe(c *CPU, ht *hashtable.Table, b *twBufs, n int) int {
	// findCandidates: predicated, no data-dependent branches.
	nc := 0
	for i := 0; i < n; i++ {
		c.Ops(loopOps + 2)
		c.Load(unsafe.Pointer(&b.hashes[i]), 8)
		c.Load(ht.DirWordAddr(b.hashes[i]), 8)
		ref := hashtable.DecodeDirWord(ht.LookupDirWord(b.hashes[i]), b.hashes[i], true)
		c.Ops(3) // tag test + predicated append
		b.cand[nc] = ref
		b.candP[nc] = int32(i)
		storeVec(c, b.cand, nc)
		storeVec(c, b.candP, nc)
		if ref != 0 {
			nc++
		}
	}
	nm := 0
	for nc > 0 {
		// checkKeys.
		for i := 0; i < nc; i++ {
			c.Ops(loopOps)
			c.Load(unsafe.Pointer(&b.cand[i]), 8)
			c.Load(unsafe.Pointer(&b.candP[i]), 4)
			ref := b.cand[i]
			p := b.candP[i]
			c.Load(ht.EntryAddr(ref), 16)
			hit := ht.Hash(ref) == b.hashes[p]
			c.Ops(1)
			c.Branch(siteHashEq, hit)
			if hit {
				c.Load(ht.PayloadAddr(ref), 8)
				c.Ops(1)
				hit = ht.Word(ref, 0) == b.keys[p]
				c.Branch(siteKeyEq, hit)
			}
			c.Ops(2) // predicated match append
			if hit {
				b.mRefs[nm] = ref
				b.mPos[nm] = p
				storeVec(c, b.mRefs, nm)
				storeVec(c, b.mPos, nm)
				nm++
			}
		}
		// advance chains, compacting survivors (predicated).
		k := 0
		for i := 0; i < nc; i++ {
			c.Ops(loopOps + 2)
			c.Load(ht.EntryAddr(b.cand[i]), 8)
			next := ht.Next(b.cand[i])
			b.cand[k] = next
			b.candP[k] = b.candP[i]
			storeVec(c, b.cand, k)
			storeVec(c, b.candP, k)
			if next != 0 {
				k++
			}
		}
		nc = k
	}
	return nm
}

// twGather traces gathering payload word w of each match into v1.
func twGather(c *CPU, ht *hashtable.Table, b *twBufs, w, n int) {
	for i := 0; i < n; i++ {
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&b.mRefs[i]), 8)
		c.Load(unsafe.Add(ht.PayloadAddr(b.mRefs[i]), 8*w), 8)
		b.v1[i] = int64(ht.Word(b.mRefs[i], w))
		storeVec(c, b.v1, i)
	}
}

// twBuild traces the bulk materialization of n build rows (alloc +
// scatter hash, key, payloadWords extra words).
func twBuild(c *CPU, ht *hashtable.Table, b *twBufs, n, payloadWords int) {
	sh := ht.Shard(0)
	base := sh.AllocN(ht, n)
	c.Ops(6)
	for i := 0; i < n; i++ {
		ref := ht.RefAt(base, i)
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&b.hashes[i]), 8)
		ht.SetHash(ref, b.hashes[i])
		c.Store(ht.EntryAddr(ref), 16)
		ht.SetWord(ref, 0, b.keys[i])
		c.Load(unsafe.Pointer(&b.keys[i]), 8)
		c.Store(ht.PayloadAddr(ref), 8)
		for wWord := 1; wWord < payloadWords; wWord++ {
			c.Ops(loopOps)
			c.Load(unsafe.Pointer(&b.v1[i]), 8)
			c.Store(unsafe.Add(ht.PayloadAddr(ref), 8*wWord), 8)
		}
	}
}

// twInsertAll links all materialized rows into the directory.
func twInsertAll(c *CPU, ht *hashtable.Table) {
	ht.Prepare(ht.Rows())
	ht.ForEach(func(ref hashtable.Ref) {
		c.Ops(loopOps + 4)
		c.Load(ht.EntryAddr(ref), 16)
		h := ht.Hash(ref)
		c.Load(ht.DirWordAddr(h), 8)
		c.Store(ht.DirWordAddr(h), 8)
		c.Store(ht.EntryAddr(ref), 8)
	})
	// Re-link for real (ForEach above only modeled the cost; Insert
	// mutates next pointers, so do the actual linking afterwards).
	refs := make([]hashtable.Ref, 0, ht.Rows())
	ht.ForEach(func(ref hashtable.Ref) { refs = append(refs, ref) })
	for _, ref := range refs {
		ht.Insert(ref, ht.Hash(ref))
	}
}

// twAgg traces the vectorized group-by phase-one passes.
type twAgg struct {
	ht    *hashtable.Table
	nAggs int
}

func newTWAgg(expected, nAggs int) *twAgg {
	ht := hashtable.New(1+nAggs, 1)
	ht.Prepare(expected)
	return &twAgg{ht: ht, nAggs: nAggs}
}

// consume traces find-groups, handle-misses, and one update pass per
// aggregate for n tuples with keys/hashes in b.
func (a *twAgg) consume(c *CPU, b *twBufs, n int) {
	ht := a.ht
	// findGroups.
	for i := 0; i < n; i++ {
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&b.keys[i]), 8)
		c.Load(unsafe.Pointer(&b.hashes[i]), 8)
		h := b.hashes[i]
		key := b.keys[i]
		c.Ops(2)
		c.Load(ht.DirWordAddr(h), 8)
		ref := hashtable.DecodeDirWord(ht.LookupDirWord(h), h, true)
		c.Ops(2)
		for ref != 0 {
			c.Load(ht.EntryAddr(ref), 16)
			hit := ht.Hash(ref) == h
			c.Ops(1)
			c.Branch(siteHashEq, hit)
			if hit {
				c.Load(ht.PayloadAddr(ref), 8)
				c.Ops(1)
				if ht.Word(ref, 0) == key {
					break
				}
			}
			ref = ht.Next(ref)
			c.Ops(1)
			c.Branch(siteChain, ref != 0)
		}
		b.refs[i] = ref
		storeVec(c, b.refs, i)
	}
	// handleMisses (sequential insert of new groups).
	for i := 0; i < n; i++ {
		c.Ops(loopOps + 1)
		if b.refs[i] != 0 {
			continue
		}
		h := b.hashes[i]
		key := b.keys[i]
		// Re-probe (an earlier miss may have inserted it).
		ref := hashtable.DecodeDirWord(ht.LookupDirWord(h), h, true)
		c.Load(ht.DirWordAddr(h), 8)
		c.Ops(2)
		for ref != 0 {
			c.Load(ht.EntryAddr(ref), 16)
			if ht.Hash(ref) == h {
				c.Load(ht.PayloadAddr(ref), 8)
				if ht.Word(ref, 0) == key {
					break
				}
			}
			c.Ops(2)
			ref = ht.Next(ref)
		}
		if ref == 0 {
			ref = tracedInsert(c, ht, h, key)
			for w := 1; w <= a.nAggs; w++ {
				ht.SetWord(ref, w, 0)
			}
			c.Store(unsafe.Add(ht.PayloadAddr(ref), 8), 8*a.nAggs)
		}
		b.refs[i] = ref
		storeVec(c, b.refs, i)
	}
	// One update pass per aggregate column.
	for agg := 1; agg <= a.nAggs; agg++ {
		for i := 0; i < n; i++ {
			c.Ops(loopOps + 1)
			c.Load(unsafe.Pointer(&b.refs[i]), 8)
			c.Load(unsafe.Pointer(&b.v1[i]), 8)
			ref := b.refs[i]
			c.Load(unsafe.Add(a.ht.PayloadAddr(ref), 8*agg), 8)
			c.Store(unsafe.Add(a.ht.PayloadAddr(ref), 8*agg), 8)
		}
	}
}

// twFetch traces a fetch/projection primitive: out[i] = f(col[base+sel[i]]).
func twFetch[T any](c *CPU, col []T, base int, sel []int32, out []int64) {
	for i, s := range sel {
		c.Ops(loopOps)
		c.Load(unsafe.Pointer(&sel[i]), 4)
		loadCol(c, col, base+int(s))
		storeVec(c, out, i)
	}
}

// twMapArith traces one dense arithmetic map primitive over n tuples
// (two input vectors, one output, opsPerElem ALU operations).
func twMapArith(c *CPU, n, opsPerElem int, v1, v2 []int64) {
	for i := 0; i < n; i++ {
		c.Ops(loopOps + opsPerElem)
		c.Load(unsafe.Pointer(&v1[i]), 8)
		c.Load(unsafe.Pointer(&v2[i]), 8)
		storeVec(c, v1, i)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Query twins.
// ---------------------------------------------------------------------

// TWQ1Traced traces TPC-H Q1 under the vectorized model.
func TWQ1Traced(db *storage.Database, c *CPU) {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	cutoff := queries.Q1Cutoff

	b := newTWBufs(twVec)
	agg := newTWAgg(8, 6)
	for base := 0; base < li.Rows(); base += twVec {
		n := min(twVec, li.Rows()-base)
		k := twSel(c, ship, base, n, func(d types.Date) bool { return d <= cutoff }, b.sel)
		if k == 0 {
			continue
		}
		sel := b.sel[:k]
		// Pack (returnflag, linestatus) group keys.
		for i, s := range sel {
			c.Ops(loopOps + 2)
			loadCol(c, rf, base+int(s))
			loadCol(c, ls, base+int(s))
			b.keys[i] = uint64(rf[base+int(s)])<<8 | uint64(ls[base+int(s)])
			storeVec(c, b.keys, i)
		}
		twHash(c, b.keys, b.hashes, k)
		// Aggregate-input materialization: qty, extprice, disc price,
		// charge, discount — each its own primitive pass.
		twFetch(c, qty, base, sel, b.v1)
		twFetch(c, ext, base, sel, b.v1)
		twFetch(c, disc, base, sel, b.v2)
		twMapArith(c, k, 2, b.v1, b.v2) // e * (100-d)
		twFetch(c, tax, base, sel, b.v2)
		twMapArith(c, k, 2, b.v1, b.v2) // (e*(100-d)) * (100+t)
		agg.consume(c, b, k)
	}
}

// TWQ6Traced traces TPC-H Q6.
func TWQ6Traced(db *storage.Database, c *CPU) {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")

	b := newTWBufs(twVec)
	sel2 := make([]int32, twVec)
	for base := 0; base < li.Rows(); base += twVec {
		n := min(twVec, li.Rows()-base)
		k := twSel(c, ship, base, n, func(d types.Date) bool { return d >= queries.Q6DateLo }, b.sel)
		k = twSelSel(c, ship, base, b.sel[:k], func(d types.Date) bool { return d < queries.Q6DateHi }, sel2)
		k = twSelSel(c, disc, base, sel2[:k], func(d types.Numeric) bool { return d >= queries.Q6DiscLo && d <= queries.Q6DiscHi }, b.sel)
		k = twSelSel(c, qty, base, b.sel[:k], func(q types.Numeric) bool { return q < queries.Q6Quantity }, sel2)
		if k == 0 {
			continue
		}
		// rev = ext*disc over survivors, then sum.
		for i, s := range sel2[:k] {
			c.Ops(loopOps + 1)
			loadCol(c, ext, base+int(s))
			loadCol(c, disc, base+int(s))
			storeVec(c, b.v1, i)
		}
		for i := 0; i < k; i++ {
			c.Ops(loopOps + 1)
			c.Load(unsafe.Pointer(&b.v1[i]), 8)
		}
	}
}

// TWQ3Traced traces TPC-H Q3.
func TWQ3Traced(db *storage.Database, c *CPU) {
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	cutoff := queries.Q3Date

	b := newTWBufs(twVec)
	htCust := hashtable.New(1, 1)
	// Pipeline 1: customer σ(segment) → HT_cust.
	for base := 0; base < cust.Rows(); base += twVec {
		n := min(twVec, cust.Rows()-base)
		k := 0
		for i := 0; i < n; i++ {
			c.Ops(loopOps + 3)
			c.Load(unsafe.Pointer(&seg.Bytes[seg.Offsets[base+i]]), 8)
			b.sel[k] = int32(i)
			storeVec(c, b.sel, k)
			if string(seg.Get(base+i)) == queries.Q3Segment {
				k++
			}
		}
		if k == 0 {
			continue
		}
		twWidenKeys(c, ckeys, base, b.sel[:k], b.keys)
		twHash(c, b.keys, b.hashes, k)
		twBuild(c, htCust, b, k, 1)
	}
	twInsertAll(c, htCust)

	// Pipeline 2: orders σ(date) ⋉ HT_cust → HT_ord.
	htOrd := hashtable.New(2, 1)
	for base := 0; base < ord.Rows(); base += twVec {
		n := min(twVec, ord.Rows()-base)
		k := twSel(c, odate, base, n, func(d types.Date) bool { return d < cutoff }, b.sel)
		if k == 0 {
			continue
		}
		twWidenKeys(c, ocust, base, b.sel[:k], b.keys)
		twHash(c, b.keys, b.hashes, k)
		nm := twProbe(c, htCust, b, k)
		if nm == 0 {
			continue
		}
		// Compose match positions back to the window, widen orderkeys,
		// rehash, materialize build rows.
		for i := 0; i < nm; i++ {
			c.Ops(loopOps + 1)
			c.Load(unsafe.Pointer(&b.mPos[i]), 4)
			b.pos[i] = b.sel[b.mPos[i]]
			storeVec(c, b.pos, i)
		}
		twWidenKeys(c, okeys, base, b.pos[:nm], b.keys)
		twHash(c, b.keys, b.hashes, nm)
		twFetch(c, odate, base, b.pos[:nm], b.v1)
		twBuild(c, htOrd, b, nm, 2)
	}
	twInsertAll(c, htOrd)

	// Pipeline 3: lineitem σ(shipdate) ⋈ HT_ord → Γ(orderkey).
	agg := newTWAgg(htOrd.Rows(), 2)
	for base := 0; base < li.Rows(); base += twVec {
		n := min(twVec, li.Rows()-base)
		k := twSel(c, lship, base, n, func(d types.Date) bool { return d > cutoff }, b.sel)
		if k == 0 {
			continue
		}
		twWidenKeys(c, lkeys, base, b.sel[:k], b.keys)
		twHash(c, b.keys, b.hashes, k)
		nm := twProbe(c, htOrd, b, k)
		if nm == 0 {
			continue
		}
		for i := 0; i < nm; i++ {
			c.Ops(loopOps + 1)
			c.Load(unsafe.Pointer(&b.mPos[i]), 4)
			b.pos[i] = b.sel[b.mPos[i]]
			storeVec(c, b.pos, i)
		}
		twFetch(c, lext, base, b.pos[:nm], b.v1)
		twFetch(c, ldisc, base, b.pos[:nm], b.v2)
		twMapArith(c, nm, 2, b.v1, b.v2)
		twGather(c, htOrd, b, 1, nm) // carry (date, prio)
		// Group keys = matched probe keys/hashes, densified.
		for i := 0; i < nm; i++ {
			c.Ops(loopOps + 1)
			p := b.mPos[i]
			c.Load(unsafe.Pointer(&b.keys[p]), 8)
			c.Load(unsafe.Pointer(&b.hashes[p]), 8)
			b.keys[i] = b.keys[p]
			b.hashes[i] = b.hashes[p]
			storeVec(c, b.keys, i)
			storeVec(c, b.hashes, i)
		}
		agg.consume(c, b, nm)
	}
}

// TWQ9Traced traces TPC-H Q9.
func TWQ9Traced(db *storage.Database, c *CPU) {
	part := db.Rel("part")
	pnames := part.String("p_name")
	pkeys := part.Int32("p_partkey")
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snation := supp.Int32("s_nationkey")
	ps := db.Rel("partsupp")
	pspk := ps.Int32("ps_partkey")
	pssk := ps.Int32("ps_suppkey")
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	odate := ord.Date("o_orderdate")
	needle := []byte(queries.Q9Color)

	b := newTWBufs(twVec * 8)
	// HT_part (green).
	htPart := hashtable.New(1, 1)
	for base := 0; base < part.Rows(); base += twVec {
		n := min(twVec, part.Rows()-base)
		k := 0
		for i := 0; i < n; i++ {
			name := pnames.Get(base + i)
			c.Ops(loopOps + len(name)/2)
			c.Load(unsafe.Pointer(&pnames.Offsets[base+i]), 8)
			c.Load(unsafe.Pointer(&name[0]), len(name))
			b.sel[k] = int32(i)
			storeVec(c, b.sel, k)
			if bytes.Contains(name, needle) {
				k++
			}
		}
		if k == 0 {
			continue
		}
		twWidenKeys(c, pkeys, base, b.sel[:k], b.keys)
		twHash(c, b.keys, b.hashes, k)
		twBuild(c, htPart, b, k, 1)
	}
	twInsertAll(c, htPart)

	// HT_supp (suppkey → nation).
	htSupp := hashtable.New(2, 1)
	for base := 0; base < supp.Rows(); base += twVec {
		n := min(twVec, supp.Rows()-base)
		twWidenDense(c, skeys, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		twFetch(c, snation, base, vecIota(b.sel, n), b.v1)
		twBuild(c, htSupp, b, n, 2)
	}
	twInsertAll(c, htSupp)

	// HT_ps ((partkey,suppkey) → cost), filtered by HT_part.
	htPS := hashtable.New(2, 1)
	for base := 0; base < ps.Rows(); base += twVec {
		n := min(twVec, ps.Rows()-base)
		twWidenDense(c, pspk, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		nm := twProbe(c, htPart, b, n)
		if nm == 0 {
			continue
		}
		for i := 0; i < nm; i++ {
			c.Ops(loopOps + 3)
			p := b.mPos[i]
			loadCol(c, pspk, base+int(p))
			loadCol(c, pssk, base+int(p))
			b.keys[i] = uint64(uint32(pspk[base+int(p)])) | uint64(uint32(pssk[base+int(p)]))<<32
			storeVec(c, b.keys, i)
		}
		twHash(c, b.keys, b.hashes, nm)
		twBuild(c, htPS, b, nm, 2)
	}
	twInsertAll(c, htPS)

	// Lineitem pipeline → HT_line (orderkey → nation, amount).
	htLine := hashtable.New(3, 1)
	for base := 0; base < li.Rows(); base += twVec {
		n := min(twVec, li.Rows()-base)
		twWidenDense(c, lpk, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		nm1 := twProbe(c, htPart, b, n)
		if nm1 == 0 {
			continue
		}
		copy(b.pos, b.mPos[:nm1]) // window positions of green lineitems
		for i := 0; i < nm1; i++ {
			c.Ops(loopOps + 3)
			p := b.pos[i]
			loadCol(c, lpk, base+int(p))
			loadCol(c, lsk, base+int(p))
			b.keys[i] = uint64(uint32(lpk[base+int(p)])) | uint64(uint32(lsk[base+int(p)]))<<32
			storeVec(c, b.keys, i)
		}
		twHash(c, b.keys, b.hashes, nm1)
		nm2 := twProbe(c, htPS, b, nm1)
		if nm2 == 0 {
			continue
		}
		twGather(c, htPS, b, 1, nm2) // cost
		for i := 0; i < nm2; i++ {
			c.Ops(loopOps + 1)
			b.pos[i] = b.pos[b.mPos[i]]
			storeVec(c, b.pos, i)
		}
		twWidenKeys(c, lsk, base, b.pos[:nm2], b.keys)
		twHash(c, b.keys, b.hashes, nm2)
		nm3 := twProbe(c, htSupp, b, nm2)
		if nm3 == 0 {
			continue
		}
		twGather(c, htSupp, b, 1, nm3) // nation
		for i := 0; i < nm3; i++ {
			c.Ops(loopOps + 1)
			b.pos[i] = b.pos[b.mPos[i]]
			storeVec(c, b.pos, i)
		}
		twFetch(c, lext, base, b.pos[:nm3], b.v1)
		twFetch(c, ldisc, base, b.pos[:nm3], b.v2)
		twMapArith(c, nm3, 2, b.v1, b.v2)
		twFetch(c, lqty, base, b.pos[:nm3], b.v2)
		twMapArith(c, nm3, 2, b.v1, b.v2)
		twWidenKeys(c, lok, base, b.pos[:nm3], b.keys)
		twHash(c, b.keys, b.hashes, nm3)
		twBuild(c, htLine, b, nm3, 3)
	}
	twInsertAll(c, htLine)

	// Orders ⋈ HT_line (multi-match) → Γ(year, nation).
	agg := newTWAgg(256, 1)
	for base := 0; base < ord.Rows(); base += twVec {
		n := min(twVec, ord.Rows()-base)
		twWidenDense(c, okeys, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		nm := twProbe(c, htLine, b, n)
		if nm == 0 {
			continue
		}
		twGather(c, htLine, b, 2, nm) // amounts
		for i := 0; i < nm; i++ {
			c.Ops(loopOps + 7) // year extraction + pack
			p := b.mPos[i]
			loadCol(c, odate, base+int(p))
			c.Load(unsafe.Add(htLine.PayloadAddr(b.mRefs[i]), 8), 8) // nation
			b.keys[i] = uint64(uint32(odate[base+int(p)].Year())) | htLine.Word(b.mRefs[i], 1)<<32
			storeVec(c, b.keys, i)
		}
		twHash(c, b.keys, b.hashes, nm)
		agg.consume(c, b, nm)
	}
}

// TWQ18Traced traces TPC-H Q18.
func TWQ18Traced(db *storage.Database, c *CPU) {
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	minQty := int64(queries.Q18Quantity)

	b := newTWBufs(twVec)
	// Γ(lineitem by orderkey).
	agg := newTWAgg(ord.Rows(), 1)
	for base := 0; base < li.Rows(); base += twVec {
		n := min(twVec, li.Rows()-base)
		twWidenDense(c, lok, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		twFetch(c, lqty, base, vecIota(b.sel, n), b.v1)
		// Real aggregation so the HAVING pass sees genuine sums.
		for i := 0; i < n; i++ {
			key := b.keys[i]
			h := b.hashes[i]
			ref := agg.ht.Lookup(h)
			for ; ref != 0; ref = agg.ht.Next(ref) {
				if agg.ht.Hash(ref) == h && agg.ht.Word(ref, 0) == key {
					break
				}
			}
			if ref == 0 {
				ref, _ = agg.ht.Shard(0).Alloc(agg.ht, h)
				agg.ht.SetWord(ref, 0, key)
				agg.ht.SetWord(ref, 1, 0)
				agg.ht.Insert(ref, h)
			}
			agg.ht.SetWord(ref, 1, agg.ht.Word(ref, 1)+uint64(lqty[base+i]))
		}
		agg.consume(c, b, n)
	}
	// HAVING + HT_big.
	htBig := hashtable.New(2, 1)
	htBig.Prepare(64)
	agg.ht.ForEach(func(ref hashtable.Ref) {
		c.Ops(loopOps)
		c.Load(agg.ht.PayloadAddr(ref), 16)
		pass := int64(agg.ht.Word(ref, 1)) > minQty
		c.Branch(siteHaving, pass)
		if pass {
			key := agg.ht.Word(ref, 0)
			c.Ops(HashOpsTW)
			tracedInsert(c, htBig, hashtable.Murmur2(key), key, agg.ht.Word(ref, 1))
		}
	})
	// Orders ⋈ HT_big → HT_match.
	htMatch := hashtable.New(4, 1)
	for base := 0; base < ord.Rows(); base += twVec {
		n := min(twVec, ord.Rows()-base)
		twWidenDense(c, okeys, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		nm := twProbe(c, htBig, b, n)
		if nm == 0 {
			continue
		}
		twWidenKeys(c, ocust, base, b.mPos[:nm], b.keys)
		twHash(c, b.keys, b.hashes, nm)
		twGather(c, htBig, b, 1, nm)
		twBuild(c, htMatch, b, nm, 4)
	}
	twInsertAll(c, htMatch)
	// Customer ⋈ HT_match.
	for base := 0; base < cust.Rows(); base += twVec {
		n := min(twVec, cust.Rows()-base)
		twWidenDense(c, ckeys, base, n, b.keys)
		twHash(c, b.keys, b.hashes, n)
		nm := twProbe(c, htMatch, b, n)
		for i := 0; i < nm; i++ {
			c.Ops(loopOps + 4)
			c.Load(htMatch.PayloadAddr(b.mRefs[i]), 32)
		}
	}
}

// vecIota fills sel[0:n] with 0..n-1 (no tracing — plan constant setup).
func vecIota(sel []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		sel[i] = int32(i)
	}
	return sel[:n]
}
