// Package typer is the data-centric compiled query engine ("Typer" in the
// paper, HyPer-style).
//
// Each query is executed as a small number of fused pipelines: one tight
// tuple-at-a-time loop per pipeline that keeps intermediate values in
// local variables ("registers") and inlines hash-table access, exactly the
// code a data-centric code generator would emit. Per DESIGN.md S1, Go has
// no practical JIT, so the repository ships the generated code directly —
// the paper itself notes (§1 fn.1) that the codegen target affects only
// compile time, which all measurements exclude.
//
// Parallelism is morsel-driven (§6.1): the table-scan loop of each
// pipeline claims morsels from a shared dispatcher; shared hash tables are
// built with the materialize → barrier → size directory → parallel insert
// protocol; aggregations run the shared two-phase (pre-aggregate + spill
// partitions, then per-partition merge) algorithm. These data structures
// (internal/hashtable) and the scheduler (internal/exec) are the same ones
// Tectorwise uses; only the execution paradigm differs.
package typer

import (
	"runtime"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
)

const (
	// aggPartitions is the number of spill partitions of the two-phase
	// aggregation (power of two).
	aggPartitions = 64
	// preAggCapacity bounds each worker's pre-aggregation hash table so it
	// stays cache resident; overflowing groups spill as single-tuple
	// partials.
	preAggCapacity = 1 << 14
)

// Hash is the hash function Typer uses for all keys. The paper uses a
// CRC32-instruction hash here (§4.1: lower latency and fewer instructions
// than Murmur2, which matters inside fused loops); portable Go cannot
// issue that instruction, so Mix64 — a two-multiply finalizer with the
// same low-latency character — plays its role. See hashtable.Mix64.
var Hash = hashtable.Mix64

// workers normalizes a worker-count argument.
func workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// buildBarrier completes a shared hash-table build: all workers have
// materialized their rows; the last one sizes the directory; then every
// worker inserts its own shard; a second barrier releases the probers.
func buildBarrier(ht *hashtable.Table, bar *exec.Barrier, w int) {
	bar.Wait(func() { ht.Prepare(ht.Rows()) })
	ht.InsertShard(w)
	bar.Wait(nil)
}

// packDate packs a 32-bit value pair into one word.
func pack32(lo, hi uint32) uint64 { return uint64(lo) | uint64(hi)<<32 }

func lo32(w uint64) uint32 { return uint32(w) }
func hi32(w uint64) uint32 { return uint32(w >> 32) }
