package typer

import (
	"context"

	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

// Every fused query registers itself with the engine-agnostic query
// registry; the facade and all workload drivers dispatch through it, so
// this init is the single wiring point per query for this engine.

// runner adapts a *Ctx query to the registry's Runner shape (fused
// pipelines have no vector size).
func runner[T any](f func(context.Context, *storage.Database, int) T) registry.Runner {
	return func(ctx context.Context, db *storage.Database, opt registry.Options) any {
		return f(ctx, db, opt.Workers)
	}
}

func init() {
	registry.Register(registry.Typer, "tpch", "Q1", runner(Q1Ctx))
	registry.Register(registry.Typer, "tpch", "Q6", runner(Q6Ctx))
	registry.Register(registry.Typer, "tpch", "Q3", runner(Q3Ctx))
	registry.Register(registry.Typer, "tpch", "Q9", runner(Q9Ctx))
	registry.Register(registry.Typer, "tpch", "Q18", runner(Q18Ctx))
	registry.Register(registry.Typer, "tpch", "Q5", runner(Q5Ctx))
	registry.Register(registry.Typer, "ssb", "Q1.1", runner(SSBQ11Ctx))
	registry.Register(registry.Typer, "ssb", "Q2.1", runner(SSBQ21Ctx))
	registry.Register(registry.Typer, "ssb", "Q3.1", runner(SSBQ31Ctx))
	registry.Register(registry.Typer, "ssb", "Q4.1", runner(SSBQ41Ctx))
}
