package typer

import (
	"bytes"
	"context"
	"unsafe"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// This file is the "generated code" for the TPC-H subset: one function per
// query, each consisting of fused tuple-at-a-time pipeline loops in the
// style of Figure 2a of the paper.

// ---------------------------------------------------------------------
// Q1: scan lineitem → σ(shipdate) → Γ(returnflag, linestatus; 8 aggs)
// ---------------------------------------------------------------------

type q1Group struct {
	key       uint64
	sumQty    int64
	sumBase   int64
	sumDisc   int64
	sumCharge int64
	sumDiscnt int64
	count     int64
}

// Q1Ctx executes TPC-H Q1 with the given number of worker threads.
func Q1Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.Q1Result {
	w := workers(nWorkers)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	cutoff := queries.Q1Cutoff

	disp := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 8)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q1Result, w)

	exec.Parallel(w, func(wid int) {
		// Pipeline 1: fused scan + filter + pre-aggregation.
		local := hashtable.New(7, 1)
		local.Prepare(preAggCapacity)
		sh := local.Shard(0)
		for {
			m, ok := disp.Next()
			if !ok {
				break
			}
		tuples:
			for i := m.Begin; i < m.End; i++ {
				if ship[i] > cutoff {
					continue
				}
				key := uint64(rf[i])<<8 | uint64(ls[i])
				h := Hash(key)
				e, d, t := int64(ext[i]), int64(disc[i]), int64(tax[i])
				q := int64(qty[i])
				for ref := local.Lookup(h); ref != 0; ref = local.Next(ref) {
					if local.Hash(ref) == h {
						g := (*q1Group)(local.Payload(ref))
						if g.key == key {
							g.sumQty += q
							g.sumBase += e
							g.sumDisc += e * (100 - d)
							g.sumCharge += e * (100 - d) * (100 + t)
							g.sumDiscnt += d
							g.count++
							continue tuples
						}
					}
				}
				if local.Rows() < preAggCapacity {
					ref, p := sh.Alloc(local, h)
					g := (*q1Group)(p)
					g.key = key
					g.sumQty = q
					g.sumBase = e
					g.sumDisc = e * (100 - d)
					g.sumCharge = e * (100 - d) * (100 + t)
					g.sumDiscnt = d
					g.count = 1
					local.Insert(ref, h)
				} else {
					row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
					row[0] = h
					row[1] = key
					row[2] = uint64(q)
					row[3] = uint64(e)
					row[4] = uint64(e * (100 - d))
					row[5] = uint64(e * (100 - d) * (100 + t))
					row[6] = uint64(d)
					row[7] = 1
				}
			}
		}
		// Flush the pre-aggregated groups into the spill partitions.
		local.ForEach(func(ref hashtable.Ref) {
			h := local.Hash(ref)
			g := (*q1Group)(local.Payload(ref))
			row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
			row[0] = h
			row[1] = g.key
			row[2] = uint64(g.sumQty)
			row[3] = uint64(g.sumBase)
			row[4] = uint64(g.sumDisc)
			row[5] = uint64(g.sumCharge)
			row[6] = uint64(g.sumDiscnt)
			row[7] = uint64(g.count)
		})
		bar.Wait(nil)

		// Pipeline 2: per-partition merge of partial aggregates.
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			p := pm.Begin
			merged := hashtable.New(7, 1)
			merged.Prepare(spill.PartitionCount(p))
			msh := merged.Shard(0)
			spill.PartitionRows(p, func(row []uint64) {
				h, key := row[0], row[1]
				for ref := merged.Lookup(h); ref != 0; ref = merged.Next(ref) {
					if merged.Hash(ref) == h {
						g := (*q1Group)(merged.Payload(ref))
						if g.key == key {
							g.sumQty += int64(row[2])
							g.sumBase += int64(row[3])
							g.sumDisc += int64(row[4])
							g.sumCharge += int64(row[5])
							g.sumDiscnt += int64(row[6])
							g.count += int64(row[7])
							return
						}
					}
				}
				ref, ptr := msh.Alloc(merged, h)
				g := (*q1Group)(ptr)
				g.key = key
				g.sumQty = int64(row[2])
				g.sumBase = int64(row[3])
				g.sumDisc = int64(row[4])
				g.sumCharge = int64(row[5])
				g.sumDiscnt = int64(row[6])
				g.count = int64(row[7])
				merged.Insert(ref, h)
			})
			merged.ForEach(func(ref hashtable.Ref) {
				g := (*q1Group)(merged.Payload(ref))
				results[wid] = append(results[wid], queries.Q1Row{
					ReturnFlag: byte(g.key >> 8),
					LineStatus: byte(g.key),
					SumQty:     g.sumQty,
					SumBase:    g.sumBase,
					SumDisc:    g.sumDisc,
					SumCharge:  g.sumCharge,
					SumDiscnt:  g.sumDiscnt,
					Count:      g.count,
				})
			})
		}
	})

	var out queries.Q1Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ1(out)
	return out
}

// ---------------------------------------------------------------------
// Q6: scan lineitem → σ(shipdate, discount, quantity) → Σ
// ---------------------------------------------------------------------

// Q6Ctx executes TPC-H Q6.
func Q6Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.Q6Result {
	w := workers(nWorkers)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	dlo, dhi := queries.Q6DateLo, queries.Q6DateHi
	clo, chi := queries.Q6DiscLo, queries.Q6DiscHi
	qmax := queries.Q6Quantity

	disp := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	partial := make([]int64, w)
	exec.Parallel(w, func(wid int) {
		var sum int64
		for {
			m, ok := disp.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if ship[i] >= dlo && ship[i] < dhi &&
					disc[i] >= clo && disc[i] <= chi && qty[i] < qmax {
					sum += int64(ext[i]) * int64(disc[i])
				}
			}
		}
		partial[wid] = sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return queries.Q6Result(total)
}

// ---------------------------------------------------------------------
// Q3: σ(customer) ⋈ σ(orders) ⋈ σ(lineitem) → Γ(orderkey,…) → top-10
// ---------------------------------------------------------------------

type q3Cust struct{ key uint64 }

type q3Order struct {
	key      uint64 // o_orderkey
	datePrio uint64 // pack32(o_orderdate, o_shippriority)
}

type q3Group struct {
	key      uint64 // l_orderkey
	revenue  int64  // scale 4
	datePrio uint64
}

// Q3Ctx executes TPC-H Q3.
func Q3Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.Q3Result {
	w := workers(nWorkers)
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	oprio := ord.Int32("o_shippriority")
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	cutoff := queries.Q3Date
	segment := queries.Q3Segment

	htCust := hashtable.New(1, w)
	htOrd := hashtable.New(2, w)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 4)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	tops := make([]*queries.TopK[queries.Q3Row], w)

	exec.Parallel(w, func(wid int) {
		// Pipeline 1: scan customer, filter segment, build HT_cust.
		sh := htCust.Shard(wid)
		for {
			m, ok := dispCust.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if string(seg.Get(i)) == segment {
					key := uint64(uint32(ckeys[i]))
					ref, p := sh.Alloc(htCust, Hash(key))
					(*q3Cust)(p).key = key
					_ = ref
				}
			}
		}
		buildBarrier(htCust, bar, wid)

		// Pipeline 2: scan orders, filter date, probe HT_cust, build HT_ord.
		osh := htOrd.Shard(wid)
		for {
			m, ok := dispOrd.Next()
			if !ok {
				break
			}
		orders:
			for i := m.Begin; i < m.End; i++ {
				if odate[i] >= cutoff {
					continue
				}
				ck := uint64(uint32(ocust[i]))
				h := Hash(ck)
				for ref := htCust.Lookup(h); ref != 0; ref = htCust.Next(ref) {
					if htCust.Hash(ref) == h && (*q3Cust)(htCust.Payload(ref)).key == ck {
						key := uint64(uint32(okeys[i]))
						_, p := osh.Alloc(htOrd, Hash(key))
						o := (*q3Order)(p)
						o.key = key
						o.datePrio = pack32(uint32(odate[i]), uint32(oprio[i]))
						continue orders
					}
				}
			}
		}
		buildBarrier(htOrd, bar, wid)

		// Pipeline 3: scan lineitem, filter shipdate, probe HT_ord,
		// pre-aggregate revenue by orderkey.
		local := hashtable.New(3, 1)
		local.Prepare(preAggCapacity)
		lsh := local.Shard(0)
		for {
			m, ok := dispLine.Next()
			if !ok {
				break
			}
		lines:
			for i := m.Begin; i < m.End; i++ {
				if lship[i] <= cutoff {
					continue
				}
				key := uint64(uint32(lkeys[i]))
				h := Hash(key)
				for ref := htOrd.Lookup(h); ref != 0; ref = htOrd.Next(ref) {
					if htOrd.Hash(ref) == h {
						o := (*q3Order)(htOrd.Payload(ref))
						if o.key == key {
							rev := int64(lext[i]) * (100 - int64(ldisc[i]))
							// Aggregate: find or create the group.
							for gref := local.Lookup(h); gref != 0; gref = local.Next(gref) {
								if local.Hash(gref) == h {
									g := (*q3Group)(local.Payload(gref))
									if g.key == key {
										g.revenue += rev
										continue lines
									}
								}
							}
							if local.Rows() < preAggCapacity {
								gref, p := lsh.Alloc(local, h)
								g := (*q3Group)(p)
								g.key = key
								g.revenue = rev
								g.datePrio = o.datePrio
								local.Insert(gref, h)
							} else {
								row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
								row[0] = h
								row[1] = key
								row[2] = uint64(rev)
								row[3] = o.datePrio
							}
							continue lines
						}
					}
				}
			}
		}
		local.ForEach(func(ref hashtable.Ref) {
			g := (*q3Group)(local.Payload(ref))
			h := local.Hash(ref)
			row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
			row[0] = h
			row[1] = g.key
			row[2] = uint64(g.revenue)
			row[3] = g.datePrio
		})
		bar.Wait(nil)

		// Pipeline 4: per-partition merge + top-10.
		top := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
		tops[wid] = top
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			p := pm.Begin
			merged := hashtable.New(3, 1)
			merged.Prepare(spill.PartitionCount(p))
			msh := merged.Shard(0)
			spill.PartitionRows(p, func(row []uint64) {
				h, key := row[0], row[1]
				for ref := merged.Lookup(h); ref != 0; ref = merged.Next(ref) {
					if merged.Hash(ref) == h {
						g := (*q3Group)(merged.Payload(ref))
						if g.key == key {
							g.revenue += int64(row[2])
							return
						}
					}
				}
				ref, ptr := msh.Alloc(merged, h)
				g := (*q3Group)(ptr)
				g.key = key
				g.revenue = int64(row[2])
				g.datePrio = row[3]
				merged.Insert(ref, h)
			})
			merged.ForEach(func(ref hashtable.Ref) {
				g := (*q3Group)(merged.Payload(ref))
				top.Offer(queries.Q3Row{
					OrderKey:     int32(uint32(g.key)),
					Revenue:      g.revenue,
					OrderDate:    types.Date(lo32(g.datePrio)),
					ShipPriority: int32(hi32(g.datePrio)),
				})
			})
		}
	})

	final := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
	for _, t := range tops {
		final.Merge(t)
	}
	return final.Sorted()
}

// ---------------------------------------------------------------------
// Q9: σ(part) ⋈ supplier ⋈ partsupp ⋈ lineitem ⋈ orders ⋈ nation
//     → Γ(nation, year; Σ profit)
// ---------------------------------------------------------------------

type q9Part struct{ key uint64 }

type q9Supp struct {
	key    uint64 // s_suppkey
	nation uint64
}

type q9PS struct {
	key  uint64 // pack32(partkey, suppkey)
	cost int64
}

type q9Line struct {
	key    uint64 // l_orderkey
	nation uint64
	amount int64 // scale 4
}

type q9Group struct {
	key    uint64 // pack32(year, nation)
	profit int64
}

// Q9Ctx executes TPC-H Q9.
func Q9Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.Q9Result {
	w := workers(nWorkers)
	part := db.Rel("part")
	pnames := part.String("p_name")
	pkeys := part.Int32("p_partkey")
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snation := supp.Int32("s_nationkey")
	ps := db.Rel("partsupp")
	pspk := ps.Int32("ps_partkey")
	pssk := ps.Int32("ps_suppkey")
	pscost := ps.Numeric("ps_supplycost")
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	odate := ord.Date("o_orderdate")
	needle := []byte(queries.Q9Color)

	htPart := hashtable.New(1, w)
	htSupp := hashtable.New(2, w)
	htPS := hashtable.New(2, w)
	htLine := hashtable.New(3, w)
	dispPart := exec.NewDispatcherCtx(ctx, part.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispPS := exec.NewDispatcherCtx(ctx, ps.Rows(), 0)
	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 3)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q9Result, w)

	exec.Parallel(w, func(wid int) {
		// Pipeline 1: scan part, filter name, build HT_part.
		psh := htPart.Shard(wid)
		for {
			m, ok := dispPart.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if bytes.Contains(pnames.Get(i), needle) {
					key := uint64(uint32(pkeys[i]))
					_, p := psh.Alloc(htPart, Hash(key))
					(*q9Part)(p).key = key
				}
			}
		}
		buildBarrier(htPart, bar, wid)

		// Pipeline 2: scan supplier, build HT_supp.
		ssh := htSupp.Shard(wid)
		for {
			m, ok := dispSupp.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				key := uint64(uint32(skeys[i]))
				_, p := ssh.Alloc(htSupp, Hash(key))
				e := (*q9Supp)(p)
				e.key = key
				e.nation = uint64(uint32(snation[i]))
			}
		}
		buildBarrier(htSupp, bar, wid)

		// Pipeline 3: scan partsupp, probe HT_part, build HT_ps.
		pssh := htPS.Shard(wid)
		for {
			m, ok := dispPS.Next()
			if !ok {
				break
			}
		psups:
			for i := m.Begin; i < m.End; i++ {
				pk := uint64(uint32(pspk[i]))
				h := Hash(pk)
				for ref := htPart.Lookup(h); ref != 0; ref = htPart.Next(ref) {
					if htPart.Hash(ref) == h && (*q9Part)(htPart.Payload(ref)).key == pk {
						key := pack32(uint32(pspk[i]), uint32(pssk[i]))
						_, p := pssh.Alloc(htPS, Hash(key))
						e := (*q9PS)(p)
						e.key = key
						e.cost = int64(pscost[i])
						continue psups
					}
				}
			}
		}
		buildBarrier(htPS, bar, wid)

		// Pipeline 4: scan lineitem, probe HT_part, HT_ps, HT_supp,
		// build HT_line keyed by l_orderkey.
		lish := htLine.Shard(wid)
		for {
			m, ok := dispLine.Next()
			if !ok {
				break
			}
		lines:
			for i := m.Begin; i < m.End; i++ {
				pk := uint64(uint32(lpk[i]))
				h := Hash(pk)
				for ref := htPart.Lookup(h); ref != 0; ref = htPart.Next(ref) {
					if htPart.Hash(ref) == h && (*q9Part)(htPart.Payload(ref)).key == pk {
						// Part qualifies: fetch supply cost.
						psKey := pack32(uint32(lpk[i]), uint32(lsk[i]))
						psh2 := Hash(psKey)
						var cost int64
						for pref := htPS.Lookup(psh2); pref != 0; pref = htPS.Next(pref) {
							if htPS.Hash(pref) == psh2 {
								e := (*q9PS)(htPS.Payload(pref))
								if e.key == psKey {
									cost = e.cost
									goto haveCost
								}
							}
						}
						continue lines // no partsupp row (cannot happen on valid data)
					haveCost:
						sk := uint64(uint32(lsk[i]))
						sh2 := Hash(sk)
						for sref := htSupp.Lookup(sh2); sref != 0; sref = htSupp.Next(sref) {
							if htSupp.Hash(sref) == sh2 {
								se := (*q9Supp)(htSupp.Payload(sref))
								if se.key == sk {
									key := uint64(uint32(lok[i]))
									_, p := lish.Alloc(htLine, Hash(key))
									le := (*q9Line)(p)
									le.key = key
									le.nation = se.nation
									le.amount = int64(lext[i])*(100-int64(ldisc[i])) - cost*int64(lqty[i])
									continue lines
								}
							}
						}
						continue lines
					}
				}
			}
		}
		buildBarrier(htLine, bar, wid)

		// Pipeline 5: scan orders, probe HT_line (multi-match), aggregate
		// profit by (year, nation).
		local := hashtable.New(2, 1)
		local.Prepare(preAggCapacity)
		lsh := local.Shard(0)
		for {
			m, ok := dispOrd.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				ok2 := uint64(uint32(okeys[i]))
				h := Hash(ok2)
				ref := htLine.Lookup(h)
				if ref == 0 {
					continue
				}
				year := uint32(odate[i].Year())
				for ; ref != 0; ref = htLine.Next(ref) {
					if htLine.Hash(ref) != h {
						continue
					}
					le := (*q9Line)(htLine.Payload(ref))
					if le.key != ok2 {
						continue
					}
					gkey := pack32(year, uint32(le.nation))
					gh := Hash(gkey)
					amount := le.amount
					found := false
					for gref := local.Lookup(gh); gref != 0; gref = local.Next(gref) {
						if local.Hash(gref) == gh {
							g := (*q9Group)(local.Payload(gref))
							if g.key == gkey {
								g.profit += amount
								found = true
								break
							}
						}
					}
					if found {
						continue
					}
					if local.Rows() < preAggCapacity {
						gref, p := lsh.Alloc(local, gh)
						g := (*q9Group)(p)
						g.key = gkey
						g.profit = amount
						local.Insert(gref, gh)
					} else {
						row := spill.AppendRow(wid, hashtable.PartitionOf(gh, aggPartitions))
						row[0] = gh
						row[1] = gkey
						row[2] = uint64(amount)
					}
				}
			}
		}
		local.ForEach(func(ref hashtable.Ref) {
			g := (*q9Group)(local.Payload(ref))
			h := local.Hash(ref)
			row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
			row[0] = h
			row[1] = g.key
			row[2] = uint64(g.profit)
		})
		bar.Wait(nil)

		// Pipeline 6: per-partition merge.
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			p := pm.Begin
			merged := hashtable.New(2, 1)
			merged.Prepare(spill.PartitionCount(p))
			msh := merged.Shard(0)
			spill.PartitionRows(p, func(row []uint64) {
				h, key := row[0], row[1]
				for ref := merged.Lookup(h); ref != 0; ref = merged.Next(ref) {
					if merged.Hash(ref) == h {
						g := (*q9Group)(merged.Payload(ref))
						if g.key == key {
							g.profit += int64(row[2])
							return
						}
					}
				}
				ref, ptr := msh.Alloc(merged, h)
				g := (*q9Group)(ptr)
				g.key = key
				g.profit = int64(row[2])
				merged.Insert(ref, h)
			})
			merged.ForEach(func(ref hashtable.Ref) {
				g := (*q9Group)(merged.Payload(ref))
				results[wid] = append(results[wid], queries.Q9Row{
					Nation: int32(hi32(g.key)),
					Year:   int32(lo32(g.key)),
					Profit: g.profit,
				})
			})
		}
	})

	var out queries.Q9Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ9(out)
	return out
}

// ---------------------------------------------------------------------
// Q18: Γ(lineitem by orderkey) → HAVING → ⋈ orders ⋈ customer → top-100
// ---------------------------------------------------------------------

type q18Group struct {
	key    uint64 // l_orderkey
	sumQty int64  // scale 2
}

type q18Big struct {
	key    uint64 // orderkey
	sumQty int64
}

type q18Match struct {
	key        uint64 // c_custkey
	ordDate    uint64 // pack32(orderkey, orderdate)
	totalPrice int64
	sumQty     int64
}

// Q18Ctx executes TPC-H Q18.
func Q18Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.Q18Result {
	w := workers(nWorkers)
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	ototal := ord.Numeric("o_totalprice")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	minQty := int64(queries.Q18Quantity)

	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 3)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	htBig := hashtable.New(2, 1)
	htMatch := hashtable.New(4, w)
	qualifying := make([][]q18Big, w)
	tops := make([]*queries.TopK[queries.Q18Row], w)

	exec.Parallel(w, func(wid int) {
		// Pipeline 1: scan lineitem, pre-aggregate sum(qty) by orderkey.
		// This is the paper's high-cardinality aggregation: 1.5M·SF groups.
		local := hashtable.New(2, 1)
		local.Prepare(preAggCapacity)
		lsh := local.Shard(0)
		for {
			m, ok := dispLine.Next()
			if !ok {
				break
			}
		lines:
			for i := m.Begin; i < m.End; i++ {
				key := uint64(uint32(lok[i]))
				h := Hash(key)
				q := int64(lqty[i])
				for ref := local.Lookup(h); ref != 0; ref = local.Next(ref) {
					if local.Hash(ref) == h {
						g := (*q18Group)(local.Payload(ref))
						if g.key == key {
							g.sumQty += q
							continue lines
						}
					}
				}
				if local.Rows() < preAggCapacity {
					ref, p := lsh.Alloc(local, h)
					g := (*q18Group)(p)
					g.key = key
					g.sumQty = q
					local.Insert(ref, h)
				} else {
					row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
					row[0] = h
					row[1] = key
					row[2] = uint64(q)
				}
			}
		}
		local.ForEach(func(ref hashtable.Ref) {
			g := (*q18Group)(local.Payload(ref))
			h := local.Hash(ref)
			row := spill.AppendRow(wid, hashtable.PartitionOf(h, aggPartitions))
			row[0] = h
			row[1] = g.key
			row[2] = uint64(g.sumQty)
		})
		bar.Wait(nil)

		// Pipeline 2: merge partitions; groups exceeding the HAVING bound
		// qualify for the join side.
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			p := pm.Begin
			merged := hashtable.New(2, 1)
			merged.Prepare(spill.PartitionCount(p))
			msh := merged.Shard(0)
			spill.PartitionRows(p, func(row []uint64) {
				h, key := row[0], row[1]
				for ref := merged.Lookup(h); ref != 0; ref = merged.Next(ref) {
					if merged.Hash(ref) == h {
						g := (*q18Group)(merged.Payload(ref))
						if g.key == key {
							g.sumQty += int64(row[2])
							return
						}
					}
				}
				ref, ptr := msh.Alloc(merged, h)
				g := (*q18Group)(ptr)
				g.key = key
				g.sumQty = int64(row[2])
				merged.Insert(ref, h)
			})
			merged.ForEach(func(ref hashtable.Ref) {
				g := (*q18Group)(merged.Payload(ref))
				if g.sumQty > minQty {
					qualifying[wid] = append(qualifying[wid], q18Big{key: g.key, sumQty: g.sumQty})
				}
			})
		}
		// Build HT_big from the few qualifying groups (single worker).
		bar.Wait(func() {
			total := 0
			for _, q := range qualifying {
				total += len(q)
			}
			htBig.Prepare(total)
			bsh := htBig.Shard(0)
			for _, qs := range qualifying {
				for _, qg := range qs {
					h := Hash(qg.key)
					ref, p := bsh.Alloc(htBig, h)
					e := (*q18Big)(p)
					e.key = qg.key
					e.sumQty = qg.sumQty
					htBig.Insert(ref, h)
				}
			}
		})

		// Pipeline 3: scan orders, probe HT_big, build HT_match keyed by
		// custkey.
		msh := htMatch.Shard(wid)
		for {
			m, ok := dispOrd.Next()
			if !ok {
				break
			}
		ordersLoop:
			for i := m.Begin; i < m.End; i++ {
				key := uint64(uint32(okeys[i]))
				h := Hash(key)
				for ref := htBig.Lookup(h); ref != 0; ref = htBig.Next(ref) {
					if htBig.Hash(ref) == h {
						e := (*q18Big)(htBig.Payload(ref))
						if e.key == key {
							ck := uint64(uint32(ocust[i]))
							_, p := msh.Alloc(htMatch, Hash(ck))
							mrow := (*q18Match)(p)
							mrow.key = ck
							mrow.ordDate = pack32(uint32(okeys[i]), uint32(odate[i]))
							mrow.totalPrice = int64(ototal[i])
							mrow.sumQty = e.sumQty
							continue ordersLoop
						}
					}
				}
			}
		}
		buildBarrier(htMatch, bar, wid)

		// Pipeline 4: scan customer, probe HT_match, top-100.
		top := queries.NewTopK[queries.Q18Row](100, queries.Q18Less)
		tops[wid] = top
		for {
			m, ok := dispCust.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				ck := uint64(uint32(ckeys[i]))
				h := Hash(ck)
				for ref := htMatch.Lookup(h); ref != 0; ref = htMatch.Next(ref) {
					if htMatch.Hash(ref) == h {
						e := (*q18Match)(htMatch.Payload(ref))
						if e.key == ck {
							top.Offer(queries.Q18Row{
								CustKey:    int32(uint32(ck)),
								OrderKey:   int32(lo32(e.ordDate)),
								OrderDate:  types.Date(hi32(e.ordDate)),
								TotalPrice: types.Numeric(e.totalPrice),
								SumQty:     e.sumQty,
							})
						}
					}
				}
			}
		}
	})

	final := queries.NewTopK[queries.Q18Row](100, queries.Q18Less)
	for _, t := range tops {
		final.Merge(t)
	}
	return final.Sorted()
}

// Ensure struct layouts match the payload word counts passed to New.
var (
	_ = func() struct{} {
		if unsafe.Sizeof(q1Group{}) != 7*8 ||
			unsafe.Sizeof(q3Cust{}) != 1*8 ||
			unsafe.Sizeof(q3Order{}) != 2*8 ||
			unsafe.Sizeof(q3Group{}) != 3*8 ||
			unsafe.Sizeof(q9Part{}) != 1*8 ||
			unsafe.Sizeof(q9Supp{}) != 2*8 ||
			unsafe.Sizeof(q9PS{}) != 2*8 ||
			unsafe.Sizeof(q9Line{}) != 3*8 ||
			unsafe.Sizeof(q9Group{}) != 2*8 ||
			unsafe.Sizeof(q18Group{}) != 2*8 ||
			unsafe.Sizeof(q18Big{}) != 2*8 ||
			unsafe.Sizeof(q18Match{}) != 4*8 {
			panic("typer: payload struct size mismatch")
		}
		return struct{}{}
	}()
)
