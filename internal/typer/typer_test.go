package typer

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/ssb"
	"paradigms/internal/tpch"
)

func TestTPCHMatchesReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := tpch.Generate(sf, 0)
		for _, threads := range []int{1, 4} {
			if got, want := Q1(db, threads), queries.RefQ1(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
			if got, want := Q6(db, threads), queries.RefQ6(db); got != want {
				t.Errorf("sf=%v threads=%d Q6 = %d, want %d", sf, threads, got, want)
			}
			if got, want := Q3(db, threads), queries.RefQ3(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q3 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
			if got, want := Q9(db, threads), queries.RefQ9(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q9 mismatch:\n got %d rows want %d rows", sf, threads, len(got), len(want))
			}
			if got, want := Q18(db, threads), queries.RefQ18(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q18 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
		}
	}
}

func TestSSBMatchesReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := ssb.Generate(sf, 0)
		for _, threads := range []int{1, 4} {
			if got, want := SSBQ11(db, threads), queries.RefSSBQ11(db); got != want {
				t.Errorf("sf=%v threads=%d Q1.1 = %d, want %d", sf, threads, got, want)
			}
			if got, want := SSBQ21(db, threads), queries.RefSSBQ21(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q2.1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
			if got, want := SSBQ31(db, threads), queries.RefSSBQ31(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q3.1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
			if got, want := SSBQ41(db, threads), queries.RefSSBQ41(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d Q4.1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
		}
	}
}

func TestQ18PreAggOverflowPath(t *testing.T) {
	// At sf 0.05 lineitem has ~300K rows and ~75K distinct orderkeys,
	// well above preAggCapacity, so the spill path is exercised; this
	// test documents that expectation so a capacity change does not
	// silently skip the overflow path.
	db := tpch.Generate(0.05, 0)
	if db.Rel("orders").Rows() <= preAggCapacity {
		t.Fatalf("test premise broken: %d orders <= preAggCapacity %d",
			db.Rel("orders").Rows(), preAggCapacity)
	}
	got, want := Q18(db, 3), queries.RefQ18(db)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Q18 under spill pressure mismatch")
	}
}
