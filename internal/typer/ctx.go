package typer

import (
	"context"

	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// The *Ctx query variants (tpch.go, ssb.go) thread a context down to every
// morsel dispatcher so a canceled query drains out of its scan loops
// within one morsel (see exec.NewDispatcherCtx). The plain variants below
// are the uncancelable forms used by benchmarks and the repro driver; a
// query abandoned mid-flight by cancellation returns an incomplete result
// that callers must discard — internal/server does exactly that.

// Q1 executes TPC-H Q1 with the given number of worker threads.
func Q1(db *storage.Database, nWorkers int) queries.Q1Result {
	return Q1Ctx(context.Background(), db, nWorkers)
}

// Q6 executes TPC-H Q6.
func Q6(db *storage.Database, nWorkers int) queries.Q6Result {
	return Q6Ctx(context.Background(), db, nWorkers)
}

// Q3 executes TPC-H Q3.
func Q3(db *storage.Database, nWorkers int) queries.Q3Result {
	return Q3Ctx(context.Background(), db, nWorkers)
}

// Q9 executes TPC-H Q9.
func Q9(db *storage.Database, nWorkers int) queries.Q9Result {
	return Q9Ctx(context.Background(), db, nWorkers)
}

// Q18 executes TPC-H Q18.
func Q18(db *storage.Database, nWorkers int) queries.Q18Result {
	return Q18Ctx(context.Background(), db, nWorkers)
}

// Q5 executes TPC-H Q5.
func Q5(db *storage.Database, nWorkers int) queries.Q5Result {
	return Q5Ctx(context.Background(), db, nWorkers)
}

// SSBQ11 executes SSB Q1.1.
func SSBQ11(db *storage.Database, nWorkers int) queries.SSBQ11Result {
	return SSBQ11Ctx(context.Background(), db, nWorkers)
}

// SSBQ21 executes SSB Q2.1.
func SSBQ21(db *storage.Database, nWorkers int) queries.SSBQ21Result {
	return SSBQ21Ctx(context.Background(), db, nWorkers)
}

// SSBQ31 executes SSB Q3.1.
func SSBQ31(db *storage.Database, nWorkers int) queries.SSBQ31Result {
	return SSBQ31Ctx(context.Background(), db, nWorkers)
}

// SSBQ41 executes SSB Q4.1.
func SSBQ41(db *storage.Database, nWorkers int) queries.SSBQ41Result {
	return SSBQ41Ctx(context.Background(), db, nWorkers)
}
