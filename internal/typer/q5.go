package typer

import (
	"context"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// ---------------------------------------------------------------------
// Q5: σ(region=ASIA) nations folded to a LUT → σ(supplier) and
// σ(customer) ⋈ σ(orders) ⋈ lineitem with the c_nation = s_nation
// residual → Γ(nation; Σ revenue)
//
// Q5 is an extension beyond the paper's five-query subset: its Tectorwise
// twin is a declarative operator plan (internal/plan), while this side is
// hand-written fused code — that asymmetry is the paradigm contrast under
// study (§2). Both engines execute the same physical plan, with the tiny
// region ⋈ nation join folded into queries.Q5NationLUT.
// ---------------------------------------------------------------------

// Q5Ctx executes TPC-H Q5 with the given number of worker threads.
func Q5Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.Q5Result {
	w := workers(nWorkers)
	lut := queries.Q5NationLUT(db)
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snat := supp.Int32("s_nationkey")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	cnat := cust.Int32("c_nationkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lsk := li.Int32("l_suppkey")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	dateLo, dateHi := queries.Q5DateLo, queries.Q5DateHi

	htSupp := hashtable.New(2, w)
	htCust := hashtable.New(2, w)
	htOrd := hashtable.New(2, w)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 3)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q5Result, w)

	exec.Parallel(w, func(wid int) {
		// Pipeline 1: scan supplier, filter nation∈ASIA, build HT_supp.
		ssh := htSupp.Shard(wid)
		for {
			m, ok := dispSupp.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if !lut[snat[i]] {
					continue
				}
				key := uint64(uint32(skeys[i]))
				_, p := ssh.Alloc(htSupp, Hash(key))
				e := (*ssbKeyed)(p)
				e.key = key
				e.val = uint64(uint32(snat[i]))
			}
		}
		buildBarrier(htSupp, bar, wid)

		// Pipeline 2: scan customer, filter nation∈ASIA, build HT_cust.
		csh := htCust.Shard(wid)
		for {
			m, ok := dispCust.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if !lut[cnat[i]] {
					continue
				}
				key := uint64(uint32(ckeys[i]))
				_, p := csh.Alloc(htCust, Hash(key))
				e := (*ssbKeyed)(p)
				e.key = key
				e.val = uint64(uint32(cnat[i]))
			}
		}
		buildBarrier(htCust, bar, wid)

		// Pipeline 3: scan orders, filter date, probe HT_cust, build
		// HT_ord (orderkey → customer nation).
		osh := htOrd.Shard(wid)
		for {
			m, ok := dispOrd.Next()
			if !ok {
				break
			}
		orders:
			for i := m.Begin; i < m.End; i++ {
				if odate[i] < dateLo || odate[i] >= dateHi {
					continue
				}
				ck := uint64(uint32(ocust[i]))
				h := Hash(ck)
				for ref := htCust.Lookup(h); ref != 0; ref = htCust.Next(ref) {
					if htCust.Hash(ref) == h {
						ce := (*ssbKeyed)(htCust.Payload(ref))
						if ce.key == ck {
							key := uint64(uint32(okeys[i]))
							_, p := osh.Alloc(htOrd, Hash(key))
							oe := (*ssbKeyed)(p)
							oe.key = key
							oe.val = ce.val
							continue orders
						}
					}
				}
			}
		}
		buildBarrier(htOrd, bar, wid)

		// Pipeline 4: scan lineitem, probe HT_ord then HT_supp, keep
		// matches with c_nation = s_nation, pre-aggregate revenue.
		agg := newLocalAgg(spill, wid)
		for {
			m, ok := dispLine.Next()
			if !ok {
				break
			}
		lines:
			for i := m.Begin; i < m.End; i++ {
				ok2 := uint64(uint32(lok[i]))
				h := Hash(ok2)
				for ref := htOrd.Lookup(h); ref != 0; ref = htOrd.Next(ref) {
					if htOrd.Hash(ref) == h {
						oe := (*ssbKeyed)(htOrd.Payload(ref))
						if oe.key == ok2 {
							sk := uint64(uint32(lsk[i]))
							sh2 := Hash(sk)
							for sref := htSupp.Lookup(sh2); sref != 0; sref = htSupp.Next(sref) {
								if htSupp.Hash(sref) == sh2 {
									se := (*ssbKeyed)(htSupp.Payload(sref))
									if se.key == sk {
										if se.val == oe.val {
											rev := int64(lext[i]) * (100 - int64(ldisc[i]))
											agg.add(oe.val, rev)
										}
										continue lines
									}
								}
							}
							continue lines
						}
					}
				}
			}
		}
		agg.flush()
		bar.Wait(nil)

		// Pipeline 5: per-partition merge.
		ssbAggMerge(spill, partDisp, func(key uint64, sum int64) {
			results[wid] = append(results[wid], queries.Q5Row{
				Nation:  int32(uint32(key)),
				Revenue: sum,
			})
		})
	})

	var out queries.Q5Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ5(out)
	return out
}
