package typer

import (
	"context"
	"unsafe"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// Generated code for the Star Schema Benchmark subset (§4.4): Q1.1, Q2.1,
// Q3.1, Q4.1. All four are lineorder scans probing filtered dimension hash
// tables, followed by (for Q2.1–Q4.1) a small group-by.

type ssbDate struct {
	key  uint64 // d_datekey (days)
	year uint64
}

type ssbKeyed struct {
	key uint64
	val uint64 // nation / brand, depending on the dimension
}

type ssbGroup struct {
	key uint64
	sum int64
}

// buildDateHT builds a datekey→year hash table over the date dimension,
// optionally restricted to a year range.
func buildDateHT(db *storage.Database, ht *hashtable.Table, bar *exec.Barrier,
	disp *exec.Dispatcher, wid int, yearLo, yearHi int32) {
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	sh := ht.Shard(wid)
	for {
		m, ok := disp.Next()
		if !ok {
			break
		}
		for i := m.Begin; i < m.End; i++ {
			if dy[i] < yearLo || dy[i] > yearHi {
				continue
			}
			key := uint64(uint32(dk[i]))
			_, p := sh.Alloc(ht, Hash(key))
			e := (*ssbDate)(p)
			e.key = key
			e.year = uint64(uint32(dy[i]))
		}
	}
	buildBarrier(ht, bar, wid)
}

// ssbAgg is the shared fused two-phase aggregation tail used by Q2.1,
// Q3.1, Q4.1 (group key and sum already computed by the caller's probe
// pipeline; this merges partitions and emits (key, sum) pairs).
func ssbAggMerge(spill *hashtable.Spill, partDisp *exec.Dispatcher, emit func(key uint64, sum int64)) {
	for {
		pm, ok := partDisp.Next()
		if !ok {
			break
		}
		p := pm.Begin
		merged := hashtable.New(2, 1)
		merged.Prepare(spill.PartitionCount(p))
		msh := merged.Shard(0)
		spill.PartitionRows(p, func(row []uint64) {
			h, key := row[0], row[1]
			for ref := merged.Lookup(h); ref != 0; ref = merged.Next(ref) {
				if merged.Hash(ref) == h {
					g := (*ssbGroup)(merged.Payload(ref))
					if g.key == key {
						g.sum += int64(row[2])
						return
					}
				}
			}
			ref, ptr := msh.Alloc(merged, h)
			g := (*ssbGroup)(ptr)
			g.key = key
			g.sum = int64(row[2])
			merged.Insert(ref, h)
		})
		merged.ForEach(func(ref hashtable.Ref) {
			g := (*ssbGroup)(merged.Payload(ref))
			emit(g.key, g.sum)
		})
	}
}

// localAgg is the fused pre-aggregation step shared by the SSB queries.
type localAgg struct {
	ht    *hashtable.Table
	sh    *hashtable.Shard
	spill *hashtable.Spill
	wid   int
}

func newLocalAgg(spill *hashtable.Spill, wid int) *localAgg {
	ht := hashtable.New(2, 1)
	ht.Prepare(preAggCapacity)
	return &localAgg{ht: ht, sh: ht.Shard(0), spill: spill, wid: wid}
}

func (a *localAgg) add(key uint64, delta int64) {
	h := Hash(key)
	for ref := a.ht.Lookup(h); ref != 0; ref = a.ht.Next(ref) {
		if a.ht.Hash(ref) == h {
			g := (*ssbGroup)(a.ht.Payload(ref))
			if g.key == key {
				g.sum += delta
				return
			}
		}
	}
	if a.ht.Rows() < preAggCapacity {
		ref, p := a.sh.Alloc(a.ht, h)
		g := (*ssbGroup)(p)
		g.key = key
		g.sum = delta
		a.ht.Insert(ref, h)
		return
	}
	row := a.spill.AppendRow(a.wid, hashtable.PartitionOf(h, a.spill.Parts()))
	row[0] = h
	row[1] = key
	row[2] = uint64(delta)
}

func (a *localAgg) flush() {
	a.ht.ForEach(func(ref hashtable.Ref) {
		g := (*ssbGroup)(a.ht.Payload(ref))
		h := a.ht.Hash(ref)
		row := a.spill.AppendRow(a.wid, hashtable.PartitionOf(h, a.spill.Parts()))
		row[0] = h
		row[1] = g.key
		row[2] = uint64(g.sum)
	})
}

// SSBQ11Ctx executes SSB Q1.1.
func SSBQ11Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.SSBQ11Result {
	w := workers(nWorkers)
	lo := db.Rel("lineorder")
	od := lo.Date("lo_orderdate")
	disc := lo.Numeric("lo_discount")
	qty := lo.Numeric("lo_quantity")
	ext := lo.Numeric("lo_extendedprice")

	htDate := hashtable.New(2, w)
	dispDate := exec.NewDispatcherCtx(ctx, db.Rel("date").Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	bar := exec.NewBarrier(w)
	partial := make([]int64, w)

	exec.Parallel(w, func(wid int) {
		buildDateHT(db, htDate, bar, dispDate, wid, queries.SSBQ11Year, queries.SSBQ11Year)

		var sum int64
		for {
			m, ok := dispFact.Next()
			if !ok {
				break
			}
		facts:
			for i := m.Begin; i < m.End; i++ {
				if disc[i] < queries.SSBQ11DiscLo || disc[i] > queries.SSBQ11DiscHi || qty[i] >= queries.SSBQ11Qty {
					continue
				}
				key := uint64(uint32(od[i]))
				h := Hash(key)
				for ref := htDate.Lookup(h); ref != 0; ref = htDate.Next(ref) {
					if htDate.Hash(ref) == h && (*ssbDate)(htDate.Payload(ref)).key == key {
						sum += int64(ext[i]) * int64(disc[i])
						continue facts
					}
				}
			}
		}
		partial[wid] = sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return queries.SSBQ11Result(total)
}

// SSBQ21Ctx executes SSB Q2.1.
func SSBQ21Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.SSBQ21Result {
	w := workers(nWorkers)
	part := db.Rel("part")
	pk := part.Int32("p_partkey")
	cat := part.Int32("p_category")
	brand := part.Int32("p_brand1")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	lo := db.Rel("lineorder")
	lopk := lo.Int32("lo_partkey")
	losk := lo.Int32("lo_suppkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")

	htPart := hashtable.New(2, w)
	htSupp := hashtable.New(1, w)
	htDate := hashtable.New(2, w)
	dispPart := exec.NewDispatcherCtx(ctx, part.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispDate := exec.NewDispatcherCtx(ctx, db.Rel("date").Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 3)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.SSBQ21Result, w)

	exec.Parallel(w, func(wid int) {
		// Build HT_part(category = MFGR#12 → brand).
		psh := htPart.Shard(wid)
		for {
			m, ok := dispPart.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if cat[i] == queries.SSBQ21Categ {
					key := uint64(uint32(pk[i]))
					_, p := psh.Alloc(htPart, Hash(key))
					e := (*ssbKeyed)(p)
					e.key = key
					e.val = uint64(uint32(brand[i]))
				}
			}
		}
		buildBarrier(htPart, bar, wid)

		// Build HT_supp(region = AMERICA).
		ssh := htSupp.Shard(wid)
		for {
			m, ok := dispSupp.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if sregion[i] == queries.SSBQ21Region {
					key := uint64(uint32(sk[i]))
					_, p := ssh.Alloc(htSupp, Hash(key))
					(*q9Part)(p).key = key
				}
			}
		}
		buildBarrier(htSupp, bar, wid)

		buildDateHT(db, htDate, bar, dispDate, wid, -1<<31+1, 1<<31-1)

		// Probe pipeline + pre-aggregation by (year, brand).
		agg := newLocalAgg(spill, wid)
		for {
			m, ok := dispFact.Next()
			if !ok {
				break
			}
		facts:
			for i := m.Begin; i < m.End; i++ {
				pkey := uint64(uint32(lopk[i]))
				ph := Hash(pkey)
				for ref := htPart.Lookup(ph); ref != 0; ref = htPart.Next(ref) {
					if htPart.Hash(ref) == ph {
						pe := (*ssbKeyed)(htPart.Payload(ref))
						if pe.key == pkey {
							skey := uint64(uint32(losk[i]))
							sh2 := Hash(skey)
							for sref := htSupp.Lookup(sh2); sref != 0; sref = htSupp.Next(sref) {
								if htSupp.Hash(sref) == sh2 && (*q9Part)(htSupp.Payload(sref)).key == skey {
									dkey := uint64(uint32(lod[i]))
									dh := Hash(dkey)
									for dref := htDate.Lookup(dh); dref != 0; dref = htDate.Next(dref) {
										if htDate.Hash(dref) == dh {
											de := (*ssbDate)(htDate.Payload(dref))
											if de.key == dkey {
												gkey := pack32(uint32(de.year), uint32(pe.val))
												agg.add(gkey, int64(rev[i]))
												continue facts
											}
										}
									}
									continue facts
								}
							}
							continue facts
						}
					}
				}
			}
		}
		agg.flush()
		bar.Wait(nil)

		ssbAggMerge(spill, partDisp, func(key uint64, sum int64) {
			results[wid] = append(results[wid], queries.SSBQ21Row{
				Year:    int32(lo32(key)),
				Brand:   int32(hi32(key)),
				Revenue: sum,
			})
		})
	})

	var out queries.SSBQ21Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortSSBQ21(out)
	return out
}

// SSBQ31Ctx executes SSB Q3.1.
func SSBQ31Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.SSBQ31Result {
	w := workers(nWorkers)
	cust := db.Rel("customer")
	ck := cust.Int32("c_custkey")
	cregion := cust.Int32("c_region")
	cnation := cust.Int32("c_nation")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	snation := supp.Int32("s_nation")
	lo := db.Rel("lineorder")
	lock := lo.Int32("lo_custkey")
	losk := lo.Int32("lo_suppkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")

	htCust := hashtable.New(2, w)
	htSupp := hashtable.New(2, w)
	htDate := hashtable.New(2, w)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispDate := exec.NewDispatcherCtx(ctx, db.Rel("date").Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 3)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.SSBQ31Result, w)

	exec.Parallel(w, func(wid int) {
		csh := htCust.Shard(wid)
		for {
			m, ok := dispCust.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if cregion[i] == queries.SSBQ31Region {
					key := uint64(uint32(ck[i]))
					_, p := csh.Alloc(htCust, Hash(key))
					e := (*ssbKeyed)(p)
					e.key = key
					e.val = uint64(uint32(cnation[i]))
				}
			}
		}
		buildBarrier(htCust, bar, wid)

		ssh := htSupp.Shard(wid)
		for {
			m, ok := dispSupp.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if sregion[i] == queries.SSBQ31Region {
					key := uint64(uint32(sk[i]))
					_, p := ssh.Alloc(htSupp, Hash(key))
					e := (*ssbKeyed)(p)
					e.key = key
					e.val = uint64(uint32(snation[i]))
				}
			}
		}
		buildBarrier(htSupp, bar, wid)

		buildDateHT(db, htDate, bar, dispDate, wid, queries.SSBQ31YearLo, queries.SSBQ31YearHi)

		agg := newLocalAgg(spill, wid)
		for {
			m, ok := dispFact.Next()
			if !ok {
				break
			}
		facts:
			for i := m.Begin; i < m.End; i++ {
				ckey := uint64(uint32(lock[i]))
				chh := Hash(ckey)
				for cref := htCust.Lookup(chh); cref != 0; cref = htCust.Next(cref) {
					if htCust.Hash(cref) == chh {
						ce := (*ssbKeyed)(htCust.Payload(cref))
						if ce.key == ckey {
							skey := uint64(uint32(losk[i]))
							shh := Hash(skey)
							for sref := htSupp.Lookup(shh); sref != 0; sref = htSupp.Next(sref) {
								if htSupp.Hash(sref) == shh {
									se := (*ssbKeyed)(htSupp.Payload(sref))
									if se.key == skey {
										dkey := uint64(uint32(lod[i]))
										dh := Hash(dkey)
										for dref := htDate.Lookup(dh); dref != 0; dref = htDate.Next(dref) {
											if htDate.Hash(dref) == dh {
												de := (*ssbDate)(htDate.Payload(dref))
												if de.key == dkey {
													// Group key packs (c_nation, s_nation, year):
													// 5 bits + 5 bits + 32 bits.
													gkey := uint64(ce.val)<<40 | uint64(se.val)<<32 | uint64(uint32(de.year))
													agg.add(gkey, int64(rev[i]))
													continue facts
												}
											}
										}
										continue facts
									}
								}
							}
							continue facts
						}
					}
				}
			}
		}
		agg.flush()
		bar.Wait(nil)

		ssbAggMerge(spill, partDisp, func(key uint64, sum int64) {
			results[wid] = append(results[wid], queries.SSBQ31Row{
				CNation: int32(key >> 40 & 0xff),
				SNation: int32(key >> 32 & 0xff),
				Year:    int32(uint32(key)),
				Revenue: sum,
			})
		})
	})

	var out queries.SSBQ31Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortSSBQ31(out)
	return out
}

// SSBQ41Ctx executes SSB Q4.1.
func SSBQ41Ctx(ctx context.Context, db *storage.Database, nWorkers int) queries.SSBQ41Result {
	w := workers(nWorkers)
	cust := db.Rel("customer")
	ck := cust.Int32("c_custkey")
	cregion := cust.Int32("c_region")
	cnation := cust.Int32("c_nation")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	part := db.Rel("part")
	pk := part.Int32("p_partkey")
	mfgr := part.Int32("p_mfgr")
	lo := db.Rel("lineorder")
	lock := lo.Int32("lo_custkey")
	losk := lo.Int32("lo_suppkey")
	lopk := lo.Int32("lo_partkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")
	cost := lo.Numeric("lo_supplycost")

	htCust := hashtable.New(2, w)
	htSupp := hashtable.New(1, w)
	htPart := hashtable.New(1, w)
	htDate := hashtable.New(2, w)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispPart := exec.NewDispatcherCtx(ctx, part.Rows(), 0)
	dispDate := exec.NewDispatcherCtx(ctx, db.Rel("date").Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	spill := hashtable.NewSpill(w, aggPartitions, 3)
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.SSBQ41Result, w)

	exec.Parallel(w, func(wid int) {
		csh := htCust.Shard(wid)
		for {
			m, ok := dispCust.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if cregion[i] == queries.SSBQ41Region {
					key := uint64(uint32(ck[i]))
					_, p := csh.Alloc(htCust, Hash(key))
					e := (*ssbKeyed)(p)
					e.key = key
					e.val = uint64(uint32(cnation[i]))
				}
			}
		}
		buildBarrier(htCust, bar, wid)

		ssh := htSupp.Shard(wid)
		for {
			m, ok := dispSupp.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if sregion[i] == queries.SSBQ41Region {
					key := uint64(uint32(sk[i]))
					_, p := ssh.Alloc(htSupp, Hash(key))
					(*q9Part)(p).key = key
				}
			}
		}
		buildBarrier(htSupp, bar, wid)

		psh := htPart.Shard(wid)
		for {
			m, ok := dispPart.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if mfgr[i] >= queries.SSBQ41MfgrLo && mfgr[i] <= queries.SSBQ41MfgrHi {
					key := uint64(uint32(pk[i]))
					_, p := psh.Alloc(htPart, Hash(key))
					(*q9Part)(p).key = key
				}
			}
		}
		buildBarrier(htPart, bar, wid)

		buildDateHT(db, htDate, bar, dispDate, wid, -1<<31+1, 1<<31-1)

		agg := newLocalAgg(spill, wid)
		for {
			m, ok := dispFact.Next()
			if !ok {
				break
			}
		facts:
			for i := m.Begin; i < m.End; i++ {
				ckey := uint64(uint32(lock[i]))
				chh := Hash(ckey)
				for cref := htCust.Lookup(chh); cref != 0; cref = htCust.Next(cref) {
					if htCust.Hash(cref) == chh {
						ce := (*ssbKeyed)(htCust.Payload(cref))
						if ce.key == ckey {
							skey := uint64(uint32(losk[i]))
							shh := Hash(skey)
							for sref := htSupp.Lookup(shh); sref != 0; sref = htSupp.Next(sref) {
								if htSupp.Hash(sref) == shh && (*q9Part)(htSupp.Payload(sref)).key == skey {
									pkey := uint64(uint32(lopk[i]))
									phh := Hash(pkey)
									for pref := htPart.Lookup(phh); pref != 0; pref = htPart.Next(pref) {
										if htPart.Hash(pref) == phh && (*q9Part)(htPart.Payload(pref)).key == pkey {
											dkey := uint64(uint32(lod[i]))
											dh := Hash(dkey)
											for dref := htDate.Lookup(dh); dref != 0; dref = htDate.Next(dref) {
												if htDate.Hash(dref) == dh {
													de := (*ssbDate)(htDate.Payload(dref))
													if de.key == dkey {
														gkey := pack32(uint32(de.year), uint32(ce.val))
														agg.add(gkey, int64(rev[i])-int64(cost[i]))
														continue facts
													}
												}
											}
											continue facts
										}
									}
									continue facts
								}
							}
							continue facts
						}
					}
				}
			}
		}
		agg.flush()
		bar.Wait(nil)

		ssbAggMerge(spill, partDisp, func(key uint64, sum int64) {
			results[wid] = append(results[wid], queries.SSBQ41Row{
				Year:    int32(lo32(key)),
				CNation: int32(hi32(key)),
				Profit:  sum,
			})
		})
	})

	var out queries.SSBQ41Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortSSBQ41(out)
	return out
}

var _ = func() struct{} {
	if unsafe.Sizeof(ssbDate{}) != 2*8 ||
		unsafe.Sizeof(ssbKeyed{}) != 2*8 ||
		unsafe.Sizeof(ssbGroup{}) != 2*8 {
		panic("typer: ssb payload struct size mismatch")
	}
	return struct{}{}
}()
