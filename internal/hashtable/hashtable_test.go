package hashtable

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// insertKV inserts key->value into shard 0 with the given hash function.
func insertKV(t *Table, hf func(uint64) uint64, key, value uint64) {
	ref, _ := t.Shard(0).Alloc(t, hf(key))
	t.SetWord(ref, 0, key)
	t.SetWord(ref, 1, value)
}

// lookupKV probes for key, comparing stored hash then key, as the engines do.
func lookupKV(t *Table, hf func(uint64) uint64, key uint64) (uint64, bool) {
	h := hf(key)
	for ref := t.Lookup(h); ref != 0; ref = t.Next(ref) {
		if t.Hash(ref) == h && t.Word(ref, 0) == key {
			return t.Word(ref, 1), true
		}
	}
	return 0, false
}

func TestBuildAndProbeSingleThread(t *testing.T) {
	ht := New(2, 1)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		insertKV(ht, Murmur2, i*3, i)
	}
	ht.Finalize()
	if ht.Rows() != n {
		t.Fatalf("Rows = %d", ht.Rows())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := lookupKV(ht, Murmur2, i*3)
		if !ok || v != i {
			t.Fatalf("lookup %d = %d,%v", i*3, v, ok)
		}
	}
	// Misses.
	for i := uint64(0); i < n; i++ {
		if _, ok := lookupKV(ht, Murmur2, i*3+1); ok {
			t.Fatalf("false positive for %d", i*3+1)
		}
	}
}

func TestAgainstMapOracleProperty(t *testing.T) {
	f := func(keys []uint64, probes []uint64) bool {
		oracle := make(map[uint64]uint64)
		ht := New(2, 1)
		for i, k := range keys {
			if _, dup := oracle[k]; dup {
				continue
			}
			oracle[k] = uint64(i)
			insertKV(ht, CRC, k, uint64(i))
		}
		ht.Finalize()
		for k, want := range oracle {
			got, ok := lookupKV(ht, CRC, k)
			if !ok || got != want {
				return false
			}
		}
		for _, p := range probes {
			_, want := oracle[p]
			_, got := lookupKV(ht, CRC, p)
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateKeysChain(t *testing.T) {
	// Join tables store duplicates (e.g. Q9's lineitem-side build keyed by
	// orderkey); all must be reachable on the chain.
	ht := New(2, 1)
	const key, n = 42, 17
	for i := uint64(0); i < n; i++ {
		insertKV(ht, Murmur2, key, i)
	}
	insertKV(ht, Murmur2, 43, 99)
	ht.Finalize()
	seen := make(map[uint64]bool)
	h := Murmur2(key)
	for ref := ht.Lookup(h); ref != 0; ref = ht.Next(ref) {
		if ht.Hash(ref) == h && ht.Word(ref, 0) == key {
			seen[ht.Word(ref, 1)] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("found %d duplicates, want %d", len(seen), n)
	}
}

func TestParallelBuild(t *testing.T) {
	const shards = 8
	const perShard = 5000
	ht := New(1, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := ht.Shard(s)
			for i := 0; i < perShard; i++ {
				key := uint64(s*perShard + i)
				ref, _ := sh.Alloc(ht, Murmur2(key))
				ht.SetWord(ref, 0, key)
			}
		}(s)
	}
	wg.Wait()
	ht.Prepare(ht.Rows())
	wg = sync.WaitGroup{}
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ht.InsertShard(s)
		}(s)
	}
	wg.Wait()
	for key := uint64(0); key < shards*perShard; key++ {
		h := Murmur2(key)
		found := false
		for ref := ht.Lookup(h); ref != 0; ref = ht.Next(ref) {
			if ht.Hash(ref) == h && ht.Word(ref, 0) == key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d lost in parallel build", key)
		}
	}
}

func TestTagsFilterMisses(t *testing.T) {
	ht := New(2, 1)
	for i := uint64(0); i < 64; i++ {
		insertKV(ht, Murmur2, i, i)
	}
	ht.Finalize()
	// With a sparse table, most missing probes should be rejected by the
	// tag without walking the chain. Count how often Lookup returns 0 for
	// misses whose bucket is non-empty.
	tagRejections, bucketHits := 0, 0
	for i := uint64(1000); i < 9000; i++ {
		h := Murmur2(i)
		raw := ht.LookupDirWord(h)
		if raw&refMask == 0 {
			continue // empty bucket, tag irrelevant
		}
		bucketHits++
		if ht.Lookup(h) == 0 {
			tagRejections++
		}
	}
	if bucketHits == 0 {
		t.Skip("degenerate: no non-empty buckets probed")
	}
	// A single-bit-per-entry Bloom tag over ~1 entry per bucket should
	// reject the vast majority of misses.
	if float64(tagRejections) < 0.8*float64(bucketHits) {
		t.Errorf("tags rejected only %d/%d misses", tagRejections, bucketHits)
	}
	// And with tags disabled, the same probes must all walk the chain.
	ht.UseTags = false
	for i := uint64(1000); i < 1100; i++ {
		h := Murmur2(i)
		if raw := ht.LookupDirWord(h); raw&refMask != 0 && ht.Lookup(h) == 0 {
			t.Fatal("UseTags=false still rejecting")
		}
	}
}

func TestPrepareSizing(t *testing.T) {
	ht := New(1, 1)
	ht.Prepare(1000)
	if ht.DirSize() != 2048 {
		t.Errorf("DirSize = %d, want 2048", ht.DirSize())
	}
	ht.Prepare(0)
	if ht.DirSize() != 64 {
		t.Errorf("DirSize floor = %d, want 64", ht.DirSize())
	}
	ht.Prepare(1 << 20)
	if ht.DirSize() != 1<<21 {
		t.Errorf("DirSize = %d, want %d", ht.DirSize(), 1<<21)
	}
}

func TestReset(t *testing.T) {
	ht := New(2, 2)
	insertKV(ht, Murmur2, 7, 7)
	ht.Finalize()
	ht.Reset()
	if ht.Rows() != 0 || ht.DirSize() != 0 {
		t.Fatal("Reset did not clear")
	}
	insertKV(ht, Murmur2, 9, 1)
	ht.Finalize()
	if v, ok := lookupKV(ht, Murmur2, 9); !ok || v != 1 {
		t.Fatal("table unusable after Reset")
	}
	if _, ok := lookupKV(ht, Murmur2, 7); ok {
		t.Fatal("stale entry visible after Reset")
	}
}

func TestAllocN(t *testing.T) {
	ht := New(2, 1)
	sh := ht.Shard(0)
	base := sh.AllocN(ht, 5)
	for i := 0; i < 5; i++ {
		ref := Ref(uint64(base) + uint64(i*ht.RowWords()))
		ht.SetWord(ref, 0, uint64(i))
	}
	for i := 0; i < 5; i++ {
		ref := Ref(uint64(base) + uint64(i*ht.RowWords()))
		if ht.Word(ref, 0) != uint64(i) {
			t.Fatalf("AllocN row %d corrupt", i)
		}
	}
	if ht.Rows() != 5 {
		t.Fatalf("Rows = %d", ht.Rows())
	}
}

func TestHashFunctionsBasics(t *testing.T) {
	// Distinctness and determinism smoke tests.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 100000; i++ {
		h := Murmur2(i)
		if seen[h] {
			t.Fatalf("Murmur2 collision at %d", i)
		}
		seen[h] = true
		if Murmur2(i) != h {
			t.Fatal("Murmur2 not deterministic")
		}
	}
	seen = make(map[uint64]bool)
	collisions := 0
	for i := uint64(0); i < 100000; i++ {
		h := CRC(i)
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 2 {
		t.Fatalf("CRC collisions = %d on sequential keys", collisions)
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	check := func(name string, hf func(uint64) uint64) {
		rng := rand.New(rand.NewSource(1))
		totalFlips, samples := 0, 0
		for i := 0; i < 2000; i++ {
			k := rng.Uint64()
			bit := uint(rng.Intn(64))
			d := hf(k) ^ hf(k^(1<<bit))
			totalFlips += popcount(d)
			samples++
		}
		avg := float64(totalFlips) / float64(samples)
		if avg < 24 || avg > 40 {
			t.Errorf("%s avalanche: avg %.1f flipped bits, want ~32", name, avg)
		}
	}
	check("Murmur2", Murmur2)
	check("CRC", CRC)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMurmur2Bytes(t *testing.T) {
	if Murmur2Bytes([]byte("")) == Murmur2Bytes([]byte("x")) {
		t.Error("trivial collision")
	}
	// 8-byte strings should match the word variant fed the same bits.
	b := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var k uint64
	for i := 7; i >= 0; i-- {
		k = k<<8 | uint64(b[i])
	}
	// Not necessarily equal (length-seeded), but both deterministic.
	if Murmur2Bytes(b) != Murmur2Bytes([]byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Error("Murmur2Bytes not deterministic")
	}
	_ = k
	// Tail handling: lengths 1..7 all distinct.
	seen := make(map[uint64]bool)
	for l := 0; l <= 7; l++ {
		h := Murmur2Bytes(make([]byte, l))
		if seen[h] {
			t.Errorf("length-%d tail collides", l)
		}
		seen[h] = true
	}
}

func TestHashCombineOrderMatters(t *testing.T) {
	a, b := Murmur2(1), Murmur2(2)
	if HashCombine(a, b) == HashCombine(b, a) {
		t.Error("HashCombine symmetric; composite keys (x,y) and (y,x) would collide")
	}
}

func TestTagBits(t *testing.T) {
	for i := 0; i < 1000; i++ {
		tag := Tag(rand.Uint64())
		if tag&((1<<tagShift)-1) != 0 {
			t.Fatalf("tag %x intrudes into ref bits", tag)
		}
		if popcount(tag) != 1 {
			t.Fatalf("tag %x has %d bits set", tag, popcount(tag))
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(-1, 1) },
		func() { New(1, 0) },
		func() { New(1, MaxShards+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
