package hashtable

// Spill is the partition-spill buffer used by the shared two-phase
// parallel aggregation algorithm (§3.2: "A pre-aggregation handles heavy
// hitters and spills groups into partitions. Afterwards, a final step
// aggregates the groups in each partition.").
//
// During phase one every worker appends partial-aggregate rows (hash +
// group key + aggregate state) into its own per-partition buffers — no
// synchronization. During phase two, each partition is merged by exactly
// one worker, which reads that partition's rows across all workers.
// Both engines use this structure; only the loop structure around it
// differs.
type Spill struct {
	rowWords int
	parts    int
	bufs     [][][]uint64 // [worker][partition] -> packed rows
}

// NewSpill creates spill buffers for workers × parts partitions with rows
// of rowWords words (the first word of each row is, by convention, the
// group hash).
func NewSpill(workers, parts, rowWords int) *Spill {
	if workers <= 0 || parts <= 0 || rowWords <= 0 {
		panic("hashtable: invalid spill dimensions")
	}
	s := &Spill{rowWords: rowWords, parts: parts}
	s.bufs = make([][][]uint64, workers)
	for w := range s.bufs {
		s.bufs[w] = make([][]uint64, parts)
	}
	return s
}

// Parts returns the number of partitions.
func (s *Spill) Parts() int { return s.parts }

// RowWords returns the row width in words.
func (s *Spill) RowWords() int { return s.rowWords }

// AppendRow reserves one row in (worker, part) and returns the slice to
// fill. Only the owning worker may call this for its worker index.
func (s *Spill) AppendRow(worker, part int) []uint64 {
	buf := s.bufs[worker][part]
	n := len(buf)
	if n+s.rowWords > cap(buf) {
		grown := make([]uint64, n, 2*(n+s.rowWords)+64*s.rowWords)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:n+s.rowWords]
	s.bufs[worker][part] = buf
	return buf[n : n+s.rowWords]
}

// PartitionRows invokes fn for every row spilled to partition p, across
// all workers. Safe to call concurrently for distinct p after phase one.
func (s *Spill) PartitionRows(p int, fn func(row []uint64)) {
	for w := range s.bufs {
		buf := s.bufs[w][p]
		for i := 0; i+s.rowWords <= len(buf); i += s.rowWords {
			fn(buf[i : i+s.rowWords])
		}
	}
}

// PartitionCount returns the number of rows spilled to partition p.
func (s *Spill) PartitionCount(p int) int {
	n := 0
	for w := range s.bufs {
		n += len(s.bufs[w][p]) / s.rowWords
	}
	return n
}

// TotalRows returns the number of rows across all partitions.
func (s *Spill) TotalRows() int {
	n := 0
	for p := 0; p < s.parts; p++ {
		n += s.PartitionCount(p)
	}
	return n
}

// PartitionOf maps a group hash to a partition index. It uses high hash
// bits (52..63) so partitioning is independent of both the directory
// index (low bits) and the Bloom tag (bits 48..51).
func PartitionOf(hash uint64, parts int) int {
	return int(hash>>52) & (parts - 1)
}
