package hashtable

import (
	"testing"
	"testing/quick"
)

func TestSpillBasics(t *testing.T) {
	s := NewSpill(2, 4, 3)
	if s.Parts() != 4 || s.RowWords() != 3 {
		t.Fatal("dimensions")
	}
	row := s.AppendRow(0, 2)
	row[0], row[1], row[2] = 10, 20, 30
	row = s.AppendRow(1, 2)
	row[0], row[1], row[2] = 11, 21, 31
	if s.PartitionCount(2) != 2 || s.PartitionCount(0) != 0 {
		t.Fatalf("counts: %d %d", s.PartitionCount(2), s.PartitionCount(0))
	}
	var seen [][3]uint64
	s.PartitionRows(2, func(r []uint64) {
		seen = append(seen, [3]uint64{r[0], r[1], r[2]})
	})
	if len(seen) != 2 || seen[0] != [3]uint64{10, 20, 30} || seen[1] != [3]uint64{11, 21, 31} {
		t.Fatalf("rows: %v", seen)
	}
	if s.TotalRows() != 2 {
		t.Fatal("total")
	}
}

func TestSpillPanicsOnBadDims(t *testing.T) {
	for _, f := range []func(){
		func() { NewSpill(0, 1, 1) },
		func() { NewSpill(1, 0, 1) },
		func() { NewSpill(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestMergeSpillSumProperty: partition-merging with OpSum preserves the
// per-key totals no matter how rows are distributed across workers and
// partitions.
func TestMergeSpillSumProperty(t *testing.T) {
	f := func(keysRaw []uint8, valsRaw []uint8) bool {
		n := len(keysRaw)
		if len(valsRaw) < n {
			n = len(valsRaw)
		}
		const workers, parts = 3, 8
		s := NewSpill(workers, parts, 3)
		expect := map[uint64]uint64{}
		for i := 0; i < n; i++ {
			key := uint64(keysRaw[i] % 16)
			val := uint64(valsRaw[i])
			h := Murmur2(key)
			row := s.AppendRow(i%workers, PartitionOf(h, parts))
			row[0], row[1], row[2] = h, key, val
			expect[key] += val
		}
		got := map[uint64]uint64{}
		for p := 0; p < parts; p++ {
			MergeSpill(s, p, []AggOp{OpSum}, func(row []uint64) {
				if _, dup := got[row[1]]; dup {
					t.Errorf("key %d emitted from two partitions", row[1])
				}
				got[row[1]] += row[2]
			})
		}
		if len(got) != len(expect) {
			return false
		}
		for k, v := range expect {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSpillFirstOp(t *testing.T) {
	s := NewSpill(1, 2, 4)
	h := Murmur2(9)
	p := PartitionOf(h, 2)
	r := s.AppendRow(0, p)
	r[0], r[1], r[2], r[3] = h, 9, 5, 111 // sum=5, first=111
	r = s.AppendRow(0, p)
	r[0], r[1], r[2], r[3] = h, 9, 7, 222 // first must stay 111
	count := 0
	MergeSpill(s, p, []AggOp{OpSum, OpFirst}, func(row []uint64) {
		count++
		if row[1] != 9 || row[2] != 12 || row[3] != 111 {
			t.Fatalf("merged row = %v", row)
		}
	})
	if count != 1 {
		t.Fatalf("emitted %d rows", count)
	}
}

func TestMergeSpillRowWidthMismatchPanics(t *testing.T) {
	s := NewSpill(1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ops/width mismatch")
		}
	}()
	MergeSpill(s, 0, []AggOp{OpSum, OpSum}, func([]uint64) {})
}

func TestPartitionOfUsesHighBits(t *testing.T) {
	// Keys colliding in low bits (same directory bucket) must still
	// spread over partitions.
	parts := map[int]bool{}
	for i := uint64(0); i < 4096; i++ {
		parts[PartitionOf(i<<52, 64)] = true
	}
	if len(parts) < 32 {
		t.Errorf("only %d partitions used", len(parts))
	}
	for i := uint64(0); i < 1000; i++ {
		p := PartitionOf(Murmur2(i), 64)
		if p < 0 || p >= 64 {
			t.Fatalf("partition %d out of range", p)
		}
	}
}
