package hashtable

// AggOp describes how one aggregate word of a spilled partial row is
// combined during the partition-merge phase of the two-phase aggregation.
type AggOp uint8

// Aggregate merge operators.
const (
	OpSum   AggOp = iota // two's-complement addition (SUM, COUNT)
	OpFirst              // keep the first value seen (carried attributes)
	OpMin                // signed int64 minimum
	OpMax                // signed int64 maximum
)

// MergeSpill merges all partial rows of one spill partition. Rows have the
// layout [hash, key, agg0, agg1, ...] with len(ops) aggregate words. After
// merging, emit is called once per distinct key with the final row
// (same layout, hash included).
//
// Both engines run this identical algorithm for aggregation phase two; the
// paradigm under study differentiates phase one (per-tuple fused loops vs.
// per-vector primitives), which consumes the base table.
func MergeSpill(spill *Spill, partition int, ops []AggOp, emit func(row []uint64)) {
	merged := New(1+len(ops), 1)
	merged.Prepare(spill.PartitionCount(partition))
	sh := merged.Shard(0)
	rw := spill.RowWords()
	if rw != 2+len(ops) {
		panic("hashtable: MergeSpill ops inconsistent with spill row width")
	}
	spill.PartitionRows(partition, func(row []uint64) {
		h, key := row[0], row[1]
		for ref := merged.Lookup(h); ref != 0; ref = merged.Next(ref) {
			if merged.Hash(ref) == h && merged.Word(ref, 0) == key {
				for a, op := range ops {
					switch op {
					case OpSum:
						merged.SetWord(ref, 1+a, merged.Word(ref, 1+a)+row[2+a])
					case OpMin:
						if int64(row[2+a]) < int64(merged.Word(ref, 1+a)) {
							merged.SetWord(ref, 1+a, row[2+a])
						}
					case OpMax:
						if int64(row[2+a]) > int64(merged.Word(ref, 1+a)) {
							merged.SetWord(ref, 1+a, row[2+a])
						}
					}
				}
				return
			}
		}
		ref, _ := sh.Alloc(merged, h)
		merged.SetWord(ref, 0, key)
		for a := range ops {
			merged.SetWord(ref, 1+a, row[2+a])
		}
		merged.Insert(ref, h)
	})
	out := make([]uint64, rw)
	merged.ForEach(func(ref Ref) {
		out[0] = merged.Hash(ref)
		out[1] = merged.Word(ref, 0)
		for a := range ops {
			out[2+a] = merged.Word(ref, 1+a)
		}
		emit(out)
	})
}
