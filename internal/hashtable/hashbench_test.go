package hashtable

import "testing"

var sinkU64 uint64

func BenchmarkMurmur2(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += Murmur2(uint64(i))
	}
	sinkU64 = s
}

func BenchmarkCRC(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += CRC(uint64(i))
	}
	sinkU64 = s
}

func BenchmarkMix64(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += Mix64(uint64(i))
	}
	sinkU64 = s
}
