// Package hashtable implements the chaining hash table shared by both
// query engines, plus the Murmur2 and CRC-based hash functions the paper
// settles on (§4.1).
//
// Layout follows the paper (§3.2): the table is a power-of-two directory
// of 64-bit words; each word packs a 48-bit reference to the head of a
// collision chain together with a 16-bit Bloom-filter-like tag that is the
// OR of one tag bit per entry hashed into the bucket. A probe whose tag
// bit is absent skips the chain walk entirely, which makes selective joins
// cheap ("a probe miss usually does not have to traverse the collision
// list").
//
// Entries live in per-worker arenas of 64-bit words ("shards"), in row
// format for cache locality. A reference encodes (shard, word offset), so
// arenas may grow during the build phase without invalidating references.
// Directory insertion uses a CAS loop per bucket, enabling the
// morsel-driven parallel build both engines share (§6.1).
package hashtable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Ref references an entry row: 6 bits shard id, 42 bits word offset within
// the shard. The zero Ref is "no entry" (offset 0 is never allocated).
type Ref uint64

const (
	refOffsetBits = 42
	refOffsetMask = (1 << refOffsetBits) - 1
	refShardBits  = 6
	// MaxShards is the maximum number of per-worker arenas per table.
	MaxShards = 1 << refShardBits
	refMask   = (1 << (refOffsetBits + refShardBits)) - 1 // low 48 bits
	tagShift  = 48
)

func makeRef(shard, off uint64) Ref { return Ref(shard<<refOffsetBits | off) }

func (r Ref) shard() uint64  { return uint64(r) >> refOffsetBits }
func (r Ref) offset() uint64 { return uint64(r) & refOffsetMask }

// Tag derives the 16-bit Bloom tag for a hash: a single bit selected by
// hash bits not used for directory indexing (the directory uses low bits).
func Tag(hash uint64) uint64 { return 1 << (hash >> tagShift & 15) << tagShift }

// entry header: word 0 = next Ref, word 1 = hash, words 2.. = payload.
const headerWords = 2

// Shard is a per-worker arena. Alloc is not safe for concurrent use; each
// worker owns one shard.
type Shard struct {
	words []uint64
	rows  int
	id    uint64
}

// Table is the shared chaining hash table.
type Table struct {
	dir      []uint64
	mask     uint64
	rowWords int // headerWords + payload words
	shards   []*Shard
	// UseTags controls the 16-bit Bloom tag fast path; on by default.
	// The fig-tag ablation bench switches it off.
	UseTags bool
}

// New creates a table whose entries carry payloadWords 64-bit payload
// words, with arenas for numShards workers. Directory allocation is
// deferred to Finalize (join build) or Prepare (aggregation).
func New(payloadWords, numShards int) *Table {
	if numShards <= 0 || numShards > MaxShards {
		panic(fmt.Sprintf("hashtable: numShards %d out of range (1..%d)", numShards, MaxShards))
	}
	if payloadWords < 0 {
		panic("hashtable: negative payloadWords")
	}
	t := &Table{rowWords: headerWords + payloadWords, UseTags: true}
	t.shards = make([]*Shard, numShards)
	for i := range t.shards {
		// Word 0 of every shard is reserved so that Ref 0 means "nil".
		t.shards[i] = &Shard{words: make([]uint64, 1, 1+16*t.rowWords), id: uint64(i)}
	}
	return t
}

// Shard returns worker i's arena.
func (t *Table) Shard(i int) *Shard { return t.shards[i] }

// RowWords returns the full row width in words, including the header.
func (t *Table) RowWords() int { return t.rowWords }

// Alloc appends one row with the given hash to the shard and returns its
// reference plus a pointer to the payload (payloadWords words). The
// pointer is invalidated by the next Alloc on the same shard; the Ref is
// stable.
func (s *Shard) Alloc(t *Table, hash uint64) (Ref, unsafe.Pointer) {
	off := uint64(len(s.words))
	if off > refOffsetMask-uint64(t.rowWords) {
		panic("hashtable: shard arena overflow")
	}
	if need := int(off) + t.rowWords; need > cap(s.words) {
		grown := make([]uint64, len(s.words), 2*need)
		copy(grown, s.words)
		s.words = grown
	}
	s.words = s.words[:int(off)+t.rowWords]
	s.words[off+1] = hash
	s.words[off] = 0
	for i := headerWords; i < t.rowWords; i++ {
		s.words[off+uint64(i)] = 0
	}
	s.rows++
	return makeRef(s.id, off), unsafe.Pointer(&s.words[off+headerWords])
}

// AllocN appends n rows at once and returns the Ref of the first; rows are
// contiguous (stride RowWords). Used by vectorized build primitives to
// amortize the append.
func (s *Shard) AllocN(t *Table, n int) Ref {
	off := uint64(len(s.words))
	need := n * t.rowWords
	if off > refOffsetMask-uint64(need) {
		panic("hashtable: shard arena overflow")
	}
	s.words = append(s.words, make([]uint64, need)...)
	s.rows += n
	return makeRef(s.id, off)
}

// Rows returns the number of rows allocated across all shards.
func (t *Table) Rows() int {
	n := 0
	for _, s := range t.shards {
		n += s.rows
	}
	return n
}

// Prepare allocates the directory for an expected number of entries
// without inserting anything. Capacity is the next power of two that is at
// least twice the expectation (load factor ≤ 0.5, as in the paper's test
// system).
func (t *Table) Prepare(expected int) {
	if expected < 1 {
		expected = 1
	}
	size := 1 << uint(bits.Len(uint(2*expected-1)))
	if size < 64 {
		size = 64
	}
	t.dir = make([]uint64, size)
	t.mask = uint64(size - 1)
}

// DirSize returns the number of directory slots (0 before Prepare).
func (t *Table) DirSize() int { return len(t.dir) }

// Finalize sizes the directory for all allocated rows and inserts every
// row from every shard (single-threaded). For a parallel build, call
// Prepare(Rows()) after the materialization barrier and have each worker
// call InsertShard.
func (t *Table) Finalize() {
	t.Prepare(t.Rows())
	for i := range t.shards {
		t.InsertShard(i)
	}
}

// InsertShard inserts every row of shard i into the directory. Safe to
// call concurrently for distinct shards once Prepare has run.
func (t *Table) InsertShard(i int) {
	s := t.shards[i]
	rw := uint64(t.rowWords)
	for off := uint64(1); off < uint64(len(s.words)); off += rw {
		t.insertCAS(makeRef(uint64(i), off), s.words[off+1])
	}
}

// insertCAS pushes one entry onto its bucket chain with a CAS loop,
// accumulating its tag bit into the directory word.
func (t *Table) insertCAS(ref Ref, hash uint64) {
	slot := &t.dir[hash&t.mask]
	sh := t.shards[ref.shard()]
	next := &sh.words[ref.offset()]
	for {
		old := atomic.LoadUint64(slot)
		*next = old & refMask // chain to previous head (untagged)
		nw := uint64(ref) | (old &^ uint64(refMask)) | Tag(hash)
		if atomic.CompareAndSwapUint64(slot, old, nw) {
			return
		}
	}
}

// Insert pushes one entry without atomics. Only for single-threaded use
// (thread-local pre-aggregation tables, partition merge tables).
func (t *Table) Insert(ref Ref, hash uint64) {
	slot := &t.dir[hash&t.mask]
	old := *slot
	sh := t.shards[ref.shard()]
	sh.words[ref.offset()] = old & refMask
	*slot = uint64(ref) | (old &^ uint64(refMask)) | Tag(hash)
}

// Lookup returns the head of the bucket chain for hash, or 0 when the
// bucket is empty or the Bloom tag proves the key absent.
func (t *Table) Lookup(hash uint64) Ref {
	w := t.dir[hash&t.mask]
	if t.UseTags {
		if w&Tag(hash) == 0 {
			return 0
		}
	}
	return Ref(w & refMask)
}

// LookupDirWord returns the raw directory word for hash. Traced query
// twins use it so the microsimulator can observe the directory load.
func (t *Table) LookupDirWord(hash uint64) uint64 { return t.dir[hash&t.mask] }

// DirWordAddr returns the address of the directory word for hash, for
// memory tracing.
func (t *Table) DirWordAddr(hash uint64) unsafe.Pointer { return unsafe.Pointer(&t.dir[hash&t.mask]) }

// DecodeDirWord splits a directory word into chain head and tag check.
func DecodeDirWord(w, hash uint64, useTags bool) Ref {
	if useTags && w&Tag(hash) == 0 {
		return 0
	}
	return Ref(w & refMask)
}

// Next follows the collision chain.
func (t *Table) Next(ref Ref) Ref {
	return Ref(t.shards[ref.shard()].words[ref.offset()] & refMask)
}

// Hash returns the stored hash of an entry.
func (t *Table) Hash(ref Ref) uint64 {
	return t.shards[ref.shard()].words[ref.offset()+1]
}

// Payload returns a pointer to the entry's payload words.
func (t *Table) Payload(ref Ref) unsafe.Pointer {
	s := t.shards[ref.shard()]
	return unsafe.Pointer(&s.words[ref.offset()+headerWords])
}

// PayloadAddr is an alias of Payload for tracing readability.
func (t *Table) PayloadAddr(ref Ref) unsafe.Pointer { return t.Payload(ref) }

// EntryAddr returns the address of an entry's header (next pointer),
// for memory tracing by the micro-architectural simulator.
func (t *Table) EntryAddr(ref Ref) unsafe.Pointer {
	s := t.shards[ref.shard()]
	return unsafe.Pointer(&s.words[ref.offset()])
}

// SetHash stores the hash of an entry (used by vectorized builds that
// allocate rows in bulk with AllocN and scatter hashes afterwards).
func (t *Table) SetHash(ref Ref, h uint64) {
	t.shards[ref.shard()].words[ref.offset()+1] = h
}

// RefAt returns the i-th row after base within one AllocN block.
func (t *Table) RefAt(base Ref, i int) Ref {
	return Ref(uint64(base) + uint64(i*t.rowWords))
}

// Word returns payload word i of the entry.
func (t *Table) Word(ref Ref, i int) uint64 {
	s := t.shards[ref.shard()]
	return s.words[ref.offset()+headerWords+uint64(i)]
}

// Row returns the entry's payload words as one slice (length = payload
// width), resolving the shard and offset once — the generic executor's
// replacement for the struct-pointer casts of the hand-written
// pipelines. The slice aliases the shard arena: like Alloc's payload
// pointer it is invalidated by a later Alloc on the same shard (arena
// growth may reallocate), so use it before allocating again.
func (t *Table) Row(ref Ref) []uint64 {
	s := t.shards[ref.shard()]
	off := ref.offset() + headerWords
	return s.words[off : off+uint64(t.rowWords-headerWords)]
}

// SetWord stores payload word i of the entry.
func (t *Table) SetWord(ref Ref, i int, v uint64) {
	s := t.shards[ref.shard()]
	s.words[ref.offset()+headerWords+uint64(i)] = v
}

// ForEach visits every allocated row of every shard (insertion order
// within a shard). Used to flush thread-local pre-aggregation tables and
// to emit final groups.
func (t *Table) ForEach(fn func(ref Ref)) {
	rw := uint64(t.rowWords)
	for i, s := range t.shards {
		for off := uint64(1); off+rw <= uint64(len(s.words)); off += rw {
			fn(makeRef(uint64(i), off))
		}
	}
}

// Reset drops all rows and the directory, keeping shard capacity.
func (t *Table) Reset() {
	for _, s := range t.shards {
		s.words = s.words[:1]
		s.rows = 0
	}
	t.dir = nil
	t.mask = 0
}

// MemoryFootprint reports directory + arena bytes, used by the working-set
// experiments (Fig. 9).
func (t *Table) MemoryFootprint() int64 {
	total := int64(len(t.dir)) * 8
	for _, s := range t.shards {
		total += int64(cap(s.words)) * 8
	}
	return total
}

// ---------------------------------------------------------------------
// Hash functions (§4.1): Murmur2 for Tectorwise, CRC-combining for Typer.
// ---------------------------------------------------------------------

// Murmur2 is MurmurHash64A for a single 64-bit key, the hash function the
// paper selects for Tectorwise: more instructions than CRC but higher
// throughput when hashing is separated from probing.
func Murmur2(k uint64) uint64 {
	const m = 0xc6a4a7935bd1e995
	const seed = 0x8445d61a4e774912
	keyLen := uint64(8)
	h := uint64(seed) ^ keyLen*m
	k *= m
	k ^= k >> 47
	k *= m
	h ^= k
	h *= m
	h ^= h >> 47
	h *= m
	h ^= h >> 47
	return h
}

// Murmur2Bytes hashes an arbitrary byte string with MurmurHash64A.
func Murmur2Bytes(data []byte) uint64 {
	const m = 0xc6a4a7935bd1e995
	const seed = 0x8445d61a4e774912
	h := uint64(seed) ^ uint64(len(data))*m
	for len(data) >= 8 {
		k := binary.LittleEndian.Uint64(data)
		k *= m
		k ^= k >> 47
		k *= m
		h ^= k
		h *= m
		data = data[8:]
	}
	if len(data) > 0 {
		var tail uint64
		for i := len(data) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(data[i])
		}
		h ^= tail
		h *= m
	}
	h ^= h >> 47
	h *= m
	h ^= h >> 47
	return h
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC combines two 32-bit CRC32-C results over a 64-bit key into a 64-bit
// hash, the low-latency function the paper selects for Typer. The standard
// library uses the SSE4.2 CRC32 instruction on amd64, matching the paper's
// hardware-CRC setup.
func CRC(k uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], k)
	lo := crc32.Update(0x13579bdf, crcTable, buf[:])
	hi := crc32.Update(0x2468ace0, crcTable, buf[:])
	h := uint64(lo) | uint64(hi)<<32
	// Spread the combined value so that low directory bits depend on both
	// halves (one multiply, as in HyPer's CRC hash).
	return h * 0x2545f4914f6cdd1d
}

// Mix64 is MurmurHash3's 64-bit finalizer (fmix64): two multiplies and
// three xor-shifts with full avalanche.
//
// It stands in for the paper's CRC32-instruction hash in Typer
// (DESIGN.md S1/S7 discussion): portable Go cannot emit the raw CRC32
// instruction, and hash/crc32's per-call overhead on 8-byte keys is ~20×
// a multiplicative hash (see BenchmarkCRC), which would invert the
// engines' comparison for reasons unrelated to the execution paradigm.
// Mix64 preserves the property the paper attributes to CRC hashing:
// roughly half the instructions of Murmur2 and lower latency, which
// benefits the speculative pipelining of Typer's fused loops (§4.1).
func Mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// HashCombine mixes a second key's hash into an existing hash; both
// engines use it identically for composite keys.
func HashCombine(h, h2 uint64) uint64 {
	h ^= h2 + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	return h
}
