package proto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/prepcache"
	"paradigms/internal/server"
)

// Server serves the protocol over HTTP on behalf of a query service:
//
//	POST /v1/query   — execute one SQL text, streaming NDJSON frames
//	POST /v1/prepare — prepare a text (idempotent; warms the plan cache)
//	GET  /statsz     — aggregate + per-tenant service stats as JSON
//	GET  /metricsz   — service counters + latency histograms, Prometheus text
//	GET  /healthz    — liveness
//
// The zero value is not usable; construct with NewServer.
type Server struct {
	svc     *server.Service
	now     func() time.Time
	metrics *obs.Metrics
}

// NewServer wraps a query service. now is injectable for the golden
// conformance fixtures (nil = time.Now).
func NewServer(svc *server.Service, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	return &Server{svc: svc, now: now}
}

// WithMetrics attaches the shared histogram registry rendered by
// /metricsz (the same registry the facade's ObsEnd hook feeds), and
// returns the server for chaining. Without it /metricsz serves the
// service counters alone.
func (s *Server) WithMetrics(m *obs.Metrics) *Server {
	s.metrics = m
	return s
}

// Handler builds the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/prepare", s.handlePrepare)
	mux.HandleFunc("/statsz", s.handleStats)
	mux.HandleFunc("/metricsz", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return mux
}

// httpError writes a non-200 JSON error response. Overload rejections
// also carry the standard Retry-After header (whole seconds, rounded
// up) alongside the millisecond estimate in the body.
func httpError(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	if body.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((body.RetryAfterMs+999)/1000, 10))
	}
	w.WriteHeader(status)
	raw, _ := json.Marshal(body)
	w.Write(append(raw, '\n'))
}

// errCode classifies an execution error for the terminal frame.
func errCode(err error) string {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	default:
		return CodeExec
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, ErrorBody{Error: "POST only", Code: CodeBadRequest})
		return
	}
	q, err := DecodeQueryRequest(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	engine := q.Engine
	if engine == "" {
		if q.Prepared {
			engine = "auto"
		} else {
			engine = "typer"
		}
	}

	req := server.Req{Tenant: q.Tenant, Engine: engine}
	if q.Prepared {
		p, err := s.svc.Prepare(q.SQL)
		if err != nil {
			status, body := submitError(q.Tenant, err)
			httpError(w, status, body)
			return
		}
		req.Prep, req.Args = p, q.Args
	} else {
		req.Query = q.SQL
	}

	sink := &ndjsonSink{w: w}
	req.Sink = sink
	if q.Analyze {
		req.Collector = obs.NewCollector()
	}

	start := s.now()
	h, err := s.svc.SubmitReq(r.Context(), req)
	if err != nil {
		status, body := submitError(q.Tenant, err)
		httpError(w, status, body)
		return
	}
	_, err = h.Wait(r.Context())

	// All sink pushes happen before Wait returns, so reading the sink
	// state and writing the terminal frame are race-free.
	if err != nil && !sink.started() {
		// Failed before producing any frame (parse/plan/bind errors):
		// still a clean HTTP error, no partial stream.
		httpError(w, http.StatusUnprocessableEntity, ErrorBody{Error: err.Error(), Code: errCode(err)})
		return
	}
	if err != nil {
		sink.frame(Frame{Type: FrameError, Error: err.Error(), Code: errCode(err)})
		return
	}
	if req.Collector != nil {
		if pipes := req.Collector.Pipes(); len(pipes) > 0 {
			sink.frame(Frame{Type: FrameAnalyze, Pipes: pipes})
		}
	}
	n := sink.RowCount()
	elapsed := float64(s.now().Sub(start)) / float64(time.Millisecond)
	sink.frame(Frame{Type: FrameEnd, Engine: h.EngineUsed(), RowCount: &n, ElapsedMs: &elapsed})
}

// submitError maps a submission failure to its HTTP shape.
func submitError(tenant string, err error) (int, ErrorBody) {
	var ov *server.OverloadError
	switch {
	case errors.As(err, &ov):
		// A sub-millisecond backoff truncates to 0 ms, which omitempty
		// drops from the body and the header guard in httpError skips —
		// the client would see a 429 with no backoff at all and retry
		// immediately. Floor the wire estimate at 1 ms.
		ms := ov.RetryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		return http.StatusTooManyRequests, ErrorBody{
			Error: err.Error(), Code: CodeOverloaded,
			Tenant: ov.Tenant, Queued: ov.Queued,
			RetryAfterMs: ms,
		}
	case errors.Is(err, server.ErrClosed):
		return http.StatusServiceUnavailable, ErrorBody{Error: err.Error(), Code: CodeClosed, Tenant: tenant}
	default:
		return http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest, Tenant: tenant}
	}
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, ErrorBody{Error: "POST only", Code: CodeBadRequest})
		return
	}
	req, err := DecodePrepareRequest(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	p, err := s.svc.Prepare(req.SQL)
	if err != nil {
		status, body := submitError("", err)
		httpError(w, status, body)
		return
	}
	resp := PrepareResponse{SQL: req.SQL}
	if st, ok := p.Stmt().(*prepcache.Statement); ok {
		resp.NumParams = st.NumParams()
		for _, t := range st.ParamTypes() {
			resp.ParamTypes = append(resp.ParamTypes, t.Kind.String())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	raw, _ := json.Marshal(resp)
	w.Write(append(raw, '\n'))
}

// handleMetrics renders the service's counters — and, when a registry
// is attached, the per-engine latency histograms — in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("paradigms_queries_submitted_total", "Submissions assigned a query id.", st.Submitted)
	counter("paradigms_queries_served_total", "Successfully completed queries.", st.Served)
	counter("paradigms_queries_failed_total", "Queries that failed executing or validating.", st.Failed)
	counter("paradigms_queries_canceled_total", "Queries abandoned via context.", st.Canceled)
	counter("paradigms_queries_rejected_total", "Admission-queue overload rejections.", st.Rejected)
	counter("paradigms_queries_prepared_total", "Served queries that ran through the prepared-statement path.", st.PreparedServed)
	counter("paradigms_queries_streamed_total", "Served queries that streamed result batches.", st.StreamedServed)
	counter("paradigms_plan_cache_hits_total", "Prepare calls served from the plan cache.", st.PlanCacheHits)
	counter("paradigms_plan_cache_misses_total", "Prepare calls that parsed and planned.", st.PlanCacheMisses)
	counter("paradigms_plan_cache_evictions_total", "Plan cache LRU evictions.", st.PlanCacheEvictions)
	counter("paradigms_morsels_dispatched_total", "Morsel claims made by this service's queries.", uint64(st.MorselsDispatched))
	gauge("paradigms_queries_in_flight", "Queries currently executing.", int64(st.InFlight))
	gauge("paradigms_queries_queued", "Queries waiting for admission.", int64(st.Queued))
	engines := make([]string, 0, len(st.PerEngine))
	for e := range st.PerEngine {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	fmt.Fprintf(w, "# HELP paradigms_queries_engine_total Served queries by the engine that ran them.\n")
	fmt.Fprintf(w, "# TYPE paradigms_queries_engine_total counter\n")
	for _, e := range engines {
		fmt.Fprintf(w, "paradigms_queries_engine_total{engine=%q} %d\n", e, st.PerEngine[e])
	}
	if s.metrics != nil {
		s.metrics.WriteTo(w)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	raw, err := json.Marshal(s.svc.Stats())
	if err != nil {
		httpError(w, http.StatusInternalServerError, ErrorBody{Error: err.Error(), Code: CodeExec})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(raw, '\n'))
}

// ndjsonSink adapts an http.ResponseWriter to logical.RowSink: each
// batch becomes one rows frame, flushed immediately so rows reach the
// client while the scan is still running. The executors serialize
// SetCols/PushRows; the terminal frame is written by the handler after
// Wait, so only the `wrote` flag needs the mutex (read from the handler
// goroutine on the failed-before-start path).
type ndjsonSink struct {
	w http.ResponseWriter

	mu    sync.Mutex
	wrote bool
	rows  int64
	err   error
}

func (s *ndjsonSink) started() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wrote
}

// RowCount is the rows streamed so far. Exported so the service's
// ObsEnd hook can read the result cardinality through the generic
// `interface{ RowCount() int64 }` assertion on the sink.
func (s *ndjsonSink) RowCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// frame writes one frame line and flushes it down the wire.
func (s *ndjsonSink) frame(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if !s.wrote {
		s.w.Header().Set("Content-Type", "application/x-ndjson")
		s.wrote = true
	}
	raw, err := json.Marshal(f)
	if err == nil {
		_, err = s.w.Write(append(raw, '\n'))
	}
	if err != nil {
		s.err = err
		return err
	}
	if fl, ok := s.w.(http.Flusher); ok {
		fl.Flush()
	}
	return nil
}

// SetCols implements logical.RowSink.
func (s *ndjsonSink) SetCols(cols []logical.OutCol) error {
	return s.frame(Frame{Type: FrameCols, Cols: ColsOf(cols)})
}

// PushRows implements logical.RowSink.
func (s *ndjsonSink) PushRows(rows [][]int64) error {
	err := s.frame(Frame{Type: FrameRows, Rows: rows})
	if err == nil {
		s.mu.Lock()
		s.rows += int64(len(rows))
		s.mu.Unlock()
	}
	return err
}
