package proto_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"paradigms"
	"paradigms/internal/proto"
	"paradigms/internal/proto/client"
	"paradigms/internal/server"
)

// hammerQueries is the mixed corpus: short scans, grouped aggregates,
// and a three-way join — enough shape variety that mid-stream faults
// land in scans, merges, and projections alike.
var hammerQueries = []string{
	"SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
	"SELECT o_custkey, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY o_custkey",
	// Intentionally unplannable (column not in the SQL catalog): keeps
	// the clean pre-stream failure path (HTTP 422) in the mix.
	"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
	"SELECT l_orderkey, SUM(l_extendedprice) FROM customer, orders, lineitem WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND o_orderdate < date '1995-03-15' GROUP BY l_orderkey",
}

var hammerPrepared = []struct {
	text string
	args func(*rand.Rand) []string
}{
	{
		"SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE l_discount >= ? AND l_quantity < ?",
		func(r *rand.Rand) []string {
			return []string{[]string{"0.03", "0.05", "0.07"}[r.Intn(3)], []string{"10", "24", "40"}[r.Intn(3)]}
		},
	},
	{
		"SELECT l_orderkey, COUNT(*) FROM lineitem WHERE l_quantity < ? GROUP BY l_orderkey",
		func(r *rand.Rand) []string { return []string{[]string{"5", "20", "50"}[r.Intn(3)]} },
	},
}

// TestHammerFaultInjection floods the network front-end from concurrent
// clients mixing ad-hoc and prepared queries across engines, with
// random mid-stream disconnects and context cancellations, then checks
// the server's books balance exactly: every submission that got an id
// ends in exactly one of Served/Failed/Canceled, nothing in flight,
// nothing queued, and no goroutines leaked. Run under -race in CI.
func TestHammerFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	tpchDB := paradigms.GenerateTPCH(0.01, 0)
	svc := paradigms.NewService(tpchDB, nil, paradigms.ServiceOptions{
		MaxConcurrent:  4,
		MaxQueued:      64,
		SkipValidation: true,
	})
	ts := httptest.NewServer(proto.NewServer(svc, nil).Handler())

	before := runtime.NumGoroutine()

	const (
		clients       = 8
		perClient     = 60
		pCancel       = 3 // 1 in pCancel queries gets a tight deadline
		pDisconnect   = 3 // 1 in pDisconnect of the rest disconnects mid-stream
		engineChoices = 2
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(c)))
			cl := client.New(ts.URL, "hammer")
			cl.HTTP = ts.Client()
			for i := 0; i < perClient; i++ {
				engine := []string{"typer", "tectorwise"}[rnd.Intn(engineChoices)]
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rnd.Intn(pCancel) == 0 {
					// Deadline inside the query's runtime: lands while
					// queued, mid-scan, or mid-stream at random.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rnd.Intn(4000))*time.Microsecond)
				}

				var rows *client.Rows
				var err error
				if rnd.Intn(2) == 0 {
					p := hammerPrepared[rnd.Intn(len(hammerPrepared))]
					eng := engine
					if rnd.Intn(2) == 0 {
						eng = "auto"
					}
					rows, err = cl.QueryPrepared(ctx, eng, p.text, p.args(rnd)...)
				} else {
					rows, err = cl.Query(ctx, engine, hammerQueries[rnd.Intn(len(hammerQueries))])
				}
				if err == nil {
					if rnd.Intn(pDisconnect) == 0 {
						rows.Next() // maybe pull one batch...
						rows.Close() // ...then hang up mid-stream
					} else {
						_, err = rows.All()
					}
				}
				// Every error class is legitimate here — rejections,
				// cancellations, truncated streams. The books below are
				// the real assertion.
				_ = err
				cancel()
			}
		}(c)
	}
	wg.Wait()

	// Disconnected queries may still be draining server-side; wait for
	// the in-flight count to settle before closing the books.
	deadline := time.Now().Add(10 * time.Second)
	var st server.Stats
	for {
		st = svc.Stats()
		if st.InFlight == 0 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in flight %d queued %d after drain deadline", st.InFlight, st.Queued)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if st.Submitted == 0 {
		t.Fatal("no submissions recorded")
	}
	if got := st.Served + st.Failed + st.Canceled; got != st.Submitted {
		t.Errorf("books do not balance: submitted %d != served %d + failed %d + canceled %d = %d",
			st.Submitted, st.Served, st.Failed, st.Canceled, got)
	}
	if ht, ok := st.Tenants["hammer"]; !ok || ht.Served == 0 {
		t.Errorf("hammer tenant missing from per-tenant stats: %+v", st.Tenants)
	}

	ts.Close()
	svc.Close()

	// Goroutine leak check: give keep-alive and drain goroutines a
	// moment to exit, then compare against the pre-hammer baseline.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
