// Package proto is the query service's network protocol (an extension
// beyond the paper): HTTP/JSON requests with NDJSON-framed streaming
// responses. A query response is
// a sequence of frames, one JSON object per line — a "cols" frame with
// the output schema, zero or more "rows" frames flushed as the engines
// produce batches (each morsel-merge's rows reach the socket while the
// scan is still running), and exactly one terminal frame: "end" with
// summary counters or "error" carrying the failure. Admission
// rejections never start a stream: they are plain HTTP errors (429 with
// a Retry-After header for queue-depth backpressure), so clients can
// retry without parsing a partial body.
//
// Decoders are strict — unknown fields, malformed frames, and trailing
// garbage are errors — so the conformance fixtures in testdata pin the
// wire format and the fuzzers can chase decoder panics.
package proto

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"paradigms/internal/catalog"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
)

// Frame types of a streamed query response.
const (
	FrameCols    = "cols"
	FrameRows    = "rows"
	FrameAnalyze = "analyze"
	FrameEnd     = "end"
	FrameError   = "error"
)

// Error codes carried by error frames and HTTP error bodies.
const (
	CodeBadRequest = "bad_request" // malformed request or unknown engine
	CodeOverloaded = "overloaded"  // admission queue full; retry after backoff
	CodeClosed     = "closed"      // service is shutting down
	CodeExec       = "exec_error"  // the query failed while executing
	CodeCanceled   = "canceled"    // the query's context was canceled
)

// QueryRequest is the body of POST /v1/query. Exactly one SQL text per
// request; Args non-nil (with Prepared true) selects the
// prepared-statement path, binding one argument text per `?`
// placeholder.
type QueryRequest struct {
	// Tenant attributes the query for scheduling and stats
	// ("" = the server's default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Engine is "typer", "tectorwise", "hybrid", or — prepared only —
	// "auto". Empty defaults to "typer" for ad-hoc texts and "auto"
	// for prepared executions.
	Engine string `json:"engine,omitempty"`
	// SQL is the query text. Required.
	SQL string `json:"sql"`
	// Prepared selects the prepared-statement path: the text is
	// prepared (plan-cache hit after the first call per text) and
	// executed with Args bound to its placeholders.
	Prepared bool `json:"prepared,omitempty"`
	// Args are the placeholder bindings of a prepared execution.
	Args []string `json:"args,omitempty"`
	// Analyze instruments the execution with per-pipeline telemetry
	// (EXPLAIN ANALYZE over the wire): the response carries one extra
	// "analyze" frame, just before "end", with the observed per-pipeline
	// cardinalities and timings.
	Analyze bool `json:"analyze,omitempty"`
}

// Validate checks the decoded request's invariants.
func (q *QueryRequest) Validate() error {
	if strings.TrimSpace(q.SQL) == "" {
		return errors.New("proto: empty sql")
	}
	switch q.Engine {
	case "", "typer", "tectorwise", "hybrid":
	case "auto":
		if !q.Prepared {
			return errors.New(`proto: engine "auto" requires a prepared execution (adaptive routing lives on prepared statements)`)
		}
	default:
		return fmt.Errorf("proto: unknown engine %q (typer | tectorwise | hybrid | auto)", q.Engine)
	}
	if len(q.Args) > 0 && !q.Prepared {
		return errors.New("proto: args require prepared=true")
	}
	return nil
}

// DecodeQueryRequest strictly decodes one request body: unknown fields
// and trailing data are errors, and the request must validate.
func DecodeQueryRequest(r io.Reader) (*QueryRequest, error) {
	var q QueryRequest
	if err := decodeStrict(r, &q); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// PrepareRequest is the body of POST /v1/prepare.
type PrepareRequest struct {
	SQL string `json:"sql"`
}

// DecodePrepareRequest strictly decodes one prepare body.
func DecodePrepareRequest(r io.Reader) (*PrepareRequest, error) {
	var p PrepareRequest
	if err := decodeStrict(r, &p); err != nil {
		return nil, err
	}
	if strings.TrimSpace(p.SQL) == "" {
		return nil, errors.New("proto: empty sql")
	}
	return &p, nil
}

// PrepareResponse describes a prepared statement: its normalized text
// and placeholder signature. Preparing is idempotent — the statement is
// addressed by its text, so a later /v1/query with prepared=true hits
// the server's plan cache.
type PrepareResponse struct {
	SQL        string   `json:"sql"`
	NumParams  int      `json:"num_params"`
	ParamTypes []string `json:"param_types,omitempty"`
}

// Col is one output column of a result stream.
type Col struct {
	Name string `json:"name"`
	Type string `json:"type"`            // "int32" | "int64" | "numeric" | "date" | ...
	Scale int   `json:"scale,omitempty"` // decimal scale of numeric columns
}

// ColsOf renders the engine schema on the wire.
func ColsOf(cols []logical.OutCol) []Col {
	out := make([]Col, len(cols))
	for i, c := range cols {
		out[i] = Col{Name: c.Name, Type: c.Type.Kind.String(), Scale: c.Type.Scale}
	}
	return out
}

// KindOf parses a wire type name back to the catalog kind.
func KindOf(name string) (catalog.Kind, error) {
	for k := catalog.Int32; k <= catalog.String; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("proto: unknown column type %q", name)
}

// Frame is one line of a streamed query response. Which fields are
// populated depends on Type; DecodeFrame enforces the shape.
type Frame struct {
	Type string `json:"frame"`
	// cols
	Cols []Col `json:"cols,omitempty"`
	// rows
	Rows [][]int64 `json:"rows,omitempty"`
	// analyze (per-pipeline telemetry of an Analyze execution)
	Pipes []obs.PipeStat `json:"pipes,omitempty"`
	// end
	Engine    string   `json:"engine,omitempty"`
	RowCount  *int64   `json:"row_count,omitempty"`
	ElapsedMs *float64 `json:"elapsed_ms,omitempty"`
	// error
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// DecodeFrame strictly decodes and shape-checks one frame line.
func DecodeFrame(line []byte) (*Frame, error) {
	var f Frame
	dec := json.NewDecoder(strings.NewReader(string(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("proto: bad frame: %w", err)
	}
	if dec.More() {
		return nil, errors.New("proto: trailing data after frame")
	}
	switch f.Type {
	case FrameCols:
		if len(f.Cols) == 0 {
			return nil, errors.New("proto: cols frame without columns")
		}
		if f.Rows != nil || f.Error != "" || f.RowCount != nil || f.Pipes != nil {
			return nil, errors.New("proto: cols frame with extraneous fields")
		}
	case FrameRows:
		if len(f.Rows) == 0 {
			return nil, errors.New("proto: rows frame without rows")
		}
		if f.Cols != nil || f.Error != "" || f.RowCount != nil || f.Pipes != nil {
			return nil, errors.New("proto: rows frame with extraneous fields")
		}
	case FrameAnalyze:
		if len(f.Pipes) == 0 {
			return nil, errors.New("proto: analyze frame without pipes")
		}
		if f.Cols != nil || f.Rows != nil || f.Error != "" || f.RowCount != nil {
			return nil, errors.New("proto: analyze frame with extraneous fields")
		}
	case FrameEnd:
		if f.RowCount == nil || f.ElapsedMs == nil {
			return nil, errors.New("proto: end frame missing counters")
		}
		if f.Cols != nil || f.Rows != nil || f.Error != "" || f.Pipes != nil {
			return nil, errors.New("proto: end frame with extraneous fields")
		}
	case FrameError:
		if f.Error == "" || f.Code == "" {
			return nil, errors.New("proto: error frame missing error/code")
		}
		if f.Cols != nil || f.Rows != nil || f.RowCount != nil || f.Pipes != nil {
			return nil, errors.New("proto: error frame with extraneous fields")
		}
	default:
		return nil, fmt.Errorf("proto: unknown frame type %q", f.Type)
	}
	return &f, nil
}

// ErrorBody is the JSON body of every non-200 response. Overload
// rejections (HTTP 429) carry the scheduler's retry-after estimate both
// here (milliseconds) and in the standard Retry-After header (whole
// seconds, rounded up).
type ErrorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	Tenant       string `json:"tenant,omitempty"`
	Queued       int    `json:"queued,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// DecodeErrorBody strictly decodes one error body.
func DecodeErrorBody(r io.Reader) (*ErrorBody, error) {
	var e ErrorBody
	if err := decodeStrict(r, &e); err != nil {
		return nil, err
	}
	if e.Code == "" {
		return nil, errors.New("proto: error body without code")
	}
	return &e, nil
}

// decodeStrict decodes exactly one JSON value, rejecting unknown fields
// and trailing data.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("proto: bad request: %w", err)
	}
	if dec.More() {
		return errors.New("proto: trailing data after request")
	}
	return nil
}
