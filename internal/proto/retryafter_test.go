package proto

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"paradigms/internal/server"
)

// TestRetryAfterSubMillisecondFloor pins the 429 wire shape for a
// sub-millisecond backoff estimate. Without the floor, a 300µs
// suggestion truncates to retry_after_ms:0 — omitempty then drops the
// field from the body AND the Retry-After header guard skips the
// header, so the client sees no backoff at all. The floor guarantees
// every overload rejection carries a positive, actionable estimate.
func TestRetryAfterSubMillisecondFloor(t *testing.T) {
	cases := []struct {
		name    string
		backoff time.Duration
		wantMs  int64
	}{
		{"sub-millisecond", 300 * time.Microsecond, 1},
		{"zero", 0, 1},
		{"exact", 250 * time.Millisecond, 250},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ov := &server.OverloadError{Tenant: "hog", Queued: 3, RetryAfter: tc.backoff}
			status, body := submitError("hog", ov)
			if status != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429", status)
			}
			if body.RetryAfterMs != tc.wantMs {
				t.Fatalf("retry_after_ms = %d, want %d", body.RetryAfterMs, tc.wantMs)
			}
			rec := httptest.NewRecorder()
			httpError(rec, status, body)
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After header")
			}
		})
	}

	// Golden wire bytes for the sub-millisecond rejection: the body
	// carries retry_after_ms:1 and the header rounds up to one second.
	ov := &server.OverloadError{Tenant: "hog", Queued: 3, RetryAfter: 300 * time.Microsecond}
	status, body := submitError("hog", ov)
	rec := httptest.NewRecorder()
	httpError(rec, status, body)
	const want = `{"error":"server: tenant \"hog\" admission queue full (3 queued, retry after 300µs)","code":"overloaded","tenant":"hog","queued":3,"retry_after_ms":1}` + "\n"
	if got := rec.Body.String(); got != want {
		t.Errorf("wire bytes diverge:\ngot:  %q\nwant: %q", got, want)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After header = %q, want \"1\"", got)
	}
}
