package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRetryErrorFloorsBackoff: a 429 whose body lacks (or zeroes) the
// millisecond estimate — a legacy server with a sub-millisecond
// suggestion — must still decode to a positive RetryAfter, so retry
// loops sleeping on it cannot busy-wait.
func TestRetryErrorFloorsBackoff(t *testing.T) {
	bodies := map[string]string{
		"omitted": `{"error":"queue full","code":"overloaded","tenant":"t","queued":2}`,
		"zero":    `{"error":"queue full","code":"overloaded","tenant":"t","queued":2,"retry_after_ms":0}`,
		"normal":  `{"error":"queue full","code":"overloaded","tenant":"t","queued":2,"retry_after_ms":40}`,
	}
	wants := map[string]time.Duration{
		"omitted": time.Millisecond,
		"zero":    time.Millisecond,
		"normal":  40 * time.Millisecond,
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write([]byte(body + "\n"))
			}))
			defer ts.Close()
			c := New(ts.URL, "t")
			_, err := c.Query(context.Background(), "typer", "select 1")
			var re *RetryError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v, want *RetryError", err)
			}
			if re.RetryAfter != wants[name] {
				t.Errorf("RetryAfter = %v, want %v", re.RetryAfter, wants[name])
			}
		})
	}
}
