// Package client is the Go client of the query service's network
// protocol (internal/proto): it submits SQL over HTTP and decodes the
// streamed NDJSON frames incrementally, so callers iterate rows while
// the server is still producing them. The zero-dependency counterpart
// of a database/sql driver, used by cmd/serve's closed-loop driver and
// the serving test suites.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"paradigms/internal/obs"
	"paradigms/internal/proto"
)

// RetryError is a queue-depth rejection (HTTP 429): the server's
// scheduler estimated when capacity should free up.
type RetryError struct {
	Tenant     string
	Queued     int
	RetryAfter time.Duration
	Msg        string
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("server overloaded (tenant %q, %d queued): retry after %v", e.Tenant, e.Queued, e.RetryAfter)
}

// ServerError is any other non-200 response.
type ServerError struct {
	Status int
	Code   string
	Msg    string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server error (HTTP %d, %s): %s", e.Status, e.Code, e.Msg)
}

// QueryError is a failure reported by a terminal error frame —
// the query was admitted and (partially) executed before failing.
type QueryError struct {
	Code string
	Msg  string
}

func (e *QueryError) Error() string { return fmt.Sprintf("query failed (%s): %s", e.Code, e.Msg) }

// Client talks to one server. Safe for concurrent use.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Tenant attributes this client's queries ("" = server default).
	Tenant string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// New builds a client for the given base URL and tenant.
func New(base, tenant string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), Tenant: tenant}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.http().Do(req)
}

// decodeError turns a non-200 response into its typed error.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, err := proto.DecodeErrorBody(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return &ServerError{Status: resp.StatusCode, Code: "unknown", Msg: err.Error()}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Old servers could drop a sub-millisecond estimate from the
		// body entirely (omitempty); a zero backoff would turn retry
		// loops into busy-waiting. Floor it client-side too.
		ra := time.Duration(body.RetryAfterMs) * time.Millisecond
		if ra < time.Millisecond {
			ra = time.Millisecond
		}
		return &RetryError{
			Tenant: body.Tenant, Queued: body.Queued,
			RetryAfter: ra,
			Msg:        body.Error,
		}
	}
	return &ServerError{Status: resp.StatusCode, Code: body.Code, Msg: body.Error}
}

// Query submits one ad-hoc SQL text and returns the streaming row
// iterator. engine "" picks the server default. The caller must drain
// or Close the rows.
func (c *Client) Query(ctx context.Context, engine, sql string) (*Rows, error) {
	return c.do(ctx, proto.QueryRequest{Tenant: c.Tenant, Engine: engine, SQL: sql})
}

// QueryPrepared submits one prepared execution: the text is prepared
// server-side (plan-cache hit after the first call per text) and run
// with args bound to its placeholders. engine "" resolves to "auto".
func (c *Client) QueryPrepared(ctx context.Context, engine, sql string, args ...string) (*Rows, error) {
	return c.do(ctx, proto.QueryRequest{Tenant: c.Tenant, Engine: engine, SQL: sql, Prepared: true, Args: args})
}

// QueryAnalyze is Query with telemetry: the server instruments the
// execution and streams an extra analyze frame (per-pipeline observed
// vs estimated cardinalities and timings), readable via Rows.Pipes
// after the stream ends.
func (c *Client) QueryAnalyze(ctx context.Context, engine, sql string) (*Rows, error) {
	return c.do(ctx, proto.QueryRequest{Tenant: c.Tenant, Engine: engine, SQL: sql, Analyze: true})
}

func (c *Client) do(ctx context.Context, q proto.QueryRequest) (*Rows, error) {
	resp, err := c.post(ctx, "/v1/query", q)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	r := &Rows{body: resp.Body, sc: bufio.NewScanner(resp.Body)}
	r.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return r, nil
}

// Prepare validates and caches a statement server-side, returning its
// placeholder signature.
func (c *Client) Prepare(ctx context.Context, sql string) (*proto.PrepareResponse, error) {
	resp, err := c.post(ctx, "/v1/prepare", proto.PrepareRequest{SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var p proto.PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// Stats fetches /statsz as raw JSON.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &ServerError{Status: resp.StatusCode, Code: "unknown", Msg: "statsz failed"}
	}
	return io.ReadAll(resp.Body)
}

// Rows iterates a streamed result. Frames decode incrementally: Next
// returns each row as soon as its batch arrived, not when the query
// finished. After Next returns false, Err distinguishes completion from
// failure and Engine/RowCount/Elapsed report the end-frame summary.
type Rows struct {
	body io.ReadCloser
	sc   *bufio.Scanner

	cols  []proto.Col
	batch [][]int64
	idx   int

	pipes []obs.PipeStat
	end   *proto.Frame
	err   error
}

// Cols is the output schema (available after the first Next call, or
// immediately if the caller first calls Advance).
func (r *Rows) Cols() []proto.Col { return r.cols }

// Next advances to the next row, fetching frames as needed. It returns
// false at the end of the stream or on error (check Err).
func (r *Rows) Next() bool {
	for {
		if r.idx < len(r.batch) {
			r.idx++
			return true
		}
		if r.err != nil || r.end != nil {
			return false
		}
		if !r.advance() {
			return false
		}
	}
}

// advance decodes one frame, returning false when the stream is done
// (end frame, error frame, or transport failure).
func (r *Rows) advance() bool {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			r.err = err
		} else if r.end == nil {
			r.err = errors.New("client: stream truncated before end frame")
		}
		return false
	}
	line := r.sc.Bytes()
	if len(bytes.TrimSpace(line)) == 0 {
		return true
	}
	f, err := proto.DecodeFrame(line)
	if err != nil {
		r.err = err
		return false
	}
	switch f.Type {
	case proto.FrameCols:
		r.cols = f.Cols
	case proto.FrameRows:
		r.batch, r.idx = f.Rows, 0
	case proto.FrameAnalyze:
		r.pipes = f.Pipes
	case proto.FrameEnd:
		r.end = f
		return false
	case proto.FrameError:
		r.err = &QueryError{Code: f.Code, Msg: f.Error}
		return false
	}
	return true
}

// Row is the current row (valid until the next Next call).
func (r *Rows) Row() []int64 { return r.batch[r.idx-1] }

// Err is the stream's failure (nil after clean completion).
func (r *Rows) Err() error { return r.err }

// Engine is the backend that executed the query (valid after the
// stream ended cleanly).
func (r *Rows) Engine() string {
	if r.end == nil {
		return ""
	}
	return r.end.Engine
}

// Pipes is the per-pipeline telemetry of a QueryAnalyze execution
// (nil otherwise; valid after the stream ended cleanly).
func (r *Rows) Pipes() []obs.PipeStat { return r.pipes }

// RowCount is the server-side row count from the end frame.
func (r *Rows) RowCount() int64 {
	if r.end == nil || r.end.RowCount == nil {
		return 0
	}
	return *r.end.RowCount
}

// Elapsed is the server-side execution latency from the end frame.
func (r *Rows) Elapsed() time.Duration {
	if r.end == nil || r.end.ElapsedMs == nil {
		return 0
	}
	return time.Duration(*r.end.ElapsedMs * float64(time.Millisecond))
}

// All drains the stream into a materialized row set and closes it.
func (r *Rows) All() ([][]int64, error) {
	defer r.Close()
	var out [][]int64
	for r.Next() {
		row := make([]int64, len(r.Row()))
		copy(row, r.Row())
		out = append(out, row)
	}
	return out, r.Err()
}

// Close releases the stream. Abandoning a stream mid-way closes the
// connection, which cancels the server-side query within one morsel.
func (r *Rows) Close() error { return r.body.Close() }
