package proto_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"paradigms/internal/catalog"
	"paradigms/internal/logical"
	"paradigms/internal/proto"
	"paradigms/internal/server"
)

var update = flag.Bool("update", false, "rewrite the golden wire fixtures")

// stubCols is the fixed schema every stub stream advertises.
var stubCols = []logical.OutCol{
	{Name: "l_orderkey", Type: catalog.Type{Kind: catalog.Int64}},
	{Name: "revenue", Type: catalog.Type{Kind: catalog.Numeric, Scale: 2}},
}

// newStubService builds a service whose streaming hook emits fully
// scripted frames keyed by the query text — the conformance fixtures pin
// the protocol layer, not the engines (the engines' wire output is
// covered end to end by the streaming equivalence suite).
func newStubService() *server.Service {
	return server.New(server.Config{
		WorkerBudget:  1,
		MaxConcurrent: 1,
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			return nil, fmt.Errorf("stub: materializing path not under test")
		},
		ExecStream: func(ctx context.Context, engine, query string, workers int, sink any) (string, error) {
			rs := sink.(logical.RowSink)
			switch query {
			case "ok":
				rs.SetCols(stubCols)
				rs.PushRows([][]int64{{1, 17350}, {2, 409001}})
				rs.PushRows([][]int64{{5, 2150}})
				return "typer", nil
			case "midfail":
				rs.SetCols(stubCols)
				rs.PushRows([][]int64{{1, 17350}})
				return "typer", fmt.Errorf("stub: spill corrupted mid-merge")
			case "earlyfail":
				return "typer", fmt.Errorf("stub: unknown relation \"lineitm\"")
			case "block":
				<-ctx.Done()
				return "typer", ctx.Err()
			}
			return "typer", fmt.Errorf("stub: unscripted query %q", query)
		},
	})
}

// fixedNow freezes the server clock so end-frame timings are
// byte-reproducible.
func fixedNow() time.Time { return time.Unix(1700000000, 0) }

// checkGolden compares got against testdata/<name>.golden, rewriting the
// fixture under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire bytes diverge from %s:\ngot:  %q\nwant: %q", path, got, want)
	}
}

// postQuery runs one /v1/query round trip and returns status and body.
func postQuery(t *testing.T, ts *httptest.Server, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// TestConformanceGoldens pins the wire format byte for byte: streamed
// batch framing, the mid-stream error frame, the clean pre-stream error,
// and the decodability of every line by the strict frame decoder.
func TestConformanceGoldens(t *testing.T) {
	svc := newStubService()
	defer svc.Close()
	ts := httptest.NewServer(proto.NewServer(svc, fixedNow).Handler())
	defer ts.Close()

	t.Run("stream", func(t *testing.T) {
		status, raw, hdr := postQuery(t, ts, `{"tenant":"t1","engine":"typer","sql":"ok"}`)
		if status != http.StatusOK {
			t.Fatalf("status %d, want 200 (%s)", status, raw)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("content type %q, want application/x-ndjson", ct)
		}
		checkGolden(t, "stream_ok", raw)
		assertFrameSeq(t, raw, []string{proto.FrameCols, proto.FrameRows, proto.FrameRows, proto.FrameEnd})
	})

	t.Run("mid-stream-error", func(t *testing.T) {
		status, raw, _ := postQuery(t, ts, `{"tenant":"t1","engine":"typer","sql":"midfail"}`)
		if status != http.StatusOK {
			// The stream had already started; the failure must ride in
			// an error frame, not an HTTP status.
			t.Fatalf("status %d, want 200 with trailing error frame (%s)", status, raw)
		}
		checkGolden(t, "stream_midfail", raw)
		frames := assertFrameSeq(t, raw, []string{proto.FrameCols, proto.FrameRows, proto.FrameError})
		if f := frames[len(frames)-1]; f.Code != proto.CodeExec {
			t.Errorf("error frame code %q, want %q", f.Code, proto.CodeExec)
		}
	})

	t.Run("pre-stream-error", func(t *testing.T) {
		status, raw, _ := postQuery(t, ts, `{"tenant":"t1","engine":"typer","sql":"earlyfail"}`)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422 (%s)", status, raw)
		}
		checkGolden(t, "error_early", raw)
		e, err := proto.DecodeErrorBody(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if e.Code != proto.CodeExec {
			t.Errorf("code %q, want %q", e.Code, proto.CodeExec)
		}
	})

	t.Run("bad-request", func(t *testing.T) {
		status, raw, _ := postQuery(t, ts, `{"sql":"ok","bogus":1}`)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (%s)", status, raw)
		}
		if _, err := proto.DecodeErrorBody(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceOverload pins the backpressure shape: a full admission
// queue turns into HTTP 429 with the scheduler's deterministic
// retry-after estimate in both the body and the Retry-After header —
// and never into a partial stream.
func TestConformanceOverload(t *testing.T) {
	svc := server.New(server.Config{
		WorkerBudget:  1,
		MaxConcurrent: 1,
		MaxQueued:     1,
		Exec: func(ctx context.Context, engine, query string, workers int) (any, error) {
			return nil, fmt.Errorf("stub")
		},
		ExecStream: func(ctx context.Context, engine, query string, workers int, sink any) (string, error) {
			<-ctx.Done()
			return engine, ctx.Err()
		},
	})
	defer svc.Close()
	ts := httptest.NewServer(proto.NewServer(svc, fixedNow).Handler())
	defer ts.Close()

	// Occupy the slot and the queue with two in-flight requests.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
				strings.NewReader(`{"tenant":"hog","engine":"typer","sql":"block"}`))
			resp, err := ts.Client().Do(req)
			if err == nil {
				resp.Body.Close()
			}
			release <- struct{}{}
		}()
	}
	waitStats(t, svc, func(st server.Stats) bool { return st.InFlight == 1 && st.Queued == 1 })

	status, raw, hdr := postQuery(t, ts, `{"tenant":"hog","engine":"typer","sql":"block"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", status, raw)
	}
	checkGolden(t, "error_overload", raw)
	e, err := proto.DecodeErrorBody(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != proto.CodeOverloaded || e.Tenant != "hog" || e.Queued != 1 || e.RetryAfterMs <= 0 {
		t.Errorf("overload body %+v lacks backpressure fields", e)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	cancel()
	<-release
	<-release
}

// waitStats polls the service stats until cond holds.
func waitStats(t *testing.T, svc *server.Service, cond func(server.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(svc.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// assertFrameSeq strict-decodes every line of a response body and
// checks the frame type sequence.
func assertFrameSeq(t *testing.T, raw []byte, want []string) []*proto.Frame {
	t.Helper()
	var frames []*proto.Frame
	for i, line := range bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n")) {
		f, err := proto.DecodeFrame(line)
		if err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		frames = append(frames, f)
	}
	if len(frames) != len(want) {
		t.Fatalf("%d frames, want %d", len(frames), len(want))
	}
	for i, f := range frames {
		if f.Type != want[i] {
			t.Fatalf("frame %d is %q, want %q", i, f.Type, want[i])
		}
	}
	return frames
}

// FuzzProtoDecode chases panics and shape-check escapes in the strict
// decoders. Every input that decodes successfully must re-encode and
// re-decode to the same value (round-trip stability).
func FuzzProtoDecode(f *testing.F) {
	seeds := []string{
		`{"frame":"cols","cols":[{"name":"a","type":"int64"}]}`,
		`{"frame":"rows","rows":[[1,2],[3,4]]}`,
		`{"frame":"end","engine":"typer","row_count":3,"elapsed_ms":0.25}`,
		`{"frame":"error","error":"boom","code":"exec_error"}`,
		`{"tenant":"t","engine":"auto","sql":"SELECT 1","prepared":true,"args":["1"]}`,
		`{"sql":"SELECT COUNT(*) FROM lineitem"}`,
		`{"error":"queue full","code":"overloaded","tenant":"t","queued":7,"retry_after_ms":150}`,
		`{"frame":"end"}`,
		`{"frame":"rows","rows":[]}`,
		`not json at all`,
		`{}`,
		`{"frame":"cols","cols":[{"name":"a","type":"int64"}]} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if fr, err := proto.DecodeFrame(data); err == nil {
			reenc, err := jsonMarshal(fr)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			fr2, err := proto.DecodeFrame(reenc)
			if err != nil {
				t.Fatalf("re-decode %q: %v", reenc, err)
			}
			if fr.Type != fr2.Type || len(fr.Rows) != len(fr2.Rows) || len(fr.Cols) != len(fr2.Cols) {
				t.Fatalf("round trip changed frame: %+v vs %+v", fr, fr2)
			}
		}
		proto.DecodeQueryRequest(bytes.NewReader(data))
		proto.DecodePrepareRequest(bytes.NewReader(data))
		proto.DecodeErrorBody(bytes.NewReader(data))
	})
}

// jsonMarshal appends the newline the wire framing uses.
func jsonMarshal(f *proto.Frame) ([]byte, error) {
	raw, err := json.Marshal(f)
	return raw, err
}
