// Package storage implements the columnar in-memory table format shared by
// both query engines.
//
// A Relation is a set of equal-length columns. Columns are plain Go slices
// of primitive element types; variable-length strings use an offsets+bytes
// layout (one contiguous byte heap per column). There is deliberately no
// compression and no sub-byte packing: the paper's test system stores
// uncompressed columns so that the execution paradigm is the only variable
// under study (§3).
package storage

import (
	"fmt"
	"sort"

	"paradigms/internal/types"
)

// ColType identifies the physical element type of a column.
type ColType uint8

// Physical column types.
const (
	Int32 ColType = iota
	Int64
	Numeric // types.Numeric, scale-2 fixed point stored as int64
	Date    // types.Date stored as int32 days
	Byte    // single-character attributes, e.g. l_returnflag
	String  // variable-length, offsets into a byte heap
)

func (t ColType) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Numeric:
		return "numeric"
	case Date:
		return "date"
	case Byte:
		return "byte"
	case String:
		return "string"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Width returns the in-memory width in bytes of one element of the type.
// String columns report the width of their offset entry.
func (t ColType) Width() int {
	switch t {
	case Int32, Date, String:
		return 4
	case Int64, Numeric:
		return 8
	case Byte:
		return 1
	}
	return 0
}

// StringHeap is the storage for one variable-length string column:
// value i occupies Bytes[Offsets[i]:Offsets[i+1]].
type StringHeap struct {
	Offsets []uint32 // len == number of rows + 1
	Bytes   []byte
}

// Get returns string value i as a byte slice aliasing the heap.
func (h *StringHeap) Get(i int) []byte { return h.Bytes[h.Offsets[i]:h.Offsets[i+1]] }

// Len returns the number of string values.
func (h *StringHeap) Len() int { return len(h.Offsets) - 1 }

// Append adds a value to the heap. The heap must have been initialized
// with one zero offset (NewStringHeap does this).
func (h *StringHeap) Append(s []byte) {
	h.Bytes = append(h.Bytes, s...)
	h.Offsets = append(h.Offsets, uint32(len(h.Bytes)))
}

// AppendString adds a string value to the heap.
func (h *StringHeap) AppendString(s string) {
	h.Bytes = append(h.Bytes, s...)
	h.Offsets = append(h.Offsets, uint32(len(h.Bytes)))
}

// NewStringHeap returns an empty heap ready for Append, with capacity
// hints for n values of avg average length.
func NewStringHeap(n, avg int) *StringHeap {
	h := &StringHeap{Offsets: make([]uint32, 1, n+1)}
	if n > 0 {
		h.Bytes = make([]byte, 0, n*avg)
	}
	return h
}

// Column is one named, typed column of a relation. Exactly one of the
// typed slices is non-nil, matching Type.
type Column struct {
	Name string
	Type ColType

	I32 []int32
	I64 []int64
	Num []types.Numeric
	Dat []types.Date
	B   []byte
	Str *StringHeap
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Int32:
		return len(c.I32)
	case Int64:
		return len(c.I64)
	case Numeric:
		return len(c.Num)
	case Date:
		return len(c.Dat)
	case Byte:
		return len(c.B)
	case String:
		return c.Str.Len()
	}
	return 0
}

// Relation is a named collection of equal-length columns.
type Relation struct {
	Name    string
	columns []*Column
	byName  map[string]*Column
	rows    int
}

// NewRelation creates an empty relation with the given name.
func NewRelation(name string) *Relation {
	return &Relation{Name: name, byName: make(map[string]*Column)}
}

// Rows returns the number of rows in the relation.
func (r *Relation) Rows() int { return r.rows }

// Columns returns the columns in definition order.
func (r *Relation) Columns() []*Column { return r.columns }

func (r *Relation) add(c *Column) *Column {
	n := c.Len()
	if len(r.columns) == 0 {
		r.rows = n
	} else if n != r.rows {
		panic(fmt.Sprintf("storage: column %s.%s has %d rows, relation has %d",
			r.Name, c.Name, n, r.rows))
	}
	if _, dup := r.byName[c.Name]; dup {
		panic(fmt.Sprintf("storage: duplicate column %s.%s", r.Name, c.Name))
	}
	r.columns = append(r.columns, c)
	r.byName[c.Name] = c
	return c
}

// AddInt32 attaches an int32 column.
func (r *Relation) AddInt32(name string, v []int32) *Column {
	return r.add(&Column{Name: name, Type: Int32, I32: v})
}

// AddInt64 attaches an int64 column.
func (r *Relation) AddInt64(name string, v []int64) *Column {
	return r.add(&Column{Name: name, Type: Int64, I64: v})
}

// AddNumeric attaches a fixed-point decimal column.
func (r *Relation) AddNumeric(name string, v []types.Numeric) *Column {
	return r.add(&Column{Name: name, Type: Numeric, Num: v})
}

// AddDate attaches a date column.
func (r *Relation) AddDate(name string, v []types.Date) *Column {
	return r.add(&Column{Name: name, Type: Date, Dat: v})
}

// AddByte attaches a single-character column.
func (r *Relation) AddByte(name string, v []byte) *Column {
	return r.add(&Column{Name: name, Type: Byte, B: v})
}

// AddString attaches a variable-length string column.
func (r *Relation) AddString(name string, h *StringHeap) *Column {
	return r.add(&Column{Name: name, Type: String, Str: h})
}

// Column returns the named column or panics: queries reference columns by
// name at plan-construction time, so a miss is a programming error.
func (r *Relation) Column(name string) *Column {
	c, ok := r.byName[name]
	if !ok {
		names := make([]string, 0, len(r.byName))
		for n := range r.byName {
			names = append(names, n)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("storage: relation %s has no column %q (has %v)", r.Name, name, names))
	}
	return c
}

// Has reports whether the relation has a column with the given name.
func (r *Relation) Has(name string) bool { _, ok := r.byName[name]; return ok }

// Int32 returns the data of an int32 column.
func (r *Relation) Int32(name string) []int32 { return r.typed(name, Int32).I32 }

// Int64 returns the data of an int64 column.
func (r *Relation) Int64(name string) []int64 { return r.typed(name, Int64).I64 }

// Numeric returns the data of a numeric column.
func (r *Relation) Numeric(name string) []types.Numeric { return r.typed(name, Numeric).Num }

// Date returns the data of a date column.
func (r *Relation) Date(name string) []types.Date { return r.typed(name, Date).Dat }

// Byte returns the data of a byte column.
func (r *Relation) Byte(name string) []byte { return r.typed(name, Byte).B }

// String returns the heap of a string column.
func (r *Relation) String(name string) *StringHeap { return r.typed(name, String).Str }

func (r *Relation) typed(name string, t ColType) *Column {
	c := r.Column(name)
	if c.Type != t {
		panic(fmt.Sprintf("storage: column %s.%s is %s, requested as %s",
			r.Name, name, c.Type, t))
	}
	return c
}

// Gather materializes the subset of rows at the given indices as a new
// relation with the same name, column order, and column types — the
// storage primitive behind hash-partitioning a table across shards.
// Values are copied (strings into a fresh heap), so the gathered
// relation shares no backing arrays with the source.
func (r *Relation) Gather(idx []int) *Relation {
	out := NewRelation(r.Name)
	for _, c := range r.columns {
		switch c.Type {
		case Int32:
			v := make([]int32, len(idx))
			for j, i := range idx {
				v[j] = c.I32[i]
			}
			out.AddInt32(c.Name, v)
		case Int64:
			v := make([]int64, len(idx))
			for j, i := range idx {
				v[j] = c.I64[i]
			}
			out.AddInt64(c.Name, v)
		case Numeric:
			v := make([]types.Numeric, len(idx))
			for j, i := range idx {
				v[j] = c.Num[i]
			}
			out.AddNumeric(c.Name, v)
		case Date:
			v := make([]types.Date, len(idx))
			for j, i := range idx {
				v[j] = c.Dat[i]
			}
			out.AddDate(c.Name, v)
		case Byte:
			v := make([]byte, len(idx))
			for j, i := range idx {
				v[j] = c.B[i]
			}
			out.AddByte(c.Name, v)
		case String:
			avg := 0
			if n := c.Str.Len(); n > 0 {
				avg = len(c.Str.Bytes)/n + 1
			}
			h := NewStringHeap(len(idx), avg)
			for _, i := range idx {
				h.Append(c.Str.Get(i))
			}
			out.AddString(c.Name, h)
		}
	}
	return out
}

// ByteSize returns the approximate in-memory footprint of the relation's
// column data in bytes (used by the out-of-memory experiment and the
// bandwidth accounting in benches).
func (r *Relation) ByteSize() int64 {
	var total int64
	for _, c := range r.columns {
		switch c.Type {
		case String:
			total += int64(len(c.Str.Bytes)) + 4*int64(len(c.Str.Offsets))
		default:
			total += int64(c.Len()) * int64(c.Type.Width())
		}
	}
	return total
}

// Database is a named set of relations (one TPC-H or SSB instance).
type Database struct {
	Name      string
	relations map[string]*Relation
	// ScaleFactor records the generator scale the instance was built at.
	ScaleFactor float64
}

// NewDatabase creates an empty database.
func NewDatabase(name string, sf float64) *Database {
	return &Database{Name: name, relations: make(map[string]*Relation), ScaleFactor: sf}
}

// Add registers a relation.
func (d *Database) Add(r *Relation) {
	if _, dup := d.relations[r.Name]; dup {
		panic("storage: duplicate relation " + r.Name)
	}
	d.relations[r.Name] = r
}

// Rel returns a relation by name, panicking if absent.
func (d *Database) Rel(name string) *Relation {
	r, ok := d.relations[name]
	if !ok {
		panic(fmt.Sprintf("storage: database %s has no relation %q", d.Name, name))
	}
	return r
}

// Relations returns the relation names in sorted order.
func (d *Database) Relations() []string {
	names := make([]string, 0, len(d.relations))
	for n := range d.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalTuples sums the row counts of the given relations; the paper
// normalizes all CPU counters by the total number of tuples scanned by a
// query (§3.4).
func (d *Database) TotalTuples(relations ...string) int64 {
	var total int64
	for _, n := range relations {
		total += int64(d.Rel(n).Rows())
	}
	return total
}
