package storage

import (
	"testing"
	"testing/quick"

	"paradigms/internal/types"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation("t")
	r.AddInt32("a", []int32{1, 2, 3})
	r.AddNumeric("b", []types.Numeric{100, 200, 300})
	if r.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", r.Rows())
	}
	if got := r.Int32("a")[1]; got != 2 {
		t.Errorf("a[1] = %d", got)
	}
	if got := r.Numeric("b")[2]; got != 300 {
		t.Errorf("b[2] = %d", got)
	}
	if !r.Has("a") || r.Has("zz") {
		t.Error("Has misbehaves")
	}
	if len(r.Columns()) != 2 {
		t.Error("Columns length")
	}
}

func TestRelationPanicsOnMismatch(t *testing.T) {
	r := NewRelation("t")
	r.AddInt32("a", []int32{1, 2, 3})
	assertPanics(t, "row mismatch", func() { r.AddInt32("b", []int32{1}) })
	assertPanics(t, "duplicate column", func() { r.AddInt32("a", []int32{4, 5, 6}) })
	assertPanics(t, "missing column", func() { r.Column("nope") })
	assertPanics(t, "wrong type", func() { r.Int64("a") })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestStringHeap(t *testing.T) {
	h := NewStringHeap(3, 8)
	h.AppendString("BUILDING")
	h.AppendString("")
	h.Append([]byte("green olive"))
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if string(h.Get(0)) != "BUILDING" || string(h.Get(1)) != "" || string(h.Get(2)) != "green olive" {
		t.Errorf("Get round trip failed: %q %q %q", h.Get(0), h.Get(1), h.Get(2))
	}
}

func TestStringHeapRoundTripProperty(t *testing.T) {
	f := func(values [][]byte) bool {
		h := NewStringHeap(len(values), 4)
		for _, v := range values {
			h.Append(v)
		}
		if h.Len() != len(values) {
			return false
		}
		for i, v := range values {
			got := h.Get(i)
			if string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColTypeWidthAndString(t *testing.T) {
	for ct, w := range map[ColType]int{Int32: 4, Int64: 8, Numeric: 8, Date: 4, Byte: 1, String: 4} {
		if ct.Width() != w {
			t.Errorf("%v.Width() = %d, want %d", ct, ct.Width(), w)
		}
		if ct.String() == "" {
			t.Errorf("%d has empty String()", ct)
		}
	}
}

func TestByteSize(t *testing.T) {
	r := NewRelation("t")
	r.AddInt64("a", make([]int64, 10))
	r.AddInt32("b", make([]int32, 10))
	h := NewStringHeap(10, 2)
	for i := 0; i < 10; i++ {
		h.AppendString("xy")
	}
	r.AddString("s", h)
	want := int64(10*8 + 10*4 + 20 + 11*4)
	if got := r.ByteSize(); got != want {
		t.Errorf("ByteSize = %d, want %d", got, want)
	}
}

func TestDatabase(t *testing.T) {
	d := NewDatabase("tpch", 1)
	r1 := NewRelation("lineitem")
	r1.AddInt32("x", make([]int32, 5))
	r2 := NewRelation("orders")
	r2.AddInt32("x", make([]int32, 3))
	d.Add(r1)
	d.Add(r2)
	if got := d.TotalTuples("lineitem", "orders"); got != 8 {
		t.Errorf("TotalTuples = %d", got)
	}
	if d.Rel("orders").Rows() != 3 {
		t.Error("Rel lookup")
	}
	names := d.Relations()
	if len(names) != 2 || names[0] != "lineitem" || names[1] != "orders" {
		t.Errorf("Relations = %v", names)
	}
	assertPanics(t, "duplicate relation", func() { d.Add(NewRelation("orders")) })
	assertPanics(t, "missing relation", func() { d.Rel("part") })
}
