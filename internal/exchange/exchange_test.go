package exchange

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"paradigms/internal/hashtable"
	"paradigms/internal/logical"
	"paradigms/internal/sqlcheck"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// checkCluster runs one SQL text through the sharded path on both
// backends and several worker budgets, comparing against the naive
// oracle: exact row order under ORDER BY (the generator and these
// hand-written queries only order by total-order keys), canonicalized
// multisets otherwise.
func checkCluster(t *testing.T, db *storage.Database, n int, text string) {
	t.Helper()
	ctx := context.Background()
	want, err := sqlcheck.Oracle(db, text)
	if err != nil {
		t.Fatalf("oracle failed for %q: %v", text, err)
	}
	wantC := sqlcheck.Canon(want)
	cl, err := New(db, n)
	if err != nil {
		t.Fatalf("New(n=%d): %v", n, err)
	}
	ordered := strings.Contains(text, "order by")
	for _, engine := range []string{EngineTyper, EngineTectorwise} {
		for _, w := range []int{1, 3} {
			res, err := cl.Run(ctx, Request{SQL: text, Engine: engine, Workers: w, VecSize: 64})
			if err != nil {
				t.Fatalf("%s n=%d w=%d failed for %q: %v", engine, n, w, text, err)
			}
			if ordered {
				if !reflect.DeepEqual(res.Rows, want) && !(len(res.Rows) == 0 && len(want) == 0) {
					t.Errorf("%s n=%d w=%d row order differs for %q\n got %v\nwant %v",
						engine, n, w, text, res.Rows, want)
				}
			} else if !sqlcheck.SameRows(sqlcheck.Canon(res.Rows), wantC) {
				t.Errorf("%s n=%d w=%d differs from oracle for %q\n got %v\nwant %v",
					engine, n, w, text, res.Rows, want)
			}
		}
	}
}

func TestPartitionConservesRows(t *testing.T) {
	db := sqlcheck.MiniTPCH(64, true)
	keys := PartitionKeys(db)
	if keys["lineitem"] != "l_orderkey" || keys["orders"] != "o_orderkey" {
		t.Fatalf("unexpected partition keys %v", keys)
	}
	const n = 4
	shards, err := Partition(db, n, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lineitem", "orders"} {
		total := 0
		for si, sdb := range shards {
			rel := sdb.Rel(name)
			total += rel.Rows()
			key := rel.Int32(keys[name])
			for _, v := range key {
				if got := int(hashtable.Mix64(uint64(uint32(v))) % n); got != si {
					t.Fatalf("%s row with key %d landed on shard %d, hashes to %d", name, v, si, got)
				}
			}
		}
		if total != db.Rel(name).Rows() {
			t.Fatalf("%s: shards hold %d rows, base has %d", name, total, db.Rel(name).Rows())
		}
	}
	// Dimensions are replicated by pointer, not copied.
	for _, sdb := range shards {
		if sdb.Rel("customer") != db.Rel("customer") {
			t.Fatal("customer should be shared by pointer across shards")
		}
	}
}

func TestPartitionSingleShardIsIdentity(t *testing.T) {
	db := sqlcheck.MiniTPCH(8, true)
	shards, err := Partition(db, 1, PartitionKeys(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0] != db {
		t.Fatalf("n=1 must return the base database itself, got %d shard(s)", len(shards))
	}
}

func TestDistributeModes(t *testing.T) {
	db := sqlcheck.MiniTPCH(8, true)
	keys := PartitionKeys(db)
	prep := func(text string) *logical.Plan {
		pl, err := logical.Prepare(db, text)
		if err != nil {
			t.Fatalf("prepare %q: %v", text, err)
		}
		return pl
	}

	// A fact-table join scatters, and the rendered plan shows the
	// exchange pair.
	dp, err := logical.Distribute(prep("select o_orderkey, sum(l_quantity) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey"), keys)
	if err != nil {
		t.Fatalf("co-partitioned join should distribute: %v", err)
	}
	if dp.Mode != logical.DistScatter || !reflect.DeepEqual(dp.PartTables, []string{"lineitem", "orders"}) {
		t.Fatalf("unexpected placement: mode=%v tables=%v", dp.Mode, dp.PartTables)
	}
	out := dp.Format(4)
	for _, want := range []string{"gather merge groups", "scatter shards=4 hash[lineitem.l_orderkey, orders.o_orderkey]", "hashjoin"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}

	// A replicated-only plan pins to one shard.
	dp, err = logical.Distribute(prep("select count(*) from customer"), keys)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Mode != logical.DistSingle {
		t.Fatalf("dimension-only plan should be single-shard, got mode %v", dp.Mode)
	}

	// A join that probes a partitioned build with a non-partition
	// column is rejected (those matches cross shard boundaries).
	if _, err = logical.Distribute(prep("select count(*) from lineitem, orders where l_suppkey = o_orderkey"), keys); err == nil {
		t.Fatal("non-co-partitioned join must not distribute")
	}
}

// TestClusterEdgeCases covers the cross-shard merge edge cases: shards
// that receive no rows, every row hashing to one shard, zero-group
// aggregates, single-shard (replicated-only) routing, and ORDER
// BY/LIMIT total-order discipline across shards — on both backends
// against the oracle.
func TestClusterEdgeCases(t *testing.T) {
	emptyT, emptyS := sqlcheck.EmptyMinis()
	miniT := sqlcheck.MiniTPCH(6, true)
	noneT := sqlcheck.MiniTPCH(12, false)
	miniS := sqlcheck.MiniSSB(12, true)
	cases := []struct {
		name string
		db   *storage.Database
		n    int
		sql  string
	}{
		{"empty-global", emptyT, 4, "select count(*), sum(l_quantity) from lineitem"},
		{"empty-grouped", emptyT, 4, "select o_orderkey, sum(l_quantity) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey"},
		{"empty-ssb", emptyS, 4, "select sum(lo_revenue) from lineorder"},
		{"sparse-shards", miniT, 8, "select o_orderkey, o_totalprice, sum(l_extendedprice), count(*) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey, o_totalprice order by o_orderkey"},
		{"zero-qualifying-global", noneT, 4, "select sum(l_extendedprice), min(l_quantity), max(l_quantity), count(*) from lineitem where l_shipdate >= date '1994-01-01'"},
		{"zero-qualifying-grouped", noneT, 4, "select o_orderkey, count(*) from lineitem, orders where l_orderkey = o_orderkey and l_shipdate >= date '1994-01-01' group by o_orderkey"},
		{"replicated-only-route", miniS, 4, "select lo_partkey, sum(lo_revenue) from lineorder group by lo_partkey order by lo_partkey"},
		{"orderby-limit", miniT, 4, "select o_orderkey, sum(l_extendedprice) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey order by o_orderkey desc limit 3"},
		{"having", miniT, 4, "select o_orderkey, sum(l_extendedprice) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey having sum(l_extendedprice) > 200 order by o_orderkey"},
		{"projection-limit", miniT, 4, "select o_orderkey, o_totalprice from orders order by o_orderkey limit 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkCluster(t, tc.db, tc.n, tc.sql) })
	}
}

// TestClusterSkew pins the all-rows-on-one-shard extreme: one hot
// order key, so every fact row lands on a single shard and the other
// shards contribute empty partials.
func TestClusterSkew(t *testing.T) {
	db := storage.NewDatabase("tpch", 0)
	ord := storage.NewRelation("orders")
	ord.AddInt32("o_orderkey", []int32{7})
	ord.AddNumeric("o_totalprice", []types.Numeric{700})
	db.Add(ord)
	li := storage.NewRelation("lineitem")
	const n = 20
	lok := make([]int32, n)
	lqty := make([]types.Numeric, n)
	for i := range lok {
		lok[i] = 7
		lqty[i] = types.Numeric(int64(i+1) * types.NumericScale)
	}
	li.AddInt32("l_orderkey", lok)
	li.AddNumeric("l_quantity", lqty)
	db.Add(li)

	checkCluster(t, db, 4, "select o_orderkey, count(*), sum(l_quantity), min(l_quantity), max(l_quantity) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey")
	checkCluster(t, db, 4, "select sum(l_quantity), count(*) from lineitem")
}

// TestClusterFallback: a plan the distribute rewrite rejects still
// answers correctly via the single-process fallback, and the routing
// stats say so.
func TestClusterFallback(t *testing.T) {
	db := sqlcheck.MiniTPCH(8, true)
	cl, err := New(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	text := "select count(*) from lineitem, orders where l_suppkey = o_orderkey"
	want, err := sqlcheck.Oracle(db, text)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{EngineTyper, EngineTectorwise} {
		res, err := cl.Run(context.Background(), Request{SQL: text, Engine: engine, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !sqlcheck.SameRows(sqlcheck.Canon(res.Rows), sqlcheck.Canon(want)) {
			t.Errorf("%s fallback differs: got %v want %v", engine, res.Rows, want)
		}
	}
	if _, _, fallback := cl.Stats(); fallback != 2 {
		t.Errorf("expected 2 fallback routes, got %d", fallback)
	}
	if out, err := cl.Explain(text); err != nil || !strings.Contains(out, "single-process fallback") {
		t.Errorf("Explain should describe the fallback, got %q err=%v", out, err)
	}
}

// TestClusterOneShardMatchesSingleProcess: an N=1 cluster must return
// bit-identical rows (order included) to plain single-process
// execution on both backends.
func TestClusterOneShardMatchesSingleProcess(t *testing.T) {
	db := sqlcheck.MiniTPCH(16, true)
	cl, err := New(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	texts := []string{
		"select o_orderkey, sum(l_extendedprice), count(*) from lineitem, orders where l_orderkey = o_orderkey group by o_orderkey",
		"select l_orderkey, l_quantity from lineitem",
		"select sum(l_extendedprice * l_discount) from lineitem where l_quantity < 24",
	}
	for _, text := range texts {
		for _, engine := range []string{EngineTyper, EngineTectorwise} {
			got, err := cl.Run(ctx, Request{SQL: text, Engine: engine, Workers: 2, VecSize: 128})
			if err != nil {
				t.Fatalf("%s: %v", engine, err)
			}
			want, err := cl.runLocal(ctx, mustPrepare(t, db, text), Request{Engine: engine, Workers: 2, VecSize: 128})
			if err != nil {
				t.Fatalf("%s local: %v", engine, err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Errorf("%s n=1 not bit-identical for %q\n got %v\nwant %v", engine, text, got.Rows, want.Rows)
			}
		}
	}
}

func mustPrepare(t *testing.T, db *storage.Database, text string) *logical.Plan {
	t.Helper()
	pl, err := logical.Prepare(db, text)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}
