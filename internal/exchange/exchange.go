// Package exchange implements sharded, distributed in-process
// execution over the two SQL backends — an extension beyond the paper
// (ROADMAP item 1, DESIGN.md §15), and the distributed endgame the
// paper's Volcano-style engine comparison points at: one SQL text
// fans out across N hash-partitioned shards
// through a scatter exchange, each shard plans and executes the whole
// pipeline tree over its catalog slice up to the exchange boundary
// (logical.ExecutePartial / compiled.ExecutePartial), and a gather
// exchange on the coordinator re-merges the partials through the
// engines' shared MergeGlobal/FinalizeRows machinery — so HAVING,
// ORDER BY, and LIMIT semantics cannot drift from single-process
// execution.
//
// A Shard is an interface so a shard can later become a network hop:
// Request is plain serializable data (SQL text, args, engine, budget),
// and a Partial is plain rows. The in-process Local shard is a
// goroutine pool (each ExecutePartial runs its own morsel dispatcher
// over the slice).
package exchange

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"paradigms/internal/compiled"
	"paradigms/internal/logical"
	"paradigms/internal/storage"
)

// Engines with a partial-execution path.
const (
	EngineTyper      = "typer"
	EngineTectorwise = "tectorwise"
)

// Request is one shard's share of a query — deliberately plain data
// (no plan pointers), so a Shard implementation could serialize it
// over a network hop.
type Request struct {
	SQL     string
	Args    []int64
	Engine  string // EngineTyper or EngineTectorwise ("" = tectorwise)
	Workers int    // per-shard worker budget (0 = GOMAXPROCS)
	VecSize int    // vectorized backend's vector size (0 = default)
}

// Shard executes one slice's share of queries.
type Shard interface {
	// Partial plans the SQL against the shard's catalog slice and runs
	// it up to the exchange boundary, returning the shard-local partial
	// state. A canceled context returns promptly; the caller discards
	// the partial.
	Partial(ctx context.Context, req Request) (*logical.Partial, error)
}

// localPlanCap bounds each shard's plan cache (plans re-prepare on
// their next request after eviction, like the service plan cache).
const localPlanCap = 512

// Local is the in-process Shard: a database slice plus a small
// plan cache, executing partials on this process's goroutine pool.
type Local struct {
	db *storage.Database

	mu    sync.Mutex
	plans map[string]*logical.Plan
	order []string
}

// NewLocal wraps a database slice as an in-process shard.
func NewLocal(db *storage.Database) *Local {
	return &Local{db: db, plans: make(map[string]*logical.Plan)}
}

// DB exposes the shard's slice (tests and EXPLAIN).
func (s *Local) DB() *storage.Database { return s.db }

// Partial implements Shard.
func (s *Local) Partial(ctx context.Context, req Request) (*logical.Partial, error) {
	pl, err := s.plan(req.SQL)
	if err != nil {
		return nil, err
	}
	switch req.Engine {
	case EngineTyper:
		if len(pl.Params) > 0 {
			return compiled.ExecutePartialArgs(ctx, pl, req.Workers, req.Args)
		}
		return compiled.ExecutePartial(ctx, pl, req.Workers)
	case EngineTectorwise, "":
		if len(pl.Params) > 0 {
			return pl.ExecutePartialArgs(ctx, req.Workers, req.VecSize, req.Args)
		}
		return pl.ExecutePartial(ctx, req.Workers, req.VecSize)
	}
	return nil, fmt.Errorf("exchange: engine %q has no partial-execution path", req.Engine)
}

// plan fetches or builds the shard-local optimized plan for the text.
// Each shard plans against its own slice's cardinalities; the slot
// layout the partials ship is determined by the SQL alone, so shards
// may pick different join orders and still merge.
func (s *Local) plan(text string) (*logical.Plan, error) {
	s.mu.Lock()
	if pl, ok := s.plans[text]; ok {
		s.mu.Unlock()
		return pl, nil
	}
	s.mu.Unlock()
	pl, err := logical.Prepare(s.db, text)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.order) >= localPlanCap {
		delete(s.plans, s.order[0])
		s.order = s.order[1:]
	}
	if _, ok := s.plans[text]; !ok {
		s.plans[text] = pl
		s.order = append(s.order, text)
	}
	s.mu.Unlock()
	return pl, nil
}

// Cluster is the coordinator: the full database (for planning,
// validation, and the non-distributable fallback) plus its shards.
type Cluster struct {
	base   *storage.Database
	keys   map[string]string
	shards []Shard

	scattered atomic.Uint64
	single    atomic.Uint64
	fallback  atomic.Uint64
}

// New hash-partitions the database into n in-process shards and
// returns the coordinator. n=1 shares the base database with the one
// shard, so results are bit-identical to single-process execution.
func New(db *storage.Database, n int) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("exchange: nil database")
	}
	keys := PartitionKeys(db)
	dbs, err := Partition(db, n, keys)
	if err != nil {
		return nil, err
	}
	shards := make([]Shard, len(dbs))
	for i, d := range dbs {
		shards[i] = NewLocal(d)
	}
	return &Cluster{base: db, keys: keys, shards: shards}, nil
}

// Shards returns the fan-out width.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns the i'th shard (tests).
func (c *Cluster) Shard(i int) Shard { return c.shards[i] }

// Stats reports how queries have routed so far: scattered across all
// shards, pinned to a single shard (replicated tables only), or fallen
// back to single-process execution (not distributable under the
// partitioning).
func (c *Cluster) Stats() (scattered, single, fallback uint64) {
	return c.scattered.Load(), c.single.Load(), c.fallback.Load()
}

// Explain renders the distributed plan of the SQL text (exchange
// operators wrapping the optimized plan), or describes the fallback.
func (c *Cluster) Explain(text string) (string, error) {
	pl, err := logical.Prepare(c.base, text)
	if err != nil {
		return "", err
	}
	dp, err := logical.Distribute(pl, c.keys)
	if err != nil {
		return fmt.Sprintf("single-process fallback (%v)\n%s", err, pl.Format()), nil
	}
	return dp.Format(len(c.shards)), nil
}

// Run executes one SQL text through the exchange: plan on the full
// catalog, validate distributability, scatter to the shards, gather
// and merge the partials, finalize. Plans the rewrite rejects run
// single-process on the full database — correctness over parallelism.
func (c *Cluster) Run(ctx context.Context, req Request) (*logical.Result, error) {
	pl, err := logical.Prepare(c.base, req.SQL)
	if err != nil {
		return nil, err
	}
	res, err := c.run(ctx, pl, req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func (c *Cluster) run(ctx context.Context, pl *logical.Plan, req Request) (*logical.Result, error) {
	dp, derr := logical.Distribute(pl, c.keys)
	if derr != nil {
		c.fallback.Add(1)
		return c.runLocal(ctx, pl, req)
	}
	targets := c.shards
	if dp.Mode == logical.DistSingle {
		// Replicated tables only: any one shard holds all the data;
		// running everywhere would duplicate every row.
		targets = c.shards[:1]
		c.single.Add(1)
	} else {
		c.scattered.Add(1)
	}
	req.Workers = perShardWorkers(req.Workers, len(targets))

	// Scatter: every shard runs concurrently; the first error cancels
	// the rest within one morsel.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([]*logical.Partial, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			parts[i], errs[i] = sh.Partial(sctx, req)
			if errs[i] != nil {
				cancel()
			}
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Gather: merge the shard partials through the shared finalization
	// tail. Parameterized texts bind on the coordinator too, so HAVING
	// and param-only conjuncts evaluate against the same binding the
	// shards ran.
	mpl := pl
	if len(pl.Params) > 0 {
		var err error
		if mpl, err = pl.BindArgs(req.Args); err != nil {
			return nil, err
		}
	}
	return mpl.MergePartials(parts)
}

// runLocal is the non-distributable fallback: single-process execution
// on the full database, same engines, same contract.
func (c *Cluster) runLocal(ctx context.Context, pl *logical.Plan, req Request) (*logical.Result, error) {
	switch req.Engine {
	case EngineTyper:
		if len(pl.Params) > 0 {
			return compiled.ExecuteArgs(ctx, pl, req.Workers, req.Args)
		}
		return compiled.Execute(ctx, pl, req.Workers)
	case EngineTectorwise, "":
		if len(pl.Params) > 0 {
			return pl.ExecuteArgs(ctx, req.Workers, req.VecSize, req.Args)
		}
		return pl.Execute(ctx, req.Workers, req.VecSize)
	}
	return nil, fmt.Errorf("exchange: engine %q has no partial-execution path", req.Engine)
}

// perShardWorkers splits the query's worker budget across the shards
// it scatters to, so a sharded execution uses the same total
// parallelism as a single-process one.
func perShardWorkers(w, n int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if per := w / n; per > 1 {
		return per
	}
	return 1
}
