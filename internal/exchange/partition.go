package exchange

import (
	"fmt"

	"paradigms/internal/catalog"
	"paradigms/internal/hashtable"
	"paradigms/internal/storage"
)

// PartitionKeys returns the hash-partition column per relation of the
// database, from the catalog's schema annotations, keeping only keys
// the materialized relations actually carry. Relations absent from the
// result are replicated to every shard.
func PartitionKeys(db *storage.Database) map[string]string {
	keys := make(map[string]string)
	for _, name := range db.Relations() {
		if k := catalog.PartitionKey(name); k != "" && db.Rel(name).Has(k) {
			keys[name] = k
		}
	}
	return keys
}

// Partition hash-partitions the database into n slices: every relation
// with a partition key is split row-wise by Mix64(key) mod n (the same
// finalizer the join hash tables use, so co-partitioned tables land
// together); every other relation is shared by pointer — replicated,
// at zero memory cost in-process. n=1 returns the database itself, so
// a one-shard cluster is bit-identical to single-process execution.
func Partition(db *storage.Database, n int, keys map[string]string) ([]*storage.Database, error) {
	if n < 1 {
		return nil, fmt.Errorf("exchange: shard count %d < 1", n)
	}
	if n == 1 {
		return []*storage.Database{db}, nil
	}
	out := make([]*storage.Database, n)
	for i := range out {
		out[i] = storage.NewDatabase(db.Name, db.ScaleFactor)
	}
	for _, name := range db.Relations() {
		rel := db.Rel(name)
		key, ok := keys[name]
		if !ok {
			for i := range out {
				out[i].Add(rel)
			}
			continue
		}
		c := rel.Column(key)
		idx := make([][]int, n)
		for i := 0; i < rel.Rows(); i++ {
			w, err := keyWord(c, i)
			if err != nil {
				return nil, err
			}
			s := int(hashtable.Mix64(w) % uint64(n))
			idx[s] = append(idx[s], i)
		}
		for i := range out {
			out[i].Add(rel.Gather(idx[i]))
		}
	}
	return out, nil
}

// keyWord is a partition-key value as the join machinery's key word
// (32-bit values zero-extended), so partitioning and probing agree on
// the hash of every key.
func keyWord(c *storage.Column, i int) (uint64, error) {
	switch c.Type {
	case storage.Int32:
		return uint64(uint32(c.I32[i])), nil
	case storage.Date:
		return uint64(uint32(c.Dat[i])), nil
	case storage.Int64:
		return uint64(c.I64[i]), nil
	case storage.Numeric:
		return uint64(c.Num[i]), nil
	}
	return 0, fmt.Errorf("exchange: column %s (%s) cannot be a partition key", c.Name, c.Type)
}
