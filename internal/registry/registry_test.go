package registry

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"paradigms/internal/storage"
)

func stub() Runner {
	return func(context.Context, *storage.Database, Options) any { return nil }
}

// The registry is a package global with panic-on-duplicate semantics, so
// each test execution (including `go test -count=N` reruns in one
// process) registers under a fresh dataset/engine namespace.
var testRun atomic.Int64

func testNames() (dataset, eng1, eng2 string) {
	n := testRun.Add(1)
	return fmt.Sprintf("testds%d", n), fmt.Sprintf("eng1run%d", n), fmt.Sprintf("eng2run%d", n)
}

func TestRegisterLookupAndOrdering(t *testing.T) {
	ds, eng1, eng2 := testNames()
	SetOrder(ds, []string{"B", "A"})
	Register(eng1, ds, "A", stub())
	Register(eng1, ds, "B", stub())
	Register(eng1, ds, "Z", stub()) // not in canonical order
	Register(eng2, ds, "B", stub())

	if _, ok := Lookup(eng1, ds, "A"); !ok {
		t.Fatal("registered query not found")
	}
	if _, ok := Lookup(eng1, ds, "missing"); ok {
		t.Fatal("unregistered query found")
	}
	if !HasEngine(eng1) || HasEngine("nosuch") {
		t.Fatal("HasEngine wrong")
	}
	// Canonical order first, stragglers after (alphabetical).
	if got := Queries(eng1, ds); !reflect.DeepEqual(got, []string{"B", "A", "Z"}) {
		t.Errorf("Queries = %v", got)
	}
	// Union across engines, canonical order.
	if got := QueryNames(ds); !reflect.DeepEqual(got, []string{"B", "A", "Z"}) {
		t.Errorf("QueryNames = %v", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	ds, eng1, _ := testNames()
	Register(eng1, ds, "dup", stub())
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(eng1, ds, "dup", stub())
}
