// Package registry is the engine-agnostic query catalog — an extension
// beyond the paper's fixed query set. Every executable query is one
// registration (engine × dataset × name → Runner) made from the engine
// package's init: internal/typer registers its fused pipelines,
// internal/tw its monolithic vectorized queries, internal/plan its
// declarative operator plans, and internal/queries the reference oracles
// (under the pseudo-engine Reference). The facade (paradigms.RunContext),
// the benchmark harness (internal/bench), and the query service workload
// drivers all dispatch through Lookup, so adding a query is one
// registration per engine — no per-caller switch to extend.
package registry

import (
	"context"
	"sort"
	"sync"

	"paradigms/internal/storage"
)

// Engine names. These are the spellings used throughout the repo (facade
// Engine constants, bench harness, serve flags). Reference is the
// pseudo-engine of the internal/queries correctness oracles.
const (
	Typer      = "typer"
	Tectorwise = "tectorwise"
	// Hybrid is the per-pipeline mixed-paradigm executor
	// (internal/hybrid): each pipeline of a query runs on whichever
	// backend — fused or vectorized — suits it, exchanging data through
	// the shared materialization boundaries.
	Hybrid    = "hybrid"
	Reference = "reference"
)

// Options carries the per-run execution knobs. VectorSize is only
// meaningful to vectorized runners; fused engines ignore it.
type Options struct {
	// Workers is the number of morsel workers (0 = GOMAXPROCS).
	Workers int
	// VectorSize is the tuples-per-vector of a vectorized runner (0 =
	// vector.DefaultSize).
	VectorSize int
}

// Runner executes one query on one database and returns its typed result
// (queries.Q1Result, …). Runners must honor ctx the way the engines do:
// once ctx is done, morsel dispatchers report exhaustion and the runner
// returns promptly with a partial result the caller discards.
type Runner func(ctx context.Context, db *storage.Database, opt Options) any

type key struct{ engine, dataset, name string }

// AdHoc executes one ad-hoc SQL text on one database — the registry's
// second dispatch surface, next to the named-query Runners. An engine
// registers at most one ad-hoc runner (the SQL front-end registers the
// Tectorwise lowering).
type AdHoc func(ctx context.Context, db *storage.Database, sqlText string, opt Options) (any, error)

var (
	mu      sync.RWMutex
	runners = map[key]Runner{}
	adhoc   = map[string]AdHoc{}
	order   = map[string][]string{} // dataset → canonical query order
)

// Register adds a query runner for (engine, dataset, name). It panics on
// duplicate registration — two packages claiming the same query is a
// wiring bug, not a runtime condition.
func Register(engine, dataset, name string, run Runner) {
	if run == nil {
		panic("registry: nil runner for " + engine + "/" + dataset + "/" + name)
	}
	k := key{engine, dataset, name}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := runners[k]; dup {
		panic("registry: duplicate registration " + engine + "/" + dataset + "/" + name)
	}
	runners[k] = run
}

// RegisterAdHoc adds an engine's ad-hoc SQL runner. Like Register it
// panics on duplicates.
func RegisterAdHoc(engine string, run AdHoc) {
	if run == nil {
		panic("registry: nil ad-hoc runner for " + engine)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := adhoc[engine]; dup {
		panic("registry: duplicate ad-hoc registration for " + engine)
	}
	adhoc[engine] = run
}

// LookupAdHoc returns the engine's ad-hoc SQL runner.
func LookupAdHoc(engine string) (AdHoc, bool) {
	mu.RLock()
	defer mu.RUnlock()
	r, ok := adhoc[engine]
	return r, ok
}

// Lookup returns the runner registered for (engine, dataset, name).
func Lookup(engine, dataset, name string) (Runner, bool) {
	mu.RLock()
	defer mu.RUnlock()
	r, ok := runners[key{engine, dataset, name}]
	return r, ok
}

// HasEngine reports whether any query is registered under engine — used
// to distinguish "unknown engine" from "unknown query" in errors.
func HasEngine(engine string) bool {
	mu.RLock()
	defer mu.RUnlock()
	for k := range runners {
		if k.engine == engine {
			return true
		}
	}
	return false
}

// SetOrder declares the canonical listing order of a dataset's queries
// (paper order). Names never registered are simply absent from listings;
// registered names missing from the order sort after it, alphabetically.
func SetOrder(dataset string, names []string) {
	mu.Lock()
	defer mu.Unlock()
	order[dataset] = append([]string(nil), names...)
}

// rank returns the canonical position of name, or a large sentinel.
// Caller holds mu (read or write).
func rank(dataset, name string) int {
	for i, n := range order[dataset] {
		if n == name {
			return i
		}
	}
	return 1 << 30
}

// sortCanonical orders names by (canonical rank, name).
func sortCanonical(dataset string, names []string) []string {
	sort.Slice(names, func(i, j int) bool {
		ri, rj := rank(dataset, names[i]), rank(dataset, names[j])
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	return names
}

// Queries lists the query names registered for (engine, dataset) in
// canonical order.
func Queries(engine, dataset string) []string {
	mu.RLock()
	defer mu.RUnlock()
	var names []string
	for k := range runners {
		if k.engine == engine && k.dataset == dataset {
			names = append(names, k.name)
		}
	}
	return sortCanonical(dataset, names)
}

// QueryNames lists every query name registered for dataset under any
// engine, in canonical order — the service-facing "what can I run here"
// list.
func QueryNames(dataset string) []string {
	mu.RLock()
	defer mu.RUnlock()
	seen := map[string]bool{}
	var names []string
	for k := range runners {
		if k.dataset == dataset && !seen[k.name] {
			seen[k.name] = true
			names = append(names, k.name)
		}
	}
	return sortCanonical(dataset, names)
}
