package logical

import (
	"strconv"

	"paradigms/internal/sql"
)

// foldSelect runs the constant-folding rewrite over every expression of
// the statement: literal arithmetic collapses to a single pre-scaled
// literal (20 + 4 compared to l_quantity becomes 2400 raw), so the
// lowering only ever sees column-vs-literal predicates.
func foldSelect(sel *sql.Select) {
	if sel.Where != nil {
		sel.Where = foldExpr(sel.Where)
	}
	for i := range sel.Items {
		sel.Items[i].Expr = foldExpr(sel.Items[i].Expr)
	}
	if sel.Having != nil {
		sel.Having = foldExpr(sel.Having)
	}
	for i := range sel.OrderBy {
		if sel.OrderBy[i].Item < 0 {
			sel.OrderBy[i].Expr = foldExpr(sel.OrderBy[i].Expr)
		}
	}
}

// foldExpr folds literal arithmetic bottom-up. The binder has already
// unified operand scales, so folding is plain integer arithmetic.
func foldExpr(e sql.Expr) sql.Expr {
	switch x := e.(type) {
	case *sql.Binary:
		x.L = foldExpr(x.L)
		x.R = foldExpr(x.R)
		l, lok := x.L.(*sql.NumLit)
		r, rok := x.R.(*sql.NumLit)
		if lok && rok {
			var v int64
			switch x.Op {
			case sql.OpAdd:
				v = l.Val + r.Val
			case sql.OpSub:
				v = l.Val - r.Val
			case sql.OpMul:
				v = l.Val * r.Val
			default:
				return x
			}
			return &sql.NumLit{P: x.P, Text: strconv.FormatInt(v, 10), Val: v, Typ: x.Typ}
		}
		return x
	case *sql.Not:
		x.X = foldExpr(x.X)
		return x
	case *sql.Between:
		x.X = foldExpr(x.X)
		x.Lo = foldExpr(x.Lo)
		x.Hi = foldExpr(x.Hi)
		return x
	case *sql.InList:
		x.X = foldExpr(x.X)
		for i := range x.List {
			x.List[i] = foldExpr(x.List[i])
		}
		return x
	case *sql.Agg:
		if x.Arg != nil {
			x.Arg = foldExpr(x.Arg)
		}
		return x
	}
	return e
}

// evalConst evaluates a column-free predicate (e.g. 1 = 1 after
// folding) at plan time.
func evalConst(e sql.Expr) (bool, error) {
	v, isBool, err := evalScalar(e, nil)
	if err != nil {
		return false, err
	}
	if !isBool {
		return false, sql.Errf(e.Pos(), "constant conjunct %s is not a predicate", sql.String(e))
	}
	return v != 0, nil
}

// evalScalar evaluates an expression over scalar 64-bit values, with
// leaves (column references, aggregate calls) resolved by lookup. It is
// used for constant conjuncts at plan time and for HAVING / generic
// filter predicates at execution time. Booleans are 0/1 with isBool
// set.
func evalScalar(e sql.Expr, lookup func(sql.Expr) (int64, bool)) (val int64, isBool bool, err error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch x := e.(type) {
	case *sql.NumLit:
		return x.Val, false, nil
	case *sql.DateLit:
		return int64(x.Days), false, nil
	case *sql.ColRef, *sql.Agg, *sql.Param:
		if lookup != nil {
			if v, ok := lookup(e); ok {
				return v, false, nil
			}
		}
		return 0, false, sql.Errf(e.Pos(), "cannot evaluate %s here", sql.String(e))
	case *sql.Not:
		v, _, err := evalScalar(x.X, lookup)
		if err != nil {
			return 0, false, err
		}
		return b2i(v == 0), true, nil
	case *sql.Between:
		v, _, err := evalScalar(x.X, lookup)
		if err != nil {
			return 0, false, err
		}
		lo, _, err := evalScalar(x.Lo, lookup)
		if err != nil {
			return 0, false, err
		}
		hi, _, err := evalScalar(x.Hi, lookup)
		if err != nil {
			return 0, false, err
		}
		in := v >= lo && v <= hi
		return b2i(in != x.Negate), true, nil
	case *sql.InList:
		v, _, err := evalScalar(x.X, lookup)
		if err != nil {
			return 0, false, err
		}
		found := false
		for _, l := range x.List {
			lv, _, err := evalScalar(l, lookup)
			if err != nil {
				return 0, false, err
			}
			if lv == v {
				found = true
				break
			}
		}
		return b2i(found != x.Negate), true, nil
	case *sql.Binary:
		l, _, err := evalScalar(x.L, lookup)
		if err != nil {
			return 0, false, err
		}
		// AND short-circuits so canceled-out predicates stay cheap.
		if x.Op == sql.OpAnd && l == 0 {
			return 0, true, nil
		}
		if x.Op == sql.OpOr && l != 0 {
			return 1, true, nil
		}
		r, _, err := evalScalar(x.R, lookup)
		if err != nil {
			return 0, false, err
		}
		switch x.Op {
		case sql.OpAdd:
			return l + r, false, nil
		case sql.OpSub:
			return l - r, false, nil
		case sql.OpMul:
			return l * r, false, nil
		case sql.OpEq:
			return b2i(l == r), true, nil
		case sql.OpNe:
			return b2i(l != r), true, nil
		case sql.OpLt:
			return b2i(l < r), true, nil
		case sql.OpLe:
			return b2i(l <= r), true, nil
		case sql.OpGt:
			return b2i(l > r), true, nil
		case sql.OpGe:
			return b2i(l >= r), true, nil
		case sql.OpAnd, sql.OpOr:
			return b2i(r != 0), true, nil
		}
	}
	return 0, false, sql.Errf(e.Pos(), "cannot evaluate %s", sql.String(e))
}
