package logical

import (
	"paradigms/internal/catalog"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/plan"
	"paradigms/internal/vector"
)

// This file is the vectorized backend's surface for the hybrid
// per-pipeline executor (internal/hybrid): it exposes the lowered
// pipeline structure — identical decomposition to internal/compiled's,
// since both recurse over the same optimized plan with the same
// deterministic column ordering — so the hybrid driver can run any
// individual pipeline vector-at-a-time while its neighbours run fused.
// The driver owns all shared execution state (dispatchers, hash
// tables, spill, barrier); this surface binds that state in and builds
// per-worker operator trees and sinks for one pipeline at a time.

// VecProgram is a query lowered onto the vectorized operator layer,
// ready for per-pipeline execution under an external driver.
type VecProgram struct {
	pl   *Plan
	prog *program
}

// LowerVec lowers an optimized, fully bound logical plan for the
// hybrid executor.
func LowerVec(pl *Plan) (*VecProgram, error) {
	prog, err := lower(pl)
	if err != nil {
		return nil, err
	}
	return &VecProgram{pl: pl, prog: prog}, nil
}

// NumPipes returns the pipeline count (build pipelines before their
// prober, the final pipeline last).
func (p *VecProgram) NumPipes() int { return len(p.prog.pipes) }

// IsBuild reports whether pipeline i terminates in a hash-table build.
func (p *VecProgram) IsBuild(i int) bool { return p.prog.pipes[i].keyCol != nil }

// PayWidth returns the payload-column count of build pipeline i.
func (p *VecProgram) PayWidth(i int) int { return len(p.prog.pipes[i].pays) }

// TableName returns the spine table of pipeline i.
func (p *VecProgram) TableName(i int) string { return p.prog.pipes[i].scan.Table.Name }

// Bind attaches the driver-owned per-execution state to pipeline i:
// the shared morsel dispatcher and — for build pipelines — the shared
// hash table its probers will read (nil for the final pipeline). The
// same table must be bound into the compiled program so cross-engine
// probes read what either engine built.
func (p *VecProgram) Bind(i int, ht *hashtable.Table, disp *exec.Dispatcher) {
	p.prog.pipes[i].disp = disp
	p.prog.pipes[i].ht = ht
}

// VecWorker assembles one worker's operator trees and sinks over a
// VecProgram. The hash function overrides the probe/build hash of
// every join table (the hybrid executor standardizes on the compiled
// backend's Mix64 so tables interoperate across engines); aggregation
// spills keep the engine-default hash — they never cross engines,
// because the driver runs every worker of a pipeline on one engine.
type VecWorker struct {
	p *VecProgram
	e *plan.Exec
	w *worker
}

// NewWorker creates the per-worker assembly state.
func (p *VecProgram) NewWorker(e *plan.Exec, bufs *vector.Buffers, hash plan.HashFn) *VecWorker {
	return &VecWorker{
		p: p,
		e: e,
		w: &worker{bufs: bufs, colBuf: map[*pipeSpec]map[*catalog.Column][]uint64{}, hash: hash},
	}
}

// PipeRoot builds the operator tree of pipeline i for this worker,
// returning the root operator and the scan handle (for micro-adaptive
// vector retuning).
func (vw *VecWorker) PipeRoot(i int) (plan.Operator, *plan.Scan) {
	return vw.w.pipeRoot(vw.p.prog.pipes[i], vw.e)
}

// BuildSink creates the hash-build sink of build pipeline i for worker
// wid, with the worker's hash override applied. The driver runs the
// two-barrier publish itself (tw.BuildBarrier or the manual sequence),
// not Sink.Finish.
func (vw *VecWorker) BuildSink(i, wid int) *plan.HashBuildSink {
	ps := vw.p.prog.pipes[i]
	key := vw.w.srcVecU64(ps, colSrc{base: ps.keyCol})
	pays := make([]plan.VecU64, len(ps.pays))
	for j, src := range ps.paySrc {
		pays[j] = vw.w.srcVecU64(ps, src)
	}
	sink := plan.NewHashBuild(vw.w.bufs, ps.ht, wid, key, pays...)
	sink.SetHash(vw.w.hash)
	return sink
}

// GroupBySink creates the final pipeline's keyed-aggregation sink
// (phase one) for worker wid, spilling into the driver-owned spill.
func (vw *VecWorker) GroupBySink(wid int, spill *hashtable.Spill, htOps []hashtable.AggOp) *plan.GroupBySink {
	final := vw.p.prog.final
	agg := vw.p.pl.Agg
	key := vw.w.groupKey(final, agg)
	vals := make([]plan.VecI64, len(agg.Aggs))
	for j, s := range agg.Aggs {
		vals[j] = vw.w.aggInput(final, s)
	}
	return plan.NewGroupBy(vw.w.bufs, spill, wid, htOps, key, vals...)
}

// GlobalSink creates the final pipeline's ungrouped-aggregation sink;
// the worker's partial lands in *out at Finish.
func (vw *VecWorker) GlobalSink(out *GlobalPartial) plan.Sink {
	return newGlobalAggSink(vw.w, vw.p.prog.final, vw.p.pl.Agg, out)
}

// CollectSink creates the final pipeline's projection sink,
// materializing rows into *out.
func (vw *VecWorker) CollectSink(out *[][]int64) plan.Sink {
	sink := &collectSink{out: out}
	sink.exprs = make([]vec64, len(vw.p.pl.Proj))
	for j, e := range vw.p.pl.Proj {
		sink.exprs[j] = vw.w.vecI64(vw.p.prog.final, e)
	}
	return sink
}
