package logical

import (
	"context"
	"fmt"

	"paradigms/internal/catalog"
)

// Partial is one shard's share of a query: the per-worker state each
// backend produces *before* the finalization tail (HAVING, ORDER BY,
// LIMIT, item mapping). Exactly one field is populated, matching the
// plan's shape. Keeping HAVING/sort/limit out of the shard output is
// what makes cross-shard merging safe: a HAVING predicate over a
// partial aggregate would filter on incomplete values, so shards ship
// raw partials and only the coordinator finalizes.
type Partial struct {
	// Groups holds merged group rows in slot layout [keys..., aggs...]
	// (keyed aggregation). Within one shard each group key appears at
	// most once; across shards the coordinator re-merges by key.
	Groups [][]int64
	// Globals holds the per-worker accumulators of a global aggregate.
	Globals []GlobalPartial
	// Rows holds projection rows in item layout (no aggregation).
	Rows [][]int64
}

// ExecutePartial runs the plan morsel-parallel on the vectorized
// backend but stops before finalization, returning the shard-local
// partial state for MergePartials. It is Execute minus FinalizeRows —
// the scatter side of the exchange.
func (pl *Plan) ExecutePartial(ctx context.Context, workers, vecSize int) (part *Partial, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logical: internal error executing query: %v", r)
		}
	}()
	if len(pl.Params) > 0 {
		return nil, fmt.Errorf("logical: statement has %d unbound parameter(s); use ExecutePartialArgs", len(pl.Params))
	}
	part = &Partial{}
	if _, err := pl.executeInto(ctx, workers, vecSize, nil, 0, part); err != nil {
		return nil, err
	}
	return part, nil
}

// ExecutePartialArgs is ExecutePartial for parameterized plans (the
// binding substitutes into a copy-on-write clone, like ExecuteArgs).
func (pl *Plan) ExecutePartialArgs(ctx context.Context, workers, vecSize int, args []int64) (part *Partial, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logical: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, err
	}
	return bound.ExecutePartial(ctx, workers, vecSize)
}

// MergePartials is the gather side of the exchange: it combines the
// shards' partial states and runs the shared finalization tail, so the
// distributed path reuses exactly the HAVING/ORDER BY/LIMIT semantics
// of single-process execution. With one partial from one shard the
// result is bit-identical to Execute (merging preserves first-seen
// group order, and a single shard has no duplicate keys).
func (pl *Plan) MergePartials(parts []*Partial) (*Result, error) {
	agg := pl.Agg
	switch {
	case agg != nil && len(agg.Keys) > 0:
		return pl.FinalizeRows(MergeGroupRows(agg, parts))
	case agg != nil:
		var gps []GlobalPartial
		for _, p := range parts {
			gps = append(gps, p.Globals...)
		}
		return pl.FinalizeRows([][]int64{MergeGlobal(agg, gps)})
	default:
		var rows [][]int64
		for _, p := range parts {
			rows = append(rows, p.Rows...)
		}
		return pl.FinalizeRows(rows)
	}
}

// EncodeGroupKey packs a slot-layout row's key columns back into the
// group-key word — the encode side of DecodeGroupKey (single keys as
// zero-extended words, 32-bit pairs packed lo|hi<<32), used to re-key
// group rows when merging shard partials.
func EncodeGroupKey(keys []*catalog.Column, row []int64) uint64 {
	if len(keys) == 1 {
		return uint64(row[0])
	}
	return uint64(uint32(row[0])) | uint64(uint32(row[1]))<<32
}

// MergeGroupRows combines the shards' merged group rows (slot layout
// [keys..., aggs...]) by group key with the same per-op semantics as
// the spill merge: sums and counts add, min/max compare, first keeps
// the first-seen value (OpFirst slots are functionally determined by
// the key, so every shard agrees on them). Output preserves first-seen
// insertion order, which keeps the N=1 path bit-identical to the
// single-process concatenation.
func MergeGroupRows(agg *Aggregate, parts []*Partial) [][]int64 {
	nk := len(agg.Keys)
	idx := make(map[uint64]int)
	var out [][]int64
	for _, p := range parts {
		for _, r := range p.Groups {
			k := EncodeGroupKey(agg.Keys, r)
			j, ok := idx[k]
			if !ok {
				idx[k] = len(out)
				out = append(out, append([]int64(nil), r...))
				continue
			}
			dst := out[j]
			for a, s := range agg.Aggs {
				switch s.Op {
				case OpSum, OpCount:
					dst[nk+a] += r[nk+a]
				case OpMin:
					if r[nk+a] < dst[nk+a] {
						dst[nk+a] = r[nk+a]
					}
				case OpMax:
					if r[nk+a] > dst[nk+a] {
						dst[nk+a] = r[nk+a]
					}
				}
			}
		}
	}
	return out
}
