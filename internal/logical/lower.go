package logical

import (
	"sort"

	"paradigms/internal/catalog"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/sql"
)

// The lowering pass turns the optimized logical plan into pipeline
// specifications over the physical operator layer. Each Node maps to
// one pipeline: a build-side chain becomes scan → filter cascade →
// probes of its own sub-chains → HashBuildSink; the final pipeline ends
// in the query's sink (grouped spill, global aggregate, or row
// collector). The specs are engine-shaped exactly like the hand-written
// plans in internal/plan: shared hash tables and dispatchers, per-worker
// operator trees, derived vectors in per-worker buffers carried through
// probes.

// colSrc locates a column's value within one pipeline: a base column of
// the pipeline's spine table, or a word gathered from a probe step's
// hash table.
type colSrc struct {
	base *catalog.Column
	step int
	word int
}

type gatherSpec struct {
	word int
	col  *catalog.Column
}

type stepSpec struct {
	join      *Join
	build     *pipeSpec
	probeKey  *catalog.Column
	gathers   []gatherSpec
	residuals [][2]colSrc
}

// pipeSpec is one compiled pipeline.
type pipeSpec struct {
	scan  *Scan
	steps []*stepSpec

	// Build-side output: the hash-table key column (a base column of
	// scan.Table) and payload columns in word order (word 1+i). Nil
	// keyCol marks the final pipeline.
	keyCol *catalog.Column
	pays   []*catalog.Column
	paySrc []colSrc

	srcOf map[*catalog.Column]colSrc

	// Per-execution shared state.
	ht        *hashtable.Table
	disp      *exec.Dispatcher
	rejectAll bool
}

type program struct {
	pl    *Plan
	pipes []*pipeSpec // dependency order: build pipelines before their prober; final last
	final *pipeSpec
}

// lower compiles the plan's node tree into pipeline specs.
func lower(pl *Plan) (*program, error) {
	prog := &program{pl: pl}
	needed := map[*catalog.Column]bool{}
	if pl.Agg != nil {
		for _, k := range pl.Agg.Keys {
			needed[k] = true
		}
		for _, s := range pl.Agg.Aggs {
			if s.Arg != nil {
				sql.WalkCols(s.Arg, func(c *catalog.Column) { needed[c] = true })
			}
		}
	}
	for _, e := range pl.Proj {
		sql.WalkCols(e, func(c *catalog.Column) { needed[c] = true })
	}
	final, err := compilePipe(pl.Root, sortedCols(needed), prog)
	if err != nil {
		return nil, err
	}
	final.rejectAll = pl.AlwaysFalse
	prog.final = final
	return prog, nil
}

// sortedCols renders a column set deterministic.
func sortedCols(set map[*catalog.Column]bool) []*catalog.Column {
	out := make([]*catalog.Column, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table.Name != out[j].Table.Name {
			return out[i].Table.Name < out[j].Table.Name
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func tablesUnder(n Node) map[*catalog.Table]bool {
	out := map[*catalog.Table]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			out[x.Table] = true
		case *Join:
			walk(x.Build)
			walk(x.Probe)
		}
	}
	walk(n)
	return out
}

// compilePipe compiles the pipeline rooted at n, which must produce the
// needed columns for its consumer. Build pipelines append themselves to
// prog before their prober (execution order).
func compilePipe(n Node, needed []*catalog.Column, prog *program) (*pipeSpec, error) {
	spine := n.Spine()
	var joins []*Join
	for cur := n; ; {
		j, ok := cur.(*Join)
		if !ok {
			break
		}
		joins = append([]*Join{j}, joins...) // innermost probe first
		cur = j.Probe
	}

	ps := &pipeSpec{scan: spine, srcOf: map[*catalog.Column]colSrc{}}
	// Every pushed-down conjunct must be row-evaluable: the generic
	// fallback predicate is not allowed to fail (= silently drop rows)
	// at execution time.
	for _, f := range spine.Filters {
		if err := validateRowPred(f); err != nil {
			return nil, err
		}
	}

	// Everything this pipeline must materialize: consumer needs plus its
	// own residual operands.
	req := map[*catalog.Column]bool{}
	for _, c := range needed {
		req[c] = true
	}
	for _, j := range joins {
		for _, r := range j.Residuals {
			req[r[0]] = true
			req[r[1]] = true
		}
	}
	reqList := sortedCols(req)

	for i, j := range joins {
		chainTabs := tablesUnder(j.Build)
		// Columns the chain must expose as payloads (its hash key rides
		// in word 0 and needs no payload slot).
		var pays []*catalog.Column
		for _, c := range reqList {
			if chainTabs[c.Table] && c != j.BuildKey {
				pays = append(pays, c)
			}
		}
		bp, err := compilePipe(j.Build, pays, prog)
		if err != nil {
			return nil, err
		}
		bp.keyCol = j.BuildKey
		bp.pays = pays
		bp.paySrc = make([]colSrc, len(pays))
		for pi, c := range pays {
			bp.paySrc[pi] = bp.resolve(c)
		}
		st := &stepSpec{join: j, build: bp, probeKey: j.ProbeKey}
		// Gather every required column of this chain at the probe.
		for _, c := range reqList {
			if !chainTabs[c.Table] {
				continue
			}
			word := 0
			if c != j.BuildKey {
				word = 1 + indexOfCol(pays, c)
			}
			st.gathers = append(st.gathers, gatherSpec{word: word, col: c})
			ps.srcOf[c] = colSrc{step: i, word: word}
		}
		ps.steps = append(ps.steps, st)
		// Residuals attached to this join: both operands are available
		// by now (the planner placed them at the first such join).
		for _, r := range j.Residuals {
			st.residuals = append(st.residuals, [2]colSrc{ps.resolve(r[0]), ps.resolve(r[1])})
		}
	}
	prog.pipes = append(prog.pipes, ps)
	return ps, nil
}

func indexOfCol(cols []*catalog.Column, c *catalog.Column) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	panic("logical: column missing from payload list")
}

// resolve locates a column within the pipeline.
func (ps *pipeSpec) resolve(c *catalog.Column) colSrc {
	if c.Table == ps.scan.Table {
		return colSrc{base: c}
	}
	src, ok := ps.srcOf[c]
	if !ok {
		panic("logical: column " + c.Table.Name + "." + c.Name + " not materialized in pipeline over " + ps.scan.Table.Name)
	}
	return src
}
