package logical

import (
	"strings"
	"testing"

	"paradigms/internal/sql"
)

// These tests assert on the *shape* of the optimized logical plan — not
// on query output — so each rewrite is pinned independently.

func mustPlan(t *testing.T, dataset, text string) *Plan {
	t.Helper()
	tp, sb := testDBs()
	db := tp[0.01]
	if dataset == "ssb" {
		db = sb[0.01]
	}
	pl, err := Prepare(db, text)
	if err != nil {
		t.Fatalf("plan %q: %v", text, err)
	}
	return pl
}

// TestPredicatePushdown: every single-table WHERE conjunct lands in its
// table's scan, none survive anywhere else.
func TestPredicatePushdown(t *testing.T) {
	text, _ := SQLText("tpch", "Q3")
	pl := mustPlan(t, "tpch", text)

	var scans []*Scan
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			scans = append(scans, x)
		case *Join:
			walk(x.Build)
			walk(x.Probe)
		}
	}
	walk(pl.Root)

	byTable := map[string]*Scan{}
	for _, s := range scans {
		byTable[s.Table.Name] = s
	}
	cust, ord, li := byTable["customer"], byTable["orders"], byTable["lineitem"]
	if cust == nil || ord == nil || li == nil {
		t.Fatalf("expected scans of customer/orders/lineitem, got %v", byTable)
	}
	if len(cust.Filters) != 1 || !strings.Contains(sql.String(cust.Filters[0]), "c_mktsegment") {
		t.Errorf("customer scan filters = %v, want the mktsegment predicate", filterStrs(cust))
	}
	if len(ord.Filters) != 1 || !strings.Contains(sql.String(ord.Filters[0]), "o_orderdate") {
		t.Errorf("orders scan filters = %v, want the orderdate predicate", filterStrs(ord))
	}
	if len(li.Filters) != 1 || !strings.Contains(sql.String(li.Filters[0]), "l_shipdate") {
		t.Errorf("lineitem scan filters = %v, want the shipdate predicate", filterStrs(li))
	}

	// BETWEEN desugars into a two-conjunct cascade on the scan.
	q6text, _ := SQLText("tpch", "Q6")
	q6 := mustPlan(t, "tpch", q6text)
	sc, ok := q6.Root.(*Scan)
	if !ok {
		t.Fatalf("Q6 plan root is %T, want a bare scan", q6.Root)
	}
	if len(sc.Filters) != 5 {
		t.Errorf("Q6 scan has %d conjuncts, want 5 (date×2, discount between→2, quantity)", len(sc.Filters))
	}
}

// TestJoinOrder: hash tables build on the smaller, key-unique dimension
// side; the fact table is the probe spine; selective chains probe
// first; the cross-chain nation equality becomes a residual.
func TestJoinOrder(t *testing.T) {
	text, _ := SQLText("tpch", "Q5")
	pl := mustPlan(t, "tpch", text)

	// Spine of the final pipeline is lineitem (the largest table).
	if got := pl.Root.Spine().Table.Name; got != "lineitem" {
		t.Fatalf("final pipeline spine = %s, want lineitem", got)
	}

	// Outermost join (last probe) is the orders chain; beneath it the
	// supplier chain probes first (smaller filtered build side).
	top, ok := pl.Root.(*Join)
	if !ok {
		t.Fatal("plan root is not a join")
	}
	if top.BuildKey.Name != "o_orderkey" || top.ProbeKey.Name != "l_orderkey" {
		t.Errorf("outer join keys = %s/%s, want l_orderkey = o_orderkey", top.ProbeKey.Name, top.BuildKey.Name)
	}
	inner, ok := top.Probe.(*Join)
	if !ok {
		t.Fatal("expected a second probe beneath the orders join")
	}
	if inner.BuildKey.Name != "s_suppkey" {
		t.Errorf("inner join build key = %s, want s_suppkey", inner.BuildKey.Name)
	}

	// The c_nationkey = s_nationkey equality cannot be a hash join
	// (neither side is a unique key): it must be a residual on the join
	// where both chains have been probed.
	if len(top.Residuals) != 1 {
		t.Fatalf("outer join residuals = %v, want the nation equality", top.Residuals)
	}
	r := top.Residuals[0]
	names := []string{r[0].Name, r[1].Name}
	if !(contains(names, "c_nationkey") && contains(names, "s_nationkey")) {
		t.Errorf("residual joins %v, want c_nationkey = s_nationkey", names)
	}

	// The orders chain builds customer's hash table on c_custkey
	// (customer is the smaller side of that chain's join).
	ordChain, ok := top.Build.(*Join)
	if !ok || ordChain.Spine().Table.Name != "orders" {
		t.Fatalf("orders chain spine = %v, want orders streaming a customer build", top.Build)
	}
	if ordChain.BuildKey.Name != "c_custkey" {
		t.Errorf("orders chain builds on %s, want c_custkey", ordChain.BuildKey.Name)
	}

	// The supplier chain is the snowflake supplier ← nation ← region.
	suppChain, ok := inner.Build.(*Join)
	if !ok || suppChain.Spine().Table.Name != "supplier" {
		t.Fatalf("supplier chain = %v, want supplier probing nation", inner.Build)
	}
	if suppChain.BuildKey.Name != "n_nationkey" {
		t.Errorf("supplier chain builds on %s, want n_nationkey", suppChain.BuildKey.Name)
	}
	nationChain, ok := suppChain.Build.(*Join)
	if !ok || nationChain.BuildKey.Name != "r_regionkey" {
		t.Fatalf("nation chain = %v, want nation probing region on r_regionkey", suppChain.Build)
	}
}

// TestProjectionPruning: scans list only the columns later operators
// consume; filter-only columns are excluded.
func TestProjectionPruning(t *testing.T) {
	text, _ := SQLText("tpch", "Q6")
	pl := mustPlan(t, "tpch", text)
	sc := pl.Root.(*Scan)
	cols := map[string]bool{}
	for _, c := range sc.Cols {
		cols[c.Name] = true
	}
	if !cols["l_extendedprice"] || !cols["l_discount"] {
		t.Errorf("Q6 scan cols = %v, want the two revenue inputs", colNames(sc.Cols))
	}
	if cols["l_shipdate"] || cols["l_quantity"] {
		t.Errorf("Q6 scan cols = %v: filter-only columns must be pruned", colNames(sc.Cols))
	}

	q3text, _ := SQLText("tpch", "Q3")
	q3 := mustPlan(t, "tpch", q3text)
	var custScan *Scan
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			if x.Table.Name == "customer" {
				custScan = x
			}
		case *Join:
			walk(x.Build)
			walk(x.Probe)
		}
	}
	walk(q3.Root)
	if custScan == nil {
		t.Fatal("no customer scan in Q3 plan")
	}
	if len(custScan.Cols) != 1 || custScan.Cols[0].Name != "c_custkey" {
		t.Errorf("customer scan cols = %v, want only the join key c_custkey", colNames(custScan.Cols))
	}
}

// TestConstantFolding: literal arithmetic folds before pushdown, so the
// scan predicate compares against a single pre-scaled literal.
func TestConstantFolding(t *testing.T) {
	pl := mustPlan(t, "tpch", `select sum(l_extendedprice) from lineitem where l_quantity < 20 + 4`)
	sc := pl.Root.(*Scan)
	if len(sc.Filters) != 1 {
		t.Fatalf("filters = %v", sc.Filters)
	}
	got := sql.String(sc.Filters[0])
	if strings.Contains(got, "+") || !strings.Contains(got, "24") {
		t.Errorf("folded predicate = %s, want a single folded literal (no arithmetic)", got)
	}
	// The folded literal carries the column's raw scale (24.00 → 2400).
	lit, ok := sc.Filters[0].(*sql.Binary).R.(*sql.NumLit)
	if !ok || lit.Val != 2400 {
		t.Errorf("folded literal = %#v, want raw value 2400 at scale 2", sc.Filters[0].(*sql.Binary).R)
	}
}

// TestGroupKeyReduction: grouping columns functionally determined by a
// kept key demote to first-value slots (Q3: group by l_orderkey only).
func TestGroupKeyReduction(t *testing.T) {
	text, _ := SQLText("tpch", "Q3")
	pl := mustPlan(t, "tpch", text)
	if pl.Agg == nil {
		t.Fatal("Q3 plan has no aggregate")
	}
	if len(pl.Agg.Keys) != 1 || pl.Agg.Keys[0].Name != "l_orderkey" {
		t.Fatalf("Q3 kept keys = %v, want [l_orderkey]", colNames(pl.Agg.Keys))
	}
	firsts := 0
	for _, s := range pl.Agg.Aggs {
		if s.Op == OpFirst {
			firsts++
		}
	}
	if firsts != 2 {
		t.Errorf("Q3 has %d first-value slots, want 2 (o_orderdate, o_shippriority)", firsts)
	}

	// Q2.1 keeps both independent keys, packed.
	q21, _ := SQLText("ssb", "Q2.1")
	pl2 := mustPlan(t, "ssb", q21)
	if len(pl2.Agg.Keys) != 2 {
		t.Errorf("Q2.1 kept keys = %v, want both d_year and p_brand1", colNames(pl2.Agg.Keys))
	}
}

// TestFormat pins the EXPLAIN rendering the shape tests and sqlsh rely
// on.
func TestFormat(t *testing.T) {
	text, _ := SQLText("tpch", "Q3")
	pl := mustPlan(t, "tpch", text)
	out := pl.Format()
	for _, want := range []string{
		"limit 10",
		"groupby keys=[l_orderkey] (reduced from [l_orderkey o_orderdate o_shippriority])",
		"hashjoin l_orderkey = o_orderkey",
		"scan customer σ((c_mktsegment = 'BUILDING'))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func filterStrs(s *Scan) []string {
	var out []string
	for _, f := range s.Filters {
		out = append(out, sql.String(f))
	}
	return out
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
