package logical

import (
	"fmt"
	"sort"
	"strings"
)

// The distribute rewrite decides whether an optimized plan can run as
// scatter/gather over hash-partitioned shards. The shape follows the
// promql-engine distribute rewrite: scans, filters, joins, and partial
// aggregation are pushed below a scatter exchange (each shard runs the
// whole pipeline tree over its slice via ExecutePartial), and a gather
// exchange on the coordinator merges the partials (MergePartials)
// before the shared finalization tail. Distribution is purely a data-
// placement question here — each shard executes the full plan locally,
// so the rewrite's job is proving that summing per-shard partials
// equals the global answer.

// DistMode says how a distributable plan fans out.
type DistMode int

const (
	// DistScatter fans the plan out to every shard: it reads at least
	// one partitioned table, and every partitioned row reaches exactly
	// one shard.
	DistScatter DistMode = iota
	// DistSingle routes the plan to a single shard: it reads only
	// replicated tables, so any one shard holds all of its data (and
	// running it everywhere would duplicate rows).
	DistSingle
)

// DistPlan is a plan annotated with its exchange placement.
type DistPlan struct {
	Plan *Plan
	Mode DistMode
	// PartTables lists the partitioned tables the plan reads, sorted
	// (empty in DistSingle mode).
	PartTables []string

	partKey map[string]string
}

// Distribute validates that the plan's joins respect the partitioning
// in partKey (table → hash-partition column; absent tables are
// replicated on every shard) and returns its exchange placement. A
// non-nil error means the plan is not shard-safe under this
// partitioning — e.g. a join between two partitioned tables on
// non-partition columns — and must run single-process on the full
// data.
//
// The placement argument: a row of the final pipeline is a (spine row,
// matched build rows) combination, and inner joins only multiply
// matches. If every hash build whose subtree holds partitioned data is
// keyed by that table's partition column and probed by the probe
// spine's partition column, then every matching combination is
// co-located on one shard and appears there exactly once — so
// concatenating (or re-merging, for aggregates) the shards' partials
// is exactly the single-process merge phase.
func Distribute(pl *Plan, partKey map[string]string) (*DistPlan, error) {
	seen := make(map[string]bool)
	if err := checkDist(pl.Root, partKey, seen); err != nil {
		return nil, err
	}
	dp := &DistPlan{Plan: pl, partKey: partKey}
	for t := range seen {
		dp.PartTables = append(dp.PartTables, t)
	}
	sort.Strings(dp.PartTables)
	if len(dp.PartTables) == 0 {
		dp.Mode = DistSingle
	}
	return dp, nil
}

// checkDist walks the join tree validating co-partitioning and
// collecting the partitioned tables into seen.
func checkDist(n Node, partKey map[string]string, seen map[string]bool) error {
	switch x := n.(type) {
	case *Scan:
		if partKey[x.Table.Name] != "" {
			seen[x.Table.Name] = true
		}
		return nil
	case *Join:
		if err := checkDist(x.Build, partKey, seen); err != nil {
			return err
		}
		if err := checkDist(x.Probe, partKey, seen); err != nil {
			return err
		}
		bp := make(map[string]bool)
		collectPartitioned(x.Build, partKey, bp)
		if len(bp) == 0 {
			// Fully replicated build side: every shard holds the whole
			// hash table, any probe key matches locally.
			return nil
		}
		// Partitioned data on the build side: the hash table is sliced,
		// so a probe finds its matches only if the probed key routes to
		// the same shard as the build rows. That requires the build
		// spine to be the (sole) partitioned table, built on its
		// partition key, and the probe spine co-partitioned on the
		// probe key.
		bs := x.Build.Spine().Table
		if len(bp) != 1 || !bp[bs.Name] {
			return fmt.Errorf("logical: build subtree of join %s = %s holds partitioned data below its spine", x.ProbeKey.Name, x.BuildKey.Name)
		}
		if partKey[bs.Name] != x.BuildKey.Name {
			return fmt.Errorf("logical: join builds %s on %s but it is partitioned on %s", bs.Name, x.BuildKey.Name, partKey[bs.Name])
		}
		ps := x.Probe.Spine().Table
		if partKey[ps.Name] != x.ProbeKey.Name {
			return fmt.Errorf("logical: join probes partitioned %s with %s.%s, which is not co-partitioned", bs.Name, ps.Name, x.ProbeKey.Name)
		}
		return nil
	}
	return fmt.Errorf("logical: unknown node %T in distribute rewrite", n)
}

// collectPartitioned gathers the partitioned tables scanned under n.
func collectPartitioned(n Node, partKey map[string]string, out map[string]bool) {
	switch x := n.(type) {
	case *Scan:
		if partKey[x.Table.Name] != "" {
			out[x.Table.Name] = true
		}
	case *Join:
		collectPartitioned(x.Build, partKey, out)
		collectPartitioned(x.Probe, partKey, out)
	}
}

// Format renders the distributed plan as an indented tree — the
// exchange operators wrapping the ordinary plan — for EXPLAIN output
// and the plan-shape tests. shards is the fan-out width rendered on
// the scatter node.
func (dp *DistPlan) Format(shards int) string {
	var sb strings.Builder
	pl := dp.Plan
	merge := "concat rows"
	if pl.Agg != nil {
		if len(pl.Agg.Keys) > 0 {
			merge = "merge groups"
		} else {
			merge = "merge global"
		}
	}
	var tail []string
	if pl.Having != nil {
		tail = append(tail, "having")
	}
	if len(pl.Sort) > 0 {
		tail = append(tail, "sort")
	}
	if pl.Limit >= 0 {
		tail = append(tail, "limit")
	}
	fmt.Fprintf(&sb, "gather %s", merge)
	if len(tail) > 0 {
		fmt.Fprintf(&sb, " finalize=[%s]", strings.Join(tail, " "))
	}
	sb.WriteByte('\n')
	if dp.Mode == DistSingle {
		sb.WriteString("  scatter single-shard (replicated tables only)\n")
	} else {
		parts := make([]string, len(dp.PartTables))
		for i, t := range dp.PartTables {
			parts[i] = t + "." + dp.partKey[t]
		}
		fmt.Fprintf(&sb, "  scatter shards=%d hash[%s]\n", shards, strings.Join(parts, ", "))
	}
	for _, line := range strings.Split(strings.TrimRight(pl.Format(), "\n"), "\n") {
		sb.WriteString("    ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
