package logical

import (
	"context"
	"sync"
	"testing"

	"paradigms/internal/plan"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
)

var (
	benchOnce sync.Once
	benchDB   *storage.Database
)

func benchTPCH() *storage.Database {
	benchOnce.Do(func() { benchDB = tpch.Generate(0.1, 0) })
	return benchDB
}

// BenchmarkSQLVsPlan compares each lowered SQL query against the
// hand-assembled internal/plan equivalent, single-threaded at the
// default vector size. The acceptance bound of the SQL subsystem is the
// same as the operator-layer port's: lowered Q6 and Q3 within 10% of
// the hand-written plans.
func BenchmarkSQLVsPlan(b *testing.B) {
	db := benchTPCH()
	ctx := context.Background()
	for _, name := range []string{"Q6", "Q3", "Q5", "Q18"} {
		text, _ := SQLText("tpch", name)
		pl, err := Prepare(db, text)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/sql", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pl.Execute(ctx, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/plan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch name {
				case "Q6":
					plan.Q6(db, 1, 0)
				case "Q3":
					plan.Q3(db, 1, 0)
				case "Q5":
					plan.Q5(db, 1, 0)
				case "Q18":
					plan.Q18(db, 1, 0)
				}
			}
		})
	}
}

// BenchmarkSQLFrontend isolates the parse → bind → optimize → lower
// cost (no execution): planning overhead per ad-hoc statement.
func BenchmarkSQLFrontend(b *testing.B) {
	db := benchTPCH()
	text, _ := SQLText("tpch", "Q5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Prepare(db, text); err != nil {
			b.Fatal(err)
		}
	}
}
