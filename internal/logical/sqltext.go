package logical

// Canonical SQL texts for the repo's registered benchmark queries that
// the front-end can express. The cross-validation suite parses, plans,
// and executes each and requires bit-identical results against the
// reference oracles; cmd/serve -sql mixes them into the service
// workload. ORDER BY lists carry explicit key tiebreakers so results
// are total-ordered, exactly like the oracles' comparators. (Q18 is the
// join + HAVING formulation: equivalent to the nested-IN original
// because orders ⋈ customer is N:1, so per-order quantity sums are
// unchanged by the join.)
var sqlTexts = map[string]map[string]string{
	"tpch": {
		"Q6": `select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07
  and l_quantity < 24`,

		"Q3": `select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate, l_orderkey
limit 10`,

		"Q5": `select c_nationkey, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01'
  and o_orderdate < date '1995-01-01'
group by c_nationkey
order by revenue desc, c_nationkey`,

		"Q18": `select c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) as sum_qty
from customer, orders, lineitem
where c_custkey = o_custkey
  and o_orderkey = l_orderkey
group by c_custkey, o_orderkey, o_orderdate, o_totalprice
having sum(l_quantity) > 300
order by o_totalprice desc, o_orderdate, o_orderkey
limit 100`,
	},
	"ssb": {
		"Q1.1": `select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey
  and d_year = 1993
  and lo_discount between 1 and 3
  and lo_quantity < 25`,

		"Q2.1": `select d_year, p_brand1, sum(lo_revenue) as revenue
from lineorder, date, part, supplier
where lo_orderdate = d_datekey
  and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey
  and p_category = 12
  and s_region = 1
group by d_year, p_brand1
order by d_year, p_brand1`,
	},
}

// SQLText returns the canonical SQL of a registered query ("tpch"/"ssb"
// dataset names, as on storage.Database.Name).
func SQLText(dataset, name string) (string, bool) {
	t, ok := sqlTexts[dataset][name]
	return t, ok
}

// SQLQueries lists the query names with canonical SQL for a dataset, in
// a fixed order.
func SQLQueries(dataset string) []string {
	switch dataset {
	case "tpch":
		return []string{"Q6", "Q3", "Q5", "Q18"}
	case "ssb":
		return []string{"Q1.1", "Q2.1"}
	}
	return nil
}
