package logical

import (
	"context"
	"fmt"
	"sync"

	"paradigms/internal/catalog"
	"paradigms/internal/registry"
	"paradigms/internal/sql"
	"paradigms/internal/storage"
)

// catalogs caches one derived catalog per database instance.
var catalogs sync.Map // *storage.Database → *catalog.Catalog

// CatalogFor returns (building on first use) the catalog of a database.
func CatalogFor(db *storage.Database) *catalog.Catalog {
	if c, ok := catalogs.Load(db); ok {
		return c.(*catalog.Catalog)
	}
	c, _ := catalogs.LoadOrStore(db, catalog.FromDatabase(db))
	return c.(*catalog.Catalog)
}

// RouteByTables picks the first database whose catalog has every FROM
// table of the statement — the shared routing rule of the query
// service and cmd/sqlsh. Nil databases are skipped.
func RouteByTables(stmt string, dbs ...*storage.Database) (*storage.Database, error) {
	tables, err := sql.Tables(stmt)
	if err != nil {
		return nil, err
	}
	for _, db := range dbs {
		if db == nil {
			continue
		}
		cat := CatalogFor(db)
		all := true
		for _, t := range tables {
			if cat.Table(t) == nil {
				all = false
				break
			}
		}
		if all {
			return db, nil
		}
	}
	return nil, fmt.Errorf("logical: no loaded database has tables %v", tables)
}

// Prepare parses, binds, and plans a SQL text against a database —
// cmd/sqlsh's EXPLAIN path.
func Prepare(db *storage.Database, text string) (*Plan, error) {
	return PrepareHints(db, text, nil)
}

// PrepareHints is Prepare with a cardinality-feedback override for the
// join-order pick (see PlanQueryHints) — the re-planning entry point of
// the feedback loop.
func PrepareHints(db *storage.Database, text string, hints CardHints) (*Plan, error) {
	sel, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := sql.Bind(sel, CatalogFor(db)); err != nil {
		return nil, err
	}
	return PlanQueryHints(sel, CatalogFor(db), hints)
}

// Run executes an ad-hoc SQL text end to end: parse → bind → optimize →
// lower → execute on the vectorized operator layer. Planner or executor
// panics (which would otherwise take down the query service) surface as
// errors.
func Run(ctx context.Context, db *storage.Database, text string, workers, vecSize int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logical: internal error executing query: %v", r)
		}
	}()
	pl, err := Prepare(db, text)
	if err != nil {
		return nil, err
	}
	return pl.Execute(ctx, workers, vecSize)
}

// This lowering registers as the Tectorwise ad-hoc SQL path: it targets
// the vectorized operator layer. The Typer ad-hoc path is the compiled
// lowering of internal/compiled, which consumes the same optimized Plan
// and registers itself the same way.
func init() {
	registry.RegisterAdHoc(registry.Tectorwise, func(ctx context.Context, db *storage.Database, text string, opt registry.Options) (any, error) {
		return Run(ctx, db, text, opt.Workers, opt.VectorSize)
	})
}
