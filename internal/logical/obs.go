package logical

import (
	"paradigms/internal/obs"
)

// This file is the planner's side of the execution-telemetry extension
// (internal/obs): it describes the lowered pipeline decomposition —
// tables, build/final roles, probe counts — together with the planner's
// cardinality estimates, so EXPLAIN ANALYZE and the query log can put
// estimated next to observed cardinality per pipeline. The estimates
// reuse the exact selectivity heuristics the join-order optimizer runs
// on (selectivity in planner.go), so the drift a consumer computes is
// the drift the optimizer actually suffered.

// estPipeRows estimates a pipeline's output cardinality: the spine
// scan's rows scaled by the pushed-down filters' selectivities —
// observed history when the plan carries hints, static guesses
// otherwise — then by each probe's retention ratio (the fraction of
// the build spine's key domain the build chain retains) and each
// residual equality.
func estPipeRows(ps *pipeSpec, hints CardHints) float64 {
	if ps.rejectAll {
		return 0
	}
	est := float64(ps.scan.Table.Rel.Rows())
	est *= scanSelectivity(ps.scan, hints)
	for _, st := range ps.steps {
		domain := float64(st.build.scan.Table.Rel.Rows())
		if domain > 0 {
			est *= estPipeRows(st.build, hints) / domain
		}
		for range st.residuals {
			est *= 0.1 // equality residual, same factor as OpEq
		}
	}
	return est
}

// scanSelectivity is estPipeRows's per-scan filter-selectivity
// estimate: the hinted (observed) value when available, the product of
// static per-predicate guesses otherwise — mirroring the planner's
// tableSelectivity so the telemetry's estimates are the optimizer's.
func scanSelectivity(sc *Scan, hints CardHints) float64 {
	if hints != nil {
		if s, ok := hints.ScanSelectivity(sc.Table.Name); ok {
			return s
		}
	}
	sel := 1.0
	for _, f := range sc.Filters {
		sel *= selectivity(f)
	}
	return sel
}

// describeProgram records each pipeline's static shape and estimate
// into the collector.
func describeProgram(prog *program, col *obs.Collector) {
	col.SetPipes(len(prog.pipes))
	for i, ps := range prog.pipes {
		col.DescribePipe(i, ps.scan.Table.Name, ps.keyCol != nil,
			int64(ps.scan.Table.Rel.Rows()), len(ps.steps), estPipeRows(ps, prog.pl.Hints))
	}
}

// DescribePipes lowers the plan and records each pipeline's shape and
// cardinality estimate into the collector. It is called only on
// instrumented executions (the compiled backend has no handle on the
// vectorized lowering, and re-lowering is microseconds next to any
// query it would describe).
func (pl *Plan) DescribePipes(col *obs.Collector) error {
	prog, err := lower(pl)
	if err != nil {
		return err
	}
	describeProgram(prog, col)
	return nil
}

// Describe records the already-lowered program's pipeline shapes and
// estimates (the hybrid executor's entry point).
func (p *VecProgram) Describe(col *obs.Collector) { describeProgram(p.prog, col) }
