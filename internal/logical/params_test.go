package logical

import (
	"context"
	"sync"
	"testing"

	"paradigms/internal/sqlcheck"
)

// TestParamCondsDeferred: a table-free conjunct with a placeholder
// (`? = 1`) cannot fold at plan time; BindArgs evaluates it per
// execution — true keeps the plan live, false rejects every row.
func TestParamCondsDeferred(t *testing.T) {
	db := sqlcheck.MiniTPCH(20, true)
	pl, err := Prepare(db, "select count(*) from orders where ? = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.ParamConds) != 1 {
		t.Fatalf("ParamConds = %d, want 1", len(pl.ParamConds))
	}
	if pl.AlwaysFalse {
		t.Fatal("template marked AlwaysFalse before binding")
	}
	ctx := context.Background()

	res, err := pl.ExecuteArgs(ctx, 1, 0, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 20 {
		t.Fatalf("true conjunct: count = %d, want 20", res.Rows[0][0])
	}

	res, err = pl.ExecuteArgs(ctx, 1, 0, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 0 {
		t.Fatalf("false conjunct: count = %d, want 0", res.Rows[0][0])
	}
	if pl.AlwaysFalse {
		t.Fatal("binding a false conjunct mutated the template")
	}
}

// TestBindArgsImmutableTemplate: concurrent executions of one cached
// plan with different bindings never interfere (the clone is
// copy-on-write; the template is read-only).
func TestBindArgsImmutableTemplate(t *testing.T) {
	db := sqlcheck.MiniTPCH(64, true)
	pl, err := Prepare(db, "select count(*) from lineitem where l_quantity < ?")
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"5", "20", "100"}
	vals := make([][]int64, len(texts))
	want := make([]int64, len(texts))
	for i, q := range texts {
		v, err := pl.BindTexts([]string{q})
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = v
		res, err := pl.ExecuteArgs(context.Background(), 1, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Rows[0][0]
	}
	if want[0] == want[2] {
		t.Fatalf("degenerate fixture: all bindings count %d", want[0])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := (g + i) % len(texts)
				res, err := pl.ExecuteArgs(context.Background(), 2, 0, vals[k])
				if err != nil {
					t.Error(err)
					return
				}
				if res.Rows[0][0] != want[k] {
					t.Errorf("binding %s: count = %d, want %d", texts[k], res.Rows[0][0], want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestExecuteRejectsUnboundParams: a parameterized plan cannot run
// through the argument-less path, and arity mismatches are errors.
func TestExecuteRejectsUnboundParams(t *testing.T) {
	db := sqlcheck.MiniTPCH(20, true)
	pl, err := Prepare(db, "select count(*) from orders where o_custkey < ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Execute(context.Background(), 1, 0); err == nil {
		t.Fatal("Execute ran a parameterized plan without arguments")
	}
	if _, err := pl.BindArgs([]int64{1, 2}); err == nil {
		t.Fatal("BindArgs accepted wrong arity")
	}
	if _, err := pl.BindTexts([]string{"not-a-number"}); err == nil {
		t.Fatal("BindTexts accepted a malformed argument")
	}
}
