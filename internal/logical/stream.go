package logical

import (
	"context"
	"fmt"
	"sync"
)

// DefaultStreamChunk is the row-batch granularity of streaming
// execution when the caller does not pick one: big enough to amortize
// frame encoding, small enough that first rows reach the client while
// the scan is still running.
const DefaultStreamChunk = 1024

// RowSink receives a streamed query result: the column header once,
// then row batches as the engines produce them. Both lowering backends
// serialize their calls (SetCols strictly before the first PushRows,
// PushRows never concurrently), so implementations need no locking. A
// non-nil error from either method aborts the query: the executor
// cancels its dispatchers and the workers drain within one morsel.
type RowSink interface {
	// SetCols delivers the output schema, before execution starts.
	SetCols(cols []OutCol) error
	// PushRows delivers one batch of result rows. The slice (and the
	// rows in it) must not be retained after the call returns.
	PushRows(rows [][]int64) error
}

// Streamer serializes concurrent batch pushes from morsel workers onto
// a RowSink and latches the sink's first error, canceling the query so
// a disconnected client drains the workers instead of filling a dead
// socket. It is the shared streaming tail of both lowering backends.
type Streamer struct {
	mu     sync.Mutex
	sink   RowSink
	err    error
	cancel context.CancelFunc
}

// NewStreamer wraps sink; cancel (may be nil) is invoked once on the
// first sink error.
func NewStreamer(sink RowSink, cancel context.CancelFunc) *Streamer {
	return &Streamer{sink: sink, cancel: cancel}
}

// Push delivers one batch, serialized across workers. After the sink
// has failed once, batches are dropped silently — the query is already
// draining via the canceled context.
func (s *Streamer) Push(rows [][]int64) {
	if len(rows) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.sink.PushRows(rows); err != nil {
		s.err = err
		if s.cancel != nil {
			s.cancel()
		}
	}
}

// Err is the sink's first error (nil while the sink is healthy).
func (s *Streamer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// StreamBuf is one worker's batch accumulator: rows collect locally
// (no contention) and flush to the shared Streamer at chunk
// granularity. Not safe for concurrent use — one per worker.
type StreamBuf struct {
	st    *Streamer
	chunk int
	rows  [][]int64
}

// NewBuf creates a per-worker accumulator flushing every chunk rows.
func (s *Streamer) NewBuf(chunk int) *StreamBuf {
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	return &StreamBuf{st: s, chunk: chunk, rows: make([][]int64, 0, chunk)}
}

// Add appends one row, flushing when the chunk fills.
func (b *StreamBuf) Add(row []int64) {
	b.rows = append(b.rows, row)
	if len(b.rows) >= b.chunk {
		b.Flush()
	}
}

// Flush pushes any buffered rows.
func (b *StreamBuf) Flush() {
	if len(b.rows) == 0 {
		return
	}
	b.st.Push(b.rows)
	b.rows = b.rows[:0]
}

// Streamable reports whether the plan's rows can be flushed as they
// are produced: projections stream per morsel, grouped aggregates per
// merged spill partition. HAVING, ORDER BY, LIMIT, and global
// aggregates are inherently materializing — their rows only exist (or
// survive) after the last input row — so those plans stream their
// finalized rows in chunks instead.
func (pl *Plan) Streamable() bool {
	if len(pl.Sort) > 0 || pl.Having != nil || pl.Limit >= 0 {
		return false
	}
	return pl.Agg == nil || len(pl.Agg.Keys) > 0
}

// ExecuteStream runs the plan on the vectorized backend, flushing
// result batches to sink as they are produced (see Streamable for when
// that is truly incremental). SetCols is delivered before execution
// starts. chunk is the batch granularity (0 = DefaultStreamChunk). The
// streamed row multiset is exactly Execute's; row order within the
// stream is deterministic only under a total-order ORDER BY, the same
// contract as materialized execution. A sink error aborts the query
// and is returned; a canceled ctx returns ctx.Err() like Execute.
func (pl *Plan) ExecuteStream(ctx context.Context, workers, vecSize, chunk int, sink RowSink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logical: internal error executing query: %v", r)
		}
	}()
	if len(pl.Params) > 0 {
		return fmt.Errorf("logical: statement has %d unbound parameter(s); use ExecuteArgsStream", len(pl.Params))
	}
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	if err := sink.SetCols(pl.Cols); err != nil {
		return err
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := NewStreamer(sink, cancel)

	if pl.Streamable() {
		if _, err := pl.executeInto(sctx, workers, vecSize, st, chunk, nil); err != nil {
			return err
		}
		return firstErr(st.Err(), ctx.Err())
	}
	// Materializing shape: run to completion, then stream the
	// finalized rows in chunks.
	res, err := pl.Execute(ctx, workers, vecSize)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return StreamChunks(ctx, st, res.Rows, chunk)
}

// ExecuteArgsStream is ExecuteStream for parameterized plans: the
// argument binding substitutes into a copy-on-write clone (BindArgs)
// and the bound plan streams. The receiver is never mutated.
func (pl *Plan) ExecuteArgsStream(ctx context.Context, workers, vecSize, chunk int, args []int64, sink RowSink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logical: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return err
	}
	return bound.ExecuteStream(ctx, workers, vecSize, chunk, sink)
}

// StreamChunks flushes pre-materialized rows through a Streamer in
// chunk-sized batches — the shared tail of both backends'
// materializing stream shapes.
func StreamChunks(ctx context.Context, st *Streamer, rows [][]int64, chunk int) error {
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	for i := 0; i < len(rows); i += chunk {
		end := min(i+chunk, len(rows))
		st.Push(rows[i:end])
		if err := firstErr(st.Err(), ctx.Err()); err != nil {
			return err
		}
	}
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
