package logical

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"paradigms/internal/sqlcheck"
	"paradigms/internal/ssb"
	"paradigms/internal/storage"
	"paradigms/internal/tpch"
)

var (
	dbOnce  sync.Once
	tpchDBs map[float64]*storage.Database
	ssbDBs  map[float64]*storage.Database
)

func testDBs() (map[float64]*storage.Database, map[float64]*storage.Database) {
	dbOnce.Do(func() {
		tpchDBs = map[float64]*storage.Database{}
		ssbDBs = map[float64]*storage.Database{}
		for _, sf := range []float64{0.01, 0.05} {
			tpchDBs[sf] = tpch.Generate(sf, 0)
			ssbDBs[sf] = ssb.Generate(sf, 0)
		}
	})
	return tpchDBs, ssbDBs
}

// TestSQLMatchesReference is the subsystem's headline proof: the SQL
// texts of TPC-H Q6/Q3/Q5/Q18 and SSB Q1.1/Q2.1 parse, plan, lower, and
// execute bit-identical to the reference oracles across vector sizes
// and worker counts.
func TestSQLMatchesReference(t *testing.T) {
	tp, sb := testDBs()
	for _, sf := range []float64{0.01, 0.05} {
		for _, db := range []*storage.Database{tp[sf], sb[sf]} {
			for _, name := range SQLQueries(db.Name) {
				text, ok := SQLText(db.Name, name)
				if !ok {
					t.Fatalf("no SQL text for %s/%s", db.Name, name)
				}
				want := sqlcheck.RefRows(db, name)
				for _, workers := range []int{1, 4} {
					for _, vec := range []int{1, 1000, 4096} {
						res, err := Run(context.Background(), db, text, workers, vec)
						if err != nil {
							t.Fatalf("sf=%v %s/%s w=%d vec=%d: %v", sf, db.Name, name, workers, vec, err)
						}
						got := res.Rows
						if len(got) == 0 && len(want) == 0 {
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("sf=%v %s/%s w=%d vec=%d: rows mismatch\n got %v\nwant %v",
								sf, db.Name, name, workers, vec, trunc(got), trunc(want))
						}
					}
				}
			}
		}
	}
}

func trunc(rows [][]int64) [][]int64 {
	if len(rows) > 8 {
		return rows[:8]
	}
	return rows
}

// TestSQLFeatures exercises the grammar breadth beyond the benchmark
// queries: COUNT/MIN/MAX (global and grouped), IN lists, OR predicates,
// plain projections with ORDER BY / LIMIT, ordinals and aliases.
func TestSQLFeatures(t *testing.T) {
	tp, _ := testDBs()
	db := tp[0.01]
	ctx := context.Background()

	run := func(text string) *Result {
		t.Helper()
		res, err := Run(ctx, db, text, 2, 64)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		return res
	}

	// Global COUNT/MIN/MAX against a straight scan of the column.
	res := run(`select count(*), min(o_orderdate), max(o_orderdate), sum(o_totalprice) from orders`)
	ord := db.Rel("orders")
	dates := ord.Date("o_orderdate")
	totals := ord.Numeric("o_totalprice")
	minD, maxD, sum := int64(dates[0]), int64(dates[0]), int64(0)
	for i := range dates {
		d := int64(dates[i])
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		sum += int64(totals[i])
	}
	want := []int64{int64(ord.Rows()), minD, maxD, sum}
	if !reflect.DeepEqual(res.Rows, [][]int64{want}) {
		t.Errorf("global aggregates = %v, want %v", res.Rows, want)
	}

	// Grouped COUNT and MIN with HAVING on a hidden aggregate.
	res = run(`select o_shippriority, count(*) from orders group by o_shippriority having max(o_orderkey) > 0`)
	if len(res.Rows) == 0 {
		t.Error("grouped count returned no rows")
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1]
	}
	if total != int64(ord.Rows()) {
		t.Errorf("grouped counts sum to %d, want %d", total, ord.Rows())
	}

	// IN list and OR, projection, ORDER BY ordinal, LIMIT.
	res = run(`select n_nationkey, n_regionkey from nation where n_regionkey in (1, 2) or n_nationkey = 0 order by 1 limit 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("projection returned %d rows, want 5", len(res.Rows))
	}
	prev := int64(-1)
	for _, r := range res.Rows {
		if r[0] <= prev {
			t.Errorf("rows not ordered by first column: %v", res.Rows)
		}
		prev = r[0]
		if !(r[1] == 1 || r[1] == 2 || r[0] == 0) {
			t.Errorf("row %v fails the OR/IN predicate", r)
		}
	}

	// Alias ordering, descending.
	res = run(`select o_custkey ck, max(o_totalprice) as top from orders group by o_custkey order by top desc, ck limit 3`)
	if len(res.Rows) != 3 || res.Rows[0][1] < res.Rows[1][1] || res.Rows[1][1] < res.Rows[2][1] {
		t.Errorf("alias desc order broken: %v", res.Rows)
	}

	// String predicates nested under NOT / OR go through the generic
	// row predicate and must not silently drop rows.
	cust := db.Rel("customer")
	segHeap := cust.String("c_mktsegment")
	building := 0
	for i := 0; i < cust.Rows(); i++ {
		if string(segHeap.Get(i)) == "BUILDING" {
			building++
		}
	}
	res = run(`select count(*) from customer where not (c_mktsegment = 'BUILDING')`)
	if got := res.Rows[0][0]; got != int64(cust.Rows()-building) {
		t.Errorf("NOT over string eq counted %d, want %d", got, cust.Rows()-building)
	}
	res = run(`select count(*) from customer where c_mktsegment = 'BUILDING' or c_custkey <= 100`)
	if got := res.Rows[0][0]; got < int64(building) || got < 100 {
		t.Errorf("OR with string eq counted %d, want >= max(%d, 100)", got, building)
	}

	// A literal outside int32 range must not wrap inside the typed Sel
	// primitives (wrapping would invert the comparison).
	if _, err := Run(ctx, db, `select count(*) from customer where c_custkey > 3000000000`, 1, 0); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range int32 literal err = %v, want range error", err)
	}

	// A predicate as a select item is a bind error, not a worker panic
	// (a panic on a worker goroutine would escape Run's recover and
	// kill the service).
	if _, err := Run(ctx, db, `select l_quantity < 24 from lineitem limit 3`, 2, 64); err == nil ||
		!strings.Contains(err.Error(), "predicate") {
		t.Errorf("predicate select item err = %v, want bind error", err)
	}

	// HAVING on a group column the planner substituted to a spine-side
	// equivalent (c_custkey ≡ o_custkey) resolves through KeyOf.
	res = run(`select c_custkey, count(*) from orders, customer where o_custkey = c_custkey group by c_custkey having c_custkey < 100`)
	if len(res.Rows) == 0 {
		t.Error("HAVING on substituted group key returned no rows")
	}
	for _, r := range res.Rows {
		if r[0] >= 100 {
			t.Errorf("row %v violates having c_custkey < 100", r)
		}
	}

	// Constant-false WHERE yields zeroed global aggregates / empty rows.
	res = run(`select sum(o_totalprice) from orders where 1 = 2`)
	if !reflect.DeepEqual(res.Rows, [][]int64{{0}}) {
		t.Errorf("always-false global sum = %v, want [[0]]", res.Rows)
	}
	res = run(`select o_custkey from orders where 1 = 2 group by o_custkey`)
	if len(res.Rows) != 0 {
		t.Errorf("always-false grouped query returned %d rows", len(res.Rows))
	}
}

// TestSQLCancellation: a canceled context drains the lowered plan's
// workers promptly, like every registered query.
func TestSQLCancellation(t *testing.T) {
	tp, _ := testDBs()
	db := tp[0.01]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	text, _ := SQLText("tpch", "Q3")
	if _, err := Run(ctx, db, text, 4, 0); err != nil {
		t.Fatalf("canceled run errored: %v", err)
	}
}
