package logical

import (
	"bytes"

	"paradigms/internal/catalog"
	"paradigms/internal/plan"
	"paradigms/internal/sql"
	"paradigms/internal/storage"
	"paradigms/internal/tw"
	"paradigms/internal/types"
)

// The per-worker expression compiler: bound SQL expressions become
// closures over tw primitives evaluating derived vectors for a batch.
// The common fixed-point shapes compile to exactly the primitive
// sequences the hand-written plans use (col*col → MapMulCols, literal -
// col → MapRsubConst, so Q6's revenue is the same fused multiply-sum);
// everything else falls back to generic vector loops.

// vec64 evaluates an int64 vector of length K for the current batch.
type vec64 func(b *plan.Batch) []int64

// vecI64 compiles an expression into a vector evaluator within the
// given pipeline.
func (w *worker) vecI64(ps *pipeSpec, e sql.Expr) vec64 {
	switch x := e.(type) {
	case *sql.NumLit:
		return w.constVec(x.Val)
	case *sql.DateLit:
		return w.constVec(int64(x.Days))
	case *sql.ColRef:
		return w.colVec(ps, x.Col)
	case *sql.Binary:
		switch x.Op {
		case sql.OpMul:
			if f := w.mulColsFast(ps, x); f != nil {
				return f
			}
			l, r := w.vecI64(ps, x.L), w.vecI64(ps, x.R)
			out := w.bufs.I64()
			return func(b *plan.Batch) []int64 {
				tw.MapMul(l(b), r(b), b.K, out)
				return out
			}
		case sql.OpSub:
			if f := w.rsubConstFast(ps, x); f != nil {
				return f
			}
			l, r := w.vecI64(ps, x.L), w.vecI64(ps, x.R)
			out := w.bufs.I64()
			return func(b *plan.Batch) []int64 {
				lv, rv := l(b), r(b)
				for i := 0; i < b.K; i++ {
					out[i] = lv[i] - rv[i]
				}
				return out
			}
		case sql.OpAdd:
			l, r := w.vecI64(ps, x.L), w.vecI64(ps, x.R)
			out := w.bufs.I64()
			return func(b *plan.Batch) []int64 {
				lv, rv := l(b), r(b)
				for i := 0; i < b.K; i++ {
					out[i] = lv[i] + rv[i]
				}
				return out
			}
		}
	}
	panic("logical: unsupported value expression " + sql.String(e))
}

func (w *worker) constVec(v int64) vec64 {
	out := w.bufs.I64()
	for i := range out {
		out[i] = v
	}
	return func(*plan.Batch) []int64 { return out }
}

// colVec materializes a column through the batch selection.
func (w *worker) colVec(ps *pipeSpec, c *catalog.Column) vec64 {
	src := ps.resolve(c)
	if src.base == nil {
		buf := w.colBuf[ps][srcColOf(ps, src)]
		out := w.bufs.I64()
		return func(b *plan.Batch) []int64 {
			for i := 0; i < b.K; i++ {
				out[i] = int64(buf[i])
			}
			return out
		}
	}
	rel := ps.scan.Table.Rel
	switch c.Type.Kind {
	case catalog.Numeric:
		return fetch64(w, rel.Numeric(c.Name))
	case catalog.Int64:
		return fetch64(w, rel.Int64(c.Name))
	case catalog.Int32:
		return fetch32(w, rel.Int32(c.Name))
	case catalog.Date:
		return fetch32(w, rel.Date(c.Name))
	}
	panic("logical: column " + c.Name + " is not numeric")
}

func fetch64[T ~int64](w *worker, col []T) vec64 {
	out := w.bufs.I64()
	return func(b *plan.Batch) []int64 {
		win := col[b.Base : b.Base+b.N]
		if b.Sel == nil {
			tw.MapCopyI64(win, b.K, out)
		} else {
			tw.FetchI64(win, b.Sel[:b.K], out)
		}
		return out
	}
}

func fetch32[T ~int32](w *worker, col []T) vec64 {
	out := w.bufs.I64()
	return func(b *plan.Batch) []int64 {
		win := col[b.Base : b.Base+b.N]
		if b.Sel == nil {
			for i := 0; i < b.K; i++ {
				out[i] = int64(win[i])
			}
		} else {
			for i, k := range b.Sel[:b.K] {
				out[i] = int64(win[k])
			}
		}
		return out
	}
}

// mulColsFast compiles col*col over two 64-bit base columns to the
// fused MapMulCols primitive (Q6's and Q1.1's revenue input). The
// double type switch instantiates the generic primitive per column-type
// pair.
func (w *worker) mulColsFast(ps *pipeSpec, x *sql.Binary) vec64 {
	ln, li, lok := base64Col(ps, x.L)
	rn, ri, rok := base64Col(ps, x.R)
	if !lok || !rok {
		return nil
	}
	switch {
	case ln != nil && rn != nil:
		return mulFast(w, ln, rn)
	case ln != nil:
		return mulFast(w, ln, ri)
	case rn != nil:
		return mulFast(w, li, rn)
	default:
		return mulFast(w, li, ri)
	}
}

func mulFast[T ~int64, U ~int64](w *worker, l []T, r []U) vec64 {
	out := w.bufs.I64()
	return func(b *plan.Batch) []int64 {
		lw := l[b.Base : b.Base+b.N]
		rw := r[b.Base : b.Base+b.N]
		if b.Sel == nil {
			tw.MapMulCols(lw, rw, b.K, out)
		} else {
			tw.MapMulColsSel(lw, rw, b.Sel[:b.K], out)
		}
		return out
	}
}

// rsubConstFast compiles literal-col over a 64-bit base column to
// MapRsubConst (the 1 - l_discount of every revenue expression).
func (w *worker) rsubConstFast(ps *pipeSpec, x *sql.Binary) vec64 {
	lit, ok := x.L.(*sql.NumLit)
	if !ok {
		return nil
	}
	cn, ci, ok := base64Col(ps, x.R)
	if !ok {
		return nil
	}
	if cn != nil {
		return rsubFast(w, cn, lit.Val)
	}
	return rsubFast(w, ci, lit.Val)
}

func rsubFast[T ~int64](w *worker, col []T, c int64) vec64 {
	out := w.bufs.I64()
	return func(b *plan.Batch) []int64 {
		win := col[b.Base : b.Base+b.N]
		if b.Sel == nil {
			tw.MapRsubConst(win, c, b.K, out)
		} else {
			tw.MapRsubConstSel(win, c, b.Sel[:b.K], out)
		}
		return out
	}
}

// base64Col returns the typed slice of a 64-bit-wide base column
// reference of the pipeline's spine table (exactly one of the two
// returned slices is non-nil on success).
func base64Col(ps *pipeSpec, e sql.Expr) ([]types.Numeric, []int64, bool) {
	ref, ok := e.(*sql.ColRef)
	if !ok || ref.Col.Table != ps.scan.Table {
		return nil, nil, false
	}
	rel := ps.scan.Table.Rel
	switch ref.Col.Type.Kind {
	case catalog.Numeric:
		return rel.Numeric(ref.Col.Name), nil, true
	case catalog.Int64:
		return nil, rel.Int64(ref.Col.Name), true
	}
	return nil, nil, false
}

// ---------------------------------------------------------------------
// Filter predicates
// ---------------------------------------------------------------------

// filterPreds compiles the scan's pushed-down conjuncts into a
// selection cascade. Column-vs-literal comparisons use the typed Sel
// primitives; a string equality uses the dense string primitive (placed
// first, as it has no selection-consuming form); everything else falls
// back to a generic per-row predicate.
func (w *worker) filterPreds(ps *pipeSpec) []plan.Pred {
	var first []plan.Pred // dense-only string equality
	var rest []plan.Pred
	if ps.rejectAll {
		rest = append(rest, plan.Pred{
			Dense:  func(int, int, []int32) int { return 0 },
			Sparse: func(int, int, []int32, []int32) int { return 0 },
		})
	}
	for _, f := range ps.scan.Filters {
		if p, ok := fastCmpPred(ps, f); ok {
			rest = append(rest, p)
			continue
		}
		if p, ok := stringEqPred(ps, f); ok && len(first) == 0 {
			first = append(first, p)
			continue
		}
		rest = append(rest, genericPred(ps, f))
	}
	return append(first, rest...)
}

// fastCmpPred recognizes col CMP literal (either operand order) over an
// ordered column.
func fastCmpPred(ps *pipeSpec, f sql.Expr) (plan.Pred, bool) {
	b, ok := f.(*sql.Binary)
	if !ok {
		return plan.Pred{}, false
	}
	op := b.Op
	ref, refOK := b.L.(*sql.ColRef)
	lit, litOK := literalValue(b.R)
	if !refOK || !litOK {
		// literal CMP col flips the comparison.
		if ref, refOK = b.R.(*sql.ColRef); !refOK {
			return plan.Pred{}, false
		}
		if lit, litOK = literalValue(b.L); !litOK {
			return plan.Pred{}, false
		}
		switch op {
		case sql.OpLt:
			op = sql.OpGt
		case sql.OpLe:
			op = sql.OpGe
		case sql.OpGt:
			op = sql.OpLt
		case sql.OpGe:
			op = sql.OpLe
		}
	}
	if ref.Col.Table != ps.scan.Table {
		return plan.Pred{}, false
	}
	rel := ps.scan.Table.Rel
	switch ref.Col.Type.Kind {
	case catalog.Int32:
		return ordPred32(rel.Int32(ref.Col.Name), int32(lit), op)
	case catalog.Date:
		return ordPred32(rel.Date(ref.Col.Name), types.Date(lit), op)
	case catalog.Numeric:
		return ordPred(rel.Numeric(ref.Col.Name), types.Numeric(lit), op)
	case catalog.Int64:
		return ordPred(rel.Int64(ref.Col.Name), lit, op)
	}
	return plan.Pred{}, false
}

func literalValue(e sql.Expr) (int64, bool) {
	switch x := e.(type) {
	case *sql.NumLit:
		return x.Val, true
	case *sql.DateLit:
		return int64(x.Days), true
	}
	return 0, false
}

// ordPred32 is ordPred for 32-bit columns (Int32, Date), routed through
// internal/simd's SWAR and unrolled selection kernels; equality keeps
// the tw primitive.
func ordPred32[T ~int32](col []T, v T, op sql.BinOp) (plan.Pred, bool) {
	switch op {
	case sql.OpEq:
		return plan.PredEq(col, v), true
	case sql.OpGe:
		return plan.PredGE32(col, v), true
	case sql.OpGt:
		return plan.PredGT32(col, v), true
	case sql.OpLe:
		return plan.PredLE32(col, v), true
	case sql.OpLt:
		return plan.PredLT32(col, v), true
	}
	return plan.Pred{}, false
}

func ordPred[T interface {
	~int8 | ~int32 | ~int64 | ~uint32 | ~uint64
}](col []T, v T, op sql.BinOp) (plan.Pred, bool) {
	switch op {
	case sql.OpEq:
		return plan.PredEq(col, v), true
	case sql.OpGe:
		return plan.PredGE(col, v), true
	case sql.OpGt:
		return plan.PredGT(col, v), true
	case sql.OpLe:
		return plan.PredLE(col, v), true
	case sql.OpLt:
		return plan.PredLT(col, v), true
	}
	return plan.Pred{}, false
}

// stringEqPred recognizes stringcol = 'literal'.
func stringEqPred(ps *pipeSpec, f sql.Expr) (plan.Pred, bool) {
	b, ok := f.(*sql.Binary)
	if !ok || b.Op != sql.OpEq {
		return plan.Pred{}, false
	}
	ref, refOK := b.L.(*sql.ColRef)
	lit, litOK := b.R.(*sql.StrLit)
	if !refOK || !litOK {
		ref, refOK = b.R.(*sql.ColRef)
		lit, litOK = b.L.(*sql.StrLit)
	}
	if !refOK || !litOK || ref.Col.Table != ps.scan.Table || ref.Col.Type.Kind != catalog.String {
		return plan.Pred{}, false
	}
	heap := ps.scan.Table.Rel.String(ref.Col.Name)
	val := lit.Val
	return plan.Pred{
		Dense: func(base, n int, res []int32) int {
			return tw.SelEqString(heap, base, n, val, res)
		},
	}, true
}

// genericPred evaluates an arbitrary single-table predicate row by row
// (IN lists, OR, NOT, string inequality, arithmetic comparisons). It is
// the slow path; the planner's pushdown keeps it off the hot shapes.
// The expression was vetted by validateRowPred at lowering time, so
// rowEval cannot fail here.
func genericPred(ps *pipeSpec, f sql.Expr) plan.Pred {
	rel := ps.scan.Table.Rel
	test := func(row int) bool {
		v, err := rowEval(f, rel, row)
		if err != nil {
			panic(err) // unreachable: validateRowPred admitted the shape
		}
		return v != 0
	}
	return plan.Pred{
		Dense: func(base, n int, res []int32) int {
			k := 0
			for i := 0; i < n; i++ {
				if test(base + i) {
					res[k] = int32(i)
					k++
				}
			}
			return k
		},
		Sparse: func(base, n int, sel, res []int32) int {
			k := 0
			for _, i := range sel {
				if test(base + int(i)) {
					res[k] = i
					k++
				}
			}
			return k
		},
	}
}

// rowEval recursively evaluates an expression for one base-table row.
// Strings evaluate structurally — equality and IN between string
// columns and literals — at any nesting depth, so NOT/OR around a
// string predicate work like any other predicate.
func rowEval(e sql.Expr, rel *storage.Relation, row int) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch x := e.(type) {
	case *sql.NumLit:
		return x.Val, nil
	case *sql.DateLit:
		return int64(x.Days), nil
	case *sql.ColRef:
		if v, ok := baseValue(rel, x.Col, row); ok {
			return v, nil
		}
		return 0, sql.Errf(x.P, "cannot evaluate column %q here", x.Name)
	case *sql.Not:
		v, err := rowEval(x.X, rel, row)
		if err != nil {
			return 0, err
		}
		return b2i(v == 0), nil
	case *sql.Between:
		v, err := rowEval(x.X, rel, row)
		if err != nil {
			return 0, err
		}
		lo, err := rowEval(x.Lo, rel, row)
		if err != nil {
			return 0, err
		}
		hi, err := rowEval(x.Hi, rel, row)
		if err != nil {
			return 0, err
		}
		return b2i((v >= lo && v <= hi) != x.Negate), nil
	case *sql.InList:
		if sv, ok := strValue(x.X, rel, row); ok {
			found := false
			for _, l := range x.List {
				lv, ok := strValue(l, rel, row)
				if !ok {
					return 0, sql.Errf(l.Pos(), "cannot evaluate %s here", sql.String(l))
				}
				if bytes.Equal(sv, lv) {
					found = true
					break
				}
			}
			return b2i(found != x.Negate), nil
		}
		v, err := rowEval(x.X, rel, row)
		if err != nil {
			return 0, err
		}
		found := false
		for _, l := range x.List {
			lv, err := rowEval(l, rel, row)
			if err != nil {
				return 0, err
			}
			if lv == v {
				found = true
				break
			}
		}
		return b2i(found != x.Negate), nil
	case *sql.Binary:
		if x.Op == sql.OpEq || x.Op == sql.OpNe {
			if lv, ok := strValue(x.L, rel, row); ok {
				rv, ok := strValue(x.R, rel, row)
				if !ok {
					return 0, sql.Errf(x.P, "cannot evaluate %s here", sql.String(x.R))
				}
				return b2i(bytes.Equal(lv, rv) == (x.Op == sql.OpEq)), nil
			}
		}
		l, err := rowEval(x.L, rel, row)
		if err != nil {
			return 0, err
		}
		if x.Op == sql.OpAnd && l == 0 {
			return 0, nil
		}
		if x.Op == sql.OpOr && l != 0 {
			return 1, nil
		}
		r, err := rowEval(x.R, rel, row)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case sql.OpAdd:
			return l + r, nil
		case sql.OpSub:
			return l - r, nil
		case sql.OpMul:
			return l * r, nil
		case sql.OpEq:
			return b2i(l == r), nil
		case sql.OpNe:
			return b2i(l != r), nil
		case sql.OpLt:
			return b2i(l < r), nil
		case sql.OpLe:
			return b2i(l <= r), nil
		case sql.OpGt:
			return b2i(l > r), nil
		case sql.OpGe:
			return b2i(l >= r), nil
		case sql.OpAnd, sql.OpOr:
			return b2i(r != 0), nil
		}
	}
	return 0, sql.Errf(e.Pos(), "cannot evaluate %s", sql.String(e))
}

// strValue resolves a string-typed operand (string column or literal)
// for one row.
func strValue(e sql.Expr, rel *storage.Relation, row int) ([]byte, bool) {
	switch x := e.(type) {
	case *sql.StrLit:
		return []byte(x.Val), true
	case *sql.ColRef:
		if x.Col.Type.Kind == catalog.String {
			return rel.String(x.Col.Name).Get(row), true
		}
	}
	return nil, false
}

// validateRowPred vets a pushed-down predicate against the shapes
// rowEval supports, at lowering time — a generic predicate must never
// fail (and thus silently drop rows) during execution.
func validateRowPred(e sql.Expr) error {
	switch x := e.(type) {
	case *sql.NumLit, *sql.DateLit:
		return nil
	case *sql.ColRef:
		switch x.Col.Type.Kind {
		case catalog.String, catalog.Byte:
			return sql.Errf(x.P, "%s column %q cannot be used as a value", x.Col.Type.Kind, x.Name)
		}
		return nil
	case *sql.Not:
		return validateRowPred(x.X)
	case *sql.Between:
		for _, sub := range []sql.Expr{x.X, x.Lo, x.Hi} {
			if err := validateRowPred(sub); err != nil {
				return err
			}
		}
		return nil
	case *sql.InList:
		if _, isStr := strOperand(x.X); isStr {
			for _, l := range x.List {
				if _, ok := strOperand(l); !ok {
					return sql.Errf(l.Pos(), "IN list over a string column needs string literals")
				}
			}
			return nil
		}
		for _, sub := range append([]sql.Expr{x.X}, x.List...) {
			if err := validateRowPred(sub); err != nil {
				return err
			}
		}
		return nil
	case *sql.Binary:
		if x.Op == sql.OpEq || x.Op == sql.OpNe {
			_, lStr := strOperand(x.L)
			_, rStr := strOperand(x.R)
			if lStr || rStr {
				if lStr && rStr {
					return nil
				}
				return sql.Errf(x.P, "cannot compare %s with %s", sql.String(x.L), sql.String(x.R))
			}
		}
		if err := validateRowPred(x.L); err != nil {
			return err
		}
		return validateRowPred(x.R)
	}
	return sql.Errf(e.Pos(), "unsupported predicate %s", sql.String(e))
}

// strOperand reports whether the expression is a string column or
// literal (without evaluating it).
func strOperand(e sql.Expr) (sql.Expr, bool) {
	switch x := e.(type) {
	case *sql.StrLit:
		return e, true
	case *sql.ColRef:
		if x.Col.Type.Kind == catalog.String {
			return e, true
		}
	}
	return nil, false
}

// baseValue reads one scalar from a base column.
func baseValue(rel *storage.Relation, c *catalog.Column, row int) (int64, bool) {
	switch c.Type.Kind {
	case catalog.Int32:
		return int64(rel.Int32(c.Name)[row]), true
	case catalog.Int64:
		return rel.Int64(c.Name)[row], true
	case catalog.Numeric:
		return int64(rel.Numeric(c.Name)[row]), true
	case catalog.Date:
		return int64(rel.Date(c.Name)[row]), true
	}
	return 0, false
}
