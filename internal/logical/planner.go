package logical

import (
	"sort"
	"strings"

	"paradigms/internal/catalog"
	"paradigms/internal/sql"
)

// CardHints supplies observed cardinality history to the planner — the
// feedback half of the telemetry loop (internal/feedback implements it
// over accumulated per-pipeline observations). A nil CardHints, or one
// with no history for a table, falls back to the static per-predicate
// selectivity guesses.
type CardHints interface {
	// ScanSelectivity returns the observed fraction of the named
	// table's rows that survive its pushed-down filters in this
	// statement, and whether history exists.
	ScanSelectivity(table string) (float64, bool)
}

// PlanQuery turns a bound SELECT into an optimized logical plan:
// constant folding, predicate classification and pushdown, the
// join-order pick, residual placement, grouping-key reduction, and
// projection pruning — in that order.
func PlanQuery(sel *sql.Select, cat *catalog.Catalog) (*Plan, error) {
	return PlanQueryHints(sel, cat, nil)
}

// PlanQueryHints is PlanQuery with a cardinality-feedback override:
// where the join-order pick estimates a chain's build cardinality, the
// hinted (observed) selectivity of each table replaces the static
// per-predicate guess, so skewed data re-orders the joins the way the
// measurements say it should. The hints are retained on the plan, so
// its telemetry estimates (est_rows in EXPLAIN ANALYZE and the query
// log) reflect them too — a re-planned statement whose observations
// match its hints reports no drift.
func PlanQueryHints(sel *sql.Select, cat *catalog.Catalog, hints CardHints) (*Plan, error) {
	p := &planner{
		cat:     cat,
		sel:     sel,
		hints:   hints,
		filters: map[*catalog.Table][]sql.Expr{},
	}
	for _, f := range sel.From {
		p.tables = append(p.tables, f.Table)
	}

	// Rewrite 1: constant folding (1 - 0.05 → 0.95, pre-scaled).
	foldSelect(sel)

	// Rewrite 2: classify WHERE conjuncts — single-table predicates push
	// down to their scan, two-column equalities become join edges.
	if err := p.classify(sel.Where); err != nil {
		return nil, err
	}

	// Rewrite 3: join order. Hash tables build on the smaller,
	// key-unique side; the largest table streams through the probes.
	root, err := p.orderTables(p.tables, p.edges, nil)
	if err != nil {
		return nil, err
	}

	pl := &Plan{Root: root, Limit: sel.Limit, AlwaysFalse: p.alwaysFalse, cat: cat,
		ParamConds: p.paramConds, Hints: p.hints}
	for _, prm := range sel.Params {
		pl.Params = append(pl.Params, prm.Typ)
	}

	if sel.Grouped {
		agg, err := p.planAggregate(pl)
		if err != nil {
			return nil, err
		}
		pl.Agg = agg
	} else {
		for _, it := range sel.Items {
			t := sql.TypeOf(it.Expr)
			if ref, ok := it.Expr.(*sql.ColRef); ok && ref.Col.Type.Kind == catalog.String {
				return nil, sql.Errf(ref.P, "string column %q cannot be an output column (strings may only be filtered)", ref.Name)
			}
			_ = t
			pl.Proj = append(pl.Proj, it.Expr)
		}
	}

	for _, it := range sel.Items {
		pl.Cols = append(pl.Cols, OutCol{Name: it.Name(), Type: sql.TypeOf(it.Expr)})
	}

	if sel.Having != nil {
		if err := p.validateHaving(sel.Having, pl.Agg); err != nil {
			return nil, err
		}
		pl.Having = sel.Having
	}

	if err := p.planSort(pl); err != nil {
		return nil, err
	}

	// Rewrite 4: projection pruning — each scan lists only the columns
	// later operators consume.
	prune(pl)
	return pl, nil
}

type edge struct{ a, b *catalog.Column }

func (e edge) touches(t *catalog.Table) bool { return e.a.Table == t || e.b.Table == t }

// side returns the edge's column on table t (nil if none).
func (e edge) side(t *catalog.Table) *catalog.Column {
	if e.a.Table == t {
		return e.a
	}
	if e.b.Table == t {
		return e.b
	}
	return nil
}

// other returns the edge's column not on table t.
func (e edge) other(t *catalog.Table) *catalog.Column {
	if e.a.Table == t {
		return e.b
	}
	return e.a
}

type planner struct {
	cat         *catalog.Catalog
	sel         *sql.Select
	hints       CardHints
	tables      []*catalog.Table
	filters     map[*catalog.Table][]sql.Expr
	edges       []edge
	alwaysFalse bool
	paramConds  []sql.Expr

	uf map[*catalog.Column]*catalog.Column // equality classes over all edges
}

// ---------------------------------------------------------------------
// Predicate classification and pushdown
// ---------------------------------------------------------------------

// classify splits the WHERE conjunction: constant conjuncts fold away
// (a constant false marks the whole plan empty), single-table conjuncts
// push down to their scan, and two-column equalities become join edges.
// Anything else crossing tables is unsupported.
func (p *planner) classify(where sql.Expr) error {
	p.uf = map[*catalog.Column]*catalog.Column{}
	var walk func(e sql.Expr) error
	walk = func(e sql.Expr) error {
		if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
			if err := walk(b.L); err != nil {
				return err
			}
			return walk(b.R)
		}
		// BETWEEN desugars into two conjuncts so the scan's selection
		// cascade gets two cheap primitives instead of one generic one.
		if bt, ok := e.(*sql.Between); ok && !bt.Negate {
			if err := walk(&sql.Binary{P: bt.P, Op: sql.OpGe, L: bt.X, R: bt.Lo}); err != nil {
				return err
			}
			return walk(&sql.Binary{P: bt.P, Op: sql.OpLe, L: bt.X, R: bt.Hi})
		}
		tabs := exprTables(e)
		switch len(tabs) {
		case 0:
			// A table-free conjunct with a parameter (`? = 1`) has no
			// plan-time value; BindArgs evaluates it per execution.
			if sql.HasParam(e) {
				p.paramConds = append(p.paramConds, e)
				return nil
			}
			v, err := evalConst(e)
			if err != nil {
				return err
			}
			if !v {
				p.alwaysFalse = true
			}
			return nil
		case 1:
			p.filters[tabs[0]] = append(p.filters[tabs[0]], e)
			return nil
		case 2:
			if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpEq {
				lr, lok := b.L.(*sql.ColRef)
				rr, rok := b.R.(*sql.ColRef)
				if lok && rok {
					p.edges = append(p.edges, edge{lr.Col, rr.Col})
					p.union(lr.Col, rr.Col)
					return nil
				}
			}
		}
		return sql.Errf(e.Pos(), "unsupported cross-table predicate %s (only column = column equi-joins)", sql.String(e))
	}
	if where == nil {
		return nil
	}
	return walk(where)
}

// exprTables lists the distinct tables referenced by an expression, in
// first-reference order.
func exprTables(e sql.Expr) []*catalog.Table {
	var out []*catalog.Table
	seen := map[*catalog.Table]bool{}
	sql.WalkCols(e, func(c *catalog.Column) {
		if !seen[c.Table] {
			seen[c.Table] = true
			out = append(out, c.Table)
		}
	})
	return out
}

// union-find over equality edges: the planner's column equivalence
// classes (valid on the final pipeline, where every edge has been
// enforced by a hash join or a residual match).
func (p *planner) find(c *catalog.Column) *catalog.Column {
	r, ok := p.uf[c]
	if !ok || r == c {
		return c
	}
	root := p.find(r)
	p.uf[c] = root
	return root
}

func (p *planner) union(a, b *catalog.Column) {
	ra, rb := p.find(a), p.find(b)
	if ra != rb {
		p.uf[ra] = rb
	}
}

// ---------------------------------------------------------------------
// Join order
// ---------------------------------------------------------------------

// orderTables builds the join tree for a table set: the spine (largest
// table, or the forced attachment table of a chain) streams through
// hash probes of the remaining tables' chains, ordered by estimated
// build cardinality. Equality edges not usable as key-unique hash joins
// become residual predicates on the join where both sides first meet.
// If the preferred spine admits no key-unique attachment for some chain
// (possible when cardinalities tie, e.g. synthetic edge databases where
// every relation has the same row count — or none), the next candidate
// spine is tried before giving up, with the first failure reported.
func (p *planner) orderTables(tables []*catalog.Table, edges []edge, forced *catalog.Table) (Node, error) {
	if len(tables) == 1 {
		return &Scan{Table: tables[0], Filters: p.filters[tables[0]]}, nil
	}
	if forced != nil {
		return p.orderWithSpine(tables, edges, forced)
	}
	cands := append([]*catalog.Table(nil), tables...)
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Rows() != cands[j].Rows() {
			return cands[i].Rows() > cands[j].Rows()
		}
		return cands[i].Name < cands[j].Name
	})
	var firstErr error
	for _, spine := range cands {
		n, err := p.orderWithSpine(tables, edges, spine)
		if err == nil {
			return n, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// orderWithSpine builds the join tree streaming the given spine.
func (p *planner) orderWithSpine(tables []*catalog.Table, edges []edge, spine *catalog.Table) (Node, error) {
	var rest []*catalog.Table
	for _, t := range tables {
		if t != spine {
			rest = append(rest, t)
		}
	}
	var restEdges, spineEdges []edge
	for _, e := range edges {
		if e.touches(spine) {
			spineEdges = append(spineEdges, e)
		} else {
			restEdges = append(restEdges, e)
		}
	}

	var chains []chainSpec
	var residuals []edge

	for _, comp := range components(rest, restEdges) {
		inComp := map[*catalog.Table]bool{}
		for _, t := range comp {
			inComp[t] = true
		}
		var inner []edge
		for _, e := range restEdges {
			if inComp[e.a.Table] && inComp[e.b.Table] {
				inner = append(inner, e)
			}
		}
		var attach, valid []edge
		for _, e := range spineEdges {
			compCol := e.other(spine)
			if inComp[compCol.Table] {
				attach = append(attach, e)
				if compCol.Table.Key == compCol.Name {
					valid = append(valid, e)
				}
			}
		}
		switch {
		case len(attach) == 0:
			return nil, sql.Errf(sql.Pos{Line: 1, Col: 1},
				"no join path between %s and %s (cross joins are not supported)", spine.Name, tableNames(comp))
		case len(valid) == 0:
			return nil, sql.Errf(sql.Pos{Line: 1, Col: 1},
				"cannot join %s to %s: no join column is a unique key (N:M joins are not supported)", spine.Name, tableNames(comp))
		case len(valid) == 1:
			chains = append(chains, chainSpec{tables: comp, attach: valid[0], inner: inner})
			for _, e := range attach {
				if e != valid[0] {
					residuals = append(residuals, e)
				}
			}
		default:
			// Several key-unique attachments (Q5's orders/supplier
			// component): split the component into one chain per
			// attachment by multi-source BFS over key-unique edges;
			// cross-chain equalities become residuals.
			subChains, extra, err := splitComponent(comp, inner, valid, spine)
			if err != nil {
				return nil, err
			}
			chains = append(chains, subChains...)
			residuals = append(residuals, extra...)
			for _, e := range attach {
				used := false
				for _, sc := range subChains {
					if sc.attach == e {
						used = true
					}
				}
				if !used {
					residuals = append(residuals, e)
				}
			}
		}
	}

	// Cardinality heuristic: probe the smallest (post-filter) build side
	// first. A chain's build cardinality is its attachment table's rows
	// scaled by each chain table's filter selectivity — observed history
	// when hints carry it, static per-predicate guesses otherwise.
	for i := range chains {
		est := float64(chains[i].attach.other(spine).Table.Rows())
		for _, t := range chains[i].tables {
			est *= p.tableSelectivity(t)
		}
		chains[i].est = est
	}
	sort.SliceStable(chains, func(i, j int) bool {
		if chains[i].est != chains[j].est {
			return chains[i].est < chains[j].est
		}
		return chains[i].attach.other(spine).Table.Name < chains[j].attach.other(spine).Table.Name
	})

	node := Node(&Scan{Table: spine, Filters: p.filters[spine]})
	avail := map[*catalog.Table]bool{spine: true}
	pending := residuals
	for _, ch := range chains {
		build, err := p.orderTables(ch.tables, ch.inner, ch.attach.other(spine).Table)
		if err != nil {
			return nil, err
		}
		j := &Join{
			Build:    build,
			Probe:    node,
			BuildKey: ch.attach.other(spine),
			ProbeKey: ch.attach.side(spine),
		}
		for _, t := range ch.tables {
			avail[t] = true
		}
		var still []edge
		for _, r := range pending {
			if avail[r.a.Table] && avail[r.b.Table] {
				j.Residuals = append(j.Residuals, [2]*catalog.Column{r.a, r.b})
			} else {
				still = append(still, r)
			}
		}
		pending = still
		node = j
	}
	if len(pending) > 0 {
		return nil, sql.Errf(sql.Pos{Line: 1, Col: 1}, "internal: unplaced join residual")
	}
	return node, nil
}

// chainSpec is one build-side chain hanging off a pipeline's spine.
type chainSpec struct {
	tables []*catalog.Table
	attach edge // join edge: spine side = probe key, chain side = build key
	inner  []edge
	est    float64
}

// splitComponent assigns each component table to the nearest attachment
// table by BFS over key-unique edges (an edge is traversable toward T
// only if T's side is T's unique key, because T will be built into a
// hash table probed from nearer the spine). Inner edges that end up
// crossing two chains are returned as residuals.
func splitComponent(comp []*catalog.Table, inner []edge, valid []edge, spine *catalog.Table) ([]chainSpec, []edge, error) {
	owner := map[*catalog.Table]*catalog.Table{} // table → its chain's attachment table
	var frontier []*catalog.Table
	for _, e := range valid {
		t := e.other(spine).Table
		if owner[t] == nil {
			owner[t] = t
			frontier = append(frontier, t)
		}
	}
	for len(frontier) > 0 {
		var next []*catalog.Table
		for _, s := range frontier {
			for _, e := range inner {
				if !e.touches(s) {
					continue
				}
				t := e.other(s).Table
				tCol := e.side(t)
				if owner[t] != nil || tCol.Table.Key != tCol.Name {
					continue
				}
				owner[t] = owner[s]
				next = append(next, t)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Name < next[j].Name })
		frontier = next
	}
	for _, t := range comp {
		if owner[t] == nil {
			return nil, nil, sql.Errf(sql.Pos{Line: 1, Col: 1},
				"cannot join table %s: no key-unique join path reaches it", t.Name)
		}
	}
	var chains []chainSpec
	var residuals []edge
	for _, e := range valid {
		src := e.other(spine).Table
		var ts []*catalog.Table
		for _, t := range comp {
			if owner[t] == src {
				ts = append(ts, t)
			}
		}
		var in []edge
		for _, ie := range inner {
			if owner[ie.a.Table] == src && owner[ie.b.Table] == src {
				in = append(in, ie)
			}
		}
		chains = append(chains, chainSpec{tables: ts, attach: e, inner: in})
	}
	for _, ie := range inner {
		if owner[ie.a.Table] != owner[ie.b.Table] {
			residuals = append(residuals, ie)
		}
	}
	return chains, residuals, nil
}

// components partitions tables into connected components under edges,
// each sorted by name for determinism.
func components(tables []*catalog.Table, edges []edge) [][]*catalog.Table {
	id := map[*catalog.Table]int{}
	for i, t := range tables {
		id[t] = i
	}
	parent := make([]int, len(tables))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ia, aok := id[e.a.Table]
		ib, bok := id[e.b.Table]
		if aok && bok {
			parent[find(ia)] = find(ib)
		}
	}
	groups := map[int][]*catalog.Table{}
	for i, t := range tables {
		r := find(i)
		groups[r] = append(groups[r], t)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		return groups[roots[i]][0].Name < groups[roots[j]][0].Name
	})
	out := make([][]*catalog.Table, 0, len(roots))
	for _, r := range roots {
		g := groups[r]
		sort.Slice(g, func(i, j int) bool { return g[i].Name < g[j].Name })
		out = append(out, g)
	}
	return out
}

// tableSelectivity is the estimated fraction of t's rows surviving its
// pushed-down filters: the statement's observed history when the
// planner has hints for the table, the static per-predicate guesses
// otherwise.
func (p *planner) tableSelectivity(t *catalog.Table) float64 {
	if p.hints != nil {
		if s, ok := p.hints.ScanSelectivity(t.Name); ok {
			return s
		}
	}
	sel := 1.0
	for _, f := range p.filters[t] {
		sel *= selectivity(f)
	}
	return sel
}

// selectivity is the planner's per-predicate reduction guess.
func selectivity(e sql.Expr) float64 {
	switch x := e.(type) {
	case *sql.Binary:
		switch x.Op {
		case sql.OpEq:
			return 0.1
		case sql.OpNe:
			return 0.9
		case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return 0.3
		}
	case *sql.InList:
		return 0.2
	}
	return 0.5
}

func tableNames(ts []*catalog.Table) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return strings.Join(names, ", ")
}

// ---------------------------------------------------------------------
// Aggregation planning
// ---------------------------------------------------------------------

func (p *planner) planAggregate(pl *Plan) (*Aggregate, error) {
	agg := &Aggregate{}
	for _, g := range p.sel.GroupBy {
		col := g.(*sql.ColRef).Col
		switch col.Type.Kind {
		case catalog.String, catalog.Byte:
			return nil, sql.Errf(g.Pos(), "cannot group by %s column %q", col.Type.Kind, col.Name)
		}
		agg.GroupBy = append(agg.GroupBy, col)
	}

	// Grouping-key reduction: a group column functionally determined by
	// the kept keys — via a table's unique key, closed over the join
	// equivalence classes — is demoted to a first-value aggregate.
	agg.Keys = p.reduceKeys(agg.GroupBy)
	switch {
	case len(agg.Keys) > 2:
		return nil, sql.Errf(p.sel.GroupBy[0].Pos(),
			"group key too wide: %d independent columns (at most 2)", len(agg.Keys))
	case len(agg.Keys) == 2:
		for _, k := range agg.Keys {
			if k.Type.Kind != catalog.Int32 && k.Type.Kind != catalog.Date {
				return nil, sql.Errf(p.sel.GroupBy[0].Pos(),
					"group key too wide: two keys must both be 32-bit columns, %s is %s", k.Name, k.Type.Kind)
			}
		}
	}
	// Prefer the spine's own base column for a kept key when an
	// equivalence class offers one (Q3 groups by o_orderkey as the
	// lineitem pipeline's l_orderkey, exactly like the hand plan).
	spine := pl.Root.Spine().Table
	for i, k := range agg.Keys {
		agg.Keys[i] = p.substituteToTable(k, spine)
	}

	// Demoted group columns ride along as first-value slots.
	kept := map[*catalog.Column]bool{}
	for _, k := range agg.Keys {
		kept[k] = true
	}
	firstSlot := map[*catalog.Column]int{}
	for _, g := range agg.GroupBy {
		if kept[g] || p.determinedByKeysIsKept(agg.Keys, g) && kept[p.substituteToTable(g, spine)] {
			continue
		}
		if _, dup := firstSlot[g]; dup {
			continue
		}
		ref := &sql.ColRef{Name: g.Name, Col: g}
		firstSlot[g] = len(agg.Aggs)
		agg.Aggs = append(agg.Aggs, AggSpec{Op: OpFirst, Arg: ref, Src: ref, Type: g.Type})
	}

	addAgg := func(a *sql.Agg) int {
		for i, s := range agg.Aggs {
			if s.Op != OpFirst && sql.Equal(s.Src, a) {
				return i
			}
		}
		op := map[sql.AggFn]AggOp{sql.AggSum: OpSum, sql.AggCount: OpCount, sql.AggMin: OpMin, sql.AggMax: OpMax}[a.Fn]
		agg.Aggs = append(agg.Aggs, AggSpec{Op: op, Arg: a.Arg, Src: a, Type: a.Typ})
		return len(agg.Aggs) - 1
	}

	keyIndex := func(c *catalog.Column) int {
		cs := p.substituteToTable(c, spine)
		for i, k := range agg.Keys {
			if k == cs || k == c {
				return i
			}
		}
		return -1
	}
	agg.KeyOf = map[*catalog.Column]int{}
	for i, k := range agg.Keys {
		agg.KeyOf[k] = i
	}
	for _, g := range agg.GroupBy {
		if i := keyIndex(g); i >= 0 {
			agg.KeyOf[g] = i
		}
	}

	for _, it := range p.sel.Items {
		switch e := it.Expr.(type) {
		case *sql.Agg:
			agg.ItemSlots = append(agg.ItemSlots, Slot{Key: false, Idx: addAgg(e)})
		case *sql.ColRef:
			if i := keyIndex(e.Col); i >= 0 {
				agg.ItemSlots = append(agg.ItemSlots, Slot{Key: true, Idx: i})
				continue
			}
			if i, ok := firstSlot[e.Col]; ok {
				agg.ItemSlots = append(agg.ItemSlots, Slot{Key: false, Idx: i})
				continue
			}
			// A group column equal (via join) to a demoted one: add its
			// own first-value slot.
			ref := &sql.ColRef{Name: e.Col.Name, Col: e.Col}
			firstSlot[e.Col] = len(agg.Aggs)
			agg.Aggs = append(agg.Aggs, AggSpec{Op: OpFirst, Arg: ref, Src: ref, Type: e.Col.Type})
			agg.ItemSlots = append(agg.ItemSlots, Slot{Key: false, Idx: firstSlot[e.Col]})
		default:
			return nil, sql.Errf(it.Expr.Pos(), "select item %s must be a grouping column or aggregate", sql.String(it.Expr))
		}
	}

	// HAVING and ORDER BY may use aggregates that are not select items;
	// give them hidden slots.
	addHidden := func(e sql.Expr) {
		walkAggs(e, func(a *sql.Agg) { addAgg(a) })
	}
	if p.sel.Having != nil {
		addHidden(p.sel.Having)
	}
	for _, o := range p.sel.OrderBy {
		if o.Item < 0 {
			addHidden(o.Expr)
		}
	}
	return agg, nil
}

// determinedByKeysIsKept is a small helper: reports whether g's
// spine-substituted form already appears among the kept keys (so g does
// not need its own first-value slot when it IS a kept key spelled
// through an equivalent column).
func (p *planner) determinedByKeysIsKept(keys []*catalog.Column, g *catalog.Column) bool {
	for _, k := range keys {
		if p.find(k) == p.find(g) {
			return true
		}
	}
	return false
}

func walkAggs(e sql.Expr, fn func(*sql.Agg)) {
	switch x := e.(type) {
	case *sql.Agg:
		fn(x)
	case *sql.Binary:
		walkAggs(x.L, fn)
		walkAggs(x.R, fn)
	case *sql.Not:
		walkAggs(x.X, fn)
	case *sql.Between:
		walkAggs(x.X, fn)
		walkAggs(x.Lo, fn)
		walkAggs(x.Hi, fn)
	case *sql.InList:
		walkAggs(x.X, fn)
		for _, l := range x.List {
			walkAggs(l, fn)
		}
	}
}

// reduceKeys picks a minimal subset of the grouping columns that
// functionally determines the rest.
func (p *planner) reduceKeys(group []*catalog.Column) []*catalog.Column {
	var kept []*catalog.Column
	for _, g := range group {
		if !p.determined(kept, g) {
			kept = append(kept, g)
		}
	}
	for i := 0; i < len(kept); {
		others := make([]*catalog.Column, 0, len(kept)-1)
		others = append(others, kept[:i]...)
		others = append(others, kept[i+1:]...)
		if len(others) > 0 && p.determined(others, kept[i]) {
			kept = others
		} else {
			i++
		}
	}
	return kept
}

// determined computes the functional closure of the key set — table
// unique keys determine their table's columns, join equalities carry
// determination across tables — and reports whether g is inside it.
func (p *planner) determined(keys []*catalog.Column, g *catalog.Column) bool {
	det := map[*catalog.Column]bool{}
	for _, k := range keys {
		det[k] = true
	}
	for changed := true; changed; {
		changed = false
		for _, t := range p.tables {
			if t.Key == "" {
				continue
			}
			kc := t.Column(t.Key)
			if !det[kc] {
				continue
			}
			for _, c := range t.Columns() {
				if !det[c] {
					det[c] = true
					changed = true
				}
			}
		}
		for _, e := range p.edges {
			if det[e.a] != det[e.b] {
				det[e.a], det[e.b] = true, true
				changed = true
			}
		}
	}
	return det[g]
}

// substituteToTable maps a column to an equivalent column of the given
// table when one exists in its equality class (safe on the final
// pipeline, where every equality has been enforced).
func (p *planner) substituteToTable(c *catalog.Column, t *catalog.Table) *catalog.Column {
	if c.Table == t {
		return c
	}
	root := p.find(c)
	for _, col := range t.Columns() {
		if p.find(col) == root && col != c {
			return col
		}
	}
	return c
}

// validateHaving checks that HAVING only references grouping columns
// and aggregates (which all have slots by now).
func (p *planner) validateHaving(e sql.Expr, agg *Aggregate) error {
	if agg == nil {
		return sql.Errf(e.Pos(), "HAVING requires aggregation")
	}
	// Columns under aggregate calls are always fine; bare column
	// references must be grouping columns.
	var err error
	var bare func(x sql.Expr)
	bare = func(x sql.Expr) {
		switch n := x.(type) {
		case *sql.Agg:
			return
		case *sql.ColRef:
			if err == nil && !p.isGroupValue(agg, n.Col) {
				err = sql.Errf(n.P, "HAVING may only reference grouping columns and aggregates (column %q is neither)", n.Name)
			}
		case *sql.Binary:
			bare(n.L)
			bare(n.R)
		case *sql.Not:
			bare(n.X)
		case *sql.Between:
			bare(n.X)
			bare(n.Lo)
			bare(n.Hi)
		case *sql.InList:
			bare(n.X)
			for _, l := range n.List {
				bare(l)
			}
		}
	}
	bare(e)
	return err
}

func (p *planner) isGroupValue(agg *Aggregate, c *catalog.Column) bool {
	for _, g := range agg.GroupBy {
		if g == c {
			return true
		}
	}
	for _, k := range agg.Keys {
		if k == c {
			return true
		}
	}
	return false
}

// planSort resolves ORDER BY keys to output slots / item indexes.
func (p *planner) planSort(pl *Plan) error {
	for _, o := range p.sel.OrderBy {
		item := o.Item
		if item < 0 {
			for i, it := range p.sel.Items {
				if sql.Equal(o.Expr, it.Expr) {
					item = i
					break
				}
			}
		}
		if pl.Agg == nil {
			if item < 0 {
				return sql.Errf(o.Expr.Pos(), "ORDER BY %s must reference a selected column", sql.String(o.Expr))
			}
			pl.Sort = append(pl.Sort, SortKey{Item: item, Desc: o.Desc})
			continue
		}
		if item >= 0 {
			pl.Sort = append(pl.Sort, SortKey{Slot: pl.Agg.ItemSlots[item], Desc: o.Desc})
			continue
		}
		slot, err := p.resolveSlot(o.Expr, pl.Agg)
		if err != nil {
			return err
		}
		pl.Sort = append(pl.Sort, SortKey{Slot: slot, Desc: o.Desc})
	}
	return nil
}

// resolveSlot maps an aggregate call or grouping column to its output
// slot.
func (p *planner) resolveSlot(e sql.Expr, agg *Aggregate) (Slot, error) {
	switch x := e.(type) {
	case *sql.Agg:
		for i, s := range agg.Aggs {
			if s.Op != OpFirst && sql.Equal(s.Src, x) {
				return Slot{Key: false, Idx: i}, nil
			}
		}
	case *sql.ColRef:
		if i, ok := agg.KeyOf[x.Col]; ok {
			return Slot{Key: true, Idx: i}, nil
		}
		for i, s := range agg.Aggs {
			if s.Op == OpFirst {
				if ref, ok := s.Arg.(*sql.ColRef); ok && ref.Col == x.Col {
					return Slot{Key: false, Idx: i}, nil
				}
			}
		}
	}
	return Slot{}, sql.Errf(e.Pos(), "%s is not a grouping column or aggregate of this query", sql.String(e))
}

// ---------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------

// prune lists, per scan, the columns later operators consume (filter
// columns are read by the scan's own cascade and not listed).
func prune(pl *Plan) {
	need := map[*catalog.Column]bool{}
	add := func(e sql.Expr) { sql.WalkCols(e, func(c *catalog.Column) { need[c] = true }) }
	if pl.Agg != nil {
		for _, k := range pl.Agg.Keys {
			need[k] = true
		}
		for _, s := range pl.Agg.Aggs {
			if s.Arg != nil {
				add(s.Arg)
			}
		}
	}
	for _, e := range pl.Proj {
		add(e)
	}
	var walk func(n Node)
	walk = func(n Node) {
		if j, ok := n.(*Join); ok {
			need[j.BuildKey] = true
			need[j.ProbeKey] = true
			for _, r := range j.Residuals {
				need[r[0]] = true
				need[r[1]] = true
			}
			walk(j.Build)
			walk(j.Probe)
		}
	}
	walk(pl.Root)
	var assign func(n Node)
	assign = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			x.Cols = nil
			for _, c := range x.Table.Columns() {
				if need[c] {
					x.Cols = append(x.Cols, c)
				}
			}
		case *Join:
			assign(x.Build)
			assign(x.Probe)
		}
	}
	assign(pl.Root)
}
