// Package logical is the planner of the ad-hoc SQL subsystem — an
// extension beyond the paper's fixed query catalog. It turns a bound
// SELECT (internal/sql) into a logical plan, applies rule-based
// rewrites — constant folding, predicate pushdown to scans, projection
// pruning, and a cardinality-heuristic join-order pick that builds hash
// tables on the smaller, key-unique dimension side — and lowers the
// optimized plan onto the existing vectorized operator layer
// (internal/plan): scans become morsel Scans with FilterChain cascades,
// equi-joins become HashBuild/HashProbe pairs with payload gathers,
// leftover cross-chain equalities become Match residuals, and
// aggregation reuses the engines' shared two-phase spill/merge
// machinery. Ad-hoc SQL therefore executes morsel-parallel on the
// Tectorwise engine with cancellation and the service worker budget for
// free, and — for the queries the repo registers by hand — produces
// bit-identical results to the reference oracles.
package logical

import (
	"fmt"
	"strings"

	"paradigms/internal/catalog"
	"paradigms/internal/sql"
)

// Node is a logical plan operator: a base-table scan or a hash equi-join.
type Node interface {
	node()
	// Spine returns the scan the node's probe pipeline streams.
	Spine() *Scan
}

// Scan reads one table; Filters are the WHERE conjuncts pushed down to
// it (each references only this table), and Cols are the columns later
// operators need it to produce (projection pruning; filter-only columns
// are not listed).
type Scan struct {
	Table   *catalog.Table
	Filters []sql.Expr
	Cols    []*catalog.Column
}

// Join is a hash equi-join: Build's pipeline materializes a hash table
// keyed by BuildKey (a unique key of Build's spine table, so probes are
// N:1), and Probe's pipeline probes it with ProbeKey (a column of
// Probe's spine table). Residuals are equality predicates between
// columns that first become comparable after this probe (cross-chain
// equalities the join order could not use as hash keys).
type Join struct {
	Build, Probe       Node
	BuildKey, ProbeKey *catalog.Column
	Residuals          [][2]*catalog.Column
}

func (*Scan) node() {}
func (*Join) node() {}

// Spine implements Node.
func (s *Scan) Spine() *Scan { return s }

// Spine implements Node.
func (j *Join) Spine() *Scan { return j.Probe.Spine() }

// AggOp is the aggregate operator of one output slot.
type AggOp int

// Aggregate slot operators. OpFirst carries a group column that was
// demoted from the grouping key because a kept key functionally
// determines it (e.g. Q3 groups by l_orderkey only; o_orderdate rides
// along as a first-value aggregate).
const (
	OpSum AggOp = iota
	OpCount
	OpMin
	OpMax
	OpFirst
)

var aggOpNames = [...]string{"sum", "count", "min", "max", "first"}

func (op AggOp) String() string { return aggOpNames[op] }

// AggSpec is one aggregate slot of a grouped (or global) aggregation.
type AggSpec struct {
	Op AggOp
	// Arg is the aggregate input (nil for COUNT(*)); for OpFirst it is
	// the demoted group column reference.
	Arg sql.Expr
	// Src is the originating SELECT/HAVING/ORDER BY expression, used to
	// match references to this slot.
	Src sql.Expr
	// Type is the slot's result type.
	Type catalog.Type
}

// Slot locates an output value of a grouped query: a kept grouping key
// or an aggregate slot.
type Slot struct {
	Key bool
	Idx int
}

// Aggregate describes the aggregation phase of a grouped query.
type Aggregate struct {
	// GroupBy is the query's full grouping column list; Keys is the
	// reduced key set actually hashed (≤ 2 packable columns): columns
	// functionally determined by a kept key — via a table's unique key
	// and the join equivalence classes — are demoted to OpFirst slots.
	GroupBy []*catalog.Column
	Keys    []*catalog.Column
	Aggs    []AggSpec
	// ItemSlots maps each SELECT item to its output slot.
	ItemSlots []Slot
	// KeyOf maps every column whose value IS a kept key — the key
	// columns themselves plus grouping columns the planner substituted
	// to an equivalent spine column (Q3's o_orderkey ≡ l_orderkey) —
	// to the key index, for HAVING/ORDER BY resolution at merge time.
	KeyOf map[*catalog.Column]int
}

// SortKey is one resolved ORDER BY key.
type SortKey struct {
	Slot Slot // grouped queries
	Item int  // projection queries: select-item index
	Desc bool
}

// OutCol describes one output column of the plan.
type OutCol struct {
	Name string
	Type catalog.Type
}

// Plan is an optimized logical plan ready for lowering: the join tree
// plus the aggregation/projection, HAVING, ORDER BY and LIMIT phases.
type Plan struct {
	Root Node
	// Agg is non-nil for grouped/aggregated queries; Proj lists the
	// projection expressions otherwise.
	Agg  *Aggregate
	Proj []sql.Expr

	Having sql.Expr // evaluated per merged group row
	Sort   []SortKey
	Limit  int // -1 = none

	Cols []OutCol

	// AlwaysFalse is set when a WHERE conjunct folded to a constant
	// false: the top scan is planned with a reject-all filter.
	AlwaysFalse bool

	// Params lists the statement's parameter slot types in placeholder
	// order (empty for ordinary statements). A parameterized plan is an
	// execution template: BindArgs substitutes one argument binding and
	// ExecuteArgs runs the bound copy, so a single optimized plan —
	// join order, pushdown, pruning all decided once — serves every
	// binding of a prepared statement.
	Params []catalog.Type
	// ParamConds are WHERE conjuncts referencing no tables but at
	// least one parameter (`? = 1`): they cannot fold at plan time and
	// are evaluated per execution by BindArgs (a false one rejects all
	// rows, like a plan-time constant false).
	ParamConds []sql.Expr

	// Hints is the cardinality-feedback override the plan was built
	// with (nil for a statically planned statement). It informed the
	// join order and keeps informing the plan's telemetry estimates,
	// so est-vs-observed drift is measured against what the optimizer
	// actually believed.
	Hints CardHints

	cat *catalog.Catalog
}

// Format renders the plan as an indented tree — the EXPLAIN output of
// cmd/sqlsh and the assertion surface of the plan-shape tests.
func (p *Plan) Format() string {
	var sb strings.Builder
	if p.Limit >= 0 {
		fmt.Fprintf(&sb, "limit %d\n", p.Limit)
	}
	if len(p.Sort) > 0 {
		sb.WriteString("sort")
		for i, k := range p.Sort {
			if i > 0 {
				sb.WriteByte(',')
			}
			dir := " asc"
			if k.Desc {
				dir = " desc"
			}
			fmt.Fprintf(&sb, " #%d%s", sortCol(p, k), dir)
		}
		sb.WriteByte('\n')
	}
	if p.Having != nil {
		fmt.Fprintf(&sb, "having %s\n", sql.String(p.Having))
	}
	if p.Agg != nil {
		keys := colNames(p.Agg.Keys)
		if len(p.Agg.Keys) == 0 {
			keys = "<global>"
		}
		fmt.Fprintf(&sb, "groupby keys=[%s]", keys)
		if len(p.Agg.Keys) != len(p.Agg.GroupBy) {
			fmt.Fprintf(&sb, " (reduced from [%s])", colNames(p.Agg.GroupBy))
		}
		sb.WriteString(" aggs=[")
		for i, a := range p.Agg.Aggs {
			if i > 0 {
				sb.WriteString(", ")
			}
			if a.Arg == nil {
				fmt.Fprintf(&sb, "%s(*)", a.Op)
			} else {
				fmt.Fprintf(&sb, "%s(%s)", a.Op, sql.String(a.Arg))
			}
		}
		sb.WriteString("]\n")
	} else {
		sb.WriteString("project [")
		for i, e := range p.Proj {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(sql.String(e))
		}
		sb.WriteString("]\n")
	}
	formatNode(&sb, p.Root, 0)
	return sb.String()
}

func sortCol(p *Plan, k SortKey) int {
	if p.Agg == nil {
		return k.Item
	}
	for i, s := range p.Agg.ItemSlots {
		if s == k.Slot {
			return i
		}
	}
	return -1
}

func colNames(cols []*catalog.Column) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, " ")
}

func formatNode(sb *strings.Builder, n Node, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *Scan:
		fmt.Fprintf(sb, "%sscan %s", ind, x.Table.Name)
		for _, f := range x.Filters {
			fmt.Fprintf(sb, " σ(%s)", sql.String(f))
		}
		fmt.Fprintf(sb, " cols=[%s]\n", colNames(x.Cols))
	case *Join:
		fmt.Fprintf(sb, "%shashjoin %s = %s", ind, x.ProbeKey.Name, x.BuildKey.Name)
		for _, r := range x.Residuals {
			fmt.Fprintf(sb, " residual(%s = %s)", r[0].Name, r[1].Name)
		}
		sb.WriteByte('\n')
		fmt.Fprintf(sb, "%s  build:\n", ind)
		formatNode(sb, x.Build, depth+2)
		fmt.Fprintf(sb, "%s  probe:\n", ind)
		formatNode(sb, x.Probe, depth+2)
	}
}
