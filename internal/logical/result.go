package logical

import (
	"fmt"
	"strings"

	"paradigms/internal/catalog"
	"paradigms/internal/types"
)

// Result is the output of an ad-hoc SQL query: typed columns and rows
// of raw 64-bit values (dates as day numbers, numerics as scaled
// integers) — the engines' physical representation, so cross-validation
// against the reference oracles is bit-exact. Formatting happens only
// at display time.
type Result struct {
	Cols []OutCol
	Rows [][]int64
}

// Cell renders one value using its column type.
func (r *Result) Cell(row, col int) string {
	return formatValue(r.Rows[row][col], r.Cols[col].Type)
}

func formatValue(v int64, t catalog.Type) string {
	switch t.Kind {
	case catalog.Date:
		return types.Date(v).String()
	case catalog.Numeric:
		if t.Scale == 0 {
			return fmt.Sprintf("%d", v)
		}
		pow := int64(1)
		for i := 0; i < t.Scale; i++ {
			pow *= 10
		}
		sign := ""
		if v < 0 {
			sign = "-"
			v = -v
		}
		return fmt.Sprintf("%s%d.%0*d", sign, v/pow, t.Scale, v%pow)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// String renders the result as an aligned text table (the cmd/sqlsh
// output), capping very long results.
func (r *Result) String() string {
	const maxRows = 50
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c.Name)
	}
	n := len(r.Rows)
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for i := 0; i < shown; i++ {
		cells[i] = make([]string, len(r.Cols))
		for j := range r.Cols {
			cells[i][j] = r.Cell(i, j)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var sb strings.Builder
	for j, c := range r.Cols {
		if j > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[j], c.Name)
	}
	sb.WriteByte('\n')
	for j := range r.Cols {
		if j > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[j]))
	}
	sb.WriteByte('\n')
	for i := 0; i < shown; i++ {
		for j := range r.Cols {
			if j > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[j], cells[i][j])
		}
		sb.WriteByte('\n')
	}
	if shown < n {
		fmt.Fprintf(&sb, "... (%d rows total)\n", n)
	} else {
		fmt.Fprintf(&sb, "(%d row%s)\n", n, plural(n))
	}
	return sb.String()
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
