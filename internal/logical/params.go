package logical

import (
	"fmt"
	"strconv"

	"paradigms/internal/catalog"
	"paradigms/internal/sql"
	"paradigms/internal/types"
)

// BindArgs resolves the plan's parameter placeholders against one
// argument binding, returning an executable plan. The result is a
// copy-on-write clone: every expression tree containing a placeholder
// is rebuilt with the placeholder replaced by a literal of the bound
// value (already in raw units — the binder typed each slot like a
// coerced literal), while untouched subtrees, the aggregation layout,
// sort keys, and all catalog references are shared with the template.
// The template itself is never mutated, so one cached plan can be
// bound and executed concurrently from many clients. A plan without
// parameters binds to itself.
func (pl *Plan) BindArgs(args []int64) (*Plan, error) {
	if len(args) != len(pl.Params) {
		return nil, fmt.Errorf("logical: statement wants %d parameter(s), got %d", len(pl.Params), len(args))
	}
	if len(pl.Params) == 0 {
		return pl, nil
	}
	cp := *pl
	cp.Params, cp.ParamConds = nil, nil // the clone holds no placeholders
	lookup := func(e sql.Expr) (int64, bool) {
		if p, ok := e.(*sql.Param); ok {
			return args[p.Idx], true
		}
		return 0, false
	}
	for _, cond := range pl.ParamConds {
		v, isBool, err := evalScalar(cond, lookup)
		if err != nil {
			return nil, err
		}
		if !isBool {
			return nil, sql.Errf(cond.Pos(), "constant conjunct %s is not a predicate", sql.String(cond))
		}
		if v == 0 {
			cp.AlwaysFalse = true
		}
	}
	cp.Root = bindNode(pl.Root, args)
	if pl.Agg != nil {
		agg := *pl.Agg
		agg.Aggs = make([]AggSpec, len(pl.Agg.Aggs))
		for i, s := range pl.Agg.Aggs {
			s.Arg = bindExpr(s.Arg, args)
			s.Src = bindExpr(s.Src, args)
			agg.Aggs[i] = s
		}
		cp.Agg = &agg
	}
	if len(pl.Proj) > 0 {
		cp.Proj = make([]sql.Expr, len(pl.Proj))
		for i, e := range pl.Proj {
			cp.Proj[i] = bindExpr(e, args)
		}
	}
	cp.Having = bindExpr(pl.Having, args)
	return &cp, nil
}

// BindTexts parses argument texts (one per parameter, in placeholder
// order) into the raw values ExecuteArgs takes, using each slot's bound
// type — the argument surface of sqlsh's \execute and the service's
// prepared-execution API.
func (pl *Plan) BindTexts(args []string) ([]int64, error) {
	if len(args) != len(pl.Params) {
		return nil, fmt.Errorf("logical: statement wants %d parameter(s), got %d", len(pl.Params), len(args))
	}
	if len(args) == 0 {
		return nil, nil
	}
	vals := make([]int64, len(args))
	for i, a := range args {
		v, err := sql.ParseDatum(a, pl.Params[i])
		if err != nil {
			return nil, fmt.Errorf("logical: parameter ?%d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// bindNode substitutes arguments through the join tree's scan filters,
// sharing unchanged nodes.
func bindNode(n Node, args []int64) Node {
	switch x := n.(type) {
	case *Scan:
		changed := false
		fs := make([]sql.Expr, len(x.Filters))
		for i, f := range x.Filters {
			fs[i] = bindExpr(f, args)
			if fs[i] != f {
				changed = true
			}
		}
		if !changed {
			return x
		}
		cp := *x
		cp.Filters = fs
		return &cp
	case *Join:
		b, p := bindNode(x.Build, args), bindNode(x.Probe, args)
		if b == x.Build && p == x.Probe {
			return x
		}
		cp := *x
		cp.Build, cp.Probe = b, p
		return &cp
	}
	return n
}

// bindExpr replaces each placeholder with a literal of its bound value,
// copying only the spine of trees that actually contain one. Both
// occurrences of an expression (an aggregate's Arg and Src, HAVING vs
// a hidden slot) substitute identically, so structural Equal matching
// keeps working on the bound plan.
func bindExpr(e sql.Expr, args []int64) sql.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *sql.Param:
		v := args[x.Idx]
		if x.Typ.Kind == catalog.Date {
			return &sql.DateLit{P: x.P, Text: types.Date(v).String(), Days: int32(v)}
		}
		return &sql.NumLit{P: x.P, Text: strconv.FormatInt(v, 10), Val: v, Typ: x.Typ}
	case *sql.Binary:
		l, r := bindExpr(x.L, args), bindExpr(x.R, args)
		if l == x.L && r == x.R {
			return x
		}
		cp := *x
		cp.L, cp.R = l, r
		return &cp
	case *sql.Not:
		in := bindExpr(x.X, args)
		if in == x.X {
			return x
		}
		cp := *x
		cp.X = in
		return &cp
	case *sql.Between:
		v, lo, hi := bindExpr(x.X, args), bindExpr(x.Lo, args), bindExpr(x.Hi, args)
		if v == x.X && lo == x.Lo && hi == x.Hi {
			return x
		}
		cp := *x
		cp.X, cp.Lo, cp.Hi = v, lo, hi
		return &cp
	case *sql.InList:
		v := bindExpr(x.X, args)
		changed := v != x.X
		list := make([]sql.Expr, len(x.List))
		for i, l := range x.List {
			list[i] = bindExpr(l, args)
			if list[i] != l {
				changed = true
			}
		}
		if !changed {
			return x
		}
		cp := *x
		cp.X, cp.List = v, list
		return &cp
	case *sql.Agg:
		arg := bindExpr(x.Arg, args)
		if arg == x.Arg {
			return x
		}
		cp := *x
		cp.Arg = arg
		return &cp
	}
	return e
}
