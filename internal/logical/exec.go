package logical

import (
	"context"
	"math"
	"sort"

	"paradigms/internal/catalog"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/plan"
	"paradigms/internal/sql"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// Execute lowers the plan and runs it morsel-parallel on the Tectorwise
// operator layer. A canceled context drains the workers within one
// morsel and returns a partial result the caller discards (the same
// contract as the registered engine queries).
func (pl *Plan) Execute(ctx context.Context, workers, vecSize int) (*Result, error) {
	prog, err := lower(pl)
	if err != nil {
		return nil, err
	}
	e := plan.NewExec(ctx, workers, vecSize)
	for _, ps := range prog.pipes {
		ps.disp = e.ScanDisp(ps.scan.Table.Rel)
		if ps.keyCol != nil {
			ps.ht = hashtable.New(1+len(ps.pays), e.Workers)
		}
	}

	agg := pl.Agg
	keyed := agg != nil && len(agg.Keys) > 0
	global := agg != nil && len(agg.Keys) == 0

	var (
		spill      *hashtable.Spill
		partDisp   *exec.Dispatcher
		htOps      []hashtable.AggOp
		workerRows [][][]int64
		partials   []globalPartial
	)
	switch {
	case keyed:
		htOps = make([]hashtable.AggOp, len(agg.Aggs))
		for i, s := range agg.Aggs {
			htOps[i] = s.Op.htOp()
		}
		spill = hashtable.NewSpill(e.Workers, tw.AggPartitions, 2+len(htOps))
		partDisp = e.PartDisp(tw.AggPartitions)
		workerRows = make([][][]int64, e.Workers)
	case global:
		partials = make([]globalPartial, e.Workers)
	default:
		workerRows = make([][][]int64, e.Workers)
	}

	e.Run(func(wid int, bufs *vector.Buffers) []plan.Stage {
		w := &worker{bufs: bufs, colBuf: map[*pipeSpec]map[*catalog.Column][]uint64{}}
		var stages []plan.Stage
		for _, ps := range prog.pipes {
			if ps.keyCol == nil {
				continue
			}
			root := w.pipeOps(ps, e)
			key := w.srcVecU64(ps, colSrc{base: ps.keyCol})
			pays := make([]plan.VecU64, len(ps.pays))
			for i, src := range ps.paySrc {
				pays[i] = w.srcVecU64(ps, src)
			}
			stages = append(stages, plan.Stage{
				Root: root,
				Sink: plan.NewHashBuild(bufs, ps.ht, wid, key, pays...),
			})
		}

		final := prog.final
		root := w.pipeOps(final, e)
		switch {
		case keyed:
			key := w.groupKey(final, agg)
			vals := make([]plan.VecI64, len(agg.Aggs))
			for i, s := range agg.Aggs {
				vals[i] = w.aggInput(final, s)
			}
			stages = append(stages, plan.Stage{
				Root: root,
				Sink: plan.NewGroupBy(bufs, spill, wid, htOps, key, vals...),
			})
			nk := len(agg.Keys)
			stages = append(stages, plan.MergeStage(partDisp, spill, htOps, func(wid int, row []uint64) {
				out := make([]int64, nk+len(agg.Aggs))
				decodeKeys(agg.Keys, row[1], out)
				for j := range agg.Aggs {
					out[nk+j] = int64(row[2+j])
				}
				workerRows[wid] = append(workerRows[wid], out)
			}))
		case global:
			sink := newGlobalAggSink(w, final, agg, &partials[wid])
			stages = append(stages, plan.Stage{Root: root, Sink: sink})
		default:
			sink := &collectSink{}
			sink.exprs = make([]vec64, len(pl.Proj))
			for i, e := range pl.Proj {
				sink.exprs[i] = w.vecI64(final, e)
			}
			sink.out = &workerRows[wid]
			stages = append(stages, plan.Stage{Root: root, Sink: sink})
		}
		return stages
	})

	// Merge phase: assemble output rows in slot layout [keys..., aggs...]
	// (grouped/global) or item layout (projection).
	var rows [][]int64
	switch {
	case global:
		rows = [][]int64{mergeGlobal(agg, partials)}
	default:
		for _, wr := range workerRows {
			rows = append(rows, wr...)
		}
	}

	if pl.Having != nil {
		kept := rows[:0]
		for _, r := range rows {
			v, _, err := evalScalar(pl.Having, pl.slotLookup(r))
			if err != nil {
				return nil, err
			}
			if v != 0 {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	if len(pl.Sort) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range pl.Sort {
				a, b := pl.sortValue(rows[i], k), pl.sortValue(rows[j], k)
				if a == b {
					continue
				}
				if k.Desc {
					return a > b
				}
				return a < b
			}
			return false
		})
	}
	if pl.Limit >= 0 && len(rows) > pl.Limit {
		rows = rows[:pl.Limit]
	}

	res := &Result{Cols: pl.Cols}
	if agg != nil {
		nk := len(agg.Keys)
		for _, r := range rows {
			out := make([]int64, len(agg.ItemSlots))
			for i, s := range agg.ItemSlots {
				if s.Key {
					out[i] = r[s.Idx]
				} else {
					out[i] = r[nk+s.Idx]
				}
			}
			res.Rows = append(res.Rows, out)
		}
	} else {
		res.Rows = rows
	}
	return res, nil
}

// htOp maps a logical aggregate operator to the shared merge machinery.
func (op AggOp) htOp() hashtable.AggOp {
	switch op {
	case OpSum, OpCount:
		return hashtable.OpSum
	case OpMin:
		return hashtable.OpMin
	case OpMax:
		return hashtable.OpMax
	}
	return hashtable.OpFirst
}

// decodeKeys unpacks the group-key word into the first len(keys) output
// slots, restoring 32-bit signs for packed pairs.
func decodeKeys(keys []*catalog.Column, word uint64, out []int64) {
	if len(keys) == 1 {
		out[0] = int64(word)
		return
	}
	out[0] = int64(int32(uint32(word)))
	out[1] = int64(int32(uint32(word >> 32)))
}

// slotLookup resolves HAVING leaves (grouping columns, aggregates) to
// values of a merged row in slot layout.
func (pl *Plan) slotLookup(row []int64) func(sql.Expr) (int64, bool) {
	return func(e sql.Expr) (int64, bool) {
		s, ok := pl.findSlot(e)
		if !ok {
			return 0, false
		}
		return pl.slotValue(row, s), true
	}
}

func (pl *Plan) slotValue(row []int64, s Slot) int64 {
	if s.Key {
		return row[s.Idx]
	}
	return row[len(pl.Agg.Keys)+s.Idx]
}

// findSlot locates the output slot of a grouping column or aggregate.
func (pl *Plan) findSlot(e sql.Expr) (Slot, bool) {
	agg := pl.Agg
	if agg == nil {
		return Slot{}, false
	}
	switch x := e.(type) {
	case *sql.Agg:
		for i, s := range agg.Aggs {
			if s.Op != OpFirst && sql.Equal(s.Src, x) {
				return Slot{Key: false, Idx: i}, true
			}
		}
	case *sql.ColRef:
		if i, ok := agg.KeyOf[x.Col]; ok {
			return Slot{Key: true, Idx: i}, true
		}
		for i, s := range agg.Aggs {
			if s.Op == OpFirst {
				if ref, ok := s.Arg.(*sql.ColRef); ok && ref.Col == x.Col {
					return Slot{Key: false, Idx: i}, true
				}
			}
		}
	}
	return Slot{}, false
}

func (pl *Plan) sortValue(row []int64, k SortKey) int64 {
	if pl.Agg == nil {
		return row[k.Item]
	}
	return pl.slotValue(row, k.Slot)
}

// mergeGlobal combines the per-worker partials of a global aggregate
// into the single output row. With zero input rows, sums and counts are
// 0 (the engine has no NULL).
func mergeGlobal(agg *Aggregate, partials []globalPartial) []int64 {
	out := make([]int64, len(agg.Aggs))
	for j, s := range agg.Aggs {
		switch s.Op {
		case OpMin:
			out[j] = math.MaxInt64
		case OpMax:
			out[j] = math.MinInt64
		}
	}
	var total int64
	for _, p := range partials {
		if p.n == 0 {
			continue
		}
		total += p.n
		for j, s := range agg.Aggs {
			switch s.Op {
			case OpSum, OpCount:
				out[j] += p.acc[j]
			case OpMin:
				if p.acc[j] < out[j] {
					out[j] = p.acc[j]
				}
			case OpMax:
				if p.acc[j] > out[j] {
					out[j] = p.acc[j]
				}
			case OpFirst:
				out[j] = p.acc[j]
			}
		}
	}
	if total == 0 {
		for j := range out {
			out[j] = 0
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Per-worker pipeline assembly
// ---------------------------------------------------------------------

// worker holds one worker's buffer arena and the gathered-column
// buffers of each pipeline.
type worker struct {
	bufs   *vector.Buffers
	colBuf map[*pipeSpec]map[*catalog.Column][]uint64
	ones   []int64
}

// pipeOps assembles the operator tree of one pipeline for this worker.
func (w *worker) pipeOps(ps *pipeSpec, e *plan.Exec) plan.Operator {
	var op plan.Operator = e.NewScan(ps.disp)
	if preds := w.filterPreds(ps); len(preds) > 0 {
		op = plan.NewFilterChain(w.bufs, op, preds...)
	}
	bufs := map[*catalog.Column][]uint64{}
	w.colBuf[ps] = bufs
	var live [][]uint64
	for _, st := range ps.steps {
		spec := plan.ProbeSpec{HT: st.build.ht, Key: w.srcVecU64(ps, colSrc{base: st.probeKey})}
		var added [][]uint64
		for _, g := range st.gathers {
			dst := w.bufs.Ref()
			bufs[g.col] = dst
			spec.GatherU64 = append(spec.GatherU64, plan.GatherU64{Word: g.word, Dst: dst})
			added = append(added, dst)
		}
		for _, lb := range live {
			spec.Carry = append(spec.Carry, plan.CarryU64(w.bufs, lb))
		}
		op = plan.NewHashProbe(w.bufs, op, spec)
		live = append(live, added...)
		for _, r := range st.residuals {
			av := w.u64Vec(ps, r[0])
			bv := w.u64Vec(ps, r[1])
			var carries []plan.Carry
			for _, lb := range live {
				carries = append(carries, plan.CarryU64(w.bufs, lb))
			}
			op = plan.NewMatch(w.bufs, op,
				func(b *plan.Batch, res []int32) int {
					return tw.SelEqCols(av(b), bv(b), b.K, res)
				}, carries...)
		}
	}
	return op
}

// srcVecU64 builds a key/payload expression for a column source.
func (w *worker) srcVecU64(ps *pipeSpec, src colSrc) plan.VecU64 {
	if src.base == nil {
		buf := w.colBuf[ps][srcColOf(ps, src)]
		return plan.FromU64(buf)
	}
	c := src.base
	rel := ps.scan.Table.Rel
	switch c.Type.Kind {
	case catalog.Int32:
		return plan.KeyWiden(rel.Int32(c.Name))
	case catalog.Date:
		return plan.KeyWiden(rel.Date(c.Name))
	case catalog.Numeric:
		return plan.ColU64FromI64(rel.Numeric(c.Name))
	case catalog.Int64:
		return plan.ColU64FromI64(rel.Int64(c.Name))
	}
	panic("logical: column " + c.Name + " cannot be a key or payload")
}

// srcColOf finds the gathered column a derived source refers to.
func srcColOf(ps *pipeSpec, src colSrc) *catalog.Column {
	st := ps.steps[src.step]
	for _, g := range st.gathers {
		if g.word == src.word {
			return g.col
		}
	}
	panic("logical: dangling column source")
}

// u64Vec returns the source's uint64 vector for the current batch
// (derived buffers as-is, base columns materialized through the
// selection into a private buffer).
func (w *worker) u64Vec(ps *pipeSpec, src colSrc) func(b *plan.Batch) []uint64 {
	if src.base == nil {
		buf := w.colBuf[ps][srcColOf(ps, src)]
		return func(*plan.Batch) []uint64 { return buf }
	}
	expr := w.srcVecU64(ps, src)
	scratch := w.bufs.Ref()
	return func(b *plan.Batch) []uint64 { return expr(b, scratch) }
}

// groupKey builds the grouping-key expression: one key hashes directly,
// two pack lo|hi<<32 like the hand-written Q2.1 plan.
func (w *worker) groupKey(ps *pipeSpec, agg *Aggregate) plan.VecU64 {
	if len(agg.Keys) == 1 {
		return w.srcVecU64(ps, ps.resolve(agg.Keys[0]))
	}
	lo := w.u64Vec(ps, ps.resolve(agg.Keys[0]))
	hi := w.u64Vec(ps, ps.resolve(agg.Keys[1]))
	return func(b *plan.Batch, scratch []uint64) []uint64 {
		tw.MapPackU64LoHi(lo(b), hi(b), b.K, scratch)
		return scratch
	}
}

// aggInput compiles one aggregate slot's input vector.
func (w *worker) aggInput(ps *pipeSpec, s AggSpec) plan.VecI64 {
	if s.Op == OpCount && s.Arg == nil { // COUNT(*)
		return w.onesVec()
	}
	if s.Op == OpCount { // COUNT(expr): no NULLs, every row counts
		return w.onesVec()
	}
	v := w.vecI64(ps, s.Arg)
	return func(b *plan.Batch, _ []int64) []int64 { return v(b) }
}

func (w *worker) onesVec() plan.VecI64 {
	if w.ones == nil {
		w.ones = w.bufs.I64()
		for i := range w.ones {
			w.ones[i] = 1
		}
	}
	ones := w.ones
	return func(b *plan.Batch, _ []int64) []int64 { return ones }
}

// globalPartial is one worker's share of a global aggregate.
type globalPartial struct {
	acc []int64
	n   int64
}

// globalAggSink reduces the final pipeline to per-worker accumulators —
// the generic form of the hand plans' SumSink, so global SUM keeps the
// identical fused multiply-sum hot loop.
type globalAggSink struct {
	specs []AggSpec
	vals  []vec64
	acc   []int64
	n     int64
	out   *globalPartial
}

func newGlobalAggSink(w *worker, ps *pipeSpec, agg *Aggregate, out *globalPartial) *globalAggSink {
	s := &globalAggSink{specs: agg.Aggs, out: out, acc: make([]int64, len(agg.Aggs))}
	s.vals = make([]vec64, len(agg.Aggs))
	for i, spec := range agg.Aggs {
		switch spec.Op {
		case OpMin:
			s.acc[i] = math.MaxInt64
		case OpMax:
			s.acc[i] = math.MinInt64
		}
		if spec.Op != OpCount {
			s.vals[i] = w.vecI64(ps, spec.Arg)
		}
	}
	return s
}

// Consume implements plan.Sink.
func (s *globalAggSink) Consume(b *plan.Batch) {
	s.n += int64(b.K)
	for j, spec := range s.specs {
		switch spec.Op {
		case OpCount:
			s.acc[j] += int64(b.K)
		case OpSum:
			s.acc[j] += tw.SumI64(s.vals[j](b), b.K)
		case OpMin:
			v := s.vals[j](b)
			for i := 0; i < b.K; i++ {
				if v[i] < s.acc[j] {
					s.acc[j] = v[i]
				}
			}
		case OpMax:
			v := s.vals[j](b)
			for i := 0; i < b.K; i++ {
				if v[i] > s.acc[j] {
					s.acc[j] = v[i]
				}
			}
		}
	}
}

// Finish implements plan.Sink.
func (s *globalAggSink) Finish(bar *exec.Barrier, wid int) {
	*s.out = globalPartial{acc: s.acc, n: s.n}
	bar.Wait(nil)
}

// collectSink materializes projection rows per worker.
type collectSink struct {
	exprs []vec64
	out   *[][]int64
}

// Consume implements plan.Sink.
func (s *collectSink) Consume(b *plan.Batch) {
	vecs := make([][]int64, len(s.exprs))
	for j, e := range s.exprs {
		vecs[j] = e(b)
	}
	for i := 0; i < b.K; i++ {
		row := make([]int64, len(vecs))
		for j := range vecs {
			row[j] = vecs[j][i]
		}
		*s.out = append(*s.out, row)
	}
}

// Finish implements plan.Sink.
func (s *collectSink) Finish(bar *exec.Barrier, wid int) { bar.Wait(nil) }
