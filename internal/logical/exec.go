package logical

import (
	"context"
	"fmt"
	"math"
	"sort"

	"paradigms/internal/catalog"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/obs"
	"paradigms/internal/plan"
	"paradigms/internal/sql"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// Execute lowers the plan and runs it morsel-parallel on the Tectorwise
// operator layer. A canceled context drains the workers within one
// morsel and returns a partial result the caller discards (the same
// contract as the registered engine queries). Parameterized plans must
// go through ExecuteArgs.
func (pl *Plan) Execute(ctx context.Context, workers, vecSize int) (*Result, error) {
	if len(pl.Params) > 0 {
		return nil, fmt.Errorf("logical: statement has %d unbound parameter(s); use ExecuteArgs", len(pl.Params))
	}
	return pl.executeInto(ctx, workers, vecSize, nil, 0, nil)
}

// executeInto is the shared body of Execute, ExecuteStream, and
// ExecutePartial: with a nil stream it materializes a Result; with a
// stream it flushes row batches as they are produced — projection rows
// per morsel from each worker's sink, grouped rows per merged spill
// partition — and returns a nil Result (streaming callers must pass a
// Streamable plan). With a non-nil part it fills the shard-local
// partial state instead of finalizing.
func (pl *Plan) executeInto(ctx context.Context, workers, vecSize int, stream *Streamer, chunk int, part *Partial) (*Result, error) {
	prog, err := lower(pl)
	if err != nil {
		return nil, err
	}
	e := plan.NewExec(ctx, workers, vecSize)
	col := obs.FromContext(ctx)
	if col != nil {
		describeProgram(prog, col)
		for i := range prog.pipes {
			col.SetPipeEngine(i, "v")
			col.SetVec(i, e.Vec)
		}
	}
	for _, ps := range prog.pipes {
		ps.disp = e.ScanDisp(ps.scan.Table.Rel)
		if ps.keyCol != nil {
			ps.ht = hashtable.New(1+len(ps.pays), e.Workers)
		}
	}

	agg := pl.Agg
	keyed := agg != nil && len(agg.Keys) > 0
	global := agg != nil && len(agg.Keys) == 0

	var (
		spill      *hashtable.Spill
		partDisp   *exec.Dispatcher
		htOps      []hashtable.AggOp
		workerRows [][][]int64
		partials   []GlobalPartial
		streamBufs []*StreamBuf
	)
	if stream != nil {
		streamBufs = make([]*StreamBuf, e.Workers)
		for i := range streamBufs {
			streamBufs[i] = stream.NewBuf(chunk)
		}
	}
	switch {
	case keyed:
		htOps = make([]hashtable.AggOp, len(agg.Aggs))
		for i, s := range agg.Aggs {
			htOps[i] = s.Op.HTOp()
		}
		spill = hashtable.NewSpill(e.Workers, tw.AggPartitions, 2+len(htOps))
		partDisp = e.PartDisp(tw.AggPartitions)
		workerRows = make([][][]int64, e.Workers)
	case global:
		partials = make([]GlobalPartial, e.Workers)
	default:
		workerRows = make([][][]int64, e.Workers)
	}

	// observed wraps a stage's sink with worker-local row/batch counters
	// and merges them (plus the worker's stage wall time) into the
	// collector when the stage completes; with no collector the stage is
	// returned untouched.
	observed := func(st plan.Stage, pipe int) plan.Stage {
		if col == nil {
			return st
		}
		cs := &obs.CountingSink{Sink: st.Sink}
		st.Sink = cs
		st.Obs = func(wid int, nanos int64) {
			col.PipeWorker(pipe, cs.Rows, cs.Batches, nanos)
		}
		return st
	}

	e.Run(func(wid int, bufs *vector.Buffers) []plan.Stage {
		w := &worker{bufs: bufs, colBuf: map[*pipeSpec]map[*catalog.Column][]uint64{}}
		var stages []plan.Stage
		for pi, ps := range prog.pipes {
			if ps.keyCol == nil {
				continue
			}
			root := w.pipeOps(ps, e)
			key := w.srcVecU64(ps, colSrc{base: ps.keyCol})
			pays := make([]plan.VecU64, len(ps.pays))
			for i, src := range ps.paySrc {
				pays[i] = w.srcVecU64(ps, src)
			}
			stages = append(stages, observed(plan.Stage{
				Root: root,
				Sink: plan.NewHashBuild(bufs, ps.ht, wid, key, pays...),
			}, pi))
		}

		final := prog.final
		fi := len(prog.pipes) - 1
		root := w.pipeOps(final, e)
		switch {
		case keyed:
			key := w.groupKey(final, agg)
			vals := make([]plan.VecI64, len(agg.Aggs))
			for i, s := range agg.Aggs {
				vals[i] = w.aggInput(final, s)
			}
			stages = append(stages, observed(plan.Stage{
				Root: root,
				Sink: plan.NewGroupBy(bufs, spill, wid, htOps, key, vals...),
			}, fi))
			stages = append(stages, plan.MergeStage(partDisp, spill, htOps, func(wid int, row []uint64) {
				out := make([]int64, agg.MergedWidth())
				agg.DecodeMergedRow(row, out)
				if stream != nil {
					streamBufs[wid].Add(pl.itemRow(out))
					return
				}
				workerRows[wid] = append(workerRows[wid], out)
			}))
		case global:
			sink := newGlobalAggSink(w, final, agg, &partials[wid])
			stages = append(stages, observed(plan.Stage{Root: root, Sink: sink}, fi))
		default:
			sink := &collectSink{}
			sink.exprs = make([]vec64, len(pl.Proj))
			for i, e := range pl.Proj {
				sink.exprs[i] = w.vecI64(final, e)
			}
			if stream != nil {
				sink.stream = streamBufs[wid]
			} else {
				sink.out = &workerRows[wid]
			}
			stages = append(stages, observed(plan.Stage{Root: root, Sink: sink}, fi))
		}
		return stages
	})

	if col != nil {
		for i, ps := range prog.pipes {
			if ps.keyCol != nil {
				col.SetHTRows(i, int64(ps.ht.Rows()))
			}
		}
	}

	if stream != nil {
		for _, b := range streamBufs {
			b.Flush()
		}
		return nil, nil
	}

	if part != nil {
		// Partial mode: hand the pre-finalization state to the exchange
		// merge instead of running the HAVING/sort/limit tail here.
		switch {
		case keyed:
			for _, wr := range workerRows {
				part.Groups = append(part.Groups, wr...)
			}
		case global:
			part.Globals = partials
		default:
			for _, wr := range workerRows {
				part.Rows = append(part.Rows, wr...)
			}
		}
		return nil, nil
	}

	// Merge phase: assemble output rows in slot layout [keys..., aggs...]
	// (grouped/global) or item layout (projection).
	var rows [][]int64
	switch {
	case global:
		rows = [][]int64{MergeGlobal(agg, partials)}
	default:
		for _, wr := range workerRows {
			rows = append(rows, wr...)
		}
	}

	return pl.FinalizeRows(rows)
}

// ExecuteArgs is Execute for parameterized plans: the argument binding
// substitutes into a copy-on-write clone (BindArgs) and the bound plan
// lowers and runs. Like Run, internal panics surface as errors, so a
// cached plan cannot take down the query service. The receiver is never
// mutated — safe for concurrent executions of one cached plan.
func (pl *Plan) ExecuteArgs(ctx context.Context, workers, vecSize int, args []int64) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("logical: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, err
	}
	return bound.Execute(ctx, workers, vecSize)
}

// FinalizeRows turns merged rows — slot layout [keys..., aggs...] for
// grouped/global queries, item layout for projections — into the final
// Result: HAVING filtering, ORDER BY, LIMIT, and the item-slot mapping.
// It is the shared tail of both lowering backends (the vectorized path
// above and internal/compiled's fused path), so HAVING/sort/limit
// semantics cannot drift between the engines.
func (pl *Plan) FinalizeRows(rows [][]int64) (*Result, error) {
	agg := pl.Agg

	if pl.Having != nil {
		kept := rows[:0]
		for _, r := range rows {
			v, _, err := evalScalar(pl.Having, pl.slotLookup(r))
			if err != nil {
				return nil, err
			}
			if v != 0 {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	if len(pl.Sort) > 0 {
		// A concrete sorter: sort.SliceStable's reflect-based swapper
		// costs real time on large group counts (Q3/Q18 shapes).
		sort.Stable(&rowSorter{pl: pl, rows: rows})
	}
	if pl.Limit >= 0 && len(rows) > pl.Limit {
		rows = rows[:pl.Limit]
	}

	res := &Result{Cols: pl.Cols}
	if agg != nil {
		for _, r := range rows {
			res.Rows = append(res.Rows, pl.itemRow(r))
		}
	} else {
		res.Rows = rows
	}
	return res, nil
}

// itemRow maps one merged slot-layout row [keys..., aggs...] to the
// output item layout; projection rows (no aggregate) are already in
// item layout. Shared by the materializing tail (FinalizeRows) and the
// streaming flush of both backends.
func (pl *Plan) itemRow(r []int64) []int64 {
	agg := pl.Agg
	if agg == nil {
		return r
	}
	nk := len(agg.Keys)
	out := make([]int64, len(agg.ItemSlots))
	for i, s := range agg.ItemSlots {
		if s.Key {
			out[i] = r[s.Idx]
		} else {
			out[i] = r[nk+s.Idx]
		}
	}
	return out
}

// ItemRow is itemRow for the compiled backend's streaming flush.
func (pl *Plan) ItemRow(r []int64) []int64 { return pl.itemRow(r) }

// rowSorter orders merged rows by the plan's ORDER BY keys (stable, so
// input order breaks ties deterministically per backend).
type rowSorter struct {
	pl   *Plan
	rows [][]int64
}

func (s *rowSorter) Len() int      { return len(s.rows) }
func (s *rowSorter) Swap(i, j int) { s.rows[i], s.rows[j] = s.rows[j], s.rows[i] }
func (s *rowSorter) Less(i, j int) bool {
	for _, k := range s.pl.Sort {
		a, b := s.pl.sortValue(s.rows[i], k), s.pl.sortValue(s.rows[j], k)
		if a == b {
			continue
		}
		if k.Desc {
			return a > b
		}
		return a < b
	}
	return false
}

// HTOp maps a logical aggregate operator to the shared merge machinery;
// both lowering backends use it for the partition-merge phase.
func (op AggOp) HTOp() hashtable.AggOp {
	switch op {
	case OpSum, OpCount:
		return hashtable.OpSum
	case OpMin:
		return hashtable.OpMin
	case OpMax:
		return hashtable.OpMax
	}
	return hashtable.OpFirst
}

// MergedWidth is the slot-layout width of a merged group row:
// [keys..., aggs...].
func (agg *Aggregate) MergedWidth() int { return len(agg.Keys) + len(agg.Aggs) }

// DecodeMergedRow fills out (slot layout [keys..., aggs...], length
// MergedWidth) from one merged spill row [hash, key, aggs...] — the one
// decode both lowering backends use for aggregation phase two, so the
// row layout cannot drift between engines.
func (agg *Aggregate) DecodeMergedRow(row []uint64, out []int64) {
	DecodeGroupKey(agg.Keys, row[1], out)
	nk := len(agg.Keys)
	for j := range agg.Aggs {
		out[nk+j] = int64(row[2+j])
	}
}

// DecodeGroupKey unpacks the group-key word into the first len(keys)
// output slots, restoring 32-bit signs for packed pairs. It is the
// decode side of the key encoding both lowering backends share (single
// keys as zero-extended words, 32-bit pairs packed lo|hi<<32).
func DecodeGroupKey(keys []*catalog.Column, word uint64, out []int64) {
	if len(keys) == 1 {
		out[0] = int64(word)
		return
	}
	out[0] = int64(int32(uint32(word)))
	out[1] = int64(int32(uint32(word >> 32)))
}

// slotLookup resolves HAVING leaves (grouping columns, aggregates) to
// values of a merged row in slot layout.
func (pl *Plan) slotLookup(row []int64) func(sql.Expr) (int64, bool) {
	return func(e sql.Expr) (int64, bool) {
		s, ok := pl.findSlot(e)
		if !ok {
			return 0, false
		}
		return pl.slotValue(row, s), true
	}
}

func (pl *Plan) slotValue(row []int64, s Slot) int64 {
	if s.Key {
		return row[s.Idx]
	}
	return row[len(pl.Agg.Keys)+s.Idx]
}

// findSlot locates the output slot of a grouping column or aggregate.
func (pl *Plan) findSlot(e sql.Expr) (Slot, bool) {
	agg := pl.Agg
	if agg == nil {
		return Slot{}, false
	}
	switch x := e.(type) {
	case *sql.Agg:
		for i, s := range agg.Aggs {
			if s.Op != OpFirst && sql.Equal(s.Src, x) {
				return Slot{Key: false, Idx: i}, true
			}
		}
	case *sql.ColRef:
		if i, ok := agg.KeyOf[x.Col]; ok {
			return Slot{Key: true, Idx: i}, true
		}
		for i, s := range agg.Aggs {
			if s.Op == OpFirst {
				if ref, ok := s.Arg.(*sql.ColRef); ok && ref.Col == x.Col {
					return Slot{Key: false, Idx: i}, true
				}
			}
		}
	}
	return Slot{}, false
}

func (pl *Plan) sortValue(row []int64, k SortKey) int64 {
	if pl.Agg == nil {
		return row[k.Item]
	}
	return pl.slotValue(row, k.Slot)
}

// MergeGlobal combines the per-worker partials of a global aggregate
// into the single output row. With zero input rows, sums and counts are
// 0 (the engine has no NULL). Shared by both lowering backends so the
// empty-input and min/max-sentinel semantics stay identical.
func MergeGlobal(agg *Aggregate, partials []GlobalPartial) []int64 {
	out := make([]int64, len(agg.Aggs))
	for j, s := range agg.Aggs {
		switch s.Op {
		case OpMin:
			out[j] = math.MaxInt64
		case OpMax:
			out[j] = math.MinInt64
		}
	}
	var total int64
	for _, p := range partials {
		if p.N == 0 {
			continue
		}
		total += p.N
		for j, s := range agg.Aggs {
			switch s.Op {
			case OpSum, OpCount:
				out[j] += p.Acc[j]
			case OpMin:
				if p.Acc[j] < out[j] {
					out[j] = p.Acc[j]
				}
			case OpMax:
				if p.Acc[j] > out[j] {
					out[j] = p.Acc[j]
				}
			case OpFirst:
				out[j] = p.Acc[j]
			}
		}
	}
	if total == 0 {
		for j := range out {
			out[j] = 0
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Per-worker pipeline assembly
// ---------------------------------------------------------------------

// worker holds one worker's buffer arena and the gathered-column
// buffers of each pipeline. A non-nil hash overrides the probe-side
// hash function of every join table (the hybrid executor's Mix64
// standardization); nil keeps the engine default.
type worker struct {
	bufs   *vector.Buffers
	colBuf map[*pipeSpec]map[*catalog.Column][]uint64
	ones   []int64
	hash   plan.HashFn
}

// pipeOps assembles the operator tree of one pipeline for this worker.
func (w *worker) pipeOps(ps *pipeSpec, e *plan.Exec) plan.Operator {
	op, _ := w.pipeRoot(ps, e)
	return op
}

// pipeRoot is pipeOps also returning the root scan operator, so callers
// that retune the vector size mid-flight (micro-adaptive sizing) keep a
// handle on it.
func (w *worker) pipeRoot(ps *pipeSpec, e *plan.Exec) (plan.Operator, *plan.Scan) {
	scan := e.NewScan(ps.disp)
	var op plan.Operator = scan
	if preds := w.filterPreds(ps); len(preds) > 0 {
		op = plan.NewFilterChain(w.bufs, op, preds...)
	}
	bufs := map[*catalog.Column][]uint64{}
	w.colBuf[ps] = bufs
	var live [][]uint64
	for _, st := range ps.steps {
		spec := plan.ProbeSpec{HT: st.build.ht, Key: w.srcVecU64(ps, colSrc{base: st.probeKey}), Hash: w.hash}
		var added [][]uint64
		for _, g := range st.gathers {
			dst := w.bufs.Ref()
			bufs[g.col] = dst
			spec.GatherU64 = append(spec.GatherU64, plan.GatherU64{Word: g.word, Dst: dst})
			added = append(added, dst)
		}
		for _, lb := range live {
			spec.Carry = append(spec.Carry, plan.CarryU64(w.bufs, lb))
		}
		op = plan.NewHashProbe(w.bufs, op, spec)
		live = append(live, added...)
		for _, r := range st.residuals {
			av := w.u64Vec(ps, r[0])
			bv := w.u64Vec(ps, r[1])
			var carries []plan.Carry
			for _, lb := range live {
				carries = append(carries, plan.CarryU64(w.bufs, lb))
			}
			op = plan.NewMatch(w.bufs, op,
				func(b *plan.Batch, res []int32) int {
					return tw.SelEqCols(av(b), bv(b), b.K, res)
				}, carries...)
		}
	}
	return op, scan
}

// srcVecU64 builds a key/payload expression for a column source.
func (w *worker) srcVecU64(ps *pipeSpec, src colSrc) plan.VecU64 {
	if src.base == nil {
		buf := w.colBuf[ps][srcColOf(ps, src)]
		return plan.FromU64(buf)
	}
	c := src.base
	rel := ps.scan.Table.Rel
	switch c.Type.Kind {
	case catalog.Int32:
		return plan.KeyWiden(rel.Int32(c.Name))
	case catalog.Date:
		return plan.KeyWiden(rel.Date(c.Name))
	case catalog.Numeric:
		return plan.ColU64FromI64(rel.Numeric(c.Name))
	case catalog.Int64:
		return plan.ColU64FromI64(rel.Int64(c.Name))
	}
	panic("logical: column " + c.Name + " cannot be a key or payload")
}

// srcColOf finds the gathered column a derived source refers to.
func srcColOf(ps *pipeSpec, src colSrc) *catalog.Column {
	st := ps.steps[src.step]
	for _, g := range st.gathers {
		if g.word == src.word {
			return g.col
		}
	}
	panic("logical: dangling column source")
}

// u64Vec returns the source's uint64 vector for the current batch
// (derived buffers as-is, base columns materialized through the
// selection into a private buffer).
func (w *worker) u64Vec(ps *pipeSpec, src colSrc) func(b *plan.Batch) []uint64 {
	if src.base == nil {
		buf := w.colBuf[ps][srcColOf(ps, src)]
		return func(*plan.Batch) []uint64 { return buf }
	}
	expr := w.srcVecU64(ps, src)
	scratch := w.bufs.Ref()
	return func(b *plan.Batch) []uint64 { return expr(b, scratch) }
}

// groupKey builds the grouping-key expression: one key hashes directly,
// two pack lo|hi<<32 like the hand-written Q2.1 plan.
func (w *worker) groupKey(ps *pipeSpec, agg *Aggregate) plan.VecU64 {
	if len(agg.Keys) == 1 {
		return w.srcVecU64(ps, ps.resolve(agg.Keys[0]))
	}
	lo := w.u64Vec(ps, ps.resolve(agg.Keys[0]))
	hi := w.u64Vec(ps, ps.resolve(agg.Keys[1]))
	return func(b *plan.Batch, scratch []uint64) []uint64 {
		tw.MapPackU64LoHi(lo(b), hi(b), b.K, scratch)
		return scratch
	}
}

// aggInput compiles one aggregate slot's input vector.
func (w *worker) aggInput(ps *pipeSpec, s AggSpec) plan.VecI64 {
	if s.Op == OpCount && s.Arg == nil { // COUNT(*)
		return w.onesVec()
	}
	if s.Op == OpCount { // COUNT(expr): no NULLs, every row counts
		return w.onesVec()
	}
	v := w.vecI64(ps, s.Arg)
	return func(b *plan.Batch, _ []int64) []int64 { return v(b) }
}

func (w *worker) onesVec() plan.VecI64 {
	if w.ones == nil {
		w.ones = w.bufs.I64()
		for i := range w.ones {
			w.ones[i] = 1
		}
	}
	ones := w.ones
	return func(b *plan.Batch, _ []int64) []int64 { return ones }
}

// GlobalPartial is one worker's share of a global aggregate: the
// accumulator per aggregate slot plus the worker's input row count (so
// MergeGlobal can zero the output when no row qualified anywhere).
type GlobalPartial struct {
	Acc []int64
	N   int64
}

// globalAggSink reduces the final pipeline to per-worker accumulators —
// the generic form of the hand plans' SumSink, so global SUM keeps the
// identical fused multiply-sum hot loop.
type globalAggSink struct {
	specs []AggSpec
	vals  []vec64
	acc   []int64
	n     int64
	out   *GlobalPartial
}

func newGlobalAggSink(w *worker, ps *pipeSpec, agg *Aggregate, out *GlobalPartial) *globalAggSink {
	s := &globalAggSink{specs: agg.Aggs, out: out, acc: make([]int64, len(agg.Aggs))}
	s.vals = make([]vec64, len(agg.Aggs))
	for i, spec := range agg.Aggs {
		switch spec.Op {
		case OpMin:
			s.acc[i] = math.MaxInt64
		case OpMax:
			s.acc[i] = math.MinInt64
		}
		if spec.Op != OpCount {
			s.vals[i] = w.vecI64(ps, spec.Arg)
		}
	}
	return s
}

// Consume implements plan.Sink.
func (s *globalAggSink) Consume(b *plan.Batch) {
	s.n += int64(b.K)
	for j, spec := range s.specs {
		switch spec.Op {
		case OpCount:
			s.acc[j] += int64(b.K)
		case OpSum:
			s.acc[j] += tw.SumI64(s.vals[j](b), b.K)
		case OpMin:
			v := s.vals[j](b)
			for i := 0; i < b.K; i++ {
				if v[i] < s.acc[j] {
					s.acc[j] = v[i]
				}
			}
		case OpMax:
			v := s.vals[j](b)
			for i := 0; i < b.K; i++ {
				if v[i] > s.acc[j] {
					s.acc[j] = v[i]
				}
			}
		}
	}
}

// Finish implements plan.Sink.
func (s *globalAggSink) Finish(bar *exec.Barrier, wid int) {
	*s.out = GlobalPartial{Acc: s.acc, N: s.n}
	bar.Wait(nil)
}

// collectSink materializes projection rows per worker — or, when
// stream is set, flushes them at chunk granularity as each vector is
// consumed (the truly incremental streaming path).
type collectSink struct {
	exprs  []vec64
	out    *[][]int64
	stream *StreamBuf
}

// Consume implements plan.Sink.
func (s *collectSink) Consume(b *plan.Batch) {
	vecs := make([][]int64, len(s.exprs))
	for j, e := range s.exprs {
		vecs[j] = e(b)
	}
	for i := 0; i < b.K; i++ {
		row := make([]int64, len(vecs))
		for j := range vecs {
			row[j] = vecs[j][i]
		}
		if s.stream != nil {
			s.stream.Add(row)
		} else {
			*s.out = append(*s.out, row)
		}
	}
}

// Finish implements plan.Sink.
func (s *collectSink) Finish(bar *exec.Barrier, wid int) { bar.Wait(nil) }
