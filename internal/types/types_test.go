package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMakeNumeric(t *testing.T) {
	cases := []struct {
		whole, cents int64
		want         string
	}{
		{0, 0, "0.00"},
		{1, 5, "1.05"},
		{12, 34, "12.34"},
		{-3, 7, "-3.07"},
		{104949, 50, "104949.50"},
	}
	for _, c := range cases {
		got := MakeNumeric(c.whole, c.cents).String()
		if got != c.want {
			t.Errorf("MakeNumeric(%d,%d) = %s, want %s", c.whole, c.cents, got, c.want)
		}
	}
}

func TestNumericFromFloatRounds(t *testing.T) {
	if NumericFromFloat(1.005) != 101 && NumericFromFloat(1.005) != 100 {
		// 1.005 is not exactly representable; accept either neighbor but
		// check the general rounding contract below.
		t.Errorf("NumericFromFloat(1.005) = %d", NumericFromFloat(1.005))
	}
	if got := NumericFromFloat(2.675); got != 267 && got != 268 {
		t.Errorf("NumericFromFloat(2.675) = %d", got)
	}
	if got := NumericFromFloat(-1.25); got != -125 {
		t.Errorf("NumericFromFloat(-1.25) = %d, want -125", got)
	}
	if got := NumericFromFloat(19.98); got != 1998 {
		t.Errorf("NumericFromFloat(19.98) = %d, want 1998", got)
	}
}

func TestNumericMul(t *testing.T) {
	a := MakeNumeric(10, 0) // 10.00
	b := MakeNumeric(0, 7)  // 0.07
	if got := a.Mul(b); got != MakeNumeric(0, 70) {
		t.Errorf("10.00*0.07 = %s, want 0.70", got)
	}
	// Mul4 keeps scale 4.
	if got := a.Mul4(b); got != 10*100*7 {
		t.Errorf("Mul4 = %d, want %d", got, 10*100*7)
	}
}

func TestNumericFloatRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		n := Numeric(v)
		return NumericFromFloat(n.Float()) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateAgainstTimePackage(t *testing.T) {
	// Cross-check our civil conversion against the standard library for
	// every day in the TPC-H range plus edges.
	start := time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)
	for day := -1000; day < 12000; day += 1 {
		tm := start.AddDate(0, 0, day)
		d := MakeDate(tm.Year(), int(tm.Month()), tm.Day())
		if int(d) != day {
			t.Fatalf("MakeDate(%v) = %d, want %d", tm, d, day)
		}
		y, m, dd := d.Civil()
		if y != tm.Year() || m != int(tm.Month()) || dd != tm.Day() {
			t.Fatalf("Civil(%d) = %d-%d-%d, want %v", day, y, m, dd, tm)
		}
	}
}

func TestParseDate(t *testing.T) {
	cases := map[string]Date{
		"1970-01-01": 0,
		"1992-01-01": MakeDate(1992, 1, 1),
		"1998-09-02": MakeDate(1998, 9, 2),
		"1995-03-15": MakeDate(1995, 3, 15),
	}
	for s, want := range cases {
		if got := ParseDate(s); got != want {
			t.Errorf("ParseDate(%s) = %d, want %d", s, got, want)
		}
		if got := ParseDate(s).String(); got != s {
			t.Errorf("ParseDate(%s).String() = %s", s, got)
		}
	}
}

func TestParseDatePanicsOnGarbage(t *testing.T) {
	for _, s := range []string{"", "1995/03/15", "19950315", "1995-3-15", "abcd-ef-gh"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParseDate(%q) did not panic", s)
				}
			}()
			ParseDate(s)
		}()
	}
}

func TestDateYear(t *testing.T) {
	for y := 1992; y <= 1998; y++ {
		for _, md := range [][2]int{{1, 1}, {2, 28}, {6, 15}, {12, 31}} {
			d := MakeDate(y, md[0], md[1])
			if d.Year() != y {
				t.Errorf("Year(%04d-%02d-%02d) = %d", y, md[0], md[1], d.Year())
			}
		}
	}
	// Leap day.
	if MakeDate(1996, 2, 29).Year() != 1996 {
		t.Error("leap day year")
	}
}

func TestDateOrderingProperty(t *testing.T) {
	f := func(a, b int16) bool {
		da, db := Date(a), Date(b)
		return (da < db) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddDays(t *testing.T) {
	d := ParseDate("1998-12-01")
	if got := d.AddDays(-90).String(); got != "1998-09-02" {
		t.Errorf("1998-12-01 - 90 days = %s, want 1998-09-02", got)
	}
}
