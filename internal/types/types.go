// Package types provides the scalar value types shared by both query
// engines: fixed-point decimals (Numeric) and calendar dates (Date).
//
// Following HyPer (and the paper's test systems, §3), monetary and
// percentage values are stored as 64-bit scaled integers rather than
// floats, so both engines execute identical integer arithmetic and
// produce exact, comparable aggregates.
package types

import (
	"fmt"
)

// Numeric is a fixed-point decimal stored as an int64 scaled by 10^scale.
// The scale is tracked by the code using the value (TPC-H columns use
// scale 2); it is not stored in the value itself, exactly like the
// generated code in a compiled engine would treat decimals.
type Numeric int64

// NumericScale is the scale used by all TPC-H decimal columns (2 digits).
const NumericScale = 100

// MakeNumeric builds a scale-2 Numeric from whole and hundredth parts.
// MakeNumeric(12, 34) == 12.34.
func MakeNumeric(whole, cents int64) Numeric {
	if whole < 0 {
		return Numeric(whole*NumericScale - cents)
	}
	return Numeric(whole*NumericScale + cents)
}

// NumericFromFloat converts a float to a scale-2 Numeric, rounding to the
// nearest cent. Only used at data-generation and display boundaries.
func NumericFromFloat(f float64) Numeric {
	if f < 0 {
		return Numeric(f*NumericScale - 0.5)
	}
	return Numeric(f*NumericScale + 0.5)
}

// Float returns the floating point value of a scale-2 Numeric.
func (n Numeric) Float() float64 { return float64(n) / NumericScale }

// String formats a scale-2 Numeric as d.dd.
func (n Numeric) String() string {
	v := int64(n)
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%02d", sign, v/NumericScale, v%NumericScale)
}

// Mul multiplies two scale-2 Numerics producing a scale-2 result
// (truncating the extra two digits, as integer codegen would emit).
func (n Numeric) Mul(m Numeric) Numeric {
	return Numeric(int64(n) * int64(m) / NumericScale)
}

// Mul4 multiplies two scale-2 Numerics producing a scale-4 result without
// rescaling. Q1 uses this for extprice*(1-disc)*(1+tax) style chains where
// the final aggregate keeps a higher scale.
func (n Numeric) Mul4(m Numeric) int64 { return int64(n) * int64(m) }

// Date is a calendar date stored as the number of days since 1970-01-01.
// Comparisons and range filters are plain integer comparisons.
type Date int32

const (
	secondsPerDay = 86400
	// unixEpochDay0 anchors day arithmetic; civil conversion below is
	// proleptic-Gregorian and exact for the TPC-H date range (1992-1998).
	daysPerEra = 146097 // days in 400 years
)

// civilToDays converts a Gregorian calendar date to days since 1970-01-01.
// Algorithm: Howard Hinnant's days_from_civil (public domain formulation).
func civilToDays(y, m, d int) int {
	if m <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mAdj int
	if m > 2 {
		mAdj = m - 3
	} else {
		mAdj = m + 9
	}
	doy := (153*mAdj+2)/5 + d - 1          // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*daysPerEra + doe - 719468   // 719468 = days from 0000-03-01 to 1970-01-01
}

// daysToCivil converts days since 1970-01-01 back to (year, month, day).
func daysToCivil(z int) (y, m, d int) {
	z += 719468
	var era int
	if z >= 0 {
		era = z / daysPerEra
	} else {
		era = (z - daysPerEra + 1) / daysPerEra
	}
	doe := z - era*daysPerEra                              // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = doy - (153*mp+2)/5 + 1               // [1, 31]
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return y, m, d
}

// MakeDate builds a Date from a Gregorian year, month (1-12), day (1-31).
func MakeDate(year, month, day int) Date {
	return Date(civilToDays(year, month, day))
}

// ParseDate parses a "YYYY-MM-DD" string. It panics on malformed input;
// it is only used with literal constants in query definitions.
func ParseDate(s string) Date {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		panic("types: malformed date literal " + s)
	}
	num := func(sub string) int {
		n := 0
		for i := 0; i < len(sub); i++ {
			c := sub[i]
			if c < '0' || c > '9' {
				panic("types: malformed date literal " + s)
			}
			n = n*10 + int(c-'0')
		}
		return n
	}
	return MakeDate(num(s[0:4]), num(s[5:7]), num(s[8:10]))
}

// Year returns the Gregorian year of the date. Q9 groups by it.
func (d Date) Year() int {
	y, _, _ := daysToCivil(int(d))
	return y
}

// Civil returns the Gregorian (year, month, day) of the date.
func (d Date) Civil() (year, month, day int) { return daysToCivil(int(d)) }

// String formats the date as YYYY-MM-DD.
func (d Date) String() string {
	y, m, dd := daysToCivil(int(d))
	return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
}

// AddDays returns the date n days later.
func (d Date) AddDays(n int) Date { return d + Date(n) }
