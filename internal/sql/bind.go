package sql

import (
	"strconv"
	"strings"

	"paradigms/internal/catalog"
)

// Bind resolves every name in the statement against the catalog and
// type-checks every expression, annotating the AST in place (column
// pointers, literal values scaled to their context, result types).
// After a successful Bind the statement is fully typed: the planner
// never revisits names or types.
func Bind(sel *Select, cat *catalog.Catalog) error {
	b := &binder{cat: cat, sel: sel}
	return b.bind()
}

// value classes seen by the type checker.
type vclass int

const (
	vNum  vclass = iota // int32/int64/numeric/date — Type carries detail
	vBool               // predicate
	vStr                // string
)

type vtype struct {
	cls vclass
	t   catalog.Type
}

type binder struct {
	cat    *catalog.Catalog
	sel    *Select
	tables []*catalog.Table
}

func (b *binder) bind() error {
	// FROM tables.
	seen := map[string]bool{}
	for i := range b.sel.From {
		ref := &b.sel.From[i]
		t := b.cat.Table(ref.Name)
		if t == nil {
			return Errf(ref.P, "unknown table %q (known: %s)", ref.Name, strings.Join(b.cat.Tables(), ", "))
		}
		if seen[ref.Name] {
			return Errf(ref.P, "table %q appears twice in FROM (self-joins are not supported)", ref.Name)
		}
		seen[ref.Name] = true
		ref.Table = t
		b.tables = append(b.tables, t)
	}

	// SELECT * expands to every column of every FROM table.
	if b.sel.Star {
		for _, t := range b.tables {
			for _, c := range t.Columns() {
				b.sel.Items = append(b.sel.Items, SelectItem{
					Expr: &ColRef{Name: c.Name, Col: c},
				})
			}
		}
	}

	// WHERE: boolean, no aggregates.
	if b.sel.Where != nil {
		vt, err := b.expr(&b.sel.Where, false)
		if err != nil {
			return err
		}
		if vt.cls != vBool {
			return Errf(b.sel.Where.Pos(), "WHERE clause must be a predicate")
		}
	}

	// GROUP BY: plain columns.
	for i := range b.sel.GroupBy {
		if _, err := b.expr(&b.sel.GroupBy[i], false); err != nil {
			return err
		}
		if _, ok := b.sel.GroupBy[i].(*ColRef); !ok {
			return Errf(b.sel.GroupBy[i].Pos(), "GROUP BY supports plain columns only")
		}
	}

	// SELECT items: values only — a predicate as an output column has
	// no vectorized value form (and would otherwise surface as an
	// executor panic on a worker goroutine).
	hasAgg := false
	for i := range b.sel.Items {
		vt, err := b.expr(&b.sel.Items[i].Expr, true)
		if err != nil {
			return err
		}
		if vt.cls == vBool {
			return Errf(b.sel.Items[i].Expr.Pos(), "select item %s is a predicate, not a value", String(b.sel.Items[i].Expr))
		}
		if containsAgg(b.sel.Items[i].Expr) {
			hasAgg = true
		}
	}
	b.sel.Grouped = hasAgg || len(b.sel.GroupBy) > 0

	if b.sel.Grouped {
		for i := range b.sel.Items {
			e := b.sel.Items[i].Expr
			if _, isAgg := e.(*Agg); isAgg {
				continue
			}
			if b.matchesGroupCol(e) {
				continue
			}
			return Errf(e.Pos(), "%s must be a GROUP BY column or an aggregate", String(e))
		}
	}

	// HAVING: grouped queries only; boolean over group cols/aggregates.
	if b.sel.Having != nil {
		if !b.sel.Grouped {
			return Errf(b.sel.Having.Pos(), "HAVING requires GROUP BY or aggregates")
		}
		vt, err := b.expr(&b.sel.Having, true)
		if err != nil {
			return err
		}
		if vt.cls != vBool {
			return Errf(b.sel.Having.Pos(), "HAVING clause must be a predicate")
		}
	}

	// ORDER BY: alias, 1-based ordinal, or expression.
	for i := range b.sel.OrderBy {
		o := &b.sel.OrderBy[i]
		if ref, ok := o.Expr.(*ColRef); ok && ref.Table == "" {
			if idx := b.aliasIndex(ref.Name); idx >= 0 {
				o.Item = idx
				continue
			}
		}
		if lit, ok := o.Expr.(*NumLit); ok && !strings.ContainsRune(lit.Text, '.') {
			n := 0
			for _, c := range lit.Text {
				n = n*10 + int(c-'0')
			}
			if n < 1 || n > len(b.sel.Items) {
				return Errf(lit.P, "ORDER BY position %d is out of range (1..%d)", n, len(b.sel.Items))
			}
			o.Item = n - 1
			continue
		}
		if _, err := b.expr(&o.Expr, true); err != nil {
			return err
		}
	}

	// Every `?` must have picked up a type from some comparison or
	// arithmetic context by now; an uninferable parameter (e.g. `select
	// ?`) has no execution representation.
	for _, prm := range b.sel.Params {
		if !prm.Typed {
			return Errf(prm.P, "cannot infer the type of parameter ?%d (compare or combine it with a column)", prm.Idx+1)
		}
	}
	return nil
}

// aliasIndex returns the select-item index with the given alias, or -1.
func (b *binder) aliasIndex(name string) int {
	for i, it := range b.sel.Items {
		if it.Alias == name {
			return i
		}
	}
	return -1
}

// matchesGroupCol reports whether e structurally equals a GROUP BY
// expression.
func (b *binder) matchesGroupCol(e Expr) bool {
	for _, g := range b.sel.GroupBy {
		if Equal(e, g) {
			return true
		}
	}
	return false
}

// containsAgg reports whether the expression contains an aggregate call.
func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *Agg:
		return true
	case *Binary:
		return containsAgg(x.L) || containsAgg(x.R)
	case *Not:
		return containsAgg(x.X)
	case *Between:
		return containsAgg(x.X) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case *InList:
		if containsAgg(x.X) {
			return true
		}
		for _, l := range x.List {
			if containsAgg(l) {
				return true
			}
		}
	}
	return false
}

// expr binds and type-checks *ep in place (the pointer allows literal
// rewrites, e.g. a string literal compared to a date column becoming a
// DateLit).
func (b *binder) expr(ep *Expr, allowAgg bool) (vtype, error) {
	switch x := (*ep).(type) {
	case *ColRef:
		if x.Col == nil {
			if err := b.resolve(x); err != nil {
				return vtype{}, err
			}
		}
		switch x.Col.Type.Kind {
		case catalog.String:
			return vtype{cls: vStr}, nil
		case catalog.Byte:
			return vtype{}, Errf(x.P, "column %q has unsupported type byte", x.Name)
		}
		return vtype{cls: vNum, t: x.Col.Type}, nil

	case *NumLit:
		// Intrinsic type: scale = number of fraction digits; context
		// (comparisons, arithmetic) rescales via coerce.
		if x.Typ.Kind == 0 && x.Val == 0 && x.Text != "" {
			val, scale, ok := parseNum(x.Text)
			if !ok {
				return vtype{}, Errf(x.P, "bad numeric literal %q", x.Text)
			}
			x.Val = val
			if scale > 0 {
				x.Typ = catalog.Type{Kind: catalog.Numeric, Scale: scale}
			} else {
				x.Typ = catalog.Type{Kind: catalog.Int64}
			}
		}
		return vtype{cls: vNum, t: x.Typ}, nil

	case *StrLit:
		return vtype{cls: vStr}, nil

	case *DateLit:
		return vtype{cls: vNum, t: catalog.Type{Kind: catalog.Date}}, nil

	case *Param:
		// Untyped until some context coerces it (the zero Type is
		// meaningless then; unify and coerce special-case the node).
		return vtype{cls: vNum, t: x.Typ}, nil

	case *Binary:
		return b.binary(ep, x, allowAgg)

	case *Not:
		vt, err := b.expr(&x.X, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		if vt.cls != vBool {
			return vtype{}, Errf(x.P, "NOT requires a predicate operand")
		}
		return vtype{cls: vBool}, nil

	case *Between:
		vt, err := b.expr(&x.X, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		if vt.cls != vNum {
			return vtype{}, Errf(x.P, "BETWEEN requires a numeric or date operand")
		}
		if p := untypedParam(x.X); p != nil {
			return vtype{}, Errf(p.P, "a parameter cannot be the tested operand of BETWEEN")
		}
		for _, p := range []*Expr{&x.Lo, &x.Hi} {
			if _, err := b.expr(p, false); err != nil {
				return vtype{}, err
			}
			if err := b.coerce(p, vt.t); err != nil {
				return vtype{}, err
			}
		}
		return vtype{cls: vBool}, nil

	case *InList:
		vt, err := b.expr(&x.X, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		if p := untypedParam(x.X); p != nil {
			return vtype{}, Errf(p.P, "a parameter cannot be the tested operand of IN")
		}
		for i := range x.List {
			lv, err := b.expr(&x.List[i], false)
			if err != nil {
				return vtype{}, err
			}
			switch vt.cls {
			case vNum:
				if err := b.coerce(&x.List[i], vt.t); err != nil {
					return vtype{}, err
				}
			case vStr:
				if lv.cls != vStr {
					return vtype{}, Errf(x.List[i].Pos(), "IN list value %s is not a string", String(x.List[i]))
				}
				if _, isLit := x.List[i].(*StrLit); !isLit {
					return vtype{}, Errf(x.List[i].Pos(), "IN list values must be literals")
				}
			default:
				return vtype{}, Errf(x.P, "IN requires a column or value operand")
			}
		}
		return vtype{cls: vBool}, nil

	case *Agg:
		if !allowAgg {
			return vtype{}, Errf(x.P, "aggregate %s is not allowed here", x.Fn)
		}
		if x.Star {
			x.Typ = catalog.Type{Kind: catalog.Int64}
			return vtype{cls: vNum, t: x.Typ}, nil
		}
		if containsAgg(x.Arg) {
			return vtype{}, Errf(x.Arg.Pos(), "nested aggregates are not allowed")
		}
		vt, err := b.expr(&x.Arg, false)
		if err != nil {
			return vtype{}, err
		}
		if vt.cls != vNum {
			return vtype{}, Errf(x.Arg.Pos(), "cannot aggregate %s: %s is not numeric", x.Fn, String(x.Arg))
		}
		switch x.Fn {
		case AggCount:
			x.Typ = catalog.Type{Kind: catalog.Int64}
		case AggSum:
			if vt.t.Kind == catalog.Date {
				return vtype{}, Errf(x.Arg.Pos(), "cannot sum a date expression")
			}
			x.Typ = vt.t
			if x.Typ.Kind == catalog.Int32 {
				x.Typ.Kind = catalog.Int64
			}
		default: // min/max keep the argument type (dates included)
			x.Typ = vt.t
		}
		return vtype{cls: vNum, t: x.Typ}, nil
	}
	return vtype{}, Errf((*ep).Pos(), "unsupported expression")
}

// binary type-checks comparisons, connectives, and arithmetic.
func (b *binder) binary(ep *Expr, x *Binary, allowAgg bool) (vtype, error) {
	switch x.Op {
	case OpAnd, OpOr:
		for _, p := range []*Expr{&x.L, &x.R} {
			vt, err := b.expr(p, allowAgg)
			if err != nil {
				return vtype{}, err
			}
			if vt.cls != vBool {
				return vtype{}, Errf((*p).Pos(), "%s operand %s is not a predicate", x.Op, String(*p))
			}
		}
		return vtype{cls: vBool}, nil

	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		lv, err := b.expr(&x.L, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		rv, err := b.expr(&x.R, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		switch {
		case lv.cls == vStr || rv.cls == vStr:
			// A string literal against a date column is a date literal.
			if lv.cls == vNum && lv.t.Kind == catalog.Date {
				if err := b.coerce(&x.R, lv.t); err != nil {
					return vtype{}, err
				}
				return vtype{cls: vBool}, nil
			}
			if rv.cls == vNum && rv.t.Kind == catalog.Date {
				if err := b.coerce(&x.L, rv.t); err != nil {
					return vtype{}, err
				}
				return vtype{cls: vBool}, nil
			}
			if lv.cls != vStr || rv.cls != vStr {
				return vtype{}, Errf(x.P, "cannot compare %s with %s", String(x.L), String(x.R))
			}
			if x.Op != OpEq && x.Op != OpNe {
				return vtype{}, Errf(x.P, "only = and <> are supported for strings")
			}
			return vtype{cls: vBool}, nil
		case lv.cls == vBool || rv.cls == vBool:
			return vtype{}, Errf(x.P, "cannot compare predicates")
		default:
			if err := b.unify(&x.L, &x.R, lv.t, rv.t, x.P, "compare"); err != nil {
				return vtype{}, err
			}
			return vtype{cls: vBool}, nil
		}

	case OpAdd, OpSub, OpMul:
		lv, err := b.expr(&x.L, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		rv, err := b.expr(&x.R, allowAgg)
		if err != nil {
			return vtype{}, err
		}
		// An untyped parameter adopts the other operand's type (addition
		// and subtraction also reach this via unify below; multiplication
		// has no unify call, so infer here for all three).
		if p := untypedParam(x.L); p != nil {
			if untypedParam(x.R) != nil {
				return vtype{}, Errf(x.P, "cannot infer parameter types: both sides of %s are parameters", x.Op)
			}
			if rv.cls != vNum {
				return vtype{}, Errf(p.P, "parameters must be numeric or date values")
			}
			if err := b.coerce(&x.L, rv.t); err != nil {
				return vtype{}, err
			}
			lv = vtype{cls: vNum, t: rv.t}
		} else if p := untypedParam(x.R); p != nil {
			if lv.cls != vNum {
				return vtype{}, Errf(p.P, "parameters must be numeric or date values")
			}
			if err := b.coerce(&x.R, lv.t); err != nil {
				return vtype{}, err
			}
			rv = vtype{cls: vNum, t: lv.t}
		}
		// Literal arithmetic folds immediately so the result can later
		// coerce to a column's scale as one literal (20 + 4 compared to
		// l_quantity becomes 2400 raw).
		if ll, lok := x.L.(*NumLit); lok {
			if rl, rok := x.R.(*NumLit); rok {
				if folded, ok := foldLits(x.Op, ll, rl, x.P); ok {
					*ep = folded
					return vtype{cls: vNum, t: folded.Typ}, nil
				}
			}
		}
		for _, side := range []struct {
			v vtype
			e Expr
		}{{lv, x.L}, {rv, x.R}} {
			if side.v.cls != vNum {
				return vtype{}, Errf(side.e.Pos(), "cannot apply %s to %s", x.Op, String(side.e))
			}
			if side.v.t.Kind == catalog.Date {
				return vtype{}, Errf(side.e.Pos(), "cannot apply %s to date expression %s", x.Op, String(side.e))
			}
		}
		if x.Op == OpMul {
			// Multiplication sums decimal scales (2 × 2 → 4), exactly
			// like the engines' fixed-point revenue expressions.
			x.Typ = catalog.Type{Kind: resultKind(lv.t.Kind, rv.t.Kind), Scale: lv.t.Scale + rv.t.Scale}
			return vtype{cls: vNum, t: x.Typ}, nil
		}
		if err := b.unify(&x.L, &x.R, lv.t, rv.t, x.P, x.Op.String()); err != nil {
			return vtype{}, err
		}
		t := TypeOf(x.L)
		x.Typ = catalog.Type{Kind: resultKind(t.Kind, TypeOf(x.R).Kind), Scale: t.Scale}
		return vtype{cls: vNum, t: x.Typ}, nil

	case OpDiv:
		return vtype{}, Errf(x.P, "division is not supported")
	}
	return vtype{}, Errf(x.P, "unsupported operator")
}

// foldLits combines two bound numeric literals, aligning scales for
// addition/subtraction and summing them for multiplication.
func foldLits(op BinOp, l, r *NumLit, pos Pos) (*NumLit, bool) {
	ls, rs := litScale(l), litScale(r)
	lv, rv := l.Val, r.Val
	var v int64
	scale := ls
	switch op {
	case OpMul:
		v = lv * rv
		scale = ls + rs
	case OpAdd, OpSub:
		for ls < rs {
			lv *= 10
			ls++
		}
		for rs < ls {
			rv *= 10
			rs++
		}
		scale = ls
		if op == OpAdd {
			v = lv + rv
		} else {
			v = lv - rv
		}
	default:
		return nil, false
	}
	typ := catalog.Type{Kind: catalog.Int64}
	if scale > 0 {
		typ = catalog.Type{Kind: catalog.Numeric, Scale: scale}
	}
	return &NumLit{P: pos, Text: strconv.FormatInt(v, 10), Val: v, Typ: typ}, true
}

func litScale(l *NumLit) int {
	if l.Typ.Kind == catalog.Numeric {
		return l.Typ.Scale
	}
	return 0
}

func resultKind(a, c catalog.Kind) catalog.Kind {
	if a == catalog.Numeric || c == catalog.Numeric {
		return catalog.Numeric
	}
	return catalog.Int64
}

// untypedParam returns the expression as a not-yet-typed parameter
// placeholder, or nil.
func untypedParam(e Expr) *Param {
	if p, ok := e.(*Param); ok && !p.Typed {
		return p
	}
	return nil
}

// unify makes two numeric operands directly comparable/combinable,
// rescaling literal sides where needed. An untyped parameter adopts the
// other operand's type, before literal handling so that `? = 0.05`
// types the parameter from the literal rather than the reverse.
func (b *binder) unify(lp, rp *Expr, lt, rt catalog.Type, pos Pos, what string) error {
	if untypedParam(*lp) != nil {
		if untypedParam(*rp) != nil {
			return Errf(pos, "cannot infer parameter types: both sides of %s are parameters", what)
		}
		return b.coerce(lp, rt)
	}
	if untypedParam(*rp) != nil {
		return b.coerce(rp, lt)
	}
	if _, ok := (*lp).(*NumLit); ok {
		return b.coerce(lp, rt)
	}
	if _, ok := (*rp).(*NumLit); ok {
		return b.coerce(rp, lt)
	}
	if !compatible(lt, rt) {
		return Errf(pos, "cannot %s %s (%s) with %s (%s)",
			what, String(*lp), describeType(lt), String(*rp), describeType(rt))
	}
	return nil
}

// compatible reports whether two non-literal numeric types can be
// compared or combined without conversion.
func compatible(a, c catalog.Type) bool {
	if a.Kind == catalog.Date || c.Kind == catalog.Date {
		return a.Kind == c.Kind
	}
	if a.Kind == catalog.Numeric || c.Kind == catalog.Numeric {
		return a.Scale == c.Scale
	}
	return true // int32/int64 mix freely
}

func describeType(t catalog.Type) string {
	if t.Kind == catalog.Numeric {
		return "numeric scale " + string(rune('0'+t.Scale))
	}
	return t.Kind.String()
}

// coerce adjusts a literal to a target column type: numeric literals are
// rescaled to the column's raw units; string literals against date
// columns become date literals. Non-literals fall back to compatibility
// checking.
func (b *binder) coerce(ep *Expr, target catalog.Type) error {
	switch lit := (*ep).(type) {
	case *NumLit:
		if target.Kind == catalog.Date {
			return Errf(lit.P, "cannot use number %s as a date (write date 'YYYY-MM-DD')", lit.Text)
		}
		have := lit.Typ.Scale
		if lit.Typ.Kind != catalog.Numeric {
			have = 0
		}
		want := 0
		if target.Kind == catalog.Numeric {
			want = target.Scale
		}
		if have > want {
			return Errf(lit.P, "literal %s has more decimal digits than %s allows", lit.Text, describeType(target))
		}
		for i := have; i < want; i++ {
			lit.Val *= 10
		}
		// An out-of-range literal against a 32-bit column would wrap in
		// the typed selection primitives and invert the comparison.
		if target.Kind == catalog.Int32 && (lit.Val > 1<<31-1 || lit.Val < -(1<<31)) {
			return Errf(lit.P, "literal %s is out of range for 32-bit column comparison", lit.Text)
		}
		lit.Typ = target
		return nil
	case *StrLit:
		if target.Kind != catalog.Date {
			return Errf(lit.P, "cannot compare string '%s' with %s", lit.Val, describeType(target))
		}
		days, ok := parseDate(lit.Val)
		if !ok {
			return Errf(lit.P, "bad date literal '%s' (want 'YYYY-MM-DD')", lit.Val)
		}
		*ep = &DateLit{P: lit.P, Text: lit.Val, Days: days}
		return nil
	case *Param:
		if target.Kind == catalog.String || target.Kind == catalog.Byte {
			return Errf(lit.P, "parameters must be numeric or date values, not %s", target.Kind)
		}
		if lit.Typed && !compatible(lit.Typ, target) {
			return Errf(lit.P, "parameter ?%d is used with conflicting types (%s vs %s)",
				lit.Idx+1, describeType(lit.Typ), describeType(target))
		}
		if !lit.Typed {
			lit.Typ, lit.Typed = target, true
		}
		return nil
	default:
		vt, err := b.expr(ep, false)
		if err != nil {
			return err
		}
		if vt.cls != vNum || !compatible(vt.t, target) {
			return Errf((*ep).Pos(), "cannot use %s as %s", String(*ep), describeType(target))
		}
		return nil
	}
}

// resolve binds a column reference against the FROM tables.
func (b *binder) resolve(ref *ColRef) error {
	if ref.Table != "" {
		for _, t := range b.tables {
			if t.Name == ref.Table {
				c := t.Column(ref.Name)
				if c == nil {
					return Errf(ref.P, "unknown column %q in table %q", ref.Name, ref.Table)
				}
				ref.Col = c
				return nil
			}
		}
		return Errf(ref.P, "table %q is not in the FROM clause", ref.Table)
	}
	matches := catalog.Resolve(b.tables, ref.Name)
	switch len(matches) {
	case 0:
		return Errf(ref.P, "unknown column %q", ref.Name)
	case 1:
		ref.Col = matches[0]
		return nil
	default:
		names := make([]string, len(matches))
		for i, m := range matches {
			names[i] = m.Table.Name
		}
		return Errf(ref.P, "ambiguous column %q (in tables %s)", ref.Name, strings.Join(names, ", "))
	}
}

// ParseDatum parses an argument text into the raw 64-bit value of a
// parameter slot of the given type — the text↔value bridge of the
// prepared-statement surfaces (sqlsh \execute arguments, the serve
// prepared workload, the service's Execute API). Date slots accept
// YYYY-MM-DD (bare, quoted, or with a leading `date` keyword); numeric
// slots rescale decimal digits to the slot's scale exactly like literal
// coercion, so `0.05` against a scale-2 column becomes raw 5.
func ParseDatum(text string, t catalog.Type) (int64, error) {
	s := strings.TrimSpace(text)
	pos := Pos{Line: 1, Col: 1}
	if t.Kind == catalog.Date {
		if len(s) >= 4 && strings.EqualFold(s[:4], "date") {
			s = strings.TrimSpace(s[4:])
		}
		s = strings.Trim(s, "'")
		days, ok := parseDate(s)
		if !ok {
			return 0, Errf(pos, "bad date argument %q (want YYYY-MM-DD)", text)
		}
		return int64(days), nil
	}
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	val, scale, ok := parseNum(s)
	if !ok {
		return 0, Errf(pos, "bad numeric argument %q", text)
	}
	want := 0
	if t.Kind == catalog.Numeric {
		want = t.Scale
	}
	if scale > want {
		return 0, Errf(pos, "argument %q has more decimal digits than %s allows", text, describeType(t))
	}
	for i := scale; i < want; i++ {
		val *= 10
	}
	if neg {
		val = -val
	}
	if t.Kind == catalog.Int32 && (val > 1<<31-1 || val < -(1<<31)) {
		return 0, Errf(pos, "argument %q is out of range for a 32-bit parameter", text)
	}
	return val, nil
}

// parseNum parses an integer or decimal literal into (digits-as-int,
// fraction length).
func parseNum(s string) (val int64, scale int, ok bool) {
	seenDot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			if seenDot {
				return 0, 0, false
			}
			seenDot = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, 0, false
		}
		if val > (1<<62)/10 {
			return 0, 0, false // overflow guard
		}
		val = val*10 + int64(c-'0')
		if seenDot {
			scale++
		}
	}
	return val, scale, len(s) > 0
}
