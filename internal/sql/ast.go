// Package sql is the front door of the ad-hoc query subsystem — an
// extension beyond the paper's fixed query catalog: a hand-written lexer
// and recursive-descent parser for a SELECT subset (projections,
// SUM/COUNT/MIN/MAX aggregates, arithmetic, WHERE with AND / comparisons
// / BETWEEN / IN, multi-table equi-joins via WHERE or JOIN...ON,
// GROUP BY, HAVING, ORDER BY, LIMIT) producing a typed AST, plus a
// binder that resolves names against an internal/catalog schema and
// type-checks every expression. Every diagnostic names the offending
// token with its line/column position. The logical planner
// (internal/logical) consumes the bound AST and lowers it onto the
// vectorized operator layer.
package sql

import (
	"strings"

	"paradigms/internal/catalog"
)

// Expr is a parsed (and, after Bind, typed) expression.
type Expr interface {
	Pos() Pos
	exprNode()
}

// ColRef is a column reference, optionally table-qualified. Bind
// resolves Col.
type ColRef struct {
	P     Pos
	Table string // "" if unqualified
	Name  string
	Col   *catalog.Column
}

// NumLit is a numeric literal. The binder fixes Val and Typ from
// context: compared or combined with a scale-s numeric column, the
// literal is scaled to raw units (0.05 at scale 2 → 5; 24 at scale 2 →
// 2400), so execution is pure integer arithmetic.
type NumLit struct {
	P    Pos
	Text string
	Val  int64
	Typ  catalog.Type
}

// StrLit is a string literal.
type StrLit struct {
	P   Pos
	Val string
}

// DateLit is a date literal (DATE 'YYYY-MM-DD'); Days is days since
// 1970-01-01, the engines' physical date representation.
type DateLit struct {
	P    Pos
	Text string
	Days int32
}

// Param is a `?` parameter placeholder of a prepared statement, the
// Idx-th in order of appearance (0-based). Parameters are numeric- or
// date-valued: Bind fixes Typ from the comparison/arithmetic context
// exactly like literal coercion (a parameter compared to a scale-2
// column expects raw scaled values), and sets Typed. The value itself
// arrives at execution time — logical.(*Plan).BindArgs substitutes each
// placeholder with a literal of the bound value, so one optimized plan
// serves every binding.
type Param struct {
	P     Pos
	Idx   int
	Typ   catalog.Type
	Typed bool
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "and", "or"}

func (op BinOp) String() string { return binOpNames[op] }

// Binary is a binary expression. Typ is set by Bind for arithmetic ops.
type Binary struct {
	P    Pos
	Op   BinOp
	L, R Expr
	Typ  catalog.Type
}

// Not is logical negation.
type Not struct {
	P Pos
	X Expr
}

// Between is x [NOT] BETWEEN lo AND hi (inclusive).
type Between struct {
	P      Pos
	X      Expr
	Lo, Hi Expr
	Negate bool
}

// InList is x [NOT] IN (literal, ...).
type InList struct {
	P      Pos
	X      Expr
	List   []Expr
	Negate bool
}

// AggFn enumerates the aggregate functions.
type AggFn int

// Aggregate functions.
const (
	AggSum AggFn = iota
	AggCount
	AggMin
	AggMax
)

var aggNames = [...]string{"sum", "count", "min", "max"}

func (f AggFn) String() string { return aggNames[f] }

// Agg is an aggregate call: SUM/MIN/MAX(expr), COUNT(expr), COUNT(*).
type Agg struct {
	P    Pos
	Fn   AggFn
	Star bool // COUNT(*)
	Arg  Expr // nil when Star
	Typ  catalog.Type
}

func (e *ColRef) Pos() Pos  { return e.P }
func (e *NumLit) Pos() Pos  { return e.P }
func (e *StrLit) Pos() Pos  { return e.P }
func (e *DateLit) Pos() Pos { return e.P }
func (e *Param) Pos() Pos   { return e.P }
func (e *Binary) Pos() Pos  { return e.P }
func (e *Not) Pos() Pos     { return e.P }
func (e *Between) Pos() Pos { return e.P }
func (e *InList) Pos() Pos  { return e.P }
func (e *Agg) Pos() Pos     { return e.P }

func (*ColRef) exprNode()  {}
func (*NumLit) exprNode()  {}
func (*StrLit) exprNode()  {}
func (*DateLit) exprNode() {}
func (*Param) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Not) exprNode()     {}
func (*Between) exprNode() {}
func (*InList) exprNode()  {}
func (*Agg) exprNode()     {}

// SelectItem is one projection of the SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // "" if none
}

// Name returns the output column name of the item.
func (it SelectItem) Name() string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColRef:
		return e.Name
	case *Agg:
		if e.Star {
			return "count"
		}
		return e.Fn.String()
	}
	return "expr"
}

// TableRef is one FROM (or JOIN) table. Bind resolves Table.
type TableRef struct {
	P     Pos
	Name  string
	Table *catalog.Table
}

// OrderItem is one ORDER BY key. The planner resolves Item to the index
// of the select item the key sorts by (by alias, ordinal, or structural
// match).
type OrderItem struct {
	Expr Expr
	Desc bool
	Item int
}

// Select is a parsed SELECT statement. JOIN...ON conjuncts are folded
// into Where at parse time, so the binder and planner see one predicate
// set regardless of join spelling.
type Select struct {
	Items   []SelectItem
	Star    bool // SELECT *
	From    []TableRef
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 = no limit

	// Params lists the statement's `?` placeholders in order of
	// appearance (Params[i].Idx == i); empty for ordinary statements.
	Params []*Param

	// Grouped is set by Bind: the query aggregates (GROUP BY present or
	// any aggregate in the SELECT list).
	Grouped bool
}

// TypeOf returns the bound type of an expression (zero Type for
// booleans and strings; callers that care about those inspect the node).
func TypeOf(e Expr) catalog.Type {
	switch x := e.(type) {
	case *ColRef:
		return x.Col.Type
	case *NumLit:
		return x.Typ
	case *DateLit:
		return catalog.Type{Kind: catalog.Date}
	case *Param:
		return x.Typ
	case *Binary:
		return x.Typ
	case *Agg:
		return x.Typ
	}
	return catalog.Type{}
}

// Equal reports structural equality of two bound expressions — the
// planner's tool for matching HAVING and ORDER BY expressions against
// SELECT items (e.g. ORDER BY sum(x) matches the item SELECT sum(x)).
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Col == y.Col
	case *NumLit:
		y, ok := b.(*NumLit)
		return ok && x.Val == y.Val && x.Typ == y.Typ
	case *StrLit:
		y, ok := b.(*StrLit)
		return ok && x.Val == y.Val
	case *DateLit:
		y, ok := b.(*DateLit)
		return ok && x.Days == y.Days
	case *Param:
		y, ok := b.(*Param)
		return ok && x.Idx == y.Idx
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.X, y.X)
	case *Between:
		y, ok := b.(*Between)
		return ok && x.Negate == y.Negate && Equal(x.X, y.X) && Equal(x.Lo, y.Lo) && Equal(x.Hi, y.Hi)
	case *InList:
		y, ok := b.(*InList)
		if !ok || x.Negate != y.Negate || len(x.List) != len(y.List) || !Equal(x.X, y.X) {
			return false
		}
		for i := range x.List {
			if !Equal(x.List[i], y.List[i]) {
				return false
			}
		}
		return true
	case *Agg:
		y, ok := b.(*Agg)
		if !ok || x.Fn != y.Fn || x.Star != y.Star {
			return false
		}
		return x.Star || Equal(x.Arg, y.Arg)
	}
	return false
}

// WalkCols visits every column reference in an expression (including
// aggregate arguments) — the shared requirement walker of the two
// lowering backends and the differential-test oracle.
func WalkCols(e Expr, fn func(*catalog.Column)) {
	switch x := e.(type) {
	case *ColRef:
		fn(x.Col)
	case *Binary:
		WalkCols(x.L, fn)
		WalkCols(x.R, fn)
	case *Not:
		WalkCols(x.X, fn)
	case *Between:
		WalkCols(x.X, fn)
		WalkCols(x.Lo, fn)
		WalkCols(x.Hi, fn)
	case *InList:
		WalkCols(x.X, fn)
		for _, l := range x.List {
			WalkCols(l, fn)
		}
	case *Agg:
		if x.Arg != nil {
			WalkCols(x.Arg, fn)
		}
	}
}

// HasParam reports whether the expression contains a `?` placeholder —
// the planner's test for predicates whose value is only known once
// arguments are bound.
func HasParam(e Expr) bool {
	switch x := e.(type) {
	case *Param:
		return true
	case *Binary:
		return HasParam(x.L) || HasParam(x.R)
	case *Not:
		return HasParam(x.X)
	case *Between:
		return HasParam(x.X) || HasParam(x.Lo) || HasParam(x.Hi)
	case *InList:
		if HasParam(x.X) {
			return true
		}
		for _, l := range x.List {
			if HasParam(l) {
				return true
			}
		}
	case *Agg:
		return x.Arg != nil && HasParam(x.Arg)
	}
	return false
}

// String renders an expression in SQL-ish form for plan displays and
// error messages.
func String(e Expr) string {
	var sb strings.Builder
	format(&sb, e)
	return sb.String()
}

func format(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColRef:
		sb.WriteString(x.Name)
	case *NumLit:
		sb.WriteString(x.Text)
	case *StrLit:
		sb.WriteString("'" + x.Val + "'")
	case *DateLit:
		sb.WriteString("date '" + x.Text + "'")
	case *Param:
		sb.WriteByte('?')
	case *Binary:
		sb.WriteByte('(')
		format(sb, x.L)
		sb.WriteString(" " + x.Op.String() + " ")
		format(sb, x.R)
		sb.WriteByte(')')
	case *Not:
		sb.WriteString("not ")
		format(sb, x.X)
	case *Between:
		format(sb, x.X)
		if x.Negate {
			sb.WriteString(" not")
		}
		sb.WriteString(" between ")
		format(sb, x.Lo)
		sb.WriteString(" and ")
		format(sb, x.Hi)
	case *InList:
		format(sb, x.X)
		if x.Negate {
			sb.WriteString(" not")
		}
		sb.WriteString(" in (")
		for i, l := range x.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			format(sb, l)
		}
		sb.WriteByte(')')
	case *Agg:
		sb.WriteString(x.Fn.String() + "(")
		if x.Star {
			sb.WriteByte('*')
		} else {
			format(sb, x.Arg)
		}
		sb.WriteByte(')')
	}
}
