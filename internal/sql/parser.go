package sql

import (
	"strconv"
	"strings"
)

// reserved lists the contextual keywords that cannot be used as a bare
// (AS-less) column alias or consumed as an identifier operand, so the
// grammar's clause boundaries stay unambiguous.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "and": true, "or": true,
	"not": true, "between": true, "in": true, "join": true, "on": true,
	"inner": true, "as": true, "asc": true, "desc": true,
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	i      int
	params []*Param // `?` placeholders in appearance order
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// accept consumes the current token if it matches the keyword/punct.
func (p *parser) accept(s string) bool {
	if p.cur().is(s) {
		p.i++
		return true
	}
	return false
}

// expect consumes a required keyword/punct or fails with a diagnostic.
func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return Errf(p.cur().pos, "expected %q, found %s", s, p.cur().describe())
}

// Parse parses one SELECT statement (with optional trailing semicolon).
func Parse(src string) (*Select, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.cur().kind != tokEOF {
		return nil, Errf(p.cur().pos, "unexpected %s after end of query", p.cur().describe())
	}
	sel.Params = p.params
	return sel, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expect("select"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}

	// Projection list.
	if p.accept("*") {
		sel.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if !p.accept(",") {
				break
			}
		}
	}

	if err := p.expect("from"); err != nil {
		return nil, err
	}
	var onConds []Expr
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, Errf(t.pos, "expected table name, found %s", t.describe())
		}
		p.next()
		sel.From = append(sel.From, TableRef{P: t.pos, Name: strings.ToLower(t.text)})
		if p.accept(",") {
			continue
		}
		if p.cur().is("inner") && p.toks[p.i+1].is("join") {
			p.next()
		}
		if p.accept("join") {
			t := p.cur()
			if t.kind != tokIdent {
				return nil, Errf(t.pos, "expected table name after JOIN, found %s", t.describe())
			}
			p.next()
			sel.From = append(sel.From, TableRef{P: t.pos, Name: strings.ToLower(t.text)})
			if err := p.expect("on"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			onConds = append(onConds, cond)
			if p.accept(",") {
				continue
			}
			for p.cur().is("join") || (p.cur().is("inner") && p.toks[p.i+1].is("join")) {
				if p.cur().is("inner") {
					p.next()
				}
				p.next()
				t := p.cur()
				if t.kind != tokIdent {
					return nil, Errf(t.pos, "expected table name after JOIN, found %s", t.describe())
				}
				p.next()
				sel.From = append(sel.From, TableRef{P: t.pos, Name: strings.ToLower(t.text)})
				if err := p.expect("on"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				onConds = append(onConds, cond)
			}
		}
		break
	}

	if p.accept("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	// Fold JOIN...ON conditions into the WHERE conjunction.
	for _, c := range onConds {
		if sel.Where == nil {
			sel.Where = c
		} else {
			sel.Where = &Binary{P: c.Pos(), Op: OpAnd, L: sel.Where, R: c}
		}
	}

	if p.accept("group") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}

	if p.accept("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}

	if p.accept("order") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e, Item: -1}
			if p.accept("desc") {
				item.Desc = true
			} else {
				p.accept("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}

	if p.accept("limit") {
		t := p.cur()
		if t.kind != tokNumber || strings.ContainsRune(t.text, '.') {
			return nil, Errf(t.pos, "expected integer after LIMIT, found %s", t.describe())
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, Errf(t.pos, "bad LIMIT value %q", t.text)
		}
		p.next()
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("as") {
		t := p.cur()
		if t.kind != tokIdent {
			return SelectItem{}, Errf(t.pos, "expected alias after AS, found %s", t.describe())
		}
		p.next()
		item.Alias = strings.ToLower(t.text)
	} else if t := p.cur(); t.kind == tokIdent && !reserved[strings.ToLower(t.text)] {
		p.next()
		item.Alias = strings.ToLower(t.text)
	}
	return item, nil
}

// parseExpr parses with standard precedence:
// OR < AND < NOT < comparison/BETWEEN/IN < +- < */ < unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().is("or") {
		pos := p.next().pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{P: pos, Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().is("and") {
		pos := p.next().pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{P: pos, Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.cur().is("not") {
		pos := p.next().pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{P: pos, X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		if op, ok := cmpOps[t.text]; ok {
			pos := p.next().pos
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{P: pos, Op: op, L: l, R: r}, nil
		}
	}
	negate := false
	pos := t.pos
	if t.is("not") && (p.toks[p.i+1].is("between") || p.toks[p.i+1].is("in")) {
		negate = true
		p.next()
	}
	switch {
	case p.accept("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{P: pos, X: l, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.accept("in"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &InList{P: pos, X: l, List: list, Negate: negate}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op BinOp
		switch {
		case t.is("+"):
			op = OpAdd
		case t.is("-"):
			op = OpSub
		default:
			return l, nil
		}
		pos := p.next().pos
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{P: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op BinOp
		switch {
		case t.is("*"):
			op = OpMul
		case t.is("/"):
			op = OpDiv
		default:
			return l, nil
		}
		pos := p.next().pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{P: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.cur(); t.is("-") {
		pos := p.next().pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Negation is 0 - x; the binder folds it for literals.
		return &Binary{P: pos, Op: OpSub, L: &NumLit{P: pos, Text: "0"}, R: x}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]AggFn{"sum": AggSum, "count": AggCount, "min": AggMin, "max": AggMax}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return &NumLit{P: t.pos, Text: t.text}, nil
	case tokString:
		p.next()
		return &StrLit{P: t.pos, Val: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "?" {
			p.next()
			prm := &Param{P: t.pos, Idx: len(p.params)}
			p.params = append(p.params, prm)
			return prm, nil
		}
	case tokIdent:
		low := strings.ToLower(t.text)
		// DATE 'YYYY-MM-DD' literal.
		if low == "date" && p.toks[p.i+1].kind == tokString {
			p.next()
			st := p.next()
			days, ok := parseDate(st.text)
			if !ok {
				return nil, Errf(st.pos, "bad date literal '%s' (want 'YYYY-MM-DD')", st.text)
			}
			return &DateLit{P: t.pos, Text: st.text, Days: days}, nil
		}
		// Aggregate call.
		if fn, ok := aggFns[low]; ok && p.toks[p.i+1].is("(") {
			p.next()
			p.next()
			if fn == AggCount && p.accept("*") {
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &Agg{P: t.pos, Fn: fn, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Agg{P: t.pos, Fn: fn, Arg: arg}, nil
		}
		if reserved[low] {
			return nil, Errf(t.pos, "unexpected keyword %s", t.describe())
		}
		p.next()
		ref := &ColRef{P: t.pos, Name: low}
		if p.cur().is(".") && p.toks[p.i+1].kind == tokIdent {
			p.next()
			ct := p.next()
			ref.Table = low
			ref.Name = strings.ToLower(ct.text)
		}
		return ref, nil
	}
	return nil, Errf(t.pos, "expected expression, found %s", t.describe())
}

// parseDate validates and converts a 'YYYY-MM-DD' literal to days since
// 1970-01-01 without panicking on malformed input.
func parseDate(s string) (int32, bool) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, false
	}
	num := func(sub string) (int, bool) {
		n := 0
		for i := 0; i < len(sub); i++ {
			c := sub[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	y, ok1 := num(s[0:4])
	m, ok2 := num(s[5:7])
	d, ok3 := num(s[8:10])
	if !ok1 || !ok2 || !ok3 || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, false
	}
	return civilToDays(y, m, d), true
}

// civilToDays mirrors types.MakeDate (Howard Hinnant's days_from_civil)
// so date literals land in the engines' physical representation.
func civilToDays(y, m, d int) int32 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 {
		era = (y - 399) / 400
	}
	yoe := y - era*400
	mAdj := m + 9
	if m > 2 {
		mAdj = m - 3
	}
	doy := (153*mAdj+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int32(era*146097 + doe - 719468)
}

// Tables parses the query just enough to report the FROM table names —
// the service's database-routing hook for ad-hoc SQL.
func Tables(src string) ([]string, error) {
	sel, err := Parse(src)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(sel.From))
	for i, t := range sel.From {
		names[i] = t.Name
	}
	return names, nil
}

// IsQuery reports whether the text looks like ad-hoc SQL rather than a
// registered query name — the dispatch hook of the facade and service.
func IsQuery(text string) bool {
	t := strings.TrimSpace(text)
	if len(t) < 6 || !strings.EqualFold(t[:6], "select") {
		return false
	}
	return len(t) == 6 || !isIdentPart(t[6])
}
