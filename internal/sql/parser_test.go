package sql

import (
	"strings"
	"sync"
	"testing"

	"paradigms/internal/catalog"
	"paradigms/internal/tpch"
)

var (
	catOnce sync.Once
	testCat *catalog.Catalog
)

func tpchCat() *catalog.Catalog {
	catOnce.Do(func() { testCat = catalog.FromDatabase(tpch.Generate(0.001, 0)) })
	return testCat
}

func mustParse(t *testing.T, text string) *Select {
	t.Helper()
	sel, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return sel
}

func mustBind(t *testing.T, text string) *Select {
	t.Helper()
	sel := mustParse(t, text)
	if err := Bind(sel, tpchCat()); err != nil {
		t.Fatalf("bind %q: %v", text, err)
	}
	return sel
}

func TestParseClauses(t *testing.T) {
	sel := mustParse(t, `
		select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
		from customer, orders, lineitem
		where c_custkey = o_custkey and l_orderkey = o_orderkey
		group by l_orderkey
		having sum(l_extendedprice) > 5
		order by revenue desc, l_orderkey asc
		limit 10;`)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "revenue" {
		t.Errorf("items = %+v", sel.Items)
	}
	if len(sel.From) != 3 || sel.From[2].Name != "lineitem" {
		t.Errorf("from = %+v", sel.From)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("missing where/group/having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseJoinOnFoldsIntoWhere(t *testing.T) {
	a := mustParse(t, `select o_orderkey from orders join customer on c_custkey = o_custkey where o_orderkey > 5`)
	b := mustParse(t, `select o_orderkey from orders, customer where o_orderkey > 5 and c_custkey = o_custkey`)
	if String(a.Where) != String(b.Where) {
		t.Errorf("JOIN..ON where = %s, comma where = %s", String(a.Where), String(b.Where))
	}
	c := mustParse(t, `select o_orderkey from orders inner join customer on c_custkey = o_custkey join nation on n_nationkey = c_nationkey`)
	if len(c.From) != 3 {
		t.Errorf("chained joins from = %+v", c.From)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, `select 1 from lineitem where l_quantity < 1 + 2 * 3 and l_tax = 0 or l_discount = 1`)
	// or(and(<, =), =)
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %s", String(sel.Where))
	}
	and, ok := or.L.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("left of or = %s", String(or.L))
	}
	lt := and.L.(*Binary)
	add := lt.R.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("rhs of < = %s", String(lt.R))
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != OpMul {
		t.Errorf("precedence broken: %s", String(add))
	}
}

func TestParseDateAndStrings(t *testing.T) {
	sel := mustParse(t, `select 1 from lineitem where l_shipdate >= date '1994-01-01' and l_shipdate < '1995-01-01'`)
	and := sel.Where.(*Binary)
	ge := and.L.(*Binary)
	if _, ok := ge.R.(*DateLit); !ok {
		t.Errorf("date literal parsed as %T", ge.R)
	}
	// Bare string against a date column coerces at bind time.
	if err := Bind(sel, tpchCat()); err != nil {
		t.Fatalf("bind: %v", err)
	}
	lt := sel.Where.(*Binary).R.(*Binary)
	if _, ok := lt.R.(*DateLit); !ok {
		t.Errorf("string literal not coerced to date, still %T", lt.R)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ text, want string }{
		{`select`, "expected expression"},
		{`select 1`, `expected "from"`},
		{`select 1 from`, "expected table name"},
		{`select 1 from lineitem where`, "expected expression"},
		{`select 1 from lineitem limit x`, "expected integer after LIMIT"},
		{`select 1 from lineitem; select 2`, "unexpected"},
		{`select 'oops from lineitem`, "unterminated string"},
		{`select date '19940101' from lineitem`, "bad date literal"},
		{`select 1 from lineitem where l_tax ~ 3`, "unexpected character"},
	} {
		_, err := Parse(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", tc.text, err, tc.want)
		}
	}
}

func TestBindLiteralScaling(t *testing.T) {
	sel := mustBind(t, `select sum(l_extendedprice) from lineitem where l_quantity < 24 and l_discount between 0.05 and 0.07`)
	and := sel.Where.(*Binary)
	lt := and.L.(*Binary)
	if lit := lt.R.(*NumLit); lit.Val != 2400 {
		t.Errorf("quantity literal scaled to %d, want 2400", lit.Val)
	}
	bt := and.R.(*Between)
	if lo := bt.Lo.(*NumLit); lo.Val != 5 {
		t.Errorf("discount low bound = %d, want 5", lo.Val)
	}
}

func TestBindAggregateRules(t *testing.T) {
	for _, tc := range []struct{ text, want string }{
		{`select l_orderkey, sum(l_quantity) from lineitem`, "must be a GROUP BY column"},
		{`select sum(sum(l_quantity)) from lineitem`, "nested aggregates"},
		{`select 1 from lineitem where sum(l_quantity) > 5`, "not allowed here"},
		{`select l_orderkey from lineitem having l_orderkey > 5`, "HAVING requires"},
		{`select count(*) from lineitem order by 3`, "out of range"},
	} {
		sel, err := Parse(tc.text)
		if err == nil {
			err = Bind(sel, tpchCat())
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("bind(%q) err = %v, want containing %q", tc.text, err, tc.want)
		}
	}
}

func TestTablesAndIsQuery(t *testing.T) {
	tabs, err := Tables(`select 1 from lineitem, orders`)
	if err != nil || len(tabs) != 2 || tabs[0] != "lineitem" {
		t.Errorf("Tables = %v, %v", tabs, err)
	}
	if !IsQuery("  SELECT 1 from x") || !IsQuery("select * from orders") {
		t.Error("IsQuery rejects SQL texts")
	}
	if IsQuery("Q1") || IsQuery("selector") || IsQuery("sel") {
		t.Error("IsQuery accepts non-SQL names")
	}
}
