package sql

import (
	"strings"
	"testing"

	"paradigms/internal/catalog"
)

// TestParamParsing: `?` placeholders parse into ordinal Param nodes
// collected on the statement.
func TestParamParsing(t *testing.T) {
	sel := mustParse(t, "select l_orderkey from lineitem where l_quantity < ? and l_discount between ? and ?")
	if len(sel.Params) != 3 {
		t.Fatalf("collected %d params, want 3", len(sel.Params))
	}
	for i, p := range sel.Params {
		if p.Idx != i {
			t.Errorf("param %d has Idx %d", i, p.Idx)
		}
		if p.Typed {
			t.Errorf("param %d typed before Bind", i)
		}
	}
	if String(sel.Where) == "" || !strings.Contains(String(sel.Where), "?") {
		t.Errorf("String lost the placeholder: %s", String(sel.Where))
	}
}

// TestParamTyping: the binder types each slot from its context like a
// coerced literal — column comparisons adopt the column's type and
// scale, literal comparisons the literal's intrinsic type.
func TestParamTyping(t *testing.T) {
	cases := []struct {
		sql  string
		want []catalog.Type
	}{
		{"select count(*) from lineitem where l_quantity < ?",
			[]catalog.Type{{Kind: catalog.Numeric, Scale: 2}}},
		{"select count(*) from lineitem where l_discount between ? and ?",
			[]catalog.Type{{Kind: catalog.Numeric, Scale: 2}, {Kind: catalog.Numeric, Scale: 2}}},
		{"select count(*) from lineitem where l_shipdate >= ?",
			[]catalog.Type{{Kind: catalog.Date}}},
		{"select count(*) from orders where o_custkey in (?, ?)",
			[]catalog.Type{{Kind: catalog.Int32}, {Kind: catalog.Int32}}},
		{"select count(*) from lineitem where ? = 5",
			[]catalog.Type{{Kind: catalog.Int64}}},
		{"select sum(l_extendedprice * ?) from lineitem",
			[]catalog.Type{{Kind: catalog.Numeric, Scale: 2}}},
	}
	for _, c := range cases {
		sel := mustBind(t, c.sql)
		if len(sel.Params) != len(c.want) {
			t.Errorf("%s: %d params, want %d", c.sql, len(sel.Params), len(c.want))
			continue
		}
		for i, p := range sel.Params {
			if !p.Typed {
				t.Errorf("%s: param %d untyped after Bind", c.sql, i)
			}
			if p.Typ != c.want[i] {
				t.Errorf("%s: param %d typed %+v, want %+v", c.sql, i, p.Typ, c.want[i])
			}
		}
	}
}

// TestParamTypingErrors: slots no context can type, and type-conflict
// shapes, are bind errors with positioned diagnostics.
func TestParamTypingErrors(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"select ? from lineitem", "cannot infer the type of parameter ?1"},
		{"select count(*) from lineitem where ? = ?", "both sides"},
		{"select count(*) from lineitem where ? between 1 and 2", "tested operand of BETWEEN"},
		{"select count(*) from lineitem where ? in (1, 2)", "tested operand of IN"},
		{"select count(*) from customer where c_mktsegment = ?", "cannot compare"},
		{"select sum(?) from lineitem", "cannot infer the type of parameter ?1"},
	}
	for _, c := range cases {
		sel, err := Parse(c.sql)
		if err == nil {
			err = Bind(sel, tpchCat())
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.sql, err, c.want)
		}
	}
}

// TestParseDatum: argument texts convert to raw values per slot type
// with literal-coercion scaling rules.
func TestParseDatum(t *testing.T) {
	num2 := catalog.Type{Kind: catalog.Numeric, Scale: 2}
	ok := []struct {
		text string
		t    catalog.Type
		want int64
	}{
		{"0.05", num2, 5},
		{"24", num2, 2400},
		{"-1.50", num2, -150},
		{"42", catalog.Type{Kind: catalog.Int64}, 42},
		{"7", catalog.Type{Kind: catalog.Int32}, 7},
		{"1994-01-01", catalog.Type{Kind: catalog.Date}, 8766},
		{"'1994-01-01'", catalog.Type{Kind: catalog.Date}, 8766},
		{"date '1994-01-01'", catalog.Type{Kind: catalog.Date}, 8766},
	}
	for _, c := range ok {
		got, err := ParseDatum(c.text, c.t)
		if err != nil || got != c.want {
			t.Errorf("ParseDatum(%q, %+v) = %d, %v; want %d", c.text, c.t, got, err, c.want)
		}
	}
	bad := []struct {
		text string
		t    catalog.Type
	}{
		{"0.055", num2}, // too many fraction digits
		{"abc", catalog.Type{Kind: catalog.Int64}}, // not a number
		{"1994-13-01", catalog.Type{Kind: catalog.Date}},
		{"9999999999", catalog.Type{Kind: catalog.Int32}}, // 32-bit overflow
	}
	for _, c := range bad {
		if _, err := ParseDatum(c.text, c.t); err == nil {
			t.Errorf("ParseDatum(%q, %+v) accepted bad input", c.text, c.t)
		}
	}
}

// TestParamEqualAndWalk: Equal matches placeholders by ordinal and
// HasParam sees through every composite node.
func TestParamEqualAndWalk(t *testing.T) {
	a := &Param{Idx: 0}
	b := &Param{Idx: 0}
	c := &Param{Idx: 1}
	if !Equal(a, b) || Equal(a, c) {
		t.Error("Param Equal must compare by ordinal")
	}
	sel := mustParse(t, "select l_orderkey from lineitem where not (l_quantity in (?, 3))")
	if !HasParam(sel.Where) {
		t.Error("HasParam missed a placeholder under NOT/IN")
	}
	plain := mustParse(t, "select l_orderkey from lineitem where l_quantity < 3")
	if HasParam(plain.Where) {
		t.Error("HasParam false positive")
	}
}
