package sql

import (
	"fmt"
	"strings"
)

// Pos is a 1-based source position of a token in the query text.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end diagnostic: every parse, bind, and plan error
// names the offending token and its line/column position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Errf builds a positioned diagnostic.
func Errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tokKind classifies a lexical token.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // integer or decimal literal, e.g. 24 or 0.05
	tokString // single-quoted string literal (quotes stripped)
	tokPunct  // one of ( ) , ; . * / + - = ? <> != < <= > >=
)

// token is one lexical token. Text preserves the source spelling except
// for strings, where it is the unquoted value.
type token struct {
	kind tokKind
	text string
	pos  Pos
}

// is reports whether the token is the given keyword (case-insensitive)
// or punctuation. SQL keywords are contextual: the lexer emits them as
// identifiers and the parser matches them where the grammar expects one,
// so schema names like SSB's "date" table stay usable.
func (t token) is(s string) bool {
	if t.kind != tokIdent && t.kind != tokPunct {
		return false
	}
	return strings.EqualFold(t.text, s)
}

// describe renders the token for diagnostics.
func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex scans the whole input into tokens (the parser uses lookahead, and
// query texts are tiny). It returns a positioned error on any byte it
// cannot start a token with.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '-' && i+1 < len(src) && src[i+1] == '-': // line comment
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case isIdentStart(c):
			start, p := i, Pos{line, col}
			for i < len(src) && isIdentPart(src[i]) {
				adv(1)
			}
			toks = append(toks, token{tokIdent, src[start:i], p})
		case c >= '0' && c <= '9':
			start, p := i, Pos{line, col}
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				adv(1)
			}
			if i+1 < len(src) && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				adv(1)
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					adv(1)
				}
			}
			toks = append(toks, token{tokNumber, src[start:i], p})
		case c == '\'':
			p := Pos{line, col}
			adv(1)
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // '' escape
						sb.WriteByte('\'')
						adv(2)
						continue
					}
					adv(1)
					closed = true
					break
				}
				sb.WriteByte(src[i])
				adv(1)
			}
			if !closed {
				return nil, Errf(p, "unterminated string literal")
			}
			toks = append(toks, token{tokString, sb.String(), p})
		case strings.IndexByte("(),;.*/+-=?", c) >= 0:
			toks = append(toks, token{tokPunct, src[i : i+1], Pos{line, col}})
			adv(1)
		case c == '<':
			p := Pos{line, col}
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				toks = append(toks, token{tokPunct, "<=", p})
				adv(2)
			case i+1 < len(src) && src[i+1] == '>':
				toks = append(toks, token{tokPunct, "<>", p})
				adv(2)
			default:
				toks = append(toks, token{tokPunct, "<", p})
				adv(1)
			}
		case c == '>':
			p := Pos{line, col}
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokPunct, ">=", p})
				adv(2)
			} else {
				toks = append(toks, token{tokPunct, ">", p})
				adv(1)
			}
		case c == '!':
			p := Pos{line, col}
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokPunct, "!=", p})
				adv(2)
			} else {
				return nil, Errf(p, "unexpected character %q", string(c))
			}
		default:
			return nil, Errf(Pos{line, col}, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", Pos{line, col}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
