package sql

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden error files")

// goldenCases are the diagnostics pinned by golden files: unknown
// column/table and type-mismatch messages must name the offending token
// with its line/column position, and must not drift silently.
var goldenCases = []struct{ name, query string }{
	{"unknown_table", "select x from nosuch"},
	{"unknown_column", "select nope from lineitem"},
	{"unknown_column_qualified", "select lineitem.nope\nfrom lineitem"},
	{"table_not_in_from", "select nation.n_name from region"},
	{"type_mismatch_date_number", "select count(*) from lineitem\nwhere l_shipdate > 5"},
	{"type_mismatch_string_number", "select count(*) from customer where c_mktsegment = 5"},
	{"type_mismatch_scale", "select count(*) from lineitem where l_discount = 0.055"},
	{"type_mismatch_string_order", "select count(*) from customer where c_mktsegment < 'Z'"},
	{"type_mismatch_date_arith", "select l_shipdate + 1 from lineitem"},
	{"bad_date", "select count(*) from lineitem where l_shipdate > date '94-1-1'"},
	{"keyword_expr", "select from lineitem"},
}

// TestGoldenErrors locks the front-end diagnostics to golden files
// (testdata/errors/*.golden; regenerate with go test -update).
func TestGoldenErrors(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := Parse(tc.query)
			if err == nil {
				err = Bind(sel, tpchCat())
			}
			if err == nil {
				t.Fatalf("query %q bound without error", tc.query)
			}
			got := err.Error()
			path := filepath.Join("testdata", "errors", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("missing golden file %s (run go test -update): %v", path, rerr)
			}
			want := strings.TrimRight(string(wantBytes), "\n")
			if got != want {
				t.Errorf("diagnostic drifted:\n got: %s\nwant: %s", got, want)
			}
			// Every diagnostic carries line:col and the offending token.
			if !strings.Contains(got, ":") {
				t.Errorf("diagnostic %q has no position", got)
			}
		})
	}
}
