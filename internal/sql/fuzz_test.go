package sql

import "testing"

// FuzzParse drives the whole front end (lex → parse → bind) with
// arbitrary input: malformed SQL must produce positioned errors, never
// a panic — a panic here would take down the query service's ad-hoc
// path. CI runs a short -fuzz smoke on every push.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select 1",
		"select * from lineitem",
		"select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date '1994-01-01' and l_discount between 0.05 and 0.07 and l_quantity < 24",
		"select l_orderkey, count(*) from lineitem group by l_orderkey having sum(l_quantity) > 300 order by 2 desc limit 10",
		"select a from b join c on a = b where x in (1, 2, 3) or not y = 'z' -- comment",
		"select min(o_orderdate) from orders where o_custkey <> -7",
		"select '''quoted''' from t",
		"select ((1 + 2) * 3) from lineitem order by 1 asc;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := tpchCat()
	f.Fuzz(func(t *testing.T, text string) {
		sel, err := Parse(text)
		if err != nil {
			return
		}
		_ = Bind(sel, cat) // must not panic either
	})
}
