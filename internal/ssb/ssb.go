// Package ssb generates deterministic Star Schema Benchmark data (§4.4 of
// the paper) in the columnar format of internal/storage.
//
// SSB denormalizes TPC-H into one fact table (lineorder) and four
// dimensions (date, customer, supplier, part). The paper runs Q1.1, Q2.1,
// Q3.1, and Q4.1, all dominated by hash joins of lineorder against
// filtered dimensions. Dimension attributes that the four queries filter
// or group on are stored as small integer codes (region, nation, mfgr,
// category, brand1) plus name heaps where output needs them; this keeps
// both engines' work identical while avoiding free-text columns no query
// touches (see DESIGN.md S7).
package ssb

import (
	"fmt"
	"runtime"

	"paradigms/internal/storage"
	"paradigms/internal/tpch"
	"paradigms/internal/types"
)

// Base cardinalities at scale factor 1 (SSB specification).
const (
	baseLineorder = 6_000_000
	baseCustomer  = 30_000
	baseSupplier  = 2_000
	basePart      = 200_000
)

// Region codes (index into tpch.Regions): 0=AFRICA 1=AMERICA 2=ASIA
// 3=EUROPE 4=MIDDLE EAST.
const (
	RegionAfrica = iota
	RegionAmerica
	RegionAsia
	RegionEurope
	RegionMiddleEast
)

var (
	dateLo = types.MakeDate(1992, 1, 1)
	dateHi = types.MakeDate(1998, 12, 31)
	// Order dates span dbgen's order interval.
	orderDateHi = types.MakeDate(1998, 8, 2)
)

const (
	seedLineorder = 0x55b0001
	seedCustomer  = 0x55b0002
	seedSupplier  = 0x55b0003
	seedPart      = 0x55b0004
)

func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds an SSB database at the given scale factor.
func Generate(sf float64, workers int) *storage.Database {
	if sf <= 0 {
		panic(fmt.Sprintf("ssb: invalid scale factor %v", sf))
	}
	db := storage.NewDatabase("ssb", sf)
	db.Add(genDate())
	db.Add(genCustomer(scaled(baseCustomer, sf)))
	db.Add(genSupplier(scaled(baseSupplier, sf)))
	nPart := partCount(sf)
	db.Add(genPart(nPart))
	db.Add(genLineorder(scaled(baseLineorder, sf), scaled(baseCustomer, sf),
		scaled(baseSupplier, sf), nPart, workers))
	return db
}

// partCount follows the SSB rule P = 200,000 × (1 + log2 SF) for SF ≥ 1
// and scales linearly below 1.
func partCount(sf float64) int {
	if sf >= 1 {
		n := 1
		for s := sf; s >= 2; s /= 2 {
			n++
		}
		return basePart * n
	}
	return scaled(basePart, sf)
}

func genDate() *storage.Relation {
	n := int(dateHi-dateLo) + 1
	keys := make([]types.Date, n)
	years := make([]int32, n)
	months := make([]int32, n)
	for i := 0; i < n; i++ {
		d := dateLo + types.Date(i)
		keys[i] = d
		y, m, _ := d.Civil()
		years[i] = int32(y)
		months[i] = int32(m)
	}
	rel := storage.NewRelation("date")
	rel.AddDate("d_datekey", keys)
	rel.AddInt32("d_year", years)
	rel.AddInt32("d_monthnum", months)
	return rel
}

func genCustomer(n int) *storage.Relation {
	keys := make([]int32, n)
	nations := make([]int32, n)
	regions := make([]int32, n)
	for i := 0; i < n; i++ {
		r := rng(seedCustomer, uint64(i+1))
		keys[i] = int32(i + 1)
		nat := int32(r % uint64(len(tpch.Nations)))
		nations[i] = nat
		regions[i] = tpch.Nations[nat].Region
	}
	rel := storage.NewRelation("customer")
	rel.AddInt32("c_custkey", keys)
	rel.AddInt32("c_nation", nations)
	rel.AddInt32("c_region", regions)
	return rel
}

func genSupplier(n int) *storage.Relation {
	keys := make([]int32, n)
	nations := make([]int32, n)
	regions := make([]int32, n)
	for i := 0; i < n; i++ {
		r := rng(seedSupplier, uint64(i+1))
		keys[i] = int32(i + 1)
		nat := int32(r % uint64(len(tpch.Nations)))
		nations[i] = nat
		regions[i] = tpch.Nations[nat].Region
	}
	rel := storage.NewRelation("supplier")
	rel.AddInt32("s_suppkey", keys)
	rel.AddInt32("s_nation", nations)
	rel.AddInt32("s_region", regions)
	return rel
}

func genPart(n int) *storage.Relation {
	keys := make([]int32, n)
	mfgrs := make([]int32, n)
	categories := make([]int32, n)
	brands := make([]int32, n)
	for i := 0; i < n; i++ {
		r := rng(seedPart, uint64(i+1))
		keys[i] = int32(i + 1)
		mfgr := int32(r%5) + 1                   // MFGR#1..5
		cat := mfgr*10 + int32((r>>8)%5) + 1     // MFGR#11..55
		brand := cat*100 + int32((r>>16)%40) + 1 // MFGR#1101..5540
		mfgrs[i] = mfgr
		categories[i] = cat
		brands[i] = brand
	}
	rel := storage.NewRelation("part")
	rel.AddInt32("p_partkey", keys)
	rel.AddInt32("p_mfgr", mfgrs)
	rel.AddInt32("p_category", categories)
	rel.AddInt32("p_brand1", brands)
	return rel
}

func genLineorder(n, nCust, nSupp, nPart, workers int) *storage.Relation {
	orderdates := make([]types.Date, n)
	custkeys := make([]int32, n)
	partkeys := make([]int32, n)
	suppkeys := make([]int32, n)
	quantities := make([]types.Numeric, n)
	extprices := make([]types.Numeric, n)
	discounts := make([]types.Numeric, n)
	revenues := make([]types.Numeric, n)
	supplycosts := make([]types.Numeric, n)

	span := int(orderDateHi-dateLo) + 1
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st := rng(seedLineorder, uint64(i+1))
			next := func() uint64 { st = mix(st); return st }
			orderdates[i] = dateLo + types.Date(next()%uint64(span))
			custkeys[i] = int32(next()%uint64(nCust)) + 1
			pk := int(next()%uint64(nPart)) + 1
			partkeys[i] = int32(pk)
			suppkeys[i] = int32(next()%uint64(nSupp)) + 1
			qty := int64(next()%50) + 1
			quantities[i] = types.Numeric(qty * types.NumericScale)
			price := 90000 + (int64(pk)/10)%20001 + 100*(int64(pk)%1000)
			ext := qty * price
			extprices[i] = types.Numeric(ext)
			disc := int64(next() % 11)
			discounts[i] = types.Numeric(disc)
			revenues[i] = types.Numeric(ext * (100 - disc) / 100)
			supplycosts[i] = types.Numeric(6 * price / 10)
		}
	})

	rel := storage.NewRelation("lineorder")
	rel.AddDate("lo_orderdate", orderdates)
	rel.AddInt32("lo_custkey", custkeys)
	rel.AddInt32("lo_partkey", partkeys)
	rel.AddInt32("lo_suppkey", suppkeys)
	rel.AddNumeric("lo_quantity", quantities)
	rel.AddNumeric("lo_extendedprice", extprices)
	rel.AddNumeric("lo_discount", discounts)
	rel.AddNumeric("lo_revenue", revenues)
	rel.AddNumeric("lo_supplycost", supplycosts)
	return rel
}

// mix is splitmix64 (same generator as tpch's; duplicated to keep the
// packages independent of each other's unexported API).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func rng(seed, key uint64) uint64 { return mix(seed ^ mix(key)) }

func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < 4096 {
		fn(0, n)
		return
	}
	done := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(lo int) {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo < n {
				fn(lo, hi)
			}
			done <- struct{}{}
		}(w * chunk)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
