package ssb

import (
	"testing"

	"paradigms/internal/tpch"
	"paradigms/internal/types"
)

func TestCardinalities(t *testing.T) {
	db := Generate(0.01, 4)
	if got := db.Rel("customer").Rows(); got != 300 {
		t.Errorf("customer rows = %d", got)
	}
	if got := db.Rel("supplier").Rows(); got != 20 {
		t.Errorf("supplier rows = %d", got)
	}
	if got := db.Rel("part").Rows(); got != 2000 {
		t.Errorf("part rows = %d", got)
	}
	if got := db.Rel("lineorder").Rows(); got != 60000 {
		t.Errorf("lineorder rows = %d", got)
	}
	// Date dimension covers 1992-01-01..1998-12-31 = 2557 days.
	if got := db.Rel("date").Rows(); got != 2557 {
		t.Errorf("date rows = %d, want 2557", got)
	}
}

func TestPartCountLogScaling(t *testing.T) {
	cases := map[float64]int{
		0.5: 100000,
		1:   200000,
		2:   400000,
		4:   600000,
		8:   800000,
	}
	for sf, want := range cases {
		if got := partCount(sf); got != want {
			t.Errorf("partCount(%v) = %d, want %d", sf, got, want)
		}
	}
}

func TestDimensionCodes(t *testing.T) {
	db := Generate(0.01, 0)
	part := db.Rel("part")
	mfgr := part.Int32("p_mfgr")
	cat := part.Int32("p_category")
	brand := part.Int32("p_brand1")
	for i := 0; i < part.Rows(); i++ {
		if mfgr[i] < 1 || mfgr[i] > 5 {
			t.Fatalf("mfgr[%d]=%d", i, mfgr[i])
		}
		if cat[i]/10 != mfgr[i] || cat[i]%10 < 1 || cat[i]%10 > 5 {
			t.Fatalf("category[%d]=%d inconsistent with mfgr %d", i, cat[i], mfgr[i])
		}
		if brand[i]/100 != cat[i] || brand[i]%100 < 1 || brand[i]%100 > 40 {
			t.Fatalf("brand[%d]=%d inconsistent with category %d", i, brand[i], cat[i])
		}
	}
	for _, rel := range []string{"customer", "supplier"} {
		r := db.Rel(rel)
		prefix := rel[:1]
		nat := r.Int32(prefix + "_nation")
		reg := r.Int32(prefix + "_region")
		for i := 0; i < r.Rows(); i++ {
			if nat[i] < 0 || int(nat[i]) >= len(tpch.Nations) {
				t.Fatalf("%s nation[%d]=%d", rel, i, nat[i])
			}
			if reg[i] != tpch.Nations[nat[i]].Region {
				t.Fatalf("%s region[%d]=%d inconsistent with nation %d", rel, i, reg[i], nat[i])
			}
		}
	}
}

func TestRevenueConsistent(t *testing.T) {
	db := Generate(0.01, 0)
	lo := db.Rel("lineorder")
	ext := lo.Numeric("lo_extendedprice")
	disc := lo.Numeric("lo_discount")
	rev := lo.Numeric("lo_revenue")
	for i := 0; i < lo.Rows(); i++ {
		want := int64(ext[i]) * (100 - int64(disc[i])) / 100
		if int64(rev[i]) != want {
			t.Fatalf("revenue[%d] = %d, want %d", i, rev[i], want)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := Generate(0.01, 0)
	lo := db.Rel("lineorder")
	nCust := int32(db.Rel("customer").Rows())
	nSupp := int32(db.Rel("supplier").Rows())
	nPart := int32(db.Rel("part").Rows())
	dates := lo.Date("lo_orderdate")
	for i := 0; i < lo.Rows(); i++ {
		if ck := lo.Int32("lo_custkey")[i]; ck < 1 || ck > nCust {
			t.Fatalf("custkey[%d]=%d", i, ck)
		}
		if sk := lo.Int32("lo_suppkey")[i]; sk < 1 || sk > nSupp {
			t.Fatalf("suppkey[%d]=%d", i, sk)
		}
		if pk := lo.Int32("lo_partkey")[i]; pk < 1 || pk > nPart {
			t.Fatalf("partkey[%d]=%d", i, pk)
		}
		if dates[i] < dateLo || dates[i] > dateHi {
			t.Fatalf("orderdate[%d]=%v", i, dates[i])
		}
	}
}

func TestQ11SelectivityShape(t *testing.T) {
	// Q1.1: year=1993 (~1/7), discount 1..3 (3/11), quantity < 25 (24/50)
	// → ≈1.9% of lineorder.
	db := Generate(0.05, 0)
	lo := db.Rel("lineorder")
	dates := lo.Date("lo_orderdate")
	disc := lo.Numeric("lo_discount")
	qty := lo.Numeric("lo_quantity")
	y93lo, y93hi := types.MakeDate(1993, 1, 1), types.MakeDate(1994, 1, 1)
	matched := 0
	for i := 0; i < lo.Rows(); i++ {
		if dates[i] >= y93lo && dates[i] < y93hi && disc[i] >= 1 && disc[i] <= 3 && qty[i] < 25*types.NumericScale {
			matched++
		}
	}
	frac := float64(matched) / float64(lo.Rows())
	if frac < 0.012 || frac > 0.028 {
		t.Errorf("Q1.1 selectivity = %.4f, want ≈0.02", frac)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(0.01, 1)
	b := Generate(0.01, 8)
	la, lb := a.Rel("lineorder"), b.Rel("lineorder")
	ra, rb := la.Numeric("lo_revenue"), lb.Numeric("lo_revenue")
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("revenue[%d] differs across worker counts", i)
		}
	}
}

func TestGeneratePanicsOnBadSF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(-1, 1)
}
