package tw

import (
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
)

// Vectorized hash-join machinery, following Figure 2b of the paper: the
// probe side is processed with findCandidates / compare / advance
// primitives over candidate vectors; the build side is materialized with
// bulk-allocate + scatter primitives and published with the shared
// two-barrier protocol.

// FindCandidates looks up the directory for each of the n probe hashes
// and compacts the non-empty chain heads into cand, recording each
// candidate's originating probe position in candPos. The 16-bit Bloom
// tags filter definite misses here (§3.2).
func FindCandidates(ht *hashtable.Table, hashes []uint64, n int, cand []hashtable.Ref, candPos []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		ref := ht.Lookup(hashes[i])
		cand[k] = ref
		candPos[k] = int32(i)
		if ref != 0 {
			k++
		}
	}
	return k
}

// CheckKeysU64 compares each candidate entry's stored hash and 64-bit key
// (payload word 0) against the probe key at its position; hits are
// appended to (matchRefs, matchPos) starting at nm. Returns the new match
// count. Candidates remain for chain advancement regardless of hit, so
// multi-match joins find every duplicate.
func CheckKeysU64(ht *hashtable.Table, cand []hashtable.Ref, candPos []int32, nc int,
	keys, hashes []uint64, matchRefs []hashtable.Ref, matchPos []int32, nm int) int {
	for i := 0; i < nc; i++ {
		p := candPos[i]
		ref := cand[i]
		if ht.Hash(ref) == hashes[p] && ht.Word(ref, 0) == keys[p] {
			matchRefs[nm] = ref
			matchPos[nm] = p
			nm++
		}
	}
	return nm
}

// NextCandidates advances every candidate along its collision chain and
// compacts the survivors.
func NextCandidates(ht *hashtable.Table, cand []hashtable.Ref, candPos []int32, nc int) int {
	k := 0
	for i := 0; i < nc; i++ {
		ref := ht.Next(cand[i])
		cand[k] = ref
		candPos[k] = candPos[i]
		if ref != 0 {
			k++
		}
	}
	return k
}

// Probe runs the full candidate loop for one vector of n probe keys and
// returns the match count. It is the operator control logic of Figure 2b;
// all per-tuple work happens in the three primitives above.
func Probe(ht *hashtable.Table, keys, hashes []uint64, n int,
	cand []hashtable.Ref, candPos []int32,
	matchRefs []hashtable.Ref, matchPos []int32) int {
	nc := FindCandidates(ht, hashes, n, cand, candPos)
	nm := 0
	for nc > 0 {
		nm = CheckKeysU64(ht, cand, candPos, nc, keys, hashes, matchRefs, matchPos, nm)
		nc = NextCandidates(ht, cand, candPos, nc)
	}
	return nm
}

// ScatterHashes stores hashes into n freshly AllocN'd rows.
func ScatterHashes(ht *hashtable.Table, base hashtable.Ref, hashes []uint64, n int) {
	for i := 0; i < n; i++ {
		ht.SetHash(ht.RefAt(base, i), hashes[i])
	}
}

// ScatterWord stores vals into payload word w of n consecutive rows.
func ScatterWord(ht *hashtable.Table, base hashtable.Ref, w int, vals []uint64, n int) {
	for i := 0; i < n; i++ {
		ht.SetWord(ht.RefAt(base, i), w, vals[i])
	}
}

// ScatterWordI64 stores int64 vals into payload word w of n rows.
func ScatterWordI64(ht *hashtable.Table, base hashtable.Ref, w int, vals []int64, n int) {
	for i := 0; i < n; i++ {
		ht.SetWord(ht.RefAt(base, i), w, uint64(vals[i]))
	}
}

// BuildBarrier publishes a shared hash table after all workers have
// materialized their build rows: barrier → size directory → every worker
// inserts its shard → barrier.
func BuildBarrier(ht *hashtable.Table, bar *exec.Barrier, w int) {
	bar.Wait(func() { ht.Prepare(ht.Rows()) })
	ht.InsertShard(w)
	bar.Wait(nil)
}
