package tw

import (
	"context"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/types"
	"paradigms/internal/vector"
)

// Vectorized plans for the TPC-H subset. Each query function builds one
// operator pipeline per worker (private buffers, shared hash tables /
// dispatchers / barriers) and drives it vector-at-a-time.

func vecOrDefault(v int) int {
	if v <= 0 {
		return vector.DefaultSize
	}
	return v
}

// Q1Ctx executes TPC-H Q1 with the given worker count and vector size.
func Q1Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q1Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	cutoff := queries.Q1Cutoff

	disp := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum, hashtable.OpSum, hashtable.OpSum,
		hashtable.OpSum, hashtable.OpSum, hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q1Result, w)

	exec.Parallel(w, func(wid int) {
		scan := NewScan(disp, vec)
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		vQty := bufs.I64()
		vBase := bufs.I64()
		vDisc := bufs.I64()
		vCharge := bufs.I64()
		vDiscnt := bufs.I64()
		t100 := bufs.I64()
		tTax := bufs.I64()
		ones := bufs.I64()
		for i := range ones {
			ones[i] = 1
		}
		vals := [][]int64{vQty, vBase, vDisc, vCharge, vDiscnt, ones}
		gb := NewGroupBy(spill, wid, ops, vec)

		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			nSel := SelLE(ship[b:b+n], cutoff, sel)
			if nSel == 0 {
				continue
			}
			s := sel[:nSel]
			MapPack2x8Sel(rf[b:b+n], ls[b:b+n], s, keys)
			MapHashU64(keys[:nSel], hashes)
			FetchI64(qty[b:b+n], s, vQty)
			FetchI64(ext[b:b+n], s, vBase)
			MapRsubConstSel(disc[b:b+n], 100, s, t100)
			MapMul(vBase, t100, nSel, vDisc)
			FetchI64(tax[b:b+n], s, tTax)
			MapAddConst(tTax, 100, nSel, tTax)
			MapMul(vDisc, tTax, nSel, vCharge)
			FetchI64(disc[b:b+n], s, vDiscnt)
			gb.Consume(nSel, keys, hashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				results[wid] = append(results[wid], queries.Q1Row{
					ReturnFlag: byte(row[1] >> 8),
					LineStatus: byte(row[1]),
					SumQty:     int64(row[2]),
					SumBase:    int64(row[3]),
					SumDisc:    int64(row[4]),
					SumCharge:  int64(row[5]),
					SumDiscnt:  int64(row[6]),
					Count:      int64(row[7]),
				})
			})
		}
	})

	var out queries.Q1Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ1(out)
	return out
}

// Q6Ctx executes TPC-H Q6: a selection cascade followed by a fused
// multiply-sum over the survivors.
func Q6Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q6Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")

	disp := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	partial := make([]int64, w)
	exec.Parallel(w, func(wid int) {
		scan := NewScan(disp, vec)
		bufs := vector.NewBuffers(vec)
		sel1 := bufs.Sel()
		sel2 := bufs.Sel()
		prod := bufs.I64()
		var sum int64
		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			// Selection cascade: each predicate is one primitive; from the
			// second on, they consume a selection vector (§5.1).
			k := SelGE(ship[b:b+n], queries.Q6DateLo, sel1)
			k = SelLTSel(ship[b:b+n], queries.Q6DateHi, sel1[:k], sel2)
			k = SelGESel(disc[b:b+n], queries.Q6DiscLo, sel2[:k], sel1)
			k = SelLESel(disc[b:b+n], queries.Q6DiscHi, sel1[:k], sel2)
			k = SelLTSel(qty[b:b+n], queries.Q6Quantity, sel2[:k], sel1)
			if k == 0 {
				continue
			}
			MapMulColsSel(ext[b:b+n], disc[b:b+n], sel1[:k], prod)
			sum += SumI64(prod, k)
		}
		partial[wid] = sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return queries.Q6Result(total)
}

// Q3Ctx executes TPC-H Q3.
func Q3Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q3Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	oprio := ord.Int32("o_shippriority")
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	cutoff := queries.Q3Date

	htCust := hashtable.New(1, w)
	htOrd := hashtable.New(2, w)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum, hashtable.OpFirst}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	tops := make([]*queries.TopK[queries.Q3Row], w)

	exec.Parallel(w, func(wid int) {
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		absPos := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		keys2 := bufs.Ref()
		hashes2 := bufs.Ref()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		mRefs := make([]hashtable.Ref, vec)
		mPos := bufs.Sel()
		dp := bufs.Ref()
		e2 := bufs.I64()
		d2 := bufs.I64()
		rev := bufs.I64()
		dpI64 := bufs.I64()
		gkeys := bufs.Ref()
		ghashes := bufs.Ref()

		// Pipeline 1: customer σ(mktsegment) → materialize HT_cust rows.
		scanC := NewScan(dispCust, vec)
		shC := htCust.Shard(wid)
		for {
			n := scanC.Next()
			if n == 0 {
				break
			}
			b := scanC.Base
			k := SelEqString(seg, b, n, queries.Q3Segment, sel)
			if k == 0 {
				continue
			}
			MapWidenSel(ckeys[b:b+n], sel[:k], keys)
			MapHashU64(keys[:k], hashes)
			base := shC.AllocN(htCust, k)
			ScatterHashes(htCust, base, hashes, k)
			ScatterWord(htCust, base, 0, keys, k)
		}
		BuildBarrier(htCust, bar, wid)

		// Pipeline 2: orders σ(orderdate) ⋉ HT_cust → materialize HT_ord.
		scanO := NewScan(dispOrd, vec)
		shO := htOrd.Shard(wid)
		for {
			n := scanO.Next()
			if n == 0 {
				break
			}
			b := scanO.Base
			k := SelLT(odate[b:b+n], cutoff, sel)
			if k == 0 {
				continue
			}
			MapWidenSel(ocust[b:b+n], sel[:k], keys)
			MapHashU64(keys[:k], hashes)
			nm := Probe(htCust, keys, hashes, k, cand, candPos, mRefs, mPos)
			if nm == 0 {
				continue
			}
			ComposePos(sel, mPos[:nm], absPos)
			MapWidenSel(okeys[b:b+n], absPos[:nm], keys2)
			MapHashU64(keys2[:nm], hashes2)
			MapPack2x32Sel(odate[b:b+n], oprio[b:b+n], absPos[:nm], dp)
			base := shO.AllocN(htOrd, nm)
			ScatterHashes(htOrd, base, hashes2, nm)
			ScatterWord(htOrd, base, 0, keys2, nm)
			ScatterWord(htOrd, base, 1, dp, nm)
		}
		BuildBarrier(htOrd, bar, wid)

		// Pipeline 3: lineitem σ(shipdate) ⋈ HT_ord → Γ(orderkey).
		scanL := NewScan(dispLine, vec)
		gb := NewGroupBy(spill, wid, ops, vec)
		vals := [][]int64{rev, dpI64}
		for {
			n := scanL.Next()
			if n == 0 {
				break
			}
			b := scanL.Base
			k := SelGT(lship[b:b+n], cutoff, sel)
			if k == 0 {
				continue
			}
			MapWidenSel(lkeys[b:b+n], sel[:k], keys)
			MapHashU64(keys[:k], hashes)
			nm := Probe(htOrd, keys, hashes, k, cand, candPos, mRefs, mPos)
			if nm == 0 {
				continue
			}
			ComposePos(sel, mPos[:nm], absPos)
			FetchI64(lext[b:b+n], absPos[:nm], e2)
			MapRsubConstSel(ldisc[b:b+n], 100, absPos[:nm], d2)
			MapMul(e2, d2, nm, rev)
			GatherWordI64(htOrd, mRefs, 1, nm, dpI64)
			FetchU64(keys, mPos[:nm], gkeys)
			FetchU64(hashes, mPos[:nm], ghashes)
			gb.Consume(nm, gkeys, ghashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		top := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
		tops[wid] = top
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				top.Offer(queries.Q3Row{
					OrderKey:     int32(uint32(row[1])),
					Revenue:      int64(row[2]),
					OrderDate:    types.Date(uint32(row[3])),
					ShipPriority: int32(uint32(row[3] >> 32)),
				})
			})
		}
	})

	final := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
	for _, t := range tops {
		final.Merge(t)
	}
	return final.Sorted()
}

// Q9Ctx executes TPC-H Q9.
func Q9Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q9Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	part := db.Rel("part")
	pnames := part.String("p_name")
	pkeys := part.Int32("p_partkey")
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snation := supp.Int32("s_nationkey")
	ps := db.Rel("partsupp")
	pspk := ps.Int32("ps_partkey")
	pssk := ps.Int32("ps_suppkey")
	pscost := ps.Numeric("ps_supplycost")
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	odate := ord.Date("o_orderdate")
	needle := []byte(queries.Q9Color)

	htPart := hashtable.New(1, w)
	htSupp := hashtable.New(2, w)
	htPS := hashtable.New(2, w)
	htLine := hashtable.New(3, w)
	dispPart := exec.NewDispatcherCtx(ctx, part.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispPS := exec.NewDispatcherCtx(ctx, ps.Rows(), 0)
	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q9Result, w)

	// lineitem fan-out per order is at most 7.
	const maxFanout = 8

	exec.Parallel(w, func(wid int) {
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		keys2 := bufs.Ref()
		hashes2 := bufs.Ref()
		keys3 := bufs.Ref()
		hashes3 := bufs.Ref()
		keys4 := bufs.Ref()
		hashes4 := bufs.Ref()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		m1Refs := make([]hashtable.Ref, vec)
		m1Pos := bufs.Sel()
		m2Refs := make([]hashtable.Ref, vec)
		m2Pos := bufs.Sel()
		m3Refs := make([]hashtable.Ref, vec)
		m3Pos := bufs.Sel()
		abs2 := bufs.Sel()
		abs3 := bufs.Sel()
		cost2 := bufs.I64()
		cost3 := bufs.I64()
		nation3 := bufs.Ref()
		e3 := bufs.I64()
		d3 := bufs.I64()
		rev3 := bufs.I64()
		q3v := bufs.I64()
		cq3 := bufs.I64()
		amount3 := bufs.I64()

		// Pipeline 1: part σ(name contains green) → HT_part.
		scanP := NewScan(dispPart, vec)
		shP := htPart.Shard(wid)
		for {
			n := scanP.Next()
			if n == 0 {
				break
			}
			b := scanP.Base
			k := SelContainsString(pnames, b, n, needle, sel)
			if k == 0 {
				continue
			}
			MapWidenSel(pkeys[b:b+n], sel[:k], keys)
			MapHashU64(keys[:k], hashes)
			base := shP.AllocN(htPart, k)
			ScatterHashes(htPart, base, hashes, k)
			ScatterWord(htPart, base, 0, keys, k)
		}
		BuildBarrier(htPart, bar, wid)

		// Pipeline 2: supplier → HT_supp (suppkey → nationkey).
		scanS := NewScan(dispSupp, vec)
		shS := htSupp.Shard(wid)
		for {
			n := scanS.Next()
			if n == 0 {
				break
			}
			b := scanS.Base
			MapWiden(skeys[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			MapWiden(snation[b:b+n], n, keys2) // nation payload
			base := shS.AllocN(htSupp, n)
			ScatterHashes(htSupp, base, hashes, n)
			ScatterWord(htSupp, base, 0, keys, n)
			ScatterWord(htSupp, base, 1, keys2, n)
		}
		BuildBarrier(htSupp, bar, wid)

		// Pipeline 3: partsupp ⋉ HT_part → HT_ps ((partkey,suppkey) → cost).
		scanPS := NewScan(dispPS, vec)
		shPS := htPS.Shard(wid)
		for {
			n := scanPS.Next()
			if n == 0 {
				break
			}
			b := scanPS.Base
			MapWiden(pspk[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm := Probe(htPart, keys, hashes, n, cand, candPos, m1Refs, m1Pos)
			if nm == 0 {
				continue
			}
			MapPack2x32Sel(pspk[b:b+n], pssk[b:b+n], m1Pos[:nm], keys2)
			MapHashU64(keys2[:nm], hashes2)
			FetchI64(pscost[b:b+n], m1Pos[:nm], cost2)
			base := shPS.AllocN(htPS, nm)
			ScatterHashes(htPS, base, hashes2, nm)
			ScatterWord(htPS, base, 0, keys2, nm)
			ScatterWordI64(htPS, base, 1, cost2, nm)
		}
		BuildBarrier(htPS, bar, wid)

		// Pipeline 4: lineitem ⋉ HT_part ⋈ HT_ps ⋈ HT_supp → HT_line.
		scanL := NewScan(dispLine, vec)
		shL := htLine.Shard(wid)
		for {
			n := scanL.Next()
			if n == 0 {
				break
			}
			b := scanL.Base
			MapWiden(lpk[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm1 := Probe(htPart, keys, hashes, n, cand, candPos, m1Refs, m1Pos)
			if nm1 == 0 {
				continue
			}
			MapPack2x32Sel(lpk[b:b+n], lsk[b:b+n], m1Pos[:nm1], keys2)
			MapHashU64(keys2[:nm1], hashes2)
			nm2 := Probe(htPS, keys2, hashes2, nm1, cand, candPos, m2Refs, m2Pos)
			if nm2 == 0 {
				continue
			}
			GatherWordI64(htPS, m2Refs, 1, nm2, cost2)
			ComposePos(m1Pos, m2Pos[:nm2], abs2)
			MapWidenSel(lsk[b:b+n], abs2[:nm2], keys3)
			MapHashU64(keys3[:nm2], hashes3)
			nm3 := Probe(htSupp, keys3, hashes3, nm2, cand, candPos, m3Refs, m3Pos)
			if nm3 == 0 {
				continue
			}
			GatherWord(htSupp, m3Refs, 1, nm3, nation3)
			ComposePos(abs2, m3Pos[:nm3], abs3)
			FetchI64(cost2, m3Pos[:nm3], cost3)
			FetchI64(lext[b:b+n], abs3[:nm3], e3)
			MapRsubConstSel(ldisc[b:b+n], 100, abs3[:nm3], d3)
			MapMul(e3, d3, nm3, rev3)
			FetchI64(lqty[b:b+n], abs3[:nm3], q3v)
			MapMul(cost3, q3v, nm3, cq3)
			MapSub(rev3, cq3, nm3, amount3)
			MapWidenSel(lok[b:b+n], abs3[:nm3], keys4)
			MapHashU64(keys4[:nm3], hashes4)
			base := shL.AllocN(htLine, nm3)
			ScatterHashes(htLine, base, hashes4, nm3)
			ScatterWord(htLine, base, 0, keys4, nm3)
			ScatterWord(htLine, base, 1, nation3, nm3)
			ScatterWordI64(htLine, base, 2, amount3, nm3)
		}
		BuildBarrier(htLine, bar, wid)

		// Pipeline 5: orders ⋈ HT_line (multi-match) → Γ(year, nation).
		mRefs := make([]hashtable.Ref, vec*maxFanout)
		mPos := make([]int32, vec*maxFanout)
		amounts := make([]int64, vec*maxFanout)
		nations := make([]uint64, vec*maxFanout)
		years := make([]int64, vec*maxFanout)
		gkeys := make([]uint64, vec*maxFanout)
		ghashes := make([]uint64, vec*maxFanout)
		gb := NewGroupBy(spill, wid, ops, vec*maxFanout)
		vals := [][]int64{amounts}
		scanO := NewScan(dispOrd, vec)
		for {
			n := scanO.Next()
			if n == 0 {
				break
			}
			b := scanO.Base
			MapWiden(okeys[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm := Probe(htLine, keys, hashes, n, cand, candPos, mRefs, mPos)
			if nm == 0 {
				continue
			}
			GatherWordI64(htLine, mRefs, 2, nm, amounts)
			GatherWord(htLine, mRefs, 1, nm, nations)
			MapYearSel(odate[b:b+n], mPos[:nm], years)
			MapPackLoHi(years, nations, nm, gkeys)
			MapHashU64(gkeys[:nm], ghashes)
			gb.Consume(nm, gkeys, ghashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				results[wid] = append(results[wid], queries.Q9Row{
					Nation: int32(uint32(row[1] >> 32)),
					Year:   int32(uint32(row[1])),
					Profit: int64(row[2]),
				})
			})
		}
	})

	var out queries.Q9Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ9(out)
	return out
}

// Q18Ctx executes TPC-H Q18.
func Q18Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q18Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	ototal := ord.Numeric("o_totalprice")
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	minQty := int64(queries.Q18Quantity)

	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	htBig := hashtable.New(2, 1)
	htMatch := hashtable.New(4, w)
	type bigGroup struct {
		key    uint64
		sumQty int64
	}
	qualifying := make([][]bigGroup, w)
	tops := make([]*queries.TopK[queries.Q18Row], w)

	exec.Parallel(w, func(wid int) {
		bufs := vector.NewBuffers(vec)
		keys := bufs.Ref()
		hashes := bufs.Ref()
		qvals := bufs.I64()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		mRefs := make([]hashtable.Ref, vec)
		mPos := bufs.Sel()
		dp := bufs.Ref()
		keysC := bufs.Ref()
		hashesC := bufs.Ref()
		tp := bufs.I64()
		sq := bufs.I64()

		// Pipeline 1: Γ(lineitem by orderkey): the 1.5M·SF-group
		// aggregation that dominates this query.
		scanL := NewScan(dispLine, vec)
		gb := NewGroupBy(spill, wid, ops, vec)
		vals := [][]int64{qvals}
		for {
			n := scanL.Next()
			if n == 0 {
				break
			}
			b := scanL.Base
			MapWiden(lok[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			MapCopyI64(lqty[b:b+n], n, qvals)
			gb.Consume(n, keys, hashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		// Pipeline 2: merge partitions; HAVING sum(qty) > 300.
		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				if int64(row[2]) > minQty {
					qualifying[wid] = append(qualifying[wid], bigGroup{key: row[1], sumQty: int64(row[2])})
				}
			})
		}
		bar.Wait(func() {
			total := 0
			for _, q := range qualifying {
				total += len(q)
			}
			htBig.Prepare(total)
			sh := htBig.Shard(0)
			for _, qs := range qualifying {
				for _, qg := range qs {
					h := Hash(qg.key)
					ref, _ := sh.Alloc(htBig, h)
					htBig.SetWord(ref, 0, qg.key)
					htBig.SetWord(ref, 1, uint64(qg.sumQty))
					htBig.Insert(ref, h)
				}
			}
		})

		// Pipeline 3: orders ⋈ HT_big → HT_match keyed by custkey.
		scanO := NewScan(dispOrd, vec)
		shM := htMatch.Shard(wid)
		for {
			n := scanO.Next()
			if n == 0 {
				break
			}
			b := scanO.Base
			MapWiden(okeys[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm := Probe(htBig, keys, hashes, n, cand, candPos, mRefs, mPos)
			if nm == 0 {
				continue
			}
			MapWidenSel(ocust[b:b+n], mPos[:nm], keysC)
			MapHashU64(keysC[:nm], hashesC)
			MapPack2x32Sel(okeys[b:b+n], odate[b:b+n], mPos[:nm], dp)
			FetchI64(ototal[b:b+n], mPos[:nm], tp)
			GatherWordI64(htBig, mRefs, 1, nm, sq)
			base := shM.AllocN(htMatch, nm)
			ScatterHashes(htMatch, base, hashesC, nm)
			ScatterWord(htMatch, base, 0, keysC, nm)
			ScatterWord(htMatch, base, 1, dp, nm)
			ScatterWordI64(htMatch, base, 2, tp, nm)
			ScatterWordI64(htMatch, base, 3, sq, nm)
		}
		BuildBarrier(htMatch, bar, wid)

		// Pipeline 4: customer ⋈ HT_match (multi-match); emit top-100.
		top := queries.NewTopK[queries.Q18Row](100, queries.Q18Less)
		tops[wid] = top
		scanC := NewScan(dispCust, vec)
		for {
			n := scanC.Next()
			if n == 0 {
				break
			}
			b := scanC.Base
			MapWiden(ckeys[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nc := FindCandidates(htMatch, hashes, n, cand, candPos)
			for nc > 0 {
				// Output emission: offers go straight to the top-k sink.
				for i := 0; i < nc; i++ {
					ref := cand[i]
					p := candPos[i]
					if htMatch.Hash(ref) == hashes[p] && htMatch.Word(ref, 0) == keys[p] {
						od := htMatch.Word(ref, 1)
						top.Offer(queries.Q18Row{
							CustKey:    int32(uint32(keys[p])),
							OrderKey:   int32(uint32(od)),
							OrderDate:  types.Date(uint32(od >> 32)),
							TotalPrice: types.Numeric(int64(htMatch.Word(ref, 2))),
							SumQty:     int64(htMatch.Word(ref, 3)),
						})
					}
				}
				nc = NextCandidates(htMatch, cand, candPos, nc)
			}
		}
	})

	final := queries.NewTopK[queries.Q18Row](100, queries.Q18Less)
	for _, t := range tops {
		final.Merge(t)
	}
	return final.Sorted()
}
