package tw

import (
	"context"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/vector"
)

// Monolithic vectorized pipelines for the TPC-H queries not yet ported
// to the declarative operator layer: each query function builds one
// pipeline per worker (private buffers, shared hash tables / dispatchers
// / barriers) and drives it vector-at-a-time. Q6, Q3, Q18 (and the new
// Q5) live in internal/plan as operator plans assembled from this
// package's primitives.

func vecOrDefault(v int) int {
	if v <= 0 {
		return vector.DefaultSize
	}
	return v
}

// Q1Ctx executes TPC-H Q1 with the given worker count and vector size.
func Q1Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q1Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	cutoff := queries.Q1Cutoff

	disp := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum, hashtable.OpSum, hashtable.OpSum,
		hashtable.OpSum, hashtable.OpSum, hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q1Result, w)

	exec.Parallel(w, func(wid int) {
		scan := NewScan(disp, vec)
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		vQty := bufs.I64()
		vBase := bufs.I64()
		vDisc := bufs.I64()
		vCharge := bufs.I64()
		vDiscnt := bufs.I64()
		t100 := bufs.I64()
		tTax := bufs.I64()
		ones := bufs.I64()
		for i := range ones {
			ones[i] = 1
		}
		vals := [][]int64{vQty, vBase, vDisc, vCharge, vDiscnt, ones}
		gb := NewGroupBy(spill, wid, ops, vec)

		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			nSel := SelLE(ship[b:b+n], cutoff, sel)
			if nSel == 0 {
				continue
			}
			s := sel[:nSel]
			MapPack2x8Sel(rf[b:b+n], ls[b:b+n], s, keys)
			MapHashU64(keys[:nSel], hashes)
			FetchI64(qty[b:b+n], s, vQty)
			FetchI64(ext[b:b+n], s, vBase)
			MapRsubConstSel(disc[b:b+n], 100, s, t100)
			MapMul(vBase, t100, nSel, vDisc)
			FetchI64(tax[b:b+n], s, tTax)
			MapAddConst(tTax, 100, nSel, tTax)
			MapMul(vDisc, tTax, nSel, vCharge)
			FetchI64(disc[b:b+n], s, vDiscnt)
			gb.Consume(nSel, keys, hashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				results[wid] = append(results[wid], queries.Q1Row{
					ReturnFlag: byte(row[1] >> 8),
					LineStatus: byte(row[1]),
					SumQty:     int64(row[2]),
					SumBase:    int64(row[3]),
					SumDisc:    int64(row[4]),
					SumCharge:  int64(row[5]),
					SumDiscnt:  int64(row[6]),
					Count:      int64(row[7]),
				})
			})
		}
	})

	var out queries.Q1Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ1(out)
	return out
}

// Q9Ctx executes TPC-H Q9.
func Q9Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.Q9Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	part := db.Rel("part")
	pnames := part.String("p_name")
	pkeys := part.Int32("p_partkey")
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snation := supp.Int32("s_nationkey")
	ps := db.Rel("partsupp")
	pspk := ps.Int32("ps_partkey")
	pssk := ps.Int32("ps_suppkey")
	pscost := ps.Numeric("ps_supplycost")
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	lok := li.Int32("l_orderkey")
	lqty := li.Numeric("l_quantity")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	odate := ord.Date("o_orderdate")
	needle := []byte(queries.Q9Color)

	htPart := hashtable.New(1, w)
	htSupp := hashtable.New(2, w)
	htPS := hashtable.New(2, w)
	htLine := hashtable.New(3, w)
	dispPart := exec.NewDispatcherCtx(ctx, part.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispPS := exec.NewDispatcherCtx(ctx, ps.Rows(), 0)
	dispLine := exec.NewDispatcherCtx(ctx, li.Rows(), 0)
	dispOrd := exec.NewDispatcherCtx(ctx, ord.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.Q9Result, w)

	// lineitem fan-out per order is at most 7.
	const maxFanout = 8

	exec.Parallel(w, func(wid int) {
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		keys2 := bufs.Ref()
		hashes2 := bufs.Ref()
		keys3 := bufs.Ref()
		hashes3 := bufs.Ref()
		keys4 := bufs.Ref()
		hashes4 := bufs.Ref()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		m1Refs := make([]hashtable.Ref, vec)
		m1Pos := bufs.Sel()
		m2Refs := make([]hashtable.Ref, vec)
		m2Pos := bufs.Sel()
		m3Refs := make([]hashtable.Ref, vec)
		m3Pos := bufs.Sel()
		abs2 := bufs.Sel()
		abs3 := bufs.Sel()
		cost2 := bufs.I64()
		cost3 := bufs.I64()
		nation3 := bufs.Ref()
		e3 := bufs.I64()
		d3 := bufs.I64()
		rev3 := bufs.I64()
		q3v := bufs.I64()
		cq3 := bufs.I64()
		amount3 := bufs.I64()

		// Pipeline 1: part σ(name contains green) → HT_part.
		scanP := NewScan(dispPart, vec)
		shP := htPart.Shard(wid)
		for {
			n := scanP.Next()
			if n == 0 {
				break
			}
			b := scanP.Base
			k := SelContainsString(pnames, b, n, needle, sel)
			if k == 0 {
				continue
			}
			MapWidenSel(pkeys[b:b+n], sel[:k], keys)
			MapHashU64(keys[:k], hashes)
			base := shP.AllocN(htPart, k)
			ScatterHashes(htPart, base, hashes, k)
			ScatterWord(htPart, base, 0, keys, k)
		}
		BuildBarrier(htPart, bar, wid)

		// Pipeline 2: supplier → HT_supp (suppkey → nationkey).
		scanS := NewScan(dispSupp, vec)
		shS := htSupp.Shard(wid)
		for {
			n := scanS.Next()
			if n == 0 {
				break
			}
			b := scanS.Base
			MapWiden(skeys[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			MapWiden(snation[b:b+n], n, keys2) // nation payload
			base := shS.AllocN(htSupp, n)
			ScatterHashes(htSupp, base, hashes, n)
			ScatterWord(htSupp, base, 0, keys, n)
			ScatterWord(htSupp, base, 1, keys2, n)
		}
		BuildBarrier(htSupp, bar, wid)

		// Pipeline 3: partsupp ⋉ HT_part → HT_ps ((partkey,suppkey) → cost).
		scanPS := NewScan(dispPS, vec)
		shPS := htPS.Shard(wid)
		for {
			n := scanPS.Next()
			if n == 0 {
				break
			}
			b := scanPS.Base
			MapWiden(pspk[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm := Probe(htPart, keys, hashes, n, cand, candPos, m1Refs, m1Pos)
			if nm == 0 {
				continue
			}
			MapPack2x32Sel(pspk[b:b+n], pssk[b:b+n], m1Pos[:nm], keys2)
			MapHashU64(keys2[:nm], hashes2)
			FetchI64(pscost[b:b+n], m1Pos[:nm], cost2)
			base := shPS.AllocN(htPS, nm)
			ScatterHashes(htPS, base, hashes2, nm)
			ScatterWord(htPS, base, 0, keys2, nm)
			ScatterWordI64(htPS, base, 1, cost2, nm)
		}
		BuildBarrier(htPS, bar, wid)

		// Pipeline 4: lineitem ⋉ HT_part ⋈ HT_ps ⋈ HT_supp → HT_line.
		scanL := NewScan(dispLine, vec)
		shL := htLine.Shard(wid)
		for {
			n := scanL.Next()
			if n == 0 {
				break
			}
			b := scanL.Base
			MapWiden(lpk[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm1 := Probe(htPart, keys, hashes, n, cand, candPos, m1Refs, m1Pos)
			if nm1 == 0 {
				continue
			}
			MapPack2x32Sel(lpk[b:b+n], lsk[b:b+n], m1Pos[:nm1], keys2)
			MapHashU64(keys2[:nm1], hashes2)
			nm2 := Probe(htPS, keys2, hashes2, nm1, cand, candPos, m2Refs, m2Pos)
			if nm2 == 0 {
				continue
			}
			GatherWordI64(htPS, m2Refs, 1, nm2, cost2)
			ComposePos(m1Pos, m2Pos[:nm2], abs2)
			MapWidenSel(lsk[b:b+n], abs2[:nm2], keys3)
			MapHashU64(keys3[:nm2], hashes3)
			nm3 := Probe(htSupp, keys3, hashes3, nm2, cand, candPos, m3Refs, m3Pos)
			if nm3 == 0 {
				continue
			}
			GatherWord(htSupp, m3Refs, 1, nm3, nation3)
			ComposePos(abs2, m3Pos[:nm3], abs3)
			FetchI64(cost2, m3Pos[:nm3], cost3)
			FetchI64(lext[b:b+n], abs3[:nm3], e3)
			MapRsubConstSel(ldisc[b:b+n], 100, abs3[:nm3], d3)
			MapMul(e3, d3, nm3, rev3)
			FetchI64(lqty[b:b+n], abs3[:nm3], q3v)
			MapMul(cost3, q3v, nm3, cq3)
			MapSub(rev3, cq3, nm3, amount3)
			MapWidenSel(lok[b:b+n], abs3[:nm3], keys4)
			MapHashU64(keys4[:nm3], hashes4)
			base := shL.AllocN(htLine, nm3)
			ScatterHashes(htLine, base, hashes4, nm3)
			ScatterWord(htLine, base, 0, keys4, nm3)
			ScatterWord(htLine, base, 1, nation3, nm3)
			ScatterWordI64(htLine, base, 2, amount3, nm3)
		}
		BuildBarrier(htLine, bar, wid)

		// Pipeline 5: orders ⋈ HT_line (multi-match) → Γ(year, nation).
		mRefs := make([]hashtable.Ref, vec*maxFanout)
		mPos := make([]int32, vec*maxFanout)
		amounts := make([]int64, vec*maxFanout)
		nations := make([]uint64, vec*maxFanout)
		years := make([]int64, vec*maxFanout)
		gkeys := make([]uint64, vec*maxFanout)
		ghashes := make([]uint64, vec*maxFanout)
		gb := NewGroupBy(spill, wid, ops, vec*maxFanout)
		vals := [][]int64{amounts}
		scanO := NewScan(dispOrd, vec)
		for {
			n := scanO.Next()
			if n == 0 {
				break
			}
			b := scanO.Base
			MapWiden(okeys[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm := Probe(htLine, keys, hashes, n, cand, candPos, mRefs, mPos)
			if nm == 0 {
				continue
			}
			GatherWordI64(htLine, mRefs, 2, nm, amounts)
			GatherWord(htLine, mRefs, 1, nm, nations)
			MapYearSel(odate[b:b+n], mPos[:nm], years)
			MapPackLoHi(years, nations, nm, gkeys)
			MapHashU64(gkeys[:nm], ghashes)
			gb.Consume(nm, gkeys, ghashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				results[wid] = append(results[wid], queries.Q9Row{
					Nation: int32(uint32(row[1] >> 32)),
					Year:   int32(uint32(row[1])),
					Profit: int64(row[2]),
				})
			})
		}
	})

	var out queries.Q9Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortQ9(out)
	return out
}
