package tw

import (
	"paradigms/internal/hashtable"
)

// GroupBy is the vectorized side of the shared two-phase aggregation.
//
// Phase one processes each input vector with three primitive passes:
// find-groups (probe the worker-local pre-aggregation table), handle
// misses (sequentially insert new groups, spilling single-tuple partials
// to hash partitions once the table reaches capacity — the paper's
// "shuffle group-less tuples and add one group per partition" step,
// realized as an insert-if-absent pass so duplicate keys inside one
// vector create exactly one group), and update-aggregates (one pass per
// aggregate column over the found group references).
//
// Phase two — per-partition merge — is hashtable.MergeSpill, identical
// code for both engines: the paradigm difference under study lives in how
// phase one consumes the base data.
type GroupBy struct {
	local *hashtable.Table
	sh    *hashtable.Shard
	spill *hashtable.Spill
	wid   int
	ops   []hashtable.AggOp

	// Per-vector state (sized by the owner).
	Refs    []hashtable.Ref // group ref per tuple; 0 = spilled
	missSel []int32
}

// NewGroupBy creates phase-one state for one worker. vecCap is the
// maximum vector length the owner will feed (match buffers of multi-match
// joins can exceed the scan vector size).
func NewGroupBy(spill *hashtable.Spill, wid int, ops []hashtable.AggOp, vecCap int) *GroupBy {
	local := hashtable.New(1+len(ops), 1)
	local.Prepare(preAggCapacity)
	return &GroupBy{
		local:   local,
		sh:      local.Shard(0),
		spill:   spill,
		wid:     wid,
		ops:     ops,
		Refs:    make([]hashtable.Ref, vecCap),
		missSel: make([]int32, vecCap),
	}
}

// FindGroups probes the pre-aggregation table for each of the n keys,
// filling Refs and compacting the missing positions; returns the number
// of misses.
func (g *GroupBy) FindGroups(n int, keys, hashes []uint64) int {
	local := g.local
	k := 0
	for i := 0; i < n; i++ {
		h := hashes[i]
		key := keys[i]
		ref := local.Lookup(h)
		for ; ref != 0; ref = local.Next(ref) {
			if local.Hash(ref) == h && local.Word(ref, 0) == key {
				break
			}
		}
		g.Refs[i] = ref
		g.missSel[k] = int32(i)
		if ref == 0 {
			k++
		}
	}
	return k
}

// HandleMisses inserts one group per distinct missing key (or spills the
// tuple's partial once at capacity). vals[j] is the dense input vector of
// aggregate j, aligned with the keys vector. Spilled tuples keep Refs ==
// 0 so UpdateAggs skips them.
func (g *GroupBy) HandleMisses(nMiss int, keys, hashes []uint64, vals [][]int64) {
	local := g.local
	for m := 0; m < nMiss; m++ {
		i := g.missSel[m]
		h := hashes[i]
		key := keys[i]
		// An earlier miss in this vector may have created the group.
		ref := local.Lookup(h)
		for ; ref != 0; ref = local.Next(ref) {
			if local.Hash(ref) == h && local.Word(ref, 0) == key {
				break
			}
		}
		if ref != 0 {
			g.Refs[i] = ref
			continue
		}
		if local.Rows() < preAggCapacity {
			ref, _ := g.sh.Alloc(local, h)
			local.SetWord(ref, 0, key)
			for j, op := range g.ops {
				if op == hashtable.OpSum {
					local.SetWord(ref, 1+j, 0)
				} else {
					local.SetWord(ref, 1+j, uint64(vals[j][i]))
				}
			}
			local.Insert(ref, h)
			g.Refs[i] = ref
			continue
		}
		row := g.spill.AppendRow(g.wid, hashtable.PartitionOf(h, g.spill.Parts()))
		row[0] = h
		row[1] = key
		for j := range g.ops {
			row[2+j] = uint64(vals[j][i])
		}
	}
}

// UpdateAggs adds the aggregate inputs of all resolved tuples into their
// group's payload: one primitive pass per aggregate column.
func (g *GroupBy) UpdateAggs(n int, vals [][]int64) {
	local := g.local
	for j, op := range g.ops {
		col := vals[j]
		w := 1 + j
		switch op {
		case hashtable.OpSum:
			for i := 0; i < n; i++ {
				ref := g.Refs[i]
				if ref != 0 {
					local.SetWord(ref, w, local.Word(ref, w)+uint64(col[i]))
				}
			}
		case hashtable.OpMin:
			for i := 0; i < n; i++ {
				ref := g.Refs[i]
				if ref != 0 && col[i] < int64(local.Word(ref, w)) {
					local.SetWord(ref, w, uint64(col[i]))
				}
			}
		case hashtable.OpMax:
			for i := 0; i < n; i++ {
				ref := g.Refs[i]
				if ref != 0 && col[i] > int64(local.Word(ref, w)) {
					local.SetWord(ref, w, uint64(col[i]))
				}
			}
		}
	}
}

// Consume runs the three phase-one passes for one vector.
func (g *GroupBy) Consume(n int, keys, hashes []uint64, vals [][]int64) {
	nMiss := g.FindGroups(n, keys, hashes)
	if nMiss > 0 {
		g.HandleMisses(nMiss, keys, hashes, vals)
	}
	g.UpdateAggs(n, vals)
}

// Flush spills every pre-aggregated group, ending phase one for this
// worker.
func (g *GroupBy) Flush() {
	local := g.local
	nw := len(g.ops)
	local.ForEach(func(ref hashtable.Ref) {
		h := local.Hash(ref)
		row := g.spill.AppendRow(g.wid, hashtable.PartitionOf(h, g.spill.Parts()))
		row[0] = h
		row[1] = local.Word(ref, 0)
		for j := 0; j < nw; j++ {
			row[2+j] = local.Word(ref, 1+j)
		}
	})
}
