package tw

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/tpch"
)

func TestQ1AdaptiveMatchesReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := tpch.Generate(sf, 0)
		want := queries.RefQ1(db)
		for _, threads := range []int{1, 4} {
			for _, vec := range []int{64, 1000, 8192} {
				got := Q1Adaptive(db, threads, vec)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v threads=%d vec=%d: adaptive Q1 mismatch", sf, threads, vec)
				}
			}
		}
	}
}

func TestQ1AdaptiveAgreesWithHashVariant(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	hash := Q1(db, 2, 0)
	adaptive := Q1Adaptive(db, 2, 0)
	if !reflect.DeepEqual(hash, adaptive) {
		t.Errorf("hash and ordered aggregation disagree:\n%v\n%v", hash, adaptive)
	}
}
