package tw

import (
	"testing"

	"paradigms/internal/hashtable"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

func TestStringSelectionPrimitives(t *testing.T) {
	heap := storage.NewStringHeap(6, 10)
	for _, s := range []string{"BUILDING", "MACHINERY", "BUILDING", "dark green lace", "green", "HOUSEHOLD"} {
		heap.AppendString(s)
	}
	res := make([]int32, 6)
	k := SelEqString(heap, 0, 6, "BUILDING", res)
	if k != 2 || res[0] != 0 || res[1] != 2 {
		t.Fatalf("SelEqString = %d %v", k, res[:k])
	}
	// Windowed: base 2, n 4 → positions relative to window.
	k = SelEqString(heap, 2, 4, "BUILDING", res)
	if k != 1 || res[0] != 0 {
		t.Fatalf("windowed SelEqString = %d %v", k, res[:k])
	}
	k = SelContainsString(heap, 0, 6, []byte("green"), res)
	if k != 2 || res[0] != 3 || res[1] != 4 {
		t.Fatalf("SelContainsString = %d %v", k, res[:k])
	}
}

func TestWidenAndCopyPrimitives(t *testing.T) {
	col := []int32{5, -1, 7}
	keys := make([]uint64, 3)
	MapWiden(col, 3, keys)
	if keys[1] != uint64(uint32(0xffffffff)) {
		t.Errorf("MapWiden sign handling: %x", keys[1])
	}
	MapWidenSel(col, []int32{2, 0}, keys)
	if keys[0] != 7 || keys[1] != 5 {
		t.Errorf("MapWidenSel = %v", keys[:2])
	}
	nums := []types.Numeric{100, 200}
	out := make([]int64, 2)
	MapCopyI64(nums, 2, out)
	if out[0] != 100 || out[1] != 200 {
		t.Errorf("MapCopyI64 = %v", out)
	}
}

func TestPackPrimitives(t *testing.T) {
	years := []int64{1995, 1996}
	nations := []uint64{7, 9}
	res := make([]uint64, 2)
	MapPackLoHi(years, nations, 2, res)
	if res[0] != 1995|7<<32 || res[1] != 1996|9<<32 {
		t.Errorf("MapPackLoHi = %x", res)
	}
	cn := []uint64{3, 4}
	sn := []uint64{5, 6}
	yr := []uint64{1992, 1993}
	MapPack3(cn, sn, yr, 2, res)
	if res[0] != 3<<40|5<<32|1992 {
		t.Errorf("MapPack3 = %x", res[0])
	}
	// Unpack round trip.
	if int32(res[1]>>40&0xff) != 4 || int32(res[1]>>32&0xff) != 6 || int32(uint32(res[1])) != 1993 {
		t.Errorf("MapPack3 unpack failed: %x", res[1])
	}
}

func TestFetchU64AndGather(t *testing.T) {
	vals := []uint64{10, 20, 30, 40}
	res := make([]uint64, 2)
	FetchU64(vals, []int32{3, 1}, res)
	if res[0] != 40 || res[1] != 20 {
		t.Errorf("FetchU64 = %v", res)
	}
	ht := hashtable.New(2, 1)
	sh := ht.Shard(0)
	var refs []hashtable.Ref
	for i := uint64(0); i < 4; i++ {
		ref, _ := sh.Alloc(ht, Hash(i))
		ht.SetWord(ref, 0, i)
		ht.SetWord(ref, 1, i*100)
		refs = append(refs, ref)
	}
	out := make([]uint64, 4)
	GatherWord(ht, refs, 1, 4, out)
	for i := range out {
		if out[i] != uint64(i)*100 {
			t.Fatalf("GatherWord[%d] = %d", i, out[i])
		}
	}
	outI := make([]int64, 4)
	GatherWordI64(ht, refs, 1, 4, outI)
	if outI[3] != 300 {
		t.Errorf("GatherWordI64 = %v", outI)
	}
}

func TestScatterAndRefAt(t *testing.T) {
	ht := hashtable.New(2, 1)
	sh := ht.Shard(0)
	base := sh.AllocN(ht, 3)
	hashes := []uint64{Hash(1), Hash(2), Hash(3)}
	keys := []uint64{1, 2, 3}
	vals := []int64{-10, -20, -30}
	ScatterHashes(ht, base, hashes, 3)
	ScatterWord(ht, base, 0, keys, 3)
	ScatterWordI64(ht, base, 1, vals, 3)
	for i := 0; i < 3; i++ {
		ref := ht.RefAt(base, i)
		if ht.Hash(ref) != hashes[i] || ht.Word(ref, 0) != keys[i] || int64(ht.Word(ref, 1)) != vals[i] {
			t.Fatalf("row %d corrupt", i)
		}
	}
}

func TestMapHashVariantsConsistent(t *testing.T) {
	col := []int32{10, 20, 30, 40}
	dense := make([]uint64, 4)
	MapHash(col, dense)
	sparse := make([]uint64, 2)
	MapHashSel(col, []int32{1, 3}, sparse)
	if sparse[0] != dense[1] || sparse[1] != dense[3] {
		t.Error("MapHashSel inconsistent with MapHash")
	}
	keys := []uint64{uint64(uint32(col[0]))}
	direct := make([]uint64, 1)
	MapHashU64(keys, direct)
	if direct[0] != dense[0] {
		t.Error("MapHashU64 inconsistent with MapHash")
	}
}

func TestSelGESelEmptyAndFull(t *testing.T) {
	col := []int64{1, 2, 3}
	res := make([]int32, 3)
	if k := SelGESel(col, 10, nil, res); k != 0 {
		t.Errorf("empty input sel produced %d", k)
	}
	sel := []int32{0, 1, 2}
	if k := SelGESel(col, 0, sel, res); k != 3 {
		t.Errorf("full match = %d", k)
	}
}
