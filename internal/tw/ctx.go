package tw

import (
	"context"

	"paradigms/internal/queries"
	"paradigms/internal/storage"
)

// The *Ctx query variants (tpch.go, ssb.go) thread a context down to every
// morsel dispatcher so a canceled query drains out of its scan loops
// within one morsel (see exec.NewDispatcherCtx). The plain variants below
// are the uncancelable forms used by benchmarks and the repro driver; a
// query abandoned mid-flight by cancellation returns an incomplete result
// that callers must discard — internal/server does exactly that.

// Q1 executes TPC-H Q1 with the given worker count and vector size.
func Q1(db *storage.Database, nWorkers, vecSize int) queries.Q1Result {
	return Q1Ctx(context.Background(), db, nWorkers, vecSize)
}

// Q9 executes TPC-H Q9.
func Q9(db *storage.Database, nWorkers, vecSize int) queries.Q9Result {
	return Q9Ctx(context.Background(), db, nWorkers, vecSize)
}

// SSBQ11 executes SSB Q1.1.
func SSBQ11(db *storage.Database, nWorkers, vecSize int) queries.SSBQ11Result {
	return SSBQ11Ctx(context.Background(), db, nWorkers, vecSize)
}

// SSBQ31 executes SSB Q3.1.
func SSBQ31(db *storage.Database, nWorkers, vecSize int) queries.SSBQ31Result {
	return SSBQ31Ctx(context.Background(), db, nWorkers, vecSize)
}

// SSBQ41 executes SSB Q4.1.
func SSBQ41(db *storage.Database, nWorkers, vecSize int) queries.SSBQ41Result {
	return SSBQ41Ctx(context.Background(), db, nWorkers, vecSize)
}
