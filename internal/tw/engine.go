// Package tw is the vectorized query engine ("Tectorwise" in the paper,
// VectorWise style).
//
// Queries execute vector-at-a-time: operators exchange blocks of (by
// default) 1000 tuples, and all data-touching work happens in small
// type-specialized primitives that read input vectors and materialize
// output vectors (§2.1). Every primitive obeys the two vectorization
// constraints the paper identifies: (i) it is specialized to one data
// type, and (ii) it processes many tuples per call. Selection primitives
// produce selection vectors; secondary selections consume them; hash
// joins split into probe-hash, find-candidates, compare-keys, and gather
// primitives exactly as in Figure 2b of the paper.
//
// The engine shares all data structures with Typer: the tagged chaining
// hash table, the spill-partitioned two-phase aggregation, and the
// morsel-driven scheduler. Each worker owns a private operator tree with
// private vector buffers; operators coordinate through shared state and
// barriers (§6.1).
package tw

import (
	"runtime"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
)

const (
	// aggPartitions and preAggCapacity mirror Typer's aggregation
	// configuration so the two-phase algorithm is identical.
	aggPartitions  = 64
	preAggCapacity = 1 << 14

	// AggPartitions exports the spill-partition count for layers that
	// assemble this engine's primitives into plans (internal/plan) and
	// must configure the shared two-phase aggregation identically.
	AggPartitions = aggPartitions
)

// Hash is the hash function Tectorwise uses for all keys: Murmur2 (§4.1 —
// more instructions than CRC but higher throughput, which wins when hash
// computation is a separate primitive).
var Hash = hashtable.Murmur2

// workers normalizes a worker-count argument.
func workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Scan claims morsels from a shared dispatcher and serves them as vectors
// of at most vecSize tuples. Column data is accessed as windows
// col[Base : Base+n], so scans copy nothing.
type Scan struct {
	disp    *exec.Dispatcher
	vecSize int
	m       exec.Morsel
	pos     int
	inM     bool

	// Base is the absolute row index of the current vector's first tuple.
	Base int
}

// NewScan creates a scan over a shared dispatcher.
func NewScan(disp *exec.Dispatcher, vecSize int) *Scan {
	return &Scan{disp: disp, vecSize: vecSize}
}

// SetVec changes the tuples-per-vector size for subsequent vectors —
// the micro-adaptivity hook (§8.4): a pipeline can trial several vector
// sizes on its first morsels and commit to the fastest. Callers must
// keep v within the capacity of the buffers downstream operators were
// built with. Values <= 0 are ignored.
func (s *Scan) SetVec(v int) {
	if v > 0 {
		s.vecSize = v
	}
}

// Next returns the size of the next vector (0 when the scan is
// exhausted). Vectors never cross morsel boundaries.
func (s *Scan) Next() int {
	for {
		if s.inM && s.pos < s.m.End {
			n := s.m.End - s.pos
			if n > s.vecSize {
				n = s.vecSize
			}
			s.Base = s.pos
			s.pos += n
			return n
		}
		m, ok := s.disp.Next()
		if !ok {
			return 0
		}
		s.m = m
		s.pos = m.Begin
		s.inM = true
	}
}
