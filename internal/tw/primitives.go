package tw

import (
	"bytes"

	"paradigms/internal/hashtable"
	"paradigms/internal/storage"
)

// Vectorized primitives. Naming follows VectorWise conventions:
//   Sel*    selection: emit positions of qualifying tuples
//   *Sel    variant consuming an input selection vector (sparse access)
//   Map*    projection: compute an output vector
//   Hash*   hash an input vector
//   Gather* move values out of hash-table entries into dense vectors
//   Fetch*  move values out of base columns through a position vector
//
// Selection primitives use predicated (branch-free-style) evaluation:
// the result position is always stored and the output cursor advances
// conditionally (§2.1: "*res = i; res += cond").
//
// Type specialization is expressed with Go generics instantiated at
// compile time: each instantiation is one type-specialized primitive, so
// constraint (i) — one primitive works on one data type — holds exactly
// as in a hand-expanded primitive library.

type ordered interface {
	~int8 | ~int32 | ~int64 | ~uint32 | ~uint64
}

// SelGE emits positions i (0-based within the vector) where col[i] >= v.
func SelGE[T ordered](col []T, v T, res []int32) int {
	k := 0
	for i := 0; i < len(col); i++ {
		res[k] = int32(i)
		if col[i] >= v {
			k++
		}
	}
	return k
}

// SelGESel is SelGE over the positions in sel.
func SelGESel[T ordered](col []T, v T, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if col[s] >= v {
			k++
		}
	}
	return k
}

// SelLT emits positions where col[i] < v.
func SelLT[T ordered](col []T, v T, res []int32) int {
	k := 0
	for i := 0; i < len(col); i++ {
		res[k] = int32(i)
		if col[i] < v {
			k++
		}
	}
	return k
}

// SelLTSel is SelLT over the positions in sel.
func SelLTSel[T ordered](col []T, v T, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if col[s] < v {
			k++
		}
	}
	return k
}

// SelLE emits positions where col[i] <= v.
func SelLE[T ordered](col []T, v T, res []int32) int {
	k := 0
	for i := 0; i < len(col); i++ {
		res[k] = int32(i)
		if col[i] <= v {
			k++
		}
	}
	return k
}

// SelLESel is SelLE over the positions in sel.
func SelLESel[T ordered](col []T, v T, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if col[s] <= v {
			k++
		}
	}
	return k
}

// SelGT emits positions where col[i] > v.
func SelGT[T ordered](col []T, v T, res []int32) int {
	k := 0
	for i := 0; i < len(col); i++ {
		res[k] = int32(i)
		if col[i] > v {
			k++
		}
	}
	return k
}

// SelGTSel is SelGT over the positions in sel.
func SelGTSel[T ordered](col []T, v T, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if col[s] > v {
			k++
		}
	}
	return k
}

// SelEq emits positions where col[i] == v.
func SelEq[T ordered](col []T, v T, res []int32) int {
	k := 0
	for i := 0; i < len(col); i++ {
		res[k] = int32(i)
		if col[i] == v {
			k++
		}
	}
	return k
}

// SelEqSel is SelEq over the positions in sel.
func SelEqSel[T ordered](col []T, v T, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if col[s] == v {
			k++
		}
	}
	return k
}

// SelRangeSel emits positions where lo <= col[i] <= hi, over sel.
func SelRangeSel[T ordered](col []T, lo, hi T, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if col[s] >= lo && col[s] <= hi {
			k++
		}
	}
	return k
}

// SelLUT emits positions where lut[col[i]] — a semi-join against a tiny
// dimension folded into a lookup table (e.g. Q5's nation-in-region set).
func SelLUT[T ~int32](col []T, lut []bool, res []int32) int {
	k := 0
	for i := 0; i < len(col); i++ {
		res[k] = int32(i)
		if lut[col[i]] {
			k++
		}
	}
	return k
}

// SelLUTSel is SelLUT over the positions in sel.
func SelLUTSel[T ~int32](col []T, lut []bool, sel []int32, res []int32) int {
	k := 0
	for _, s := range sel {
		res[k] = s
		if lut[col[s]] {
			k++
		}
	}
	return k
}

// SelEqCols emits dense positions i where a[i] == b[i] (a join residual
// over two gathered vectors, e.g. Q5's c_nationkey = s_nationkey).
func SelEqCols(a, b []uint64, n int, res []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		res[k] = int32(i)
		if a[i] == b[i] {
			k++
		}
	}
	return k
}

// SelEqString emits positions (offset by base into the heap) whose string
// equals v.
func SelEqString(heap *storage.StringHeap, base, n int, v string, res []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		res[k] = int32(i)
		if string(heap.Get(base+i)) == v {
			k++
		}
	}
	return k
}

// SelContainsString emits positions whose string contains needle.
func SelContainsString(heap *storage.StringHeap, base, n int, needle []byte, res []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		res[k] = int32(i)
		if bytes.Contains(heap.Get(base+i), needle) {
			k++
		}
	}
	return k
}

// MapHash hashes col[i] for the dense vector, widening to uint64.
func MapHash[T ~int32 | ~uint32](col []T, res []uint64) {
	for i := 0; i < len(col); i++ {
		res[i] = Hash(uint64(uint32(col[i])))
	}
}

// MapHashSel hashes col[s] for s in sel, producing a dense hash vector
// aligned with sel.
func MapHashSel[T ~int32 | ~uint32](col []T, sel []int32, res []uint64) {
	for i, s := range sel {
		res[i] = Hash(uint64(uint32(col[s])))
	}
}

// MapHashU64 hashes a dense vector of already-packed 64-bit keys,
// 4-way unrolled so the independent multiply chains overlap (the ILP
// form of vectorized hashing — §5, Fig. 8a). The hash function is read
// once per call so the engine-wide Hash variable stays swappable (the
// hash-function ablation benchmark relies on this).
func MapHashU64(keys []uint64, res []uint64) {
	h := Hash
	n := len(keys) &^ 3
	for i := 0; i < n; i += 4 {
		res[i] = h(keys[i])
		res[i+1] = h(keys[i+1])
		res[i+2] = h(keys[i+2])
		res[i+3] = h(keys[i+3])
	}
	for i := n; i < len(keys); i++ {
		res[i] = h(keys[i])
	}
}

// MapPack2x32Sel packs two 32-bit columns into packed 64-bit keys
// (lo | hi<<32) through a selection vector.
func MapPack2x32Sel[T ~int32, U ~int32](loCol []T, hiCol []U, sel []int32, res []uint64) {
	for i, s := range sel {
		res[i] = uint64(uint32(loCol[s])) | uint64(uint32(hiCol[s]))<<32
	}
}

// MapPack2x32 is the dense variant of MapPack2x32Sel.
func MapPack2x32[T ~int32, U ~int32](loCol []T, hiCol []U, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = uint64(uint32(loCol[i])) | uint64(uint32(hiCol[i]))<<32
	}
}

// MapWiden widens an ordered column to uint64 keys through sel.
func MapWidenSel[T ~int32 | ~uint32](col []T, sel []int32, res []uint64) {
	for i, s := range sel {
		res[i] = uint64(uint32(col[s]))
	}
}

// MapWiden widens a dense ordered column to uint64 keys.
func MapWiden[T ~int32 | ~uint32](col []T, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = uint64(uint32(col[i]))
	}
}

// MapRsubConst computes res[i] = c - col[i] (e.g. 100 - discount).
func MapRsubConst[T ~int64](col []T, c int64, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = c - int64(col[i])
	}
}

// MapRsubConstSel computes res[i] = c - col[sel[i]], densifying.
func MapRsubConstSel[T ~int64](col []T, c int64, sel []int32, res []int64) {
	for i, s := range sel {
		res[i] = c - int64(col[s])
	}
}

// MapAddConst computes res[i] = c + col[i].
func MapAddConst[T ~int64](col []T, c int64, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = c + int64(col[i])
	}
}

// MapMul computes res[i] = a[i] * b[i] over dense vectors.
func MapMul(a, b []int64, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = a[i] * b[i]
	}
}

// MapMulColSel computes res[i] = col[sel[i]] * b[i] (sparse × dense).
func MapMulColSel[T ~int64](col []T, sel []int32, b []int64, res []int64) {
	for i, s := range sel {
		res[i] = int64(col[s]) * b[i]
	}
}

// MapMulColsSel computes res[i] = a[sel[i]] * b[sel[i]] (sparse × sparse).
func MapMulColsSel[T ~int64, U ~int64](a []T, b []U, sel []int32, res []int64) {
	for i, s := range sel {
		res[i] = int64(a[s]) * int64(b[s])
	}
}

// MapMulCols computes res[i] = a[i] * b[i] over dense column windows.
func MapMulCols[T ~int64, U ~int64](a []T, b []U, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = int64(a[i]) * int64(b[i])
	}
}

// MapU64FromI64 re-types a dense int64-width vector as uint64 words
// (payload scatter of signed values).
func MapU64FromI64[T ~int64](col []T, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = uint64(int64(col[i]))
	}
}

// MapU64FromI64Sel densifies an int64-width column as uint64 words
// through a selection vector.
func MapU64FromI64Sel[T ~int64](col []T, sel []int32, res []uint64) {
	for i, s := range sel {
		res[i] = uint64(int64(col[s]))
	}
}

// MapSub computes res[i] = a[i] - b[i].
func MapSub(a, b []int64, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = a[i] - b[i]
	}
}

// FetchI32 densifies col through positions: res[i] = col[pos[i]].
func FetchI32[T ~int32](col []T, pos []int32, res []int32) {
	for i, s := range pos {
		res[i] = int32(col[s])
	}
}

// FetchI64 densifies an int64-width column through positions.
func FetchI64[T ~int64](col []T, pos []int32, res []int64) {
	for i, s := range pos {
		res[i] = int64(col[s])
	}
}

// ComposePos composes two position vectors: res[i] = outer[inner[i]].
// Used to map match positions of a second join back to base-window
// positions.
func ComposePos(outer, inner []int32, res []int32) {
	for i, s := range inner {
		res[i] = outer[s]
	}
}

// FetchU64 densifies a uint64 vector through positions.
func FetchU64(vals []uint64, pos []int32, res []uint64) {
	for i, s := range pos {
		res[i] = vals[s]
	}
}

// MapPack2x8Sel packs two byte columns into keys (a<<8 | b) through sel.
func MapPack2x8Sel(a, b []byte, sel []int32, res []uint64) {
	for i, s := range sel {
		res[i] = uint64(a[s])<<8 | uint64(b[s])
	}
}

// MapCopyI64 materializes an int64-width column window into a dense
// vector (identity projection — the explicit copy is the vectorized
// engine's materialization cost).
func MapCopyI64[T ~int64](col []T, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = int64(col[i])
	}
}

// MapYearSel extracts the calendar year of dates[sel[i]].
func MapYearSel[T ~int32](dates []T, sel []int32, res []int64) {
	for i, s := range sel {
		res[i] = int64(yearOfDays(int32(dates[s])))
	}
}

// yearOfDays computes the Gregorian year for days since 1970-01-01
// (matches types.Date.Year; duplicated so the primitive is
// self-contained and inlinable).
func yearOfDays(z32 int32) int {
	z := int(z32) + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	if mp >= 10 {
		return y + 1
	}
	return y
}

// MapPackLoHi packs res[i] = uint32(lo[i]) | hi[i]<<32.
func MapPackLoHi(lo []int64, hi []uint64, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = uint64(uint32(lo[i])) | hi[i]<<32
	}
}

// MapPackU64LoHi packs res[i] = uint32(lo[i]) | hi[i]<<32 over two
// uint64 vectors (group keys built from gathered dimension payloads).
func MapPackU64LoHi(lo, hi []uint64, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = uint64(uint32(lo[i])) | hi[i]<<32
	}
}

// MapPack3 packs res[i] = a[i]<<40 | b[i]<<32 | uint32(c[i]) (SSB Q3.1's
// (c_nation, s_nation, year) group key).
func MapPack3(a, b, c []uint64, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = a[i]<<40 | b[i]<<32 | uint64(uint32(c[i]))
	}
}

// SumI64 reduces a dense vector to its sum.
func SumI64(vals []int64, n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += vals[i]
	}
	return sum
}

// GatherWord gathers payload word w of each entry into res.
func GatherWord(ht *hashtable.Table, refs []hashtable.Ref, w int, n int, res []uint64) {
	for i := 0; i < n; i++ {
		res[i] = ht.Word(refs[i], w)
	}
}

// GatherWordI64 gathers payload word w as int64.
func GatherWordI64(ht *hashtable.Table, refs []hashtable.Ref, w int, n int, res []int64) {
	for i := 0; i < n; i++ {
		res[i] = int64(ht.Word(refs[i], w))
	}
}
