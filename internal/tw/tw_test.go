package tw

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/ssb"
	"paradigms/internal/tpch"
	"paradigms/internal/vector"
)

func TestTPCHMatchesReference(t *testing.T) {
	// Q6, Q3, Q18 (and Q5) are plan-assembled and tested in
	// internal/plan; only the monolithic queries remain here.
	for _, sf := range []float64{0.01, 0.05} {
		db := tpch.Generate(sf, 0)
		for _, threads := range []int{1, 4} {
			for _, vec := range []int{1000} {
				if got, want := Q1(db, threads, vec), queries.RefQ1(db); !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v t=%d Q1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
				}
				if got, want := Q9(db, threads, vec), queries.RefQ9(db); !reflect.DeepEqual(got, want) {
					t.Errorf("sf=%v t=%d Q9 mismatch (%d vs %d rows)", sf, threads, len(got), len(want))
				}
			}
		}
	}
}

func TestVectorSizesProduceIdenticalResults(t *testing.T) {
	// Fig. 5 sweeps vector sizes from 1 to full materialization; results
	// must be identical at every size.
	db := tpch.Generate(0.02, 0)
	wantQ1 := queries.RefQ1(db)
	wantQ9 := queries.RefQ9(db)
	for _, vec := range []int{1, 7, 64, 1000, 65536, db.Rel("lineitem").Rows()} {
		if got := Q1(db, 2, vec); !reflect.DeepEqual(got, wantQ1) {
			t.Errorf("vec=%d Q1 mismatch", vec)
		}
		if got := Q9(db, 2, vec); !reflect.DeepEqual(got, wantQ9) {
			t.Errorf("vec=%d Q9 mismatch", vec)
		}
	}
}

func TestSSBMatchesReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := ssb.Generate(sf, 0)
		for _, threads := range []int{1, 4} {
			if got, want := SSBQ11(db, threads, 0), queries.RefSSBQ11(db); got != want {
				t.Errorf("sf=%v t=%d Q1.1 = %d, want %d", sf, threads, got, want)
			}
			if got, want := SSBQ31(db, threads, 0), queries.RefSSBQ31(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v t=%d Q3.1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
			if got, want := SSBQ41(db, threads, 0), queries.RefSSBQ41(db); !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v t=%d Q4.1 mismatch:\n got %v\nwant %v", sf, threads, got, want)
			}
		}
	}
}

func TestScanServesWholeRelationOnce(t *testing.T) {
	disp := newTestDispatcher(10_000)
	scan := NewScan(disp, 333)
	seen := make([]bool, 10_000)
	for {
		n := scan.Next()
		if n == 0 {
			break
		}
		for i := scan.Base; i < scan.Base+n; i++ {
			if seen[i] {
				t.Fatalf("tuple %d served twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("tuple %d never served", i)
		}
	}
}

func TestScanVectorsRespectSizeAndMorsels(t *testing.T) {
	disp := newTestDispatcher(1000)
	scan := NewScan(disp, vector.DefaultSize)
	n := scan.Next()
	if n != 1000 {
		t.Fatalf("first vector = %d", n)
	}
	if scan.Next() != 0 {
		t.Fatal("scan did not exhaust")
	}
}
