package tw

import (
	"testing"
	"testing/quick"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/types"
)

func newTestDispatcher(n int) *exec.Dispatcher { return exec.NewDispatcher(n, 0) }

func TestSelPrimitivesAgainstNaive(t *testing.T) {
	f := func(data []int64, pivot int64) bool {
		res := make([]int32, len(data))
		k := SelGE(data, pivot, res)
		naive := 0
		for i, v := range data {
			if v >= pivot {
				if res[naive] != int32(i) {
					return false
				}
				naive++
			}
		}
		return k == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelSelVariantsAgainstNaive(t *testing.T) {
	f := func(data []int64, loRaw, hiRaw int64) bool {
		lo, hi := loRaw, hiRaw
		if lo > hi {
			lo, hi = hi, lo
		}
		sel := make([]int32, len(data))
		res := make([]int32, len(data))
		tmp := make([]int32, len(data))
		k := SelGE(data, lo, sel)
		k = SelLESel(data, hi, sel[:k], res)
		// Equivalent range primitive over a dense iota.
		for i := range tmp {
			tmp[i] = int32(i)
		}
		res2 := make([]int32, len(data))
		k2 := SelRangeSel(data, lo, hi, tmp, res2)
		if k != k2 {
			return false
		}
		for i := 0; i < k; i++ {
			if res[i] != res2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeAndFetch(t *testing.T) {
	col := []int64{10, 20, 30, 40, 50}
	outer := []int32{4, 2, 0}
	inner := []int32{2, 0}
	res := make([]int32, 2)
	ComposePos(outer, inner, res)
	if res[0] != 0 || res[1] != 4 {
		t.Fatalf("ComposePos = %v", res)
	}
	out := make([]int64, 2)
	FetchI64(col, res, out)
	if out[0] != 10 || out[1] != 50 {
		t.Fatalf("FetchI64 = %v", out)
	}
}

func TestMapYearSelMatchesTypes(t *testing.T) {
	dates := make([]types.Date, 0, 3000)
	for d := types.MakeDate(1992, 1, 1); d <= types.MakeDate(1998, 12, 31); d += 3 {
		dates = append(dates, d)
	}
	sel := make([]int32, len(dates))
	for i := range sel {
		sel[i] = int32(i)
	}
	res := make([]int64, len(dates))
	MapYearSel(dates, sel, res)
	for i, d := range dates {
		if int(res[i]) != d.Year() {
			t.Fatalf("year(%v) = %d, want %d", d, res[i], d.Year())
		}
	}
}

func TestProbeFindsAllDuplicates(t *testing.T) {
	ht := hashtable.New(2, 1)
	sh := ht.Shard(0)
	// Three entries with key 7, one with key 8.
	for i := 0; i < 3; i++ {
		h := Hash(7)
		ref, _ := sh.Alloc(ht, h)
		ht.SetWord(ref, 0, 7)
		ht.SetWord(ref, 1, uint64(100+i))
	}
	h8 := Hash(8)
	ref, _ := sh.Alloc(ht, h8)
	ht.SetWord(ref, 0, 8)
	ht.SetWord(ref, 1, 999)
	ht.Finalize()

	keys := []uint64{7, 8, 9}
	hashes := []uint64{Hash(7), Hash(8), Hash(9)}
	cand := make([]hashtable.Ref, 3)
	candPos := make([]int32, 3)
	mRefs := make([]hashtable.Ref, 16)
	mPos := make([]int32, 16)
	nm := Probe(ht, keys, hashes, 3, cand, candPos, mRefs, mPos)
	if nm != 4 {
		t.Fatalf("Probe found %d matches, want 4", nm)
	}
	counts := map[int32]int{}
	for i := 0; i < nm; i++ {
		counts[mPos[i]]++
	}
	if counts[0] != 3 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("match distribution = %v", counts)
	}
}

func TestGroupByConsumeAndMerge(t *testing.T) {
	const workers = 1
	spill := hashtable.NewSpill(workers, aggPartitions, 3)
	ops := []hashtable.AggOp{hashtable.OpSum}
	gb := NewGroupBy(spill, 0, ops, 8)

	keys := []uint64{1, 2, 1, 3, 2, 1}
	hashes := make([]uint64, len(keys))
	MapHashU64(keys, hashes)
	vals := [][]int64{{10, 20, 30, 40, 50, 60}}
	gb.Consume(len(keys), keys, hashes, vals)
	gb.Flush()

	got := map[uint64]int64{}
	for p := 0; p < aggPartitions; p++ {
		hashtable.MergeSpill(spill, p, ops, func(row []uint64) {
			got[row[1]] += int64(row[2])
		})
	}
	want := map[uint64]int64{1: 100, 2: 70, 3: 40}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %d = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
}

func TestGroupBySpillOverflow(t *testing.T) {
	// More distinct keys than preAggCapacity forces the spill path.
	spill := hashtable.NewSpill(1, aggPartitions, 3)
	ops := []hashtable.AggOp{hashtable.OpSum}
	const vecLen = 1024
	gb := NewGroupBy(spill, 0, ops, vecLen)
	keys := make([]uint64, vecLen)
	hashes := make([]uint64, vecLen)
	vals := [][]int64{make([]int64, vecLen)}
	total := 0
	for base := 0; base < 3*preAggCapacity; base += vecLen {
		for i := 0; i < vecLen; i++ {
			keys[i] = uint64(base + i)
			vals[0][i] = 1
		}
		MapHashU64(keys, hashes)
		gb.Consume(vecLen, keys, hashes, vals)
		total += vecLen
	}
	gb.Flush()
	groups := 0
	var sum int64
	for p := 0; p < aggPartitions; p++ {
		hashtable.MergeSpill(spill, p, ops, func(row []uint64) {
			groups++
			sum += int64(row[2])
		})
	}
	if groups != 3*preAggCapacity {
		t.Fatalf("groups = %d, want %d", groups, 3*preAggCapacity)
	}
	if sum != int64(total) {
		t.Fatalf("sum = %d, want %d", sum, total)
	}
}

func TestSumI64(t *testing.T) {
	f := func(vals []int64) bool {
		var want int64
		for _, v := range vals {
			want += v
		}
		return SumI64(vals, len(vals)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapPrimitives(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{10, 20, 30}
	res := make([]int64, 3)
	MapMul(a, b, 3, res)
	if res[0] != 10 || res[2] != 90 {
		t.Fatalf("MapMul = %v", res)
	}
	MapSub(b, a, 3, res)
	if res[0] != 9 || res[2] != 27 {
		t.Fatalf("MapSub = %v", res)
	}
	MapRsubConst(a, 100, 3, res)
	if res[0] != 99 || res[2] != 97 {
		t.Fatalf("MapRsubConst = %v", res)
	}
	MapAddConst(a, 5, 3, res)
	if res[0] != 6 || res[2] != 8 {
		t.Fatalf("MapAddConst = %v", res)
	}
	packed := make([]uint64, 2)
	MapPack2x32([]int32{1, 2}, []int32{3, 4}, 2, packed)
	if packed[0] != (1|3<<32) || packed[1] != (2|4<<32) {
		t.Fatalf("MapPack2x32 = %x", packed)
	}
	MapPack2x8Sel([]byte{'R', 'A'}, []byte{'F', 'O'}, []int32{1, 0}, packed)
	if packed[0] != uint64('A')<<8|uint64('O') || packed[1] != uint64('R')<<8|uint64('F') {
		t.Fatalf("MapPack2x8Sel = %x", packed)
	}
}
