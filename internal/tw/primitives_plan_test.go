package tw

import "testing"

// Tests for the primitives added for the internal/plan operator layer.

func TestSelLUT(t *testing.T) {
	col := []int32{0, 2, 1, 2, 3}
	lut := []bool{false, true, true, false}
	res := make([]int32, len(col))
	k := SelLUT(col, lut, res)
	if k != 3 || res[0] != 1 || res[1] != 2 || res[2] != 3 {
		t.Fatalf("SelLUT = %d %v", k, res[:k])
	}
	sel := []int32{0, 3, 4}
	k = SelLUTSel(col, lut, sel, res)
	if k != 1 || res[0] != 3 {
		t.Fatalf("SelLUTSel = %d %v", k, res[:k])
	}
}

func TestSelEqCols(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	b := []uint64{1, 9, 3, 9}
	res := make([]int32, len(a))
	k := SelEqCols(a, b, len(a), res)
	if k != 2 || res[0] != 0 || res[1] != 2 {
		t.Fatalf("SelEqCols = %d %v", k, res[:k])
	}
}

func TestMapPackU64LoHi(t *testing.T) {
	lo := []uint64{0xAAAA_BBBB_0000_0001, 2}
	hi := []uint64{3, 4}
	res := make([]uint64, 2)
	MapPackU64LoHi(lo, hi, 2, res)
	// Low word is truncated to 32 bits before packing.
	if res[0] != (3<<32|0x0000_0001) || res[1] != (4<<32|2) {
		t.Fatalf("MapPackU64LoHi = %x", res)
	}
}
