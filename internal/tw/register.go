package tw

import (
	"context"

	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

// The monolithic vectorized queries register themselves with the query
// registry; the declarative-plan queries (Q3, Q6, Q18, Q2.1, Q5) register
// from internal/plan, which assembles this package's primitives instead
// of hand-rolling a pipeline per query.

// runner adapts a *Ctx query to the registry's Runner shape.
func runner[T any](f func(context.Context, *storage.Database, int, int) T) registry.Runner {
	return func(ctx context.Context, db *storage.Database, opt registry.Options) any {
		return f(ctx, db, opt.Workers, opt.VectorSize)
	}
}

func init() {
	registry.Register(registry.Tectorwise, "tpch", "Q1", runner(Q1Ctx))
	registry.Register(registry.Tectorwise, "tpch", "Q9", runner(Q9Ctx))
	registry.Register(registry.Tectorwise, "ssb", "Q1.1", runner(SSBQ11Ctx))
	registry.Register(registry.Tectorwise, "ssb", "Q3.1", runner(SSBQ31Ctx))
	registry.Register(registry.Tectorwise, "ssb", "Q4.1", runner(SSBQ41Ctx))
}
