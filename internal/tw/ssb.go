package tw

import (
	"context"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/vector"
)

// Monolithic vectorized pipelines for the SSB subset (§4.4): lineorder
// probes filtered dimension hash tables, densifying between joins.
// Q2.1 is ported to internal/plan as a declarative operator plan.

// buildDimHT materializes a filtered dimension into a shared hash table:
// selFn computes the qualifying selection for the current vector; keyCol
// is the dimension key; valCol (may be nil) is a payload attribute.
func buildDimHT(ht *hashtable.Table, disp *exec.Dispatcher, bar *exec.Barrier,
	wid, vec int,
	selFn func(b, n int, sel []int32) int,
	keyFn func(b int, n int, sel []int32, k int, keys []uint64),
	valFn func(b int, n int, sel []int32, k int, vals []uint64)) {

	bufs := vector.NewBuffers(vec)
	sel := bufs.Sel()
	keys := bufs.Ref()
	hashes := bufs.Ref()
	vals := bufs.Ref()
	scan := NewScan(disp, vec)
	sh := ht.Shard(wid)
	for {
		n := scan.Next()
		if n == 0 {
			break
		}
		b := scan.Base
		k := selFn(b, n, sel)
		if k == 0 {
			continue
		}
		keyFn(b, n, sel, k, keys)
		MapHashU64(keys[:k], hashes)
		base := sh.AllocN(ht, k)
		ScatterHashes(ht, base, hashes, k)
		ScatterWord(ht, base, 0, keys, k)
		if valFn != nil {
			valFn(b, n, sel, k, vals)
			ScatterWord(ht, base, 1, vals, k)
		}
	}
	BuildBarrier(ht, bar, wid)
}

// SSBQ11Ctx executes SSB Q1.1.
func SSBQ11Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.SSBQ11Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	lo := db.Rel("lineorder")
	od := lo.Date("lo_orderdate")
	disc := lo.Numeric("lo_discount")
	qty := lo.Numeric("lo_quantity")
	ext := lo.Numeric("lo_extendedprice")

	htDate := hashtable.New(1, w)
	dispDate := exec.NewDispatcherCtx(ctx, date.Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	bar := exec.NewBarrier(w)
	partial := make([]int64, w)

	exec.Parallel(w, func(wid int) {
		buildDimHT(htDate, dispDate, bar, wid, vec,
			func(b, n int, sel []int32) int {
				return SelEq(dy[b:b+n], queries.SSBQ11Year, sel)
			},
			func(b, n int, sel []int32, k int, keys []uint64) {
				MapWidenSel(dk[b:b+n], sel[:k], keys)
			},
			nil)

		bufs := vector.NewBuffers(vec)
		sel1 := bufs.Sel()
		sel2 := bufs.Sel()
		absPos := bufs.Sel()
		keys := bufs.Ref()
		hashes := bufs.Ref()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		mRefs := make([]hashtable.Ref, vec)
		mPos := bufs.Sel()
		prod := bufs.I64()
		scan := NewScan(dispFact, vec)
		var sum int64
		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			k := SelGE(disc[b:b+n], queries.SSBQ11DiscLo, sel1)
			k = SelLESel(disc[b:b+n], queries.SSBQ11DiscHi, sel1[:k], sel2)
			k = SelLTSel(qty[b:b+n], queries.SSBQ11Qty, sel2[:k], sel1)
			if k == 0 {
				continue
			}
			MapWidenSel(od[b:b+n], sel1[:k], keys)
			MapHashU64(keys[:k], hashes)
			nm := Probe(htDate, keys, hashes, k, cand, candPos, mRefs, mPos)
			if nm == 0 {
				continue
			}
			ComposePos(sel1, mPos[:nm], absPos)
			MapMulColsSel(ext[b:b+n], disc[b:b+n], absPos[:nm], prod)
			sum += SumI64(prod, nm)
		}
		partial[wid] = sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return queries.SSBQ11Result(total)
}

// SSBQ31Ctx executes SSB Q3.1.
func SSBQ31Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.SSBQ31Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	cust := db.Rel("customer")
	ck := cust.Int32("c_custkey")
	cregion := cust.Int32("c_region")
	cnation := cust.Int32("c_nation")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	snation := supp.Int32("s_nation")
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	lo := db.Rel("lineorder")
	lock := lo.Int32("lo_custkey")
	losk := lo.Int32("lo_suppkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")

	htCust := hashtable.New(2, w)
	htSupp := hashtable.New(2, w)
	htDate := hashtable.New(2, w)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispDate := exec.NewDispatcherCtx(ctx, date.Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.SSBQ31Result, w)

	exec.Parallel(w, func(wid int) {
		buildDimHT(htCust, dispCust, bar, wid, vec,
			func(b, n int, sel []int32) int { return SelEq(cregion[b:b+n], queries.SSBQ31Region, sel) },
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(ck[b:b+n], sel[:k], keys) },
			func(b, n int, sel []int32, k int, vals []uint64) { MapWidenSel(cnation[b:b+n], sel[:k], vals) })
		buildDimHT(htSupp, dispSupp, bar, wid, vec,
			func(b, n int, sel []int32) int { return SelEq(sregion[b:b+n], queries.SSBQ31Region, sel) },
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(sk[b:b+n], sel[:k], keys) },
			func(b, n int, sel []int32, k int, vals []uint64) { MapWidenSel(snation[b:b+n], sel[:k], vals) })
		buildDimHT(htDate, dispDate, bar, wid, vec,
			func(b, n int, sel []int32) int {
				return SelRangeSel(dy[b:b+n], queries.SSBQ31YearLo, queries.SSBQ31YearHi,
					vector.Iota(sel, n), sel)
			},
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(dk[b:b+n], sel[:k], keys) },
			func(b, n int, sel []int32, k int, vals []uint64) { MapWidenSel(dy[b:b+n], sel[:k], vals) })

		bufs := vector.NewBuffers(vec)
		keys := bufs.Ref()
		hashes := bufs.Ref()
		keys2 := bufs.Ref()
		hashes2 := bufs.Ref()
		keys3 := bufs.Ref()
		hashes3 := bufs.Ref()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		m1Refs := make([]hashtable.Ref, vec)
		m1Pos := bufs.Sel()
		m2Refs := make([]hashtable.Ref, vec)
		m2Pos := bufs.Sel()
		m3Refs := make([]hashtable.Ref, vec)
		m3Pos := bufs.Sel()
		abs2 := bufs.Sel()
		abs3 := bufs.Sel()
		cn1 := bufs.Ref()
		cn2 := bufs.Ref()
		cn3 := bufs.Ref()
		sn2 := bufs.Ref()
		sn3 := bufs.Ref()
		yr3 := bufs.Ref()
		gkeys := bufs.Ref()
		ghashes := bufs.Ref()
		revv := bufs.I64()
		gb := NewGroupBy(spill, wid, ops, vec)
		vals := [][]int64{revv}

		scan := NewScan(dispFact, vec)
		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			MapWiden(lock[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm1 := Probe(htCust, keys, hashes, n, cand, candPos, m1Refs, m1Pos)
			if nm1 == 0 {
				continue
			}
			GatherWord(htCust, m1Refs, 1, nm1, cn1)
			MapWidenSel(losk[b:b+n], m1Pos[:nm1], keys2)
			MapHashU64(keys2[:nm1], hashes2)
			nm2 := Probe(htSupp, keys2, hashes2, nm1, cand, candPos, m2Refs, m2Pos)
			if nm2 == 0 {
				continue
			}
			GatherWord(htSupp, m2Refs, 1, nm2, sn2)
			ComposePos(m1Pos, m2Pos[:nm2], abs2)
			FetchU64(cn1, m2Pos[:nm2], cn2)
			MapWidenSel(lod[b:b+n], abs2[:nm2], keys3)
			MapHashU64(keys3[:nm2], hashes3)
			nm3 := Probe(htDate, keys3, hashes3, nm2, cand, candPos, m3Refs, m3Pos)
			if nm3 == 0 {
				continue
			}
			GatherWord(htDate, m3Refs, 1, nm3, yr3)
			ComposePos(abs2, m3Pos[:nm3], abs3)
			FetchU64(cn2, m3Pos[:nm3], cn3)
			FetchU64(sn2, m3Pos[:nm3], sn3)
			MapPack3(cn3, sn3, yr3, nm3, gkeys)
			MapHashU64(gkeys[:nm3], ghashes)
			FetchI64(rev[b:b+n], abs3[:nm3], revv)
			gb.Consume(nm3, gkeys, ghashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				results[wid] = append(results[wid], queries.SSBQ31Row{
					CNation: int32(row[1] >> 40 & 0xff),
					SNation: int32(row[1] >> 32 & 0xff),
					Year:    int32(uint32(row[1])),
					Revenue: int64(row[2]),
				})
			})
		}
	})

	var out queries.SSBQ31Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortSSBQ31(out)
	return out
}

// SSBQ41Ctx executes SSB Q4.1.
func SSBQ41Ctx(ctx context.Context, db *storage.Database, nWorkers, vecSize int) queries.SSBQ41Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	cust := db.Rel("customer")
	ck := cust.Int32("c_custkey")
	cregion := cust.Int32("c_region")
	cnation := cust.Int32("c_nation")
	supp := db.Rel("supplier")
	sk := supp.Int32("s_suppkey")
	sregion := supp.Int32("s_region")
	part := db.Rel("part")
	pk := part.Int32("p_partkey")
	mfgr := part.Int32("p_mfgr")
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	lo := db.Rel("lineorder")
	lock := lo.Int32("lo_custkey")
	losk := lo.Int32("lo_suppkey")
	lopk := lo.Int32("lo_partkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")
	cost := lo.Numeric("lo_supplycost")

	htCust := hashtable.New(2, w)
	htSupp := hashtable.New(1, w)
	htPart := hashtable.New(1, w)
	htDate := hashtable.New(2, w)
	dispCust := exec.NewDispatcherCtx(ctx, cust.Rows(), 0)
	dispSupp := exec.NewDispatcherCtx(ctx, supp.Rows(), 0)
	dispPart := exec.NewDispatcherCtx(ctx, part.Rows(), 0)
	dispDate := exec.NewDispatcherCtx(ctx, date.Rows(), 0)
	dispFact := exec.NewDispatcherCtx(ctx, lo.Rows(), 0)
	ops := []hashtable.AggOp{hashtable.OpSum}
	spill := hashtable.NewSpill(w, aggPartitions, 2+len(ops))
	partDisp := exec.NewDispatcherCtx(ctx, aggPartitions, 1)
	bar := exec.NewBarrier(w)
	results := make([]queries.SSBQ41Result, w)

	exec.Parallel(w, func(wid int) {
		buildDimHT(htCust, dispCust, bar, wid, vec,
			func(b, n int, sel []int32) int { return SelEq(cregion[b:b+n], queries.SSBQ41Region, sel) },
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(ck[b:b+n], sel[:k], keys) },
			func(b, n int, sel []int32, k int, vals []uint64) { MapWidenSel(cnation[b:b+n], sel[:k], vals) })
		buildDimHT(htSupp, dispSupp, bar, wid, vec,
			func(b, n int, sel []int32) int { return SelEq(sregion[b:b+n], queries.SSBQ41Region, sel) },
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(sk[b:b+n], sel[:k], keys) },
			nil)
		buildDimHT(htPart, dispPart, bar, wid, vec,
			func(b, n int, sel []int32) int {
				return SelRangeSel(mfgr[b:b+n], queries.SSBQ41MfgrLo, queries.SSBQ41MfgrHi,
					vector.Iota(sel, n), sel)
			},
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(pk[b:b+n], sel[:k], keys) },
			nil)
		buildDimHT(htDate, dispDate, bar, wid, vec,
			func(b, n int, sel []int32) int { return SelGE(dy[b:b+n], int32(0), sel) },
			func(b, n int, sel []int32, k int, keys []uint64) { MapWidenSel(dk[b:b+n], sel[:k], keys) },
			func(b, n int, sel []int32, k int, vals []uint64) { MapWidenSel(dy[b:b+n], sel[:k], vals) })

		bufs := vector.NewBuffers(vec)
		keys := bufs.Ref()
		hashes := bufs.Ref()
		keys2 := bufs.Ref()
		hashes2 := bufs.Ref()
		keys3 := bufs.Ref()
		hashes3 := bufs.Ref()
		keys4 := bufs.Ref()
		hashes4 := bufs.Ref()
		cand := make([]hashtable.Ref, vec)
		candPos := bufs.Sel()
		m1Refs := make([]hashtable.Ref, vec)
		m1Pos := bufs.Sel()
		m2Refs := make([]hashtable.Ref, vec)
		m2Pos := bufs.Sel()
		m3Refs := make([]hashtable.Ref, vec)
		m3Pos := bufs.Sel()
		m4Refs := make([]hashtable.Ref, vec)
		m4Pos := bufs.Sel()
		abs2 := bufs.Sel()
		abs3 := bufs.Sel()
		abs4 := bufs.Sel()
		cn1 := bufs.Ref()
		cn2 := bufs.Ref()
		cn3 := bufs.Ref()
		cn4 := bufs.Ref()
		yr4 := bufs.Ref()
		gkeys := bufs.Ref()
		ghashes := bufs.Ref()
		revv := bufs.I64()
		costv := bufs.I64()
		profit := bufs.I64()
		gb := NewGroupBy(spill, wid, ops, vec)
		vals := [][]int64{profit}

		scan := NewScan(dispFact, vec)
		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			MapWiden(lock[b:b+n], n, keys)
			MapHashU64(keys[:n], hashes)
			nm1 := Probe(htCust, keys, hashes, n, cand, candPos, m1Refs, m1Pos)
			if nm1 == 0 {
				continue
			}
			GatherWord(htCust, m1Refs, 1, nm1, cn1)
			MapWidenSel(losk[b:b+n], m1Pos[:nm1], keys2)
			MapHashU64(keys2[:nm1], hashes2)
			nm2 := Probe(htSupp, keys2, hashes2, nm1, cand, candPos, m2Refs, m2Pos)
			if nm2 == 0 {
				continue
			}
			ComposePos(m1Pos, m2Pos[:nm2], abs2)
			FetchU64(cn1, m2Pos[:nm2], cn2)
			MapWidenSel(lopk[b:b+n], abs2[:nm2], keys3)
			MapHashU64(keys3[:nm2], hashes3)
			nm3 := Probe(htPart, keys3, hashes3, nm2, cand, candPos, m3Refs, m3Pos)
			if nm3 == 0 {
				continue
			}
			ComposePos(abs2, m3Pos[:nm3], abs3)
			FetchU64(cn2, m3Pos[:nm3], cn3)
			MapWidenSel(lod[b:b+n], abs3[:nm3], keys4)
			MapHashU64(keys4[:nm3], hashes4)
			nm4 := Probe(htDate, keys4, hashes4, nm3, cand, candPos, m4Refs, m4Pos)
			if nm4 == 0 {
				continue
			}
			GatherWord(htDate, m4Refs, 1, nm4, yr4)
			ComposePos(abs3, m4Pos[:nm4], abs4)
			FetchU64(cn3, m4Pos[:nm4], cn4)
			// gkey = year | c_nation<<32
			for i := 0; i < nm4; i++ {
				gkeys[i] = yr4[i] | cn4[i]<<32
			}
			MapHashU64(gkeys[:nm4], ghashes)
			FetchI64(rev[b:b+n], abs4[:nm4], revv)
			FetchI64(cost[b:b+n], abs4[:nm4], costv)
			MapSub(revv, costv, nm4, profit)
			gb.Consume(nm4, gkeys, ghashes, vals)
		}
		gb.Flush()
		bar.Wait(nil)

		for {
			pm, ok := partDisp.Next()
			if !ok {
				break
			}
			hashtable.MergeSpill(spill, pm.Begin, ops, func(row []uint64) {
				results[wid] = append(results[wid], queries.SSBQ41Row{
					Year:    int32(uint32(row[1])),
					CNation: int32(uint32(row[1] >> 32)),
					Profit:  int64(row[2]),
				})
			})
		}
	})

	var out queries.SSBQ41Result
	for _, r := range results {
		out = append(out, r...)
	}
	queries.SortSSBQ41(out)
	return out
}
