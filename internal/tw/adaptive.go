package tw

import (
	"paradigms/internal/exec"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/vector"
)

// Q1Adaptive is the micro-adaptive ordered aggregation of §8.4: when a
// vector contains few distinct groups (Q1 has four), the operator
// partitions the vector into one selection vector per group and turns
// hash aggregation into ordered aggregation — per-group running sums stay
// in registers and the hash table is updated once per vector instead of
// once per tuple. VectorWise uses exactly this optimization to beat
// Tectorwise on Q1 (Table 2 discussion).
//
// The adaptive check (did partitioning succeed with few groups?) is
// trivial here because Q1's group domain is known small; the exponential
// back-off of the real system is unnecessary. The ablation bench compares
// this operator against the generic hash aggregation of Q1.
func Q1Adaptive(db *storage.Database, nWorkers, vecSize int) queries.Q1Result {
	w := workers(nWorkers)
	vec := vecOrDefault(vecSize)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	cutoff := queries.Q1Cutoff

	// The four feasible groups: AF, NF, NO, RF.
	groupKeys := []uint64{'A'<<8 | 'F', 'N'<<8 | 'F', 'N'<<8 | 'O', 'R'<<8 | 'F'}
	groupIdx := map[uint64]int{}
	for i, k := range groupKeys {
		groupIdx[k] = i
	}

	disp := exec.NewDispatcher(li.Rows(), 0)
	partials := make([][4]queries.Q1Row, w)
	exec.Parallel(w, func(wid int) {
		scan := NewScan(disp, vec)
		bufs := vector.NewBuffers(vec)
		sel := bufs.Sel()
		groupSels := [4][]int32{bufs.Sel(), bufs.Sel(), bufs.Sel(), bufs.Sel()}
		e := bufs.I64()
		d100 := bufs.I64()
		dp := bufs.I64()
		t100 := bufs.I64()
		charge := bufs.I64()
		var acc [4]queries.Q1Row
		for {
			n := scan.Next()
			if n == 0 {
				break
			}
			b := scan.Base
			k := SelLE(ship[b:b+n], cutoff, sel)
			if k == 0 {
				continue
			}
			// Partition the vector into per-group selection vectors.
			var counts [4]int
			for _, s := range sel[:k] {
				g := groupIdx[uint64(rf[b+int(s)])<<8|uint64(ls[b+int(s)])]
				groupSels[g][counts[g]] = s
				counts[g]++
			}
			// Ordered aggregation per group: primitives over the group's
			// selection vector, sums reduced into registers.
			for g := 0; g < 4; g++ {
				gn := counts[g]
				if gn == 0 {
					continue
				}
				gs := groupSels[g][:gn]
				FetchI64(ext[b:b+n], gs, e)
				MapRsubConstSel(disc[b:b+n], 100, gs, d100)
				MapMul(e, d100, gn, dp)
				FetchI64(tax[b:b+n], gs, t100)
				MapAddConst(t100, 100, gn, t100)
				MapMul(dp, t100, gn, charge)
				a := &acc[g]
				a.SumBase += SumI64(e, gn)
				a.SumDisc += SumI64(dp, gn)
				a.SumCharge += SumI64(charge, gn)
				FetchI64(qty[b:b+n], gs, e)
				a.SumQty += SumI64(e, gn)
				FetchI64(disc[b:b+n], gs, e)
				a.SumDiscnt += SumI64(e, gn)
				a.Count += int64(gn)
			}
		}
		partials[wid] = acc
	})

	var out queries.Q1Result
	for g, key := range groupKeys {
		var row queries.Q1Row
		row.ReturnFlag = byte(key >> 8)
		row.LineStatus = byte(key)
		for _, p := range partials {
			row.SumQty += p[g].SumQty
			row.SumBase += p[g].SumBase
			row.SumDisc += p[g].SumDisc
			row.SumCharge += p[g].SumCharge
			row.SumDiscnt += p[g].SumDiscnt
			row.Count += p[g].Count
		}
		if row.Count > 0 {
			out = append(out, row)
		}
	}
	queries.SortQ1(out)
	return out
}
