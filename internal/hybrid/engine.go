// Package hybrid is the per-pipeline mixed-paradigm executor — the
// plan-driven generalization of the paper's relaxed-operator-fusion
// observation (§9.1) that neither compiled nor vectorized execution
// dominates: probe-heavy pipelines want vector-at-a-time access (full
// memory parallelism across a batch of cache-missing lookups), while
// compute-dominated pipelines want fused tuple-at-a-time loops (no
// materialization of intermediates).
//
// Both lowering backends decompose a query into the *same* pipelines
// (internal/logical's vectorized lowering and internal/compiled's
// fused lowering recurse over one optimized plan with one
// deterministic column order, so hash-table layouts match word for
// word). This executor lowers a plan on both backends, assigns every
// pipeline to an engine — by cost heuristic, or by a Router fed with
// per-pipeline latencies — and runs the pipelines in dependency order,
// exchanging data through the materialization boundaries that already
// exist: shared hash tables (standardized on the compiled backend's
// Mix64 hash so either engine can build what the other probes) and the
// shared aggregation spill. All workers run a given pipeline on the
// same engine, so engine-local state (aggregation hashing, vector
// buffers) never crosses paradigms.
//
// Vectorized pipelines additionally pick their vector size
// micro-adaptively (§8.4): each worker times a few batches at each
// candidate size and commits to the fastest, per pipeline.
package hybrid

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"paradigms/internal/compiled"
	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/logical"
	"paradigms/internal/obs"
	"paradigms/internal/plan"
	"paradigms/internal/registry"
	"paradigms/internal/simd"
	"paradigms/internal/storage"
	"paradigms/internal/tw"
	"paradigms/internal/vector"
)

// Spill layouts assume both backends partition aggregation spills
// identically (compile-time check).
var _ [compiled.AggPartitions - tw.AggPartitions]struct{}
var _ [tw.AggPartitions - compiled.AggPartitions]struct{}

// Engine selects the backend of one pipeline.
type Engine uint8

const (
	// EngineCompiled runs a pipeline as internal/compiled's fused
	// tuple-at-a-time loop.
	EngineCompiled Engine = iota
	// EngineVectorized runs a pipeline on internal/plan's vectorized
	// operators via internal/logical's lowering.
	EngineVectorized
)

// String renders the one-letter engine tag used in assignment suffixes
// ("t" for the fused Typer-style backend, "v" for vectorized).
func (e Engine) String() string {
	if e == EngineCompiled {
		return "t"
	}
	return "v"
}

// PipeMeta describes one pipeline for routing decisions: its spine
// table and cardinality, how many hash probes and filter conjuncts it
// runs, and whether it terminates in a hash-table build.
type PipeMeta struct {
	Table   string
	Rows    int
	Probes  int
	Filters int
	Build   bool
}

// Router chooses per-pipeline engine assignments and learns from
// observed latencies. Decide must return one Engine per pipeline (a
// short or nil answer falls back to CostAssign); Observe is called
// after a successful execution with the per-pipeline wall times.
type Router interface {
	Decide(meta []PipeMeta) []Engine
	Observe(assign []Engine, nanos []int64)
}

// CostAssign is the cold-start heuristic: probing *final* pipelines go
// vectorized (a batch of hash probes overlaps its cache misses, and
// the final pipeline scans the fact table, so probe stalls dominate
// it), while build pipelines and filter-only pipelines go compiled —
// a build ends in a materialization boundary either way, so the fused
// loop's zero intermediate cost wins even when the build itself
// probes. This seeds the Router's arms and is the whole policy when no
// Router is given.
func CostAssign(meta []PipeMeta) []Engine {
	out := make([]Engine, len(meta))
	for i, m := range meta {
		if m.Probes > 0 && !m.Build {
			out[i] = EngineVectorized
		} else {
			out[i] = EngineCompiled
		}
	}
	return out
}

// Report describes one hybrid execution: the engine each pipeline ran
// on, the vector size each vectorized pipeline settled on (0 for
// compiled pipelines), and each pipeline's wall time (max across
// workers).
type Report struct {
	Assign []Engine
	Vec    []int
	Nanos  []int64
}

// Suffix renders the assignment as "[t,v,...]" — the decoration
// appended to the engine name in EXPLAIN, \statsz, and EngineUsed.
func (r *Report) Suffix() string {
	parts := make([]string, len(r.Assign))
	for i, e := range r.Assign {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// JoinHash is the hash function of every join hash table a hybrid
// execution builds, on both backends: the compiled engine's Mix64,
// applied 4-way unrolled on the vectorized side. Standardizing the
// join hash is what lets a table built by one engine be probed by the
// other.
var JoinHash plan.HashFn = simd.HashMix64Unrolled

// vecCandidates are the micro-adaptive vector-size trial points
// (§8.4): small enough to stay L1-resident, large enough to amortize
// interpretation. Buffers are allocated at the largest candidate.
var vecCandidates = [...]int{256, 1024, 4096}

// trialBatches is how many batches each candidate size is timed for
// before committing.
const trialBatches = 4

// Run executes an ad-hoc SQL text end to end on the hybrid executor
// with the cost-heuristic assignment.
func Run(ctx context.Context, db *storage.Database, text string, nWorkers int) (res *logical.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hybrid: internal error executing query: %v", r)
		}
	}()
	pl, err := logical.Prepare(db, text)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, pl, nWorkers)
}

// Execute runs an optimized, fully bound plan with the cost-heuristic
// assignment and adaptive vector sizing.
func Execute(ctx context.Context, pl *logical.Plan, nWorkers int) (*logical.Result, error) {
	res, _, err := ExecuteRouted(ctx, pl, nWorkers, 0, nil)
	return res, err
}

// ExecuteArgs is Execute for parameterized plans (argument binding via
// the shared copy-on-write logical.BindArgs).
func ExecuteArgs(ctx context.Context, pl *logical.Plan, nWorkers int, args []int64) (res *logical.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hybrid: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, bound, nWorkers)
}

// ExecuteArgsRouted is ExecuteRouted for parameterized plans.
func ExecuteArgsRouted(ctx context.Context, pl *logical.Plan, nWorkers, vecSize int, router Router, args []int64) (res *logical.Result, rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hybrid: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, nil, err
	}
	return ExecuteRouted(ctx, bound, nWorkers, vecSize, router)
}

// ExecuteStream runs the plan and streams result rows to sink in
// chunks. The hybrid executor has no incremental path of its own: it
// materializes and chunks, like the compiled backend's non-streamable
// fallback.
func ExecuteStream(ctx context.Context, pl *logical.Plan, nWorkers, chunk int, sink logical.RowSink) error {
	if err := sink.SetCols(pl.Cols); err != nil {
		return err
	}
	res, err := Execute(ctx, pl, nWorkers)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	_, cancel := context.WithCancel(ctx)
	defer cancel()
	return logical.StreamChunks(ctx, logical.NewStreamer(sink, cancel), res.Rows, chunk)
}

// ExecuteArgsStream is ExecuteStream for parameterized plans.
func ExecuteArgsStream(ctx context.Context, pl *logical.Plan, nWorkers, chunk int, args []int64, sink logical.RowSink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hybrid: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return err
	}
	return ExecuteStream(ctx, bound, nWorkers, chunk, sink)
}

// ExecuteStreamRouted is ExecuteStream with an explicit Router and
// vector size: the execution materializes through ExecuteRouted — so
// the router is fed and the Report (assignment decoration) comes back
// to the caller — and the result streams in chunks. This keeps the
// streaming path's routing and engine decoration identical to the
// materializing path's.
func ExecuteStreamRouted(ctx context.Context, pl *logical.Plan, nWorkers, vecSize, chunk int, router Router, sink logical.RowSink) (*Report, error) {
	if err := sink.SetCols(pl.Cols); err != nil {
		return nil, err
	}
	res, rep, err := ExecuteRouted(ctx, pl, nWorkers, vecSize, router)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, cancel := context.WithCancel(ctx)
	defer cancel()
	return rep, logical.StreamChunks(ctx, logical.NewStreamer(sink, cancel), res.Rows, chunk)
}

// ExecuteArgsStreamRouted is ExecuteStreamRouted for parameterized
// plans.
func ExecuteArgsStreamRouted(ctx context.Context, pl *logical.Plan, nWorkers, vecSize, chunk int, router Router, args []int64, sink logical.RowSink) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hybrid: internal error executing query: %v", r)
		}
	}()
	bound, err := pl.BindArgs(args)
	if err != nil {
		return nil, err
	}
	return ExecuteStreamRouted(ctx, bound, nWorkers, vecSize, chunk, router, sink)
}

// ExecuteRouted runs a plan with an explicit Router (nil = cost
// heuristic only) and an explicit vector size (0 = micro-adaptive).
// On success the Router has been fed the observed per-pipeline
// latencies and the returned Report describes the run.
func ExecuteRouted(ctx context.Context, pl *logical.Plan, nWorkers, vecSize int, router Router) (res *logical.Result, rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hybrid: internal error executing query: %v", r)
		}
	}()
	if len(pl.Params) > 0 {
		return nil, nil, fmt.Errorf("hybrid: statement has %d unbound parameter(s); use ExecuteArgs", len(pl.Params))
	}

	cp, err := compiled.LowerProgram(pl)
	if err != nil {
		return nil, nil, err
	}
	vp, err := logical.LowerVec(pl)
	if err != nil {
		return nil, nil, err
	}
	n := cp.NumPipes()
	// Defensive parity check: the hybrid contract is that both
	// lowerings decompose the plan identically.
	if vp.NumPipes() != n {
		return nil, nil, fmt.Errorf("hybrid: backend pipeline counts diverged (%d fused, %d vectorized)", n, vp.NumPipes())
	}
	for i := 0; i < n; i++ {
		if cp.IsBuild(i) != vp.IsBuild(i) || cp.PayWidth(i) != vp.PayWidth(i) || cp.TableName(i) != vp.TableName(i) {
			return nil, nil, fmt.Errorf("hybrid: pipeline %d shape diverged between backends", i)
		}
	}

	meta := make([]PipeMeta, n)
	for i := range meta {
		meta[i] = PipeMeta{
			Table:   cp.TableName(i),
			Rows:    cp.TableRows(i),
			Probes:  cp.NumProbes(i),
			Filters: cp.NumFilters(i),
			Build:   cp.IsBuild(i),
		}
	}
	var assign []Engine
	if router != nil {
		assign = router.Decide(meta)
	}
	if len(assign) != n {
		assign = CostAssign(meta)
	}

	col := obs.FromContext(ctx)
	if col != nil {
		vp.Describe(col)
	}

	adaptive := vecSize <= 0
	vcap := vecSize
	if adaptive {
		vcap = vecCandidates[len(vecCandidates)-1]
	}
	e := plan.NewExec(ctx, nWorkers, vcap)
	w := e.Workers

	hts := make([]*hashtable.Table, n)
	for i := 0; i < n; i++ {
		disp := exec.NewDispatcherCtx(ctx, cp.TableRows(i), 0)
		if cp.IsBuild(i) {
			hts[i] = hashtable.New(1+cp.PayWidth(i), w)
		}
		cp.Bind(i, hts[i], disp)
		vp.Bind(i, hts[i], disp)
	}

	agg := pl.Agg
	keyed := agg != nil && len(agg.Keys) > 0
	global := agg != nil && len(agg.Keys) == 0

	var (
		spill      *hashtable.Spill
		partDisp   *exec.Dispatcher
		htOps      []hashtable.AggOp
		workerRows [][][]int64
		partials   []logical.GlobalPartial
	)
	switch {
	case keyed:
		htOps = make([]hashtable.AggOp, len(agg.Aggs))
		for i, s := range agg.Aggs {
			htOps[i] = s.Op.HTOp()
		}
		spill = hashtable.NewSpill(w, tw.AggPartitions, 2+len(htOps))
		partDisp = exec.NewDispatcherCtx(ctx, tw.AggPartitions, 1)
		workerRows = make([][][]int64, w)
	case global:
		partials = make([]logical.GlobalPartial, w)
	default:
		workerRows = make([][][]int64, w)
	}

	// Per-pipeline, per-worker observations (each worker writes only
	// its own column — race free).
	nanos := make([][]int64, n)
	vecs := make([][]int, n)
	for i := range nanos {
		nanos[i] = make([]int64, w)
		vecs[i] = make([]int, w)
	}
	// Row/batch counters, allocated only when a collector rides the
	// context (same per-worker-column discipline).
	var orows, obat [][]int64
	if col != nil {
		orows = make([][]int64, n)
		obat = make([][]int64, n)
		for i := range orows {
			orows[i] = make([]int64, w)
			obat[i] = make([]int64, w)
		}
	}

	fi := n - 1 // final pipeline (lowering order puts it last)
	bar := exec.NewBarrier(w)
	exec.Parallel(w, func(wid int) {
		// The vectorized worker assembles lazily: pure-compiled
		// assignments never allocate vector buffers.
		var vw *logical.VecWorker
		vecWorker := func() *logical.VecWorker {
			if vw == nil {
				vw = vp.NewWorker(e, vector.NewBuffers(vcap), JoinHash)
			}
			return vw
		}
		// drain builds pipeline i's operator tree, then its sink (the
		// sink captures gather buffers the tree allocates, so order
		// matters), and drives it to exhaustion.
		drain := func(i int, mkSink func() plan.Sink) plan.Sink {
			root, scan := vecWorker().PipeRoot(i)
			sink := mkSink()
			var cs *obs.CountingSink
			if col != nil {
				cs = &obs.CountingSink{Sink: sink}
				sink = cs
			}
			if adaptive {
				vecs[i][wid] = drainAdaptive(root, scan, sink)
			} else {
				vecs[i][wid] = vecSize
				var b plan.Batch
				for root.Next(&b) {
					sink.Consume(&b)
				}
			}
			if cs != nil {
				orows[i][wid], obat[i][wid] = cs.Rows, cs.Batches
			}
			return sink
		}

		// Build pipelines in dependency order, each publishing its
		// table with the shared two-barrier protocol.
		for i := 0; i < n; i++ {
			if !cp.IsBuild(i) {
				continue
			}
			start := time.Now()
			if assign[i] == EngineCompiled {
				cp.RunBuild(i, wid)
			} else {
				i := i
				drain(i, func() plan.Sink { return vecWorker().BuildSink(i, wid) })
			}
			nanos[i][wid] = time.Since(start).Nanoseconds()
			tw.BuildBarrier(hts[i], bar, wid)
		}

		start := time.Now()
		var nOut *int64
		if col != nil {
			nOut = &orows[fi][wid]
		}
		switch {
		case keyed:
			if assign[fi] == EngineCompiled {
				cp.RunGrouped(wid, spill, nOut)
				bar.Wait(nil)
			} else {
				sink := drain(fi, func() plan.Sink { return vecWorker().GroupBySink(wid, spill, htOps) })
				sink.Finish(bar, wid)
			}
			// Phase two: partition merge, engine-agnostic.
			for {
				pm, ok := partDisp.Next()
				if !ok {
					break
				}
				hashtable.MergeSpill(spill, pm.Begin, htOps, func(row []uint64) {
					out := make([]int64, agg.MergedWidth())
					agg.DecodeMergedRow(row, out)
					workerRows[wid] = append(workerRows[wid], out)
				})
			}
		case global:
			if assign[fi] == EngineCompiled {
				partials[wid] = cp.RunGlobal(wid)
				if nOut != nil {
					*nOut = partials[wid].N
				}
			} else {
				sink := drain(fi, func() plan.Sink { return vecWorker().GlobalSink(&partials[wid]) })
				sink.Finish(bar, wid)
			}
		default:
			if assign[fi] == EngineCompiled {
				workerRows[wid] = cp.RunProject(wid)
				if nOut != nil {
					*nOut = int64(len(workerRows[wid]))
				}
			} else {
				drain(fi, func() plan.Sink { return vecWorker().CollectSink(&workerRows[wid]) })
			}
		}
		nanos[fi][wid] = time.Since(start).Nanoseconds()
	})

	var rows [][]int64
	switch {
	case global:
		rows = [][]int64{logical.MergeGlobal(agg, partials)}
	default:
		for _, wr := range workerRows {
			rows = append(rows, wr...)
		}
	}
	res, err = pl.FinalizeRows(rows)
	if err != nil {
		return nil, nil, err
	}

	rep = &Report{Assign: assign, Vec: make([]int, n), Nanos: make([]int64, n)}
	for i := 0; i < n; i++ {
		rep.Nanos[i] = maxOf(nanos[i])
		if assign[i] == EngineVectorized {
			rep.Vec[i] = modal(vecs[i])
		}
	}
	if col != nil {
		for i := 0; i < n; i++ {
			col.SetPipeEngine(i, assign[i].String())
			var rows, bat int64
			for wid := 0; wid < w; wid++ {
				rows += orows[i][wid]
				bat += obat[i][wid]
			}
			if cp.IsBuild(i) {
				rows = int64(hts[i].Rows())
				col.SetHTRows(i, rows)
			}
			col.PipeWorker(i, rows, bat, rep.Nanos[i])
			if rep.Vec[i] > 0 {
				col.SetVec(i, rep.Vec[i])
			}
		}
	}
	if router != nil && ctx.Err() == nil {
		router.Observe(assign, rep.Nanos)
	}
	return res, rep, nil
}

// drainAdaptive drives a vectorized pipeline with micro-adaptive
// vector sizing: time trialBatches batches at each candidate size,
// commit to the fastest (ns per scanned row), drain the rest at that
// size. The batch stream is identical to a fixed-size drain — trial
// batches are consumed normally, only their size varies.
func drainAdaptive(root plan.Operator, scan *plan.Scan, sink plan.Sink) int {
	var b plan.Batch
	best, bestNs := vecCandidates[len(vecCandidates)-1], int64(math.MaxInt64)
	for _, c := range vecCandidates {
		scan.SetVec(c)
		rows := 0
		t0 := time.Now()
		for k := 0; k < trialBatches; k++ {
			if !root.Next(&b) {
				return c // exhausted mid-trial: sizing is moot
			}
			sink.Consume(&b)
			rows += b.N
		}
		if per := time.Since(t0).Nanoseconds() / int64(rows); per < bestNs {
			bestNs, best = per, c
		}
	}
	scan.SetVec(best)
	for root.Next(&b) {
		sink.Consume(&b)
	}
	return best
}

// modal returns the most frequent positive value (ties to the
// smaller), or 0 when none.
func modal(xs []int) int {
	counts := map[int]int{}
	for _, x := range xs {
		if x > 0 {
			counts[x]++
		}
	}
	best, bestN := 0, 0
	for x, c := range counts {
		if c > bestN || (c == bestN && x < best) {
			best, bestN = x, c
		}
	}
	return best
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Explain renders the hybrid assignment a cold start would pick (the
// cost heuristic, before any adaptation) above the shared pipeline
// decomposition.
func Explain(pl *logical.Plan) (string, error) {
	cp, err := compiled.LowerProgram(pl)
	if err != nil {
		return "", err
	}
	n := cp.NumPipes()
	meta := make([]PipeMeta, n)
	for i := range meta {
		meta[i] = PipeMeta{
			Table:   cp.TableName(i),
			Rows:    cp.TableRows(i),
			Probes:  cp.NumProbes(i),
			Filters: cp.NumFilters(i),
			Build:   cp.IsBuild(i),
		}
	}
	assign := CostAssign(meta)
	var sb strings.Builder
	fmt.Fprintf(&sb, "hybrid assignment (cost heuristic): %s\n", (&Report{Assign: assign}).Suffix())
	for i, m := range meta {
		kind := "final"
		if m.Build {
			kind = "build"
		}
		name := "compiled"
		if assign[i] == EngineVectorized {
			name = "vectorized"
		}
		fmt.Fprintf(&sb, "P%d %s (%s): %s — %d probes, %d filters\n", i+1, m.Table, kind, name, m.Probes, m.Filters)
	}
	for _, a := range assign {
		if a == EngineVectorized {
			sizes := make([]string, len(vecCandidates))
			for i, v := range vecCandidates {
				sizes[i] = strconv.Itoa(v)
			}
			fmt.Fprintf(&sb, "vectorized pipelines pick their vector size per worker from {%s} (micro-adaptive)\n",
				strings.Join(sizes, ", "))
			break
		}
	}
	body, err := compiled.Explain(pl)
	if err != nil {
		return "", err
	}
	sb.WriteString(body)
	return sb.String(), nil
}

// The hybrid executor registers as a third ad-hoc SQL engine next to
// typer (fused) and tectorwise (vectorized).
func init() {
	registry.RegisterAdHoc(registry.Hybrid, func(ctx context.Context, db *storage.Database, text string, opt registry.Options) (any, error) {
		pl, err := logical.Prepare(db, text)
		if err != nil {
			return nil, err
		}
		res, _, err := ExecuteRouted(ctx, pl, opt.Workers, opt.VectorSize, nil)
		return res, err
	})
}
