package hybrid

import (
	"reflect"
	"testing"

	"paradigms/internal/queries"
	"paradigms/internal/tpch"
)

func TestQ3ROFMatchesReference(t *testing.T) {
	for _, sf := range []float64{0.01, 0.05} {
		db := tpch.Generate(sf, 0)
		want := queries.RefQ3(db)
		for _, threads := range []int{1, 4} {
			got := Q3(db, threads)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sf=%v threads=%d ROF Q3 mismatch:\n got %v\nwant %v",
					sf, threads, got, want)
			}
		}
	}
}

func TestQ3ROFSpillPath(t *testing.T) {
	// SF 0.1 has ~15K qualifying groups per worker at 1 thread — above
	// the 16K local capacity at larger scales; run with a single worker
	// on SF 0.2 to exercise the spill slice.
	db := tpch.Generate(0.2, 0)
	want := queries.RefQ3(db)
	got := Q3(db, 1)
	if !reflect.DeepEqual(got, want) {
		t.Error("ROF Q3 mismatch under spill pressure")
	}
}
