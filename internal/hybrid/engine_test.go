package hybrid

import (
	"context"
	"reflect"
	"testing"

	"paradigms/internal/logical"
	"paradigms/internal/queries"
	"paradigms/internal/tpch"
)

// q3Rows maps a typed Q3 result into the SQL subsystem's raw row
// layout (same mapping as sqlcheck.RefRows, local to avoid the import
// cycle with the differential harness).
func q3Rows(res queries.Q3Result) [][]int64 {
	var out [][]int64
	for _, r := range res {
		out = append(out, []int64{int64(r.OrderKey), r.Revenue, int64(r.OrderDate), int64(r.ShipPriority)})
	}
	return out
}

// TestGenericHybridMatchesHandWrittenROF is the ablation pin: the
// plan-driven per-pipeline executor on the canonical Q3 SQL text must
// reproduce the hand-written ROF monolith (rof.go) bit for bit — the
// condition under which the other hand-rolled variants were retired.
func TestGenericHybridMatchesHandWrittenROF(t *testing.T) {
	db := tpch.Generate(0.05, 0)
	text, ok := logical.SQLText("tpch", "Q3")
	if !ok {
		t.Fatal("no canonical Q3 SQL text")
	}
	for _, workers := range []int{1, 4} {
		want := q3Rows(Q3(db, workers))
		res, err := Run(context.Background(), db, text, workers)
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Rows, want) {
			t.Errorf("w=%d: generic hybrid differs from hand-written ROF\n got %v\nwant %v",
				workers, res.Rows, want)
		}
	}
}

// fixedRouter forces a repeating engine pattern onto every pipeline
// and records what Observe reports back.
type fixedRouter struct {
	pattern  []Engine
	observed [][]Engine
	nanos    [][]int64
}

func (f *fixedRouter) Decide(meta []PipeMeta) []Engine {
	out := make([]Engine, len(meta))
	for i := range out {
		out[i] = f.pattern[i%len(f.pattern)]
	}
	return out
}

func (f *fixedRouter) Observe(assign []Engine, nanos []int64) {
	f.observed = append(f.observed, assign)
	f.nanos = append(f.nanos, nanos)
}

// TestForcedAssignmentsAllAgree: every forced per-pipeline assignment
// — all compiled, all vectorized, and both alternations — produces the
// reference rows on Q3 and Q5. This exercises every cross-engine
// handoff direction through the shared hash tables.
func TestForcedAssignmentsAllAgree(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	patterns := [][]Engine{
		{EngineCompiled},
		{EngineVectorized},
		{EngineCompiled, EngineVectorized},
		{EngineVectorized, EngineCompiled},
	}
	for _, name := range []string{"Q3", "Q5"} {
		text, ok := logical.SQLText("tpch", name)
		if !ok {
			t.Fatalf("no canonical %s SQL text", name)
		}
		pl, err := logical.Prepare(db, text)
		if err != nil {
			t.Fatal(err)
		}
		var want [][]int64
		for _, pat := range patterns {
			r := &fixedRouter{pattern: pat}
			res, rep, err := ExecuteRouted(context.Background(), pl, 4, 0, r)
			if err != nil {
				t.Fatalf("%s pattern %v: %v", name, pat, err)
			}
			if want == nil {
				want = res.Rows
			} else if !reflect.DeepEqual(res.Rows, want) {
				t.Errorf("%s pattern %v differs:\n got %v\nwant %v", name, pat, res.Rows, want)
			}
			// The report reflects the forced assignment, and Observe got
			// one latency per pipeline.
			if !reflect.DeepEqual(rep.Assign, r.Decide(make([]PipeMeta, len(rep.Assign)))) {
				t.Errorf("%s pattern %v: report assignment %v does not match", name, pat, rep.Assign)
			}
			if len(r.observed) != 1 || len(r.nanos[0]) != len(rep.Assign) {
				t.Errorf("%s pattern %v: router observed %d times with %v", name, pat, len(r.observed), r.nanos)
			}
			for i, e := range rep.Assign {
				if e == EngineCompiled && rep.Vec[i] != 0 {
					t.Errorf("%s pattern %v: compiled pipeline %d reports vector size %d", name, pat, i, rep.Vec[i])
				}
				if e == EngineVectorized && rep.Vec[i] == 0 {
					t.Errorf("%s pattern %v: vectorized pipeline %d reports no vector size", name, pat, i)
				}
			}
		}
	}
}

// TestFixedVectorSizeDisablesAdaptivity: an explicit vector size must
// be honored verbatim by every vectorized pipeline (no trials).
func TestFixedVectorSizeDisablesAdaptivity(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	text, _ := logical.SQLText("tpch", "Q3")
	pl, err := logical.Prepare(db, text)
	if err != nil {
		t.Fatal(err)
	}
	r := &fixedRouter{pattern: []Engine{EngineVectorized}}
	res, rep, err := ExecuteRouted(context.Background(), pl, 2, 513, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i, v := range rep.Vec {
		if v != 513 {
			t.Errorf("pipeline %d ran at vector size %d, want the fixed 513", i, v)
		}
	}
}
