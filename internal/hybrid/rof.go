// Hand-written relaxed operator fusion (ROF, §9.1 — Peloton's model):
// data-centric pipelines with *selective* materialization boundaries.
// The paper positions ROF between the two base paradigms (Figure 13):
// pipelines stay fused like Typer's, but at points where out-of-order
// latency hiding matters — hash-table probes — the pipeline breaks
// into small batches: a fused stage materializes probe keys into a
// vector, a tight probe loop generates many independent loads (the
// Tectorwise advantage), and a fused tail consumes the matches.
//
// This file is the *ablation oracle* of the generic per-pipeline
// executor (engine.go): the one hand-rolled ROF monolith kept after
// the plan-driven path reproduced its numbers, pinned by
// TestGenericHybridMatchesHandWrittenROF and measured by
// BenchmarkFig13Hybrid. Everything new goes through the generic
// executor; do not add further hand-written variants here.

package hybrid

import (
	"runtime"

	"paradigms/internal/exec"
	"paradigms/internal/hashtable"
	"paradigms/internal/queries"
	"paradigms/internal/storage"
	"paradigms/internal/typer"
	"paradigms/internal/types"
)

// batchSize is the ROF materialization-boundary width: large enough to
// fill the out-of-order window with independent probes, small enough to
// stay in L1 (§9.1: Peloton batches fit vector registers / caches).
const batchSize = 512

type q3Order struct {
	key      uint64
	datePrio uint64
}

type q3Group struct {
	key      uint64
	revenue  int64
	datePrio uint64
}

// Q3 executes TPC-H Q3 with relaxed operator fusion: identical plan and
// data structures as typer.Q3 / plan.Q3, but the lineitem pipeline runs
// in three stages per batch (fused filter+hash → tight probe loop →
// fused aggregate).
func Q3(db *storage.Database, nWorkers int) queries.Q3Result {
	w := nWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	oprio := ord.Int32("o_shippriority")
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	lship := li.Date("l_shipdate")
	lext := li.Numeric("l_extendedprice")
	ldisc := li.Numeric("l_discount")
	cutoff := queries.Q3Date

	htCust := hashtable.New(1, w)
	htOrd := hashtable.New(2, w)
	dispCust := exec.NewDispatcher(cust.Rows(), 0)
	dispOrd := exec.NewDispatcher(ord.Rows(), 0)
	dispLine := exec.NewDispatcher(li.Rows(), 0)
	bar := exec.NewBarrier(w)
	tops := make([]*queries.TopK[queries.Q3Row], w)

	exec.Parallel(w, func(wid int) {
		// Pipelines 1 and 2 are pure data-centric code (identical to
		// Typer's): build HT_cust and HT_ord.
		sh := htCust.Shard(wid)
		for {
			m, ok := dispCust.Next()
			if !ok {
				break
			}
			for i := m.Begin; i < m.End; i++ {
				if string(seg.Get(i)) == queries.Q3Segment {
					key := uint64(uint32(ckeys[i]))
					_, p := sh.Alloc(htCust, typer.Hash(key))
					*(*uint64)(p) = key
				}
			}
		}
		bar.Wait(func() { htCust.Prepare(htCust.Rows()) })
		htCust.InsertShard(wid)
		bar.Wait(nil)

		osh := htOrd.Shard(wid)
		for {
			m, ok := dispOrd.Next()
			if !ok {
				break
			}
		orders:
			for i := m.Begin; i < m.End; i++ {
				if odate[i] >= cutoff {
					continue
				}
				ck := uint64(uint32(ocust[i]))
				h := typer.Hash(ck)
				for ref := htCust.Lookup(h); ref != 0; ref = htCust.Next(ref) {
					if htCust.Hash(ref) == h && *(*uint64)(htCust.Payload(ref)) == ck {
						key := uint64(uint32(okeys[i]))
						_, p := osh.Alloc(htOrd, typer.Hash(key))
						o := (*q3Order)(p)
						o.key = key
						o.datePrio = uint64(uint32(odate[i])) | uint64(uint32(oprio[i]))<<32
						continue orders
					}
				}
			}
		}
		bar.Wait(func() { htOrd.Prepare(htOrd.Rows()) })
		htOrd.InsertShard(wid)
		bar.Wait(nil)

		// Pipeline 3 with ROF: per batch, stage A fuses filter + hash and
		// materializes probe state; stage B is a tight probe loop whose
		// only work is hash-table lookups (maximum overlapping misses);
		// stage C fuses match-check + aggregation.
		var (
			bKeys  [batchSize]uint64
			bHash  [batchSize]uint64
			bRev   [batchSize]int64
			bHeads [batchSize]hashtable.Ref
		)
		local := hashtable.New(3, 1)
		local.Prepare(1 << 14)
		lsh := local.Shard(0)
		spill := make([]q3Group, 0, 1024)
		for {
			m, ok := dispLine.Next()
			if !ok {
				break
			}
			for base := m.Begin; base < m.End; base += batchSize {
				end := base + batchSize
				if end > m.End {
					end = m.End
				}
				// Stage A (fused): filter + hash + materialize.
				n := 0
				for i := base; i < end; i++ {
					if lship[i] <= cutoff {
						continue
					}
					key := uint64(uint32(lkeys[i]))
					bKeys[n] = key
					bHash[n] = typer.Hash(key)
					bRev[n] = int64(lext[i]) * (100 - int64(ldisc[i]))
					n++
				}
				// Stage B (tight): directory lookups only — independent
				// loads the out-of-order engine can overlap.
				for j := 0; j < n; j++ {
					bHeads[j] = htOrd.Lookup(bHash[j])
				}
				// Stage C (fused): chain check + aggregate.
			tuples:
				for j := 0; j < n; j++ {
					key := bKeys[j]
					h := bHash[j]
					for ref := bHeads[j]; ref != 0; ref = htOrd.Next(ref) {
						if htOrd.Hash(ref) == h {
							o := (*q3Order)(htOrd.Payload(ref))
							if o.key == key {
								for gref := local.Lookup(h); gref != 0; gref = local.Next(gref) {
									if local.Hash(gref) == h {
										g := (*q3Group)(local.Payload(gref))
										if g.key == key {
											g.revenue += bRev[j]
											continue tuples
										}
									}
								}
								if local.Rows() < 1<<14 {
									gref, p := lsh.Alloc(local, h)
									g := (*q3Group)(p)
									g.key = key
									g.revenue = bRev[j]
									g.datePrio = o.datePrio
									local.Insert(gref, h)
								} else {
									spill = append(spill, q3Group{key: key, revenue: bRev[j], datePrio: o.datePrio})
								}
								continue tuples
							}
						}
					}
				}
			}
		}
		// Merge: combine local groups + spills into the worker's top-k,
		// then merge across workers. For simplicity the ROF variant keeps
		// per-worker groups and lets the final merge reconcile (group
		// keys are orderkeys; duplicates across workers are combined
		// below).
		groups := make(map[uint64]*q3Group)
		local.ForEach(func(ref hashtable.Ref) {
			g := (*q3Group)(local.Payload(ref))
			groups[g.key] = &q3Group{key: g.key, revenue: g.revenue, datePrio: g.datePrio}
		})
		for i := range spill {
			s := &spill[i]
			if g, ok := groups[s.key]; ok {
				g.revenue += s.revenue
			} else {
				groups[s.key] = &q3Group{key: s.key, revenue: s.revenue, datePrio: s.datePrio}
			}
		}
		top := queries.NewTopK[queries.Q3Row](1<<20, queries.Q3Less) // keep all: cross-worker merge needs full groups
		for _, g := range groups {
			top.Offer(queries.Q3Row{
				OrderKey:     int32(uint32(g.key)),
				Revenue:      g.revenue,
				OrderDate:    types.Date(uint32(g.datePrio)),
				ShipPriority: int32(uint32(g.datePrio >> 32)),
			})
		}
		tops[wid] = top
	})

	// Cross-worker combine: morsels split lineitem arbitrarily, so the
	// same orderkey may appear in several workers' group sets.
	combined := make(map[int32]*queries.Q3Row)
	for _, t := range tops {
		for _, row := range t.Sorted() {
			if g, ok := combined[row.OrderKey]; ok {
				g.Revenue += row.Revenue
			} else {
				r := row
				combined[row.OrderKey] = &r
			}
		}
	}
	final := queries.NewTopK[queries.Q3Row](10, queries.Q3Less)
	for _, r := range combined {
		final.Offer(*r)
	}
	return final.Sorted()
}
