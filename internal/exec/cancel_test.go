package exec

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestDispatcherCtxCancel: a canceled context makes Next report
// exhaustion immediately, even with tuples remaining.
func TestDispatcherCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := NewDispatcherCtx(ctx, 1_000_000, 10)
	if _, ok := d.Next(); !ok {
		t.Fatal("Next should succeed before cancel")
	}
	cancel()
	if m, ok := d.Next(); ok {
		t.Fatalf("Next succeeded after cancel: %+v", m)
	}
}

// TestDispatcherNilCtx: NewDispatcherCtx with a nil or background context
// behaves exactly like NewDispatcher.
func TestDispatcherNilCtx(t *testing.T) {
	for _, d := range []*Dispatcher{
		NewDispatcherCtx(nil, 25, 10),
		NewDispatcherCtx(context.Background(), 25, 10),
	} {
		n := 0
		for {
			m, ok := d.Next()
			if !ok {
				break
			}
			n += m.Len()
		}
		if n != 25 {
			t.Fatalf("scanned %d tuples, want 25", n)
		}
	}
}

// TestCancelDrainsWorkersPromptly is the regression test for the
// cancellation protocol: workers in a two-pipeline query (scan → barrier
// → scan) are canceled mid-scan and must (a) stop claiming morsels almost
// immediately and (b) tear down the barrier without deadlock, because
// every party still reaches it. Run under -race in CI.
func TestCancelDrainsWorkersPromptly(t *testing.T) {
	const (
		workers = 4
		total   = 100_000_000 // far more single-tuple morsels than can run
	)
	ctx, cancel := context.WithCancel(context.Background())
	dispA := NewDispatcherCtx(ctx, total, 1)
	dispB := NewDispatcherCtx(ctx, total, 1)
	bar := NewBarrier(workers)

	var claimed atomic.Int64
	started := make(chan struct{}, workers)
	finished := make(chan struct{})
	go func() {
		Parallel(workers, func(w int) {
			// Pipeline 1.
			first := true
			for {
				m, ok := dispA.Next()
				if !ok {
					break
				}
				claimed.Add(int64(m.Len()))
				if first {
					first = false
					started <- struct{}{}
				}
			}
			// Barrier teardown must not deadlock: canceled workers
			// still arrive here.
			bar.Wait(nil)
			// Pipeline 2 sees an already-canceled dispatcher.
			for {
				if _, ok := dispB.Next(); !ok {
					break
				}
				claimed.Add(1)
			}
		})
		close(finished)
	}()

	// Cancel once at least one worker is mid-scan.
	<-started
	cancel()

	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("workers did not drain after cancel (barrier deadlock?)")
	}
	if n := claimed.Load(); n >= total/100 {
		t.Errorf("workers claimed %d morsels after cancel; exit was not prompt", n)
	}
}

// TestWithMorselCounter: a context-carried counter receives exactly this
// consumer's claims, regardless of other dispatchers running in the
// process.
func TestWithMorselCounter(t *testing.T) {
	var mine atomic.Int64
	ctx := WithMorselCounter(context.Background(), &mine)
	d := NewDispatcherCtx(ctx, 1000, 100)
	other := NewDispatcher(1000, 10) // unattributed noise
	for {
		if _, ok := other.Next(); !ok {
			break
		}
	}
	n := int64(0)
	for {
		if _, ok := d.Next(); !ok {
			break
		}
		n++
	}
	if got := mine.Load(); got != n {
		t.Errorf("attributed counter = %d, want exactly %d", got, n)
	}
}
