// Package exec provides the morsel-driven intra-query parallelization
// framework shared by both engines (§6.1 of the paper).
//
// Work distribution follows HyPer's morsel-driven model: scans are split
// into morsels (ranges of ~100k tuples) claimed by workers from a shared
// atomic dispatcher, giving automatic load balancing. Pipeline-breaking
// operators synchronize workers with a reusable Barrier: e.g. a hash join
// first has all workers consume the build side into a shared hash table,
// then crosses a barrier, then starts probing. The framework is engine
// agnostic — Typer drives it with fused pipeline functions, Tectorwise
// with per-worker operator trees — which is exactly the paper's setup:
// same parallelization framework, different execution paradigm.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the number of tuples per morsel. HyPer uses
// ~100,000; morsels need to be big enough to amortize dispatch and small
// enough to load-balance.
const DefaultMorselSize = 100_000

// Morsel is a half-open tuple range [Begin, End) of a scanned relation.
type Morsel struct {
	Begin, End int
}

// Len returns the number of tuples in the morsel.
func (m Morsel) Len() int { return m.End - m.Begin }

// Dispatcher hands out morsels of a relation scan to workers. It is safe
// for concurrent use; claiming is a single atomic add.
//
// A dispatcher built with NewDispatcherCtx additionally observes query
// cancellation: morsel claims are the engines' natural preemption points
// (every worker passes through Next between morsels), so once the bound
// context is done Next reports exhaustion and workers drain out of their
// scan loops within one morsel's worth of work. The pipeline's later
// phases (barriers, merges) still run with all parties present — they just
// see empty scans — which keeps barrier teardown deadlock-free without
// any engine-side cancellation code.
type Dispatcher struct {
	next    atomic.Int64
	total   int64
	size    int64
	done    <-chan struct{} // non-nil when bound to a cancelable context
	counter *atomic.Int64   // per-consumer claim attribution, may be nil
	yield   func()          // morsel-level yield hook, may be nil
}

// NewDispatcher creates a dispatcher over total tuples with the given
// morsel size (DefaultMorselSize if size <= 0).
func NewDispatcher(total, size int) *Dispatcher {
	if size <= 0 {
		size = DefaultMorselSize
	}
	return &Dispatcher{total: int64(total), size: int64(size)}
}

// NewDispatcherCtx creates a dispatcher whose Next additionally returns
// ok=false once ctx is done, even if tuples remain. A nil or
// never-canceled context degenerates to NewDispatcher with zero per-claim
// overhead beyond a channel poll. If the context carries a morsel counter
// (WithMorselCounter), every claim is attributed to it. If the caller
// left size at the default (<= 0) and the context carries a morsel-size
// override (WithMorselSize), the override wins — explicit sizes (e.g.
// the 1-per-partition merge dispatchers) are never overridden.
func NewDispatcherCtx(ctx context.Context, total, size int) *Dispatcher {
	if ctx != nil && size <= 0 {
		if n, _ := ctx.Value(morselSizeKey{}).(int); n > 0 {
			size = n
		}
	}
	d := NewDispatcher(total, size)
	if ctx != nil {
		d.done = ctx.Done()
		d.counter, _ = ctx.Value(morselCounterKey{}).(*atomic.Int64)
		d.yield, _ = ctx.Value(yieldKey{}).(func())
	}
	return d
}

// morselSizeKey is the context key of WithMorselSize.
type morselSizeKey struct{}

// WithMorselSize returns a context under which scan dispatchers bound to
// it (NewDispatcherCtx) that did not request an explicit morsel size use
// n tuples per morsel instead of DefaultMorselSize. Morsel claims are
// where cancellation is observed and yield hooks run (WithYield), so a
// scheduler that needs finer-grained preemption — e.g. to throttle a
// tenant's long scans while short queries of other tenants run — can
// shrink the scheduling quantum without touching engine code. Dispatch
// is a single atomic add, so even morsels of a few thousand tuples cost
// well under 1% overhead.
func WithMorselSize(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, morselSizeKey{}, n)
}

// morselCounterKey is the context key of WithMorselCounter.
type morselCounterKey struct{}

// WithMorselCounter returns a context under which every morsel claimed by
// a dispatcher bound to it (NewDispatcherCtx) is also counted on c —
// per-consumer attribution of scheduling activity, e.g. one counter per
// query service. This is the one morsel-accounting mechanism: a former
// process-wide counter overlapped with it and was removed.
func WithMorselCounter(ctx context.Context, c *atomic.Int64) context.Context {
	return context.WithValue(ctx, morselCounterKey{}, c)
}

// yieldKey is the context key of WithYield.
type yieldKey struct{}

// WithYield returns a context under which every dispatcher bound to it
// (NewDispatcherCtx) calls y before each morsel claim. Morsel claims
// are the engines' natural preemption points — every worker of every
// pipeline passes through Next between morsels — so y is where an
// inter-query scheduler injects morsel-level yielding: a long scan
// whose tenant is over its fair share can be paused for a bounded
// moment per morsel, ceding CPU to short queries, without any
// engine-side scheduling code. y MUST return (it may sleep briefly,
// never block indefinitely): workers park only between morsels, and a
// worker held forever would deadlock the pipeline's barriers.
func WithYield(ctx context.Context, y func()) context.Context {
	return context.WithValue(ctx, yieldKey{}, y)
}

// Next claims the next morsel. ok is false once the scan is exhausted or
// the dispatcher's context (NewDispatcherCtx) has been canceled.
func (d *Dispatcher) Next() (m Morsel, ok bool) {
	if d.done != nil {
		select {
		case <-d.done:
			return Morsel{}, false
		default:
		}
	}
	if d.yield != nil {
		d.yield()
	}
	begin := d.next.Add(d.size) - d.size
	if begin >= d.total {
		return Morsel{}, false
	}
	end := begin + d.size
	if end > d.total {
		end = d.total
	}
	if d.counter != nil {
		d.counter.Add(1)
	}
	return Morsel{Begin: int(begin), End: int(end)}, true
}

// Reset rewinds the dispatcher for reuse (e.g. repeated query runs).
func (d *Dispatcher) Reset() { d.next.Store(0) }

// Barrier is a reusable cyclic barrier for a fixed set of workers.
// The last worker to arrive runs the (optional) action registered for
// that generation before releasing the others — used, for example, to
// size a shared hash table directory after the build-side materialization
// completes and before insertion starts.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

// NewBarrier creates a barrier for parties workers.
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("exec: barrier needs at least one party")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait. If action is non-nil it
// is executed exactly once per generation, by the last arriving worker,
// while the others are still blocked. Returns true for the worker that
// ran the action.
func (b *Barrier) Wait(action func()) bool {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		if action != nil {
			action()
		}
		b.waiting = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}

// Parallel runs fn(workerID) on workers goroutines and waits for all of
// them. workers <= 0 selects GOMAXPROCS. It returns the worker count used.
func Parallel(workers int, fn func(worker int)) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		fn(0)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
	return workers
}

// Once wraps sync.Once for per-pipeline shared-state initialization done
// by whichever worker arrives first (e.g. allocating a shared result
// buffer).
type Once = sync.Once
