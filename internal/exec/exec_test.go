package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDispatcherCoversRangeExactlyOnce(t *testing.T) {
	f := func(totalRaw uint16, sizeRaw uint8) bool {
		total := int(totalRaw) % 5000
		size := int(sizeRaw)%97 + 1
		d := NewDispatcher(total, size)
		covered := make([]bool, total)
		for {
			m, ok := d.Next()
			if !ok {
				break
			}
			if m.Begin < 0 || m.End > total || m.Begin >= m.End {
				return false
			}
			for i := m.Begin; i < m.End; i++ {
				if covered[i] {
					return false
				}
				covered[i] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDispatcherConcurrent(t *testing.T) {
	const total = 1_000_000
	d := NewDispatcher(total, 1024)
	var sum atomic.Int64
	var count atomic.Int64
	Parallel(8, func(int) {
		for {
			m, ok := d.Next()
			if !ok {
				return
			}
			sum.Add(int64(m.Len()))
			count.Add(1)
		}
	})
	if sum.Load() != total {
		t.Fatalf("covered %d tuples, want %d", sum.Load(), total)
	}
	if want := int64((total + 1023) / 1024); count.Load() != want {
		t.Fatalf("morsel count = %d, want %d", count.Load(), want)
	}
}

func TestDispatcherDefaults(t *testing.T) {
	d := NewDispatcher(10, 0)
	m, ok := d.Next()
	if !ok || m.Begin != 0 || m.End != 10 {
		t.Fatalf("morsel = %+v, ok=%v", m, ok)
	}
	if _, ok := d.Next(); ok {
		t.Fatal("dispatcher did not exhaust")
	}
	d.Reset()
	if _, ok := d.Next(); !ok {
		t.Fatal("Reset did not rewind")
	}
}

func TestDispatcherEmpty(t *testing.T) {
	d := NewDispatcher(0, 100)
	if _, ok := d.Next(); ok {
		t.Fatal("empty dispatcher produced a morsel")
	}
}

func TestBarrierReleasesAll(t *testing.T) {
	const workers = 7
	b := NewBarrier(workers)
	var phase1, phase2 atomic.Int32
	var actions atomic.Int32
	Parallel(workers, func(w int) {
		phase1.Add(1)
		b.Wait(func() {
			actions.Add(1)
			if phase1.Load() != workers {
				t.Errorf("action ran before all workers arrived (%d)", phase1.Load())
			}
		})
		phase2.Add(1)
		b.Wait(nil) // reuse in a second generation
	})
	if actions.Load() != 1 {
		t.Fatalf("action ran %d times, want 1", actions.Load())
	}
	if phase2.Load() != workers {
		t.Fatalf("phase2 = %d", phase2.Load())
	}
}

func TestBarrierManyGenerations(t *testing.T) {
	const workers = 4
	const gens = 200
	b := NewBarrier(workers)
	counters := make([]int, workers)
	Parallel(workers, func(w int) {
		for g := 0; g < gens; g++ {
			counters[w]++
			b.Wait(func() {
				// At the barrier every counter must equal g+1.
				for i, c := range counters {
					if c != g+1 {
						t.Errorf("gen %d: counter[%d]=%d", g, i, c)
					}
				}
			})
		}
	})
}

func TestBarrierExactlyOneActionRunner(t *testing.T) {
	b := NewBarrier(5)
	var ranAction atomic.Int32
	var trueReturns atomic.Int32
	Parallel(5, func(int) {
		if b.Wait(func() { ranAction.Add(1) }) {
			trueReturns.Add(1)
		}
	})
	if ranAction.Load() != 1 || trueReturns.Load() != 1 {
		t.Fatalf("action=%d trueReturns=%d", ranAction.Load(), trueReturns.Load())
	}
}

func TestParallelSingleWorkerInline(t *testing.T) {
	ran := false
	n := Parallel(1, func(w int) {
		if w != 0 {
			t.Errorf("worker id = %d", w)
		}
		ran = true
	})
	if !ran || n != 1 {
		t.Fatal("single worker path broken")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	var mu sync.Mutex
	ids := map[int]bool{}
	n := Parallel(0, func(w int) {
		mu.Lock()
		ids[w] = true
		mu.Unlock()
	})
	if len(ids) != n {
		t.Fatalf("%d distinct ids for %d workers", len(ids), n)
	}
}

func TestNewBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0 parties")
		}
	}()
	NewBarrier(0)
}
