package iosim

import (
	"bytes"
	"testing"
	"time"

	"paradigms/internal/tpch"
)

func TestWriteVerifyRoundTrip(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	dir := t.TempDir()
	if err := WriteDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	for _, check := range [][2]string{
		{"lineitem", "l_orderkey"},
		{"lineitem", "l_extendedprice"},
		{"lineitem", "l_shipdate"},
		{"lineitem", "l_returnflag"},
		{"orders", "o_totalprice"},
	} {
		if err := VerifyRoundTrip(dir, db, check[0], check[1]); err != nil {
			t.Error(err)
		}
	}
}

func TestThrottleLimitsBandwidth(t *testing.T) {
	const size = 4 << 20
	const bw = 64e6 // 64 MB/s → 4MB takes ≥62ms
	src := bytes.NewReader(make([]byte, size))
	tr := NewThrottle(src, bw)
	start := time.Now()
	buf := make([]byte, 1<<16)
	var total int
	for {
		n, err := tr.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	elapsed := time.Since(start)
	if total != size {
		t.Fatalf("read %d bytes", total)
	}
	want := time.Duration(float64(size) / bw * float64(time.Second))
	if elapsed < want*8/10 {
		t.Errorf("throttle too fast: %v for %d bytes (want ≥ %v)", elapsed, size, want)
	}
}

func TestStreamColumnsReadsEverything(t *testing.T) {
	db := tpch.Generate(0.005, 0)
	dir := t.TempDir()
	if err := WriteDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	relations := []string{"lineitem", "orders"}
	n, _, err := StreamColumns(dir, db, relations, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	want := ColumnBytes(db, relations)
	if n != want {
		t.Errorf("streamed %d bytes, want %d", n, want)
	}
	// Duplicate relation in the scan list is read once.
	n2, _, err := StreamColumns(dir, db, []string{"orders", "orders"}, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != ColumnBytes(db, []string{"orders"}) {
		t.Errorf("duplicate-relation stream read %d", n2)
	}
}

func TestTable5TimeComposition(t *testing.T) {
	// CPU-bound: total ≈ in-memory time.
	got := Table5Time(500*time.Millisecond, 1<<20, 1e9)
	if got < 500*time.Millisecond || got > 510*time.Millisecond {
		t.Errorf("cpu-bound total = %v", got)
	}
	// IO-bound: total ≈ bytes/bandwidth.
	got = Table5Time(10*time.Millisecond, 1.4e9, PaperSSDBandwidth)
	if got < time.Second || got > 1100*time.Millisecond {
		t.Errorf("io-bound total = %v", got)
	}
}
