// Package iosim implements the out-of-memory experiment substrate
// (Table 5, DESIGN.md S4): a binary columnar on-disk format plus a
// token-bucket bandwidth throttle that emulates the paper's 1.4 GB/s SSD
// RAID against DRAM-resident execution.
package iosim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// PaperSSDBandwidth is the read bandwidth of the paper's RAID-5 of three
// SATA SSDs.
const PaperSSDBandwidth = 1.4e9 // bytes/second

// WriteDatabase writes every relation of db into dir as one binary file
// per column.
func WriteDatabase(db *storage.Database, dir string) error {
	for _, name := range db.Relations() {
		rel := db.Rel(name)
		for _, col := range rel.Columns() {
			if err := writeColumn(dir, name, col); err != nil {
				return err
			}
		}
	}
	return nil
}

func columnPath(dir, rel, col string) string {
	return filepath.Join(dir, rel+"."+col+".bin")
}

func writeColumn(dir, rel string, col *storage.Column) error {
	f, err := os.Create(columnPath(dir, rel, col.Name))
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var werr error
	put := func(v uint64, width int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:width]); err != nil && werr == nil {
			werr = err
		}
	}
	switch col.Type {
	case storage.Int32:
		for _, v := range col.I32 {
			put(uint64(uint32(v)), 4)
		}
	case storage.Int64:
		for _, v := range col.I64 {
			put(uint64(v), 8)
		}
	case storage.Numeric:
		for _, v := range col.Num {
			put(uint64(v), 8)
		}
	case storage.Date:
		for _, v := range col.Dat {
			put(uint64(uint32(v)), 4)
		}
	case storage.Byte:
		if _, err := w.Write(col.B); err != nil {
			werr = err
		}
	case storage.String:
		for _, off := range col.Str.Offsets {
			put(uint64(off), 4)
		}
		if _, err := w.Write(col.Str.Bytes); err != nil {
			werr = err
		}
	}
	if err := w.Flush(); err != nil && werr == nil {
		werr = err
	}
	if err := f.Close(); err != nil && werr == nil {
		werr = err
	}
	return werr
}

// Throttle wraps a reader, limiting throughput to bytesPerSec with a
// token bucket refilled every millisecond.
type Throttle struct {
	r           io.Reader
	bytesPerSec float64
	start       time.Time
	consumed    float64
}

// NewThrottle creates a throttled reader.
func NewThrottle(r io.Reader, bytesPerSec float64) *Throttle {
	return &Throttle{r: r, bytesPerSec: bytesPerSec, start: time.Now()}
}

// Read implements io.Reader, sleeping as needed to respect the budget.
func (t *Throttle) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.consumed += float64(n)
	allowedAt := t.start.Add(time.Duration(t.consumed / t.bytesPerSec * float64(time.Second)))
	if d := time.Until(allowedAt); d > 0 {
		time.Sleep(d)
	}
	return n, err
}

// ColumnBytes returns the on-disk size of the columns a query scans.
func ColumnBytes(db *storage.Database, relations []string) int64 {
	var total int64
	seen := map[string]bool{}
	for _, r := range relations {
		if seen[r] {
			continue
		}
		seen[r] = true
		total += db.Rel(r).ByteSize()
	}
	return total
}

// StreamColumns reads all column files of the given relations from dir at
// the throttled bandwidth, returning bytes read and elapsed time. This is
// the I/O phase of the out-of-memory experiment; execution overlaps with
// it (Table5Time combines the two).
func StreamColumns(dir string, db *storage.Database, relations []string, bytesPerSec float64) (int64, time.Duration, error) {
	start := time.Now()
	var total int64
	buf := make([]byte, 1<<20)
	seen := map[string]bool{}
	for _, relName := range relations {
		if seen[relName] {
			continue
		}
		seen[relName] = true
		rel := db.Rel(relName)
		for _, col := range rel.Columns() {
			f, err := os.Open(columnPath(dir, relName, col.Name))
			if err != nil {
				return total, time.Since(start), err
			}
			tr := NewThrottle(bufio.NewReaderSize(f, 1<<20), bytesPerSec)
			for {
				n, err := tr.Read(buf)
				total += int64(n)
				if err == io.EOF {
					break
				}
				if err != nil {
					f.Close()
					return total, time.Since(start), err
				}
			}
			f.Close()
		}
	}
	return total, time.Since(start), nil
}

// Table5Time models the out-of-memory runtime of a query: table data
// streams from storage at ssdBW while execution proceeds at in-memory
// speed; with a pipelined scan the total is the maximum of the two, plus
// a first-morsel fill latency.
func Table5Time(inMemory time.Duration, scanBytes int64, ssdBW float64) time.Duration {
	io := time.Duration(float64(scanBytes) / ssdBW * float64(time.Second))
	fill := time.Duration(float64(exec1MB) / ssdBW * float64(time.Second))
	if io > inMemory {
		return io + fill
	}
	return inMemory + fill
}

const exec1MB = 1 << 20

// VerifyRoundTrip re-reads a written column and compares it against the
// in-memory data (used by tests and cmd/dbgen -verify).
func VerifyRoundTrip(dir string, db *storage.Database, rel, col string) error {
	r := db.Rel(rel)
	c := r.Column(col)
	data, err := os.ReadFile(columnPath(dir, rel, col))
	if err != nil {
		return err
	}
	switch c.Type {
	case storage.Int32:
		for i, v := range c.I32 {
			if got := int32(binary.LittleEndian.Uint32(data[i*4:])); got != v {
				return fmt.Errorf("iosim: %s.%s[%d] = %d, want %d", rel, col, i, got, v)
			}
		}
	case storage.Numeric:
		for i, v := range c.Num {
			if got := types.Numeric(binary.LittleEndian.Uint64(data[i*8:])); got != v {
				return fmt.Errorf("iosim: %s.%s[%d] = %d, want %d", rel, col, i, got, v)
			}
		}
	case storage.Date:
		for i, v := range c.Dat {
			if got := types.Date(binary.LittleEndian.Uint32(data[i*4:])); got != v {
				return fmt.Errorf("iosim: %s.%s[%d] differs", rel, col, i)
			}
		}
	case storage.Byte:
		for i, v := range c.B {
			if data[i] != v {
				return fmt.Errorf("iosim: %s.%s[%d] differs", rel, col, i)
			}
		}
	}
	return nil
}
