package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestQueryLogWriteAndParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.ndjson")
	l, err := OpenQueryLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := QueryRecord{
		Time: "2026-01-02T03:04:05Z", Engine: "typer", Used: "typer",
		SQL: "select count(*) as n from lineitem", LatencyMs: 1.5, Rows: 1,
		PlanShape: "00000000deadbeef",
		Pipes:     []PipeStat{{Table: "lineitem", RowsIn: 100, RowsOut: 100}},
	}
	for i := 0; i < 3; i++ {
		if err := l.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(&rec); err == nil {
		t.Error("Write after Close should error")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		lines++
		var got QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d not parseable: %v", lines, err)
		}
		if got.SQL != rec.SQL || got.Rows != 1 || len(got.Pipes) != 1 {
			t.Errorf("round trip mismatch: %+v", got)
		}
	}
	if lines != 3 {
		t.Errorf("got %d lines, want 3", lines)
	}
}

func TestQueryLogRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ndjson")
	l, err := OpenQueryLog(path, 256) // tiny bound to force rotation
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := QueryRecord{Engine: "typer", SQL: "select count(*) as n from lineitem", Rows: 1}
	for i := 0; i < 20; i++ {
		if err := l.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 256 {
		t.Errorf("live log %d bytes exceeds bound 256", st.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("rotation target missing: %v", err)
	}
}

// TestQueryLogRotateFailure injects a rotation failure (the rename
// target is occupied by a directory, so os.Rename fails) and checks the
// log stays usable: writes keep succeeding — appending past the bound
// rather than failing against a closed handle — and once the target is
// cleared, the next write rotates normally and Close is clean.
func TestQueryLogRotateFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ndjson")
	if err := os.Mkdir(path+".1", 0o755); err != nil {
		t.Fatal(err)
	}
	l, err := OpenQueryLog(path, 256) // tiny bound to force rotation
	if err != nil {
		t.Fatal(err)
	}
	rec := QueryRecord{Engine: "typer", SQL: "select count(*) as n from lineitem", Rows: 1}
	for i := 0; i < 20; i++ {
		if err := l.Write(&rec); err != nil {
			t.Fatalf("write %d after failed rotate: %v", i, err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(splitLines(raw)); n != 20 {
		t.Errorf("got %d records with rotation blocked, want all 20", n)
	}
	var got QueryRecord
	if err := json.Unmarshal(splitLines(raw)[19], &got); err != nil || got.SQL != rec.SQL {
		t.Errorf("last record not parseable after failed rotations: %v %+v", err, got)
	}

	// Unblock the rotation target: the very next over-bound write
	// rotates and the live file shrinks back under the bound.
	if err := os.Remove(path + ".1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(&rec); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 256 {
		t.Errorf("live log %d bytes exceeds bound 256 after rotation unblocked", st.Size())
	}
	if fi, err := os.Stat(path + ".1"); err != nil || fi.IsDir() {
		t.Errorf("rotation target missing after unblock: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("close after failed rotations: %v", err)
	}
}

func TestQueryLogReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ndjson")
	rec := QueryRecord{Engine: "typer", SQL: "select 1"}
	for i := 0; i < 2; i++ {
		l, err := OpenQueryLog(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Write(&rec); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(splitLines(raw)); n != 2 {
		t.Errorf("got %d lines after reopen, want 2", n)
	}
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, b[start:i])
			start = i + 1
		}
	}
	return out
}
