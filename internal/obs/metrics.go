package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// bucketBounds are the histogram upper bounds in seconds, spanning
// microsecond pipelines to pathological ten-second queries.
var bucketBounds = [numBounds]float64{
	1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

const numBounds = 7

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	counts [numBounds + 1]uint64 // +Inf bucket last
	sum    float64
	n      uint64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(bucketBounds[:], seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// Metrics aggregates execution-time histograms across queries:
// whole-query latency per engine and per-pipeline wall time per backend
// ("t"/"v"), rendered in the Prometheus text exposition format by
// WriteTo for the proto server's /metricsz endpoint.
type Metrics struct {
	mu    sync.Mutex
	query map[string]*histogram // by engine name submitted to stats
	pipe  map[string]*histogram // by pipeline backend tag
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		query: make(map[string]*histogram),
		pipe:  make(map[string]*histogram),
	}
}

// ObserveQuery records one whole-query latency under the engine name.
func (m *Metrics) ObserveQuery(engine string, seconds float64) {
	if engine == "" {
		engine = "unknown"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.query[engine]
	if h == nil {
		h = &histogram{}
		m.query[engine] = h
	}
	h.observe(seconds)
}

// ObservePipes records each pipeline's wall time under its backend tag
// ("t" → typer-style fused, "v" → tectorwise vectors).
func (m *Metrics) ObservePipes(pipes []PipeStat) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range pipes {
		eng := p.Engine
		if eng == "" {
			eng = "unknown"
		}
		h := m.pipe[eng]
		if h == nil {
			h = &histogram{}
			m.pipe[eng] = h
		}
		h.observe(float64(p.Nanos) / 1e9)
	}
}

// WriteTo renders the histograms in the Prometheus text format, engines
// in sorted order so the output is deterministic.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cw := &countWriter{w: w}
	if err := writeHistFamily(cw, "paradigms_query_seconds",
		"Whole-query latency by engine.", "engine", m.query); err != nil {
		return cw.n, err
	}
	if err := writeHistFamily(cw, "paradigms_pipeline_seconds",
		"Per-pipeline wall time by backend (t = fused, v = vectorized).", "backend", m.pipe); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeHistFamily renders one histogram family with a single label.
func writeHistFamily(w io.Writer, name, help, label string, hists map[string]*histogram) error {
	if len(hists) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		var cum uint64
		for i, bound := range bucketBounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				name, label, k, formatBound(bound), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(bucketBounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %g\n%s_count{%s=%q} %d\n",
			name, label, k, h.sum, name, label, k, h.n); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound without exponent notation, as the
// Prometheus text format prefers.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

// countWriter counts bytes for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
