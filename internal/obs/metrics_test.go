package obs

import (
	"strings"
	"testing"
)

func TestMetricsWriteTo(t *testing.T) {
	m := NewMetrics()
	m.ObserveQuery("typer", 0.0005)      // le=0.001 bucket
	m.ObserveQuery("typer", 0.05)        // le=0.1 bucket
	m.ObserveQuery("tectorwise", 0.0005)
	m.ObservePipes([]PipeStat{
		{Engine: "t", Nanos: 50_000},        // 50µs → le=0.0001
		{Engine: "v", Nanos: 2_000_000},     // 2ms → le=0.01
		{Engine: "v", Nanos: 1_000_000_000}, // 1s → le=1
	})

	var b strings.Builder
	n, err := m.WriteTo(&b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n != int64(len(out)) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, len(out))
	}
	for _, want := range []string{
		`# TYPE paradigms_query_seconds histogram`,
		`paradigms_query_seconds_bucket{engine="typer",le="0.001"} 1`,
		`paradigms_query_seconds_bucket{engine="typer",le="+Inf"} 2`,
		`paradigms_query_seconds_count{engine="typer"} 2`,
		`paradigms_query_seconds_count{engine="tectorwise"} 1`,
		`# TYPE paradigms_pipeline_seconds histogram`,
		`paradigms_pipeline_seconds_bucket{backend="t",le="0.0001"} 1`,
		`paradigms_pipeline_seconds_count{backend="v"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Engines render in sorted order so scrapes are deterministic.
	if strings.Index(out, `engine="tectorwise"`) > strings.Index(out, `engine="typer"`) {
		t.Error("engines not sorted")
	}
}

func TestMetricsEmpty(t *testing.T) {
	var b strings.Builder
	n, err := NewMetrics().WriteTo(&b)
	if err != nil || n != 0 || b.Len() != 0 {
		t.Errorf("empty registry should render nothing: n=%d err=%v out=%q", n, err, b.String())
	}
}
