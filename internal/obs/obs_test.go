package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestCollectorMerge pins the merge discipline: rows and batches add
// across workers, wall time takes the maximum.
func TestCollectorMerge(t *testing.T) {
	c := NewCollector()
	c.SetPipes(2)
	c.DescribePipe(0, "customer", true, 3000, 0, 300)
	c.DescribePipe(1, "lineitem", false, 6000, 1, 600)
	c.PipeWorker(0, 100, 2, 50)
	c.PipeWorker(0, 200, 3, 80)
	c.PipeWorker(0, 50, 1, 30)
	c.PipeWorker(1, 10, 0, 900)

	pipes := c.Pipes()
	if len(pipes) != 2 {
		t.Fatalf("got %d pipes, want 2", len(pipes))
	}
	p := pipes[0]
	if p.Table != "customer" || !p.Build || p.RowsIn != 3000 || p.EstRows != 300 {
		t.Errorf("describe not preserved: %+v", p)
	}
	if p.RowsOut != 350 {
		t.Errorf("RowsOut = %d, want 350 (sum across workers)", p.RowsOut)
	}
	if p.Batches != 6 {
		t.Errorf("Batches = %d, want 6", p.Batches)
	}
	if p.Nanos != 80 {
		t.Errorf("Nanos = %d, want 80 (max across workers)", p.Nanos)
	}
	if got := p.Selectivity(); got != 350.0/3000.0 {
		t.Errorf("Selectivity = %v, want %v", got, 350.0/3000.0)
	}
	if pipes[1].Probes != 1 || pipes[1].Build {
		t.Errorf("pipe 1 shape not preserved: %+v", pipes[1])
	}
}

// TestCollectorSetPipesIdempotent checks a second SetPipes with the
// same count keeps accumulated stats (both lowerings describe the same
// decomposition, so the hybrid path describes twice).
func TestCollectorSetPipesIdempotent(t *testing.T) {
	c := NewCollector()
	c.SetPipes(1)
	c.PipeWorker(0, 42, 1, 10)
	c.SetPipes(1)
	if got := c.Pipes()[0].RowsOut; got != 42 {
		t.Errorf("RowsOut after idempotent SetPipes = %d, want 42", got)
	}
	c.SetPipes(3)
	if got := c.Pipes(); len(got) != 3 || got[0].RowsOut != 0 {
		t.Errorf("resize did not reset: %+v", got)
	}
}

// TestCollectorConcurrent hammers the merge point from many goroutines;
// run under -race this pins the collector's thread safety.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	c.SetPipes(4)
	const workers, rounds = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < 4; i++ {
					c.PipeWorker(i, 1, 1, int64(w*rounds+r))
				}
			}
		}(w)
	}
	wg.Wait()
	for i, p := range c.Pipes() {
		if p.RowsOut != workers*rounds {
			t.Errorf("pipe %d RowsOut = %d, want %d", i, p.RowsOut, workers*rounds)
		}
		if p.Nanos != (workers-1)*rounds+rounds-1 {
			t.Errorf("pipe %d Nanos = %d, want %d", i, p.Nanos, (workers-1)*rounds+rounds-1)
		}
	}
}

// TestCollectorOutOfRange checks out-of-range pipeline indexes are
// ignored rather than panicking (defensive: engine bugs must not crash
// instrumented production runs).
func TestCollectorOutOfRange(t *testing.T) {
	c := NewCollector()
	c.SetPipes(1)
	c.PipeWorker(-1, 1, 1, 1)
	c.PipeWorker(5, 1, 1, 1)
	c.DescribePipe(9, "x", false, 0, 0, 0)
	c.SetPipeEngine(9, "t")
	c.SetVec(9, 1)
	c.SetHTRows(9, 1)
	if got := c.Pipes()[0].RowsOut; got != 0 {
		t.Errorf("out-of-range merge leaked into pipe 0: %d", got)
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no collector")
	}
	c := NewCollector()
	if got := FromContext(WithCollector(context.Background(), c)); got != c {
		t.Fatalf("FromContext = %p, want %p", got, c)
	}
}

func TestShapeHash(t *testing.T) {
	a := []PipeStat{{Table: "customer", Build: true}, {Table: "lineitem", Probes: 1}}
	b := []PipeStat{{Table: "customer", Build: true}, {Table: "lineitem", Probes: 1}}
	if ShapeHash(a) != ShapeHash(b) {
		t.Error("identical shapes must hash equal")
	}
	// Stats that vary run-to-run must not affect the hash.
	b[0].RowsOut, b[1].Nanos = 99, 12345
	if ShapeHash(a) != ShapeHash(b) {
		t.Error("dynamic stats must not affect the shape hash")
	}
	c := []PipeStat{{Table: "customer", Build: true}, {Table: "orders", Probes: 1}}
	if ShapeHash(a) == ShapeHash(c) {
		t.Error("different tables must hash differently")
	}
	if len(ShapeHash(a)) != 16 {
		t.Errorf("hash %q is not 16 hex chars", ShapeHash(a))
	}
}

func TestFormatPipes(t *testing.T) {
	out := FormatPipes([]PipeStat{
		{Index: 0, Table: "customer", Build: true, Engine: "t", RowsIn: 3000, RowsOut: 604, HTRows: 604, EstRows: 300, Nanos: 71000},
		{Index: 1, Table: "lineitem", Engine: "v", RowsIn: 120376, RowsOut: 627, Probes: 1, VecSize: 1024, EstRows: 1083, Nanos: 1000000},
	})
	for _, want := range []string{"customer", "lineitem", "build", "final", "604", "627", "est_rows", "rows_out"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatPipes output missing %q:\n%s", want, out)
		}
	}
}
