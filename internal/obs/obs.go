// Package obs is the execution-telemetry extension layer: per-pipeline
// counters collected inside all three engines (typer, tectorwise,
// hybrid), a structured NDJSON query log, and Prometheus-text metrics.
//
// The collection discipline mirrors the engines' morsel parallelism:
// each worker accumulates plain int64 counters in locals while driving
// its pipeline, and merges them into the shared Collector exactly once
// per pipeline (one mutex acquisition per worker per pipeline — never
// inside the tuple/vector hot loop). Instrumentation is opt-in through
// the context: engines call FromContext once at dispatch time, and when
// no collector rides the context the instrumented paths collapse to the
// uninstrumented code with no extra work per batch. The overhead guard
// test in the root package pins this property. DESIGN.md §13 covers
// the architecture and the three consumer surfaces.
package obs

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"paradigms/internal/exec"
	"paradigms/internal/plan"
)

// PipeStat is the merged telemetry of one pipeline of one execution.
// Pipelines are indexed in lowering order: build pipelines first
// (bottom-up over the join DAG), the final pipeline last — the same
// decomposition both engine lowerings produce, so stats from any engine
// (or a hybrid mix) line up pipe-for-pipe.
type PipeStat struct {
	// Index is the pipeline's position in lowering order.
	Index int `json:"pipe"`
	// Table is the driving scan's table name.
	Table string `json:"table"`
	// Build reports whether the pipeline terminates in a hash-table
	// build (true) or is the query's final pipeline (false).
	Build bool `json:"build,omitempty"`
	// Engine is the backend that ran the pipeline: "t" (typer-style
	// fused closures) or "v" (tectorwise vectors).
	Engine string `json:"engine,omitempty"`
	// RowsIn is the pipeline's input cardinality (the scan's rows).
	RowsIn int64 `json:"rows_in"`
	// RowsOut is the observed output cardinality: rows scattered into
	// the hash table for build pipelines, rows reaching the final
	// sink (pre-aggregation) for the final pipeline.
	RowsOut int64 `json:"rows_out"`
	// Batches counts the vectors a vectorized pipeline emitted
	// (0 for tuple-at-a-time pipelines).
	Batches int64 `json:"batches,omitempty"`
	// HTRows is the hash table's row count after a build pipeline.
	HTRows int64 `json:"ht_rows,omitempty"`
	// Probes is the number of hash joins probed inside the pipeline.
	Probes int `json:"probes,omitempty"`
	// VecSize is the vector size a vectorized pipeline settled on.
	VecSize int `json:"vec,omitempty"`
	// Nanos is the pipeline's wall time: the maximum across workers,
	// since workers drive the pipeline concurrently.
	Nanos int64 `json:"nanos"`
	// EstRows is the planner's estimated output cardinality, placed
	// next to RowsOut so consumers can compute estimation drift.
	EstRows float64 `json:"est_rows"`
}

// Selectivity is the pipeline's observed rows-out / rows-in ratio
// (0 when no input rows were seen).
func (p *PipeStat) Selectivity() float64 {
	if p.RowsIn <= 0 {
		return 0
	}
	return float64(p.RowsOut) / float64(p.RowsIn)
}

// Collector accumulates per-pipeline stats for one execution. All
// methods are safe for concurrent use; the intended pattern is
// describe-once from the driver (SetPipes, DescribePipe) and
// merge-once per worker per pipeline (PipeWorker).
type Collector struct {
	mu    sync.Mutex
	pipes []PipeStat
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// SetPipes sizes the pipeline slice. Idempotent: a second call with the
// same count (e.g. from a retried lowering) keeps existing stats.
func (c *Collector) SetPipes(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pipes) != n {
		c.pipes = make([]PipeStat, n)
		for i := range c.pipes {
			c.pipes[i].Index = i
		}
	}
}

// DescribePipe records the pipeline's static shape: driving table,
// build/final role, input cardinality, probe count, and the planner's
// output estimate.
func (c *Collector) DescribePipe(i int, table string, build bool, rowsIn int64, probes int, est float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.pipes) {
		return
	}
	p := &c.pipes[i]
	p.Table, p.Build, p.RowsIn, p.Probes, p.EstRows = table, build, rowsIn, probes, est
}

// SetPipeEngine records which backend ran the pipeline ("t" or "v").
func (c *Collector) SetPipeEngine(i int, engine string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.pipes) {
		c.pipes[i].Engine = engine
	}
}

// SetVec records the vector size a vectorized pipeline settled on.
func (c *Collector) SetVec(i, vec int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.pipes) {
		c.pipes[i].VecSize = vec
	}
}

// SetHTRows records the hash-table row count after a build pipeline.
func (c *Collector) SetHTRows(i int, rows int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.pipes) {
		c.pipes[i].HTRows = rows
	}
}

// PipeWorker merges one worker's pipeline totals: output rows and
// batches add across workers; wall time takes the maximum, since the
// workers drive the pipeline concurrently. This is the single merge
// point — exactly one call per worker per pipeline.
func (c *Collector) PipeWorker(i int, rowsOut, batches, nanos int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.pipes) {
		return
	}
	p := &c.pipes[i]
	p.RowsOut += rowsOut
	p.Batches += batches
	if nanos > p.Nanos {
		p.Nanos = nanos
	}
}

// Pipes returns a snapshot of the per-pipeline stats.
func (c *Collector) Pipes() []PipeStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PipeStat, len(c.pipes))
	copy(out, c.pipes)
	return out
}

// ctxKey keys the collector in a context, following the pattern of
// exec.WithMorselSize: read once at dispatch time, nil means
// uninstrumented.
type ctxKey struct{}

// WithCollector attaches a collector to the context; engines observing
// the context record per-pipeline stats into it.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the context's collector, or nil when the
// execution is uninstrumented.
func FromContext(ctx context.Context) *Collector {
	if c, ok := ctx.Value(ctxKey{}).(*Collector); ok {
		return c
	}
	return nil
}

// CountingSink wraps a plan.Sink with worker-local row/batch counters.
// The counters are plain fields — each worker owns its wrapper — and the
// owner reads them after the stage finishes to merge via PipeWorker.
type CountingSink struct {
	Sink    plan.Sink
	Rows    int64
	Batches int64
}

// Consume implements plan.Sink.
func (s *CountingSink) Consume(b *plan.Batch) {
	s.Rows += int64(b.K)
	s.Batches++
	s.Sink.Consume(b)
}

// Finish implements plan.Sink.
func (s *CountingSink) Finish(bar *exec.Barrier, wid int) {
	s.Sink.Finish(bar, wid)
}

// ShapeHash is a short stable fingerprint of a plan's pipeline
// decomposition (tables, roles, probe counts) — the key feedback
// optimization joins query-log records on.
func ShapeHash(pipes []PipeStat) string {
	h := fnv.New64a()
	for _, p := range pipes {
		fmt.Fprintf(h, "%s|%v|%d;", p.Table, p.Build, p.Probes)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
