package obs

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// FormatPipes renders the per-pipeline estimated-vs-observed table of
// EXPLAIN ANALYZE: one row per pipeline in lowering order, the
// planner's cardinality estimate next to the observed output so drift
// is visible at a glance.
func FormatPipes(pipes []PipeStat) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "pipe\ttable\trole\teng\trows_in\test_rows\trows_out\tsel\tht_rows\tvec\ttime")
	for _, p := range pipes {
		role := "final"
		if p.Build {
			role = "build"
		}
		eng := p.Engine
		if eng == "" {
			eng = "-"
		}
		vec := "-"
		if p.VecSize > 0 {
			vec = fmt.Sprintf("%d", p.VecSize)
		}
		ht := "-"
		if p.Build {
			ht = fmt.Sprintf("%d", p.HTRows)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%d\t%.0f\t%d\t%.4f\t%s\t%s\t%s\n",
			p.Index, p.Table, role, eng, p.RowsIn, p.EstRows, p.RowsOut,
			p.Selectivity(), ht, vec, formatNanos(p.Nanos))
	}
	w.Flush()
	return b.String()
}

// formatNanos renders a pipeline wall time compactly (µs resolution —
// finer is noise at morsel granularity).
func formatNanos(n int64) string {
	d := time.Duration(n).Round(time.Microsecond)
	return d.String()
}
