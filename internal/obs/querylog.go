package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// QueryRecord is one NDJSON line of the structured query log: the
// normalized text, how the query was routed, and the per-pipeline
// observed cardinalities and timings — the substrate feedback-driven
// optimization mines (ROADMAP item 4).
type QueryRecord struct {
	// Time is the execution's completion time, RFC 3339.
	Time string `json:"time"`
	// Tenant attributes the execution ("" = default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Engine is the engine the client asked for (possibly "auto").
	Engine string `json:"engine"`
	// Used is the engine that actually ran, with the hybrid's
	// per-pipeline assignment decoration (e.g. "hybrid[t,v]").
	Used string `json:"used,omitempty"`
	// SQL is the normalized query text (prepcache.Normalize).
	SQL string `json:"sql"`
	// Prepared and Streamed record the execution path.
	Prepared bool `json:"prepared,omitempty"`
	Streamed bool `json:"streamed,omitempty"`
	// CatalogVersion pins which catalog the plan was built against.
	CatalogVersion uint64 `json:"catalog_version,omitempty"`
	// PlanShape is ShapeHash of the pipeline decomposition.
	PlanShape string `json:"plan_shape,omitempty"`
	// LatencyMs is the whole-query wall time in milliseconds.
	LatencyMs float64 `json:"latency_ms"`
	// Rows is the result cardinality (-1 when unknown, e.g. errors).
	Rows int64 `json:"rows"`
	// Err carries the failure when the execution did not succeed.
	Err string `json:"error,omitempty"`
	// Pipes is the per-pipeline telemetry (present when the server
	// ran the execution instrumented).
	Pipes []PipeStat `json:"pipes,omitempty"`
}

// QueryLog is a bounded, rotating NDJSON log: records append to path,
// and when the file would exceed maxBytes it is rotated once to
// path+".1" (the previous rotation is overwritten), so the log's disk
// footprint stays under 2×maxBytes.
type QueryLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	max  int64
	size int64
}

// OpenQueryLog opens (appending) or creates the log at path.
// maxBytes <= 0 selects a 64 MiB default bound.
func OpenQueryLog(path string, maxBytes int64) (*QueryLog, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open query log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat query log: %w", err)
	}
	return &QueryLog{f: f, path: path, max: maxBytes, size: st.Size()}, nil
}

// Write appends one record as a single NDJSON line, rotating first if
// the line would push the file over the bound.
func (l *QueryLog) Write(rec *QueryRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: marshal query record: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("obs: query log closed")
	}
	if l.size+int64(len(line)) > l.max && l.size > 0 {
		if err := l.rotateLocked(); err != nil && l.f == nil {
			// Rotation failed AND the handle could not be restored:
			// nothing to write into.
			return err
		}
		// A failed rotation with a restored handle degrades to
		// appending past the bound: the size cap is best-effort, and
		// growing beyond it beats dropping records. The next Write
		// retries the rotation.
	}
	n, err := l.f.Write(line)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("obs: write query log: %w", err)
	}
	return nil
}

// rotateLocked moves the current file to path+".1" and starts fresh.
// On failure the handle is restored to a usable state: the un-renamed
// file is reopened appending (or, if even that fails, l.f is nil so
// Write and Close see a closed log instead of a closed-but-non-nil
// handle that every later Write would fail against and Close would
// double-close).
func (l *QueryLog) rotateLocked() error {
	l.f.Close()
	l.f = nil
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		f, ferr := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return fmt.Errorf("obs: rotate query log: %v (reopen after failed rotate: %w)", err, ferr)
		}
		l.f = f
		return fmt.Errorf("obs: rotate query log: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: reopen query log: %w", err)
	}
	l.f, l.size = f, 0
	return nil
}

// Close flushes and closes the log; Write after Close errors.
func (l *QueryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
