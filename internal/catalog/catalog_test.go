package catalog

import (
	"testing"

	"paradigms/internal/ssb"
	"paradigms/internal/tpch"
)

func TestFromDatabaseTPCH(t *testing.T) {
	cat := FromDatabase(tpch.Generate(0.01, 0))
	li := cat.Table("lineitem")
	if li == nil {
		t.Fatal("lineitem missing from catalog")
	}
	if li.Key != "" {
		t.Errorf("lineitem should have no unique key, got %q", li.Key)
	}
	if got := li.Column("l_shipdate").Type.Kind; got != Date {
		t.Errorf("l_shipdate kind = %v, want date", got)
	}
	if got := li.Column("l_discount").Type; got != (Type{Kind: Numeric, Scale: 2}) {
		t.Errorf("l_discount type = %+v, want numeric scale 2", got)
	}
	ord := cat.Table("orders")
	if ord.Key != "o_orderkey" {
		t.Errorf("orders key = %q, want o_orderkey", ord.Key)
	}
	if cat.Table("nosuch") != nil {
		t.Error("unknown table should resolve to nil")
	}
	if got := cat.Table("customer").Column("c_mktsegment").Type.Kind; got != String {
		t.Errorf("c_mktsegment kind = %v, want string", got)
	}
}

func TestFromDatabaseSSBScales(t *testing.T) {
	cat := FromDatabase(ssb.Generate(0.01, 0))
	lo := cat.Table("lineorder")
	if got := lo.Column("lo_discount").Type; got != (Type{Kind: Numeric, Scale: 0}) {
		t.Errorf("lo_discount type = %+v, want numeric scale 0", got)
	}
	if got := lo.Column("lo_quantity").Type; got != (Type{Kind: Numeric, Scale: 2}) {
		t.Errorf("lo_quantity type = %+v, want numeric scale 2", got)
	}
	if d := cat.Table("date"); d == nil || d.Key != "d_datekey" {
		t.Fatalf("date dimension key not annotated: %+v", d)
	}
}

func TestResolve(t *testing.T) {
	cat := FromDatabase(tpch.Generate(0.01, 0))
	tables := []*Table{cat.Table("customer"), cat.Table("orders")}
	if got := Resolve(tables, "o_orderdate"); len(got) != 1 || got[0].Table.Name != "orders" {
		t.Errorf("Resolve(o_orderdate) = %v", got)
	}
	if got := Resolve(tables, "nope"); got != nil {
		t.Errorf("Resolve(nope) = %v, want nil", got)
	}
}
