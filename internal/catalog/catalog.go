// Package catalog is the schema layer of the SQL front-end — an
// extension beyond the paper's fixed query set: it describes the tables
// and columns of a materialized storage.Database (TPC-H or SSB) so that
// ad-hoc SQL can be name-resolved and type-checked against exactly the
// column vectors the engines execute over.
//
// A Catalog is derived from a Database (the relations carry names, types
// and cardinalities already); the catalog adds the two pieces of schema
// knowledge the planner needs that the storage layer does not record:
// which column is a relation's unique key (hash joins build on the
// key-unique side, and group-by keys collapse through key columns), and
// the decimal scale of each fixed-point column (SQL literals are coerced
// to the column's scale so `l_discount between 0.05 and 0.07` compares
// raw scaled integers, §3's exact-integer arithmetic).
package catalog

import (
	"sort"
	"sync/atomic"

	"paradigms/internal/storage"
)

// Kind is the logical type of a column or expression value.
type Kind uint8

// Logical value kinds. All non-string kinds evaluate to 64-bit integers
// during execution (dates as day numbers, numerics as scaled integers).
const (
	Int32 Kind = iota
	Int64
	Numeric
	Date
	Byte
	String
)

func (k Kind) String() string {
	switch k {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Numeric:
		return "numeric"
	case Date:
		return "date"
	case Byte:
		return "byte"
	case String:
		return "string"
	}
	return "invalid"
}

// Type is a logical value type: a kind plus, for numerics, the decimal
// scale (raw value = decimal value · 10^Scale).
type Type struct {
	Kind  Kind
	Scale int
}

// Numeric kinds (int32/int64/numeric/date) support arithmetic and
// ordered comparison as 64-bit integers.
func (t Type) IsNumeric() bool {
	return t.Kind == Int32 || t.Kind == Int64 || t.Kind == Numeric || t.Kind == Date
}

// Column is one named, typed column of a cataloged table.
type Column struct {
	Name  string
	Type  Type
	Table *Table
}

// Table describes one relation of the database.
type Table struct {
	Name string
	// Rel is the backing relation; the lowering pass reads column
	// vectors straight from it.
	Rel *storage.Relation
	// Key is the name of the table's unique key column ("" if none).
	// Join builds keyed by it produce N:1 probes; group-by keys that
	// include it functionally determine the table's other columns.
	Key string

	cols   []*Column
	byName map[string]*Column
}

// Rows is the table cardinality (the planner's only statistic).
func (t *Table) Rows() int { return t.Rel.Rows() }

// Columns lists the columns in definition order.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column { return t.byName[name] }

// Catalog is the schema of one database.
type Catalog struct {
	DB *storage.Database
	// Version uniquely identifies this derived catalog instance
	// process-wide — the plan cache's key component, so statements
	// prepared against one database can never serve another (or a
	// regenerated instance of the same schema).
	Version uint64

	tables map[string]*Table
	order  []string
}

// versions hands out catalog version numbers.
var versions atomic.Uint64

// uniqueKeys annotates the unique key column of every relation both
// generators materialize (shared spellings: TPC-H and SSB dimensions use
// the same key column names). Fact tables have no unique key.
var uniqueKeys = map[string]string{
	"customer": "c_custkey",
	"orders":   "o_orderkey",
	"supplier": "s_suppkey",
	"part":     "p_partkey",
	"nation":   "n_nationkey",
	"region":   "r_regionkey",
	"date":     "d_datekey",
}

// partitionKeys annotates the hash-partitioning column of every fact
// table for the sharded executor (internal/exchange). lineitem and
// orders co-partition on the order key, so their join never crosses a
// shard boundary; lineorder joins only replicated dimensions, so any
// high-cardinality column works and the customer key spreads evenly.
// Relations absent here — the dimensions, and partsupp with its
// composite key — are replicated to every shard.
var partitionKeys = map[string]string{
	"lineitem":  "l_orderkey",
	"orders":    "o_orderkey",
	"lineorder": "lo_custkey",
}

// PartitionKey returns the relation's hash-partition column name, or
// "" for relations that are replicated in a sharded deployment.
func PartitionKey(table string) string { return partitionKeys[table] }

// numericScales overrides the default scale-2 annotation of Numeric
// columns. SSB stores lo_discount as a raw percentage point (1..10), so
// its SQL literals are whole numbers.
var numericScales = map[string]int{
	"lo_discount": 0,
}

// FromDatabase derives the catalog of a generated database.
func FromDatabase(db *storage.Database) *Catalog {
	c := &Catalog{DB: db, Version: versions.Add(1), tables: make(map[string]*Table)}
	for _, name := range db.Relations() {
		rel := db.Rel(name)
		t := &Table{Name: name, Rel: rel, Key: uniqueKeys[name], byName: make(map[string]*Column)}
		for _, col := range rel.Columns() {
			typ := typeOf(col)
			cc := &Column{Name: col.Name, Type: typ, Table: t}
			t.cols = append(t.cols, cc)
			t.byName[col.Name] = cc
		}
		c.tables[name] = t
		c.order = append(c.order, name)
	}
	sort.Strings(c.order)
	return c
}

// typeOf maps a physical column type to its logical type.
func typeOf(col *storage.Column) Type {
	switch col.Type {
	case storage.Int32:
		return Type{Kind: Int32}
	case storage.Int64:
		return Type{Kind: Int64}
	case storage.Numeric:
		scale := 2
		if s, ok := numericScales[col.Name]; ok {
			scale = s
		}
		return Type{Kind: Numeric, Scale: scale}
	case storage.Date:
		return Type{Kind: Date}
	case storage.Byte:
		return Type{Kind: Byte}
	case storage.String:
		return Type{Kind: String}
	}
	panic("catalog: unknown column type")
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables lists the table names in sorted order.
func (c *Catalog) Tables() []string { return c.order }

// Resolve finds every table among the given ones that has a column with
// the given name — the binder's unqualified-name lookup. The result is
// in the order of the input tables, so ambiguity messages are stable.
func Resolve(tables []*Table, col string) []*Column {
	var out []*Column
	for _, t := range tables {
		if c := t.Column(col); c != nil {
			out = append(out, c)
		}
	}
	return out
}
