package feedback

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"paradigms/internal/obs"
)

// driftPipes is one execution's telemetry with a controllable worst
// estimation error: the supplier pipe observes `obs` rows against an
// estimate of 100.
func driftPipes(observed int64) []obs.PipeStat {
	return []obs.PipeStat{
		{Index: 0, Table: "supplier", Build: true, RowsIn: 1000, RowsOut: observed, EstRows: 100},
		{Index: 1, Table: "lineitem", RowsIn: 5000, RowsOut: 5000, Probes: 1, EstRows: 5000},
	}
}

// TestStoreAdvisesReplanAfterSustainedDrift: one or two drifting runs
// advise nothing, the DriftRuns-th advises a re-plan, and the advice
// resets the streak so the caller is not re-advised every subsequent
// run.
func TestStoreAdvisesReplanAfterSustainedDrift(t *testing.T) {
	s := NewStore()
	k := Key{SQL: "select 1", Catalog: 7, Shape: "abc"}
	bad := driftPipes(900) // drift 9x
	for run := 1; run < DriftRuns; run++ {
		if s.Record(k, bad) {
			t.Fatalf("advised replan after %d runs (want %d)", run, DriftRuns)
		}
	}
	if !s.Record(k, bad) {
		t.Fatalf("no replan advice after %d sustained drifting runs", DriftRuns)
	}
	for run := 1; run < DriftRuns; run++ {
		if s.Record(k, bad) {
			t.Fatalf("re-advised %d runs after the reset (want a full new streak)", run)
		}
	}
	if !s.Record(k, bad) {
		t.Fatal("second streak never re-advised")
	}
}

// TestStoreDriftStreakBreaks: a single in-bounds run resets the streak
// — drift must be sustained, not merely frequent.
func TestStoreDriftStreakBreaks(t *testing.T) {
	s := NewStore()
	k := Key{SQL: "q", Shape: "s"}
	bad, good := driftPipes(900), driftPipes(120) // 9x vs 1.2x
	for i := 0; i < 10; i++ {
		if s.Record(k, bad) {
			t.Fatal("advised mid-alternation")
		}
		if s.Record(k, good) {
			t.Fatal("advised on an in-bounds run")
		}
	}
}

// TestHintsAttribution: only probe-free pipelines contribute observed
// selectivity (a probing pipeline's output confounds filters with join
// retention), zero-output observations clamp away from exact zero, and
// distinct keys keep distinct state.
func TestHintsAttribution(t *testing.T) {
	s := NewStore()
	k := Key{SQL: "q", Shape: "s"}
	s.Record(k, []obs.PipeStat{
		{Table: "supplier", Build: true, RowsIn: 1000, RowsOut: 900, EstRows: 100},
		{Table: "part", Build: true, RowsIn: 1000, RowsOut: 0, EstRows: 300},
		{Table: "lineitem", RowsIn: 5000, RowsOut: 100, Probes: 2, EstRows: 120},
	})
	h := s.Hints(k)
	if got, ok := h.ScanSelectivity("supplier"); !ok || math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("supplier hint = %v, %v; want 0.9", got, ok)
	}
	if got, ok := h.ScanSelectivity("part"); !ok || got <= 0 || got > 0.001 {
		t.Fatalf("part hint = %v, %v; want clamped small positive", got, ok)
	}
	if _, ok := h.ScanSelectivity("lineitem"); ok {
		t.Fatal("probing pipeline leaked a selectivity hint")
	}
	if s.Hints(Key{SQL: "q", Shape: "other"}) != nil {
		t.Fatal("hints leaked across shape keys")
	}
	var none Hints
	if _, ok := none.ScanSelectivity("supplier"); ok {
		t.Fatal("nil Hints claimed a selectivity")
	}
}

// TestStoreBoundedUnderCatalogChurn: a workload that re-registers its
// catalog (bumping the version in every key) must not grow the store
// without bound — each statement keeps exactly one live entry, because
// inserting a newer catalog version evicts the stale ones eagerly.
func TestStoreBoundedUnderCatalogChurn(t *testing.T) {
	s := NewStore()
	pipes := driftPipes(120)
	const stmts = 16
	for version := uint64(1); version <= 500; version++ {
		for q := 0; q < stmts; q++ {
			k := Key{SQL: string(rune('a' + q)), Catalog: version, Shape: "s"}
			s.Record(k, pipes)
		}
		if got := s.Len(); got > stmts {
			t.Fatalf("store grew to %d entries at version %d, want <= %d (stale versions evicted)", got, version, stmts)
		}
	}
	if got := s.Len(); got != stmts {
		t.Fatalf("store holds %d entries after churn, want %d", got, stmts)
	}
	// The surviving state is the newest version's, fresh (not carried
	// over from evicted versions).
	k := Key{SQL: "a", Catalog: 500, Shape: "s"}
	if runs := s.Runs(k); runs != 1 {
		t.Fatalf("newest-version entry has %d runs, want 1", runs)
	}
	if runs := s.Runs(Key{SQL: "a", Catalog: 499, Shape: "s"}); runs != 0 {
		t.Fatalf("stale-version entry still has state (%d runs)", runs)
	}
}

// TestStoreLRUEviction: with distinct statements beyond the cap, the
// least recently used entry is evicted — and touching an entry (via
// Record or Hints) protects it.
func TestStoreLRUEviction(t *testing.T) {
	s := NewStore()
	pipes := driftPipes(120)
	key := func(i int) Key { return Key{SQL: fmt.Sprintf("q%d", i), Shape: "s"} }
	for i := 0; i < maxKeys; i++ {
		s.Record(key(i), pipes)
	}
	if got := s.Len(); got != maxKeys {
		t.Fatalf("store holds %d entries, want %d", got, maxKeys)
	}
	// Touch the two oldest: q0 by recording, q1 by consulting hints.
	s.Record(key(0), pipes)
	if s.Hints(key(1)) == nil {
		t.Fatal("q1 lost its hints while the store was merely full")
	}
	// Two inserts now evict the least recently used entries: q2 and q3.
	s.Record(key(maxKeys), pipes)
	s.Record(key(maxKeys+1), pipes)
	if got := s.Len(); got != maxKeys {
		t.Fatalf("store holds %d entries after overflow, want %d", got, maxKeys)
	}
	for _, want := range []struct {
		i     int
		alive bool
	}{{0, true}, {1, true}, {2, false}, {3, false}, {4, true}, {maxKeys, true}, {maxKeys + 1, true}} {
		if got := s.Runs(key(want.i)) > 0; got != want.alive {
			t.Errorf("q%d alive = %v, want %v", want.i, got, want.alive)
		}
	}
}

// TestMineLog: frequency-ordered templates across the live file and its
// rotation, newest pipes win, failed executions and torn lines are
// skipped, and the limit caps the result.
func TestMineLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.ndjson")
	old := `{"sql":"select a","engine":"auto","latency_ms":1,"rows":1,"pipes":[{"pipe":0,"table":"supplier","rows_in":10,"rows_out":1,"est_rows":5}]}
{"sql":"select b","engine":"auto","latency_ms":1,"rows":1}
`
	live := `{"sql":"select a","engine":"auto","latency_ms":1,"rows":1,"pipes":[{"pipe":0,"table":"supplier","rows_in":10,"rows_out":9,"est_rows":5}]}
{"sql":"select a","engine":"auto","latency_ms":1,"rows":1}
{"sql":"select c","engine":"auto","latency_ms":1,"rows":-1,"error":"boom"}
{not json}
{"sql":"select b","engine":"auto","latency_ms":1,"rows":1}
`
	if err := os.WriteFile(path+".1", []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(live), 0o644); err != nil {
		t.Fatal(err)
	}

	tmpls, err := MineLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls) != 2 {
		t.Fatalf("mined %d templates, want 2 (errored/torn lines skipped): %+v", len(tmpls), tmpls)
	}
	if tmpls[0].SQL != "select a" || tmpls[0].Count != 3 {
		t.Fatalf("heavy hitter = %q x%d, want \"select a\" x3", tmpls[0].SQL, tmpls[0].Count)
	}
	if tmpls[1].SQL != "select b" || tmpls[1].Count != 2 {
		t.Fatalf("second = %q x%d, want \"select b\" x2", tmpls[1].SQL, tmpls[1].Count)
	}
	// The live file's instrumented record overrides the rotation's.
	h := tmpls[0].Hints()
	if got, ok := h.ScanSelectivity("supplier"); !ok || math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("mined supplier hint = %v, %v; want newest observation 0.9", got, ok)
	}
	if tmpls[1].Hints() != nil {
		t.Fatal("template without pipes fabricated hints")
	}

	if got, err := MineLog(path, 1); err != nil || len(got) != 1 || got[0].SQL != "select a" {
		t.Fatalf("limit 1 = %+v, %v", got, err)
	}
	if _, err := MineLog(filepath.Join(dir, "missing.ndjson"), 0); err == nil {
		t.Fatal("missing main log file did not error")
	}
}

// TestMineLogWithoutRotation: a lone live file mines fine.
func TestMineLogWithoutRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ndjson")
	if err := os.WriteFile(path, []byte(`{"sql":"select a","engine":"auto","latency_ms":1,"rows":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpls, err := MineLog(path, 0)
	if err != nil || len(tmpls) != 1 || tmpls[0].Count != 1 {
		t.Fatalf("MineLog = %+v, %v", tmpls, err)
	}
}
