// Package feedback is an extension beyond the paper's fixed query set:
// it closes the loop between execution telemetry and the planner. A
// per-statement store accumulates the observed per-pipeline
// cardinalities that internal/obs collects, detects sustained drift
// between the optimizer's estimates and reality, and hands the observed
// selectivities back to internal/logical as CardHints — so a statement
// whose static estimates mislead the join order gets re-planned from
// what actually happened rather than from guesses. The paper's engines
// share one plan; this package decides when that plan was built on
// wrong cardinalities.
package feedback

import (
	"container/list"
	"sync"

	"paradigms/internal/obs"
)

// Drift policy: a statement is re-planned when some pipeline's observed
// output cardinality is off its estimate by at least DriftThreshold (in
// either direction) for DriftRuns consecutive executions. One bad run
// can be a parameter outlier; a sustained factor-4 error is the
// optimizer being wrong about the workload.
const (
	DriftThreshold = 4.0
	DriftRuns      = 3
)

// selAlpha is the EWMA weight of the newest observed selectivity —
// recent bindings dominate, but one outlier cannot flip a hint alone.
const selAlpha = 0.3

// maxKeys bounds the store; when full, the least recently used
// statement's state is evicted (statements still hot re-enter on their
// next execution). The key includes the catalog version, so a workload
// that churns catalog versions would otherwise accumulate one dead
// entry per (statement, version) forever — stale versions of a
// statement are therefore also evicted eagerly when a newer version of
// the same SQL first records.
const maxKeys = 1024

// Hints is a per-table observed-selectivity map implementing
// logical.CardHints. A nil Hints is valid and hints nothing.
type Hints map[string]float64

// ScanSelectivity implements logical.CardHints.
func (h Hints) ScanSelectivity(table string) (float64, bool) {
	s, ok := h[table]
	return s, ok
}

// Key identifies one statement's feedback state: the normalized SQL,
// the catalog version the plan was built against, and the plan's
// pipeline-shape hash. Re-planning changes the shape, so the re-planned
// statement accumulates fresh state under a new key — and, since its
// estimates now come from the hints, observes drift near 1 instead of
// re-triggering.
type Key struct {
	SQL     string
	Catalog uint64
	Shape   string
}

// stmtState is one statement's accumulated feedback.
type stmtState struct {
	sel    map[string]float64 // per-table observed filter selectivity (EWMA)
	runs   int
	streak int           // consecutive runs with drift >= DriftThreshold
	elem   *list.Element // position in the store's recency list
}

// Store accumulates per-statement cardinality feedback. Safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	stats map[Key]*stmtState
	lru   *list.List // Keys, most recently used at the front
}

// NewStore returns an empty feedback store.
func NewStore() *Store {
	return &Store{stats: make(map[Key]*stmtState), lru: list.New()}
}

// Len returns the number of statements with recorded state.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stats)
}

// insert adds fresh state for k, first evicting stale versions of the
// same statement (an older catalog version never executes again once a
// newer one has been planned) and then, if still full, the least
// recently used statement. Callers hold s.mu.
func (s *Store) insert(k Key) *stmtState {
	for e := s.lru.Back(); e != nil; {
		prev := e.Prev()
		if old := e.Value.(Key); old.SQL == k.SQL && old.Catalog < k.Catalog {
			s.lru.Remove(e)
			delete(s.stats, old)
		}
		e = prev
	}
	for len(s.stats) >= maxKeys {
		e := s.lru.Back()
		s.lru.Remove(e)
		delete(s.stats, e.Value.(Key))
	}
	st := &stmtState{sel: make(map[string]float64)}
	st.elem = s.lru.PushFront(k)
	s.stats[k] = st
	return st
}

// Record folds one execution's per-pipeline telemetry into the
// statement's state and reports whether drift has been sustained long
// enough that the caller should re-plan with Hints. Advising a re-plan
// resets the streak, so a caller that cannot act (or whose re-plan
// produced the same plan) is re-advised only after another full streak.
func (s *Store) Record(k Key, pipes []obs.PipeStat) bool {
	if len(pipes) == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats[k]
	if st == nil {
		st = s.insert(k)
	} else {
		s.lru.MoveToFront(st.elem)
	}
	observeSel(st.sel, pipes)
	st.runs++
	if maxDrift(pipes) >= DriftThreshold {
		st.streak++
	} else {
		st.streak = 0
	}
	if st.streak >= DriftRuns {
		st.streak = 0
		return true
	}
	return false
}

// Hints returns the statement's observed per-table selectivities (a
// copy; nil when the statement has no recorded state).
func (s *Store) Hints(k Key) Hints {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats[k]
	if st == nil || len(st.sel) == 0 {
		return nil
	}
	s.lru.MoveToFront(st.elem) // a consulted statement is a live one
	h := make(Hints, len(st.sel))
	for t, v := range st.sel {
		h[t] = v
	}
	return h
}

// Runs returns how many executions have been recorded under the key.
func (s *Store) Runs(k Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.stats[k]; st != nil {
		return st.runs
	}
	return 0
}

// HintsFromPipes derives hints directly from one execution's pipeline
// telemetry — the pre-warm path, where a mined query-log record stands
// in for accumulated state. Returns nil when nothing is attributable.
func HintsFromPipes(pipes []obs.PipeStat) Hints {
	sel := make(map[string]float64)
	observeSel(sel, pipes)
	if len(sel) == 0 {
		return nil
	}
	return Hints(sel)
}

// observeSel attributes observed filter selectivity per table. Only
// probe-free pipelines qualify: their rows-out/rows-in ratio is the
// pushed-down filters' selectivity alone, while a probing pipeline's
// output confounds filters with join retention. The observation is
// clamped away from exact zero so a no-rows binding cannot pin a
// table's estimate to nothing.
func observeSel(sel map[string]float64, pipes []obs.PipeStat) {
	for i := range pipes {
		p := &pipes[i]
		if p.Probes != 0 || p.RowsIn <= 0 {
			continue
		}
		obs := float64(p.RowsOut) / float64(p.RowsIn)
		if min := 0.5 / float64(p.RowsIn); obs < min {
			obs = min
		}
		if prev, ok := sel[p.Table]; ok {
			sel[p.Table] = (1-selAlpha)*prev + selAlpha*obs
		} else {
			sel[p.Table] = obs
		}
	}
}

// maxDrift is the execution's worst per-pipeline estimation error: the
// larger of obs/est and est/obs across pipelines, with both sides
// floored at one row so empty-and-estimated-empty pipelines read as
// drift 1, not infinity.
func maxDrift(pipes []obs.PipeStat) float64 {
	worst := 1.0
	for i := range pipes {
		p := &pipes[i]
		if p.RowsIn <= 0 {
			continue
		}
		est := p.EstRows
		if est < 1 {
			est = 1
		}
		obs := float64(p.RowsOut)
		if obs < 1 {
			obs = 1
		}
		d := obs / est
		if d < 1 {
			d = 1 / d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
