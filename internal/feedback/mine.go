package feedback

import (
	"bufio"
	"encoding/json"
	"os"
	"sort"

	"paradigms/internal/obs"
)

// Template is one mined statement: its normalized SQL, how often the
// log saw it, and the newest execution's pipeline telemetry (empty when
// no record carried instrumented pipes).
type Template struct {
	SQL   string
	Count int
	Pipes []obs.PipeStat
}

// Hints derives the template's cardinality hints from its recorded
// pipeline telemetry (nil when the log had none).
func (t *Template) Hints() Hints { return HintsFromPipes(t.Pipes) }

// MineLog replays a query log (the NDJSON file internal/obs writes,
// plus its ".1" rotation if present) and returns the heavy-hitter
// statements by frequency, capped at limit (<= 0 selects 32). Failed
// executions and malformed lines are skipped; the newest instrumented
// record wins a template's Pipes. The main log file must exist — a
// missing rotation is not an error.
func MineLog(path string, limit int) ([]Template, error) {
	if limit <= 0 {
		limit = 32
	}
	bysql := make(map[string]*Template)
	// The rotation holds the older records: read it first so the main
	// file's pipes overwrite.
	if err := mineFile(path+".1", bysql); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := mineFile(path, bysql); err != nil {
		return nil, err
	}
	out := make([]Template, 0, len(bysql))
	for _, t := range bysql {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].SQL < out[j].SQL
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

func mineFile(path string, bysql map[string]*Template) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var rec obs.QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // a torn or foreign line does not poison the mine
		}
		if rec.SQL == "" || rec.Err != "" {
			continue
		}
		t := bysql[rec.SQL]
		if t == nil {
			t = &Template{SQL: rec.SQL}
			bysql[rec.SQL] = t
		}
		t.Count++
		if len(rec.Pipes) > 0 {
			t.Pipes = rec.Pipes
		}
	}
	return sc.Err()
}
