package queries

import (
	"context"

	"paradigms/internal/registry"
	"paradigms/internal/storage"
)

// The reference oracles register under the pseudo-engine
// registry.Reference so that the facade's Reference lookup and the
// engines' runners share one catalog: adding a query is one registration
// per engine plus one here — no switch anywhere grows an arm (§3's
// cross-engine validation depends on every query having an oracle).

// ref adapts a reference implementation to the registry's Runner shape
// (oracles are single-threaded and ignore ctx and options).
func ref[T any](f func(*storage.Database) T) registry.Runner {
	return func(_ context.Context, db *storage.Database, _ registry.Options) any {
		return f(db)
	}
}

func init() {
	// Canonical listing order: the paper's experiment subsets first, then
	// the extension queries (Q5).
	registry.SetOrder("tpch", append(append([]string(nil), TPCHQueries...), "Q5"))
	registry.SetOrder("ssb", SSBQueries)

	registry.Register(registry.Reference, "tpch", "Q1", ref(RefQ1))
	registry.Register(registry.Reference, "tpch", "Q6", ref(RefQ6))
	registry.Register(registry.Reference, "tpch", "Q3", ref(RefQ3))
	registry.Register(registry.Reference, "tpch", "Q9", ref(RefQ9))
	registry.Register(registry.Reference, "tpch", "Q18", ref(RefQ18))
	registry.Register(registry.Reference, "tpch", "Q5", ref(RefQ5))
	registry.Register(registry.Reference, "ssb", "Q1.1", ref(RefSSBQ11))
	registry.Register(registry.Reference, "ssb", "Q2.1", ref(RefSSBQ21))
	registry.Register(registry.Reference, "ssb", "Q3.1", ref(RefSSBQ31))
	registry.Register(registry.Reference, "ssb", "Q4.1", ref(RefSSBQ41))
}
