// Package queries defines the physical query plans shared by both engines
// (result schemas, literals, plan constants) plus independent reference
// implementations used as correctness oracles in tests.
//
// The paper's methodology (§3) requires both engines to execute the same
// physical plans; this package is the single source of truth for those
// plans' constants and for what each query must return.
package queries

import (
	"sort"

	"paradigms/internal/types"
)

// ---------------------------------------------------------------------
// Query literals (TPC-H validation parameter set, as used in the paper).
// ---------------------------------------------------------------------

var (
	// Q1: l_shipdate <= 1998-12-01 - 90 days.
	Q1Cutoff = types.ParseDate("1998-09-02")

	// Q6 parameters.
	Q6DateLo   = types.ParseDate("1994-01-01")
	Q6DateHi   = types.ParseDate("1995-01-01")
	Q6DiscLo   = types.Numeric(5) // 0.05
	Q6DiscHi   = types.Numeric(7) // 0.07
	Q6Quantity = types.Numeric(24 * types.NumericScale)

	// Q3 parameters.
	Q3Segment = "BUILDING"
	Q3Date    = types.ParseDate("1995-03-15")

	// Q9 parameter.
	Q9Color = "green"

	// Q18 parameter.
	Q18Quantity = types.Numeric(300 * types.NumericScale)

	// Q5 parameters.
	Q5Region = "ASIA"
	Q5DateLo = types.ParseDate("1994-01-01")
	Q5DateHi = types.ParseDate("1995-01-01")

	// SSB parameters.
	SSBQ11Year   = int32(1993)
	SSBQ11DiscLo = types.Numeric(1)
	SSBQ11DiscHi = types.Numeric(3)
	SSBQ11Qty    = types.Numeric(25 * types.NumericScale)
	SSBQ21Categ  = int32(12) // MFGR#12
	SSBQ21Region = int32(1)  // AMERICA
	SSBQ31Region = int32(2)  // ASIA
	SSBQ31YearLo = int32(1992)
	SSBQ31YearHi = int32(1997)
	SSBQ41Region = int32(1) // AMERICA
	SSBQ41MfgrLo = int32(1)
	SSBQ41MfgrHi = int32(2)
)

// ScannedTables lists, per query, the relations whose cardinalities the
// paper sums to normalize CPU counters "per tuple" (§3.4). A relation
// scanned twice (Q18's lineitem) appears twice.
var ScannedTables = map[string][]string{
	"Q1":   {"lineitem"},
	"Q6":   {"lineitem"},
	"Q3":   {"customer", "orders", "lineitem"},
	"Q9":   {"part", "supplier", "lineitem", "partsupp", "orders", "nation"},
	"Q18":  {"lineitem", "orders", "customer"},
	"Q5":   {"customer", "orders", "lineitem", "supplier", "nation", "region"},
	"Q1.1": {"date", "lineorder"},
	"Q2.1": {"part", "supplier", "date", "lineorder"},
	"Q3.1": {"customer", "supplier", "date", "lineorder"},
	"Q4.1": {"customer", "supplier", "part", "date", "lineorder"},
}

// ---------------------------------------------------------------------
// Result row types. Aggregate sums carry explicit scales so both engines
// produce bit-identical integers (scale 2 = cents, scale 4, scale 6).
// ---------------------------------------------------------------------

// Q1Row is one group of TPC-H Q1 (4 groups at any scale factor).
type Q1Row struct {
	ReturnFlag byte
	LineStatus byte
	SumQty     int64 // scale 2
	SumBase    int64 // scale 2: sum(l_extendedprice)
	SumDisc    int64 // scale 4: sum(l_extendedprice*(1-l_discount))
	SumCharge  int64 // scale 6: sum(l_extendedprice*(1-l_discount)*(1+l_tax))
	SumDiscnt  int64 // scale 2: sum(l_discount), for avg_disc
	Count      int64
}

// Q1Result is sorted by (returnflag, linestatus).
type Q1Result []Q1Row

// SortQ1 sorts a Q1 result into its canonical order.
func SortQ1(rs Q1Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].ReturnFlag != rs[j].ReturnFlag {
			return rs[i].ReturnFlag < rs[j].ReturnFlag
		}
		return rs[i].LineStatus < rs[j].LineStatus
	})
}

// Q6Result is sum(l_extendedprice * l_discount) at scale 4.
type Q6Result int64

// Q3Row is one of Q3's top-10 rows.
type Q3Row struct {
	OrderKey     int32
	Revenue      int64 // scale 4: sum(l_extendedprice*(1-l_discount))
	OrderDate    types.Date
	ShipPriority int32
}

// Q3Result holds the top 10 by (revenue desc, orderdate asc, orderkey asc).
type Q3Result []Q3Row

// Q3Less is the ordering of Q3's ORDER BY (with orderkey as an explicit
// tiebreaker so both engines produce identical rows).
func Q3Less(a, b Q3Row) bool {
	if a.Revenue != b.Revenue {
		return a.Revenue > b.Revenue
	}
	if a.OrderDate != b.OrderDate {
		return a.OrderDate < b.OrderDate
	}
	return a.OrderKey < b.OrderKey
}

// SortQ3 sorts into the canonical top-k order.
func SortQ3(rs Q3Result) { sort.Slice(rs, func(i, j int) bool { return Q3Less(rs[i], rs[j]) }) }

// Q9Row is one (nation, year) group of Q9.
type Q9Row struct {
	Nation int32 // n_nationkey; names resolved at output
	Year   int32
	Profit int64 // scale 4
}

// Q9Result is sorted by (nation asc, year desc).
type Q9Result []Q9Row

// SortQ9 sorts into the canonical order.
func SortQ9(rs Q9Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Nation != rs[j].Nation {
			return rs[i].Nation < rs[j].Nation
		}
		return rs[i].Year > rs[j].Year
	})
}

// Q18Row is one of Q18's top-100 rows.
type Q18Row struct {
	CustKey    int32
	OrderKey   int32
	OrderDate  types.Date
	TotalPrice types.Numeric
	SumQty     int64 // scale 2
}

// Q18Result holds the top 100 by (o_totalprice desc, o_orderdate asc,
// orderkey asc as tiebreaker).
type Q18Result []Q18Row

// Q18Less is Q18's ORDER BY.
func Q18Less(a, b Q18Row) bool {
	if a.TotalPrice != b.TotalPrice {
		return a.TotalPrice > b.TotalPrice
	}
	if a.OrderDate != b.OrderDate {
		return a.OrderDate < b.OrderDate
	}
	return a.OrderKey < b.OrderKey
}

// SortQ18 sorts into the canonical top-k order.
func SortQ18(rs Q18Result) { sort.Slice(rs, func(i, j int) bool { return Q18Less(rs[i], rs[j]) }) }

// Q5Row is one nation group of TPC-H Q5 (at most the five ASIA nations).
type Q5Row struct {
	Nation  int32 // n_nationkey; names resolved at output
	Revenue int64 // scale 4: sum(l_extendedprice*(1-l_discount))
}

// Q5Result is sorted by (revenue desc, nation asc as tiebreaker).
type Q5Result []Q5Row

// SortQ5 sorts into the canonical order.
func SortQ5(rs Q5Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Revenue != rs[j].Revenue {
			return rs[i].Revenue > rs[j].Revenue
		}
		return rs[i].Nation < rs[j].Nation
	})
}

// SSBQ11Result is sum(lo_extendedprice*lo_discount) at scale 4.
type SSBQ11Result int64

// SSBQ21Row is one (year, brand) group.
type SSBQ21Row struct {
	Year    int32
	Brand   int32
	Revenue int64 // scale 2
}

// SSBQ21Result is sorted by (year, brand).
type SSBQ21Result []SSBQ21Row

// SortSSBQ21 sorts into the canonical order.
func SortSSBQ21(rs SSBQ21Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Year != rs[j].Year {
			return rs[i].Year < rs[j].Year
		}
		return rs[i].Brand < rs[j].Brand
	})
}

// SSBQ31Row is one (c_nation, s_nation, year) group.
type SSBQ31Row struct {
	CNation int32
	SNation int32
	Year    int32
	Revenue int64 // scale 2
}

// SSBQ31Result is sorted by (year asc, revenue desc) per SSB, with
// nation keys as tiebreakers.
type SSBQ31Result []SSBQ31Row

// SortSSBQ31 sorts into the canonical order.
func SortSSBQ31(rs SSBQ31Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Year != rs[j].Year {
			return rs[i].Year < rs[j].Year
		}
		if rs[i].Revenue != rs[j].Revenue {
			return rs[i].Revenue > rs[j].Revenue
		}
		if rs[i].CNation != rs[j].CNation {
			return rs[i].CNation < rs[j].CNation
		}
		return rs[i].SNation < rs[j].SNation
	})
}

// SSBQ41Row is one (year, c_nation) group.
type SSBQ41Row struct {
	Year    int32
	CNation int32
	Profit  int64 // scale 2
}

// SSBQ41Result is sorted by (year, c_nation).
type SSBQ41Result []SSBQ41Row

// SortSSBQ41 sorts into the canonical order.
func SortSSBQ41(rs SSBQ41Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Year != rs[j].Year {
			return rs[i].Year < rs[j].Year
		}
		return rs[i].CNation < rs[j].CNation
	})
}

// TPCHQueries and SSBQueries are the canonical experiment query lists in
// paper order (the subsets every paper experiment iterates). The served
// catalogs — which additionally carry Q5, an extension beyond the paper's
// subset — live in the registry (see register.go).
var (
	TPCHQueries = []string{"Q1", "Q6", "Q3", "Q9", "Q18"}
	SSBQueries  = []string{"Q1.1", "Q2.1", "Q3.1", "Q4.1"}
)
