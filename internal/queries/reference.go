package queries

import (
	"bytes"
	"sort"

	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// This file contains straightforward single-threaded reference
// implementations of every query, written with Go maps and independent of
// both engines' data structures. They are the correctness oracle for the
// cross-engine equivalence tests and are deliberately naive.

// RefQ1 computes TPC-H Q1.
func RefQ1(db *storage.Database) Q1Result {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")

	type key struct{ f, s byte }
	groups := make(map[key]*Q1Row)
	for i := 0; i < li.Rows(); i++ {
		if ship[i] > Q1Cutoff {
			continue
		}
		k := key{rf[i], ls[i]}
		g := groups[k]
		if g == nil {
			g = &Q1Row{ReturnFlag: k.f, LineStatus: k.s}
			groups[k] = g
		}
		e, d, t := int64(ext[i]), int64(disc[i]), int64(tax[i])
		g.SumQty += int64(qty[i])
		g.SumBase += e
		g.SumDisc += e * (100 - d)
		g.SumCharge += e * (100 - d) * (100 + t)
		g.SumDiscnt += d
		g.Count++
	}
	out := make(Q1Result, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	SortQ1(out)
	return out
}

// RefQ6 computes TPC-H Q6.
func RefQ6(db *storage.Database) Q6Result {
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	var sum int64
	for i := 0; i < li.Rows(); i++ {
		if ship[i] >= Q6DateLo && ship[i] < Q6DateHi &&
			disc[i] >= Q6DiscLo && disc[i] <= Q6DiscHi && qty[i] < Q6Quantity {
			sum += int64(ext[i]) * int64(disc[i])
		}
	}
	return Q6Result(sum)
}

// RefQ3 computes TPC-H Q3.
func RefQ3(db *storage.Database) Q3Result {
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	ckeys := cust.Int32("c_custkey")
	building := make(map[int32]bool)
	for i := 0; i < cust.Rows(); i++ {
		if string(seg.Get(i)) == Q3Segment {
			building[ckeys[i]] = true
		}
	}
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	oprio := ord.Int32("o_shippriority")
	type oinfo struct {
		date types.Date
		prio int32
	}
	qualifying := make(map[int32]oinfo)
	for i := 0; i < ord.Rows(); i++ {
		if odate[i] < Q3Date && building[ocust[i]] {
			qualifying[okeys[i]] = oinfo{odate[i], oprio[i]}
		}
	}
	li := db.Rel("lineitem")
	lkeys := li.Int32("l_orderkey")
	ship := li.Date("l_shipdate")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	revenue := make(map[int32]int64)
	for i := 0; i < li.Rows(); i++ {
		if ship[i] > Q3Date {
			if _, ok := qualifying[lkeys[i]]; ok {
				revenue[lkeys[i]] += int64(ext[i]) * (100 - int64(disc[i]))
			}
		}
	}
	rows := make(Q3Result, 0, len(revenue))
	for ok, rev := range revenue {
		info := qualifying[ok]
		rows = append(rows, Q3Row{OrderKey: ok, Revenue: rev, OrderDate: info.date, ShipPriority: info.prio})
	}
	SortQ3(rows)
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

// RefQ9 computes TPC-H Q9.
func RefQ9(db *storage.Database) Q9Result {
	part := db.Rel("part")
	names := part.String("p_name")
	pkeys := part.Int32("p_partkey")
	green := make(map[int32]bool)
	needle := []byte(Q9Color)
	for i := 0; i < part.Rows(); i++ {
		if bytes.Contains(names.Get(i), needle) {
			green[pkeys[i]] = true
		}
	}
	supp := db.Rel("supplier")
	snation := make(map[int32]int32)
	skeys := supp.Int32("s_suppkey")
	snat := supp.Int32("s_nationkey")
	for i := 0; i < supp.Rows(); i++ {
		snation[skeys[i]] = snat[i]
	}
	ps := db.Rel("partsupp")
	pspk := ps.Int32("ps_partkey")
	pssk := ps.Int32("ps_suppkey")
	pscost := ps.Numeric("ps_supplycost")
	cost := make(map[[2]int32]int64)
	for i := 0; i < ps.Rows(); i++ {
		cost[[2]int32{pspk[i], pssk[i]}] = int64(pscost[i])
	}
	ord := db.Rel("orders")
	oyear := make(map[int32]int32)
	okeys := ord.Int32("o_orderkey")
	odate := ord.Date("o_orderdate")
	for i := 0; i < ord.Rows(); i++ {
		oyear[okeys[i]] = int32(odate[i].Year())
	}
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	lok := li.Int32("l_orderkey")
	qty := li.Numeric("l_quantity")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	type key struct{ nation, year int32 }
	profit := make(map[key]int64)
	for i := 0; i < li.Rows(); i++ {
		if !green[lpk[i]] {
			continue
		}
		// Scales: ext(2)·disc-complement(2) → 4; cost(2)·qty(2) → 4.
		amount := int64(ext[i])*(100-int64(disc[i])) - cost[[2]int32{lpk[i], lsk[i]}]*int64(qty[i])
		k := key{snation[lsk[i]], oyear[lok[i]]}
		profit[k] += amount
	}
	out := make(Q9Result, 0, len(profit))
	for k, v := range profit {
		out = append(out, Q9Row{Nation: k.nation, Year: k.year, Profit: v})
	}
	SortQ9(out)
	return out
}

// RefQ18 computes TPC-H Q18.
func RefQ18(db *storage.Database) Q18Result {
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	qty := li.Numeric("l_quantity")
	sums := make(map[int32]int64)
	for i := 0; i < li.Rows(); i++ {
		sums[lok[i]] += int64(qty[i])
	}
	big := make(map[int32]int64)
	for ok, s := range sums {
		if s > int64(Q18Quantity) {
			big[ok] = s
		}
	}
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	ototal := ord.Numeric("o_totalprice")
	rows := make(Q18Result, 0, len(big))
	for i := 0; i < ord.Rows(); i++ {
		if s, ok := big[okeys[i]]; ok {
			rows = append(rows, Q18Row{
				CustKey:    ocust[i],
				OrderKey:   okeys[i],
				OrderDate:  odate[i],
				TotalPrice: ototal[i],
				SumQty:     s,
			})
		}
	}
	SortQ18(rows)
	if len(rows) > 100 {
		rows = rows[:100]
	}
	return rows
}

// Q5NationLUT derives the Q5 dimension pre-filter shared by both engines'
// physical plans: nationkey → (nation's region is Q5Region). The
// region ⋈ nation join is folded into a lookup table because both
// relations are tiny constants of the schema (5 and 25 rows); the
// engines' plans then treat the LUT as a selection on customer and
// supplier, exactly like any other pushed-down predicate.
func Q5NationLUT(db *storage.Database) []bool {
	region := db.Rel("region")
	rnames := region.String("r_name")
	rkeys := region.Int32("r_regionkey")
	asiaRegion := make(map[int32]bool)
	for i := 0; i < region.Rows(); i++ {
		if string(rnames.Get(i)) == Q5Region {
			asiaRegion[rkeys[i]] = true
		}
	}
	nation := db.Rel("nation")
	nkeys := nation.Int32("n_nationkey")
	nregion := nation.Int32("n_regionkey")
	maxKey := int32(0)
	for i := 0; i < nation.Rows(); i++ {
		if nkeys[i] > maxKey {
			maxKey = nkeys[i]
		}
	}
	lut := make([]bool, maxKey+1)
	for i := 0; i < nation.Rows(); i++ {
		lut[nkeys[i]] = asiaRegion[nregion[i]]
	}
	return lut
}

// RefQ5 computes TPC-H Q5.
func RefQ5(db *storage.Database) Q5Result {
	lut := Q5NationLUT(db)
	cust := db.Rel("customer")
	ckeys := cust.Int32("c_custkey")
	cnat := cust.Int32("c_nationkey")
	cnation := make(map[int32]int32)
	for i := 0; i < cust.Rows(); i++ {
		if lut[cnat[i]] {
			cnation[ckeys[i]] = cnat[i]
		}
	}
	supp := db.Rel("supplier")
	skeys := supp.Int32("s_suppkey")
	snat := supp.Int32("s_nationkey")
	snation := make(map[int32]int32)
	for i := 0; i < supp.Rows(); i++ {
		if lut[snat[i]] {
			snation[skeys[i]] = snat[i]
		}
	}
	ord := db.Rel("orders")
	okeys := ord.Int32("o_orderkey")
	ocust := ord.Int32("o_custkey")
	odate := ord.Date("o_orderdate")
	qualifying := make(map[int32]int32) // orderkey → c_nationkey
	for i := 0; i < ord.Rows(); i++ {
		if odate[i] < Q5DateLo || odate[i] >= Q5DateHi {
			continue
		}
		if n, ok := cnation[ocust[i]]; ok {
			qualifying[okeys[i]] = n
		}
	}
	li := db.Rel("lineitem")
	lok := li.Int32("l_orderkey")
	lsk := li.Int32("l_suppkey")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	revenue := make(map[int32]int64)
	for i := 0; i < li.Rows(); i++ {
		cn, ok := qualifying[lok[i]]
		if !ok {
			continue
		}
		sn, ok := snation[lsk[i]]
		if !ok || sn != cn {
			continue
		}
		revenue[cn] += int64(ext[i]) * (100 - int64(disc[i]))
	}
	out := make(Q5Result, 0, len(revenue))
	for n, rev := range revenue {
		out = append(out, Q5Row{Nation: n, Revenue: rev})
	}
	SortQ5(out)
	return out
}

// RefSSBQ11 computes SSB Q1.1.
func RefSSBQ11(db *storage.Database) SSBQ11Result {
	date := db.Rel("date")
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	year := make(map[types.Date]int32, date.Rows())
	for i := 0; i < date.Rows(); i++ {
		year[dk[i]] = dy[i]
	}
	lo := db.Rel("lineorder")
	od := lo.Date("lo_orderdate")
	disc := lo.Numeric("lo_discount")
	qty := lo.Numeric("lo_quantity")
	ext := lo.Numeric("lo_extendedprice")
	var sum int64
	for i := 0; i < lo.Rows(); i++ {
		if year[od[i]] == SSBQ11Year && disc[i] >= SSBQ11DiscLo && disc[i] <= SSBQ11DiscHi && qty[i] < SSBQ11Qty {
			sum += int64(ext[i]) * int64(disc[i])
		}
	}
	return SSBQ11Result(sum)
}

// RefSSBQ21 computes SSB Q2.1.
func RefSSBQ21(db *storage.Database) SSBQ21Result {
	part := db.Rel("part")
	brand := make(map[int32]int32)
	pk := part.Int32("p_partkey")
	cat := part.Int32("p_category")
	br := part.Int32("p_brand1")
	for i := 0; i < part.Rows(); i++ {
		if cat[i] == SSBQ21Categ {
			brand[pk[i]] = br[i]
		}
	}
	supp := db.Rel("supplier")
	amer := make(map[int32]bool)
	sk := supp.Int32("s_suppkey")
	sr := supp.Int32("s_region")
	for i := 0; i < supp.Rows(); i++ {
		if sr[i] == SSBQ21Region {
			amer[sk[i]] = true
		}
	}
	date := db.Rel("date")
	year := make(map[types.Date]int32, date.Rows())
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	for i := 0; i < date.Rows(); i++ {
		year[dk[i]] = dy[i]
	}
	lo := db.Rel("lineorder")
	lopk := lo.Int32("lo_partkey")
	losk := lo.Int32("lo_suppkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")
	type key struct{ year, brand int32 }
	sums := make(map[key]int64)
	for i := 0; i < lo.Rows(); i++ {
		b, okp := brand[lopk[i]]
		if !okp || !amer[losk[i]] {
			continue
		}
		sums[key{year[lod[i]], b}] += int64(rev[i])
	}
	out := make(SSBQ21Result, 0, len(sums))
	for k, v := range sums {
		out = append(out, SSBQ21Row{Year: k.year, Brand: k.brand, Revenue: v})
	}
	SortSSBQ21(out)
	return out
}

// RefSSBQ31 computes SSB Q3.1.
func RefSSBQ31(db *storage.Database) SSBQ31Result {
	cust := db.Rel("customer")
	cnation := make(map[int32]int32)
	ck := cust.Int32("c_custkey")
	cr := cust.Int32("c_region")
	cn := cust.Int32("c_nation")
	for i := 0; i < cust.Rows(); i++ {
		if cr[i] == SSBQ31Region {
			cnation[ck[i]] = cn[i]
		}
	}
	supp := db.Rel("supplier")
	snation := make(map[int32]int32)
	sk := supp.Int32("s_suppkey")
	sr := supp.Int32("s_region")
	sn := supp.Int32("s_nation")
	for i := 0; i < supp.Rows(); i++ {
		if sr[i] == SSBQ31Region {
			snation[sk[i]] = sn[i]
		}
	}
	date := db.Rel("date")
	year := make(map[types.Date]int32, date.Rows())
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	for i := 0; i < date.Rows(); i++ {
		year[dk[i]] = dy[i]
	}
	lo := db.Rel("lineorder")
	lock := lo.Int32("lo_custkey")
	losk := lo.Int32("lo_suppkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")
	type key struct{ cn, sn, year int32 }
	sums := make(map[key]int64)
	for i := 0; i < lo.Rows(); i++ {
		cnat, okc := cnation[lock[i]]
		if !okc {
			continue
		}
		snat, oks := snation[losk[i]]
		if !oks {
			continue
		}
		y := year[lod[i]]
		if y < SSBQ31YearLo || y > SSBQ31YearHi {
			continue
		}
		sums[key{cnat, snat, y}] += int64(rev[i])
	}
	out := make(SSBQ31Result, 0, len(sums))
	for k, v := range sums {
		out = append(out, SSBQ31Row{CNation: k.cn, SNation: k.sn, Year: k.year, Revenue: v})
	}
	SortSSBQ31(out)
	return out
}

// RefSSBQ41 computes SSB Q4.1.
func RefSSBQ41(db *storage.Database) SSBQ41Result {
	cust := db.Rel("customer")
	cnation := make(map[int32]int32)
	ck := cust.Int32("c_custkey")
	cr := cust.Int32("c_region")
	cn := cust.Int32("c_nation")
	for i := 0; i < cust.Rows(); i++ {
		if cr[i] == SSBQ41Region {
			cnation[ck[i]] = cn[i]
		}
	}
	supp := db.Rel("supplier")
	amer := make(map[int32]bool)
	sk := supp.Int32("s_suppkey")
	sr := supp.Int32("s_region")
	for i := 0; i < supp.Rows(); i++ {
		if sr[i] == SSBQ41Region {
			amer[sk[i]] = true
		}
	}
	part := db.Rel("part")
	okPart := make(map[int32]bool)
	pk := part.Int32("p_partkey")
	mfgr := part.Int32("p_mfgr")
	for i := 0; i < part.Rows(); i++ {
		if mfgr[i] >= SSBQ41MfgrLo && mfgr[i] <= SSBQ41MfgrHi {
			okPart[pk[i]] = true
		}
	}
	date := db.Rel("date")
	year := make(map[types.Date]int32, date.Rows())
	dk := date.Date("d_datekey")
	dy := date.Int32("d_year")
	for i := 0; i < date.Rows(); i++ {
		year[dk[i]] = dy[i]
	}
	lo := db.Rel("lineorder")
	lock := lo.Int32("lo_custkey")
	losk := lo.Int32("lo_suppkey")
	lopk := lo.Int32("lo_partkey")
	lod := lo.Date("lo_orderdate")
	rev := lo.Numeric("lo_revenue")
	cost := lo.Numeric("lo_supplycost")
	type key struct{ year, cn int32 }
	sums := make(map[key]int64)
	for i := 0; i < lo.Rows(); i++ {
		cnat, okc := cnation[lock[i]]
		if !okc || !amer[losk[i]] || !okPart[lopk[i]] {
			continue
		}
		sums[key{year[lod[i]], cnat}] += int64(rev[i]) - int64(cost[i])
	}
	out := make(SSBQ41Result, 0, len(sums))
	for k, v := range sums {
		out = append(out, SSBQ41Row{Year: k.year, CNation: k.cn, Profit: v})
	}
	SortSSBQ41(out)
	return out
}

// TopK maintains the k smallest elements under less (a max-heap of the
// current worst). Both engines use it for Q3's top-10 and Q18's top-100;
// "smallest" under the query's ORDER BY comparator means the best rows.
type TopK[T any] struct {
	k    int
	less func(a, b T) bool
	heap []T // max-heap: heap[0] is the worst retained row
}

// NewTopK creates a TopK keeping the k best rows under less.
func NewTopK[T any](k int, less func(a, b T) bool) *TopK[T] {
	return &TopK[T]{k: k, less: less}
}

// Offer considers a row.
func (t *TopK[T]) Offer(v T) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, v)
		t.up(len(t.heap) - 1)
		return
	}
	if t.k == 0 || !t.less(v, t.heap[0]) {
		return
	}
	t.heap[0] = v
	t.down(0)
}

// Merge offers every retained row of other.
func (t *TopK[T]) Merge(other *TopK[T]) {
	for _, v := range other.heap {
		t.Offer(v)
	}
}

// Sorted returns the retained rows ordered best-first.
func (t *TopK[T]) Sorted() []T {
	out := make([]T, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool { return t.less(out[i], out[j]) })
	return out
}

func (t *TopK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// max-heap under less: parent must not be less than child
		if t.less(t.heap[parent], t.heap[i]) {
			t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
			i = parent
		} else {
			return
		}
	}
}

func (t *TopK[T]) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.less(t.heap[largest], t.heap[l]) {
			largest = l
		}
		if r < n && t.less(t.heap[largest], t.heap[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}
