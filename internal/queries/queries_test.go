package queries

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"paradigms/internal/tpch"
)

func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(values []int32, kRaw uint8) bool {
		k := int(kRaw)%20 + 1
		less := func(a, b int32) bool { return a < b }
		tk := NewTopK[int32](k, less)
		for _, v := range values {
			tk.Offer(v)
		}
		got := tk.Sorted()
		want := append([]int32(nil), values...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKMerge(t *testing.T) {
	less := func(a, b int) bool { return a > b } // keep largest
	a := NewTopK[int](3, less)
	b := NewTopK[int](3, less)
	rng := rand.New(rand.NewSource(7))
	all := make([]int, 0, 100)
	for i := 0; i < 50; i++ {
		v1, v2 := rng.Intn(1000), rng.Intn(1000)
		a.Offer(v1)
		b.Offer(v2)
		all = append(all, v1, v2)
	}
	a.Merge(b)
	got := a.Sorted()
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	for i := 0; i < 3; i++ {
		if got[i] != all[i] {
			t.Fatalf("merged top-3[%d] = %d, want %d", i, got[i], all[i])
		}
	}
}

func TestTopKZero(t *testing.T) {
	tk := NewTopK[int](0, func(a, b int) bool { return a < b })
	tk.Offer(1)
	if len(tk.Sorted()) != 0 {
		t.Fatal("k=0 retained rows")
	}
}

func TestReferenceQ1SmokeShape(t *testing.T) {
	db := tpch.Generate(0.01, 0)
	res := RefQ1(db)
	if len(res) != 4 {
		t.Fatalf("Q1 groups = %d, want 4 (AF, NF, NO, RF)", len(res))
	}
	// Canonical group order and plausibility.
	wantKeys := [][2]byte{{'A', 'F'}, {'N', 'F'}, {'N', 'O'}, {'R', 'F'}}
	for i, w := range wantKeys {
		if res[i].ReturnFlag != w[0] || res[i].LineStatus != w[1] {
			t.Errorf("group %d = %c%c, want %c%c", i, res[i].ReturnFlag, res[i].LineStatus, w[0], w[1])
		}
		if res[i].Count == 0 || res[i].SumBase <= 0 || res[i].SumDisc <= 0 {
			t.Errorf("group %d has empty aggregates: %+v", i, res[i])
		}
		// avg(qty) must be ≈25.5 (uniform 1..50).
		avgQty := float64(res[i].SumQty) / float64(res[i].Count) / 100
		if avgQty < 23 || avgQty > 28 {
			t.Errorf("group %d avg qty = %.2f", i, avgQty)
		}
	}
}

func TestReferenceQ3Q18Ordering(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	q3 := RefQ3(db)
	if len(q3) == 0 || len(q3) > 10 {
		t.Fatalf("Q3 rows = %d", len(q3))
	}
	for i := 1; i < len(q3); i++ {
		if Q3Less(q3[i], q3[i-1]) {
			t.Fatalf("Q3 rows out of order at %d", i)
		}
	}
	q18 := RefQ18(db)
	for i := 1; i < len(q18); i++ {
		if Q18Less(q18[i], q18[i-1]) {
			t.Fatalf("Q18 rows out of order at %d", i)
		}
	}
	// Q18 having-filter: every retained group exceeds 300.
	for _, r := range q18 {
		if r.SumQty <= int64(Q18Quantity) {
			t.Fatalf("Q18 row %+v violates HAVING", r)
		}
	}
}

func TestReferenceQ9Groups(t *testing.T) {
	db := tpch.Generate(0.02, 0)
	q9 := RefQ9(db)
	if len(q9) == 0 {
		t.Fatal("Q9 returned no groups")
	}
	// Years within order date range, nations valid.
	for _, r := range q9 {
		if r.Year < 1992 || r.Year > 1998 {
			t.Errorf("Q9 year %d", r.Year)
		}
		if r.Nation < 0 || r.Nation > 24 {
			t.Errorf("Q9 nation %d", r.Nation)
		}
	}
	// All 25 nations × 7 years possible; expect a healthy fraction.
	if len(q9) < 25 {
		t.Errorf("Q9 groups = %d, expected ≥ 25", len(q9))
	}
}

func TestScannedTablesCoverAllQueries(t *testing.T) {
	for _, q := range TPCHQueries {
		if len(ScannedTables[q]) == 0 {
			t.Errorf("no scanned tables for %s", q)
		}
	}
	for _, q := range SSBQueries {
		if len(ScannedTables[q]) == 0 {
			t.Errorf("no scanned tables for %s", q)
		}
	}
}
