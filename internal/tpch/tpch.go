package tpch

import (
	"fmt"
	"runtime"

	"paradigms/internal/exec"
	"paradigms/internal/storage"
	"paradigms/internal/types"
)

// Base cardinalities at scale factor 1 (TPC-H specification §4.2.5).
const (
	baseSupplier     = 10_000
	baseCustomer     = 150_000
	basePart         = 200_000
	baseOrders       = 1_500_000
	suppliersPerPart = 4
)

// currentDate is dbgen's CURRENTDATE constant (1995-06-17), used to derive
// l_returnflag and l_linestatus.
var currentDate = types.MakeDate(1995, 6, 17)

var (
	orderDateLo = types.MakeDate(1992, 1, 1)
	orderDateHi = types.MakeDate(1998, 8, 2)
)

// Segments are the five c_mktsegment values.
var Segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

// Nations are the 25 TPC-H nations; index is n_nationkey, value.region is
// n_regionkey.
var Nations = []struct {
	Name   string
	Region int32
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

// Regions are the five TPC-H regions; index is r_regionkey.
var Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// ColorWords is dbgen's 92-word P_NAME vocabulary. Q9's predicate
// p_name LIKE '%green%' selects parts whose five-word name includes
// "green" (≈5/92 ≈ 5.4% of parts).
var ColorWords = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished",
	"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
	"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
	"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
	"lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
	"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
	"navajo", "navy", "olive", "orange", "orchid", "pale", "papaya",
	"peach", "peru", "pink", "plum", "powder", "puff", "purple", "red",
	"rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
	"sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
	"thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds a complete TPC-H database instance at the given scale
// factor using up to workers goroutines (0 selects GOMAXPROCS). The
// result is bit-identical for a given scale factor regardless of the
// worker count.
func Generate(sf float64, workers int) *storage.Database {
	if sf <= 0 {
		panic(fmt.Sprintf("tpch: invalid scale factor %v", sf))
	}
	db := storage.NewDatabase("tpch", sf)

	nSupp := scaled(baseSupplier, sf)
	nCust := scaled(baseCustomer, sf)
	nPart := scaled(basePart, sf)
	nOrders := scaled(baseOrders, sf)

	db.Add(genRegion())
	db.Add(genNation())
	db.Add(genSupplier(nSupp, workers))
	db.Add(genCustomer(nCust, workers))
	part := genPart(nPart, workers)
	db.Add(part)
	db.Add(genPartsupp(nPart, nSupp, workers))
	orders, counts := genOrdersSkeleton(nOrders, nCust, workers)
	lineitem, totalprice := genLineitem(orders, counts, nPart, nSupp, part.Numeric("p_retailprice"), workers)
	orders.AddNumeric("o_totalprice", totalprice)
	db.Add(orders)
	db.Add(lineitem)
	return db
}

func genRegion() *storage.Relation {
	r := storage.NewRelation("region")
	keys := make([]int32, len(Regions))
	names := storage.NewStringHeap(len(Regions), 8)
	for i, n := range Regions {
		keys[i] = int32(i)
		names.AppendString(n)
	}
	r.AddInt32("r_regionkey", keys)
	r.AddString("r_name", names)
	return r
}

func genNation() *storage.Relation {
	r := storage.NewRelation("nation")
	keys := make([]int32, len(Nations))
	regions := make([]int32, len(Nations))
	names := storage.NewStringHeap(len(Nations), 10)
	for i, n := range Nations {
		keys[i] = int32(i)
		regions[i] = n.Region
		names.AppendString(n.Name)
	}
	r.AddInt32("n_nationkey", keys)
	r.AddString("n_name", names)
	r.AddInt32("n_regionkey", regions)
	return r
}

func genSupplier(n, workers int) *storage.Relation {
	keys := make([]int32, n)
	nations := make([]int32, n)
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			key := i + 1
			r := newRNG(seedSupplier, uint64(key))
			keys[i] = int32(key)
			nations[i] = int32(r.intn(len(Nations)))
		}
	})
	rel := storage.NewRelation("supplier")
	rel.AddInt32("s_suppkey", keys)
	rel.AddInt32("s_nationkey", nations)
	return rel
}

func genCustomer(n, workers int) *storage.Relation {
	keys := make([]int32, n)
	nations := make([]int32, n)
	segIdx := make([]uint8, n)
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			key := i + 1
			r := newRNG(seedCustomer, uint64(key))
			keys[i] = int32(key)
			nations[i] = int32(r.intn(len(Nations)))
			segIdx[i] = uint8(r.intn(len(Segments)))
		}
	})
	// String columns are appended sequentially (heaps are contiguous).
	segs := storage.NewStringHeap(n, 10)
	names := storage.NewStringHeap(n, 18)
	var buf [18]byte
	for i := 0; i < n; i++ {
		segs.AppendString(Segments[segIdx[i]])
		names.Append(customerName(buf[:0], i+1))
	}
	rel := storage.NewRelation("customer")
	rel.AddInt32("c_custkey", keys)
	rel.AddInt32("c_nationkey", nations)
	rel.AddString("c_mktsegment", segs)
	rel.AddString("c_name", names)
	return rel
}

// customerName appends "Customer#%09d" to buf.
func customerName(buf []byte, key int) []byte {
	return fmt.Appendf(buf, "Customer#%09d", key)
}

// retailPriceCents implements dbgen's P_RETAILPRICE formula; the result is
// already in cents (scale-2).
func retailPriceCents(partkey int) int64 {
	pk := int64(partkey)
	return 90000 + (pk/10)%20001 + 100*(pk%1000)
}

func genPart(n, workers int) *storage.Relation {
	keys := make([]int32, n)
	prices := make([]types.Numeric, n)
	// Word choices are precomputed in parallel; heap assembly is serial.
	words := make([][5]uint8, n)
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			key := i + 1
			r := newRNG(seedPart, uint64(key))
			keys[i] = int32(key)
			prices[i] = types.Numeric(retailPriceCents(key))
			// Five distinct color words, chosen by rejection (92 words, so
			// collisions are rare).
			var chosen [5]uint8
			for w := 0; w < 5; {
				c := uint8(r.intn(len(ColorWords)))
				dup := false
				for j := 0; j < w; j++ {
					if chosen[j] == c {
						dup = true
						break
					}
				}
				if !dup {
					chosen[w] = c
					w++
				}
			}
			words[i] = chosen
		}
	})
	names := storage.NewStringHeap(n, 36)
	for i := 0; i < n; i++ {
		var buf []byte
		buf = names.Bytes
		for w, c := range words[i] {
			if w > 0 {
				buf = append(buf, ' ')
			}
			buf = append(buf, ColorWords[c]...)
		}
		names.Bytes = buf
		names.Offsets = append(names.Offsets, uint32(len(buf)))
	}
	rel := storage.NewRelation("part")
	rel.AddInt32("p_partkey", keys)
	rel.AddString("p_name", names)
	rel.AddNumeric("p_retailprice", prices)
	return rel
}

// partSupplier implements dbgen's PS_SUPPKEY formula: supplier j (0..3)
// for a part, guaranteeing l_suppkey ∈ the part's four partsupp rows.
func partSupplier(partkey, j, nSupp int) int32 {
	s := int64(nSupp)
	pk := int64(partkey)
	return int32((pk+int64(j)*(s/suppliersPerPart+(pk-1)/s))%s + 1)
}

func genPartsupp(nPart, nSupp, workers int) *storage.Relation {
	n := nPart * suppliersPerPart
	partkeys := make([]int32, n)
	suppkeys := make([]int32, n)
	costs := make([]types.Numeric, n)
	parallelRanges(nPart, workers, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			partkey := p + 1
			r := newRNG(seedPartsupp, uint64(partkey))
			for j := 0; j < suppliersPerPart; j++ {
				i := p*suppliersPerPart + j
				partkeys[i] = int32(partkey)
				suppkeys[i] = partSupplier(partkey, j, nSupp)
				costs[i] = types.Numeric(r.rangeInt(100, 100000)) // $1.00..$1000.00
			}
		}
	})
	rel := storage.NewRelation("partsupp")
	rel.AddInt32("ps_partkey", partkeys)
	rel.AddInt32("ps_suppkey", suppkeys)
	rel.AddNumeric("ps_supplycost", costs)
	return rel
}

// genOrdersSkeleton generates the orders table except o_totalprice (which
// depends on lineitems) and returns per-order lineitem counts.
func genOrdersSkeleton(nOrders, nCust, workers int) (*storage.Relation, []int32) {
	keys := make([]int32, nOrders)
	custkeys := make([]int32, nOrders)
	dates := make([]types.Date, nOrders)
	prios := make([]int32, nOrders)
	counts := make([]int32, nOrders)
	dateSpan := int(orderDateHi-orderDateLo) + 1
	// dbgen never references customers with custkey ≡ 0 (mod 3); map a
	// uniform draw onto the allowed two-thirds.
	allowed := nCust / 3 * 2
	if allowed < 1 {
		allowed = 1
	}
	parallelRanges(nOrders, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			key := i + 1
			r := newRNG(seedOrders, uint64(key))
			keys[i] = int32(key)
			base := r.intn(allowed)
			ck := base/2*3 + 1 + base%2
			if ck > nCust { // tiny scale factors
				ck = 1
			}
			custkeys[i] = int32(ck)
			dates[i] = orderDateLo + types.Date(r.intn(dateSpan))
			prios[i] = 0
			counts[i] = int32(r.rangeInt(1, 7))
		}
	})
	rel := storage.NewRelation("orders")
	rel.AddInt32("o_orderkey", keys)
	rel.AddInt32("o_custkey", custkeys)
	rel.AddDate("o_orderdate", dates)
	rel.AddInt32("o_shippriority", prios)
	return rel, counts
}

func genLineitem(orders *storage.Relation, counts []int32, nPart, nSupp int,
	retail []types.Numeric, workers int) (*storage.Relation, []types.Numeric) {

	nOrders := len(counts)
	offsets := make([]int64, nOrders+1)
	var total int64
	for i, c := range counts {
		offsets[i] = total
		total += int64(c)
	}
	offsets[nOrders] = total
	n := int(total)

	orderkeys := make([]int32, n)
	partkeys := make([]int32, n)
	suppkeys := make([]int32, n)
	quantities := make([]types.Numeric, n)
	extprices := make([]types.Numeric, n)
	discounts := make([]types.Numeric, n)
	taxes := make([]types.Numeric, n)
	returnflags := make([]byte, n)
	linestatus := make([]byte, n)
	shipdates := make([]types.Date, n)
	totalprice := make([]types.Numeric, nOrders)

	odates := orders.Date("o_orderdate")
	okeys := orders.Int32("o_orderkey")

	parallelRanges(nOrders, workers, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			r := newRNG(seedLineitem, uint64(okeys[o]))
			odate := odates[o]
			var orderTotal int64
			for li := offsets[o]; li < offsets[o+1]; li++ {
				pk := r.rangeInt(1, nPart)
				j := r.intn(suppliersPerPart)
				qty := int64(r.rangeInt(1, 50))
				disc := int64(r.rangeInt(0, 10))
				tax := int64(r.rangeInt(0, 8))
				ship := odate + types.Date(r.rangeInt(1, 121))
				receipt := ship + types.Date(r.rangeInt(1, 30))

				orderkeys[li] = okeys[o]
				partkeys[li] = int32(pk)
				suppkeys[li] = partSupplier(pk, j, nSupp)
				quantities[li] = types.Numeric(qty * types.NumericScale)
				ext := qty * int64(retail[pk-1])
				extprices[li] = types.Numeric(ext)
				discounts[li] = types.Numeric(disc)
				taxes[li] = types.Numeric(tax)
				shipdates[li] = ship
				if receipt <= currentDate {
					if r.intn(2) == 0 {
						returnflags[li] = 'R'
					} else {
						returnflags[li] = 'A'
					}
				} else {
					returnflags[li] = 'N'
				}
				if ship <= currentDate {
					linestatus[li] = 'F'
				} else {
					linestatus[li] = 'O'
				}
				// o_totalprice contribution: extprice*(1-disc)*(1+tax).
				orderTotal += ext * (100 - disc) / 100 * (100 + tax) / 100
			}
			totalprice[o] = types.Numeric(orderTotal)
		}
	})

	rel := storage.NewRelation("lineitem")
	rel.AddInt32("l_orderkey", orderkeys)
	rel.AddInt32("l_partkey", partkeys)
	rel.AddInt32("l_suppkey", suppkeys)
	rel.AddNumeric("l_quantity", quantities)
	rel.AddNumeric("l_extendedprice", extprices)
	rel.AddNumeric("l_discount", discounts)
	rel.AddNumeric("l_tax", taxes)
	rel.AddByte("l_returnflag", returnflags)
	rel.AddByte("l_linestatus", linestatus)
	rel.AddDate("l_shipdate", shipdates)
	return rel, totalprice
}

// parallelRanges splits [0, n) into contiguous ranges, one per worker.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n < 4096 || w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	exec.Parallel(w, func(worker int) {
		lo := worker * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
