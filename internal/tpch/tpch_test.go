package tpch

import (
	"bytes"
	"strings"
	"testing"

	"paradigms/internal/types"
)

func TestCardinalities(t *testing.T) {
	db := Generate(0.01, 4)
	expect := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"customer": 1500,
		"part":     2000,
		"partsupp": 8000,
		"orders":   15000,
	}
	for name, want := range expect {
		if got := db.Rel(name).Rows(); got != want {
			t.Errorf("%s rows = %d, want %d", name, got, want)
		}
	}
	// Lineitem is 1..7 per order, average 4.
	li := db.Rel("lineitem").Rows()
	if li < 15000*1 || li > 15000*7 {
		t.Fatalf("lineitem rows = %d out of range", li)
	}
	avg := float64(li) / 15000
	if avg < 3.7 || avg > 4.3 {
		t.Errorf("lineitem fanout avg = %.2f, want ≈4", avg)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	a := Generate(0.005, 1)
	b := Generate(0.005, 7)
	for _, rel := range []string{"orders", "lineitem", "part", "customer", "supplier", "partsupp"} {
		ra, rb := a.Rel(rel), b.Rel(rel)
		if ra.Rows() != rb.Rows() {
			t.Fatalf("%s rows differ: %d vs %d", rel, ra.Rows(), rb.Rows())
		}
		for _, col := range ra.Columns() {
			cb := rb.Column(col.Name)
			switch {
			case col.I32 != nil:
				for i := range col.I32 {
					if col.I32[i] != cb.I32[i] {
						t.Fatalf("%s.%s[%d] differs", rel, col.Name, i)
					}
				}
			case col.Num != nil:
				for i := range col.Num {
					if col.Num[i] != cb.Num[i] {
						t.Fatalf("%s.%s[%d] differs", rel, col.Name, i)
					}
				}
			case col.Dat != nil:
				for i := range col.Dat {
					if col.Dat[i] != cb.Dat[i] {
						t.Fatalf("%s.%s[%d] differs", rel, col.Name, i)
					}
				}
			case col.B != nil:
				if !bytes.Equal(col.B, cb.B) {
					t.Fatalf("%s.%s differs", rel, col.Name)
				}
			case col.Str != nil:
				if !bytes.Equal(col.Str.Bytes, cb.Str.Bytes) {
					t.Fatalf("%s.%s heap differs", rel, col.Name)
				}
			}
		}
	}
}

func TestQ6SelectivityShape(t *testing.T) {
	// Q6 selects shipdate in 1994, discount in [0.05,0.07], qty < 24:
	// roughly 0.9–2.5% of lineitem (dbgen: ~1.9% at SF 1).
	db := Generate(0.05, 0)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	disc := li.Numeric("l_discount")
	qty := li.Numeric("l_quantity")
	lo, hi := types.MakeDate(1994, 1, 1), types.MakeDate(1995, 1, 1)
	matched := 0
	for i := range ship {
		if ship[i] >= lo && ship[i] < hi && disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24*types.NumericScale {
			matched++
		}
	}
	frac := float64(matched) / float64(len(ship))
	if frac < 0.012 || frac > 0.028 {
		t.Errorf("Q6 selectivity = %.4f, want ≈0.019", frac)
	}
}

func TestQ1SelectivityShape(t *testing.T) {
	db := Generate(0.05, 0)
	li := db.Rel("lineitem")
	ship := li.Date("l_shipdate")
	cutoff := types.MakeDate(1998, 9, 2)
	matched := 0
	for i := range ship {
		if ship[i] <= cutoff {
			matched++
		}
	}
	frac := float64(matched) / float64(len(ship))
	if frac < 0.97 || frac > 0.995 {
		t.Errorf("Q1 selectivity = %.4f, want ≈0.985", frac)
	}
}

func TestQ3BuildCardinalityShape(t *testing.T) {
	// Orders before 1995-03-15 from BUILDING customers ≈ 147K·SF (§3.3).
	db := Generate(0.05, 0)
	cust := db.Rel("customer")
	seg := cust.String("c_mktsegment")
	building := make(map[int32]bool)
	keys := cust.Int32("c_custkey")
	for i := 0; i < cust.Rows(); i++ {
		if string(seg.Get(i)) == "BUILDING" {
			building[keys[i]] = true
		}
	}
	segFrac := float64(len(building)) / float64(cust.Rows())
	if segFrac < 0.17 || segFrac > 0.23 {
		t.Errorf("BUILDING fraction = %.3f, want ≈0.2", segFrac)
	}
	ord := db.Rel("orders")
	odate := ord.Date("o_orderdate")
	ocust := ord.Int32("o_custkey")
	cutoff := types.MakeDate(1995, 3, 15)
	qualifying := 0
	for i := 0; i < ord.Rows(); i++ {
		if odate[i] < cutoff && building[ocust[i]] {
			qualifying++
		}
	}
	// Paper: 147K at SF 1 → 7350 at SF 0.05; allow ±15%.
	want := 147000.0 * 0.05
	if f := float64(qualifying); f < 0.85*want || f > 1.15*want {
		t.Errorf("Q3 build cardinality = %d, want ≈%.0f", qualifying, want)
	}
}

func TestQ9GreenPartsShape(t *testing.T) {
	db := Generate(0.05, 0)
	part := db.Rel("part")
	names := part.String("p_name")
	green := 0
	for i := 0; i < part.Rows(); i++ {
		if bytes.Contains(names.Get(i), []byte("green")) {
			green++
		}
	}
	frac := float64(green) / float64(part.Rows())
	// 5 words from 92 → ≈5.4%.
	if frac < 0.04 || frac > 0.07 {
		t.Errorf("green part fraction = %.4f, want ≈0.054", frac)
	}
}

func TestPartsuppConsistentWithLineitem(t *testing.T) {
	// Every (l_partkey, l_suppkey) must exist in partsupp — Q9 depends on
	// this foreign key.
	db := Generate(0.01, 0)
	ps := db.Rel("partsupp")
	pairs := make(map[[2]int32]bool, ps.Rows())
	pk := ps.Int32("ps_partkey")
	sk := ps.Int32("ps_suppkey")
	for i := 0; i < ps.Rows(); i++ {
		pairs[[2]int32{pk[i], sk[i]}] = true
	}
	li := db.Rel("lineitem")
	lpk := li.Int32("l_partkey")
	lsk := li.Int32("l_suppkey")
	for i := 0; i < li.Rows(); i++ {
		if !pairs[[2]int32{lpk[i], lsk[i]}] {
			t.Fatalf("lineitem %d references missing partsupp (%d,%d)", i, lpk[i], lsk[i])
		}
	}
	// Each part has exactly 4 distinct suppliers.
	perPart := make(map[int32]map[int32]bool)
	for i := 0; i < ps.Rows(); i++ {
		m := perPart[pk[i]]
		if m == nil {
			m = make(map[int32]bool)
			perPart[pk[i]] = m
		}
		m[sk[i]] = true
	}
	for p, m := range perPart {
		if len(m) != 4 {
			t.Fatalf("part %d has %d distinct suppliers, want 4", p, len(m))
		}
	}
}

func TestOrdersCustkeysValid(t *testing.T) {
	db := Generate(0.01, 0)
	ord := db.Rel("orders")
	nCust := db.Rel("customer").Rows()
	for i, ck := range ord.Int32("o_custkey") {
		if ck < 1 || int(ck) > nCust {
			t.Fatalf("order %d has custkey %d out of range", i, ck)
		}
		if ck%3 == 0 {
			t.Fatalf("order %d references custkey %d ≡ 0 (mod 3)", i, ck)
		}
	}
}

func TestReturnFlagsAndStatus(t *testing.T) {
	db := Generate(0.01, 0)
	li := db.Rel("lineitem")
	rf := li.Byte("l_returnflag")
	ls := li.Byte("l_linestatus")
	ship := li.Date("l_shipdate")
	counts := map[byte]int{}
	for i := range rf {
		counts[rf[i]]++
		switch rf[i] {
		case 'R', 'A', 'N':
		default:
			t.Fatalf("bad returnflag %c", rf[i])
		}
		if ship[i] <= currentDate && ls[i] != 'F' {
			t.Fatalf("shipped %v but linestatus %c", ship[i], ls[i])
		}
		if ship[i] > currentDate && ls[i] != 'O' {
			t.Fatalf("future ship %v but linestatus %c", ship[i], ls[i])
		}
	}
	for _, flag := range []byte{'R', 'A', 'N'} {
		if counts[flag] == 0 {
			t.Errorf("returnflag %c never generated", flag)
		}
	}
	// R and A are a coin flip over the same subset: within 10%.
	r, a := float64(counts['R']), float64(counts['A'])
	if r/a < 0.9 || r/a > 1.1 {
		t.Errorf("R/A ratio = %.2f, want ≈1", r/a)
	}
}

func TestPartNameWordsDistinct(t *testing.T) {
	db := Generate(0.01, 0)
	names := db.Rel("part").String("p_name")
	for i := 0; i < 200; i++ {
		words := strings.Split(string(names.Get(i)), " ")
		if len(words) != 5 {
			t.Fatalf("part %d name %q has %d words", i, names.Get(i), len(words))
		}
		seen := map[string]bool{}
		for _, w := range words {
			if seen[w] {
				t.Fatalf("part %d name %q repeats %q", i, names.Get(i), w)
			}
			seen[w] = true
		}
	}
}

func TestDiscountAndQuantityRanges(t *testing.T) {
	db := Generate(0.01, 0)
	li := db.Rel("lineitem")
	for i, d := range li.Numeric("l_discount") {
		if d < 0 || d > 10 {
			t.Fatalf("discount[%d] = %d", i, d)
		}
	}
	for i, q := range li.Numeric("l_quantity") {
		if q < 100 || q > 5000 {
			t.Fatalf("quantity[%d] = %d", i, q)
		}
	}
	for i, x := range li.Numeric("l_tax") {
		if x < 0 || x > 8 {
			t.Fatalf("tax[%d] = %d", i, x)
		}
	}
}

func TestColorWordCount(t *testing.T) {
	if len(ColorWords) != 92 {
		t.Fatalf("ColorWords has %d entries, dbgen has 92", len(ColorWords))
	}
	seen := map[string]bool{}
	for _, w := range ColorWords {
		if seen[w] {
			t.Fatalf("duplicate color word %q", w)
		}
		seen[w] = true
	}
}

func TestGeneratePanicsOnBadSF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for sf=0")
		}
	}()
	Generate(0, 1)
}

func TestOrderDatesInRange(t *testing.T) {
	db := Generate(0.01, 0)
	for i, d := range db.Rel("orders").Date("o_orderdate") {
		if d < orderDateLo || d > orderDateHi {
			t.Fatalf("orderdate[%d] = %v out of range", i, d)
		}
	}
}

func TestTotalPriceConsistent(t *testing.T) {
	db := Generate(0.005, 0)
	ord := db.Rel("orders")
	li := db.Rel("lineitem")
	// Recompute o_totalprice for the first orders and compare.
	sums := make(map[int32]int64)
	lok := li.Int32("l_orderkey")
	ext := li.Numeric("l_extendedprice")
	disc := li.Numeric("l_discount")
	tax := li.Numeric("l_tax")
	for i := range lok {
		e := int64(ext[i])
		sums[lok[i]] += e * (100 - int64(disc[i])) / 100 * (100 + int64(tax[i])) / 100
	}
	okeys := ord.Int32("o_orderkey")
	tp := ord.Numeric("o_totalprice")
	for i := 0; i < 100; i++ {
		if int64(tp[i]) != sums[okeys[i]] {
			t.Fatalf("o_totalprice[%d] = %d, recomputed %d", i, tp[i], sums[okeys[i]])
		}
	}
}
