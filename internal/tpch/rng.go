// Package tpch generates deterministic TPC-H data — the paper's primary
// workload (§3) — in the columnar format of internal/storage.
//
// This is a from-scratch dbgen equivalent (substitution S7 in DESIGN.md):
// it reproduces the table cardinalities, key structure, and the value
// distributions that the studied queries (Q1, Q6, Q3, Q9, Q18) depend on —
// date ranges, discount/quantity/tax distributions, market segments,
// part-name color words, the partsupp supplier assignment formula, and
// order/lineitem fan-out. Free-text columns that no studied query touches
// (comments, addresses, phones) are omitted to keep memory proportional
// to what the experiments scan; the paper normalizes counters per scanned
// tuple, so omitted columns do not affect any reported metric.
//
// Generation is deterministic for a given scale factor, independent of
// the number of generator workers: every row derives its randomness from
// a counter-based hash of (table seed, entity key), not from a shared
// sequential stream.
package tpch

// splitmix64 is the counter-based generator underlying all row
// randomness. It passes BigCrush when used as a stream and, used as a
// hash of (seed ^ key), gives dbgen-grade per-row independence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rng is a small deterministic PRNG seeded per entity.
type rng struct{ state uint64 }

func newRNG(tableSeed, key uint64) rng {
	return rng{state: splitmix64(tableSeed ^ splitmix64(key))}
}

func (r *rng) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform int in [lo, hi] (inclusive), matching
// dbgen's RANDOM(lo, hi) convention.
func (r *rng) rangeInt(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// Table seeds: arbitrary but fixed so that datasets are bit-identical
// across runs and worker counts.
const (
	seedOrders   = 0x5eed0001
	seedLineitem = 0x5eed0002
	seedCustomer = 0x5eed0003
	seedPart     = 0x5eed0004
	seedSupplier = 0x5eed0005
	seedPartsupp = 0x5eed0006
)
