// Package simd provides the measured data-parallel kernels of the SIMD
// study (§5, Figures 6–9).
//
// Go has no vector intrinsics (DESIGN.md S3), so the "SIMD" variants here
// use the data-parallel techniques portable Go can express: SWAR (two
// 32-bit lanes packed in one 64-bit word), branch-free predication, and
// manual unrolling for instruction- and memory-level parallelism. They
// are the measured counterpart of the AVX-512 lane model in
// internal/microsim; EXPERIMENTS.md reports both, side by side with the
// paper's numbers.
package simd

import (
	"math/bits"

	"paradigms/internal/hashtable"
)

// SelectBranching is the naive scalar selection: positions of x < bound,
// with a data-dependent branch per element.
func SelectBranching(data []int32, bound int32, out []int32) int {
	k := 0
	for i, v := range data {
		if v < bound {
			out[k] = int32(i)
			k++
		}
	}
	return k
}

// SelectPredicated is the branch-free scalar selection the paper uses as
// its scalar baseline (§2.1: "*res = i; res += cond").
func SelectPredicated(data []int32, bound int32, out []int32) int {
	k := 0
	for i, v := range data {
		out[k] = int32(i)
		if v < bound {
			k++
		}
	}
	return k
}

// SelectSWAR processes two 32-bit lanes per 64-bit word: both lanes are
// compared with one subtraction using a borrow guard, the per-lane sign
// bits become a 2-bit mask, and a tiny mask→positions table emulates the
// AVX-512 compress-store. This is the widest data-parallel selection
// portable Go can express.
func SelectSWAR(data []int32, bound int32, out []int32) int {
	k := 0
	n := len(data) &^ 1
	// Bias lanes by 2^31 so signed order becomes unsigned order; a lane
	// is below the bound iff the 64-bit difference goes negative.
	b := uint64(uint32(bound) ^ 0x80000000)
	const bias = 0x8000000080000000
	for i := 0; i < n; i += 2 {
		w := (uint64(uint32(data[i])) | uint64(uint32(data[i+1]))<<32) ^ bias
		m0 := ((w & 0xffffffff) - b) >> 63
		m1 := ((w >> 32) - b) >> 63
		out[k] = int32(i)
		k += int(m0)
		out[k] = int32(i + 1)
		k += int(m1)
	}
	for i := n; i < len(data); i++ {
		out[k] = int32(i)
		if data[i] < bound {
			k++
		}
	}
	return k
}

// SelectSparsePredicated is the secondary-selection kernel (input comes
// through a selection vector — Fig. 6b).
func SelectSparsePredicated(data []int32, bound int32, sel []int32, out []int32) int {
	k := 0
	for _, s := range sel {
		out[k] = s
		if data[s] < bound {
			k++
		}
	}
	return k
}

// SelectSparseUnrolled is the data-parallel variant of the sparse
// selection: 4-way unrolled gathers to expose memory-level parallelism.
func SelectSparseUnrolled(data []int32, bound int32, sel []int32, out []int32) int {
	k := 0
	n := len(sel) &^ 3
	for i := 0; i < n; i += 4 {
		s0, s1, s2, s3 := sel[i], sel[i+1], sel[i+2], sel[i+3]
		v0, v1, v2, v3 := data[s0], data[s1], data[s2], data[s3]
		out[k] = s0
		if v0 < bound {
			k++
		}
		out[k] = s1
		if v1 < bound {
			k++
		}
		out[k] = s2
		if v2 < bound {
			k++
		}
		out[k] = s3
		if v3 < bound {
			k++
		}
	}
	for i := n; i < len(sel); i++ {
		out[k] = sel[i]
		if data[sel[i]] < bound {
			k++
		}
	}
	return k
}

// HashScalar hashes keys with Murmur2 one at a time.
func HashScalar(keys []uint64, out []uint64) {
	for i, k := range keys {
		out[i] = hashtable.Murmur2(k)
	}
}

// HashUnrolled hashes four keys per iteration, letting independent
// multiply chains overlap — the ILP analogue of vectorized hashing
// (Fig. 8a).
func HashUnrolled(keys []uint64, out []uint64) {
	n := len(keys) &^ 3
	for i := 0; i < n; i += 4 {
		out[i] = hashtable.Murmur2(keys[i])
		out[i+1] = hashtable.Murmur2(keys[i+1])
		out[i+2] = hashtable.Murmur2(keys[i+2])
		out[i+3] = hashtable.Murmur2(keys[i+3])
	}
	for i := n; i < len(keys); i++ {
		out[i] = hashtable.Murmur2(keys[i])
	}
}

// GatherScalar reads table[idx[i]] sequentially.
func GatherScalar(table []uint64, idx []int32, out []uint64) {
	for i, s := range idx {
		out[i] = table[s]
	}
}

// GatherUnrolled issues four independent loads per iteration (Fig. 8b:
// the gain is bounded by the memory pipeline, ~2 loads/cycle).
func GatherUnrolled(table []uint64, idx []int32, out []uint64) {
	n := len(idx) &^ 3
	for i := 0; i < n; i += 4 {
		out[i] = table[idx[i]]
		out[i+1] = table[idx[i+1]]
		out[i+2] = table[idx[i+2]]
		out[i+3] = table[idx[i+3]]
	}
	for i := n; i < len(idx); i++ {
		out[i] = table[idx[i]]
	}
}

// ProbeScalar is the Tectorwise probe primitive: hash, find candidate,
// compare key — one probe at a time (Fig. 8c / Fig. 9).
func ProbeScalar(ht *hashtable.Table, keys []uint64, matches []int32) int {
	nm := 0
	for i, k := range keys {
		h := hashtable.Murmur2(k)
		for ref := ht.Lookup(h); ref != 0; ref = ht.Next(ref) {
			if ht.Hash(ref) == h && ht.Word(ref, 0) == k {
				matches[nm] = int32(i)
				nm++
				break
			}
		}
	}
	return nm
}

// ProbeUnrolled overlaps four independent probes per iteration.
func ProbeUnrolled(ht *hashtable.Table, keys []uint64, matches []int32) int {
	nm := 0
	n := len(keys) &^ 3
	var refs [4]hashtable.Ref
	var hs [4]uint64
	for i := 0; i < n; i += 4 {
		hs[0] = hashtable.Murmur2(keys[i])
		hs[1] = hashtable.Murmur2(keys[i+1])
		hs[2] = hashtable.Murmur2(keys[i+2])
		hs[3] = hashtable.Murmur2(keys[i+3])
		refs[0] = ht.Lookup(hs[0])
		refs[1] = ht.Lookup(hs[1])
		refs[2] = ht.Lookup(hs[2])
		refs[3] = ht.Lookup(hs[3])
		for j := 0; j < 4; j++ {
			k := keys[i+j]
			for ref := refs[j]; ref != 0; ref = ht.Next(ref) {
				if ht.Hash(ref) == hs[j] && ht.Word(ref, 0) == k {
					matches[nm] = int32(i + j)
					nm++
					break
				}
			}
		}
	}
	for i := n; i < len(keys); i++ {
		h := hashtable.Murmur2(keys[i])
		for ref := ht.Lookup(h); ref != 0; ref = ht.Next(ref) {
			if ht.Hash(ref) == h && ht.Word(ref, 0) == keys[i] {
				matches[nm] = int32(i)
				nm++
				break
			}
		}
	}
	return nm
}

// PopcountMask is a helper used by tests to sanity-check SWAR masks.
func PopcountMask(m uint64) int { return bits.OnesCount64(m) }
