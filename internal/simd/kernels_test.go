package simd

import (
	"math"
	"math/rand"
	"testing"

	"paradigms/internal/hashtable"
)

// refSelect is the trusted scalar oracle for the generic kernels.
func refSelect(data []int32, keep func(int32) bool) []int32 {
	var out []int32
	for i, v := range data {
		if keep(v) {
			out = append(out, int32(i))
		}
	}
	return out
}

func equalSel(a []int32, b []int32, n int) bool {
	if len(a) != n {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randData(r *rand.Rand, n int) []int32 {
	data := make([]int32, n)
	for i := range data {
		switch r.Intn(8) {
		case 0:
			data[i] = math.MinInt32
		case 1:
			data[i] = math.MaxInt32
		default:
			data[i] = int32(r.Uint32())
		}
	}
	return data
}

func TestSelectLTGEAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bounds := []int32{math.MinInt32, -1000, 0, 1000, math.MaxInt32}
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1001} {
		data := randData(r, n)
		out := make([]int32, n+1)
		for _, b := range bounds {
			want := refSelect(data, func(v int32) bool { return v < b })
			if k := SelectLT(data, b, out); !equalSel(want, out[:k], k) {
				t.Fatalf("SelectLT n=%d bound=%d: got %d positions, want %d", n, b, k, len(want))
			}
			want = refSelect(data, func(v int32) bool { return v >= b })
			if k := SelectGE(data, b, out); !equalSel(want, out[:k], k) {
				t.Fatalf("SelectGE n=%d bound=%d: got %d positions, want %d", n, b, k, len(want))
			}
		}
	}
}

func TestSelectSparseAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, 64, 999} {
		data := randData(r, n)
		// A strided input selection, as a prior conjunct would produce.
		var sel []int32
		for i := 0; i < n; i += 2 {
			sel = append(sel, int32(i))
		}
		out := make([]int32, n+1)
		for _, b := range []int32{math.MinInt32, 0, math.MaxInt32} {
			var want []int32
			for _, s := range sel {
				if data[s] < b {
					want = append(want, s)
				}
			}
			if k := SelectSparseLT(data, b, sel, out); !equalSel(want, out[:k], k) {
				t.Fatalf("SelectSparseLT n=%d bound=%d mismatch", n, b)
			}
			want = nil
			for _, s := range sel {
				if data[s] >= b {
					want = append(want, s)
				}
			}
			if k := SelectSparseGE(data, b, sel, out); !equalSel(want, out[:k], k) {
				t.Fatalf("SelectSparseGE n=%d bound=%d mismatch", n, b)
			}
		}
	}
}

func TestSelectRangeAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ranges := [][2]int32{
		{math.MinInt32, math.MaxInt32},
		{math.MinInt32, 0},
		{0, math.MaxInt32},
		{-500, 500},
		{7, 7},
	}
	for _, n := range []int{0, 1, 3, 4, 63, 1000} {
		data := randData(r, n)
		out := make([]int32, n+1)
		for _, rg := range ranges {
			lo, hi := rg[0], rg[1]
			want := refSelect(data, func(v int32) bool { return v >= lo && v <= hi })
			if k := SelectRange(data, lo, hi, out); !equalSel(want, out[:k], k) {
				t.Fatalf("SelectRange n=%d [%d,%d]: got %d positions, want %d", n, lo, hi, k, len(want))
			}
		}
	}
}

func TestHashMix64UnrolledMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 3, 4, 5, 100} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		out := make([]uint64, n)
		HashMix64Unrolled(keys, out)
		for i, k := range keys {
			if out[i] != hashtable.Mix64(k) {
				t.Fatalf("n=%d index %d: unrolled Mix64 diverges from scalar", n, i)
			}
		}
	}
}
