package simd

import "paradigms/internal/hashtable"

// Engine-facing kernels: the generic counterparts of the measured study
// kernels in simd.go, wired into the hot filter and hash paths of
// internal/plan and internal/compiled. They are generic over ~int32 so
// named 32-bit column types (types.Date) reuse one instantiation shape,
// and they cover both comparison directions (LT and GE; GT and LE reduce
// to them by bound adjustment at the call site).

// SelectLT writes the positions of data[i] < bound to out and returns
// the count — the SWAR selection of SelectSWAR, generic over ~int32.
// Two lanes are compared per 64-bit word with one subtraction each and
// the compress-store is branch-free.
func SelectLT[T ~int32](data []T, bound T, out []int32) int {
	k := 0
	n := len(data) &^ 1
	// Bias lanes by 2^31 so signed order becomes unsigned order; a lane
	// is below the bound iff the 64-bit difference goes negative.
	b := uint64(uint32(bound) ^ 0x80000000)
	const bias = 0x8000000080000000
	for i := 0; i < n; i += 2 {
		w := (uint64(uint32(data[i])) | uint64(uint32(data[i+1]))<<32) ^ bias
		m0 := ((w & 0xffffffff) - b) >> 63
		m1 := ((w >> 32) - b) >> 63
		out[k] = int32(i)
		k += int(m0)
		out[k] = int32(i + 1)
		k += int(m1)
	}
	for i := n; i < len(data); i++ {
		out[k] = int32(i)
		if data[i] < bound {
			k++
		}
	}
	return k
}

// SelectGE is SelectLT with the borrow mask inverted: positions of
// data[i] >= bound.
func SelectGE[T ~int32](data []T, bound T, out []int32) int {
	k := 0
	n := len(data) &^ 1
	b := uint64(uint32(bound) ^ 0x80000000)
	const bias = 0x8000000080000000
	for i := 0; i < n; i += 2 {
		w := (uint64(uint32(data[i])) | uint64(uint32(data[i+1]))<<32) ^ bias
		m0 := (((w & 0xffffffff) - b) >> 63) ^ 1
		m1 := (((w >> 32) - b) >> 63) ^ 1
		out[k] = int32(i)
		k += int(m0)
		out[k] = int32(i + 1)
		k += int(m1)
	}
	for i := n; i < len(data); i++ {
		out[k] = int32(i)
		if data[i] >= bound {
			k++
		}
	}
	return k
}

// SelectSparseLT narrows a selection vector to positions with
// data[s] < bound — the 4-way unrolled sparse selection of
// SelectSparseUnrolled, generic over ~int32.
func SelectSparseLT[T ~int32](data []T, bound T, sel []int32, out []int32) int {
	k := 0
	n := len(sel) &^ 3
	for i := 0; i < n; i += 4 {
		s0, s1, s2, s3 := sel[i], sel[i+1], sel[i+2], sel[i+3]
		v0, v1, v2, v3 := data[s0], data[s1], data[s2], data[s3]
		out[k] = s0
		if v0 < bound {
			k++
		}
		out[k] = s1
		if v1 < bound {
			k++
		}
		out[k] = s2
		if v2 < bound {
			k++
		}
		out[k] = s3
		if v3 < bound {
			k++
		}
	}
	for i := n; i < len(sel); i++ {
		out[k] = sel[i]
		if data[sel[i]] < bound {
			k++
		}
	}
	return k
}

// SelectSparseGE is SelectSparseLT for data[s] >= bound.
func SelectSparseGE[T ~int32](data []T, bound T, sel []int32, out []int32) int {
	k := 0
	n := len(sel) &^ 3
	for i := 0; i < n; i += 4 {
		s0, s1, s2, s3 := sel[i], sel[i+1], sel[i+2], sel[i+3]
		v0, v1, v2, v3 := data[s0], data[s1], data[s2], data[s3]
		out[k] = s0
		if v0 >= bound {
			k++
		}
		out[k] = s1
		if v1 >= bound {
			k++
		}
		out[k] = s2
		if v2 >= bound {
			k++
		}
		out[k] = s3
		if v3 >= bound {
			k++
		}
	}
	for i := n; i < len(sel); i++ {
		out[k] = sel[i]
		if data[sel[i]] >= bound {
			k++
		}
	}
	return k
}

// SelectRange writes the positions of lo <= data[i] <= hi to out and
// returns the count, branch-free and 4-way unrolled. The inclusive range
// check compiles to one subtract and one unsigned compare per lane
// (v in [lo,hi] iff uint32(v-lo) <= uint32(hi-lo), valid for any signed
// lo <= hi under two's-complement wraparound) — the block-staged filter
// of the compiled backend's hot scan-probe loop. Requires lo <= hi.
func SelectRange[T ~int32](data []T, lo, hi T, out []int32) int {
	k := 0
	span := uint32(int32(hi) - int32(lo))
	l := int32(lo)
	n := len(data) &^ 3
	for i := 0; i < n; i += 4 {
		v0, v1, v2, v3 := int32(data[i]), int32(data[i+1]), int32(data[i+2]), int32(data[i+3])
		out[k] = int32(i)
		if uint32(v0-l) <= span {
			k++
		}
		out[k] = int32(i + 1)
		if uint32(v1-l) <= span {
			k++
		}
		out[k] = int32(i + 2)
		if uint32(v2-l) <= span {
			k++
		}
		out[k] = int32(i + 3)
		if uint32(v3-l) <= span {
			k++
		}
	}
	for i := n; i < len(data); i++ {
		out[k] = int32(i)
		if uint32(int32(data[i])-l) <= span {
			k++
		}
	}
	return k
}

// HashMix64Unrolled hashes four keys per iteration with the Mix64
// finalizer (the compiled backend's hash), overlapping the independent
// multiply chains like HashUnrolled does for Murmur2. The hybrid
// executor uses it to build and probe cross-engine join tables with one
// hash function on both backends.
func HashMix64Unrolled(keys []uint64, out []uint64) {
	n := len(keys) &^ 3
	for i := 0; i < n; i += 4 {
		out[i] = hashtable.Mix64(keys[i])
		out[i+1] = hashtable.Mix64(keys[i+1])
		out[i+2] = hashtable.Mix64(keys[i+2])
		out[i+3] = hashtable.Mix64(keys[i+3])
	}
	for i := n; i < len(keys); i++ {
		out[i] = hashtable.Mix64(keys[i])
	}
}
