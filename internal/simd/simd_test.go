package simd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paradigms/internal/hashtable"
)

func TestSelectVariantsAgree(t *testing.T) {
	f := func(data []int32, bound int32) bool {
		o1 := make([]int32, len(data))
		o2 := make([]int32, len(data))
		o3 := make([]int32, len(data))
		k1 := SelectBranching(data, bound, o1)
		k2 := SelectPredicated(data, bound, o2)
		k3 := SelectSWAR(data, bound, o3)
		if k1 != k2 || k1 != k3 {
			return false
		}
		for i := 0; i < k1; i++ {
			if o1[i] != o2[i] || o1[i] != o3[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSelectSWAREdgeValues(t *testing.T) {
	data := []int32{-1 << 31, 1<<31 - 1, 0, -1, 1, 42, -42}
	for _, bound := range []int32{-1 << 31, -1, 0, 1, 42, 1<<31 - 1} {
		o1 := make([]int32, len(data))
		o2 := make([]int32, len(data))
		k1 := SelectBranching(data, bound, o1)
		k2 := SelectSWAR(data, bound, o2)
		if k1 != k2 {
			t.Fatalf("bound %d: count %d vs %d", bound, k1, k2)
		}
		for i := 0; i < k1; i++ {
			if o1[i] != o2[i] {
				t.Fatalf("bound %d: position %d differs", bound, i)
			}
		}
	}
}

func TestSparseVariantsAgree(t *testing.T) {
	f := func(dataRaw []int32, bound int32) bool {
		if len(dataRaw) == 0 {
			return true
		}
		sel := make([]int32, 0, len(dataRaw))
		for i := 0; i < len(dataRaw); i += 2 {
			sel = append(sel, int32(i))
		}
		o1 := make([]int32, len(dataRaw))
		o2 := make([]int32, len(dataRaw))
		k1 := SelectSparsePredicated(dataRaw, bound, sel, o1)
		k2 := SelectSparseUnrolled(dataRaw, bound, sel, o2)
		if k1 != k2 {
			return false
		}
		for i := 0; i < k1; i++ {
			if o1[i] != o2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHashVariantsAgree(t *testing.T) {
	keys := make([]uint64, 1003)
	for i := range keys {
		keys[i] = rand.Uint64()
	}
	o1 := make([]uint64, len(keys))
	o2 := make([]uint64, len(keys))
	HashScalar(keys, o1)
	HashUnrolled(keys, o2)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("hash %d differs", i)
		}
	}
}

func TestGatherVariantsAgree(t *testing.T) {
	table := make([]uint64, 4096)
	for i := range table {
		table[i] = uint64(i * 3)
	}
	idx := make([]int32, 999)
	for i := range idx {
		idx[i] = int32(rand.Intn(len(table)))
	}
	o1 := make([]uint64, len(idx))
	o2 := make([]uint64, len(idx))
	GatherScalar(table, idx, o1)
	GatherUnrolled(table, idx, o2)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("gather %d differs", i)
		}
	}
}

func TestProbeVariantsAgree(t *testing.T) {
	ht := hashtable.New(1, 1)
	sh := ht.Shard(0)
	for i := uint64(0); i < 5000; i += 2 { // even keys present
		ref, _ := sh.Alloc(ht, hashtable.Murmur2(i))
		ht.SetWord(ref, 0, i)
	}
	ht.Finalize()
	keys := make([]uint64, 1001)
	for i := range keys {
		keys[i] = uint64(rand.Intn(6000))
	}
	m1 := make([]int32, len(keys))
	m2 := make([]int32, len(keys))
	n1 := ProbeScalar(ht, keys, m1)
	n2 := ProbeUnrolled(ht, keys, m2)
	if n1 != n2 {
		t.Fatalf("match counts differ: %d vs %d", n1, n2)
	}
	for i := 0; i < n1; i++ {
		if m1[i] != m2[i] {
			t.Fatalf("match %d differs", i)
		}
	}
	// Every even key < 5000 must match, odd keys must not.
	matched := map[int32]bool{}
	for i := 0; i < n1; i++ {
		matched[m1[i]] = true
	}
	for i, k := range keys {
		want := k%2 == 0 && k < 5000
		if matched[int32(i)] != want {
			t.Fatalf("key %d match = %v, want %v", k, matched[int32(i)], want)
		}
	}
}
