package prepcache

import (
	"sync"
	"time"

	"paradigms/internal/hybrid"
	"paradigms/internal/obs"
)

// PipelineRouter is the statement Router's per-pipeline counterpart:
// where Router picks one engine for the whole statement, a
// PipelineRouter (one per cached statement, owned by its Statement)
// picks an engine for each pipeline of the hybrid executor's plan. It
// implements hybrid.Router.
//
// Each pipeline is a two-armed bandit (compiled vs vectorized) with
// the same deterministic epsilon-greedy schedule as Router: arms are
// seeded by the cost heuristic (hybrid.CostAssign) — the heuristic's
// arm runs first, the other arm is tried once — then the lower-EWMA
// arm wins, except that every ProbeEvery-th Decide flips one pipeline
// (rotating, so no pipeline's losing arm is starved) to keep its
// estimate fresh. Flipping one pipeline at a time keeps the probe's
// blast radius to a single pipeline of a single execution.
//
// When the plan's pipeline *shape* changes (replanning after a catalog
// change, or a feedback-driven re-plan that reorders or recomposes the
// pipelines), all estimates reset: arm histories describe pipelines
// that no longer exist. The reset keys on the shape fingerprint — the
// same fields obs.ShapeHash covers — not the pipeline count, because a
// re-plan can swap pipeline composition at equal count (e.g. reorder
// two build chains), and reusing the stale EWMAs would attribute one
// pipeline's history to another.
type PipelineRouter struct {
	mu      sync.Mutex
	decides uint64
	shape   string
	arms    []pipeArms
}

// pipeArms is one pipeline's bandit state, indexed by hybrid.Engine
// (0 = compiled, 1 = vectorized).
type pipeArms struct {
	n    [2]uint64
	ewma [2]float64 // latency EWMA, nanoseconds
}

// metaShape fingerprints the pipeline decomposition the router is
// tracking, over the same fields as obs.ShapeHash (table, build/final
// role, probe count, in pipeline order) — so the router's notion of
// "same plan" matches the feedback store's.
func metaShape(meta []hybrid.PipeMeta) string {
	pipes := make([]obs.PipeStat, len(meta))
	for i, m := range meta {
		pipes[i] = obs.PipeStat{Table: m.Table, Build: m.Build, Probes: m.Probes}
	}
	return obs.ShapeHash(pipes)
}

// Decide assigns an engine to every pipeline. Safe for concurrent use;
// deterministic given the call sequence.
func (p *PipelineRouter) Decide(meta []hybrid.PipeMeta) []hybrid.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if shape := metaShape(meta); shape != p.shape {
		p.arms = make([]pipeArms, len(meta)) // plan shape changed: reset
		p.decides = 0
		p.shape = shape
	}
	p.decides++
	seed := hybrid.CostAssign(meta)
	out := make([]hybrid.Engine, len(meta))
	probePipe := -1
	if p.decides%ProbeEvery == 0 && len(meta) > 0 {
		probePipe = int(p.decides/ProbeEvery) % len(meta)
	}
	for i := range meta {
		a := &p.arms[i]
		s := int(seed[i])
		switch {
		case a.n[s] == 0:
			out[i] = seed[i] // heuristic's arm first
		case a.n[1-s] == 0:
			out[i] = hybrid.Engine(1 - s) // then the other, once
		default:
			best := 0
			if a.ewma[1] < a.ewma[0] {
				best = 1
			}
			if i == probePipe {
				best = 1 - best
			}
			out[i] = hybrid.Engine(best)
		}
	}
	return out
}

// Observe feeds one execution's per-pipeline latencies back into the
// chosen arms' EWMAs. Observations whose shape doesn't match the
// current plan (a replan raced the execution) are dropped — they
// describe pipelines the router no longer tracks. Non-positive
// latencies are skipped.
func (p *PipelineRouter) Observe(assign []hybrid.Engine, nanos []int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(assign) != len(p.arms) || len(nanos) != len(assign) {
		return
	}
	for i, e := range assign {
		d := float64(nanos[i])
		if d <= 0 {
			continue
		}
		j := int(e)
		if j < 0 || j > 1 {
			continue
		}
		a := &p.arms[i]
		if a.n[j] == 0 {
			a.ewma[j] = d
		} else {
			a.ewma[j] = (1-ewmaAlpha)*a.ewma[j] + ewmaAlpha*d
		}
		a.n[j]++
	}
}

// PipeArmStats is one pipeline's routing state, indexed by
// hybrid.Engine.
type PipeArmStats struct {
	N    [2]uint64
	Ewma [2]time.Duration
}

// PipeSnapshot reports every pipeline's observation counts and latency
// estimates.
func (p *PipelineRouter) PipeSnapshot() []PipeArmStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PipeArmStats, len(p.arms))
	for i, a := range p.arms {
		out[i] = PipeArmStats{
			N:    a.n,
			Ewma: [2]time.Duration{time.Duration(a.ewma[0]), time.Duration(a.ewma[1])},
		}
	}
	return out
}
